// Command flowstat summarizes a flow trace: global counts plus per-host
// feature distributions (average flow size, failed-connection rate,
// new-IP fraction, flow counts) and optional CDF dumps — the raw material
// of the paper's Figures 1 and 5.
//
// Usage:
//
//	flowstat [-format binary|csv|jsonl] [-internal CIDR[,CIDR]] [-cdf FEATURE] TRACE
//
// FEATURE is one of avgbytes, failrate, newip, flows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"plotters"
	"plotters/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		format    = flag.String("format", "binary", "trace format: binary, csv, or jsonl")
		internals = flag.String("internal", "", "comma-separated internal CIDRs (empty = all initiators)")
		cdf       = flag.String("cdf", "", "dump a CDF: avgbytes, failrate, newip, or flows")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected exactly one trace file argument")
	}
	records, err := readTrace(flag.Arg(0), *format)
	if err != nil {
		return err
	}
	var internal func(plotters.IP) bool
	if *internals != "" {
		internal, err = parseSubnets(*internals)
		if err != nil {
			return err
		}
	}

	var totalBytes uint64
	failed := 0
	for i := range records {
		totalBytes += records[i].SrcBytes + records[i].DstBytes
		if records[i].Failed() {
			failed++
		}
	}
	fmt.Printf("records\t%d\nfailed\t%d (%.1f%%)\nbytes\t%d\n", len(records), failed,
		100*float64(failed)/float64(max(1, len(records))), totalBytes)
	if len(records) > 0 {
		fmt.Printf("span\t%s .. %s\n",
			records[0].Start.Format("2006-01-02 15:04:05"),
			records[len(records)-1].Start.Format("2006-01-02 15:04:05"))
	}

	feats := plotters.ExtractFeatures(records, plotters.FeatureOptions{Hosts: internal})
	fmt.Printf("hosts\t%d\n\n", len(feats))
	if len(feats) == 0 {
		return nil
	}

	features := map[string]func(*plotters.HostFeatures) float64{
		"avgbytes": (*plotters.HostFeatures).AvgBytesPerFlow,
		"failrate": (*plotters.HostFeatures).FailedRate,
		"newip":    (*plotters.HostFeatures).NewPeerFraction,
		"flows":    func(f *plotters.HostFeatures) float64 { return float64(f.Flows) },
	}
	order := []string{"avgbytes", "failrate", "newip", "flows"}
	for _, name := range order {
		vals := make([]float64, 0, len(feats))
		for _, f := range feats {
			vals = append(vals, features[name](f))
		}
		sum, err := stats.Summarize(vals)
		if err != nil {
			return err
		}
		fmt.Printf("%-9s %s\n", name, sum)
	}

	if *cdf != "" {
		get, ok := features[*cdf]
		if !ok {
			return fmt.Errorf("unknown CDF feature %q (want avgbytes, failrate, newip, or flows)", *cdf)
		}
		vals := make([]float64, 0, len(feats))
		for _, f := range feats {
			vals = append(vals, get(f))
		}
		ecdf, err := stats.NewECDF(vals)
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Print(stats.FormatCDF(*cdf, ecdf.Sampled(100)))
	}
	return nil
}

func parseSubnets(csv string) (func(plotters.IP) bool, error) {
	var subnets []plotters.Subnet
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		sn, err := plotters.ParseSubnet(s)
		if err != nil {
			return nil, err
		}
		subnets = append(subnets, sn)
	}
	if len(subnets) == 0 {
		return nil, fmt.Errorf("no internal subnets given")
	}
	return func(ip plotters.IP) bool {
		for _, sn := range subnets {
			if sn.Contains(ip) {
				return true
			}
		}
		return false
	}, nil
}

func readTrace(path, format string) ([]plotters.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch format {
	case "binary":
		return plotters.ReadTrace(f)
	case "csv":
		return plotters.ReadTraceCSV(f)
	case "jsonl":
		return plotters.ReadTraceJSONL(f)
	default:
		return nil, fmt.Errorf("unknown format %q", format)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
