package main

import (
	"testing"

	"plotters"
)

func TestParseSubnets(t *testing.T) {
	internal, err := parseSubnets("128.2.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := plotters.ParseIP("128.2.1.1")
	out, _ := plotters.ParseIP("9.9.9.9")
	if !internal(in) || internal(out) {
		t.Error("membership wrong")
	}
	if _, err := parseSubnets("nope"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if _, err := parseSubnets(""); err == nil {
		t.Error("empty accepted")
	}
}

func TestMax(t *testing.T) {
	if max(1, 2) != 2 || max(3, 2) != 3 {
		t.Error("max wrong")
	}
}
