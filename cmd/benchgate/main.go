// Command benchgate turns `go test -bench` output into a CI pass/fail
// decision. benchstat is great at displaying deltas but was not built
// to gate on them; benchgate is the opposite — no statistics beyond
// min-of-counts, just a hard threshold with a machine-readable exit
// code. CI runs both: benchstat for the humans reading the job summary,
// benchgate for the red X.
//
// Three modes:
//
//	benchgate -old base.txt -new head.txt [-threshold 1.10]
//	    Regression gate. For every benchmark name present in BOTH files,
//	    fail if head's best (minimum) ns/op exceeds base's best by more
//	    than the threshold factor. Names only in one file are reported
//	    but never fail the gate — new benchmarks must not break the PR
//	    that introduces them.
//
//	benchgate -new head.txt -faster '(.*)-pruned$' -than '$1' [-threshold 1.0]
//	    Ordering gate within one file. Every benchmark whose name matches
//	    the -faster regexp must be at least as fast as its counterpart,
//	    whose name is derived by applying -than as a replacement template
//	    (so `BenchmarkHMTest/n=1024/par-pruned` is compared against
//	    `BenchmarkHMTest/n=1024/par`). Fails if faster > counterpart ×
//	    threshold. Matches with no counterpart in the file are skipped.
//
//	benchgate -new head.txt -zero-allocs 'IngestPipeline'
//	    Allocation gate within one file. Every benchmark whose name
//	    matches the regexp must report exactly 0 allocs/op in every
//	    repetition — the steady-state zero-allocation contract of the
//	    ingest hot path. A matching benchmark that does not report
//	    allocs/op at all (missing -benchmem / ReportAllocs) fails too:
//	    an unmeasured contract is a broken gate, not a passing one.
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix the testing package appends, so runs from machines with
// different core counts still compare. With -count=N, the minimum ns/op
// across repetitions is used: the minimum is the least noisy estimator
// of a benchmark's true cost on a shared CI runner, where interference
// only ever adds time.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkHMTest/n=1024/par-pruned-4   1   77618112 ns/op   6.8e+06 pairs/s
//
// capturing the name (with GOMAXPROCS suffix) and the ns/op value.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9][0-9.eE+-]*) ns/op`)

// procSuffix is the -GOMAXPROCS tail appended to sub-benchmark names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// allocsField matches the allocs/op column -benchmem / ReportAllocs
// appends to a result line.
var allocsField = regexp.MustCompile(`\s(\d+) allocs/op`)

// parseBench reads a -bench output file into name → minimum ns/op.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	best := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op %q: %v", path, m[2], err)
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		if cur, ok := best[name]; !ok || ns < cur {
			best[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return best, nil
}

// parseAllocs reads a -bench output file into name → maximum allocs/op
// across repetitions (the maximum, because a single allocating rep
// breaks a zero-allocation contract). Benchmarks that never report
// allocs/op map to -1 so the gate can flag them as unmeasured.
func parseAllocs(path string) (map[string]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	worst := make(map[string]int64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := procSuffix.ReplaceAllString(m[1], "")
		allocs := int64(-1)
		if am := allocsField.FindStringSubmatch(line); am != nil {
			n, err := strconv.ParseInt(am[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad allocs/op %q: %v", path, am[1], err)
			}
			allocs = n
		}
		if cur, ok := worst[name]; !ok || allocs > cur {
			worst[name] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(worst) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return worst, nil
}

func sortedNames(m map[string]float64) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// gateRegression compares common names across two files; returns the
// number of failures.
func gateRegression(oldB, newB map[string]float64, threshold float64) int {
	failures := 0
	for _, name := range sortedNames(newB) {
		base, ok := oldB[name]
		if !ok {
			fmt.Printf("  new    %-52s %12.0f ns/op (no baseline; not gated)\n", name, newB[name])
			continue
		}
		head := newB[name]
		ratio := head / base
		verdict := "ok    "
		if head > base*threshold {
			verdict = "FAIL  "
			failures++
		}
		fmt.Printf("  %s %-52s %12.0f → %12.0f ns/op  (%+.1f%%)\n",
			verdict, name, base, head, (ratio-1)*100)
	}
	for _, name := range sortedNames(oldB) {
		if _, ok := newB[name]; !ok {
			fmt.Printf("  gone   %-52s (present in baseline only; not gated)\n", name)
		}
	}
	return failures
}

// gateFaster enforces an intra-file ordering; returns the number of
// failures and how many matched benchmarks were actually compared.
func gateFaster(b map[string]float64, faster *regexp.Regexp, than string, threshold float64) (failures, compared int) {
	for _, name := range sortedNames(b) {
		if !faster.MatchString(name) {
			continue
		}
		counterpart := faster.ReplaceAllString(name, than)
		ref, ok := b[counterpart]
		if !ok || counterpart == name {
			continue
		}
		compared++
		t := b[name]
		verdict := "ok    "
		if t > ref*threshold {
			verdict = "FAIL  "
			failures++
		}
		fmt.Printf("  %s %-52s %12.0f ns/op vs %s %.0f ns/op  (%.2fx)\n",
			verdict, name, t, counterpart, ref, t/ref)
	}
	return failures, compared
}

// gateZeroAllocs enforces 0 allocs/op on every matching benchmark;
// returns the number of failures and how many names matched.
func gateZeroAllocs(allocs map[string]int64, match *regexp.Regexp) (failures, matched int) {
	names := make([]string, 0, len(allocs))
	for n := range allocs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if !match.MatchString(name) {
			continue
		}
		matched++
		switch n := allocs[name]; {
		case n < 0:
			fmt.Printf("  FAIL   %-52s allocs/op not reported (missing -benchmem?)\n", name)
			failures++
		case n > 0:
			fmt.Printf("  FAIL   %-52s %d allocs/op, want 0\n", name, n)
			failures++
		default:
			fmt.Printf("  ok     %-52s 0 allocs/op\n", name)
		}
	}
	return failures, matched
}

func main() {
	oldPath := flag.String("old", "", "baseline -bench output file (regression mode)")
	newPath := flag.String("new", "", "candidate -bench output file (required)")
	threshold := flag.Float64("threshold", 1.10, "fail when candidate ns/op exceeds reference × threshold")
	faster := flag.String("faster", "", "regexp selecting benchmarks that must beat their counterpart (ordering mode)")
	than := flag.String("than", "", "replacement template deriving the counterpart name from a -faster match")
	zeroAllocs := flag.String("zero-allocs", "", "regexp selecting benchmarks that must report 0 allocs/op (allocation mode)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
		os.Exit(2)
	}
	if *newPath == "" {
		fail("-new is required")
	}
	modes := 0
	for _, set := range []bool{*oldPath != "", *faster != "", *zeroAllocs != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		fail("exactly one of -old (regression mode), -faster/-than (ordering mode), or -zero-allocs (allocation mode) must be set")
	}

	var failures int
	switch {
	case *oldPath != "":
		newB, err := parseBench(*newPath)
		if err != nil {
			fail("%v", err)
		}
		oldB, err := parseBench(*oldPath)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchgate: regression gate, threshold %.2fx (min over repetitions)\n", *threshold)
		failures = gateRegression(oldB, newB, *threshold)
	case *zeroAllocs != "":
		re, err := regexp.Compile(*zeroAllocs)
		if err != nil {
			fail("bad -zero-allocs regexp: %v", err)
		}
		allocs, err := parseAllocs(*newPath)
		if err != nil {
			fail("%v", err)
		}
		fmt.Printf("benchgate: allocation gate, %q must report 0 allocs/op (max over repetitions)\n", *zeroAllocs)
		var matched int
		failures, matched = gateZeroAllocs(allocs, re)
		if matched == 0 {
			fail("no benchmark matched -zero-allocs %q", *zeroAllocs)
		}
	default:
		if *than == "" {
			fail("-faster requires -than")
		}
		newB, err := parseBench(*newPath)
		if err != nil {
			fail("%v", err)
		}
		re, err := regexp.Compile(*faster)
		if err != nil {
			fail("bad -faster regexp: %v", err)
		}
		fmt.Printf("benchgate: ordering gate %q must beat %q, threshold %.2fx\n", *faster, *than, *threshold)
		var compared int
		failures, compared = gateFaster(newB, re, *than, *threshold)
		if compared == 0 {
			fail("no benchmark matched -faster %q with a counterpart present", *faster)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) failed the gate\n", failures)
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}
