package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// writeBench drops a synthetic -bench output file and returns its path.
func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sample = `goos: linux
goarch: amd64
pkg: plotters
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHMTest/n=1024/par-4         	       1	103000000 ns/op	   5.1e+06 pairs/s
BenchmarkHMTest/n=1024/par-4         	       1	 99000000 ns/op	   5.3e+06 pairs/s
BenchmarkHMTest/n=1024/par-pruned-4  	       1	 77000000 ns/op	   6.8e+06 pairs/s
BenchmarkHMTest/n=1024/par-pruned-4  	       1	 81000000 ns/op	   6.5e+06 pairs/s
PASS
ok  	plotters	2.563s
`

// TestParseBench pins the three parsing behaviours the gates rely on:
// GOMAXPROCS suffixes are stripped, repetitions collapse to the
// minimum, and non-result lines are ignored.
func TestParseBench(t *testing.T) {
	b, err := parseBench(writeBench(t, "sample.txt", sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 {
		t.Fatalf("parsed %d names, want 2: %v", len(b), b)
	}
	if got := b["BenchmarkHMTest/n=1024/par"]; got != 99000000 {
		t.Errorf("par min = %v, want 99000000", got)
	}
	if got := b["BenchmarkHMTest/n=1024/par-pruned"]; got != 77000000 {
		t.Errorf("pruned min = %v, want 77000000", got)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(writeBench(t, "empty.txt", "PASS\nok plotters 1s\n")); err == nil {
		t.Error("expected error on file with no benchmark lines")
	}
}

// TestGateRegression: a 5% slowdown passes a 1.10 gate, a 20% slowdown
// fails it, and names unique to either side never count as failures.
func TestGateRegression(t *testing.T) {
	oldB := map[string]float64{"A": 100, "B": 100, "Gone": 50}
	newB := map[string]float64{"A": 105, "B": 120, "New": 10}
	if got := gateRegression(oldB, newB, 1.10); got != 1 {
		t.Errorf("failures = %d, want 1 (only B regresses past 10%%)", got)
	}
	if got := gateRegression(oldB, newB, 1.25); got != 0 {
		t.Errorf("failures = %d, want 0 at a 1.25 threshold", got)
	}
}

const allocsSample = `goos: linux
BenchmarkIngestPipeline/proto=v5-4       	     100	       744 ns/op	1966.66 MB/s	  40300372 records/s	       0 B/op	       0 allocs/op
BenchmarkIngestPipeline/proto=v5-4       	     100	       750 ns/op	1950.00 MB/s	  40100000 records/s	       0 B/op	       0 allocs/op
BenchmarkIngestPipeline/proto=ipfix-4    	     100	      3716 ns/op	 441.38 MB/s	   8074044 records/s	       0 B/op	       0 allocs/op
BenchmarkLeaky/alloc-4                   	     100	       500 ns/op	      48 B/op	       2 allocs/op
BenchmarkHMTest/n=1024/par-4             	       1	103000000 ns/op	   5.1e+06 pairs/s
PASS
`

// TestParseAllocs pins the allocation parsing the zero-allocs gate
// relies on: repetitions collapse to the maximum, and benchmarks
// without an allocs/op column map to -1 (unmeasured).
func TestParseAllocs(t *testing.T) {
	a, err := parseAllocs(writeBench(t, "allocs.txt", allocsSample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"BenchmarkIngestPipeline/proto=v5":    0,
		"BenchmarkIngestPipeline/proto=ipfix": 0,
		"BenchmarkLeaky/alloc":                2,
		"BenchmarkHMTest/n=1024/par":          -1,
	}
	if len(a) != len(want) {
		t.Fatalf("parsed %d names, want %d: %v", len(a), len(want), a)
	}
	for name, n := range want {
		if got := a[name]; got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
}

// TestGateZeroAllocs: zero-alloc benchmarks pass, an allocating one
// fails, and an unmeasured one (no allocs/op column) fails too rather
// than passing silently.
func TestGateZeroAllocs(t *testing.T) {
	allocs := map[string]int64{
		"BenchmarkIngestPipeline/proto=v5":    0,
		"BenchmarkIngestPipeline/proto=ipfix": 0,
		"BenchmarkLeaky/alloc":                2,
		"BenchmarkUnmeasured":                 -1,
	}
	failures, matched := gateZeroAllocs(allocs, regexp.MustCompile(`IngestPipeline`))
	if matched != 2 || failures != 0 {
		t.Errorf("IngestPipeline: failures=%d matched=%d, want 0/2", failures, matched)
	}
	failures, matched = gateZeroAllocs(allocs, regexp.MustCompile(`Leaky`))
	if matched != 1 || failures != 1 {
		t.Errorf("Leaky: failures=%d matched=%d, want 1/1", failures, matched)
	}
	failures, matched = gateZeroAllocs(allocs, regexp.MustCompile(`Unmeasured`))
	if matched != 1 || failures != 1 {
		t.Errorf("Unmeasured: failures=%d matched=%d, want 1/1", failures, matched)
	}
}

// TestGateFaster: the pruned variant must beat its exhaustive
// counterpart; a pruned bench with no counterpart is skipped, not
// failed.
func TestGateFaster(t *testing.T) {
	re := regexp.MustCompile(`(.*)-pruned$`)
	b := map[string]float64{
		"HM/n=64-pruned":   90,
		"HM/n=64":          100,
		"HM/n=256-pruned":  130,
		"HM/n=256":         100,
		"HM/n=4096-pruned": 10, // no exhaustive counterpart at this n
	}
	failures, compared := gateFaster(b, re, "$1", 1.0)
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if failures != 1 {
		t.Errorf("failures = %d, want 1 (n=256 pruned is slower)", failures)
	}
	// With 40% headroom the slow pair passes too.
	failures, _ = gateFaster(b, re, "$1", 1.4)
	if failures != 0 {
		t.Errorf("failures = %d, want 0 at 1.4x threshold", failures)
	}
}
