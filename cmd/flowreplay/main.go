// Command flowreplay replays a stored flow trace as live flow-export
// datagrams — a software exporter for exercising plotfind -listen (or
// any flow collector) without router hardware.
//
// Records are read in trace order, packed into valid export packets
// (up to -batch records each), and sent over UDP. -emit selects the
// wire protocol: NetFlow v5 (default), IPFIX, or sFlow v5, so the same
// trace can drive every decoder the collector registers. With
// -speedup N the inter-packet gaps follow the records' start times
// compressed N-fold (1 = faithful real time); -speedup 0 blasts the
// trace as fast as the socket accepts, which is how you load-test a
// collector's bounded queue. The exporter sequence numbers are
// continuous — cumulative records for v5/IPFIX, a datagram counter for
// sFlow, each protocol's native semantics — so a collector's
// sequence-gap counters measure exactly what the network (or its own
// drops) lost in transit.
//
// Usage:
//
//	flowreplay -to 127.0.0.1:2055 [-emit v5|ipfix|sflow] [-format binary|csv|jsonl|netflow|ipfix|sflow] [-speedup N] [-batch N] TRACE
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowreplay:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		to      = flag.String("to", "", "UDP address of the collector, e.g. 127.0.0.1:2055 (required)")
		emit    = flag.String("emit", "v5", "export protocol for outgoing datagrams: v5, ipfix, or sflow")
		format  = flag.String("format", "binary", "trace format: binary, csv, jsonl, netflow, ipfix, or sflow")
		speedup = flag.Float64("speedup", 0, "pace packets by record start times compressed this many times (1 = real time, 0 = no pacing)")
		batch   = flag.Int("batch", 30, "records per export packet (1-30)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		return fmt.Errorf("expected exactly one trace file argument")
	}
	if *to == "" {
		return fmt.Errorf("-to is required")
	}
	if *emit != "v5" && *emit != "ipfix" && *emit != "sflow" {
		return fmt.Errorf("-emit must be v5, ipfix, or sflow (got %q)", *emit)
	}
	if *batch < 1 || *batch > 30 {
		return fmt.Errorf("-batch must be between 1 and 30 (v5 packets hold at most 30 records)")
	}
	if *speedup < 0 {
		return fmt.Errorf("-speedup must be >= 0")
	}

	conn, err := net.Dial("udp", *to)
	if err != nil {
		return err
	}
	defer conn.Close()
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := plotters.NewTraceReader(f, *format)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		pkt        []byte
		pending    []plotters.Record
		seq        uint32
		packets    int
		records    int
		sent       int64
		traceStart time.Time
		wallStart  = time.Now()
	)
	// send packs and transmits the pending batch as one datagram,
	// sleeping first so the batch leaves at its start time's place on
	// the compressed timeline.
	send := func() error {
		if len(pending) == 0 {
			return nil
		}
		if *speedup > 0 {
			due := time.Duration(float64(pending[0].Start.Sub(traceStart)) / *speedup)
			if d := due - time.Since(wallStart); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		var err error
		switch *emit {
		case "ipfix":
			pkt, err = plotters.AppendIPFIX(pkt[:0], pending, seq)
		case "sflow":
			pkt, err = plotters.AppendSFlow(pkt[:0], pending, seq)
		default:
			pkt, err = plotters.AppendNetFlowV5(pkt[:0], pending, seq)
		}
		if err != nil {
			return err
		}
		if _, err := conn.Write(pkt); err != nil {
			return err
		}
		if *emit == "sflow" {
			seq++ // sFlow sequences count datagrams, not records
		} else {
			seq += uint32(len(pending))
		}
		packets++
		records += len(pending)
		sent += int64(len(pkt))
		pending = pending[:0]
		return nil
	}

	for ctx.Err() == nil {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("after %d records: %w", records+len(pending), err)
		}
		if records == 0 && len(pending) == 0 {
			traceStart = rec.Start
		}
		pending = append(pending, rec)
		if len(pending) == *batch {
			if err := send(); err != nil {
				return replayErr(err, ctx, records)
			}
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "interrupted after %d records in %d packets\n", records, packets)
		return nil
	}
	if err := send(); err != nil {
		return replayErr(err, ctx, records)
	}
	fmt.Fprintf(os.Stderr, "replayed %d records in %d packets (%d bytes) to %s in %s\n",
		records, packets, sent, *to, time.Since(wallStart).Round(time.Millisecond))
	return nil
}

// replayErr turns a cancellation surfaced through send into a clean
// interrupted exit; real errors pass through.
func replayErr(err error, ctx context.Context, records int) error {
	if errors.Is(err, context.Canceled) && ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "interrupted after %d records\n", records)
		return nil
	}
	return err
}
