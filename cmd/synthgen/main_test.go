package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"plotters"
)

func TestCodec(t *testing.T) {
	for _, tc := range []struct {
		format string
		ext    string
	}{
		{"binary", ".flows"},
		{"csv", ".csv"},
		{"jsonl", ".jsonl"},
	} {
		ext, write, err := codec(tc.format)
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if ext != tc.ext || write == nil {
			t.Errorf("%s: ext=%q", tc.format, ext)
		}
	}
	if _, _, err := codec("bogus"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestWriteTrace(t *testing.T) {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	records := []plotters.Record{{
		Src: 1, Dst: 2, Proto: plotters.TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
		State: plotters.StateEstablished,
	}}
	_, write, err := codec("binary")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.flows")
	if err := writeTrace(path, records, write); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := plotters.ReadTrace(f)
	if err != nil || len(got) != 1 {
		t.Errorf("round trip: %d records, %v", len(got), err)
	}
	// Unwritable path errors.
	if err := writeTrace(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), records, write); err == nil {
		t.Error("bad path accepted")
	}
}
