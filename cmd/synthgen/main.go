// Command synthgen synthesizes the evaluation corpus — CMU-like campus
// days with embedded Traders, plus the Storm and Nugache honeynet
// traces — and writes them as binary flow traces.
//
// Usage:
//
//	synthgen -out DIR [-days N] [-seed S] [-campus N] [-format binary|csv|jsonl]
//
// The output directory receives day-<i>.flows, storm.flows, and
// nugache.flows (extension varies by format), plus a manifest.txt
// describing the ground truth.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir  = flag.String("out", "", "output directory (required)")
		days    = flag.Int("days", 8, "number of campus days to synthesize")
		seed    = flag.Int64("seed", 42, "master random seed")
		campus  = flag.Int("campus", 360, "background campus hosts per day")
		format  = flag.String("format", "binary", "trace format: binary, csv, or jsonl")
		gnut    = flag.Int("gnutella", 10, "Gnutella Traders per day")
		emule   = flag.Int("emule", 12, "eMule Traders per day")
		torrent = flag.Int("bittorrent", 20, "BitTorrent Traders per day")
	)
	flag.Parse()
	if *outDir == "" {
		flag.Usage()
		return fmt.Errorf("-out is required")
	}
	ext, write, err := codec(*format)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return fmt.Errorf("creating output dir: %w", err)
	}

	cfg := plotters.DefaultDatasetConfig(*seed)
	cfg.Days = *days
	cfg.DayTemplate.CampusHosts = *campus
	cfg.DayTemplate.Gnutella = *gnut
	cfg.DayTemplate.EMule = *emule
	cfg.DayTemplate.BitTorrent = *torrent

	fmt.Fprintf(os.Stderr, "synthesizing %d days (%d campus hosts, %d traders/day) + honeynet traces...\n",
		cfg.Days, *campus, *gnut+*emule+*torrent)
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		return err
	}

	var manifest strings.Builder
	fmt.Fprintf(&manifest, "seed\t%d\ndays\t%d\n", *seed, cfg.Days)
	for i, day := range ds.Days {
		name := fmt.Sprintf("day-%d%s", i, ext)
		if err := writeTrace(filepath.Join(*outDir, name), day.Records, write); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "day\t%d\tfile\t%s\trecords\t%d\twindow\t%s\n",
			i, name, len(day.Records), day.Window.From.Format("2006-01-02"))
		traders := make([]string, 0, len(day.TraderHosts))
		for host, app := range day.TraderHosts {
			traders = append(traders, fmt.Sprintf("%s=%s", host, app))
		}
		sort.Strings(traders)
		fmt.Fprintf(&manifest, "day\t%d\ttraders\t%s\n", i, strings.Join(traders, ","))
		fmt.Fprintf(os.Stderr, "  %s: %d records\n", name, len(day.Records))
	}
	for _, tr := range []struct {
		name  string
		trace *plotters.BotTrace
	}{
		{"storm", ds.Storm},
		{"nugache", ds.Nugache},
	} {
		name := tr.name + ext
		if err := writeTrace(filepath.Join(*outDir, name), tr.trace.Records, write); err != nil {
			return err
		}
		bots := make([]string, len(tr.trace.Bots))
		for i, b := range tr.trace.Bots {
			bots[i] = b.String()
		}
		fmt.Fprintf(&manifest, "trace\t%s\tfile\t%s\trecords\t%d\tbots\t%s\n",
			tr.name, name, len(tr.trace.Records), strings.Join(bots, ","))
		fmt.Fprintf(os.Stderr, "  %s: %d records, %d bots\n", name, len(tr.trace.Records), len(tr.trace.Bots))
	}
	manifestPath := filepath.Join(*outDir, "manifest.txt")
	if err := os.WriteFile(manifestPath, []byte(manifest.String()), 0o644); err != nil {
		return fmt.Errorf("writing manifest: %w", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", manifestPath)
	return nil
}

type writeFunc func(f *os.File, records []plotters.Record) error

func codec(format string) (string, writeFunc, error) {
	switch format {
	case "binary":
		return ".flows", func(f *os.File, r []plotters.Record) error { return plotters.WriteTrace(f, r) }, nil
	case "csv":
		return ".csv", func(f *os.File, r []plotters.Record) error { return plotters.WriteTraceCSV(f, r) }, nil
	case "jsonl":
		return ".jsonl", func(f *os.File, r []plotters.Record) error { return plotters.WriteTraceJSONL(f, r) }, nil
	default:
		return "", nil, fmt.Errorf("unknown format %q (want binary, csv, or jsonl)", format)
	}
}

func writeTrace(path string, records []plotters.Record, write writeFunc) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s: %w", path, err)
	}
	if err := write(f, records); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", path, err)
	}
	return nil
}
