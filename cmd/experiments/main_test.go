package main

import "testing"

func TestParseFigs(t *testing.T) {
	all, err := parseFigs("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 11 || all[4] {
		t.Errorf("all = %v (figure 4 is the algorithm, not data)", all)
	}
	some, err := parseFigs("1, 9,12")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 3 || !some[1] || !some[9] || !some[12] {
		t.Errorf("some = %v", some)
	}
	if _, err := parseFigs("1,x"); err == nil {
		t.Error("bad list accepted")
	}
}
