// Command experiments regenerates the data behind every figure in the
// paper's evaluation (Figures 1–3 and 5–12) from the synthesized corpus,
// printing each as a text table. See EXPERIMENTS.md for the side-by-side
// comparison against the paper's reported numbers.
//
// Usage:
//
//	experiments [-fig N[,N...]|all] [-days N] [-seed S] [-scale small|paper] [-hm-prune [-hm-cut D]] [-metrics FILE]
//	experiments -sampling [-fig none] [-days N] [-seed S] [-scale small|paper]
//	experiments -campaign [-fig none] [-campaign-worlds W[,W...]] [-campaign-grid P[,P...]] [-campaign-out FILE]
//
// With -sampling, the ingest subsystem's deterministic 1-in-N flow
// sampler sweeps rates 1, 1/4, 1/16, and 1/64 over every evaluation
// day and prints precision/recall per rate — the measured detection
// cost of running the collector sampled (see EXPERIMENTS.md).
//
// With -campaign, the red-team campaign runner sweeps bot-side
// countermeasures (timer jitter, churn mimicry, volume padding, slow
// start) at the given intensity grid across synthetic worlds, scores
// each grid point against the detector ensemble (paper pipeline +
// community detector + combiners), and prints the detection-rate vs.
// evasion-cost frontier. -scale additionally accepts "tiny" for the
// campaign (the CI smoke size). See DESIGN.md §6.
//
// With -metrics, cumulative pipeline stage timings across every figure
// run are written to FILE as JSON (see EXPERIMENTS.md for how to read
// them). With -hm-prune, every θ_hm run prunes its pairwise EMD matrix
// (identical figures, fewer exact EMD evaluations); the metrics file
// and a stderr summary then carry the engine's cumulative pair
// accounting across all figure runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"plotters"
	"plotters/internal/eval"
	"plotters/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figs      = flag.String("fig", "all", "comma-separated figure numbers (1,2,3,5..12) or 'all'")
		baselines = flag.Bool("baselines", false, "also compare against the §II baseline detectors (TDG, persistence, failed-connections)")
		days      = flag.Int("days", 8, "evaluation days")
		seed      = flag.Int64("seed", 42, "master random seed")
		scale     = flag.String("scale", "paper", "dataset scale: small (fast) or paper")
		parallel  = flag.Int("parallelism", 0, "worker count for the θ_hm distance matrix (0 = all CPUs, 1 = sequential)")
		hmPrune   = flag.Bool("hm-prune", false, "prune the θ_hm distance matrix: skip exact EMD for pairs provably above the clustering cut (identical figures)")
		hmCut     = flag.Float64("hm-cut", 0, "explicit θ_hm prune/gate distance (0 = auto-calibrate when -hm-prune is set)")
		metricsTo = flag.String("metrics", "", "write cumulative pipeline stage timings to this file as JSON")
		detectors = flag.String("detectors", "findplotters", "comma-separated detectors run per day: findplotters, community. More than one appends the ensemble precision/recall table")
		voteK     = flag.Int("vote-k", 0, "k for the ensemble k-of-n vote combiner (0 = majority)")
		commIDF   = flag.Bool("community-idf", false, "weight community-graph edges by destination rarity (IDF) instead of raw shared-contact counts")
		fanin     = flag.Bool("fanin-sweep", false, "sweep the community graph's MinSharedContacts × MaxFanIn grid and print the ROC table (use -fig none to run the sweep alone)")
		sampling  = flag.Bool("sampling", false, "sweep the ingest stage's deterministic 1-in-N flow sampling (N = 1,4,16,64) and print precision/recall per rate (use -fig none to run the sweep alone)")
		camp      = flag.Bool("campaign", false, "run the red-team campaign: sweep countermeasures × synthetic worlds against the detector ensemble and print the evasion-cost frontier (use -fig none to run the campaign alone)")
		campWorld = flag.String("campaign-worlds", "all", "comma-separated campaign world presets, or 'all'")
		campGrid  = flag.String("campaign-grid", "0.25,0.5,1", "comma-separated ascending countermeasure intensities in (0,1]")
		campOut   = flag.String("campaign-out", "", "write the campaign report to this file as JSON")
	)
	flag.Parse()

	want, err := parseFigs(*figs)
	if err != nil {
		return err
	}

	if *camp {
		if err := runCampaign(*seed, *days, *scale, *campWorld, *campGrid, *campOut, *voteK, *parallel, *hmPrune, *hmCut); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
		// -fig none -campaign runs the campaign alone.
		if len(want) == 0 && !*baselines && !*fanin && !*sampling {
			return nil
		}
	}

	cfg := plotters.DefaultDatasetConfig(*seed)
	cfg.Days = *days
	if *scale == "small" {
		cfg.DayTemplate.CampusHosts = 150
		cfg.DayTemplate.Gnutella = 5
		cfg.DayTemplate.EMule = 5
		cfg.DayTemplate.BitTorrent = 8
		cfg.DayTemplate.PeerNetworkNodes = 1200
	}
	fmt.Fprintf(os.Stderr, "synthesizing corpus (%d days, scale=%s)...\n", cfg.Days, *scale)
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	pipeCfg := plotters.DefaultConfig()
	pipeCfg.Parallelism = *parallel
	pipeCfg.HMPrune = *hmPrune
	pipeCfg.HMCut = *hmCut
	var reg *plotters.Metrics
	if *metricsTo != "" {
		reg = plotters.NewMetrics()
		pipeCfg.Metrics = reg
	}
	dets, err := buildDetectors(*detectors, pipeCfg, *commIDF)
	if err != nil {
		return err
	}
	suite, err := plotters.NewSuiteDetectors(ds, pipeCfg, *seed+1, dets)
	if err != nil {
		return err
	}

	runners := map[int]func(*plotters.Suite) error{
		1:  figure1,
		2:  figure2,
		3:  figure3,
		5:  figure5,
		6:  figure6,
		7:  figure7,
		8:  figure8,
		9:  figure9,
		10: figure10,
		11: figure11,
		12: figure12,
	}
	order := make([]int, 0, len(want))
	for f := range want {
		order = append(order, f)
	}
	sort.Ints(order)
	for _, f := range order {
		runner, ok := runners[f]
		if !ok {
			return fmt.Errorf("no such figure: %d (figure 4 is the algorithm itself)", f)
		}
		fmt.Fprintf(os.Stderr, "running figure %d...\n", f)
		if err := runner(suite); err != nil {
			return fmt.Errorf("figure %d: %w", f, err)
		}
	}
	if *baselines {
		fmt.Fprintln(os.Stderr, "running baseline comparison...")
		if err := compareBaselines(suite); err != nil {
			return fmt.Errorf("baseline comparison: %w", err)
		}
	}
	if dets != nil {
		fmt.Fprintln(os.Stderr, "scoring detector ensemble...")
		if err := printEnsemble(suite, *voteK); err != nil {
			return fmt.Errorf("ensemble: %w", err)
		}
	}
	if *fanin {
		fmt.Fprintln(os.Stderr, "sweeping community-graph fan-in grid...")
		if err := printFanInSweep(suite, *commIDF); err != nil {
			return fmt.Errorf("fan-in sweep: %w", err)
		}
	}
	if *sampling {
		fmt.Fprintln(os.Stderr, "sweeping flow-sampling rates...")
		if err := printSamplingSweep(suite, uint64(*seed)); err != nil {
			return fmt.Errorf("sampling sweep: %w", err)
		}
	}
	if reg != nil {
		snap := reg.TakeSnapshot()
		if pr, ok := plotters.PruneSummary(snap); ok {
			fmt.Fprintf(os.Stderr, "θ_hm pruning: %d of %d pairs evaluated exactly, +%d calibration (%.1f%%; bound pruned %d, pivots pruned %d, gated %d)\n",
				pr.Exact, pr.PairsTotal, pr.Calibration, 100*pr.ExactFraction, pr.PrunedBound, pr.PrunedPivot, pr.Gated)
		}
		f, err := os.Create(*metricsTo)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			f.Close()
			return fmt.Errorf("writing metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pipeline metrics written to %s\n", *metricsTo)
	}
	return nil
}

// runCampaign executes the red-team campaign sweep and prints the
// evasion-cost frontier as a markdown table (JSON also written when out
// is set).
func runCampaign(seed int64, days int, scale, worlds, grid, out string, voteK, parallel int, hmPrune bool, hmCut float64) error {
	cfg := plotters.DefaultCampaignConfig(seed)
	cfg.Days = days
	cfg.Scale = plotters.CampaignScale(scale)
	cfg.VoteK = voteK
	cfg.Pipeline.Parallelism = parallel
	cfg.Pipeline.HMPrune = hmPrune
	cfg.Pipeline.HMCut = hmCut
	if worlds != "all" {
		cfg.Worlds = nil
		for _, w := range strings.Split(worlds, ",") {
			if w = strings.TrimSpace(w); w != "" {
				cfg.Worlds = append(cfg.Worlds, w)
			}
		}
	}
	cfg.Intensities = nil
	for _, part := range strings.Split(grid, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return fmt.Errorf("bad -campaign-grid %q: %w", grid, err)
		}
		cfg.Intensities = append(cfg.Intensities, p)
	}
	cfg.Progress = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := plotters.RunCampaign(cfg)
	if err != nil {
		return err
	}
	if err := rep.CheckMonotone(); err != nil {
		return err
	}
	fmt.Print(rep.Markdown())
	if out != "" {
		raw, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "campaign report written to %s\n", out)
	}
	return nil
}

// buildDetectors parses the -detectors list. The default spec (the paper
// pipeline alone) returns nil, keeping the suite on its original
// single-detector path.
func buildDetectors(spec string, cfg plotters.Config, communityIDF bool) ([]plotters.Detector, error) {
	names := strings.Split(spec, ",")
	var out []plotters.Detector
	seen := map[string]bool{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, fmt.Errorf("-detectors lists %q twice", name)
		}
		seen[name] = true
		switch name {
		case plotters.PaperDetectorName:
			det, err := plotters.NewPaperDetector(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, det)
		case plotters.CommunityDetectorName:
			ccfg := plotters.DefaultCommunityConfig()
			ccfg.Metrics = cfg.Metrics
			ccfg.Graph.IDFWeights = communityIDF
			det, err := plotters.NewCommunityDetector(ccfg)
			if err != nil {
				return nil, err
			}
			out = append(out, det)
		default:
			return nil, fmt.Errorf("unknown detector %q (have: %s, %s)",
				name, plotters.PaperDetectorName, plotters.CommunityDetectorName)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-detectors lists no detectors")
	}
	if len(out) == 1 && seen[plotters.PaperDetectorName] {
		return nil, nil
	}
	return out, nil
}

// printEnsemble scores every configured detector and the ensemble
// combiners (union, intersection, k-of-n vote) against ground truth.
func printEnsemble(s *plotters.Suite, voteK int) error {
	r, err := s.Ensemble(voteK)
	if err != nil {
		return err
	}
	fmt.Printf("## Detector ensemble: precision/recall per day (detectors: %s; vote k=%d)\n",
		strings.Join(r.Detectors, ", "), r.VoteK)
	fmt.Println("# day\tset\tTP\tFP\tprecision\trecall")
	row := func(day, set string, rates eval.Rates) {
		fmt.Printf("%s\t%s\t%d\t%d\t%.4f\t%.4f\n",
			day, set, rates.TP, rates.FP, rates.Precision(), rates.Recall())
	}
	for _, d := range r.Days {
		day := fmt.Sprintf("%d", d.Day)
		for i, name := range r.Detectors {
			row(day, name, d.PerDetector[i])
		}
		row(day, "union", d.Union)
		row(day, "intersection", d.Intersection)
		row(day, fmt.Sprintf("vote-%d", r.VoteK), d.Vote)
	}
	for i, name := range r.Detectors {
		row("all", name, r.PerDetector[i])
	}
	row("all", "union", r.Union)
	row("all", "intersection", r.Intersection)
	row("all", fmt.Sprintf("vote-%d", r.VoteK), r.Vote)
	fmt.Println()
	return nil
}

// printFanInSweep sweeps the community graph's two structural knobs and
// prints one ROC row per operating point, rates accumulated across all
// suite days. MaxFanIn 0 is the uncapped end of the axis.
func printFanInSweep(s *plotters.Suite, idf bool) error {
	base := plotters.DefaultCommunityConfig()
	base.Graph.IDFWeights = idf
	points, err := s.FanInSweep(base,
		[]int{2, 3, 4, 6},
		[]int{16, 32, 64, 128, 0})
	if err != nil {
		return err
	}
	fmt.Printf("## Community-graph fan-in sweep: ROC over MinSharedContacts × MaxFanIn (idf=%v)\n", idf)
	fmt.Println("# minShared\tmaxFanIn\tedges\tTP\tFP\tTPR\tFPR\tprecision\trecall")
	for _, p := range points {
		fanIn := fmt.Sprintf("%d", p.MaxFanIn)
		if p.MaxFanIn == 0 {
			fanIn = "off"
		}
		fmt.Printf("%d\t%s\t%d\t%d\t%d\t%.4f\t%.6f\t%.4f\t%.4f\n",
			p.MinSharedContacts, fanIn, p.Edges,
			p.Rates.TP, p.Rates.FP, p.Rates.TPR(), p.Rates.FPR(),
			p.Rates.Precision(), p.Rates.Recall())
	}
	fmt.Println()
	return nil
}

// printSamplingSweep measures detection quality under the ingest
// subsystem's deterministic 1-in-N flow sampling, one row per rate,
// rates accumulated across all suite days against the full-rate host
// set (hosts whose every flow was sampled away count as misses).
func printSamplingSweep(s *plotters.Suite, seed uint64) error {
	points, err := s.SamplingSweep([]uint64{1, 4, 16, 64}, seed)
	if err != nil {
		return err
	}
	fmt.Println("## Flow-sampling sweep: detection vs. ingest sampling rate (seed-stable 1-in-N sampler)")
	fmt.Println("# rate\tkept\tTP\tFP\tprecision\trecall\tstormRecall\tnugacheRecall")
	for _, p := range points {
		fmt.Printf("1/%d\t%.4f\t%d\t%d\t%.4f\t%.4f\t%.4f\t%.4f\n",
			p.N, p.KeptFraction(), p.Overall.TP, p.Overall.FP,
			p.Overall.Precision(), p.Overall.Recall(),
			p.Storm.Recall(), p.Nugache.Recall())
	}
	fmt.Println()
	return nil
}

// compareBaselines prints the §II baseline-detector comparison.
func compareBaselines(s *plotters.Suite) error {
	outcomes, err := s.CompareBaselines()
	if err != nil {
		return err
	}
	fmt.Println("## Baseline comparison: per-class detection rates")
	fmt.Println("# detector\tstorm\tnugache\ttraders\tcampus")
	for _, o := range outcomes {
		fmt.Printf("%s\t%.4f\t%.4f\t%.4f\t%.4f\n", o.Name, o.StormTPR, o.NugacheTPR, o.TraderRate, o.CampusRate)
	}
	fmt.Println()
	return nil
}

func parseFigs(s string) (map[int]bool, error) {
	out := make(map[int]bool)
	if s == "none" {
		return out, nil
	}
	if s == "all" {
		for _, f := range []int{1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12} {
			out[f] = true
		}
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		var f int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &f); err != nil {
			return nil, fmt.Errorf("bad figure list %q", s)
		}
		out[f] = true
	}
	return out, nil
}

func printCDFs(title string, cdfs *eval.DatasetCDFs) {
	fmt.Printf("## %s\n", title)
	for _, part := range []struct {
		name string
		pts  []stats.CDFPoint
	}{
		{"cmu-minus-traders", cdfs.CMU},
		{"traders", cdfs.Trader},
		{"storm", cdfs.Storm},
		{"nugache", cdfs.Nugache},
	} {
		fmt.Print(stats.FormatCDF(part.name, part.pts))
	}
	fmt.Println()
}

func figure1(s *plotters.Suite) error {
	cdfs, err := s.Figure1()
	if err != nil {
		return err
	}
	printCDFs("Figure 1: CDF of average flow size (bytes uploaded per flow) per host", cdfs)
	return nil
}

func figure2(s *plotters.Suite) error {
	r, err := s.Figure2()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 2: new IPs contacted by a Trader vs. a Storm bot")
	for _, part := range []struct {
		name string
		s    eval.Fig2Series
	}{
		{"trader", r.Trader},
		{"storm", r.Storm},
	} {
		fmt.Printf("# %s\n# hour\ttotalIPs\tnewIPs\tnewFraction\n", part.name)
		for i := range part.s.Hour {
			fmt.Printf("%d\t%d\t%d\t%.4f\n", part.s.Hour[i], part.s.TotalIPs[i], part.s.NewIPs[i], part.s.NewFraction[i])
		}
	}
	fmt.Println()
	return nil
}

func figure3(s *plotters.Suite) error {
	panels, err := s.Figure3()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 3: per-destination flow interstitial time distributions")
	for _, p := range panels {
		fmt.Printf("# %s (n=%d)\n# seconds\tmass\n", p.Name, p.Samples)
		for i := range p.BinSeconds {
			if p.Mass[i] < 0.005 {
				continue // keep the dump readable: only visible bins
			}
			fmt.Printf("%.3g\t%.4f\n", p.BinSeconds[i], p.Mass[i])
		}
	}
	fmt.Println()
	return nil
}

func figure5(s *plotters.Suite) error {
	cdfs, err := s.Figure5()
	if err != nil {
		return err
	}
	printCDFs("Figure 5: CDF of failed-connection percentage per host", cdfs)
	return nil
}

func printROC(title string, points []eval.ROCPoint) {
	fmt.Printf("## %s\n", title)
	fmt.Println("# percentile\tstormTPR\tnugacheTPR\tFPR")
	for _, p := range points {
		fmt.Printf("%.0f\t%.4f\t%.4f\t%.4f\n", p.Percentile, p.Storm.TPR(), p.Nugache.TPR(), p.FPR)
	}
	fmt.Println()
}

func figure6(s *plotters.Suite) error {
	points, err := s.Figure6()
	if err != nil {
		return err
	}
	printROC("Figure 6: ROC of the volume test θ_vol", points)
	return nil
}

func figure7(s *plotters.Suite) error {
	points, err := s.Figure7()
	if err != nil {
		return err
	}
	printROC("Figure 7: ROC of the peer-churn test θ_churn", points)
	return nil
}

func figure8(s *plotters.Suite) error {
	points, err := s.Figure8()
	if err != nil {
		return err
	}
	printROC("Figure 8: ROC of the human-vs-machine test θ_hm", points)
	return nil
}

func figure9(s *plotters.Suite) error {
	r, err := s.Figure9()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 9: FindPlotters stage-by-stage refinement (totals over all days)")
	fmt.Println("# stage\tstorm\tnugache\ttraders\tothers")
	for _, st := range r.Stages {
		fmt.Printf("%s\t%d\t%d\t%d\t%d\n", st.Name, st.Counts.Storm, st.Counts.Nugache, st.Counts.Traders, st.Counts.Others)
	}
	fmt.Printf("# headline: stormTPR=%.4f nugacheTPR=%.4f FP=%.4f tradersRemaining=%.4f traderShareOfOutput=%.4f\n\n",
		r.StormTPR, r.NugacheTPR, r.FPRate, r.TradersRemaining, r.TraderShareOfOutput)
	return nil
}

func figure10(s *plotters.Suite) error {
	r, err := s.Figure10()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 10: CDF of flow counts of Nugache bots surviving each stage")
	for _, stage := range []string{"all", "reduction", "vol∪churn", "hm"} {
		pts := r.Stages[stage]
		fmt.Print(stats.FormatCDF(stage, pts))
	}
	fmt.Println()
	return nil
}

func figure11(s *plotters.Suite) error {
	daysData, err := s.Figure11()
	if err != nil {
		return err
	}
	fmt.Println("## Figure 11(a): τ_vol vs. overlaid Plotter volume medians")
	fmt.Println("# day\tτ_vol\tstormMedian\tstormFactor\tnugacheMedian\tnugacheFactor")
	for _, d := range daysData {
		fmt.Printf("%d\t%.1f\t%.1f\t%.2f\t%.1f\t%.2f\n",
			d.Day, d.VolThreshold, d.StormVolMedian, d.StormVolFactor, d.NugacheVolMedian, d.NugacheVolFactor)
	}
	fmt.Println("## Figure 11(b): τ_churn vs. overlaid Plotter churn medians (factor = ×new-IPs to reach 90%)")
	fmt.Println("# day\tτ_churn\tstormMedian\tstormFactor90\tnugacheMedian\tnugacheFactor90")
	for _, d := range daysData {
		fmt.Printf("%d\t%.3f\t%.3f\t%.2f\t%.3f\t%.2f\n",
			d.Day, d.ChurnThreshold, d.StormChurnMedian, d.StormChurnFactor90, d.NugacheChurnMedian, d.NugacheChurnFactor90)
	}
	fmt.Println()
	return nil
}

func figure12(s *plotters.Suite) error {
	points, err := s.Figure12(nil, 3)
	if err != nil {
		return err
	}
	fmt.Println("## Figure 12: detection decay under ±d uniform jitter of repeat contacts")
	fmt.Println("# delay\tstormTPR\tnugacheTPR")
	for _, p := range points {
		fmt.Printf("%s\t%.4f\t%.4f\n", p.Delay, p.StormTPR, p.NugacheTPR)
	}
	fmt.Println()
	return nil
}
