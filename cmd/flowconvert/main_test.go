package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"plotters"
)

func TestConvertRoundTrip(t *testing.T) {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	records := []plotters.Record{{
		Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: plotters.TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 20,
		State: plotters.StateEstablished, Payload: []byte("x"),
	}}
	dir := t.TempDir()
	binPath := filepath.Join(dir, "in.flows")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := plotters.WriteTrace(f, records); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// binary -> jsonl via the streaming converter's core path.
	in, err := os.Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	outPath := filepath.Join(dir, "out.jsonl")
	out, err := os.Create(outPath)
	if err != nil {
		t.Fatal(err)
	}
	r, err := plotters.NewTraceReader(in, "binary")
	if err != nil {
		t.Fatal(err)
	}
	w, err := plotters.NewTraceWriter(out, "jsonl")
	if err != nil {
		t.Fatal(err)
	}
	n, err := plotters.CopyTrace(w, r)
	if err != nil || n != 1 {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	out.Close()

	back, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	got, err := plotters.ReadTraceJSONL(back)
	if err != nil || len(got) != 1 || got[0].Src != 1 {
		t.Errorf("round trip: %v, %v", got, err)
	}
}
