// Command flowconvert converts a flow trace between the binary, CSV,
// JSON Lines, and export packet-stream formats (NetFlow v5, IPFIX,
// sFlow v5), streaming record by record so traces larger than memory
// convert fine.
//
// The packet-stream formats are the wire formats real exporters emit:
// concatenations of valid export datagrams, readable back here and
// replayable over UDP with flowreplay. All three are lossy — timestamps
// floor to the millisecond and payload bytes are dropped (netflow
// additionally drops responder-side counters) — but each carries
// everything the detection pipeline reads.
//
// Usage:
//
//	flowconvert -from binary -to csv IN OUT
//	flowconvert -from binary -to netflow day-0.flows day-0.nf5
package main

import (
	"flag"
	"fmt"
	"os"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "flowconvert:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		from = flag.String("from", "binary", "input format: binary, csv, jsonl, netflow, ipfix, or sflow")
		to   = flag.String("to", "csv", "output format: binary, csv, jsonl, netflow, ipfix, or sflow")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		return fmt.Errorf("expected IN and OUT arguments")
	}
	in, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(flag.Arg(1))
	if err != nil {
		return err
	}

	reader, err := plotters.NewTraceReader(in, *from)
	if err != nil {
		out.Close()
		return err
	}
	writer, err := plotters.NewTraceWriter(out, *to)
	if err != nil {
		out.Close()
		return err
	}
	n, err := plotters.CopyTrace(writer, reader)
	if err != nil {
		out.Close()
		return fmt.Errorf("after %d records: %w", n, err)
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted %d records (%s -> %s)\n", n, *from, *to)
	return nil
}
