package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plotters"
)

// runDistShard streams a trace through a shard-local worker: records are
// reduced to per-host features and θ_hm sketches on this process, and
// only compact shard summaries cross the wire to the coordinator at
// -peers. The worker filters to hosts hashing to this shard, so every
// shard process can read the same full trace (or a pre-split one) and
// the deployment still computes exactly once per host.
func runDistShard(path, format string, reg *plotters.Metrics, cfg plotters.EngineConfig, sampler plotters.FlowSampler, shard, shards int, peer string, drainTimeout time.Duration) (int, error) {
	worker, err := plotters.NewShardWorker(plotters.ShardWorkerConfig{
		Shard:  shard,
		Shards: shards,
		Engine: cfg,
		Dial:   func() (net.Conn, error) { return net.Dial("tcp", peer) },
	})
	if err != nil {
		return 0, err
	}
	defer worker.Close()
	fmt.Fprintf(os.Stderr, "shard %d/%d: streaming %s to coordinator %s\n", shard, shards, path, peer)

	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, err := plotters.NewTraceReader(f, format)
	if err != nil {
		return 0, err
	}
	tr = plotters.MeterTraceReader(tr, reg)

	n := 0
	var last time.Time
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return n, err
		}
		// Content-hash sampling: every shard drops the same flow set, so
		// a sampled distributed run equals the sampled single-process run.
		if !sampler.Keep(&rec) {
			continue
		}
		n++
		if rec.Start.After(last) {
			last = rec.Start
		}
		if err := worker.Add(&rec); err != nil {
			return n, err
		}
	}
	// Seal every window the trace fully covered (watermark = last record
	// start), then flush the tail window as an explicit partial.
	if !last.IsZero() {
		if err := worker.AdvanceTo(last); err != nil {
			return n, err
		}
	}
	if err := worker.Flush(); err != nil {
		return n, err
	}
	if err := worker.Drain(drainTimeout); err != nil {
		return n, fmt.Errorf("shard %d: %w (%d frames unacknowledged — is the coordinator still up?)",
			shard, err, worker.Outstanding())
	}
	fmt.Printf("shard %d/%d: %d records read, %d windows shipped to %s\n",
		shard, shards, n, worker.Engine().Windows(), peer)
	return n, nil
}

// runDistCoordinator binds the -peers address, accepts shard-worker
// connections, and runs the global detection phase — percentile
// thresholds, θ_hm clustering, community graph — over the merged shard
// summaries of each sealed window. It runs until SIGINT/SIGTERM, then
// force-seals any windows still waiting on shards (marked [partial]) on
// the way out.
func runDistCoordinator(addr string, cfg plotters.CoordinatorConfig, verbose bool) error {
	coord, err := plotters.NewCoordinator(cfg, windowPrinter(verbose))
	if err != nil {
		return err
	}
	defer coord.Close()
	bound, err := coord.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "coordinator: %d shards expected on %s (Ctrl-C to stop)\n", cfg.Shards, bound)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	if err := coord.Flush(); err != nil {
		return err
	}
	fmt.Printf("\n%d windows detected\n", coord.Detector().Windows())
	for _, ss := range coord.ShardSeqs() {
		status := "never connected"
		if ss.Seen {
			status = fmt.Sprintf("connects=%d gaps=%d lost=%d dups=%d", ss.Connects, ss.Gaps, ss.Lost, ss.Dups)
		}
		fmt.Printf("shard %d: %s\n", ss.Shard, status)
	}
	return coord.Close()
}
