// Command plotfind runs the FindPlotters detection pipeline over a flow
// trace and prints the suspected P2P bots, with per-stage survivor counts
// and the dynamically computed thresholds.
//
// Usage:
//
//	plotfind [-format binary|csv|jsonl|netflow|ipfix|sflow] [-internal CIDR[,CIDR]] [-metrics FILE] [-v] TRACE
//	plotfind -hm-prune [-hm-cut D] ... TRACE
//	plotfind -sample 16 [-sample-seed S] ... TRACE
//	plotfind -window 6h [-slide 1h] [-shards N] [-skew 5m] ... TRACE
//	plotfind -listen :2055 -window 6h [-ingest-batch 32] [-sample N] [-skew 5m] [-state-dir DIR [-checkpoint-every 5m]] ...
//	plotfind -role coordinator -peers :7055 -dist-shards 2 -window 6h -origin TIME ...
//	plotfind -role shard -shard 0 -dist-shards 2 -peers host:7055 -window 6h -origin TIME ... TRACE
//
// With -hm-prune, θ_hm's pairwise EMD matrix runs through the layered
// pruning engine: pairs provably above the clustering cut skip their
// exact EMD evaluation, with detection output identical to the
// exhaustive run. The cut auto-calibrates from a host subsample, or
// -hm-cut pins it explicitly. The -metrics report (and the stdout
// summary) then carries the pair accounting — how many pairs the bound
// and pivot layers skipped versus evaluated exactly.
//
// With -window, the trace streams through the continuous windowed
// detection engine instead of one batch run: records feed a sharded
// feature store and the full pipeline runs at every window boundary,
// printing one summary per window. The trace is never held in memory.
// -slide turns the tumbling windows into overlapping sliding ones,
// -shards sizes the feature store, and -skew sets the reorder tolerance
// for out-of-order feeds.
//
// With -listen, there is no trace file at all: plotfind binds a UDP
// socket, decodes NetFlow v5/v9, IPFIX, and sFlow v5 export packets
// from live exporters, and feeds them straight into the windowed
// engine (-window is required). Datagrams are pulled in recvmmsg
// batches of -ingest-batch through the zero-allocation ingest ring.
// Records beyond the -skew tolerance are counted and dropped, never
// fatal — a live socket cannot re-request the past. Stop with Ctrl-C
// (SIGINT/SIGTERM): the collector drains its queue, the final partial
// window is flushed (marked [partial]), and the summary (plus the
// -metrics report, if requested) is written on the way out.
//
// With -sample N, a deterministic content-hash sampler keeps 1 flow in
// N before detection — in every mode: batch, windowed, live (where it
// runs inside the collector, before the WAL), and distributed (where
// every shard drops the same flow set). The kept subset depends only on
// record content and -sample-seed, never on stream order, so sampled
// runs are exactly reproducible; -sample 1 is bit-identical to no
// sampler at all.
//
// With -role, detection runs distributed across processes. Each -role
// shard process streams a trace through the pipeline's shard-local
// phase — per-host feature reduction and θ_hm histogram sketches for
// the hosts hashing to its shard — and ships only compact versioned
// shard summaries over TCP to the coordinator named by -peers. The
// -role coordinator process binds -peers, merges the summaries of its
// -dist-shards workers, and runs the global phase (percentile
// thresholds, θ_hm clustering, community graph) per window, printing
// the same per-window summaries as a single-process -window run —
// bit-identical to it, by construction. Every node must be started
// with the same -window, -origin, and detection knobs; a mismatch is
// refused at connection time with the offending knob named.
//
// With -state-dir, the live run is crash-safe: every record is
// write-ahead logged before it reaches the engine, and the full
// detection state — per-host features, window positions, collector
// sequence numbers — is snapshotted atomically every -checkpoint-every
// interval and once more on shutdown. Restarting with the same flags
// and directory restores the snapshot, replays the WAL tail, and
// resumes detection exactly where the previous process stopped, even
// after a kill -9.
//
// With -metrics, a JSON run report is written to FILE: trace metadata,
// total elapsed time, and a full metrics snapshot with every pipeline
// stage's duration and survivor count (see the README's Observability
// section). In -listen mode the snapshot includes the collector's
// packet, drop, and sequence-gap counters.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plotfind:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		format    = flag.String("format", "binary", "trace format: binary, csv, jsonl, or netflow")
		internals = flag.String("internal", "128.2.0.0/16,128.237.0.0/16", "comma-separated internal CIDR prefixes")
		verbose   = flag.Bool("v", false, "print per-stage host sets")
		volPct    = flag.Float64("vol-pct", 0, "override τ_vol percentile (0 = default)")
		churnPct  = flag.Float64("churn-pct", 0, "override τ_churn percentile (0 = default)")
		hmPct     = flag.Float64("hm-pct", 0, "override τ_hm percentile (0 = default)")
		parallel  = flag.Int("parallelism", 0, "worker count for the θ_hm distance matrix (0 = all CPUs, 1 = sequential)")
		hmPrune   = flag.Bool("hm-prune", false, "prune the θ_hm distance matrix: skip exact EMD for pairs provably above the clustering cut (identical detection output)")
		hmCut     = flag.Float64("hm-cut", 0, "explicit θ_hm prune/gate distance (0 = auto-calibrate when -hm-prune is set)")
		metricsTo = flag.String("metrics", "", "write a JSON run report (stage timings, survivor counts, I/O volume) to this file")
		detectors = flag.String("detectors", "findplotters", "comma-separated detectors to run per window: findplotters, community. More than one prints per-detector and ensemble (union/intersection) suspect counts")
		window    = flag.Duration("window", 0, "run continuous windowed detection with this window length instead of one batch run")
		slide     = flag.Duration("slide", 0, "sliding-window step (0 = tumbling windows; requires -window, must divide it)")
		shards    = flag.Int("shards", 0, "feature-store shard count for -window mode (0 = one per CPU)")
		skew      = flag.Duration("skew", 0, "out-of-order tolerance for -window mode (records later than this are dropped)")
		listen    = flag.String("listen", "", "UDP address to collect live NetFlow exports on (e.g. :2055) instead of reading a trace; requires -window")
		sampleN   = flag.Uint64("sample", 1, "deterministic 1-in-N flow sampling before detection (1 = keep everything); the keep set depends only on record content and -sample-seed")
		sampleKey = flag.Uint64("sample-seed", 0, "seed for -sample's content fingerprint (same seed + same N = same kept flows)")
		inBatch   = flag.Int("ingest-batch", 0, "datagrams per recvmmsg batch on the -listen socket (0 = default, 1 = plain reads)")
		stateDir  = flag.String("state-dir", "", "directory for crash-safe durable state (snapshot + write-ahead log); requires -listen. On start, any state found there is recovered")
		ckptEvery = flag.Duration("checkpoint-every", 5*time.Minute, "periodic checkpoint interval for -state-dir")
		walSync   = flag.Int("wal-sync-every", 256, "fsync the write-ahead log every N records (1 = every record: survives power loss, but gates ingest on fsync latency)")
		role      = flag.String("role", "", "distributed detection role: shard (reduce a trace locally, ship summaries) or coordinator (merge shard summaries, run the global phase); requires -window, -peers, -dist-shards")
		peers     = flag.String("peers", "", "coordinator TCP address: what a shard dials, or what the coordinator binds (required with -role)")
		shardIdx  = flag.Int("shard", 0, "this worker's shard index in [0,dist-shards) for -role shard")
		distN     = flag.Int("dist-shards", 0, "total shard-worker count in the distributed deployment (required with -role)")
		distWait  = flag.Duration("dist-timeout", 0, "coordinator: force-seal a window as [partial] when shards lag this long behind it (0 = wait forever)")
		origin    = flag.String("origin", "", "window alignment origin, RFC 3339 (required with -role, where every node must agree on it; optional with plain -window)")
		drainWait = flag.Duration("drain-timeout", 30*time.Second, "shard: how long to wait at end of trace for the coordinator to acknowledge every frame")
	)
	flag.Parse()
	switch {
	case *role == "coordinator":
		if flag.NArg() != 0 {
			flag.Usage()
			return fmt.Errorf("-role coordinator takes no trace file argument (shards read the traces)")
		}
	case *listen != "":
		if flag.NArg() != 0 {
			flag.Usage()
			return fmt.Errorf("-listen takes no trace file argument")
		}
		if *window <= 0 {
			return fmt.Errorf("-listen requires -window (live detection is windowed)")
		}
		if *role != "" {
			return fmt.Errorf("-role and -listen are mutually exclusive (shards read trace files)")
		}
	case *stateDir != "":
		return fmt.Errorf("-state-dir requires -listen (durable state protects live collection; file traces just re-run)")
	case flag.NArg() != 1:
		flag.Usage()
		return fmt.Errorf("expected exactly one trace file argument")
	}

	if *inBatch < 0 {
		return fmt.Errorf("-ingest-batch must be >= 0")
	}
	if *inBatch != 0 && *listen == "" {
		return fmt.Errorf("-ingest-batch requires -listen (it sizes the socket's recvmmsg batch)")
	}
	sampler := plotters.FlowSampler{N: *sampleN, Seed: *sampleKey}

	var reg *plotters.Metrics
	if *metricsTo != "" {
		reg = plotters.NewMetrics()
	}
	started := time.Now()

	internal, err := parseSubnets(*internals)
	if err != nil {
		return err
	}
	cfg := plotters.DefaultConfig()
	cfg.Metrics = reg
	if *volPct > 0 {
		cfg.VolPercentile = *volPct
	}
	if *churnPct > 0 {
		cfg.ChurnPercentile = *churnPct
	}
	if *hmPct > 0 {
		cfg.HMPercentile = *hmPct
	}
	cfg.Parallelism = *parallel
	cfg.HMPrune = *hmPrune
	cfg.HMCut = *hmCut

	dets, err := buildDetectors(*detectors, cfg, reg)
	if err != nil {
		return err
	}

	if *role != "" {
		if *role != "shard" && *role != "coordinator" {
			return fmt.Errorf("-role must be shard or coordinator, not %q", *role)
		}
		if *window <= 0 {
			return fmt.Errorf("-role requires -window (distributed detection is windowed)")
		}
		if *peers == "" {
			return fmt.Errorf("-role requires -peers (the coordinator's TCP address)")
		}
		if *distN < 1 {
			return fmt.Errorf("-role requires -dist-shards >= 1")
		}
		if *origin == "" {
			return fmt.Errorf("-role requires -origin (shard and coordinator window indices align only against a shared origin)")
		}
		orig, err := time.Parse(time.RFC3339, *origin)
		if err != nil {
			return fmt.Errorf("-origin: %w", err)
		}
		engCfg := plotters.EngineConfig{
			Window:    *window,
			Slide:     *slide,
			Origin:    orig,
			Shards:    *shards,
			MaxSkew:   *skew,
			Internal:  internal,
			Core:      cfg,
			Detectors: dets,
		}
		if *role == "coordinator" {
			return runDistCoordinator(*peers, plotters.CoordinatorConfig{
				Shards:        *distN,
				Engine:        engCfg,
				WindowTimeout: *distWait,
			}, *verbose)
		}
		n, err := runDistShard(flag.Arg(0), *format, reg, engCfg, sampler, *shardIdx, *distN, *peers, *drainWait)
		if err != nil {
			return err
		}
		if reg != nil {
			if err := writeReport(*metricsTo, flag.Arg(0), *format, n, time.Since(started), reg, nil); err != nil {
				return err
			}
			fmt.Printf("run report written to %s\n", *metricsTo)
		}
		return nil
	}
	if *window > 0 {
		engCfg := plotters.EngineConfig{
			Window:    *window,
			Slide:     *slide,
			Shards:    *shards,
			MaxSkew:   *skew,
			Internal:  internal,
			Core:      cfg,
			Detectors: dets,
		}
		if *origin != "" {
			engCfg.Origin, err = time.Parse(time.RFC3339, *origin)
			if err != nil {
				return fmt.Errorf("-origin: %w", err)
			}
		}
		var n int
		var ckpt *checkpointReport
		var source, srcFormat string
		if *listen != "" {
			source, srcFormat = *listen, "netflow-udp"
			engCfg.StateDir = *stateDir
			n, ckpt, err = runListen(*listen, reg, engCfg, sampler, *inBatch, *ckptEvery, *walSync, *verbose)
		} else {
			source, srcFormat = flag.Arg(0), *format
			n, err = runWindowed(source, srcFormat, reg, engCfg, sampler, *verbose)
		}
		if err != nil {
			return err
		}
		if reg != nil {
			if err := writeReport(*metricsTo, source, srcFormat, n, time.Since(started), reg, ckpt); err != nil {
				return err
			}
			fmt.Printf("\nrun report written to %s\n", *metricsTo)
		}
		return nil
	}
	if *slide > 0 || *skew > 0 || *shards > 0 {
		return fmt.Errorf("-slide, -shards, and -skew require -window")
	}

	records, sampledOut, err := readTrace(flag.Arg(0), *format, reg, sampler)
	if err != nil {
		return err
	}
	if sampler.Enabled() {
		fmt.Printf("loaded %d flow records from %s (1-in-%d sampling dropped %d)\n",
			len(records), flag.Arg(0), sampler.N, sampledOut)
	} else {
		fmt.Printf("loaded %d flow records from %s\n", len(records), flag.Arg(0))
	}

	res, err := plotters.FindPlotters(records, internal, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("\nstage           hosts  threshold\n")
	fmt.Printf("analyzed      %7d\n", len(res.Analysis.Hosts()))
	fmt.Printf("reduction     %7d  failed-rate > %.4f\n", len(res.Reduction.Kept), res.Reduction.Threshold)
	fmt.Printf("θ_vol         %7d  avg bytes/flow < %.1f\n", len(res.Volume.Kept), res.Volume.Threshold)
	fmt.Printf("θ_churn       %7d  new-IP fraction < %.4f\n", len(res.Churn.Kept), res.Churn.Threshold)
	fmt.Printf("θ_hm          %7d  cluster spread ≤ %.4f (%d clusters, %d hosts clustered, %d skipped)\n",
		len(res.Suspects), res.HM.Threshold, len(res.HM.Clusters), res.HM.Clustered, res.HM.Skipped)
	if reg != nil {
		if pr, ok := plotters.PruneSummary(reg.TakeSnapshot()); ok {
			fmt.Printf("θ_hm pruning: %d of %d pairs evaluated exactly, +%d calibration (%.1f%%; bound pruned %d, pivots pruned %d, gated %d)\n",
				pr.Exact, pr.PairsTotal, pr.Calibration, 100*pr.ExactFraction, pr.PrunedBound, pr.PrunedPivot, pr.Gated)
		}
	}

	if *verbose {
		printSet := func(name string, set plotters.HostSet) {
			hosts := set.Sorted()
			strs := make([]string, len(hosts))
			for i, h := range hosts {
				strs[i] = h.String()
			}
			fmt.Printf("\n%s (%d): %s\n", name, len(hosts), strings.Join(strs, " "))
		}
		printSet("S (after reduction)", res.Reduction.Kept)
		printSet("S_vol", res.Volume.Kept)
		printSet("S_churn", res.Churn.Kept)
	}

	fmt.Printf("\nsuspected plotters (%d):\n", len(res.Suspects))
	feats := res.Analysis.Features()
	for _, h := range res.Suspects.Sorted() {
		f := feats[h]
		fmt.Printf("  %-16s flows=%-6d avgBytes/flow=%-9.1f failedRate=%.2f newIPFraction=%.2f\n",
			h, f.Flows, f.AvgBytesPerFlow(), f.FailedRate(), f.NewPeerFraction())
	}

	if dets != nil {
		if err := runBatchEnsemble(dets, res, records, internal, cfg, *verbose); err != nil {
			return err
		}
	}
	if len(res.HM.Clusters) > 0 {
		fmt.Printf("\nθ_hm clusters:\n")
		clusters := append([]plotters.HMCluster(nil), res.HM.Clusters...)
		sort.Slice(clusters, func(i, j int) bool { return clusters[i].Diameter < clusters[j].Diameter })
		for _, c := range clusters {
			marker := " "
			if c.Kept {
				marker = "*"
			}
			if c.Diameter == math.MaxFloat64 {
				// Clamped sentinel spread: an explicit -hm-cut below this
				// cluster's true spread (see the pipeline's overcut gauge).
				fmt.Printf("  %s size=%-4d spread=overcut\n", marker, len(c.Hosts))
				continue
			}
			fmt.Printf("  %s size=%-4d spread=%.4f\n", marker, len(c.Hosts), c.Diameter)
		}
		fmt.Printf("(* = kept by τ_hm)\n")
	}
	if reg != nil {
		if err := writeReport(*metricsTo, flag.Arg(0), *format, len(records), time.Since(started), reg, nil); err != nil {
			return err
		}
		fmt.Printf("\nrun report written to %s\n", *metricsTo)
	}
	return nil
}

// buildDetectors parses the -detectors list into detector instances.
// The default single-paper-pipeline spec returns nil, keeping the
// engine's and the batch path's original single-detector behavior.
func buildDetectors(spec string, cfg plotters.Config, reg *plotters.Metrics) ([]plotters.Detector, error) {
	names := strings.Split(spec, ",")
	var out []plotters.Detector
	seen := map[string]bool{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if seen[name] {
			return nil, fmt.Errorf("-detectors lists %q twice", name)
		}
		seen[name] = true
		switch name {
		case plotters.PaperDetectorName:
			det, err := plotters.NewPaperDetector(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, det)
		case plotters.CommunityDetectorName:
			ccfg := plotters.DefaultCommunityConfig()
			ccfg.Metrics = reg
			det, err := plotters.NewCommunityDetector(ccfg)
			if err != nil {
				return nil, err
			}
			out = append(out, det)
		default:
			return nil, fmt.Errorf("unknown detector %q (have: %s, %s)",
				name, plotters.PaperDetectorName, plotters.CommunityDetectorName)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-detectors lists no detectors")
	}
	if len(out) == 1 && seen[plotters.PaperDetectorName] {
		return nil, nil
	}
	return out, nil
}

// runBatchEnsemble runs the non-paper detectors of a batch invocation
// over the already-loaded records (the paper verdict res is reused, not
// recomputed) and prints per-detector and ensemble suspect counts.
func runBatchEnsemble(dets []plotters.Detector, res *plotters.Result, records []plotters.Record, internal func(plotters.IP) bool, cfg plotters.Config, verbose bool) error {
	src := plotters.ExtractFeatureSet(records, plotters.FeatureOptions{
		Hosts:        internal,
		NewPeerGrace: cfg.NewPeerGrace,
	}, plotters.Window{})
	detections := make([]*plotters.Detection, 0, len(dets))
	for _, det := range dets {
		if det.Name() == plotters.PaperDetectorName {
			detections = append(detections, &plotters.Detection{
				Detector: plotters.PaperDetectorName, Suspects: res.Suspects, Paper: res,
			})
			continue
		}
		dn, err := det.Detect(src)
		if err != nil {
			return err
		}
		detections = append(detections, dn)
	}

	fmt.Printf("\ndetector ensemble:\n")
	for _, dn := range detections {
		fmt.Printf("  %-14s suspects=%d", dn.Detector, len(dn.Suspects))
		if rep, ok := dn.Details.(*plotters.CommunityReport); ok {
			fmt.Printf("  graph: hosts=%d edges=%d communities=%d flagged=%d",
				rep.GraphHosts, rep.GraphEdges, len(rep.Communities), len(rep.Flagged))
		}
		fmt.Println()
		if verbose {
			for _, h := range dn.Suspects.Sorted() {
				fmt.Printf("    %s\n", h)
			}
		}
	}
	fmt.Printf("  union=%d intersection=%d\n",
		len(plotters.UnionSuspects(detections)), len(plotters.IntersectSuspects(detections)))
	return nil
}

// runWindowed streams the trace through the continuous detection engine,
// printing one summary per sealed window, and returns the record count.
// The trace is read record by record — it never sits in memory.
func runWindowed(path, format string, reg *plotters.Metrics, cfg plotters.EngineConfig, sampler plotters.FlowSampler, verbose bool) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	tr, err := plotters.NewTraceReader(f, format)
	if err != nil {
		return 0, err
	}
	tr = plotters.MeterTraceReader(tr, reg)

	eng, err := plotters.NewWindowedDetector(cfg, windowPrinter(verbose))
	if err != nil {
		return 0, err
	}

	n, dropped, sampledOut := 0, 0, 0
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return n, err
		}
		if !sampler.Keep(&rec) {
			sampledOut++
			continue
		}
		n++
		if err := eng.Add(&rec); err != nil {
			if errors.Is(err, plotters.ErrLateRecord) {
				dropped++
				continue
			}
			return n, err
		}
	}
	if err := eng.Flush(); err != nil {
		return n, err
	}
	fmt.Printf("\n%d records, %d windows detected", n, eng.Windows())
	if dropped > 0 {
		fmt.Printf(", %d records dropped beyond the %v skew tolerance", dropped, cfg.MaxSkew)
	}
	if sampledOut > 0 {
		fmt.Printf(", %d records sampled out (1-in-%d)", sampledOut, sampler.N)
	}
	fmt.Println()
	return n, nil
}

// windowPrinter builds the per-window emit callback shared by the file
// and live ingest paths. Windows flushed before their scheduled end
// (shutdown, end of trace) are marked partial — their counts cover
// only the portion of the window that actually elapsed.
func windowPrinter(verbose bool) func(*plotters.WindowResult) error {
	return func(res *plotters.WindowResult) error {
		partial := ""
		if res.Partial {
			partial = " [partial]"
		}
		if det := res.Detection; det != nil {
			fmt.Printf("window %d %s%s: hosts=%d records=%d reduction=%d vol=%d churn=%d suspects=%d\n",
				res.Index, res.Window, partial, res.Hosts, res.Records,
				len(det.Reduction.Kept), len(det.Volume.Kept), len(det.Churn.Kept), len(det.Suspects))
			if verbose {
				feats := det.Analysis.Features()
				for _, h := range det.Suspects.Sorted() {
					hf := feats[h]
					fmt.Printf("  %-16s flows=%-6d avgBytes/flow=%-9.1f failedRate=%.2f newIPFraction=%.2f\n",
						h, hf.Flows, hf.AvgBytesPerFlow(), hf.FailedRate(), hf.NewPeerFraction())
				}
			}
		} else {
			// No paper pipeline in the detector set: the per-stage survivor
			// counts do not exist, only the detector verdicts below.
			fmt.Printf("window %d %s%s: hosts=%d records=%d\n",
				res.Index, res.Window, partial, res.Hosts, res.Records)
		}
		if len(res.Detections) > 1 || res.Detection == nil {
			parts := make([]string, 0, len(res.Detections))
			for _, dn := range res.Detections {
				parts = append(parts, fmt.Sprintf("%s=%d", dn.Detector, len(dn.Suspects)))
			}
			fmt.Printf("  detectors: %s; union=%d intersection=%d\n",
				strings.Join(parts, " "),
				len(plotters.UnionSuspects(res.Detections)),
				len(plotters.IntersectSuspects(res.Detections)))
		}
		return nil
	}
}

// runListen binds a UDP socket and feeds live NetFlow exports into the
// windowed engine until SIGINT/SIGTERM, then drains, flushes the final
// (partial) window, and returns the record count. Late records are
// dropped and counted rather than treated as fatal — a live socket
// cannot replay the past — and decode runs on a single worker so
// records reach the engine in arrival order.
//
// With a state directory configured, every record is write-ahead
// logged before it reaches the engine and a checkpointer goroutine
// snapshots the full detection state on the -checkpoint-every cadence.
// On start, state left by a previous (possibly crashed) process is
// recovered: the snapshot is restored and the WAL tail replayed, so
// detection resumes exactly where it stopped. Graceful shutdown ends
// with a final checkpoint, so a clean restart replays nothing.
func runListen(addr string, reg *plotters.Metrics, cfg plotters.EngineConfig, sampler plotters.FlowSampler, inBatch int, ckptEvery time.Duration, walSync int, verbose bool) (int, *checkpointReport, error) {
	cfg.DropLate = true
	eng, err := plotters.NewWindowedDetector(cfg, windowPrinter(verbose))
	if err != nil {
		return 0, nil, err
	}

	// n and ingestErr are written only by the collector's single worker
	// and read after Run returns, once every worker has exited.
	n := 0
	var ingestErr error
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var mgr *plotters.CheckpointManager
	add := eng.Add
	if cfg.StateDir != "" {
		mgr, err = plotters.NewCheckpointManager(plotters.CheckpointConfig{
			Interval:  ckptEvery,
			SyncEvery: walSync,
			Metrics:   reg,
		}, eng)
		if err != nil {
			return 0, nil, err
		}
		defer mgr.Close()
		add = mgr.Add
	}

	col, err := plotters.ListenNetFlow(plotters.CollectorConfig{
		Addr:       addr,
		Workers:    1,
		Batch:      inBatch,
		SampleN:    sampler.N,
		SampleSeed: sampler.Seed,
		Metrics:    reg,
		Handler: func(records []plotters.Record) {
			if ingestErr != nil {
				return
			}
			for i := range records {
				n++
				if err := add(&records[i]); err != nil {
					// DropLate absorbs skew; anything left is a real
					// detection, durability, or emit failure — stop
					// collecting.
					ingestErr = err
					stop()
					return
				}
			}
		},
	})
	if err != nil {
		return 0, nil, err
	}

	// Recovery runs after the socket binds but before packets flow
	// (nothing is decoded until col.Run), so replayed windows print
	// before live ones.
	var recovered *plotters.CheckpointRecovery
	ckptErr := make(chan error, 1)
	if mgr != nil {
		mgr.AttachCollector(col)
		recovered, err = mgr.Recover()
		if err != nil {
			return 0, nil, fmt.Errorf("recovering %s: %w", mgr.Dir(), err)
		}
		switch {
		case recovered.SnapshotLoaded:
			fmt.Fprintf(os.Stderr, "recovered state from %s: snapshot of %s, %d WAL records replayed\n",
				mgr.Dir(), recovered.SnapshotCreated.Format(time.RFC3339), recovered.Replayed)
		case recovered.Replayed > 0:
			fmt.Fprintf(os.Stderr, "recovered state from %s: no snapshot, %d WAL records replayed\n",
				mgr.Dir(), recovered.Replayed)
		default:
			fmt.Fprintf(os.Stderr, "durable state in %s (cold start)\n", mgr.Dir())
		}
		if recovered.WALTorn {
			fmt.Fprintln(os.Stderr, "note: WAL ended mid-frame (crash during append); torn tail truncated")
		}
		col.RestoreSequenceStates(recovered.Exporters)
		go func() { ckptErr <- mgr.Run(ctx) }()
	} else {
		close(ckptErr)
	}
	fmt.Fprintf(os.Stderr, "listening for NetFlow v5/v9, IPFIX, and sFlow on %s (Ctrl-C to stop)\n", col.Addr())

	if err := col.Run(ctx); err != nil {
		return n, nil, err
	}
	stop()
	if err := <-ckptErr; err != nil {
		return n, nil, err
	}
	if ingestErr != nil {
		return n, nil, ingestErr
	}

	// Graceful shutdown: flush the final (partial) window, then commit
	// one last checkpoint so a clean restart replays nothing.
	var ckpt *checkpointReport
	if mgr != nil {
		if err := mgr.Flush(); err != nil {
			return n, nil, err
		}
		if err := mgr.Checkpoint(); err != nil {
			return n, nil, fmt.Errorf("final checkpoint: %w", err)
		}
		st, err := os.Stat(mgr.SnapshotPath())
		if err != nil {
			return n, nil, err
		}
		if err := mgr.Close(); err != nil {
			return n, nil, err
		}
		ckpt = &checkpointReport{
			StateDir:        mgr.Dir(),
			SnapshotPath:    mgr.SnapshotPath(),
			SnapshotBytes:   st.Size(),
			SnapshotLoaded:  recovered.SnapshotLoaded,
			ReplayedRecords: recovered.Replayed,
		}
	} else if err := eng.Flush(); err != nil {
		return n, nil, err
	}

	fmt.Printf("\n%d records collected, %d windows detected", n, eng.Windows())
	if d := eng.Dropped(); d > 0 {
		fmt.Printf(", %d records dropped beyond the %v skew tolerance", d, cfg.MaxSkew)
	}
	fmt.Println()
	if ckpt != nil {
		fmt.Printf("final checkpoint: %s (%d bytes)\n", ckpt.SnapshotPath, ckpt.SnapshotBytes)
	}
	return n, ckpt, nil
}

// runReport is the JSON document -metrics emits: trace metadata plus the
// full metrics snapshot (per-stage durations, survivor-count gauges, and
// I/O counters). Prune summarizes the θ_hm pruning engine's pair
// accounting when -hm-prune or -hm-cut engaged it.
type runReport struct {
	Tool           string                   `json:"tool"`
	Trace          string                   `json:"trace"`
	Format         string                   `json:"format"`
	Records        int                      `json:"records"`
	ElapsedSeconds float64                  `json:"elapsed_seconds"`
	Checkpoint     *checkpointReport        `json:"checkpoint,omitempty"`
	Prune          *plotters.PruneReport    `json:"prune,omitempty"`
	Metrics        plotters.MetricsSnapshot `json:"metrics"`
}

// checkpointReport records the durable-state outcome of a -state-dir
// run: what was recovered on the way in and the final checkpoint
// committed on the way out.
type checkpointReport struct {
	StateDir        string `json:"state_dir"`
	SnapshotPath    string `json:"snapshot_path"`
	SnapshotBytes   int64  `json:"snapshot_bytes"`
	SnapshotLoaded  bool   `json:"snapshot_loaded"`
	ReplayedRecords int    `json:"replayed_records"`
}

func writeReport(path, trace, format string, records int, elapsed time.Duration, reg *plotters.Metrics, ckpt *checkpointReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	report := runReport{
		Tool:           "plotfind",
		Trace:          trace,
		Format:         format,
		Records:        records,
		ElapsedSeconds: elapsed.Seconds(),
		Checkpoint:     ckpt,
		Metrics:        reg.TakeSnapshot(),
	}
	if pr, ok := plotters.PruneSummary(report.Metrics); ok {
		report.Prune = &pr
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return fmt.Errorf("writing run report: %w", err)
	}
	return f.Close()
}

func parseSubnets(csv string) (func(plotters.IP) bool, error) {
	var subnets []plotters.Subnet
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		sn, err := plotters.ParseSubnet(s)
		if err != nil {
			return nil, err
		}
		subnets = append(subnets, sn)
	}
	if len(subnets) == 0 {
		return nil, fmt.Errorf("no internal subnets given")
	}
	return func(ip plotters.IP) bool {
		for _, sn := range subnets {
			if sn.Contains(ip) {
				return true
			}
		}
		return false
	}, nil
}

func readTrace(path, format string, reg *plotters.Metrics, sampler plotters.FlowSampler) ([]plotters.Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	tr, err := plotters.NewTraceReader(f, format)
	if err != nil {
		return nil, 0, err
	}
	plotters.MeterTraceReader(tr, reg)
	var records []plotters.Record
	sampledOut := 0
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return records, sampledOut, nil
		}
		if err != nil {
			return nil, sampledOut, err
		}
		if !sampler.Keep(&rec) {
			sampledOut++
			continue
		}
		records = append(records, rec)
	}
}
