package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"plotters"
)

func TestParseSubnets(t *testing.T) {
	internal, err := parseSubnets("128.2.0.0/16, 128.237.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := plotters.ParseIP("128.2.9.9")
	out, _ := plotters.ParseIP("4.4.4.4")
	if !internal(in) || internal(out) {
		t.Error("membership wrong")
	}
	if _, err := parseSubnets("bogus"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if _, err := parseSubnets(" , "); err == nil {
		t.Error("empty list accepted")
	}
}

func TestReadTraceFormats(t *testing.T) {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	records := []plotters.Record{{
		Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: plotters.TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
		State: plotters.StateEstablished,
	}}
	dir := t.TempDir()
	for _, tc := range []struct {
		format string
		write  func(f *os.File) error
	}{
		{"binary", func(f *os.File) error { return plotters.WriteTrace(f, records) }},
		{"csv", func(f *os.File) error { return plotters.WriteTraceCSV(f, records) }},
		{"jsonl", func(f *os.File) error { return plotters.WriteTraceJSONL(f, records) }},
	} {
		path := filepath.Join(dir, "trace."+tc.format)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		reg := plotters.NewMetrics()
		got, _, err := readTrace(path, tc.format, reg, plotters.FlowSampler{})
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if len(got) != 1 || got[0].Src != 1 {
			t.Errorf("%s: round trip failed", tc.format)
		}
		snap := reg.TakeSnapshot()
		if n := snap.Counters["flowio/"+tc.format+"/records"]; n != 1 {
			t.Errorf("%s: records counter = %d, want 1", tc.format, n)
		}
	}
	if _, _, err := readTrace(filepath.Join(dir, "trace.binary"), "bogus", nil, plotters.FlowSampler{}); err == nil {
		t.Error("unknown format accepted")
	}
	if _, _, err := readTrace(filepath.Join(dir, "missing"), "binary", nil, plotters.FlowSampler{}); err == nil {
		t.Error("missing file accepted")
	}
}

// The -metrics flag must produce a valid JSON run report carrying every
// pipeline stage's duration and survivor-count gauges.
func TestRunReport(t *testing.T) {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	var records []plotters.Record
	for host := 0; host < 6; host++ {
		for i := 0; i < 40; i++ {
			state := plotters.StateEstablished
			if i%2 == 0 {
				state = plotters.StateFailed
			}
			records = append(records, plotters.Record{
				Src: plotters.IP(host + 1), Dst: plotters.IP(1000 + host*50 + i%8),
				SrcPort: 1, DstPort: 2, Proto: plotters.TCP,
				Start:   start.Add(time.Duration(i) * 30 * time.Second),
				End:     start.Add(time.Duration(i)*30*time.Second + time.Second),
				SrcPkts: 1, SrcBytes: uint64(100 + host*10), State: state,
			})
		}
	}
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.bin")
	f, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := plotters.WriteTrace(f, records); err != nil {
		t.Fatal(err)
	}
	f.Close()

	report := filepath.Join(dir, "report.json")
	flag.CommandLine = flag.NewFlagSet("plotfind", flag.ContinueOnError)
	os.Args = []string{"plotfind", "-internal", "0.0.0.0/8", "-metrics", report, trace}
	if err := run(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var got runReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Tool != "plotfind" || got.Trace != trace || got.Format != "binary" {
		t.Errorf("report header = %+v", got)
	}
	if got.Records != len(records) {
		t.Errorf("report records = %d, want %d", got.Records, len(records))
	}
	if got.ElapsedSeconds <= 0 {
		t.Errorf("elapsed = %v, want > 0", got.ElapsedSeconds)
	}
	stages := make(map[string]bool)
	for _, s := range got.Metrics.Stages {
		stages[s.Name] = true
		if s.Count < 1 {
			t.Errorf("stage %q has count %d", s.Name, s.Count)
		}
	}
	for _, want := range []string{
		"pipeline", "pipeline/extract", "pipeline/reduction", "pipeline/vol",
		"pipeline/churn", "pipeline/hm",
	} {
		if !stages[want] {
			t.Errorf("stage %q missing from report", want)
		}
	}
	for _, want := range []string{
		"pipeline/hosts/analyzed", "pipeline/hosts/reduction", "pipeline/hosts/vol",
		"pipeline/hosts/churn", "pipeline/hosts/suspects",
	} {
		if _, ok := got.Metrics.Gauges[want]; !ok {
			t.Errorf("gauge %q missing from report", want)
		}
	}
	if n := got.Metrics.Counters["flowio/binary/records"]; n != int64(len(records)) {
		t.Errorf("flowio/binary/records = %d, want %d", n, len(records))
	}
}
