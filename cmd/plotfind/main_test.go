package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"plotters"
)

func TestParseSubnets(t *testing.T) {
	internal, err := parseSubnets("128.2.0.0/16, 128.237.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	in, _ := plotters.ParseIP("128.2.9.9")
	out, _ := plotters.ParseIP("4.4.4.4")
	if !internal(in) || internal(out) {
		t.Error("membership wrong")
	}
	if _, err := parseSubnets("bogus"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if _, err := parseSubnets(" , "); err == nil {
		t.Error("empty list accepted")
	}
}

func TestReadTraceFormats(t *testing.T) {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	records := []plotters.Record{{
		Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: plotters.TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: 10, DstBytes: 10,
		State: plotters.StateEstablished,
	}}
	dir := t.TempDir()
	for _, tc := range []struct {
		format string
		write  func(f *os.File) error
	}{
		{"binary", func(f *os.File) error { return plotters.WriteTrace(f, records) }},
		{"csv", func(f *os.File) error { return plotters.WriteTraceCSV(f, records) }},
		{"jsonl", func(f *os.File) error { return plotters.WriteTraceJSONL(f, records) }},
	} {
		path := filepath.Join(dir, "trace."+tc.format)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.write(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := readTrace(path, tc.format)
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if len(got) != 1 || got[0].Src != 1 {
			t.Errorf("%s: round trip failed", tc.format)
		}
	}
	if _, err := readTrace(filepath.Join(dir, "trace.binary"), "bogus"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := readTrace(filepath.Join(dir, "missing"), "binary"); err == nil {
		t.Error("missing file accepted")
	}
}
