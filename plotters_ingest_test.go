// Loopback equivalence for the line-rate ingest subsystem's new
// decoders: the seed-42 corpus day packed into IPFIX and sFlow v5
// export datagrams and replayed through a real UDP socket (batched
// recvmmsg reader, pooled buffers, arena-backed records) must drive the
// windowed engine to the exact same per-window outcome as feeding the
// codec-quantized records directly. The outcome per format is pinned in
// testdata/ingest_golden.json.
//
// After an intentional behavior change, regenerate with:
//
//	go test -run TestIngestLoopbackFormats -update
package plotters_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"plotters"
)

const ingestGoldenPath = "testdata/ingest_golden.json"

// packetWriter captures each Write as one wire datagram — the writers'
// one-Write-per-packet contract makes this the packet splitter for any
// export format.
type packetWriter struct {
	packets [][]byte
}

func (pw *packetWriter) Write(p []byte) (int, error) {
	pw.packets = append(pw.packets, append([]byte(nil), p...))
	return len(p), nil
}

// formatCorpus quantizes the corpus day through one export trace codec,
// returning the individual datagrams, their per-packet record counts,
// and the decoded wire records a collector would reconstruct.
func formatCorpus(t *testing.T, records []plotters.Record, format string) ([][]byte, []int, []plotters.Record) {
	t.Helper()
	var pw packetWriter
	w, err := plotters.NewTraceWriter(&pw, format)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var counts []int
	var wire []plotters.Record
	for i, pkt := range pw.packets {
		// Every datagram is self-describing, so each decodes alone.
		r, err := plotters.NewTraceReader(bytes.NewReader(pkt), format)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			rec, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("%s packet %d: %v", format, i, err)
			}
			wire = append(wire, rec)
			n++
		}
		counts = append(counts, n)
	}
	if len(wire) != len(records) {
		t.Fatalf("%s codec round trip lost records: %d != %d", format, len(wire), len(records))
	}
	return pw.packets, counts, wire
}

func TestIngestLoopbackFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis and loopback replay take a few seconds; skipped in -short mode")
	}
	records, window, pipe := corpusDay(t)

	got := map[string]collectorGolden{}
	for _, format := range []string{"ipfix", "sflow"} {
		packets, counts, wire := formatCorpus(t, records, format)

		// Reference: the quantized records fed straight into the engine.
		var direct []collectorWindow
		dEng := collectorEngine(t, pipe, window, &direct)
		for i := range wire {
			if err := dEng.Add(&wire[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := dEng.AdvanceTo(window.To); err != nil {
			t.Fatal(err)
		}
		if dEng.Dropped() != 0 {
			t.Fatalf("%s: direct ingest dropped %d records", format, dEng.Dropped())
		}

		// Live path: the same datagrams through a real UDP socket and the
		// batched ingest ring, sender flow-controlled on the collector's
		// record counter.
		var live []collectorWindow
		lEng := collectorEngine(t, pipe, window, &live)
		reg := plotters.NewMetrics()
		col, err := plotters.ListenNetFlow(plotters.CollectorConfig{
			Addr:    "127.0.0.1:0",
			Workers: 1,
			Metrics: reg,
			Handler: func(records []plotters.Record) {
				for i := range records {
					if err := lEng.Add(&records[i]); err != nil {
						t.Errorf("%s live ingest: %v", format, err)
						return
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		runDone := make(chan error, 1)
		go func() { runDone <- col.Run(ctx) }()

		conn, err := net.Dial("udp", col.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		decoded := func() int64 {
			return reg.TakeSnapshot().Counters["collector/records"]
		}
		sent := 0
		for i, pkt := range packets {
			if _, err := conn.Write(pkt); err != nil {
				t.Fatal(err)
			}
			sent += counts[i]
			deadline := time.Now().Add(10 * time.Second)
			for decoded() < int64(sent) {
				if time.Now().After(deadline) {
					t.Fatalf("%s packet %d: collector decoded %d of %d sent records", format, i, decoded(), sent)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
		conn.Close()
		cancel()
		if err := <-runDone; err != nil {
			t.Fatal(err)
		}
		if err := lEng.AdvanceTo(window.To); err != nil {
			t.Fatal(err)
		}

		snap := reg.TakeSnapshot()
		for name, want := range map[string]int64{
			"collector/packets":           int64(len(packets)),
			"collector/records":           int64(len(wire)),
			"collector/packets/dropped":   0,
			"collector/packets/malformed": 0,
			"collector/seq/gaps":          0,
			"collector/sflow/skipped":     0,
		} {
			if got := snap.Counters[name]; got != want {
				t.Errorf("%s: %s = %d, want %d", format, name, got, want)
			}
		}
		if lEng.Dropped() != 0 {
			t.Errorf("%s: live ingest dropped %d records", format, lEng.Dropped())
		}
		if !reflect.DeepEqual(live, direct) {
			t.Fatalf("%s: live windows differ from direct ingest:\nlive   %+v\ndirect %+v", format, live, direct)
		}
		got[format] = collectorGolden{WireRecords: len(wire), Windows: direct}
	}

	// IPFIX and sFlow both carry bidirectional counters and millisecond
	// times, so the two wire paths must agree with each other exactly.
	if !reflect.DeepEqual(got["ipfix"].Windows, got["sflow"].Windows) {
		t.Errorf("ipfix and sflow loopback outcomes diverge:\nipfix %+v\nsflow %+v",
			got["ipfix"].Windows, got["sflow"].Windows)
	}

	if *update {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ingestGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", ingestGoldenPath)
		return
	}
	raw, err := os.ReadFile(ingestGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want map[string]collectorGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loopback outcome changed:\ngot  %+v\nwant %+v", got, want)
	}
}
