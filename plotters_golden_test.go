// Golden regression test for the end-to-end detection pipeline: the
// suspect set and every stage's survivor count on the canonical
// evaluation corpus are pinned in testdata/findplotters_golden.json.
// Any change to synthesis, feature extraction, thresholds, EMD, or
// clustering that moves the outcome fails here first.
//
// After an intentional behavior change, regenerate with:
//
//	go test -run TestFindPlottersGolden -update
package plotters_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"plotters"
)

var update = flag.Bool("update", false, "rewrite golden files with current results")

const goldenPath = "testdata/findplotters_golden.json"

// goldenStage pins one filter's survivor count and its dynamically
// computed threshold.
type goldenStage struct {
	Survivors int     `json:"survivors"`
	Threshold float64 `json:"threshold"`
}

// goldenResult pins the full pipeline outcome on day 0 of the seed-42
// evaluation corpus.
type goldenResult struct {
	Records   int         `json:"records"`
	Analyzed  int         `json:"analyzed_hosts"`
	Reduction goldenStage `json:"reduction"`
	Vol       goldenStage `json:"vol"`
	Churn     goldenStage `json:"churn"`
	HM        goldenStage `json:"hm"`
	Clusters  int         `json:"hm_clusters"`
	Clustered int         `json:"hm_clustered"`
	Skipped   int         `json:"hm_skipped"`
	Suspects  []string    `json:"suspects"`
}

// goldenDataset synthesizes day 0 of the seed-42 evaluation corpus. Day
// d of a dataset is derived from cfg.Seed + d*7919 and the honeynet
// traces from fixed seed offsets, so a Days=1 corpus reproduces day 0 of
// the full eight-day evaluation bit for bit at an eighth of the
// synthesis cost.
func goldenDataset(t *testing.T) *plotters.Dataset {
	t.Helper()
	dsCfg := plotters.DefaultDatasetConfig(42)
	dsCfg.Days = 1
	ds, err := plotters.GenerateDataset(dsCfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// goldenDay overlays the corpus exactly as cmd/experiments does (suite
// seed = dataset seed + 1).
func goldenDay(t *testing.T, ds *plotters.Dataset, cfg plotters.Config) *plotters.DayEval {
	t.Helper()
	suite, err := plotters.NewSuite(ds, cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	day, err := suite.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	return day
}

func resultToGolden(de *plotters.DayEval, res *plotters.Result) goldenResult {
	suspects := res.Suspects.Sorted()
	strs := make([]string, len(suspects))
	for i, h := range suspects {
		strs[i] = h.String()
	}
	return goldenResult{
		Records:   len(de.Records),
		Analyzed:  len(res.Analysis.Hosts()),
		Reduction: goldenStage{len(res.Reduction.Kept), res.Reduction.Threshold},
		Vol:       goldenStage{len(res.Volume.Kept), res.Volume.Threshold},
		Churn:     goldenStage{len(res.Churn.Kept), res.Churn.Threshold},
		HM:        goldenStage{len(res.Suspects), res.HM.Threshold},
		Clusters:  len(res.HM.Clusters),
		Clustered: res.HM.Clustered,
		Skipped:   res.HM.Skipped,
		Suspects:  strs,
	}
}

// loadGolden reads the pinned pipeline outcome.
func loadGolden(t *testing.T) goldenResult {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want goldenResult
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// compareGolden checks a pipeline outcome against the pinned one.
// Thresholds are float64 percentiles; compare to a tolerance so the
// golden file's decimal rendering cannot cause spurious failures.
// Everything else must match exactly.
func compareGolden(t *testing.T, got, want goldenResult) {
	t.Helper()
	const tol = 1e-9
	for _, cmp := range []struct {
		name string
		got  goldenStage
		want goldenStage
	}{
		{"reduction", got.Reduction, want.Reduction},
		{"vol", got.Vol, want.Vol},
		{"churn", got.Churn, want.Churn},
		{"hm", got.HM, want.HM},
	} {
		if cmp.got.Survivors != cmp.want.Survivors {
			t.Errorf("%s survivors = %d, want %d", cmp.name, cmp.got.Survivors, cmp.want.Survivors)
		}
		if math.Abs(cmp.got.Threshold-cmp.want.Threshold) > tol {
			t.Errorf("%s threshold = %v, want %v", cmp.name, cmp.got.Threshold, cmp.want.Threshold)
		}
	}
	if got.Records != want.Records || got.Analyzed != want.Analyzed {
		t.Errorf("population: records=%d analyzed=%d, want records=%d analyzed=%d",
			got.Records, got.Analyzed, want.Records, want.Analyzed)
	}
	if got.Clusters != want.Clusters || got.Clustered != want.Clustered || got.Skipped != want.Skipped {
		t.Errorf("hm clustering: clusters=%d clustered=%d skipped=%d, want %d/%d/%d",
			got.Clusters, got.Clustered, got.Skipped, want.Clusters, want.Clustered, want.Skipped)
	}
	if !reflect.DeepEqual(got.Suspects, want.Suspects) {
		t.Errorf("suspect set changed:\ngot  %v\nwant %v", got.Suspects, want.Suspects)
	}
}

func TestFindPlottersGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes ~15s; skipped in -short mode")
	}
	ds := goldenDataset(t)
	day := goldenDay(t, ds, plotters.DefaultConfig())
	res, err := day.Analysis.FindPlotters()
	if err != nil {
		t.Fatal(err)
	}
	got := resultToGolden(day, res)

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", goldenPath)
		return
	}

	want := loadGolden(t)
	compareGolden(t, got, want)

	// An instrumented run must be behaviorally identical, and its
	// stage gauges must agree with the pinned survivor counts.
	cfg := plotters.DefaultConfig()
	reg := plotters.NewMetrics()
	cfg.Metrics = reg
	day2 := goldenDay(t, ds, cfg)
	res2, err := day2.Analysis.FindPlotters()
	if err != nil {
		t.Fatal(err)
	}
	if got2 := resultToGolden(day2, res2); !reflect.DeepEqual(got2, got) {
		t.Errorf("metrics-enabled run differs:\ngot  %+v\nwant %+v", got2, got)
	}
	snap := reg.TakeSnapshot()
	for gauge, want := range map[string]int{
		"pipeline/hosts/reduction": got.Reduction.Survivors,
		"pipeline/hosts/vol":       got.Vol.Survivors,
		"pipeline/hosts/churn":     got.Churn.Survivors,
		"pipeline/hosts/suspects":  got.HM.Survivors,
	} {
		if n := snap.Gauges[gauge]; n != int64(want) {
			t.Errorf("gauge %s = %d, want %d", gauge, n, want)
		}
	}
}
