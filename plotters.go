// Package plotters is a library for telling P2P botnet members
// ("Plotters") apart from P2P file-sharing hosts ("Traders") in network
// flow records, reproducing Yen & Reiter, "Are Your Hosts Trading or
// Plotting? Telling P2P File-Sharing and Bots Apart" (ICDCS 2010).
//
// The library has three parts:
//
//   - The detection pipeline (FindPlotters): an initial failed-connection
//     data reduction followed by three behavioral tests — traffic volume
//     (θ_vol), peer churn (θ_churn), and human- vs. machine-driven timing
//     (θ_hm, Earth Mover's Distance clustering of interstitial-time
//     histograms). All thresholds are percentiles of the observed
//     population.
//   - Traffic synthesis: a deterministic discrete-event simulation of a
//     campus border (background hosts, Gnutella/eMule/BitTorrent Traders
//     over a Kademlia substrate) and of Storm and Nugache honeynet
//     traces, standing in for the paper's unobtainable datasets.
//   - The evaluation harness: trace overlay, ground-truth labeling from
//     payload signatures, ROC sweeps, and a regeneration of every figure
//     in the paper's evaluation (see EXPERIMENTS.md).
//
// Quickstart:
//
//	ds, _ := plotters.GenerateDataset(plotters.DefaultDatasetConfig(42))
//	suite, _ := plotters.NewSuite(ds, plotters.DefaultConfig(), 1)
//	day, _ := suite.Day(0)
//	res, _ := day.Analysis.FindPlotters()
//	for _, host := range res.Suspects.Sorted() {
//		fmt.Println("suspected plotter:", host)
//	}
package plotters

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"plotters/internal/argus"
	"plotters/internal/baseline"
	"plotters/internal/campaign"
	"plotters/internal/checkpoint"
	"plotters/internal/collector"
	"plotters/internal/community"
	"plotters/internal/core"
	"plotters/internal/dist"
	"plotters/internal/engine"
	"plotters/internal/eval"
	"plotters/internal/evasion"
	"plotters/internal/flow"
	"plotters/internal/flowio"
	"plotters/internal/ingest"
	"plotters/internal/label"
	"plotters/internal/metrics"
	"plotters/internal/overlay"
	"plotters/internal/simnet"
	"plotters/internal/synth"
	"plotters/internal/synth/plotter"
	"plotters/internal/synth/scenario"
)

// Flow-record model.
type (
	// Record is one Argus-style bi-directional flow record.
	Record = flow.Record
	// IP is an IPv4 address in host byte order.
	IP = flow.IP
	// Subnet is a CIDR prefix.
	Subnet = flow.Subnet
	// Window is a half-open observation interval (the detection window).
	Window = flow.Window
	// Proto is a transport protocol number.
	Proto = flow.Proto
	// ConnState classifies connection outcomes.
	ConnState = flow.ConnState
	// HostFeatures aggregates one host's behavioral features.
	HostFeatures = flow.HostFeatures
	// FeatureOptions configures feature extraction.
	FeatureOptions = flow.FeatureOptions
)

// Transport protocols and connection states.
const (
	TCP  = flow.TCP
	UDP  = flow.UDP
	ICMP = flow.ICMP

	StateEstablished = flow.StateEstablished
	StateFailed      = flow.StateFailed
)

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) { return flow.ParseIP(s) }

// ParseSubnet parses CIDR notation.
func ParseSubnet(s string) (Subnet, error) { return flow.ParseSubnet(s) }

// ExtractFeatures computes per-host behavioral features from records.
func ExtractFeatures(records []Record, opts FeatureOptions) map[IP]*HostFeatures {
	return flow.ExtractFeatures(records, opts)
}

// Detection pipeline (the paper's contribution).
type (
	// Config tunes the FindPlotters pipeline.
	Config = core.Config
	// Analysis holds per-host features for one detection window.
	Analysis = core.Analysis
	// Result is the full FindPlotters outcome with every stage exposed.
	Result = core.Result
	// HostSet is a set of internal host addresses.
	HostSet = core.HostSet
	// Reduction is the initial data-reduction outcome.
	Reduction = core.Reduction
	// TestResult is a θ_vol / θ_churn outcome.
	TestResult = core.TestResult
	// HMResult is the θ_hm outcome with its clusters.
	HMResult = core.HMResult
	// HMCluster is one θ_hm cluster.
	HMCluster = core.HMCluster
)

// DefaultConfig returns the calibrated operating point (see
// EXPERIMENTS.md for how it maps to the paper's).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewAnalysis extracts per-host features for one detection window.
// internal selects monitored addresses (nil = every initiator).
func NewAnalysis(records []Record, internal func(IP) bool, cfg Config) (*Analysis, error) {
	return core.NewAnalysis(records, internal, cfg)
}

// FindPlotters runs the complete detection pipeline of the paper's
// Figure 4 over one window of flow records.
func FindPlotters(records []Record, internal func(IP) bool, cfg Config) (*Result, error) {
	return core.FindPlotters(records, internal, cfg)
}

// Multi-detector framework: the paper pipeline and the mutual-contact
// community detector behind one seam, run singly, per window by the
// engine (EngineConfig.Detectors), or as a scored ensemble by the
// evaluation suite (NewSuiteDetectors + Suite.Ensemble).
type (
	// Detector is the per-window detection seam.
	Detector = core.Detector
	// Detection is one detector's verdict over a window.
	Detection = core.Detection
	// PaperDetector adapts FindPlotters to the Detector seam.
	PaperDetector = core.PaperDetector
	// CommunityConfig tunes the mutual-contact community detector.
	CommunityConfig = community.Config
	// CommunityGraphConfig tunes mutual-contact graph construction.
	CommunityGraphConfig = community.GraphConfig
	// CommunityDetector flags dense mutual-contact communities.
	CommunityDetector = community.Detector
	// CommunityReport is the community detector's per-window outcome.
	CommunityReport = community.Report
	// Community is one detected host group.
	Community = community.Community
)

// Stable detector identifiers.
const (
	// PaperDetectorName identifies the FindPlotters pipeline.
	PaperDetectorName = core.PaperName
	// CommunityDetectorName identifies the community detector.
	CommunityDetectorName = community.Name
)

// NewPaperDetector wraps the paper pipeline at the given operating
// point.
func NewPaperDetector(cfg Config) (*PaperDetector, error) { return core.NewPaperDetector(cfg) }

// DefaultCommunityConfig returns the community detector's default
// operating point.
func DefaultCommunityConfig() CommunityConfig { return community.DefaultConfig() }

// NewCommunityDetector creates a mutual-contact community detector.
func NewCommunityDetector(cfg CommunityConfig) (*CommunityDetector, error) {
	return community.New(cfg)
}

// UnionSuspects returns the hosts flagged by at least one detection.
func UnionSuspects(detections []*Detection) HostSet { return eval.Union(detections) }

// IntersectSuspects returns the hosts flagged by every detection.
func IntersectSuspects(detections []*Detection) HostSet { return eval.Intersection(detections) }

// VoteSuspects returns the hosts flagged by at least k detections.
func VoteSuspects(detections []*Detection, k int) HostSet { return eval.Vote(detections, k) }

// Ground-truth labeling (§III payload rules).
type (
	// App identifies a recognized file-sharing application.
	App = label.App
	// HostLabel is one host's ground-truth evidence.
	HostLabel = label.HostLabel
)

// Recognized file-sharing applications.
const (
	AppUnknown    = label.AppUnknown
	AppGnutella   = label.AppGnutella
	AppEMule      = label.AppEMule
	AppBitTorrent = label.AppBitTorrent
)

// LabelTraders returns the hosts whose flows carry file-sharing protocol
// signatures (§III), used only for scoring — the detection pipeline never
// reads payloads.
func LabelTraders(records []Record, internal func(IP) bool) map[IP]bool {
	return label.Traders(records, internal)
}

// LabelHosts returns detailed per-host labeling evidence.
func LabelHosts(records []Record, internal func(IP) bool) map[IP]*HostLabel {
	return label.LabelHosts(records, internal)
}

// Traffic synthesis.
type (
	// DayConfig shapes one synthesized campus collection day.
	DayConfig = scenario.DayConfig
	// Day is one synthesized day.
	Day = scenario.Day
	// DatasetConfig shapes the full evaluation corpus.
	DatasetConfig = scenario.DatasetConfig
	// Dataset is the full corpus: days plus the two honeynet traces.
	Dataset = scenario.Dataset
	// StormConfig shapes a Storm honeynet trace.
	StormConfig = plotter.StormConfig
	// NugacheConfig shapes a Nugache honeynet trace.
	NugacheConfig = plotter.NugacheConfig
	// BotTrace is a generated honeynet trace.
	BotTrace = plotter.Trace
)

// DefaultDayConfig returns the evaluation's per-day shape.
func DefaultDayConfig(day time.Time, seed int64) DayConfig {
	return scenario.DefaultDayConfig(day, seed)
}

// DefaultDatasetConfig mirrors the paper's evaluation (eight days,
// 13 Storm bots, 82 Nugache bots).
func DefaultDatasetConfig(seed int64) DatasetConfig {
	return scenario.DefaultDatasetConfig(seed)
}

// GenerateDay synthesizes one campus day with embedded Traders.
func GenerateDay(cfg DayConfig) (*Day, error) { return scenario.GenerateDay(cfg) }

// GenerateDataset synthesizes the full corpus.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	return scenario.GenerateDataset(cfg)
}

// GenerateStorm synthesizes a 24-hour Storm honeynet trace.
func GenerateStorm(cfg StormConfig, seed int64) (*BotTrace, error) {
	return plotter.GenerateStorm(cfg, seed)
}

// GenerateNugache synthesizes a 24-hour Nugache honeynet trace.
func GenerateNugache(cfg NugacheConfig, seed int64) (*BotTrace, error) {
	return plotter.GenerateNugache(cfg, seed)
}

// IsInternal reports whether ip belongs to the simulated campus network
// (two /16 subnets, like the paper's).
func IsInternal(ip IP) bool { return synth.IsInternal(ip) }

// CollectionWindow returns the paper's 9 a.m.–3 p.m. daily window for a
// calendar day.
func CollectionWindow(day time.Time) Window { return synth.CollectionWindow(day) }

// Overlay and evaluation.
type (
	// Trace pairs bot records with a scoring label for overlaying.
	Trace = overlay.Trace
	// Overlaid is the result of overlaying bot traces onto a day.
	Overlaid = overlay.Overlaid
	// Suite drives the full evaluation over a dataset.
	Suite = eval.Suite
	// DayEval is one overlaid day with ground truth.
	DayEval = eval.DayEval
	// Rates is a scored detection outcome.
	Rates = eval.Rates
	// EnsembleReport aggregates per-detector and combined scores.
	EnsembleReport = eval.EnsembleReport
	// EnsembleDay is one day's ensemble score breakdown.
	EnsembleDay = eval.EnsembleDay
)

// NewSuite wraps a dataset for evaluation.
func NewSuite(ds *Dataset, cfg Config, seed int64) (*Suite, error) {
	return eval.NewSuite(ds, cfg, seed)
}

// NewSuiteDetectors wraps a dataset for evaluation with an explicit
// detector list (must include a PaperDetector) run over every day; score
// the ensemble with Suite.Ensemble.
func NewSuiteDetectors(ds *Dataset, cfg Config, seed int64, detectors []Detector) (*Suite, error) {
	return eval.NewSuiteDetectors(ds, cfg, seed, detectors)
}

// OverlayDay overlays the dataset's honeynet traces onto one day.
func OverlayDay(day *Day, ds *Dataset, seed int64, cfg Config) (*DayEval, error) {
	return eval.Overlay(day, eval.StormTrace(ds), eval.NugacheTrace(ds), seed, cfg)
}

// Score computes detection rates of kept relative to input, with truth
// marking the Plotters.
func Score(kept, input, truth HostSet) Rates { return eval.Score(kept, input, truth) }

// Trace I/O.

// ReadTrace decodes a binary flow trace.
func ReadTrace(r io.Reader) ([]Record, error) { return flowio.ReadAllBinary(r) }

// WriteTrace encodes records as a binary flow trace.
func WriteTrace(w io.Writer, records []Record) error { return flowio.WriteAllBinary(w, records) }

// ReadTraceCSV decodes a CSV flow trace.
func ReadTraceCSV(r io.Reader) ([]Record, error) { return flowio.ReadCSV(r) }

// WriteTraceCSV encodes records as CSV.
func WriteTraceCSV(w io.Writer, records []Record) error { return flowio.WriteCSV(w, records) }

// ReadTraceJSONL decodes a JSON Lines flow trace.
func ReadTraceJSONL(r io.Reader) ([]Record, error) { return flowio.ReadJSONL(r) }

// WriteTraceJSONL encodes records as JSON Lines.
func WriteTraceJSONL(w io.Writer, records []Record) error { return flowio.WriteJSONL(w, records) }

// Evasion analysis (§VI).

// InflateVolume multiplies the bytes uploaded on every successful flow —
// the direct θ_vol evasion, at the cost of conspicuous extra traffic.
func InflateVolume(records []Record, factor float64) ([]Record, error) {
	return evasion.InflateVolume(records, factor)
}

// InflateChurn rewrites repeat contacts to fresh addresses so the host
// appears to churn through new peers, the θ_churn evasion.
func InflateChurn(records []Record, factor float64, freshPool []IP, rng *rand.Rand) ([]Record, error) {
	return evasion.InflateChurn(records, factor, freshPool, rng)
}

// JitterRepeatContacts shifts every repeat-contact connection by a
// uniform ±d delay — the paper's θ_hm evasion simulation. Larger d
// degrades detection but slows the botnet's command responsiveness.
func JitterRepeatContacts(records []Record, d time.Duration, rng *rand.Rand) ([]Record, error) {
	return evasion.JitterRepeatContacts(records, d, rng)
}

// RequiredVolumeFactor returns the multiplicative flow-size increase a
// host needs to clear the volume threshold (Figure 11(a)).
func RequiredVolumeFactor(avgBytesPerFlow, threshold float64) float64 {
	return evasion.RequiredVolumeFactor(avgBytesPerFlow, threshold)
}

// RequiredChurnFactor returns by what factor a host must grow its new-IP
// count to lift its new-IP fraction to target (Figure 11(b)).
func RequiredChurnFactor(newPeers, totalPeers int, target float64) float64 {
	return evasion.RequiredChurnFactor(newPeers, totalPeers, target)
}

// PadFlows adds pad junk bytes to every successful flow — the additive
// θ_vol evasion.
func PadFlows(records []Record, pad uint64) []Record {
	return evasion.PadFlows(records, pad)
}

// SlowStartContacts delays each (src, dst) pair's first contact — and
// every later flow of the pair with it — by a per-pair uniform delay in
// [0, d], rationing peer rendezvous to flatten the new-destination rate
// θ_churn keys on.
func SlowStartContacts(records []Record, d time.Duration, rng *rand.Rand) ([]Record, error) {
	return evasion.SlowStartContacts(records, d, rng)
}

// Red-team campaigns: parameterized countermeasures composed over the
// §VI evasion transforms, swept across synthetic worlds against the
// detector ensemble, reported as a detection-rate-vs-evasion-cost
// frontier. See DESIGN.md §6 and `cmd/experiments -campaign`.
type (
	// CampaignConfig parameterizes one campaign run.
	CampaignConfig = campaign.Config
	// CampaignReport is a campaign's full frontier outcome.
	CampaignReport = campaign.Report
	// CampaignWorldResult is one world's sweep outcome.
	CampaignWorldResult = campaign.WorldResult
	// CampaignFrontierPoint is one countermeasure × intensity grid point.
	CampaignFrontierPoint = campaign.FrontierPoint
	// CampaignScore is one detector's accumulated outcome at a point.
	CampaignScore = campaign.Score
	// Countermeasure is one parameterized bot-side evasion.
	Countermeasure = campaign.Countermeasure
	// CountermeasureCost is the machine-readable price of an evasion.
	CountermeasureCost = campaign.Cost
	// CountermeasureEnv is the world-derived countermeasure context.
	CountermeasureEnv = campaign.Env
	// CampaignScale sizes a campaign world's campus.
	CampaignScale = campaign.Scale
	// CampaignWorld is one named synthetic-world preset.
	CampaignWorld = campaign.World
)

// Campaign world scales.
const (
	CampaignScaleTiny  = campaign.ScaleTiny
	CampaignScaleSmall = campaign.ScaleSmall
	CampaignScalePaper = campaign.ScalePaper
)

// DefaultCampaignConfig returns the standard sweep at the given seed.
func DefaultCampaignConfig(seed int64) CampaignConfig { return campaign.DefaultConfig(seed) }

// DefaultCountermeasures returns the §VI countermeasure set.
func DefaultCountermeasures() []Countermeasure { return campaign.DefaultCountermeasures() }

// CampaignWorldNames lists the synthetic-world presets.
func CampaignWorldNames() []string { return campaign.WorldNames() }

// NewCampaignWorld builds one world preset at the given scale.
func NewCampaignWorld(name string, scale CampaignScale) (CampaignWorld, error) {
	return campaign.NewWorld(name, scale)
}

// RunCampaign executes a red-team campaign and returns its frontier
// report. The same configuration reproduces the same report bit for bit.
func RunCampaign(cfg CampaignConfig) (*CampaignReport, error) { return campaign.Run(cfg) }

// Flow assembly from packet streams (the Argus substrate).
type (
	// Packet is one observed packet for flow assembly.
	Packet = argus.Packet
	// AssemblerConfig tunes packet-to-flow assembly.
	AssemblerConfig = argus.Config
	// Assembler groups a time-ordered packet stream into bi-directional
	// flow records, Argus-style.
	Assembler = argus.Assembler
)

// DefaultAssemblerConfig mirrors the paper's Argus deployment.
func DefaultAssemblerConfig() AssemblerConfig { return argus.DefaultConfig() }

// NewAssembler creates a packet-to-flow assembler; emit receives each
// completed flow record.
func NewAssembler(cfg AssemblerConfig, emit func(Record)) (*Assembler, error) {
	return argus.New(cfg, emit)
}

// Baseline detectors (§II related work), for comparison with FindPlotters.
type (
	// TDGConfig tunes the traffic-dispersion-graph P2P identifier.
	TDGConfig = baseline.TDGConfig
	// TDGResult is the TDG detector's outcome.
	TDGResult = baseline.TDGResult
	// PersistenceConfig tunes the persistent-connection C&C detector.
	PersistenceConfig = baseline.PersistenceConfig
	// PersistenceResult is the persistence detector's outcome.
	PersistenceResult = baseline.PersistenceResult
	// DetectorOutcome is one detector's per-class rates from
	// Suite.CompareBaselines.
	DetectorOutcome = eval.DetectorOutcome
)

// DefaultTDGConfig returns the published TDG operating point.
func DefaultTDGConfig() TDGConfig { return baseline.DefaultTDGConfig() }

// TDG runs the per-port traffic-dispersion-graph P2P identifier.
func TDG(records []Record, internal func(IP) bool, cfg TDGConfig) (*TDGResult, error) {
	return baseline.TDG(records, internal, cfg)
}

// DefaultPersistenceConfig returns the published persistence operating
// point.
func DefaultPersistenceConfig() PersistenceConfig { return baseline.DefaultPersistenceConfig() }

// PersistenceDetect runs the persistent-connection C&C detector.
func PersistenceDetect(records []Record, window Window, internal func(IP) bool, cfg PersistenceConfig) (*PersistenceResult, error) {
	return baseline.Persistence(records, window, internal, cfg)
}

// Per-application analysis (the paper's §VI extension).
type (
	// PortGrouper maps a flow to an application group.
	PortGrouper = core.PortGrouper
	// PortGroupResult is the per-application pipeline outcome.
	PortGroupResult = core.PortGroupResult
	// VirtualHost is one (host, application group) analysis unit.
	VirtualHost = core.VirtualHost
)

// FindPlottersByApplication splits each host's traffic by application
// port group and runs the pipeline per group, exposing Plotters hiding
// behind a Trader on the same machine.
func FindPlottersByApplication(records []Record, internal func(IP) bool, cfg Config, grouper PortGrouper, minFlows int) (*PortGroupResult, error) {
	return core.FindPlottersByApplication(records, internal, cfg, grouper, minFlows)
}

// StreamExtractor re-exports incremental feature extraction for
// deployments that cannot buffer a whole window.
type StreamExtractor = flow.StreamExtractor

// NewStreamExtractor creates an incremental per-host feature extractor
// requiring start-ordered input.
func NewStreamExtractor(opts FeatureOptions) *StreamExtractor {
	return flow.NewStreamExtractor(opts)
}

// NewStreamExtractorSkew creates an incremental extractor tolerating
// records up to maxSkew out of start order — the reordering a flow
// monitor's end-of-flow reporting introduces.
func NewStreamExtractorSkew(opts FeatureOptions, maxSkew time.Duration) *StreamExtractor {
	return flow.NewStreamExtractorSkew(opts, maxSkew)
}

// Feature sources decouple feature accumulation from detection: the
// pipeline consumes a FeatureSource, not raw records, so batch
// extraction, the incremental extractor, and the engine's sharded store
// are interchangeable.
type (
	// FeatureSource supplies one detection window's per-host features.
	FeatureSource = flow.FeatureSource
	// FeatureSet is an immutable FeatureSource.
	FeatureSet = flow.FeatureSet
	// ShardedExtractor accumulates features sharded by source address
	// across independently locked sub-extractors, for concurrent ingest.
	ShardedExtractor = flow.ShardedExtractor
)

// ExtractFeatureSet batch-extracts one window's features as a
// FeatureSource. A zero window derives the bounds from the records.
func ExtractFeatureSet(records []Record, opts FeatureOptions, window Window) *FeatureSet {
	return flow.ExtractFeatureSet(records, opts, window)
}

// NewAnalysisFromSource wraps already-accumulated features for
// detection, skipping extraction.
func NewAnalysisFromSource(src FeatureSource, cfg Config) (*Analysis, error) {
	return core.NewAnalysisFromSource(src, cfg)
}

// NewShardedExtractor creates a sharded feature store (shards ≤ 0 means
// one per CPU) requiring start-ordered input per shard.
func NewShardedExtractor(opts FeatureOptions, shards int) *ShardedExtractor {
	return flow.NewShardedExtractor(opts, shards)
}

// NewShardedExtractorSkew creates a sharded feature store tolerating
// records up to maxSkew out of start order.
func NewShardedExtractorSkew(opts FeatureOptions, shards int, maxSkew time.Duration) *ShardedExtractor {
	return flow.NewShardedExtractorSkew(opts, shards, maxSkew)
}

// Continuous windowed detection: records stream into a sharded feature
// store and the full pipeline runs at every window boundary.
type (
	// EngineConfig shapes a WindowedDetector.
	EngineConfig = engine.Config
	// WindowedDetector drives continuous detection over a record stream.
	WindowedDetector = engine.WindowedDetector
	// WindowResult is one sealed detection window's outcome.
	WindowResult = engine.Result
)

// ErrLateRecord marks a streamed record dropped for arriving more than
// EngineConfig.MaxSkew behind the stream frontier.
var ErrLateRecord = engine.ErrLateRecord

// NewWindowedDetector creates a continuous detector; emit receives each
// sealed window's result in order.
func NewWindowedDetector(cfg EngineConfig, emit func(*WindowResult) error) (*WindowedDetector, error) {
	return engine.New(cfg, emit)
}

// Streaming trace I/O: Next()/Write() interfaces over all four formats,
// for traces larger than memory.
type (
	// TraceReader streams records from a trace.
	TraceReader = flowio.Reader
	// TraceWriter streams records to a trace.
	TraceWriter = flowio.Writer
)

// NewTraceReader opens a streaming reader for the given format
// ("binary", "csv", "jsonl", "netflow" — a stream of NetFlow v5
// export packets — "ipfix", or "sflow").
func NewTraceReader(r io.Reader, format string) (TraceReader, error) {
	switch format {
	case "binary":
		return flowio.NewBinaryReader(r), nil
	case "csv":
		return flowio.NewCSVReader(r), nil
	case "jsonl":
		return flowio.NewJSONLReader(r), nil
	case "netflow":
		return flowio.NewNetFlowReader(r), nil
	case "ipfix":
		return flowio.NewIPFIXReader(r), nil
	case "sflow":
		return flowio.NewSFlowReader(r), nil
	default:
		return nil, fmt.Errorf("plotters: unknown trace format %q", format)
	}
}

// NewTraceWriter opens a streaming writer for the given format. The
// "netflow", "ipfix", and "sflow" writers issue one Write per packed
// export packet, so handing them a net.Conn replays the trace as real
// exporter datagrams. "netflow" (v5) is lossy — millisecond
// timestamps, no responder counters, no payload; "ipfix" and "sflow"
// keep bidirectional counters and lose only sub-millisecond time and
// payload.
func NewTraceWriter(w io.Writer, format string) (TraceWriter, error) {
	switch format {
	case "binary":
		return flowio.NewBinaryWriter(w), nil
	case "csv":
		return flowio.NewCSVWriter(w), nil
	case "jsonl":
		return flowio.NewJSONLWriter(w), nil
	case "netflow":
		return flowio.NewNetFlowWriter(w), nil
	case "ipfix":
		return flowio.NewIPFIXWriter(w), nil
	case "sflow":
		return flowio.NewSFlowWriter(w), nil
	default:
		return nil, fmt.Errorf("plotters: unknown trace format %q", format)
	}
}

// CopyTrace streams all records from r to w (format conversion without
// buffering), returning the record count.
func CopyTrace(w TraceWriter, r TraceReader) (int, error) {
	return flowio.Copy(w, r)
}

// Observability. Attach a Metrics registry to Config.Metrics (and to
// readers and stream extractors) to collect per-stage wall times,
// candidate-set sizes, and I/O volumes from a run; a nil registry keeps
// every hot path instrument-free.
type (
	// Metrics collects counters, gauges, and stage timings from an
	// instrumented pipeline run. The zero value is not usable; a nil
	// *Metrics is a valid no-op sink.
	Metrics = metrics.Registry
	// MetricsSnapshot is a consistent point-in-time view of a Metrics
	// registry, serializable as JSON or Prometheus-style text.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics { return metrics.New() }

// PruneReport summarizes the θ_hm pruning engine's pair accounting from
// an instrumented run (Config.HMPrune / Config.HMCut): how many of the
// n·(n−1)/2 candidate pairs were skipped by each pruning layer versus
// evaluated exactly. Calibration counts the exact evaluations the
// auto-calibration mini-matrix paid on top of the main matrix.
// ExactFraction is the run's headline economy — the share of pairs that
// paid an exact EMD evaluation, calibration included; it can exceed 1
// on populations small enough that the calibration subsample covers
// most hosts, where pruning costs more than it saves.
type PruneReport struct {
	PairsTotal    int64   `json:"pairs_total"`
	Exact         int64   `json:"exact"`
	PrunedBound   int64   `json:"pruned_bound"`
	PrunedPivot   int64   `json:"pruned_pivot"`
	Gated         int64   `json:"gated"`
	Calibration   int64   `json:"calibration,omitempty"`
	ExactFraction float64 `json:"exact_fraction"`
}

// PruneSummary derives a PruneReport from a snapshot's distmatrix and
// calibration counters. The second return is false when the snapshot
// holds no gated-matrix activity — the run never engaged the pruning
// engine.
func PruneSummary(snap MetricsSnapshot) (PruneReport, bool) {
	total := snap.Counters["distmatrix/pairs_total"]
	if total == 0 {
		return PruneReport{}, false
	}
	r := PruneReport{
		PairsTotal:  total,
		Exact:       snap.Counters["distmatrix/pairs"],
		PrunedBound: snap.Counters["distmatrix/pairs_pruned_bound"],
		PrunedPivot: snap.Counters["distmatrix/pairs_pruned_pivot"],
		Gated:       snap.Counters["distmatrix/pairs_gated"],
		Calibration: snap.Counters["pipeline/hm/calibration_pairs"],
	}
	r.ExactFraction = float64(r.Exact+r.Calibration) / float64(total)
	return r, true
}

// MeterTraceReader attaches reg's flowio counters (records decoded,
// bytes consumed) to a reader returned by NewTraceReader. Readers from
// other packages are returned untouched.
func MeterTraceReader(r TraceReader, reg *Metrics) TraceReader {
	return flowio.MeterReader(r, reg)
}

// Live collection: a UDP listener decodes NetFlow v5/v9, IPFIX, and
// sFlow v5 export packets from border routers (or flowreplay) and
// hands the records to a Handler — typically a WindowedDetector for
// continuous detection off the wire. The socket path is batched
// (recvmmsg on Linux) and allocation-free at steady state, with an
// optional deterministic 1-in-N flow-sampling stage
// (CollectorConfig.SampleN). See internal/collector and
// internal/ingest for the full dataflow.
type (
	// CollectorConfig shapes a live flow collector.
	CollectorConfig = collector.Config
	// Collector ingests flow export packets from a UDP socket.
	Collector = collector.Collector
	// NetFlowV5Header is the decoded fixed header of one v5 packet.
	NetFlowV5Header = collector.V5Header
	// FlowSampler is the deterministic content-hash 1-in-N sampling
	// stage: the same (N, Seed) keeps the same flow set no matter how
	// the stream is split, merged, or reordered.
	FlowSampler = ingest.Sampler
)

// ListenNetFlow binds the collector's UDP socket; drive it with Run.
func ListenNetFlow(cfg CollectorConfig) (*Collector, error) { return collector.Listen(cfg) }

// AppendNetFlowV5 encodes 1..30 records as one NetFlow v5 export packet
// appended to dst. seq is the exporter's running flow count before this
// packet; maintain it as seq += len(records).
func AppendNetFlowV5(dst []byte, records []Record, seq uint32) ([]byte, error) {
	return collector.AppendV5(dst, records, seq)
}

// DecodeNetFlowV5 decodes one NetFlow v5 export packet, appending its
// records to dst.
func DecodeNetFlowV5(pkt []byte, dst []Record) (NetFlowV5Header, []Record, error) {
	return collector.DecodeV5(pkt, dst)
}

// AppendIPFIX encodes records as one self-describing IPFIX message
// (template set + data set) appended to dst. seq is the exporter's
// cumulative data-record count before this message; maintain it as
// seq += len(records).
func AppendIPFIX(dst []byte, records []Record, seq uint32) ([]byte, error) {
	return collector.AppendIPFIX(dst, records, seq)
}

// AppendSFlow encodes records as one sFlow v5 datagram — one flow
// sample per record, raw synthesized packet header plus the software
// exporter's lossless extension record — appended to dst. seq numbers
// the datagram; maintain it as seq++.
func AppendSFlow(dst []byte, records []Record, seq uint32) ([]byte, error) {
	return collector.AppendSFlow(dst, records, seq)
}

// Durable state: checkpoint/restore for crash-safe continuous
// detection. A CheckpointManager owns a snapshot file and a per-record
// write-ahead log under EngineConfig.StateDir (or its own Dir);
// restarting a dead process with the same configuration and calling
// Recover rebuilds the engine bit-identically — same window boundaries,
// same verdicts. See internal/checkpoint and DESIGN.md §4e.
type (
	// Checkpoint is the decoded form of one snapshot file.
	Checkpoint = checkpoint.Snapshot
	// CheckpointMeta is a snapshot's provenance plus the engine
	// configuration fingerprint it must be restored under.
	CheckpointMeta = checkpoint.Meta
	// CheckpointConfig shapes a CheckpointManager.
	CheckpointConfig = checkpoint.Config
	// CheckpointManager ties a WindowedDetector to its durable state:
	// WAL-ahead ingest, periodic atomic snapshots, crash recovery.
	CheckpointManager = checkpoint.Manager
	// CheckpointRecovery summarizes what recovery found on disk.
	CheckpointRecovery = checkpoint.RecoveryInfo
	// EngineState is a complete snapshot of a WindowedDetector's
	// dynamic state (exported plumbing; most callers use the manager).
	EngineState = engine.State
	// ExporterSequenceState is the collector's per-exporter NetFlow
	// sequence accounting, carried through snapshots so a restarted
	// collector does not misreport resets and gaps.
	ExporterSequenceState = collector.SequenceState
)

// File names a CheckpointManager uses inside its state directory.
const (
	// CheckpointSnapshotFile is the snapshot file's name.
	CheckpointSnapshotFile = checkpoint.SnapshotFile
	// CheckpointWALFile is the write-ahead log's name.
	CheckpointWALFile = checkpoint.WALFile
)

// NewCheckpointManager binds durable state to a freshly constructed
// detector. Call Recover before feeding records, even on a cold start.
func NewCheckpointManager(cfg CheckpointConfig, eng *WindowedDetector) (*CheckpointManager, error) {
	return checkpoint.NewManager(cfg, eng)
}

// SaveCheckpoint writes a one-shot atomic snapshot of a detector (plus
// optional exporter sequence state) to path — the manager-free path for
// batch tools; live deployments use a CheckpointManager, whose WAL also
// covers records snapshots miss.
func SaveCheckpoint(path string, eng *WindowedDetector, exporters []ExporterSequenceState) (int64, error) {
	meta := checkpoint.EngineMeta(eng)
	meta.Created = time.Now()
	return checkpoint.Write(path, &checkpoint.Snapshot{Meta: meta, Engine: eng.State(), Exporters: exporters})
}

// OpenCheckpoint reads and fully validates a snapshot file. Restore it
// with Checkpoint.RestoreEngine on a fresh detector built with the
// snapshotted configuration.
func OpenCheckpoint(path string) (*Checkpoint, error) { return checkpoint.Read(path) }

// Distributed detection: the pipeline split into a shard-local phase
// (per-host feature reduction and θ_hm histogram sketches, computed by
// N ShardWorker processes over disjoint host-hash slices) and a global
// phase (population percentiles, EMD clustering, community graph, run
// by one Coordinator over the merged ShardSummary frames). The split is
// bit-identical to a single process: see DESIGN.md §5b and the
// TestDistributedGolden equivalence suite.
type (
	// HostSummary is one host's complete shard-local reduction.
	HostSummary = core.HostSummary
	// ShardSummary is one shard's contribution to one detection window.
	ShardSummary = core.ShardSummary
	// LocalDetector adapts the shard-local phase to the Detector seam.
	LocalDetector = core.LocalDetector
	// DistEngineConfig shapes a DistributedDetector.
	DistEngineConfig = engine.DistConfig
	// DistributedDetector assembles per-shard window summaries into
	// global detection results, sealing windows by shard watermark.
	DistributedDetector = engine.DistributedDetector
	// CoordinatorConfig shapes a distributed deployment's coordinator.
	CoordinatorConfig = dist.CoordinatorConfig
	// Coordinator accepts shard connections and runs the global phase.
	Coordinator = dist.Coordinator
	// ShardWorkerConfig shapes one shard process.
	ShardWorkerConfig = dist.WorkerConfig
	// ShardWorker runs the shard-local phase and streams summaries to
	// the coordinator with at-least-once delivery.
	ShardWorker = dist.ShardWorker
	// ShardFingerprint pins the configuration knobs distributed
	// bit-identity depends on; the connection handshake compares them.
	ShardFingerprint = dist.Fingerprint
	// ShardSeqState is one shard's transport sequence accounting.
	ShardSeqState = dist.ShardSeq
	// DistCluster is an in-process distributed deployment over pipe
	// transports, for tests and experimentation.
	DistCluster = simnet.DistCluster
)

// LocalDetectorName identifies the shard-local phase detector.
const LocalDetectorName = core.LocalName

// ShardOf hashes an address onto one of n shards — the one shard
// assignment every layer of the system agrees on.
func ShardOf(ip IP, n int) int { return flow.ShardOf(ip, n) }

// NewFeatureSet wraps an extracted per-host feature map as an immutable
// FeatureSource for the given window.
func NewFeatureSet(feats map[IP]*HostFeatures, window Window) *FeatureSet {
	return flow.NewFeatureSet(feats, window)
}

// LocalPass runs the shard-local phase over one sealed window's feature
// source (shard 0 of 1 covers the whole population).
func LocalPass(src FeatureSource, cfg Config, shard, shards int) (*ShardSummary, error) {
	return core.LocalPass(src, cfg, shard, shards)
}

// MergeShardSummaries combines disjoint shard summaries of one window
// into the single-process summary.
func MergeShardSummaries(sums []*ShardSummary) (*ShardSummary, error) {
	return core.MergeSummaries(sums)
}

// GlobalPass runs the global phase over one window's shard summaries,
// bit-identical to FindPlotters over the merged population.
func GlobalPass(sums []*ShardSummary, cfg Config) (*Result, error) {
	return core.GlobalPass(sums, cfg)
}

// NewLocalDetector wraps the shard-local phase for one host-hash slice.
func NewLocalDetector(cfg Config, shard, shards int) (*LocalDetector, error) {
	return core.NewLocalDetector(cfg, shard, shards)
}

// NewDistributedDetector creates the coordinator-side window assembler;
// emit receives completed windows in ascending order.
func NewDistributedDetector(cfg DistEngineConfig, emit func(*WindowResult) error) (*DistributedDetector, error) {
	return engine.NewDistributed(cfg, emit)
}

// NewCoordinator creates a distributed deployment's coordinator; drive
// it with Coordinator.Listen (TCP) or Coordinator.ServeConn (any
// net.Conn transport).
func NewCoordinator(cfg CoordinatorConfig, emit func(*WindowResult) error) (*Coordinator, error) {
	return dist.NewCoordinator(cfg, emit)
}

// NewShardWorker creates one shard process's worker.
func NewShardWorker(cfg ShardWorkerConfig) (*ShardWorker, error) {
	return dist.NewShardWorker(cfg)
}

// NewDistCluster wires cfg.Shards workers to a coordinator over
// in-process pipes — the whole distributed pipeline without sockets.
func NewDistCluster(cfg CoordinatorConfig, emit func(*WindowResult) error) (*DistCluster, error) {
	return simnet.NewDistCluster(cfg, emit)
}

// ShardFingerprintOf derives the configuration fingerprint of one shard
// engine configuration in an N-shard deployment.
func ShardFingerprintOf(cfg EngineConfig, shards int) ShardFingerprint {
	return dist.FingerprintOf(cfg, shards)
}

// EncodeShardSummary serializes one window's summary in the versioned
// wire layout (the payload of a summary frame).
func EncodeShardSummary(index int, s *ShardSummary) []byte {
	return dist.EncodeSummary(index, s)
}

// DecodeShardSummary parses a summary payload, returning its window
// index. Unknown versions and truncations are descriptive hard errors.
func DecodeShardSummary(data []byte) (int, *ShardSummary, error) {
	return dist.DecodeSummary(data)
}
