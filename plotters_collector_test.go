// Loopback equivalence test for the live NetFlow path: a seed-42
// synthetic trace packed into v5 export packets and replayed through a
// real UDP socket into the collector must drive the windowed engine to
// the exact same per-window outcome as feeding the engine directly —
// the wire adds quantization, but never drift. The per-window outcome
// is additionally pinned in testdata/collector_golden.json.
//
// After an intentional behavior change, regenerate with:
//
//	go test -run TestCollectorLoopbackGolden -update
package plotters_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"

	"plotters"
)

const collectorGoldenPath = "testdata/collector_golden.json"

// collectorWindow pins one sealed window's outcome on the wire-format
// corpus.
type collectorWindow struct {
	Index    int      `json:"index"`
	Window   string   `json:"window"`
	Hosts    int      `json:"hosts"`
	Records  int      `json:"records"`
	Suspects []string `json:"suspects"`
}

// collectorGolden pins the whole loopback run.
type collectorGolden struct {
	WireRecords int               `json:"wire_records"`
	Windows     []collectorWindow `json:"windows"`
}

// corpusDay synthesizes a scaled-down day 0 of the seed-42 corpus (the
// loopback equivalence tests need a realistic record mix, not full
// scale), shared by the v5 golden and the IPFIX/sFlow format loopback.
func corpusDay(t *testing.T) ([]plotters.Record, plotters.Window, plotters.Config) {
	t.Helper()
	cfg := plotters.DefaultDatasetConfig(42)
	cfg.Days = 1
	cfg.DayTemplate.CampusHosts = 100
	cfg.DayTemplate.Gnutella = 3
	cfg.DayTemplate.EMule = 3
	cfg.DayTemplate.BitTorrent = 4
	cfg.DayTemplate.PeerNetworkNodes = 800
	cfg.Storm.Bots = 6
	cfg.Storm.OverlayNodes = 500
	cfg.Storm.SeedPeers = 50
	cfg.Nugache.Bots = 15
	cfg.Nugache.OverlayNodes = 400
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe := plotters.DefaultConfig()
	pipe.MinInterstitialSamples = 20
	day, err := plotters.OverlayDay(ds.Days[0], ds, 43, pipe)
	if err != nil {
		t.Fatal(err)
	}
	return day.Records, ds.Days[0].Window, pipe
}

// collectorCorpus quantizes the corpus day through the NetFlow v5
// codec. It returns the quantized records — what any collector behind a
// real exporter would see — and the encoded packet stream they rode in
// on.
func collectorCorpus(t *testing.T) ([]plotters.Record, []byte, plotters.Window, plotters.Config) {
	t.Helper()
	records, window, pipe := corpusDay(t)

	var buf bytes.Buffer
	w, err := plotters.NewTraceWriter(&buf, "netflow")
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := plotters.NewTraceReader(bytes.NewReader(buf.Bytes()), "netflow")
	if err != nil {
		t.Fatal(err)
	}
	var wire []plotters.Record
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		wire = append(wire, rec)
	}
	if len(wire) != len(records) {
		t.Fatalf("codec round trip lost records: %d != %d", len(wire), len(records))
	}
	return wire, buf.Bytes(), window, pipe
}

// splitPackets cuts the encoded stream back into the individual v5
// export packets it is made of, with each packet's record count.
func splitPackets(t *testing.T, stream []byte) (packets [][]byte, counts []int) {
	t.Helper()
	for len(stream) > 0 {
		if len(stream) < 24 {
			t.Fatalf("trailing %d bytes are not a v5 packet", len(stream))
		}
		count := int(binary.BigEndian.Uint16(stream[2:4]))
		plen := 24 + count*48
		if len(stream) < plen {
			t.Fatalf("truncated packet: have %d bytes, need %d", len(stream), plen)
		}
		packets = append(packets, stream[:plen])
		counts = append(counts, count)
		stream = stream[plen:]
	}
	return packets, counts
}

// collectorEngine builds a windowed detector over the corpus day split
// into three detection windows, recording each sealed window's summary.
func collectorEngine(t *testing.T, pipe plotters.Config, w plotters.Window, out *[]collectorWindow) *plotters.WindowedDetector {
	t.Helper()
	eng, err := plotters.NewWindowedDetector(plotters.EngineConfig{
		Window:   w.Duration() / 3,
		Origin:   w.From,
		MaxSkew:  time.Hour,
		Internal: plotters.IsInternal,
		DropLate: true,
		Core:     pipe,
	}, func(res *plotters.WindowResult) error {
		suspects := res.Detection.Suspects.Sorted()
		strs := make([]string, len(suspects))
		for i, h := range suspects {
			strs[i] = h.String()
		}
		*out = append(*out, collectorWindow{
			Index:    res.Index,
			Window:   res.Window.String(),
			Hosts:    res.Hosts,
			Records:  res.Records,
			Suspects: strs,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestCollectorLoopbackGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis and loopback replay take a few seconds; skipped in -short mode")
	}
	wire, stream, w, pipe := collectorCorpus(t)
	packets, counts := splitPackets(t, stream)

	// Reference: the quantized records fed straight into the engine.
	var direct []collectorWindow
	dEng := collectorEngine(t, pipe, w, &direct)
	for i := range wire {
		if err := dEng.Add(&wire[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := dEng.AdvanceTo(w.To); err != nil {
		t.Fatal(err)
	}
	if dEng.Dropped() != 0 {
		t.Fatalf("direct ingest dropped %d records", dEng.Dropped())
	}

	// Live path: the same packets through a real UDP socket. One decode
	// worker preserves arrival order; the sender flow-controls on the
	// collector's record counter so the kernel socket buffer can never
	// overflow — this test measures equivalence, not burst tolerance
	// (the collector package's own tests cover overflow).
	var live []collectorWindow
	lEng := collectorEngine(t, pipe, w, &live)
	reg := plotters.NewMetrics()
	col, err := plotters.ListenNetFlow(plotters.CollectorConfig{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Metrics: reg,
		Handler: func(records []plotters.Record) {
			for i := range records {
				if err := lEng.Add(&records[i]); err != nil {
					t.Errorf("live ingest: %v", err)
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- col.Run(ctx) }()

	conn, err := net.Dial("udp", col.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	decoded := func() int64 {
		return reg.TakeSnapshot().Counters["collector/records"]
	}
	sent := 0
	for i, pkt := range packets {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		sent += counts[i]
		deadline := time.Now().Add(10 * time.Second)
		for decoded() < int64(sent) {
			if time.Now().After(deadline) {
				t.Fatalf("packet %d: collector decoded %d of %d sent records", i, decoded(), sent)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	if err := lEng.AdvanceTo(w.To); err != nil {
		t.Fatal(err)
	}

	// The wire must have been clean: every packet decoded, nothing
	// dropped, malformed, or gapped — and the engine saw every record.
	snap := reg.TakeSnapshot()
	for name, want := range map[string]int64{
		"collector/packets":           int64(len(packets)),
		"collector/records":           int64(len(wire)),
		"collector/packets/dropped":   0,
		"collector/packets/malformed": 0,
		"collector/seq/gaps":          0,
		"collector/seq/lost_flows":    0,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if lEng.Dropped() != 0 {
		t.Errorf("live ingest dropped %d records", lEng.Dropped())
	}

	// The socket must not have changed the outcome in any way.
	if !reflect.DeepEqual(live, direct) {
		t.Fatalf("live windows differ from direct ingest:\nlive   %+v\ndirect %+v", live, direct)
	}

	got := collectorGolden{WireRecords: len(wire), Windows: direct}
	if *update {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(collectorGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", collectorGoldenPath)
		return
	}
	raw, err := os.ReadFile(collectorGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want collectorGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("loopback outcome changed:\ngot  %+v\nwant %+v", got, want)
	}
}
