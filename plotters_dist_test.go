// Distributed-equivalence tests: the shard-local / global split of the
// pipeline, run as a 4-shard deployment (in-process pipes and real TCP
// loopback), must reproduce testdata/findplotters_golden.json bit for
// bit — suspect set, stage survivor counts, thresholds — including when
// shard connections are killed and re-established mid-run.
package plotters_test

import (
	"net"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"plotters"
)

const distShards = 4

func distEngineConfig(w plotters.Window, cfg plotters.Config) plotters.EngineConfig {
	return plotters.EngineConfig{
		Window:   w.Duration(),
		Origin:   w.From,
		Internal: plotters.IsInternal,
		Core:     cfg,
	}
}

// distGoldenCheck compares one distributed window result against the
// pinned golden outcome.
func distGoldenCheck(t *testing.T, day *plotters.DayEval, results []*plotters.WindowResult) {
	t.Helper()
	if len(results) != 1 {
		t.Fatalf("got %d windows, want 1", len(results))
	}
	res := results[0]
	if res.Partial {
		t.Error("fully-fed window emitted as Partial")
	}
	if res.Detection == nil {
		t.Fatal("window carries no paper-pipeline result")
	}
	compareGolden(t, resultToGolden(day, res.Detection), loadGolden(t))
}

// TestDistributedGolden runs day 0 of the seed-42 corpus through a
// 4-shard deployment in three transports/failure modes and pins each
// against the single-process golden file.
func TestDistributedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes ~15s; skipped in -short mode")
	}
	ds := goldenDataset(t)
	cfg := plotters.DefaultConfig()
	day, err := plotters.OverlayDay(ds.Days[0], ds, 43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := ds.Days[0].Window
	ecfg := distEngineConfig(w, cfg)

	t.Run("simnet", func(t *testing.T) {
		var results []*plotters.WindowResult
		cl, err := plotters.NewDistCluster(plotters.CoordinatorConfig{Shards: distShards, Engine: ecfg},
			func(r *plotters.WindowResult) error { results = append(results, r); return nil })
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := range day.Records {
			if err := cl.Add(&day.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.AdvanceTo(w.To); err != nil {
			t.Fatal(err)
		}
		if err := cl.Drain(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		distGoldenCheck(t, day, results)
		for _, ss := range cl.Coordinator.ShardSeqs() {
			if !ss.Seen {
				t.Errorf("shard %d never connected", ss.Shard)
			}
		}
	})

	t.Run("tcp", func(t *testing.T) {
		var results []*plotters.WindowResult
		coord, err := plotters.NewCoordinator(plotters.CoordinatorConfig{Shards: distShards, Engine: ecfg},
			func(r *plotters.WindowResult) error { results = append(results, r); return nil })
		if err != nil {
			t.Fatal(err)
		}
		defer coord.Close()
		addr, err := coord.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		workers := make([]*plotters.ShardWorker, distShards)
		for i := range workers {
			workers[i], err = plotters.NewShardWorker(plotters.ShardWorkerConfig{
				Shard:  i,
				Shards: distShards,
				Engine: ecfg,
				Dial:   func() (net.Conn, error) { return net.Dial("tcp", addr.String()) },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer workers[i].Close()
		}
		for i := range day.Records {
			r := &day.Records[i]
			if err := workers[plotters.ShardOf(r.Src, distShards)].Add(r); err != nil {
				t.Fatal(err)
			}
		}
		for _, wk := range workers {
			if err := wk.AdvanceTo(w.To); err != nil {
				t.Fatal(err)
			}
		}
		for _, wk := range workers {
			if err := wk.Drain(30 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
		distGoldenCheck(t, day, results)
	})

	t.Run("kill-and-reconnect", func(t *testing.T) {
		var results []*plotters.WindowResult
		cl, err := plotters.NewDistCluster(plotters.CoordinatorConfig{Shards: distShards, Engine: ecfg},
			func(r *plotters.WindowResult) error { results = append(results, r); return nil })
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		// Feed the first half, punctuate mid-window (each worker sends a
		// watermark frame, establishing its connection), then kill every
		// connection and feed the rest: the window's summaries must
		// arrive over re-established connections with the outbox
		// replayed, and nothing about the outcome may move.
		mid := w.From.Add(w.Duration() / 2)
		i := 0
		for ; i < len(day.Records) && day.Records[i].Start.Before(mid); i++ {
			if err := cl.Add(&day.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.AdvanceTo(mid); err != nil {
			t.Fatal(err)
		}
		for _, wk := range cl.Workers {
			wk.DropConnection()
		}
		for ; i < len(day.Records); i++ {
			if err := cl.Add(&day.Records[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.AdvanceTo(w.To); err != nil {
			t.Fatal(err)
		}
		if err := cl.Drain(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		distGoldenCheck(t, day, results)
		reconnected := 0
		for _, ss := range cl.Coordinator.ShardSeqs() {
			if ss.Connects >= 2 {
				reconnected++
			}
		}
		if reconnected == 0 {
			t.Error("no shard reconnected — the kill did not exercise the resend path")
		}
	})
}

// Property: any host-hash shard split of the seed-42 day's features,
// local-passed per shard and merged, equals the single-process shard
// summary field for field — the invariant the distributed pipeline's
// bit-identity rests on.
func TestShardSplitMergeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus synthesis takes ~15s; skipped in -short mode")
	}
	ds := goldenDataset(t)
	cfg := plotters.DefaultConfig()
	day, err := plotters.OverlayDay(ds.Days[0], ds, 43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := plotters.ExtractFeatureSet(day.Records, plotters.FeatureOptions{
		Hosts:        plotters.IsInternal,
		NewPeerGrace: cfg.NewPeerGrace,
	}, plotters.Window{})
	single, err := plotters.LocalPass(src, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	property := func(raw uint8) bool {
		shards := int(raw)%16 + 1
		parts := make([]map[plotters.IP]*plotters.HostFeatures, shards)
		cparts := make([]map[plotters.IP][]plotters.IP, shards)
		for i := range parts {
			parts[i] = make(map[plotters.IP]*plotters.HostFeatures)
			cparts[i] = make(map[plotters.IP][]plotters.IP)
		}
		contacts := src.Contacts()
		for h, f := range src.Features() {
			s := plotters.ShardOf(h, shards)
			parts[s][h] = f
			if c := contacts[h]; c != nil {
				cparts[s][h] = c
			}
		}
		sums := make([]*plotters.ShardSummary, shards)
		for i := range parts {
			part := plotters.NewFeatureSet(parts[i], src.Window()).WithContacts(cparts[i])
			sums[i], err = plotters.LocalPass(part, cfg, i, shards)
			if err != nil {
				t.Logf("shards=%d shard=%d: %v", shards, i, err)
				return false
			}
		}
		merged, err := plotters.MergeShardSummaries(sums)
		if err != nil {
			t.Logf("shards=%d: merge: %v", shards, err)
			return false
		}
		if !reflect.DeepEqual(merged.Hosts, single.Hosts) {
			t.Logf("shards=%d: merged host summaries differ from single-process", shards)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
