// Campus-monitor: the network administrator's view. Runs the detection
// pipeline day after day over a multi-day border trace, the way the
// paper's administrator would deploy it: thresholds recomputed from each
// day's traffic, suspects accumulated across days, and persistent
// offenders (hosts flagged on several days) escalated.
package main

import (
	"fmt"
	"os"
	"sort"

	"plotters"
)

const days = 4

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campus-monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := plotters.DefaultDatasetConfig(1234)
	cfg.Days = days
	cfg.DayTemplate.CampusHosts = 220
	fmt.Printf("synthesizing %d days of border traffic...\n", days)
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	suite, err := plotters.NewSuite(ds, plotters.DefaultConfig(), 5)
	if err != nil {
		return err
	}

	// flaggedDays counts, per host, how many days the pipeline flagged it.
	flaggedDays := make(map[plotters.IP]int)
	hostTruth := make(map[plotters.IP]string)

	for i := 0; i < days; i++ {
		day, err := suite.Day(i)
		if err != nil {
			return err
		}
		res, err := day.Analysis.FindPlotters()
		if err != nil {
			return err
		}
		fmt.Printf("\n=== day %d (%s) ===\n", i, day.Day.Window.From.Format("2006-01-02"))
		fmt.Printf("observed %d internal hosts; thresholds: failRate>%.3f, bytes/flow<%.0f, newIPs<%.3f, spread≤%.3f\n",
			len(day.Analysis.Hosts()), res.Reduction.Threshold,
			res.Volume.Threshold, res.Churn.Threshold, res.HM.Threshold)

		// The assignment of bots to hosts changes per day (as in the
		// paper's evaluation), so truth is tracked per day.
		rates := plotters.Score(res.Suspects, day.Analysis.Hosts(), day.Storm.Union(day.Nugache))
		fmt.Printf("flagged %d hosts: %d true bots (of %d implanted), %d false positives\n",
			len(res.Suspects), rates.TP, rates.Plotters, rates.FP)

		for host := range res.Suspects {
			flaggedDays[host]++
			switch {
			case day.Storm[host]:
				hostTruth[host] = "storm"
			case day.Nugache[host]:
				hostTruth[host] = "nugache"
			case day.Traders[host]:
				if hostTruth[host] == "" {
					hostTruth[host] = "trader"
				}
			default:
				if hostTruth[host] == "" {
					hostTruth[host] = "campus"
				}
			}
		}
	}

	// Escalate repeat offenders. Because bots are re-assigned to random
	// hosts each day, repeat flags on the same host indicate a stable
	// behavioral false positive — exactly what an operator would review
	// and whitelist.
	fmt.Printf("\n=== summary after %d days ===\n", days)
	type offender struct {
		host  plotters.IP
		count int
	}
	var offenders []offender
	for host, n := range flaggedDays {
		offenders = append(offenders, offender{host, n})
	}
	sort.Slice(offenders, func(a, b int) bool {
		if offenders[a].count != offenders[b].count {
			return offenders[a].count > offenders[b].count
		}
		return offenders[a].host < offenders[b].host
	})
	fmt.Printf("%d distinct hosts flagged at least once\n", len(offenders))
	shown := 0
	for _, o := range offenders {
		if shown >= 15 {
			fmt.Printf("  ... and %d more\n", len(offenders)-shown)
			break
		}
		fmt.Printf("  %-16s flagged on %d/%d days (%s)\n", o.host, o.count, days, hostTruth[o.host])
		shown++
	}
	return nil
}
