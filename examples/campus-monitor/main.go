// Campus-monitor: the network administrator's view. Runs the detection
// pipeline day after day over a multi-day border trace, the way the
// paper's administrator would deploy it: thresholds recomputed from each
// day's traffic, suspects accumulated across days, and persistent
// offenders (hosts flagged on several days) escalated.
//
// With -listen the same monitor goes live: instead of synthesizing a
// dataset it binds a UDP socket, ingests NetFlow exports from real (or
// flowreplay'd) exporters into the windowed engine, and escalates hosts
// flagged across successive detection windows. Stop with Ctrl-C to get
// the repeat-offender summary. Add -state-dir to make the live monitor
// crash-safe: detection state is checkpointed continuously and a
// restart resumes mid-window instead of forgetting every host the
// previous process had profiled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"plotters"
)

const days = 4

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campus-monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen    = flag.String("listen", "", "monitor live NetFlow exports on this UDP address (e.g. :2055) instead of a synthetic dataset")
		window    = flag.Duration("window", 6*time.Hour, "detection window length for -listen mode")
		skew      = flag.Duration("skew", 5*time.Minute, "out-of-order tolerance for -listen mode")
		internals = flag.String("internal", "128.2.0.0/16,128.237.0.0/16", "comma-separated internal CIDR prefixes for -listen mode")
		stateDir  = flag.String("state-dir", "", "durable-state directory for -listen mode; a restart resumes from the last checkpoint")
	)
	flag.Parse()
	if *listen != "" {
		return runLive(*listen, *window, *skew, *internals, *stateDir)
	}
	if *stateDir != "" {
		return fmt.Errorf("-state-dir requires -listen (the synthetic run is deterministic; re-run it instead)")
	}
	return runSynthetic()
}

func runSynthetic() error {
	cfg := plotters.DefaultDatasetConfig(1234)
	cfg.Days = days
	cfg.DayTemplate.CampusHosts = 220
	fmt.Printf("synthesizing %d days of border traffic...\n", days)
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	suite, err := plotters.NewSuite(ds, plotters.DefaultConfig(), 5)
	if err != nil {
		return err
	}

	// flaggedDays counts, per host, how many days the pipeline flagged it.
	flaggedDays := make(map[plotters.IP]int)
	hostTruth := make(map[plotters.IP]string)

	for i := 0; i < days; i++ {
		day, err := suite.Day(i)
		if err != nil {
			return err
		}
		res, err := day.Analysis.FindPlotters()
		if err != nil {
			return err
		}
		fmt.Printf("\n=== day %d (%s) ===\n", i, day.Day.Window.From.Format("2006-01-02"))
		fmt.Printf("observed %d internal hosts; thresholds: failRate>%.3f, bytes/flow<%.0f, newIPs<%.3f, spread≤%.3f\n",
			len(day.Analysis.Hosts()), res.Reduction.Threshold,
			res.Volume.Threshold, res.Churn.Threshold, res.HM.Threshold)

		// The assignment of bots to hosts changes per day (as in the
		// paper's evaluation), so truth is tracked per day.
		rates := plotters.Score(res.Suspects, day.Analysis.Hosts(), day.Storm.Union(day.Nugache))
		fmt.Printf("flagged %d hosts: %d true bots (of %d implanted), %d false positives\n",
			len(res.Suspects), rates.TP, rates.Plotters, rates.FP)

		for host := range res.Suspects {
			flaggedDays[host]++
			switch {
			case day.Storm[host]:
				hostTruth[host] = "storm"
			case day.Nugache[host]:
				hostTruth[host] = "nugache"
			case day.Traders[host]:
				if hostTruth[host] == "" {
					hostTruth[host] = "trader"
				}
			default:
				if hostTruth[host] == "" {
					hostTruth[host] = "campus"
				}
			}
		}
	}

	printOffenders(flaggedDays, hostTruth, days, "days")
	return nil
}

// runLive is the deployed shape of the same monitor: NetFlow exports
// arrive over UDP, each sealed window runs the full pipeline, and
// repeat offenders accumulate across windows instead of days. There is
// no ground truth on a live network — the repeat count is what the
// operator triages.
//
// With a state directory, detection state survives crashes: records
// are write-ahead logged, the engine is checkpointed every minute, and
// a restart recovers the previous process's windows mid-flight. Note
// the offender tallies re-count windows that recovery re-emits
// (at-least-once delivery) — the checkpointed truth is the engine
// state; the tallies are a per-process view.
func runLive(addr string, window, skew time.Duration, internals, stateDir string) error {
	internal, err := parseSubnets(internals)
	if err != nil {
		return err
	}
	flaggedWindows := make(map[plotters.IP]int)
	windows := 0
	eng, err := plotters.NewWindowedDetector(plotters.EngineConfig{
		Window:   window,
		MaxSkew:  skew,
		Internal: internal,
		DropLate: true, // live sockets cannot replay the past
		StateDir: stateDir,
		Core:     plotters.DefaultConfig(),
	}, func(res *plotters.WindowResult) error {
		windows++
		partial := ""
		if res.Partial {
			partial = " (partial)"
		}
		fmt.Printf("window %d %s%s: %d hosts, %d suspects\n",
			res.Index, res.Window, partial, res.Hosts, len(res.Detection.Suspects))
		for host := range res.Detection.Suspects {
			flaggedWindows[host]++
		}
		return nil
	})
	if err != nil {
		return err
	}

	var mgr *plotters.CheckpointManager
	add := eng.Add
	if stateDir != "" {
		mgr, err = plotters.NewCheckpointManager(plotters.CheckpointConfig{
			Interval:  time.Minute,
			SyncEvery: 256, // batch fsyncs: don't gate UDP ingest on disk latency
		}, eng)
		if err != nil {
			return err
		}
		defer mgr.Close()
		add = mgr.Add
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	col, err := plotters.ListenNetFlow(plotters.CollectorConfig{
		Addr:    addr,
		Workers: 1, // preserve arrival order into the engine
		Handler: func(records []plotters.Record) {
			for i := range records {
				_ = add(&records[i]) // DropLate: skew drops are counted, not fatal
			}
		},
	})
	if err != nil {
		return err
	}
	if mgr != nil {
		mgr.AttachCollector(col)
		info, err := mgr.Recover()
		if err != nil {
			return err
		}
		if info.SnapshotLoaded || info.Replayed > 0 {
			fmt.Printf("resumed from %s: snapshot loaded=%v, %d records replayed\n",
				stateDir, info.SnapshotLoaded, info.Replayed)
		}
		col.RestoreSequenceStates(info.Exporters)
		go mgr.Run(ctx)
	}
	fmt.Printf("monitoring NetFlow exports on %s (Ctrl-C for the summary)\n", col.Addr())
	if err := col.Run(ctx); err != nil {
		return err
	}
	if mgr != nil {
		if err := mgr.Flush(); err != nil {
			return err
		}
		if err := mgr.Checkpoint(); err != nil {
			return err
		}
		fmt.Printf("state checkpointed to %s; restart with the same flags to resume\n", stateDir)
	} else if err := eng.Flush(); err != nil {
		return err
	}
	if d := eng.Dropped(); d > 0 {
		fmt.Printf("%d records arrived beyond the %v skew tolerance and were dropped\n", d, skew)
	}
	printOffenders(flaggedWindows, nil, max(windows, 1), "windows")
	return nil
}

// printOffenders escalates repeat offenders. Because bots are
// re-assigned to random hosts each day, repeat flags on the same host
// indicate a stable behavioral false positive — exactly what an
// operator would review and whitelist. truth may be nil (live mode has
// no ground truth).
func printOffenders(flagged map[plotters.IP]int, truth map[plotters.IP]string, periods int, unit string) {
	fmt.Printf("\n=== summary after %d %s ===\n", periods, unit)
	type offender struct {
		host  plotters.IP
		count int
	}
	var offenders []offender
	for host, n := range flagged {
		offenders = append(offenders, offender{host, n})
	}
	sort.Slice(offenders, func(a, b int) bool {
		if offenders[a].count != offenders[b].count {
			return offenders[a].count > offenders[b].count
		}
		return offenders[a].host < offenders[b].host
	})
	fmt.Printf("%d distinct hosts flagged at least once\n", len(offenders))
	shown := 0
	for _, o := range offenders {
		if shown >= 15 {
			fmt.Printf("  ... and %d more\n", len(offenders)-shown)
			break
		}
		label := ""
		if truth != nil {
			label = fmt.Sprintf(" (%s)", truth[o.host])
		}
		fmt.Printf("  %-16s flagged on %d/%d %s%s\n", o.host, o.count, periods, unit, label)
		shown++
	}
}

func parseSubnets(csv string) (func(plotters.IP) bool, error) {
	var subnets []plotters.Subnet
	for _, s := range strings.Split(csv, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		sn, err := plotters.ParseSubnet(s)
		if err != nil {
			return nil, err
		}
		subnets = append(subnets, sn)
	}
	if len(subnets) == 0 {
		return nil, fmt.Errorf("no internal subnets given")
	}
	return func(ip plotters.IP) bool {
		for _, sn := range subnets {
			if sn.Contains(ip) {
				return true
			}
		}
		return false
	}, nil
}
