// Quickstart: synthesize one day of campus traffic with embedded
// file-sharing Traders, overlay the Storm and Nugache honeynet traces
// onto random hosts, run the FindPlotters pipeline, and print what it
// caught — the library's end-to-end happy path in one screen of code.
package main

import (
	"fmt"
	"os"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Synthesize a small corpus: one collection day plus the two
	// 24-hour bot traces. Everything is seeded, so reruns are identical.
	cfg := plotters.DefaultDatasetConfig(7)
	cfg.Days = 1
	cfg.DayTemplate.CampusHosts = 200
	fmt.Println("synthesizing one campus day + Storm/Nugache honeynet traces...")
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  day 0: %d flow records, %d traders embedded\n",
		len(ds.Days[0].Records), len(ds.Days[0].TraderHosts))
	fmt.Printf("  storm: %d records from %d bots; nugache: %d records from %d bots\n",
		len(ds.Storm.Records), len(ds.Storm.Bots), len(ds.Nugache.Records), len(ds.Nugache.Bots))

	// Overlay the bot traces onto randomly selected active hosts, as the
	// paper's evaluation does (§V).
	day, err := plotters.OverlayDay(ds.Days[0], ds, 99, plotters.DefaultConfig())
	if err != nil {
		return err
	}

	// Run the detection pipeline.
	res, err := day.Analysis.FindPlotters()
	if err != nil {
		return err
	}
	fmt.Printf("\npipeline: %d hosts -> reduction %d -> vol %d / churn %d -> suspects %d\n",
		len(day.Analysis.Hosts()), len(res.Reduction.Kept),
		len(res.Volume.Kept), len(res.Churn.Kept), len(res.Suspects))

	// Score against ground truth.
	caughtStorm, caughtNugache, falsePositives := 0, 0, 0
	for host := range res.Suspects {
		switch {
		case day.Storm[host]:
			caughtStorm++
		case day.Nugache[host]:
			caughtNugache++
		default:
			falsePositives++
		}
	}
	fmt.Printf("\ndetected %d/%d Storm bots, %d/%d Nugache bots, %d false positives\n",
		caughtStorm, len(day.Storm), caughtNugache, len(day.Nugache), falsePositives)

	fmt.Println("\nsuspected plotters:")
	feats := day.Analysis.Features()
	for _, host := range res.Suspects.Sorted() {
		truth := "FALSE POSITIVE"
		switch {
		case day.Storm[host]:
			truth = "storm bot"
		case day.Nugache[host]:
			truth = "nugache bot"
		case day.Traders[host]:
			truth = "trader (false positive)"
		}
		f := feats[host]
		fmt.Printf("  %-16s %-24s avgBytes/flow=%-8.0f failedRate=%.2f newIPs=%.2f\n",
			host, truth, f.AvgBytesPerFlow(), f.FailedRate(), f.NewPeerFraction())
	}
	return nil
}
