// Evasion-study: quantifies what it would cost a botnet to evade the
// detectors (§VI of the paper), built on the red-team campaign runner.
// It sweeps the four default countermeasures — timer jitter, churn
// mimicry, volume padding toward τ_vol, slow-start peer contact — at an
// intensity grid over two synthetic worlds (the plain campus and the
// DHT-crawler hard case), scores every grid point against both
// detectors and the ensemble combiners, and prints the resulting
// detection-rate-vs-evasion-cost frontier. The same seed reproduces the
// same report bit for bit.
package main

import (
	"fmt"
	"os"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evasion-study:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := plotters.DefaultCampaignConfig(2024)
	cfg.Days = 2
	cfg.Scale = plotters.CampaignScaleSmall
	cfg.Worlds = []string{"baseline", "dht-crawler"}
	cfg.Intensities = []float64{0.25, 0.5, 1}
	cfg.Progress = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	rep, err := plotters.RunCampaign(cfg)
	if err != nil {
		return err
	}
	if err := rep.CheckMonotone(); err != nil {
		return err
	}
	fmt.Print(rep.Markdown())

	// Headline: the cheapest countermeasure that meaningfully degrades
	// each detector, judged over the full grid.
	fmt.Println()
	fmt.Println("== cheapest effective countermeasure per detector ==")
	for _, det := range rep.Detectors {
		name, point := cheapestEffective(rep, det)
		if name == "" {
			fmt.Printf("  %s: no countermeasure on the grid halves its detection — evasion costs more than the grid offers\n", det)
			continue
		}
		fmt.Printf("  %s: %s at intensity %.2f (cost: %+d bytes, %+d peers, +%s latency)\n",
			det, name, point.Intensity, point.Cost.ExtraBytes, point.Cost.ExtraPeers, point.Cost.AddedLatency)
	}
	fmt.Println()
	fmt.Println("conclusion: evading the timing test requires minute-scale randomization,")
	fmt.Println("which costs no traffic but directly slows botnet command propagation —")
	fmt.Println("the paper's §VI result. The community detector watches contact structure,")
	fmt.Println("not timing or volume, so no on-grid countermeasure dents it; churn toward")
	fmt.Println("a shared decoy pool even strengthens it, because the decoys become new")
	fmt.Println("mutual contacts. Evading both means per-bot disjoint decoy sets — the")
	fmt.Println("extra-peers cost column, multiplied by the botnet's size.")
	return nil
}

// cheapestEffective returns the first (lowest-intensity, in grid order)
// frontier point that at least halves the detector's combined baseline
// detection rate on any world, preferring lower intensity across
// countermeasures.
func cheapestEffective(rep *plotters.CampaignReport, detector string) (string, plotters.CampaignFrontierPoint) {
	var best plotters.CampaignFrontierPoint
	found := ""
	for _, w := range rep.Worlds {
		base, ok := scoreOf(w.Baseline, detector)
		if !ok {
			continue
		}
		baseRate := base.StormTPR() + base.NugacheTPR()
		if baseRate == 0 {
			continue
		}
		for _, p := range w.Frontier {
			s, ok := scoreOf(p.Scores, detector)
			if !ok {
				continue
			}
			if s.StormTPR()+s.NugacheTPR() <= baseRate/2 {
				if found == "" || p.Intensity < best.Intensity {
					found, best = p.Countermeasure, p
				}
				break // grid is ascending per countermeasure; first hit is cheapest
			}
		}
	}
	return found, best
}

// scoreOf finds a named score in a row.
func scoreOf(scores []plotters.CampaignScore, name string) (plotters.CampaignScore, bool) {
	for _, s := range scores {
		if s.Name == name {
			return s, true
		}
	}
	return plotters.CampaignScore{}, false
}
