// Evasion-study: quantifies what it would cost a botnet to evade each
// detection test (§VI of the paper). It measures, on a synthesized
// corpus, (a) the volume and churn increases the median bot needs to
// clear the dynamic thresholds, and (b) how detection decays — and
// command latency suffers — as bots jitter their connection timing.
package main

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evasion-study:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := plotters.DefaultDatasetConfig(2024)
	cfg.Days = 2
	cfg.DayTemplate.CampusHosts = 220
	fmt.Println("synthesizing corpus...")
	ds, err := plotters.GenerateDataset(cfg)
	if err != nil {
		return err
	}
	pipeCfg := plotters.DefaultConfig()

	// Baseline: detection without evasion.
	baseStorm, baseNugache, err := detectionRates(ds, ds.Storm.Records, ds.Nugache.Records, pipeCfg)
	if err != nil {
		return err
	}
	fmt.Printf("baseline detection: storm %.0f%%, nugache %.0f%%\n\n", 100*baseStorm, 100*baseNugache)

	// Part 1: how much more volume / churn would the median bot need?
	day, err := plotters.OverlayDay(ds.Days[0], ds, 77, pipeCfg)
	if err != nil {
		return err
	}
	res, err := day.Analysis.FindPlotters()
	if err != nil {
		return err
	}
	feats := day.Analysis.Features()
	medianVol := func(set plotters.HostSet) float64 {
		var vals []float64
		for h := range set {
			vals = append(vals, feats[h].AvgBytesPerFlow())
		}
		return median(vals)
	}
	fmt.Println("== evading θ_vol (volume) ==")
	for _, bot := range []struct {
		name string
		set  plotters.HostSet
	}{
		{"storm", day.Storm}, {"nugache", day.Nugache},
	} {
		m := medianVol(bot.set)
		factor := plotters.RequiredVolumeFactor(m, res.Volume.Threshold)
		fmt.Printf("  median %s host sends %.0f bytes/flow; threshold %.0f -> must inflate volume %.1fx\n",
			bot.name, m, res.Volume.Threshold, factor)
	}

	fmt.Println("\n== evading θ_churn (peer churn) ==")
	for _, bot := range []struct {
		name string
		set  plotters.HostSet
	}{
		{"storm", day.Storm}, {"nugache", day.Nugache},
	} {
		var factors []float64
		for h := range bot.set {
			f := feats[h]
			if f.NewPeers > 0 {
				factors = append(factors, plotters.RequiredChurnFactor(f.NewPeers, f.Peers, 0.9))
			}
		}
		fmt.Printf("  median %s host must contact %.1fx more new IPs to reach a 90%% new-IP fraction\n",
			bot.name, median(factors))
	}

	// Part 2: timing jitter vs. detection and command latency.
	fmt.Println("\n== evading θ_hm (timing jitter) ==")
	fmt.Println("  delay    storm-detect  nugache-detect  added-latency(avg)")
	for _, d := range []time.Duration{30 * time.Second, 2 * time.Minute, 10 * time.Minute, time.Hour} {
		rng := rand.New(rand.NewSource(int64(d)))
		stormJ, err := plotters.JitterRepeatContacts(ds.Storm.Records, d, rng)
		if err != nil {
			return err
		}
		nugJ, err := plotters.JitterRepeatContacts(ds.Nugache.Records, d, rng)
		if err != nil {
			return err
		}
		st, nu, err := detectionRates(ds, stormJ, nugJ, pipeCfg)
		if err != nil {
			return err
		}
		// A uniform ±d delay adds d/2 expected latency to every command
		// propagation hop.
		fmt.Printf("  %-8s %8.0f%%      %8.0f%%      +%s/hop\n", d, 100*st, 100*nu, d/2)
	}
	fmt.Println("\nconclusion: evading the timing test requires minute-scale randomization,")
	fmt.Println("which directly slows botnet command propagation — the paper's §VI result.")
	return nil
}

// detectionRates overlays (possibly transformed) traces onto both days
// and returns the average Storm and Nugache detection rates.
func detectionRates(ds *plotters.Dataset, stormRecs, nugRecs []plotters.Record, cfg plotters.Config) (float64, float64, error) {
	var storm, nugache plotters.Rates
	for i, day := range ds.Days {
		de, err := overlayWith(day, ds, stormRecs, nugRecs, int64(300+i), cfg)
		if err != nil {
			return 0, 0, err
		}
		res, err := de.Analysis.FindPlotters()
		if err != nil {
			return 0, 0, err
		}
		all := de.Analysis.Hosts()
		s := plotters.Score(res.Suspects, all, de.Storm)
		n := plotters.Score(res.Suspects, all, de.Nugache)
		storm.TP += s.TP
		storm.Plotters += s.Plotters
		nugache.TP += n.TP
		nugache.Plotters += n.Plotters
	}
	return storm.TPR(), nugache.TPR(), nil
}

// overlayWith builds a DayEval from externally transformed bot records.
func overlayWith(day *plotters.Day, ds *plotters.Dataset, stormRecs, nugRecs []plotters.Record, seed int64, cfg plotters.Config) (*plotters.DayEval, error) {
	modified := *ds
	storm := *ds.Storm
	storm.Records = stormRecs
	nugache := *ds.Nugache
	nugache.Records = nugRecs
	modified.Storm = &storm
	modified.Nugache = &nugache
	return plotters.OverlayDay(day, &modified, seed, cfg)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if n := len(sorted); n%2 == 1 {
		return sorted[n/2]
	}
	n := len(sorted)
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
