// Stream-detect: the high-volume deployment path. A busy border (the
// paper's network ran ~5000 flows/second) cannot buffer a day of records
// in memory, so this example drives the continuous detection engine end
// to end: raw packets → Argus-style flow assembly → sharded feature
// accumulation → the full FindPlotters pipeline at every window
// boundary, all without materializing the trace.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stream-detect:", err)
		os.Exit(1)
	}
}

func run() error {
	serve := flag.String("serve", "", "serve live metrics and pprof over HTTP on this address (e.g. localhost:6060); blocks after the feed finishes")
	window := flag.Duration("window", 30*time.Minute, "detection window length")
	flag.Parse()

	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(31))

	// Instrument the whole chain so a deployment can watch record rates,
	// the reorder buffer, shard depth, and per-window pipeline stage
	// times live.
	reg := plotters.NewMetrics()
	if *serve != "" {
		addr, err := serveMetrics(*serve, reg)
		if err != nil {
			return err
		}
		fmt.Printf("metrics at http://%s/metrics (Prometheus text; ?format=json for JSON), pprof at http://%s/debug/pprof/\n", addr, addr)
	}

	// The detection pipeline, scaled to a demo-sized population: the
	// synthetic feed's hosts make far fewer contacts per window than a
	// campus day, so θ_hm needs a lower sample floor.
	cfg := plotters.DefaultConfig()
	cfg.MinInterstitialSamples = 20
	cfg.Metrics = reg

	// The continuous engine: tumbling windows over the live feed. Flow
	// monitors report records at flow *end*, so the feed is only
	// approximately start-ordered; tolerate the assembler's idle-timeout
	// worth of reordering before sealing a window.
	eng, err := plotters.NewWindowedDetector(plotters.EngineConfig{
		Window:   *window,
		Origin:   start,
		MaxSkew:  10 * time.Minute,
		Internal: plotters.IsInternal,
		Core:     cfg,
	}, reportWindow)
	if err != nil {
		return err
	}

	// The streaming chain: assembler → windowed engine.
	flows := 0
	asm, err := plotters.NewAssembler(plotters.DefaultAssemblerConfig(), func(r plotters.Record) {
		flows++
		if err := eng.Add(&r); err != nil {
			fmt.Fprintln(os.Stderr, "engine:", err)
		}
	})
	if err != nil {
		return err
	}

	// Synthesize a packet feed: 30 ordinary web hosts and 3 machines
	// running a periodic bot-like beacon, interleaved packet by packet.
	fmt.Println("streaming a synthetic packet feed through assembly + windowed detection...")
	packets := synthesizePackets(rng, start)
	fmt.Printf("feed: %d packets over 2 simulated hours, %v windows\n\n", len(packets), *window)
	for i := range packets {
		if err := asm.Observe(packets[i]); err != nil {
			return err
		}
	}
	asm.Flush()
	if err := eng.Flush(); err != nil {
		return err
	}
	fmt.Printf("\nassembled %d bi-directional flow records; %d windows detected\n", flows, eng.Windows())

	// The machine-timed beacons stand out every window: high failure
	// rates put them past the reduction, tiny flows past θ_vol, and
	// metronomic interstitials cluster them tightly in θ_hm.
	fmt.Println("hosts 128.2.9.1-3 are the planted beacons.")

	if *serve != "" {
		fmt.Println("\nfeed finished; still serving metrics — interrupt to exit.")
		select {}
	}
	return nil
}

// reportWindow prints one sealed window's pipeline outcome.
func reportWindow(res *plotters.WindowResult) error {
	det := res.Detection
	fmt.Printf("window %d %s\n", res.Index, res.Window)
	fmt.Printf("  hosts=%d records=%d | reduction=%d θ_vol=%d θ_churn=%d → suspects=%d\n",
		res.Hosts, res.Records,
		len(det.Reduction.Kept), len(det.Volume.Kept), len(det.Churn.Kept), len(det.Suspects))
	feats := det.Analysis.Features()
	for _, h := range det.Suspects.Sorted() {
		f := feats[h]
		fmt.Printf("  suspect %-16s flows=%-5d avgBytes/flow=%-8.1f failedRate=%.2f interstitials=%d\n",
			h, f.Flows, f.AvgBytesPerFlow(), f.FailedRate(), len(f.Interstitials))
	}
	return nil
}

// serveMetrics starts an HTTP server exposing the registry at /metrics
// and the runtime profiler under /debug/pprof/, returning the bound
// address.
func serveMetrics(addr string, reg *plotters.Metrics) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "stream-detect: metrics server:", err)
		}
	}()
	return ln.Addr().String(), nil
}

// synthesizePackets builds an interleaved packet feed.
func synthesizePackets(rng *rand.Rand, start time.Time) []plotters.Packet {
	var pkts []plotters.Packet
	add := func(p plotters.Packet) { pkts = append(pkts, p) }

	// Web browsers; the occasional server never answers, so the
	// population has a realistic spread of failure rates for the
	// reduction's median to work with.
	for h := 0; h < 30; h++ {
		client, _ := plotters.ParseIP(fmt.Sprintf("128.2.8.%d", h+1))
		at := start.Add(time.Duration(rng.Intn(600)) * time.Second)
		port := uint16(40000)
		for at.Before(start.Add(2 * time.Hour)) {
			server, _ := plotters.ParseIP(fmt.Sprintf("66.35.%d.%d", rng.Intn(200)+1, rng.Intn(250)+1))
			port++
			add(plotters.Packet{Time: at, Src: client, Dst: server, SrcPort: port, DstPort: 80,
				Proto: plotters.TCP, Bytes: 60, SYN: true})
			if rng.Intn(12) != 0 {
				add(plotters.Packet{Time: at.Add(20 * time.Millisecond), Src: server, Dst: client, SrcPort: 80, DstPort: port,
					Proto: plotters.TCP, Bytes: 60, SYN: true, ACK: true})
				add(plotters.Packet{Time: at.Add(40 * time.Millisecond), Src: client, Dst: server, SrcPort: port, DstPort: 80,
					Proto: plotters.TCP, Bytes: uint32(400 + rng.Intn(800)), ACK: true, Payload: []byte("GET /")})
				add(plotters.Packet{Time: at.Add(90 * time.Millisecond), Src: server, Dst: client, SrcPort: 80, DstPort: port,
					Proto: plotters.TCP, Bytes: uint32(2000 + rng.Intn(20000)), ACK: true})
			}
			at = at.Add(time.Duration(float64(time.Second) * (2 + rng.ExpFloat64()*20)))
		}
	}
	// Beacons: 3 hosts pinging a small peer set every 30 s; half the
	// peers never answer.
	for h := 0; h < 3; h++ {
		bot, _ := plotters.ParseIP(fmt.Sprintf("128.2.9.%d", h+1))
		at := start.Add(time.Duration(rng.Intn(30)) * time.Second)
		for at.Before(start.Add(2 * time.Hour)) {
			peer, _ := plotters.ParseIP(fmt.Sprintf("199.7.%d.%d", h+1, rng.Intn(6)+1))
			port := uint16(50000 + rng.Intn(1000))
			add(plotters.Packet{Time: at, Src: bot, Dst: peer, SrcPort: port, DstPort: 8,
				Proto: plotters.TCP, Bytes: 60, SYN: true})
			if rng.Intn(2) == 0 {
				add(plotters.Packet{Time: at.Add(15 * time.Millisecond), Src: peer, Dst: bot, SrcPort: 8, DstPort: port,
					Proto: plotters.TCP, Bytes: 60, SYN: true, ACK: true})
				add(plotters.Packet{Time: at.Add(30 * time.Millisecond), Src: bot, Dst: peer, SrcPort: port, DstPort: 8,
					Proto: plotters.TCP, Bytes: 150, ACK: true})
			}
			at = at.Add(30 * time.Second)
		}
	}
	sortPackets(pkts)
	return pkts
}

func sortPackets(pkts []plotters.Packet) {
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Time.Before(pkts[j-1].Time); j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
}
