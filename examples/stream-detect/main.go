// Stream-detect: the high-volume deployment path. A busy border (the
// paper's network ran ~5000 flows/second) cannot buffer a day of records
// in memory, so this example drives the streaming pipeline end to end:
// raw packets → Argus-style flow assembly → incremental per-host feature
// extraction → periodic detection snapshots, all without materializing
// the trace.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"plotters"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stream-detect:", err)
		os.Exit(1)
	}
}

func run() error {
	serve := flag.String("serve", "", "serve live metrics and pprof over HTTP on this address (e.g. localhost:6060); blocks after the feed finishes")
	flag.Parse()

	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewSource(31))

	// Instrument the streaming chain so a deployment can watch record
	// rates, the reorder buffer, and tracked-host counts live.
	reg := plotters.NewMetrics()
	if *serve != "" {
		addr, err := serveMetrics(*serve, reg)
		if err != nil {
			return err
		}
		fmt.Printf("metrics at http://%s/metrics (Prometheus text; ?format=json for JSON), pprof at http://%s/debug/pprof/\n", addr, addr)
	}

	// The streaming chain: assembler → incremental extractor.
	// Flow monitors report records at flow *end*, so the feed is only
	// approximately start-ordered; tolerate the assembler's idle-timeout
	// worth of reordering.
	extractor := plotters.NewStreamExtractorSkew(plotters.FeatureOptions{Hosts: plotters.IsInternal}, 10*time.Minute).Metrics(reg)
	flows := 0
	asm, err := plotters.NewAssembler(plotters.DefaultAssemblerConfig(), func(r plotters.Record) {
		flows++
		if err := extractor.Add(&r); err != nil {
			fmt.Fprintln(os.Stderr, "extract:", err)
		}
	})
	if err != nil {
		return err
	}

	// Synthesize a packet feed: 30 ordinary web hosts and 3 machines
	// running a periodic bot-like beacon, interleaved packet by packet.
	fmt.Println("streaming a synthetic packet feed through assembly + extraction...")
	packets := synthesizePackets(rng, start)
	fmt.Printf("feed: %d packets over 2 simulated hours\n", len(packets))
	for i := range packets {
		if err := asm.Observe(packets[i]); err != nil {
			return err
		}
	}
	asm.Flush()
	extractor.Drain()
	fmt.Printf("assembled %d bi-directional flow records; tracking %d hosts\n", flows, extractor.Hosts())

	// Periodic detection snapshot: in production this would run at the
	// end of each detection window using the extractor's live features.
	feats := extractor.Snapshot()
	fmt.Println("\nper-host features (streaming, no trace buffered):")
	fmt.Println("  host             flows  avgBytes  failRate  newIPs  interstitials")
	for _, host := range sortedHosts(feats) {
		f := feats[host]
		if f.Flows < 20 {
			continue
		}
		fmt.Printf("  %-16s %5d  %8.0f  %8.2f  %6.2f  %13d\n",
			host, f.Flows, f.AvgBytesPerFlow(), f.FailedRate(), f.NewPeerFraction(), len(f.Interstitials))
	}

	// The machine-timed beacons stand out on the volume + timing axes
	// even before clustering: tiny flows, metronomic interstitials.
	fmt.Println("\nhosts 128.2.9.1-3 are the planted beacons: note the small flows and sample-rich timing.")

	if *serve != "" {
		fmt.Println("\nfeed finished; still serving metrics — interrupt to exit.")
		select {}
	}
	return nil
}

// serveMetrics starts an HTTP server exposing the registry at /metrics
// and the runtime profiler under /debug/pprof/, returning the bound
// address.
func serveMetrics(addr string, reg *plotters.Metrics) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "stream-detect: metrics server:", err)
		}
	}()
	return ln.Addr().String(), nil
}

// synthesizePackets builds an interleaved packet feed.
func synthesizePackets(rng *rand.Rand, start time.Time) []plotters.Packet {
	var pkts []plotters.Packet
	add := func(p plotters.Packet) { pkts = append(pkts, p) }

	// Web browsers.
	for h := 0; h < 30; h++ {
		client, _ := plotters.ParseIP(fmt.Sprintf("128.2.8.%d", h+1))
		at := start.Add(time.Duration(rng.Intn(600)) * time.Second)
		port := uint16(40000)
		for at.Before(start.Add(2 * time.Hour)) {
			server, _ := plotters.ParseIP(fmt.Sprintf("66.35.%d.%d", rng.Intn(200)+1, rng.Intn(250)+1))
			port++
			add(plotters.Packet{Time: at, Src: client, Dst: server, SrcPort: port, DstPort: 80,
				Proto: plotters.TCP, Bytes: 60, SYN: true})
			add(plotters.Packet{Time: at.Add(20 * time.Millisecond), Src: server, Dst: client, SrcPort: 80, DstPort: port,
				Proto: plotters.TCP, Bytes: 60, SYN: true, ACK: true})
			add(plotters.Packet{Time: at.Add(40 * time.Millisecond), Src: client, Dst: server, SrcPort: port, DstPort: 80,
				Proto: plotters.TCP, Bytes: uint32(400 + rng.Intn(800)), ACK: true, Payload: []byte("GET /")})
			add(plotters.Packet{Time: at.Add(90 * time.Millisecond), Src: server, Dst: client, SrcPort: 80, DstPort: port,
				Proto: plotters.TCP, Bytes: uint32(2000 + rng.Intn(20000)), ACK: true})
			at = at.Add(time.Duration(float64(time.Second) * (2 + rng.ExpFloat64()*20)))
		}
	}
	// Beacons: 3 hosts pinging a small peer set every 30 s; half the
	// peers never answer.
	for h := 0; h < 3; h++ {
		bot, _ := plotters.ParseIP(fmt.Sprintf("128.2.9.%d", h+1))
		at := start.Add(time.Duration(rng.Intn(30)) * time.Second)
		for at.Before(start.Add(2 * time.Hour)) {
			peer, _ := plotters.ParseIP(fmt.Sprintf("199.7.%d.%d", h+1, rng.Intn(6)+1))
			port := uint16(50000 + rng.Intn(1000))
			add(plotters.Packet{Time: at, Src: bot, Dst: peer, SrcPort: port, DstPort: 8,
				Proto: plotters.TCP, Bytes: 60, SYN: true})
			if rng.Intn(2) == 0 {
				add(plotters.Packet{Time: at.Add(15 * time.Millisecond), Src: peer, Dst: bot, SrcPort: 8, DstPort: port,
					Proto: plotters.TCP, Bytes: 60, SYN: true, ACK: true})
				add(plotters.Packet{Time: at.Add(30 * time.Millisecond), Src: bot, Dst: peer, SrcPort: port, DstPort: 8,
					Proto: plotters.TCP, Bytes: 150, ACK: true})
			}
			at = at.Add(30 * time.Second)
		}
	}
	sortPackets(pkts)
	return pkts
}

func sortPackets(pkts []plotters.Packet) {
	for i := 1; i < len(pkts); i++ {
		for j := i; j > 0 && pkts[j].Time.Before(pkts[j-1].Time); j-- {
			pkts[j], pkts[j-1] = pkts[j-1], pkts[j]
		}
	}
}

func sortedHosts(feats map[plotters.IP]*plotters.HostFeatures) []plotters.IP {
	hosts := make([]plotters.IP, 0, len(feats))
	for h := range feats {
		hosts = append(hosts, h)
	}
	for i := 1; i < len(hosts); i++ {
		for j := i; j > 0 && hosts[j] < hosts[j-1]; j-- {
			hosts[j], hosts[j-1] = hosts[j-1], hosts[j]
		}
	}
	return hosts
}
