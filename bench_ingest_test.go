// BenchmarkIngestPipeline measures the steady-state hot loop the
// collector's decode workers run per datagram — wire decode into a
// pooled arena, deterministic 1-in-N sampling, arena reset — for each
// export protocol the ingest subsystem speaks. ReportAllocs makes the
// zero-allocation contract visible in every run (and hard-asserted by
// TestIngestSteadyStateZeroAlloc in internal/collector); the bench-gate
// CI job fails a PR when allocs/op leaves zero or ns/op regresses past
// the threshold. IPFIX is measured on data-only messages: template sets
// allocate when (re)learned, which real exporters do rarely, not per
// datagram.
package plotters_test

import (
	"encoding/binary"
	"testing"
	"time"

	"plotters/internal/collector"
	"plotters/internal/flow"
	"plotters/internal/ingest"
)

// ingestBenchRecords builds one packet's worth of varied, valid flow
// records.
func ingestBenchRecords() []flow.Record {
	t0 := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	records := make([]flow.Record, collector.V5MaxRecords)
	for i := range records {
		state := flow.StateEstablished
		if i%3 == 0 {
			state = flow.StateFailed
		}
		records[i] = flow.Record{
			Src: flow.IP(0x80020000 + i), Dst: flow.IP(0x42230000 + i*7),
			SrcPort: uint16(40000 + i), DstPort: uint16(80 + i%3), Proto: flow.TCP,
			Start:   t0.Add(time.Duration(i) * 100 * time.Millisecond),
			End:     t0.Add(time.Duration(i)*100*time.Millisecond + 2*time.Second),
			SrcPkts: 10, SrcBytes: 1400, DstPkts: 4, DstBytes: 600,
			State: state,
		}
	}
	return records
}

// ipfixDataOnly strips the template set out of a self-describing IPFIX
// message, leaving header + data set — the steady-state shape.
func ipfixDataOnly(tb testing.TB, full []byte) []byte {
	tb.Helper()
	be := binary.BigEndian
	out := append([]byte(nil), full[:16]...)
	for off := 16; off+4 <= len(full); {
		setID := be.Uint16(full[off:])
		setLen := int(be.Uint16(full[off+2:]))
		if setLen < 4 || off+setLen > len(full) {
			tb.Fatalf("bad set at %d", off)
		}
		if setID >= 256 {
			out = append(out, full[off:off+setLen]...)
		}
		off += setLen
	}
	be.PutUint16(out[2:], uint16(len(out)))
	return out
}

func BenchmarkIngestPipeline(b *testing.B) {
	records := ingestBenchRecords()
	v5pkt, err := collector.AppendV5(nil, records, 0)
	if err != nil {
		b.Fatal(err)
	}
	ipfixFull, err := collector.AppendIPFIX(nil, records, 0)
	if err != nil {
		b.Fatal(err)
	}
	ipfixData := ipfixDataOnly(b, ipfixFull)
	sflowPkt, err := collector.AppendSFlow(nil, records, 0)
	if err != nil {
		b.Fatal(err)
	}
	arrival := records[0].Start

	for _, bc := range []struct {
		name    string
		pkt     []byte
		sampleN uint64
		decode  func(tc *collector.TemplateCache, pkt []byte, dst []flow.Record) ([]flow.Record, error)
	}{
		{"proto=v5", v5pkt, 1, func(_ *collector.TemplateCache, pkt []byte, dst []flow.Record) ([]flow.Record, error) {
			_, recs, err := collector.DecodeV5(pkt, dst)
			return recs, err
		}},
		{"proto=ipfix", ipfixData, 1, func(tc *collector.TemplateCache, pkt []byte, dst []flow.Record) ([]flow.Record, error) {
			_, recs, _, err := tc.DecodeIPFIX("bench", pkt, dst)
			return recs, err
		}},
		{"proto=sflow", sflowPkt, 1, func(_ *collector.TemplateCache, pkt []byte, dst []flow.Record) ([]flow.Record, error) {
			_, recs, _, err := collector.DecodeSFlow(pkt, arrival, dst)
			return recs, err
		}},
		{"proto=v5/sample=16", v5pkt, 16, func(_ *collector.TemplateCache, pkt []byte, dst []flow.Record) ([]flow.Record, error) {
			_, recs, err := collector.DecodeV5(pkt, dst)
			return recs, err
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tc := collector.NewTemplateCache()
			if bc.name == "proto=ipfix" {
				// Learn the template once — the warm-exporter state.
				if _, _, _, err := tc.DecodeIPFIX("bench", ipfixFull, nil); err != nil {
					b.Fatal(err)
				}
			}
			var arena ingest.RecordArena
			sampler := ingest.Sampler{N: bc.sampleN, Seed: 42}
			// Warm the arena slab so the timed loop is pure steady state.
			recs, err := bc.decode(tc, bc.pkt, arena.Take())
			if err != nil {
				b.Fatal(err)
			}
			decoded := len(recs)
			arena.Reset(recs)

			b.SetBytes(int64(len(bc.pkt)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := bc.decode(tc, bc.pkt, arena.Take())
				if err != nil {
					b.Fatal(err)
				}
				_ = sampler.Filter(recs)
				arena.Reset(recs)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*decoded)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
