// Package wire holds the little-endian binary codec and the CRC-framed
// section format shared by everything in this repository that puts
// state on disk or on the network: checkpoint snapshots, the record
// WAL's sibling framing, and the shard→coordinator summary protocol of
// internal/dist. It began life as the checkpoint package's private
// codec; the distributed pipeline reuses it as its wire format, so the
// primitives live here once.
//
// The Encoder appends to a byte slice; the Decoder consumes one with a
// sticky error, so codecs read field after field and check once at the
// end. Every count the Decoder reads is validated against the bytes
// remaining before anything is allocated — a bit-flipped length in a
// hostile or corrupt input must cost an error, never memory.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Encoder appends little-endian fields to a growing byte slice.
type Encoder struct {
	b []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.b }

// Len returns the encoded length so far.
func (e *Encoder) Len() int { return len(e.b) }

// Raw appends p verbatim.
func (e *Encoder) Raw(p []byte) { e.b = append(e.b, p...) }

// Splice hands the underlying buffer to fn to append into directly and
// keeps the result — the escape hatch for external append-style codecs
// (flowio.AppendRecord) that would otherwise force a copy per element.
func (e *Encoder) Splice(fn func(b []byte) []byte) { e.b = fn(e.b) }

func (e *Encoder) U8(v uint8)   { e.b = append(e.b, v) }
func (e *Encoder) U16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *Encoder) U32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *Encoder) U64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *Encoder) I64(v int64)  { e.U64(uint64(v)) }
func (e *Encoder) F64(v float64) {
	e.U64(math.Float64bits(v))
}

func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Time encodes a timestamp as a zero flag plus UnixNano: the zero
// time.Time is not representable as a nanosecond count, and state
// structs use it as a meaningful "never" sentinel.
func (e *Encoder) Time(t time.Time) {
	if t.IsZero() {
		e.U8(0)
		e.I64(0)
		return
	}
	e.U8(1)
	e.I64(t.UnixNano())
}

func (e *Encoder) Dur(d time.Duration) { e.I64(int64(d)) }

func (e *Encoder) Str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.U16(uint16(len(s)))
	e.b = append(e.b, s...)
}

// Decoder consumes a byte slice with a sticky error.
type Decoder struct {
	b   []byte
	err error
}

// NewDecoder wraps data for decoding. The slice is consumed in place,
// not copied.
func NewDecoder(data []byte) *Decoder { return &Decoder{b: data} }

// Err returns the first decoding failure, nil if none.
func (d *Decoder) Err() error { return d.err }

// Fail records a decoding failure; only the first one sticks.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// Take consumes n bytes, failing on underrun.
func (d *Decoder) Take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.Fail("wire: truncated: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *Decoder) U8() uint8 {
	b := d.Take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) U16() uint16 {
	b := d.Take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *Decoder) U32() uint32 {
	b := d.Take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) U64() uint64 {
	b := d.Take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Rest returns the unconsumed bytes without consuming them, for
// external decoders that report how many bytes they used; pair with a
// Take of that many to advance.
func (d *Decoder) Rest() []byte {
	if d.err != nil {
		return nil
	}
	return d.b
}

func (d *Decoder) I64() int64     { return int64(d.U64()) }
func (d *Decoder) F64() float64   { return math.Float64frombits(d.U64()) }
func (d *Decoder) Bool() bool     { return d.U8() != 0 }
func (d *Decoder) Remaining() int { return len(d.b) }

func (d *Decoder) Time() time.Time {
	set := d.U8()
	ns := d.I64()
	if d.err != nil || set == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

func (d *Decoder) Dur() time.Duration { return time.Duration(d.I64()) }

func (d *Decoder) Str() string {
	n := int(d.U16())
	b := d.Take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Count reads a u32 element count and validates it against the bytes
// remaining, given the minimum encoded size of one element. The
// returned count is safe to allocate for.
func (d *Decoder) Count(minElem int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if n < 0 || n > len(d.b)/minElem {
		d.Fail("wire: implausible element count %d for %d remaining bytes", n, len(d.b))
		return 0
	}
	return n
}

// --- CRC-framed sections ---
//
// A frame is (u16 id, u32 length, payload, u32 CRC32-IEEE of the
// payload). Checkpoint snapshots lay frames end to end inside a file;
// the distributed protocol lays the same frames end to end on a TCP
// stream. Both sides reject a failed CRC, an implausible length, and
// an id they do not understand — the reader never guesses.

// frameHeaderLen is the id + length prefix; frameTrailerLen the CRC.
const (
	frameHeaderLen  = 6
	frameTrailerLen = 4
)

// AppendFrame appends one framed section to the encoder.
func AppendFrame(e *Encoder, id uint16, payload []byte) {
	e.U16(id)
	e.U32(uint32(len(payload)))
	e.Raw(payload)
	e.U32(crc32.ChecksumIEEE(payload))
}

// WriteFrame writes one framed section to w in a single Write call (so
// a frame is never interleaved with another writer's bytes on a shared
// connection guarded by the caller's lock).
func WriteFrame(w io.Writer, id uint16, payload []byte) error {
	var e Encoder
	e.b = make([]byte, 0, frameHeaderLen+len(payload)+frameTrailerLen)
	AppendFrame(&e, id, payload)
	_, err := w.Write(e.Bytes())
	return err
}

// ReadFrame reads one framed section from r, verifying the CRC.
// Payloads larger than maxPayload are rejected before allocation — a
// corrupt or hostile length prefix costs an error, not memory. A clean
// EOF at a frame boundary is returned as io.EOF; EOF inside a frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxPayload int) (id uint16, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	id = binary.LittleEndian.Uint16(hdr[0:2])
	n := int(binary.LittleEndian.Uint32(hdr[2:6]))
	if n < 0 || n > maxPayload {
		return 0, nil, fmt.Errorf("wire: frame %d declares an implausible %d-byte payload (limit %d)", id, n, maxPayload)
	}
	buf := make([]byte, n+frameTrailerLen)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, fmt.Errorf("wire: reading %d-byte frame %d: %w", n, id, err)
	}
	payload = buf[:n]
	crc := binary.LittleEndian.Uint32(buf[n:])
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, fmt.Errorf("wire: frame %d failed its CRC check — the stream is corrupt", id)
	}
	return id, payload, nil
}
