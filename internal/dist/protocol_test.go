package dist

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/wire"
)

func testEngineConfig() engine.Config {
	return engine.Config{
		Window: time.Hour,
		Origin: time.Date(2009, 10, 6, 9, 0, 0, 0, time.UTC),
		Core:   core.DefaultConfig(),
	}
}

func testSummary() *core.ShardSummary {
	return &core.ShardSummary{
		Shard:       1,
		Shards:      4,
		Window:      flow.Window{From: time.Unix(1000, 0).UTC(), To: time.Unix(4600, 0).UTC()},
		HasContacts: true,
		Hosts: []core.HostSummary{
			{
				Host:              0x0a000001,
				Flows:             12,
				SuccessfulFlows:   9,
				FailedFlows:       3,
				BytesUploaded:     48213,
				Peers:             7,
				NewPeers:          2,
				FirstSeen:         time.Unix(1030, 500).UTC(),
				LastSeen:          time.Unix(4400, 0).UTC(),
				InterstitialCount: 240,
				SketchPositions:   []float64{0.5, 1.25, 3.75},
				SketchWeights:     []float64{10, 220, 10},
				Contacts:          []flow.IP{0x08080808, 0x0a000002},
			},
			{
				Host:              0x0a000005,
				Flows:             3,
				FailedFlows:       3,
				FirstSeen:         time.Unix(2000, 0).UTC(),
				LastSeen:          time.Unix(2100, 0).UTC(),
				InterstitialCount: 2,
			},
		},
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	want := testSummary()
	payload := EncodeSummary(7, want)
	index, got, err := DecodeSummary(payload)
	if err != nil {
		t.Fatal(err)
	}
	if index != 7 {
		t.Fatalf("window index = %d, want 7", index)
	}
	if got.Shard != want.Shard || got.Shards != want.Shards ||
		!got.Window.From.Equal(want.Window.From) || !got.Window.To.Equal(want.Window.To) ||
		got.Partial != want.Partial || got.HasContacts != want.HasContacts {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if len(got.Hosts) != len(want.Hosts) {
		t.Fatalf("hosts = %d, want %d", len(got.Hosts), len(want.Hosts))
	}
	for i := range want.Hosts {
		w, g := want.Hosts[i], got.Hosts[i]
		if g.Host != w.Host || g.Flows != w.Flows || g.SuccessfulFlows != w.SuccessfulFlows ||
			g.FailedFlows != w.FailedFlows || g.BytesUploaded != w.BytesUploaded ||
			g.Peers != w.Peers || g.NewPeers != w.NewPeers ||
			!g.FirstSeen.Equal(w.FirstSeen) || !g.LastSeen.Equal(w.LastSeen) ||
			g.InterstitialCount != w.InterstitialCount {
			t.Errorf("host %d scalar mismatch:\ngot  %+v\nwant %+v", i, g, w)
		}
		if len(g.SketchPositions) != len(w.SketchPositions) || len(g.Contacts) != len(w.Contacts) {
			t.Errorf("host %d sketch/contact lengths differ", i)
			continue
		}
		for j := range w.SketchPositions {
			if g.SketchPositions[j] != w.SketchPositions[j] || g.SketchWeights[j] != w.SketchWeights[j] {
				t.Errorf("host %d sketch bin %d differs", i, j)
			}
		}
		for j := range w.Contacts {
			if g.Contacts[j] != w.Contacts[j] {
				t.Errorf("host %d contact %d differs", i, j)
			}
		}
	}
}

// A summary from a future format version must be refused by name, not
// misparsed.
func TestSummaryCrossVersionRejected(t *testing.T) {
	payload := EncodeSummary(0, testSummary())
	var e wire.Encoder
	e.U16(SummaryVersion + 41) // splice a future version over the real one
	copy(payload[:2], e.Bytes())
	_, _, err := DecodeSummary(payload)
	if err == nil {
		t.Fatal("decoded a summary claiming a future format version")
	}
	if !strings.Contains(err.Error(), "version 42") || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("error %q does not name the offending version", err)
	}
}

// Truncation anywhere inside the payload must be a hard error — every
// prefix of a valid summary is invalid.
func TestSummaryTruncatedRejected(t *testing.T) {
	payload := EncodeSummary(0, testSummary())
	for _, cut := range []int{1, 2, 10, len(payload) / 2, len(payload) - 1} {
		if _, _, err := DecodeSummary(payload[:cut]); err == nil {
			t.Errorf("decoded a summary truncated to %d of %d bytes", cut, len(payload))
		}
	}
	// Trailing garbage is equally hard: frames are exact, not prefixed.
	if _, _, err := DecodeSummary(append(append([]byte{}, payload...), 0xEE)); err == nil {
		t.Error("decoded a summary with trailing bytes")
	} else if !strings.Contains(err.Error(), "trailing") {
		t.Errorf("error %q does not mention trailing bytes", err)
	}
}

// A bit flip anywhere in a framed summary must be caught by the frame
// CRC before the payload is even parsed.
func TestSummaryFrameBitFlipRejected(t *testing.T) {
	payload := EncodeSummary(3, testSummary())
	var e wire.Encoder
	wire.AppendFrame(&e, frameSummary, seqPayload(9, payload))
	frame := e.Bytes()
	for _, bit := range []int{6 * 8, len(frame)/2*8 + 3, (len(frame) - 1) * 8} {
		corrupt := append([]byte{}, frame...)
		corrupt[bit/8] ^= 1 << (bit % 8)
		_, _, err := wire.ReadFrame(bytes.NewReader(corrupt), maxFramePayload)
		if err == nil {
			t.Errorf("frame with flipped bit %d read back clean", bit)
		}
	}
	// And an uncorrupted frame reads back byte-identical.
	id, got, err := wire.ReadFrame(bytes.NewReader(frame), maxFramePayload)
	if err != nil || id != frameSummary || !bytes.Equal(got, seqPayload(9, payload)) {
		t.Fatalf("clean frame did not round-trip: id=%d err=%v", id, err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	want := hello{
		Version: WireVersion,
		Shard:   3,
		Resume:  99,
		FP:      FingerprintOf(testEngineConfig(), 4),
	}
	got, err := decodeHello(encodeHello(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.Shard != want.Shard || got.Resume != want.Resume {
		t.Fatalf("hello header mismatch: %+v", got)
	}
	if err := got.FP.Check(want.FP); err != nil {
		t.Fatalf("round-tripped fingerprint does not match itself: %v", err)
	}
}

// A worker speaking another protocol version is refused with both
// versions named.
func TestHelloVersionMismatchRejected(t *testing.T) {
	h := hello{Version: WireVersion + 1, Shard: 0, FP: FingerprintOf(testEngineConfig(), 1)}
	_, err := decodeHello(encodeHello(h))
	if err == nil {
		t.Fatal("accepted a hello from a future protocol version")
	}
	if !strings.Contains(err.Error(), "version 2") || !strings.Contains(err.Error(), "speaks 1") {
		t.Fatalf("error %q does not name both versions", err)
	}
}

// Fingerprint.Check must name the first mismatched knob.
func TestFingerprintMismatchNamesKnob(t *testing.T) {
	base := FingerprintOf(testEngineConfig(), 4)
	cases := []struct {
		mutate func(*Fingerprint)
		want   string
	}{
		{func(f *Fingerprint) { f.Window = 2 * time.Hour }, "window"},
		{func(f *Fingerprint) { f.Shards = 8 }, "shard count"},
		{func(f *Fingerprint) { f.VolPercentile = 60 }, "vol percentile"},
		{func(f *Fingerprint) { f.MinInterstitialSamples = 10 }, "min interstitial samples"},
		{func(f *Fingerprint) { f.RawTimeScale = true }, "raw-time-scale"},
	}
	for _, c := range cases {
		peer := base
		c.mutate(&peer)
		err := peer.Check(base)
		if err == nil {
			t.Errorf("fingerprint differing in %q passed Check", c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not name knob %q", err, c.want)
		}
	}
	if err := base.Check(base); err != nil {
		t.Errorf("identical fingerprints rejected: %v", err)
	}
}

// End-to-end handshake refusal: a coordinator serving a connection whose
// hello carries a different configuration must return the descriptive
// mismatch error.
func TestServeConnRefusesMismatchedConfig(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Shards: 2, Engine: testEngineConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	other := testEngineConfig()
	other.Core.HMPercentile = 70

	client, server := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- coord.ServeConn(server) }()
	hb := encodeHello(hello{Version: WireVersion, Shard: 0, FP: FingerprintOf(other, 2)})
	if err := wire.WriteFrame(client, frameHello, hb); err != nil {
		t.Fatal(err)
	}
	err = <-errc
	client.Close()
	if err == nil {
		t.Fatal("coordinator served a connection with a mismatched fingerprint")
	}
	if !strings.Contains(err.Error(), "fingerprint mismatch") || !strings.Contains(err.Error(), "hm percentile") {
		t.Fatalf("error %q does not describe the mismatch", err)
	}
}

// A hello claiming a shard outside the deployment is refused.
func TestServeConnRefusesOutOfRangeShard(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Shards: 2, Engine: testEngineConfig()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	client, server := net.Pipe()
	errc := make(chan error, 1)
	go func() { errc <- coord.ServeConn(server) }()
	hb := encodeHello(hello{Version: WireVersion, Shard: 5, FP: FingerprintOf(testEngineConfig(), 2)})
	if err := wire.WriteFrame(client, frameHello, hb); err != nil {
		t.Fatal(err)
	}
	err = <-errc
	client.Close()
	if err == nil || !strings.Contains(err.Error(), "shard 5") {
		t.Fatalf("out-of-range shard not refused by name: %v", err)
	}
}
