// Package dist runs the detection pipeline across processes: N
// ShardWorkers each own one host-hash slice of the monitored population
// (feature extraction plus the shard-local phase, core.LocalPass) and
// ship per-window ShardSummary frames over TCP to one Coordinator,
// which runs the global phase (engine.DistributedDetector →
// core.GlobalPass) once every shard has reported.
//
// The wire format is the checkpoint package's codec, reused on purpose:
// the same little-endian primitives (internal/wire), the same CRC-framed
// sections, the same refuse-to-guess posture — an unknown version, a
// failed CRC, a truncated frame, or a mismatched configuration
// fingerprint is a descriptive hard error, never a silently wrong
// percentile. The transport discipline is the collector's: frames carry
// per-shard sequence numbers; the coordinator counts gaps, duplicates,
// and resets exactly as the NetFlow sequence accounting does, and a
// worker that reconnects resends everything unacknowledged (duplicates
// are deduplicated downstream by (shard, window), so a mid-run kill and
// reconnect leaves the detection output bit-identical).
package dist

import (
	"fmt"
	"time"

	"plotters/internal/core"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/wire"
)

// WireVersion is the shard→coordinator protocol version, bumped on any
// frame-layout change. Both ends refuse a peer speaking another
// version.
const WireVersion = 1

// SummaryVersion versions the ShardSummary payload layout inside
// summary frames, independently of the outer protocol.
const SummaryVersion = 1

// Frame types.
const (
	frameHello     = 1 // worker → coordinator, first frame on every connection
	frameSummary   = 2 // worker → coordinator, one window's ShardSummary
	frameWatermark = 3 // worker → coordinator, stream punctuation
	frameAck       = 4 // coordinator → worker, cumulative sequence ack
)

// maxFramePayload bounds a frame before allocation. A summary's
// dominant cost is its sketches: ≤ MaxHistogramBins (256) non-empty
// bins × 16 bytes ≈ 4 KiB per clusterable host, so 256 MiB covers tens
// of thousands of hosts per shard-window with room to spare.
const maxFramePayload = 256 << 20

// minHostSummary is the smallest encoded HostSummary (empty sketch and
// contact list), used to validate host counts before allocation.
const minHostSummary = 4 + 3*8 + 8 + 2*8 + 2*9 + 8 + 4 + 4

// Fingerprint pins every configuration knob the distributed split's
// bit-identity depends on: the window geometry the shards seal by and
// the detection operating point both phases compute with. A worker and
// coordinator with different fingerprints would not fail on their own —
// percentiles would just come out quietly different — so the hello
// handshake compares every field and refuses the connection on the
// first mismatch. Knobs that provably cannot change the output
// (Parallelism, HMPrune/HMCut, DropLate, metrics) are deliberately
// excluded.
type Fingerprint struct {
	Window         time.Duration
	Slide          time.Duration
	Origin         time.Time
	MaxSkew        time.Duration
	Grace          time.Duration
	CarryFirstSeen bool
	Shards         int

	VolPercentile          float64
	ChurnPercentile        float64
	HMPercentile           float64
	CutFraction            float64
	MinInterstitialSamples int
	MaxHistogramBins       int
	MaxDiameter            bool
	RawTimeScale           bool
}

// FingerprintOf derives the fingerprint of one shard engine
// configuration in an N-shard deployment.
func FingerprintOf(cfg engine.Config, shards int) Fingerprint {
	grace := cfg.Core.NewPeerGrace
	if grace <= 0 {
		grace = flow.DefaultNewPeerGrace
	}
	return Fingerprint{
		Window:                 cfg.Window,
		Slide:                  cfg.Slide,
		Origin:                 cfg.Origin,
		MaxSkew:                cfg.MaxSkew,
		Grace:                  grace,
		CarryFirstSeen:         cfg.CarryFirstSeen,
		Shards:                 shards,
		VolPercentile:          cfg.Core.VolPercentile,
		ChurnPercentile:        cfg.Core.ChurnPercentile,
		HMPercentile:           cfg.Core.HMPercentile,
		CutFraction:            cfg.Core.CutFraction,
		MinInterstitialSamples: cfg.Core.MinInterstitialSamples,
		MaxHistogramBins:       cfg.Core.MaxHistogramBins,
		MaxDiameter:            cfg.Core.MaxDiameter,
		RawTimeScale:           cfg.Core.RawTimeScale,
	}
}

// Check compares a worker's fingerprint against the coordinator's,
// naming the first mismatched knob.
func (f Fingerprint) Check(cur Fingerprint) error {
	mismatches := []struct {
		name       string
		peer, mine any
	}{
		{"window", f.Window, cur.Window},
		{"slide", f.Slide, cur.Slide},
		{"origin", f.Origin.UnixNano(), cur.Origin.UnixNano()},
		{"max-skew", f.MaxSkew, cur.MaxSkew},
		{"new-peer grace", f.Grace, cur.Grace},
		{"carry-first-seen", f.CarryFirstSeen, cur.CarryFirstSeen},
		{"shard count", f.Shards, cur.Shards},
		{"vol percentile", f.VolPercentile, cur.VolPercentile},
		{"churn percentile", f.ChurnPercentile, cur.ChurnPercentile},
		{"hm percentile", f.HMPercentile, cur.HMPercentile},
		{"cut fraction", f.CutFraction, cur.CutFraction},
		{"min interstitial samples", f.MinInterstitialSamples, cur.MinInterstitialSamples},
		{"max histogram bins", f.MaxHistogramBins, cur.MaxHistogramBins},
		{"max-diameter", f.MaxDiameter, cur.MaxDiameter},
		{"raw-time-scale", f.RawTimeScale, cur.RawTimeScale},
	}
	for _, m := range mismatches {
		if m.peer != m.mine {
			return fmt.Errorf("dist: configuration fingerprint mismatch: peer runs with %s %v but this end is configured with %v — distributed detection requires identical configuration on every node",
				m.name, m.peer, m.mine)
		}
	}
	return nil
}

func (f Fingerprint) encode(e *wire.Encoder) {
	e.Dur(f.Window)
	e.Dur(f.Slide)
	e.Time(f.Origin)
	e.Dur(f.MaxSkew)
	e.Dur(f.Grace)
	e.Bool(f.CarryFirstSeen)
	e.U32(uint32(f.Shards))
	e.F64(f.VolPercentile)
	e.F64(f.ChurnPercentile)
	e.F64(f.HMPercentile)
	e.F64(f.CutFraction)
	e.U32(uint32(f.MinInterstitialSamples))
	e.U32(uint32(f.MaxHistogramBins))
	e.Bool(f.MaxDiameter)
	e.Bool(f.RawTimeScale)
}

func decodeFingerprint(d *wire.Decoder) Fingerprint {
	return Fingerprint{
		Window:                 d.Dur(),
		Slide:                  d.Dur(),
		Origin:                 d.Time(),
		MaxSkew:                d.Dur(),
		Grace:                  d.Dur(),
		CarryFirstSeen:         d.Bool(),
		Shards:                 int(d.U32()),
		VolPercentile:          d.F64(),
		ChurnPercentile:        d.F64(),
		HMPercentile:           d.F64(),
		CutFraction:            d.F64(),
		MinInterstitialSamples: int(d.U32()),
		MaxHistogramBins:       int(d.U32()),
		MaxDiameter:            d.Bool(),
		RawTimeScale:           d.Bool(),
	}
}

// hello is the first frame of every worker connection.
type hello struct {
	Version uint16
	Shard   int
	Resume  uint64 // first sequence number this connection will (re)send
	FP      Fingerprint
}

func encodeHello(h hello) []byte {
	var e wire.Encoder
	e.U16(h.Version)
	e.U32(uint32(h.Shard))
	e.U64(h.Resume)
	h.FP.encode(&e)
	return e.Bytes()
}

func decodeHello(data []byte) (hello, error) {
	d := wire.NewDecoder(data)
	h := hello{
		Version: d.U16(),
		Shard:   int(d.U32()),
		Resume:  d.U64(),
	}
	// The version gates everything after it: a future hello may carry a
	// longer fingerprint, so mismatches must be reported before the
	// decoder trips over layout differences.
	if d.Err() == nil && h.Version != WireVersion {
		return h, fmt.Errorf("dist: peer speaks protocol version %d but this build speaks %d — refusing to guess at its frames", h.Version, WireVersion)
	}
	h.FP = decodeFingerprint(d)
	if err := d.Err(); err != nil {
		return h, fmt.Errorf("dist: malformed hello: %w", err)
	}
	if d.Remaining() != 0 {
		return h, fmt.Errorf("dist: hello carries %d undecoded trailing bytes", d.Remaining())
	}
	return h, nil
}

// EncodeSummary serializes one window's ShardSummary (versioned; the
// payload of a summary frame after its sequence header).
func EncodeSummary(index int, s *core.ShardSummary) []byte {
	var e wire.Encoder
	e.U16(SummaryVersion)
	e.I64(int64(index))
	e.U32(uint32(s.Shard))
	e.U32(uint32(s.Shards))
	e.Time(s.Window.From)
	e.Time(s.Window.To)
	e.Bool(s.Partial)
	e.Bool(s.HasContacts)
	e.U32(uint32(len(s.Hosts)))
	for i := range s.Hosts {
		h := &s.Hosts[i]
		e.U32(uint32(h.Host))
		e.I64(int64(h.Flows))
		e.I64(int64(h.SuccessfulFlows))
		e.I64(int64(h.FailedFlows))
		e.U64(h.BytesUploaded)
		e.I64(int64(h.Peers))
		e.I64(int64(h.NewPeers))
		e.Time(h.FirstSeen)
		e.Time(h.LastSeen)
		e.I64(int64(h.InterstitialCount))
		e.U32(uint32(len(h.SketchPositions)))
		for j := range h.SketchPositions {
			e.F64(h.SketchPositions[j])
			e.F64(h.SketchWeights[j])
		}
		e.U32(uint32(len(h.Contacts)))
		for _, c := range h.Contacts {
			e.U32(uint32(c))
		}
	}
	return e.Bytes()
}

// DecodeSummary parses a summary payload produced by EncodeSummary,
// returning the window index it is for. Unknown versions, truncations,
// and implausible counts are descriptive hard errors.
func DecodeSummary(data []byte) (int, *core.ShardSummary, error) {
	d := wire.NewDecoder(data)
	version := d.U16()
	if d.Err() != nil {
		return 0, nil, fmt.Errorf("dist: summary truncated before its version field")
	}
	if version != SummaryVersion {
		return 0, nil, fmt.Errorf("dist: summary format version %d is not supported by this build (understands up to %d) — refusing to guess at its layout",
			version, SummaryVersion)
	}
	index := int(d.I64())
	s := &core.ShardSummary{
		Shard:  int(d.U32()),
		Shards: int(d.U32()),
	}
	s.Window.From = d.Time()
	s.Window.To = d.Time()
	s.Partial = d.Bool()
	s.HasContacts = d.Bool()
	n := d.Count(minHostSummary)
	if d.Err() == nil && n > 0 {
		s.Hosts = make([]core.HostSummary, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		h := &s.Hosts[i]
		h.Host = flow.IP(d.U32())
		h.Flows = int(d.I64())
		h.SuccessfulFlows = int(d.I64())
		h.FailedFlows = int(d.I64())
		h.BytesUploaded = d.U64()
		h.Peers = int(d.I64())
		h.NewPeers = int(d.I64())
		h.FirstSeen = d.Time()
		h.LastSeen = d.Time()
		h.InterstitialCount = int(d.I64())
		if bins := d.Count(16); bins > 0 {
			h.SketchPositions = make([]float64, bins)
			h.SketchWeights = make([]float64, bins)
			for j := 0; j < bins; j++ {
				h.SketchPositions[j] = d.F64()
				h.SketchWeights[j] = d.F64()
			}
		}
		if nc := d.Count(4); nc > 0 {
			h.Contacts = make([]flow.IP, nc)
			for j := range h.Contacts {
				h.Contacts[j] = flow.IP(d.U32())
			}
		}
	}
	if err := d.Err(); err != nil {
		return 0, nil, fmt.Errorf("dist: malformed summary frame: %w", err)
	}
	if d.Remaining() != 0 {
		return 0, nil, fmt.Errorf("dist: summary frame carries %d undecoded trailing bytes", d.Remaining())
	}
	return index, s, nil
}

// seqPayload prefixes a frame body with its per-shard sequence number.
func seqPayload(seq uint64, body []byte) []byte {
	var e wire.Encoder
	e.U64(seq)
	e.Raw(body)
	return e.Bytes()
}

func encodeWatermark(t time.Time) []byte {
	var e wire.Encoder
	e.Time(t)
	return e.Bytes()
}

func decodeWatermark(data []byte) (time.Time, error) {
	d := wire.NewDecoder(data)
	t := d.Time()
	if err := d.Err(); err != nil {
		return time.Time{}, fmt.Errorf("dist: malformed watermark frame: %w", err)
	}
	if d.Remaining() != 0 {
		return time.Time{}, fmt.Errorf("dist: watermark frame carries %d undecoded trailing bytes", d.Remaining())
	}
	return t, nil
}
