package dist

import (
	"fmt"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/flow"
)

// benchSummary builds a shard summary of n hosts shaped like real
// traffic: every host carries the scalar feature vector and a contact
// set, and the θ_hm candidates (about a third) carry a 40-bin sketch.
func benchSummary(n int) *core.ShardSummary {
	sum := &core.ShardSummary{
		Shard:       0,
		Shards:      1,
		Window:      flow.Window{From: time.Unix(0, 0).UTC(), To: time.Unix(3600, 0).UTC()},
		HasContacts: true,
		Hosts:       make([]core.HostSummary, n),
	}
	for i := range sum.Hosts {
		h := &sum.Hosts[i]
		h.Host = flow.IP(0x0a000000 + uint32(i))
		h.Flows = 100 + i
		h.SuccessfulFlows = 90 + i
		h.FailedFlows = 10
		h.BytesUploaded = uint64(1000 * (i + 1))
		h.Peers = 20
		h.NewPeers = 5
		h.FirstSeen = time.Unix(int64(i), 0).UTC()
		h.LastSeen = time.Unix(int64(3000+i), 0).UTC()
		h.InterstitialCount = 200
		if i%3 == 0 {
			h.SketchPositions = make([]float64, 40)
			h.SketchWeights = make([]float64, 40)
			for j := range h.SketchPositions {
				h.SketchPositions[j] = float64(j) * 0.25
				h.SketchWeights[j] = float64(1 + (i+j)%7)
			}
		}
		h.Contacts = make([]flow.IP, 15)
		for j := range h.Contacts {
			h.Contacts[j] = flow.IP(0x08000000 + uint32(i*15+j))
		}
	}
	return sum
}

// BenchmarkShardSummaryEncode measures the wire cost of the frames that
// cross the shard→coordinator link once per window: the encode side is
// on every worker's seal path, the decode side on the coordinator's
// ingest path.
func BenchmarkShardSummaryEncode(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		sum := benchSummary(n)
		payload := EncodeSummary(0, sum)
		b.Run(fmt.Sprintf("hosts=%d", n), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			b.ReportMetric(float64(len(payload))/float64(n), "bytes/host")
			for i := 0; i < b.N; i++ {
				if p := EncodeSummary(0, sum); len(p) != len(payload) {
					b.Fatalf("encode drifted: %d bytes, want %d", len(p), len(payload))
				}
			}
		})
		b.Run(fmt.Sprintf("hosts=%d-decode", n), func(b *testing.B) {
			b.SetBytes(int64(len(payload)))
			for i := 0; i < b.N; i++ {
				if _, _, err := DecodeSummary(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
