package dist

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"plotters/internal/engine"
	"plotters/internal/metrics"
	"plotters/internal/wire"
)

// CoordinatorConfig shapes a Coordinator — the process that accepts
// shard connections, assembles their per-window summaries, and runs the
// global detection phase.
type CoordinatorConfig struct {
	// Shards is the deployment's total shard count. Every shard from 0
	// to Shards-1 must eventually connect for windows to seal without a
	// timeout. Required.
	Shards int
	// Engine is the window geometry and detection configuration every
	// shard must match (the hello handshake compares fingerprints).
	// Engine.Detectors configures the global phase exactly as
	// engine.DistConfig does; Engine.Internal/Shards/StateDir/DropLate
	// are shard-side concerns and ignored here.
	Engine engine.Config
	// WindowTimeout, when positive, force-seals a window that has been
	// waiting on missing shards for this long since its first summary
	// arrived. The result carries an explicit Partial mark. Zero means
	// wait forever (the deterministic-test and batch-replay mode).
	WindowTimeout time.Duration
}

// Coordinator is the global-phase endpoint of a distributed deployment.
// It speaks the shard protocol on any number of connections (one per
// shard, re-established at will), feeds an engine.DistributedDetector,
// and acks frames so workers can trim their resend buffers.
type Coordinator struct {
	cfg CoordinatorConfig
	det *engine.DistributedDetector
	fp  Fingerprint
	reg *metrics.Registry

	mu       sync.Mutex
	seqs     []shardSeq
	conns    map[int]net.Conn // latest live connection per shard
	arrivals map[int]time.Time
	closed   bool

	lnMu sync.Mutex
	ln   net.Listener
	wg   sync.WaitGroup

	stopTimeout chan struct{}
}

// shardSeq is the per-shard sequence accounting, the collector's
// NetFlow discipline applied to summary streams: a forward jump is a
// gap (frames lost in transit), a backward jump is a resend after
// reconnect — counted, deduplicated downstream, never fatal.
type shardSeq struct {
	seen     bool
	next     uint64 // next expected sequence number
	gaps     uint64 // forward jumps observed
	lost     uint64 // frames skipped by those jumps
	dups     uint64 // frames at or behind an already-processed sequence
	connects uint64 // hello handshakes accepted
}

// ShardSeq reports one shard's transport accounting.
type ShardSeq struct {
	Shard    int
	Seen     bool
	Gaps     uint64
	Lost     uint64
	Dups     uint64
	Connects uint64
}

// NewCoordinator creates a coordinator. emit receives every completed
// window's result in ascending window order, called from whichever
// connection goroutine completed the window.
func NewCoordinator(cfg CoordinatorConfig, emit func(*engine.Result) error) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dist: coordinator Shards = %d must be >= 1", cfg.Shards)
	}
	if err := cfg.Engine.Validate(); err != nil {
		return nil, err
	}
	det, err := engine.NewDistributed(engine.DistConfig{
		Shards:    cfg.Shards,
		Core:      cfg.Engine.Core,
		Detectors: cfg.Engine.Detectors,
	}, emit)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:         cfg,
		det:         det,
		fp:          FingerprintOf(cfg.Engine, cfg.Shards),
		reg:         cfg.Engine.Core.Metrics,
		seqs:        make([]shardSeq, cfg.Shards),
		conns:       make(map[int]net.Conn),
		arrivals:    make(map[int]time.Time),
		stopTimeout: make(chan struct{}),
	}
	if cfg.WindowTimeout > 0 {
		c.wg.Add(1)
		go c.timeoutLoop()
	}
	return c, nil
}

// Detector exposes the underlying window assembler (window counts,
// pending state).
func (c *Coordinator) Detector() *engine.DistributedDetector { return c.det }

// ShardSeqs reports the per-shard transport accounting.
func (c *Coordinator) ShardSeqs() []ShardSeq {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShardSeq, len(c.seqs))
	for i := range c.seqs {
		s := &c.seqs[i]
		out[i] = ShardSeq{Shard: i, Seen: s.seen, Gaps: s.gaps, Lost: s.lost, Dups: s.dups, Connects: s.connects}
	}
	return out
}

// Listen binds addr and starts accepting shard connections in the
// background, returning the bound address (useful with ":0").
func (c *Coordinator) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator listen: %w", err)
	}
	c.lnMu.Lock()
	c.ln = ln
	c.lnMu.Unlock()
	c.wg.Add(1)
	go c.acceptLoop(ln)
	return ln.Addr(), nil
}

func (c *Coordinator) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := c.ServeConn(conn); err != nil {
				c.reg.Counter("dist/conn_errors").Add(1)
			}
		}()
	}
}

// ServeConn speaks the shard protocol on one established connection
// until it closes, exported so tests and alternative transports
// (net.Pipe, the in-process simnet) can drive the coordinator without a
// TCP listener. A clean peer close returns nil; protocol violations —
// wrong version, mismatched fingerprint, malformed frames — return the
// descriptive error after closing the connection.
func (c *Coordinator) ServeConn(conn net.Conn) error {
	defer conn.Close()

	id, payload, err := wire.ReadFrame(conn, maxFramePayload)
	if err != nil {
		return fmt.Errorf("dist: coordinator: reading hello: %w", err)
	}
	if id != frameHello {
		return fmt.Errorf("dist: coordinator: connection opened with frame type %d, want hello (%d)", id, frameHello)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if h.Shard < 0 || h.Shard >= c.cfg.Shards {
		return fmt.Errorf("dist: coordinator: hello claims shard %d but this deployment runs shards [0,%d)", h.Shard, c.cfg.Shards)
	}
	if err := h.FP.Check(c.fp); err != nil {
		return err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("dist: coordinator is closed")
	}
	if old := c.conns[h.Shard]; old != nil && old != conn {
		old.Close() // the reconnecting worker's stale connection
	}
	c.conns[h.Shard] = conn
	c.seqs[h.Shard].seen = true
	c.seqs[h.Shard].connects++
	c.mu.Unlock()
	c.reg.Counter("dist/connects").Add(1)

	defer func() {
		c.mu.Lock()
		if c.conns[h.Shard] == conn {
			delete(c.conns, h.Shard)
		}
		c.mu.Unlock()
	}()

	for {
		id, payload, err := wire.ReadFrame(conn, maxFramePayload)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			if c.isClosed() || !c.isCurrent(h.Shard, conn) {
				return nil // shut down, or replaced by a reconnect
			}
			return fmt.Errorf("dist: coordinator: shard %d: %w", h.Shard, err)
		}
		if err := c.handleFrame(h.Shard, conn, id, payload); err != nil {
			return err
		}
	}
}

func (c *Coordinator) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *Coordinator) isCurrent(shard int, conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conns[shard] == conn
}

// handleFrame processes one sequenced frame from an authenticated
// shard connection and acks it.
func (c *Coordinator) handleFrame(shard int, conn net.Conn, id uint16, payload []byte) error {
	d := wire.NewDecoder(payload)
	seq := d.U64()
	if err := d.Err(); err != nil {
		return fmt.Errorf("dist: coordinator: shard %d: frame %d truncated before its sequence number", shard, id)
	}
	body := d.Rest()

	c.account(shard, seq)
	c.reg.Counter("dist/frames").Add(1)

	switch id {
	case frameSummary:
		index, sum, err := DecodeSummary(body)
		if err != nil {
			return fmt.Errorf("dist: coordinator: shard %d seq %d: %w", shard, seq, err)
		}
		c.noteArrival(index)
		fresh, err := c.det.Offer(shard, index, sum)
		if err != nil {
			return fmt.Errorf("dist: coordinator: shard %d seq %d: %w", shard, seq, err)
		}
		if fresh {
			c.reg.Counter("dist/summaries").Add(1)
		} else {
			c.reg.Counter("dist/summaries/dup").Add(1)
		}
	case frameWatermark:
		t, err := decodeWatermark(body)
		if err != nil {
			return fmt.Errorf("dist: coordinator: shard %d seq %d: %w", shard, seq, err)
		}
		if err := c.det.Watermark(shard, t); err != nil {
			return fmt.Errorf("dist: coordinator: shard %d seq %d: %w", shard, seq, err)
		}
		c.reg.Counter("dist/watermarks").Add(1)
	default:
		return fmt.Errorf("dist: coordinator: shard %d sent unknown frame type %d — refusing to guess at its meaning", shard, id)
	}
	c.pruneArrivals()

	var e wire.Encoder
	e.U64(seq)
	if err := wire.WriteFrame(conn, frameAck, e.Bytes()); err != nil {
		// The worker will resend after reconnecting; losing an ack is
		// the dup-accounting path, not a failure.
		c.reg.Counter("dist/ack_errors").Add(1)
	}
	return nil
}

// account applies the collector's sequence discipline to one frame.
func (c *Coordinator) account(shard int, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &c.seqs[shard]
	switch {
	case seq > s.next:
		s.gaps++
		s.lost += seq - s.next
		c.reg.Counter("dist/gaps").Add(1)
		c.reg.Counter("dist/lost_frames").Add(int64(seq - s.next))
		s.next = seq + 1
	case seq < s.next:
		s.dups++ // resend after reconnect; Offer dedups downstream
		c.reg.Counter("dist/dup_frames").Add(1)
	default:
		s.next = seq + 1
	}
}

// noteArrival records when a window's first summary arrived, the clock
// the WindowTimeout force-seal runs against.
func (c *Coordinator) noteArrival(index int) {
	if c.cfg.WindowTimeout <= 0 {
		return
	}
	c.mu.Lock()
	if _, ok := c.arrivals[index]; !ok {
		c.arrivals[index] = time.Now()
	}
	c.mu.Unlock()
}

// pruneArrivals drops timeout bookkeeping for windows that sealed.
func (c *Coordinator) pruneArrivals() {
	if c.cfg.WindowTimeout <= 0 {
		return
	}
	sealed := c.det.MaxSealed()
	c.mu.Lock()
	for idx := range c.arrivals {
		if idx <= sealed {
			delete(c.arrivals, idx)
		}
	}
	c.mu.Unlock()
}

func (c *Coordinator) timeoutLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.WindowTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stopTimeout:
			return
		case <-tick.C:
		}
		deadline := time.Now().Add(-c.cfg.WindowTimeout)
		seal := -1
		c.mu.Lock()
		for idx, at := range c.arrivals {
			if at.Before(deadline) && idx > seal {
				seal = idx
			}
		}
		c.mu.Unlock()
		if seal < 0 {
			continue
		}
		c.reg.Counter("dist/timeout_seals").Add(1)
		if err := c.det.SealWindow(seal); err != nil {
			c.reg.Counter("dist/seal_errors").Add(1)
		}
		c.pruneArrivals()
	}
}

// Flush force-seals every pending window (the shutdown path after all
// shards have drained their feeds).
func (c *Coordinator) Flush() error { return c.det.Flush() }

// Close stops the listener, the timeout loop, and every live shard
// connection, and waits for their goroutines. Pending windows are left
// unsealed; call Flush first to force-emit them.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]net.Conn, 0, len(c.conns))
	for _, conn := range c.conns {
		conns = append(conns, conn)
	}
	c.mu.Unlock()

	if c.cfg.WindowTimeout > 0 {
		close(c.stopTimeout)
	}
	c.lnMu.Lock()
	if c.ln != nil {
		c.ln.Close()
	}
	c.lnMu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
	return nil
}
