package dist

import (
	"fmt"
	"net"
	"sync"
	"time"

	"plotters/internal/core"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/metrics"
	"plotters/internal/wire"
)

// WorkerConfig shapes a ShardWorker — the shard-side process that
// ingests its host-hash slice of the record stream, runs the local
// phase per window, and ships summaries to the coordinator.
type WorkerConfig struct {
	// Shard and Shards name this worker's host-hash slice.
	Shard  int
	Shards int
	// Engine is the window geometry and detection configuration, which
	// must match the coordinator's (the hello handshake enforces it).
	// Engine.Origin must be set: shard and coordinator window indices
	// align only against a shared explicit origin, never a first-record
	// time one shard observes and another does not. Engine.Detectors is
	// ignored — a shard runs exactly the local phase.
	Engine engine.Config
	// Dial establishes a connection to the coordinator. Required; the
	// TCP deployment uses net.Dial, tests use net.Pipe.
	Dial func() (net.Conn, error)
	// RedialWait paces reconnection attempts after a broken connection
	// (default 50ms).
	RedialWait time.Duration
	// MaxDials bounds consecutive failed connection attempts before the
	// worker gives up with the last dial error (default 20; the simnet
	// kill tests rely on retrying through a coordinator restart).
	MaxDials int
}

// ShardWorker runs the shard-local phase continuously and streams the
// results to the coordinator with at-least-once delivery: every frame
// carries a sequence number, unacknowledged frames live in an outbox,
// and a reconnect replays the outbox (the coordinator deduplicates).
// Feed it like a WindowedDetector: Add records, AdvanceTo punctuation,
// Flush at end of feed; then Drain to wait out acknowledgement.
//
// Not safe for concurrent use by multiple feeders (like the engine it
// wraps); the connection machinery underneath is internally locked.
type ShardWorker struct {
	cfg WorkerConfig
	eng *engine.WindowedDetector
	fp  Fingerprint
	reg *metrics.Registry

	// mu guards the queue/connection state and is never held across a
	// blocking transport write — the ack reader needs it to trim the
	// outbox, and on an unbuffered transport (net.Pipe in tests) a
	// writer holding it while blocked would deadlock against the
	// coordinator's ack. sendMu serializes whole delivery attempts.
	mu        sync.Mutex
	outbox    []outFrame
	nextSeq   uint64
	acked     uint64 // sequence numbers < acked are acknowledged
	conn      net.Conn
	sent      uint64 // sequence numbers < sent are written to conn
	connected bool   // a hello has ever been accepted by a transport write
	closed    bool

	sendMu sync.Mutex
}

type outFrame struct {
	seq     uint64
	typ     uint16
	payload []byte // body without the sequence prefix
}

// NewShardWorker creates a worker. It does not dial until the first
// frame needs sending.
func NewShardWorker(cfg WorkerConfig) (*ShardWorker, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("dist: worker Shards = %d must be >= 1", cfg.Shards)
	}
	if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
		return nil, fmt.Errorf("dist: worker shard %d outside [0,%d)", cfg.Shard, cfg.Shards)
	}
	if cfg.Dial == nil {
		return nil, fmt.Errorf("dist: worker needs a Dial function")
	}
	if cfg.Engine.Origin.IsZero() {
		return nil, fmt.Errorf("dist: worker needs an explicit Engine.Origin — shard and coordinator window indices align only against a shared origin")
	}
	if cfg.RedialWait <= 0 {
		cfg.RedialWait = 50 * time.Millisecond
	}
	if cfg.MaxDials <= 0 {
		cfg.MaxDials = 20
	}

	w := &ShardWorker{cfg: cfg, reg: cfg.Engine.Core.Metrics}

	// The shard's engine runs the local phase only, over the worker's
	// hash slice of the monitored population.
	ecfg := cfg.Engine
	inner := ecfg.Internal
	ecfg.Internal = func(ip flow.IP) bool {
		if inner != nil && !inner(ip) {
			return false
		}
		return flow.ShardOf(ip, cfg.Shards) == cfg.Shard
	}
	ld, err := core.NewLocalDetector(ecfg.Core, cfg.Shard, cfg.Shards)
	if err != nil {
		return nil, err
	}
	ecfg.Detectors = []core.Detector{ld}
	eng, err := engine.New(ecfg, w.emitWindow)
	if err != nil {
		return nil, err
	}
	w.eng = eng
	w.fp = FingerprintOf(cfg.Engine, cfg.Shards)
	return w, nil
}

// Engine exposes the underlying windowed detector (window counts, the
// feature store, checkpoint integration).
func (w *ShardWorker) Engine() *engine.WindowedDetector { return w.eng }

// emitWindow receives each sealed window's local-phase result from the
// engine and enqueues its summary for the coordinator.
func (w *ShardWorker) emitWindow(res *engine.Result) error {
	sum, ok := res.Detections[0].Details.(*core.ShardSummary)
	if !ok {
		return fmt.Errorf("dist: worker window %d carries no shard summary", res.Index)
	}
	sum.Partial = sum.Partial || res.Partial
	return w.send(frameSummary, EncodeSummary(res.Index, sum))
}

// Add folds one record into the open window. Records for hosts outside
// this worker's shard are filtered by the engine's host predicate, so a
// feed may be broadcast to every worker unrouted.
func (w *ShardWorker) Add(r *flow.Record) error { return w.eng.Add(r) }

// AdvanceTo declares no record before t will arrive, sealing complete
// windows and forwarding the punctuation to the coordinator so it can
// seal windows this shard observed no traffic in.
func (w *ShardWorker) AdvanceTo(t time.Time) error {
	if err := w.eng.AdvanceTo(t); err != nil {
		return err
	}
	return w.send(frameWatermark, encodeWatermark(t))
}

// Flush seals the open partial window at end of feed. The resulting
// summary carries the Partial mark; no watermark is sent — the
// coordinator's owner decides when to force-seal (Coordinator.Flush).
func (w *ShardWorker) Flush() error { return w.eng.Flush() }

// Drain blocks until the coordinator has acknowledged every outstanding
// frame, or the timeout elapses. Call after Flush, before exiting.
func (w *ShardWorker) Drain(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		w.mu.Lock()
		n := len(w.outbox)
		w.mu.Unlock()
		if n == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: worker shard %d: %d frames still unacknowledged after %v", w.cfg.Shard, n, timeout)
		}
		// Nudge delivery: the outbox drains via acks on the reader
		// goroutine, but a broken connection needs a redial.
		if err := w.flushOutbox(); err != nil {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Outstanding returns how many sent-but-unacknowledged frames the
// worker holds.
func (w *ShardWorker) Outstanding() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.outbox)
}

// DropConnection severs the current coordinator connection, if any —
// the fault-injection hook the reconnect tests use. The next frame (or
// Drain) redials and resends the outbox.
func (w *ShardWorker) DropConnection() {
	w.mu.Lock()
	conn := w.conn
	w.conn = nil
	w.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Close severs the connection and stops the worker. Un-acked frames are
// abandoned; call Flush + Drain first for a clean shutdown.
func (w *ShardWorker) Close() error {
	w.mu.Lock()
	w.closed = true
	conn := w.conn
	w.conn = nil
	w.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	return nil
}

// send enqueues one frame and attempts delivery.
func (w *ShardWorker) send(typ uint16, payload []byte) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return fmt.Errorf("dist: worker shard %d is closed", w.cfg.Shard)
	}
	seq := w.nextSeq
	w.nextSeq++
	w.outbox = append(w.outbox, outFrame{seq: seq, typ: typ, payload: payload})
	w.mu.Unlock()
	return w.flushOutbox()
}

// flushOutbox writes every not-yet-sent outbox frame to the current
// connection, dialing (and replaying the whole outbox) if none is live.
// A write failure marks the connection dead and returns nil — the next
// call redials and the frames are still in the outbox; delivery is
// eventually consistent, not per-call guaranteed.
func (w *ShardWorker) flushOutbox() error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return fmt.Errorf("dist: worker shard %d is closed", w.cfg.Shard)
		}
		if w.conn == nil {
			if err := w.connectLocked(); err != nil {
				w.mu.Unlock()
				return err
			}
		}
		conn := w.conn
		var batch []outFrame
		for _, f := range w.outbox {
			if f.seq >= w.sent {
				batch = append(batch, f)
			}
		}
		w.mu.Unlock()
		if len(batch) == 0 {
			return nil
		}
		for _, f := range batch {
			if err := wire.WriteFrame(conn, f.typ, seqPayload(f.seq, f.payload)); err != nil {
				w.reg.Counter("dist/worker/write_errors").Add(1)
				conn.Close()
				w.mu.Lock()
				if w.conn == conn {
					w.conn = nil
				}
				w.mu.Unlock()
				return nil // frames stay queued; next call redials
			}
			w.reg.Counter("dist/worker/frames").Add(1)
			w.mu.Lock()
			if w.conn == conn && f.seq >= w.sent {
				w.sent = f.seq + 1
			}
			w.mu.Unlock()
		}
		// Loop: the connection may have dropped mid-batch, or new frames
		// may have been enqueued; retry until nothing is left to send.
	}
}

// connectLocked dials the coordinator, sends the hello, and starts the
// ack reader. Called with mu held; retries up to MaxDials times.
func (w *ShardWorker) connectLocked() error {
	var lastErr error
	for attempt := 0; attempt < w.cfg.MaxDials; attempt++ {
		if attempt > 0 {
			// Sleep without blocking Close/DropConnection callers.
			w.mu.Unlock()
			time.Sleep(w.cfg.RedialWait)
			w.mu.Lock()
			if w.closed {
				return fmt.Errorf("dist: worker shard %d is closed", w.cfg.Shard)
			}
		}
		conn, err := w.cfg.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		hb := encodeHello(hello{
			Version: WireVersion,
			Shard:   w.cfg.Shard,
			Resume:  w.acked,
			FP:      w.fp,
		})
		if err := wire.WriteFrame(conn, frameHello, hb); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		w.conn = conn
		w.sent = w.acked // replay everything unacknowledged
		w.reg.Counter("dist/worker/connects").Add(1)
		if w.connected {
			w.reg.Counter("dist/worker/reconnects").Add(1)
		}
		w.connected = true
		go w.readAcks(conn)
		return nil
	}
	return fmt.Errorf("dist: worker shard %d: coordinator unreachable after %d attempts: %w", w.cfg.Shard, w.cfg.MaxDials, lastErr)
}

// readAcks consumes coordinator acks on one connection, trimming the
// outbox, until the connection breaks.
func (w *ShardWorker) readAcks(conn net.Conn) {
	for {
		id, payload, err := wire.ReadFrame(conn, 1<<16)
		if err != nil {
			w.mu.Lock()
			if w.conn == conn {
				w.conn = nil
			}
			w.mu.Unlock()
			return
		}
		if id != frameAck {
			continue // future coordinator→worker frames: ignore unknown
		}
		d := wire.NewDecoder(payload)
		seq := d.U64()
		if d.Err() != nil {
			continue
		}
		w.mu.Lock()
		if seq >= w.acked {
			w.acked = seq + 1
			trim := 0
			for trim < len(w.outbox) && w.outbox[trim].seq < w.acked {
				trim++
			}
			w.outbox = w.outbox[trim:]
		}
		w.mu.Unlock()
	}
}
