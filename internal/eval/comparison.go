package eval

import (
	"plotters/internal/baseline"
	"plotters/internal/core"
	"plotters/internal/synth"
)

// DetectorOutcome scores one detector on the overlaid corpus, split by
// ground-truth class so the Trader/Plotter separation (or lack of it) is
// visible.
type DetectorOutcome struct {
	Name string
	// StormTPR / NugacheTPR: detected fraction of bot-carrying hosts.
	StormTPR   float64
	NugacheTPR float64
	// TraderRate: fraction of ground-truth Traders flagged. For a
	// botnet detector this is a false-positive rate; for a generic P2P
	// identifier it is expected to be high — which is precisely the
	// paper's point.
	TraderRate float64
	// CampusRate: fraction of plain background hosts flagged.
	CampusRate float64
}

// CompareBaselines runs FindPlotters and the §II baseline detectors over
// every overlaid day and tabulates per-class detection rates. It
// reproduces the paper's motivating argument: generic P2P identifiers
// flag Traders and Plotters alike, persistence-based C&C detection
// misses P2P bots, and only FindPlotters separates the two populations.
func (s *Suite) CompareBaselines() ([]DetectorOutcome, error) {
	type counts struct {
		storm, nugache, trader, campus     int
		stormN, nugacheN, traderN, campusN int
	}
	tally := map[string]*counts{}
	names := []string{"findplotters", "tdg", "persistence", "failedconn"}
	for _, n := range names {
		tally[n] = &counts{}
	}

	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		flagged := make(map[string]core.HostSet, len(names))

		res, err := de.Detect()
		if err != nil {
			return nil, err
		}
		flagged["findplotters"] = res.Suspects

		tdg, err := baseline.TDG(de.Records, synth.IsInternal, baseline.DefaultTDGConfig())
		if err != nil {
			return nil, err
		}
		flagged["tdg"] = core.HostSet(tdg.P2PHosts)

		pers, err := baseline.Persistence(de.Records, de.Day.Window, synth.IsInternal, baseline.DefaultPersistenceConfig())
		if err != nil {
			return nil, err
		}
		flagged["persistence"] = core.HostSet(pers.Flagged)

		failed, err := baseline.FailedConn(de.Records, synth.IsInternal, baseline.DefaultFailedConnConfig())
		if err != nil {
			return nil, err
		}
		flagged["failedconn"] = core.HostSet(failed)

		for _, name := range names {
			set := flagged[name]
			c := tally[name]
			for h := range de.Analysis.Hosts() {
				hit := set[h]
				switch de.classOf(h) {
				case classStorm:
					c.stormN++
					if hit {
						c.storm++
					}
				case classNugache:
					c.nugacheN++
					if hit {
						c.nugache++
					}
				case classTrader:
					c.traderN++
					if hit {
						c.trader++
					}
				default:
					c.campusN++
					if hit {
						c.campus++
					}
				}
			}
		}
	}

	rate := func(hit, n int) float64 {
		if n == 0 {
			return 0
		}
		return float64(hit) / float64(n)
	}
	out := make([]DetectorOutcome, 0, len(names))
	for _, name := range names {
		c := tally[name]
		out = append(out, DetectorOutcome{
			Name:       name,
			StormTPR:   rate(c.storm, c.stormN),
			NugacheTPR: rate(c.nugache, c.nugacheN),
			TraderRate: rate(c.trader, c.traderN),
			CampusRate: rate(c.campus, c.campusN),
		})
	}
	return out, nil
}
