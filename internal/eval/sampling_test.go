package eval

import (
	"testing"
)

func TestSamplingSweep(t *testing.T) {
	_, suite := corpus(t)
	points, err := suite.SamplingSweep([]uint64{1, 4, 16}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}

	// The N=1 row must be the unsampled pipeline verbatim: same records,
	// same rates as scoring the cached detection directly.
	base := points[0]
	if base.Records != base.TotalRecords {
		t.Errorf("unsampled row dropped records: %d of %d", base.Records, base.TotalRecords)
	}
	var want Rates
	for i := 0; i < suite.Days(); i++ {
		de, err := suite.Day(i)
		if err != nil {
			t.Fatal(err)
		}
		res, err := de.Detect()
		if err != nil {
			t.Fatal(err)
		}
		want.Add(Score(res.Suspects, de.Analysis.Hosts(), de.Plotters()))
	}
	if base.Overall != want {
		t.Errorf("unsampled sweep row = %+v, want cached detection %+v", base.Overall, want)
	}

	// Sampled rows: the measured kept fraction tracks 1/N (binomial
	// bounds, wide), denominators stay pinned to the full-rate host set,
	// and the whole sweep is a pure function of (rates, seed).
	for _, p := range points[1:] {
		nominal := 1 / float64(p.N)
		if f := p.KeptFraction(); f < nominal/2 || f > nominal*2 {
			t.Errorf("1-in-%d kept fraction = %.4f, want within [%.4f, %.4f]", p.N, f, nominal/2, nominal*2)
		}
		if p.Records >= p.TotalRecords {
			t.Errorf("1-in-%d dropped nothing (%d of %d)", p.N, p.Records, p.TotalRecords)
		}
		if p.Overall.Plotters != base.Overall.Plotters || p.Overall.Others != base.Overall.Others {
			t.Errorf("1-in-%d denominators (%d plotters, %d others) drifted from baseline (%d, %d)",
				p.N, p.Overall.Plotters, p.Overall.Others, base.Overall.Plotters, base.Overall.Others)
		}
	}

	again, err := suite.SamplingSweep([]uint64{1, 4, 16}, 99)
	if err != nil {
		t.Fatal(err)
	}
	for j := range points {
		if points[j] != again[j] {
			t.Errorf("sweep not deterministic at rate %d: %+v vs %+v", points[j].N, points[j], again[j])
		}
	}
}
