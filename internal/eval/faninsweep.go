package eval

import (
	"fmt"

	"plotters/internal/community"
	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/synth"
)

// FanInPoint is one operating point of the community-graph sweep: the
// edge threshold and popularity cap it ran with, the resulting graph
// size, and the detection rates accumulated across every suite day.
type FanInPoint struct {
	// MinSharedContacts and MaxFanIn are the GraphConfig knobs swept.
	MinSharedContacts int
	MaxFanIn          int
	// Edges totals the mutual-contact edges built across all days — the
	// cost side of the operating point (pair counting is quadratic in
	// per-destination fan-in).
	Edges int
	// Rates scores the flagged hosts against the bot-carrying ground
	// truth, accumulated across days.
	Rates Rates
}

// FanInSweep runs the community detector over every suite day at each
// point of a MinSharedContacts × MaxFanIn grid and scores it against the
// bot-carrying ground truth, yielding the ROC surface behind the
// detector's two structural knobs: MinSharedContacts trades recall for
// precision (a higher bar keeps only strongly-overlapping pairs), while
// MaxFanIn bounds both the popular-service noise and the pair-counting
// cost. The base config supplies every other knob (community size and
// density thresholds, IDF weighting); contact sets are extracted once
// per day and shared across all grid points.
func (s *Suite) FanInSweep(base community.Config, minShared, maxFanIn []int) ([]FanInPoint, error) {
	if len(minShared) == 0 || len(maxFanIn) == 0 {
		return nil, fmt.Errorf("eval: fan-in sweep needs at least one value per axis")
	}
	points := make([]FanInPoint, 0, len(minShared)*len(maxFanIn))
	for _, ms := range minShared {
		for _, mf := range maxFanIn {
			points = append(points, FanInPoint{MinSharedContacts: ms, MaxFanIn: mf})
		}
	}
	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		contacts := de.contactSets(s.cfg)
		input := de.Analysis.Hosts()
		truth := de.Plotters()
		for p := range points {
			cfg := base
			cfg.Graph.MinSharedContacts = points[p].MinSharedContacts
			cfg.Graph.MaxFanIn = points[p].MaxFanIn
			det, err := community.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("eval: fan-in sweep point (%d,%d): %w",
					points[p].MinSharedContacts, points[p].MaxFanIn, err)
			}
			dn, err := det.Detect(flow.NewFeatureSet(nil, de.Analysis.Window()).WithContacts(contacts))
			if err != nil {
				return nil, fmt.Errorf("eval: fan-in sweep day %d point (%d,%d): %w",
					i, points[p].MinSharedContacts, points[p].MaxFanIn, err)
			}
			if rep, ok := dn.Details.(*community.Report); ok {
				points[p].Edges += rep.GraphEdges
			}
			points[p].Rates.Add(Score(dn.Suspects, input, truth))
		}
	}
	return points, nil
}

// contactSets returns the day's per-host contacted-destination sets,
// extracting (and caching) the feature set when the day was built by a
// path that did not retain one.
func (d *DayEval) contactSets(cfg core.Config) map[flow.IP][]flow.IP {
	if d.source == nil {
		d.source = flow.ExtractFeatureSet(d.Records, flow.FeatureOptions{
			Hosts:        synth.IsInternal,
			NewPeerGrace: cfg.NewPeerGrace,
		}, flow.Window{})
	}
	return d.source.Contacts()
}
