package eval

import (
	"fmt"
	"math"
	"time"

	"plotters/internal/flow"
	"plotters/internal/histogram"
	"plotters/internal/label"
	"plotters/internal/stats"
	"plotters/internal/synth"
)

// This file regenerates the paper's dataset-characterization figures
// (Figures 1, 2, 3, and 5): per-host feature CDFs and example
// interstitial-time distributions, computed from one day of the
// synthesized corpus exactly as the paper computes them from one day of
// the CMU, Trader, and honeynet traces.

// DatasetCDFs holds one per-host feature CDF per dataset, the shape of
// Figures 1 and 5.
type DatasetCDFs struct {
	// CMU is the campus dataset *excluding* labeled Traders.
	CMU []stats.CDFPoint
	// Trader covers the payload-labeled file-sharing hosts.
	Trader []stats.CDFPoint
	// Storm and Nugache cover the raw honeynet traces (per bot), before
	// overlay, as in the paper's Figures 1 and 5.
	Storm   []stats.CDFPoint
	Nugache []stats.CDFPoint
}

// featureCDFs builds the four per-dataset CDFs of one feature.
func (s *Suite) featureCDFs(get func(*flow.HostFeatures) float64, onlySuccessful bool) (*DatasetCDFs, error) {
	day := s.ds.Days[0]
	feats := flow.ExtractFeatures(day.Records, flow.FeatureOptions{
		Hosts:        synth.IsInternal,
		NewPeerGrace: s.cfg.NewPeerGrace,
	})
	traders := label.Traders(day.Records, synth.IsInternal)

	var cmuVals, traderVals []float64
	for host, f := range feats {
		if onlySuccessful && f.SuccessfulFlows == 0 {
			continue
		}
		if traders[host] {
			traderVals = append(traderVals, get(f))
		} else {
			cmuVals = append(cmuVals, get(f))
		}
	}
	botVals := func(records []flow.Record, bots []flow.IP) []float64 {
		feats := s.windowedBotFeatures(records)
		var vals []float64
		// Inbound (peer-initiated) flows put external peers in the
		// feature map; only the bots themselves belong in the CDF.
		for _, bot := range bots {
			f := feats[bot]
			if f == nil || (onlySuccessful && f.SuccessfulFlows == 0) {
				continue
			}
			vals = append(vals, get(f))
		}
		return vals
	}
	out := &DatasetCDFs{}
	for _, part := range []struct {
		dst  *[]stats.CDFPoint
		vals []float64
		name string
	}{
		{&out.CMU, cmuVals, "cmu"},
		{&out.Trader, traderVals, "trader"},
		{&out.Storm, botVals(s.ds.Storm.Records, s.ds.Storm.Bots), "storm"},
		{&out.Nugache, botVals(s.ds.Nugache.Records, s.ds.Nugache.Bots), "nugache"},
	} {
		ecdf, err := stats.NewECDF(part.vals)
		if err != nil {
			return nil, fmt.Errorf("eval: %s CDF: %w", part.name, err)
		}
		*part.dst = ecdf.Sampled(120)
	}
	return out, nil
}

// Figure1 reproduces Figure 1: the cumulative distribution of average
// flow size (bytes uploaded per flow) per host, one curve per dataset.
// The paper's shape: Plotters smallest, campus in the middle, Traders
// orders of magnitude larger.
func (s *Suite) Figure1() (*DatasetCDFs, error) {
	return s.featureCDFs((*flow.HostFeatures).AvgBytesPerFlow, false)
}

// Figure5 reproduces Figure 5: the cumulative distribution of the
// failed-connection percentage per host (hosts with at least one
// successful connection). P2P hosts — Traders and Plotters alike — fail
// far more often than the campus background, which is what the initial
// data-reduction step exploits.
func (s *Suite) Figure5() (*DatasetCDFs, error) {
	return s.featureCDFs(func(f *flow.HostFeatures) float64 { return f.FailedRate() * 100 }, true)
}

// Fig2Series is the Figure 2 data: for one example host, the cumulative
// number of distinct destinations contacted hour by hour, and how many of
// them were new (first contacted after the host's first hour of
// activity).
type Fig2Series struct {
	// Hour is the hour offset within the window (1-based, cumulative).
	Hour []int
	// TotalIPs is the cumulative distinct destination count.
	TotalIPs []int
	// NewIPs is the cumulative count of destinations first contacted
	// after the first hour of activity.
	NewIPs []int
	// NewFraction is NewIPs/TotalIPs per hour.
	NewFraction []float64
}

// Fig2Result pairs the Trader and Storm example series of Figure 2.
type Fig2Result struct {
	Trader Fig2Series
	Storm  Fig2Series
}

// Figure2 reproduces Figure 2: new-IP accumulation for a representative
// Trader versus a representative Storm bot over one day. The paper's
// shape: >55% of the Trader's contacts are new, >60% of the Storm bot's
// contacts were contacted before.
func (s *Suite) Figure2() (*Fig2Result, error) {
	day := s.ds.Days[0]
	traders := label.Traders(day.Records, synth.IsInternal)
	// Representative Trader: the labeled Trader with the most flows.
	feats := flow.ExtractFeatures(day.Records, flow.FeatureOptions{Hosts: synth.IsInternal, NewPeerGrace: s.cfg.NewPeerGrace})
	var trader flow.IP
	bestFlows := -1
	for h := range traders {
		if f := feats[h]; f != nil && f.Flows > bestFlows {
			bestFlows = f.Flows
			trader = h
		}
	}
	if bestFlows < 0 {
		return nil, fmt.Errorf("eval: no labeled Traders on day 0")
	}
	// Representative Storm bot: the first bot in the raw trace.
	if len(s.ds.Storm.Bots) == 0 {
		return nil, fmt.Errorf("eval: storm trace has no bots")
	}
	bot := s.ds.Storm.Bots[0]

	traderSeries := newIPSeries(day.Records, trader, s.cfg.NewPeerGrace)
	window := day.Window
	stormSeries := newIPSeries(window.Filter(s.ds.Storm.Records), bot, s.cfg.NewPeerGrace)
	return &Fig2Result{Trader: traderSeries, Storm: stormSeries}, nil
}

// newIPSeries computes the hourly cumulative contact series for one host.
func newIPSeries(records []flow.Record, host flow.IP, grace time.Duration) Fig2Series {
	ordered := make([]flow.Record, 0, len(records))
	for i := range records {
		if records[i].Src == host {
			ordered = append(ordered, records[i])
		}
	}
	flow.SortByStart(ordered)
	var series Fig2Series
	if len(ordered) == 0 {
		return series
	}
	first := ordered[0].Start
	seen := make(map[flow.IP]bool)
	isNew := make(map[flow.IP]bool)
	idx := 0
	for hour := 1; hour <= 24; hour++ {
		boundary := first.Add(time.Duration(hour) * time.Hour)
		for idx < len(ordered) && ordered[idx].Start.Before(boundary) {
			r := &ordered[idx]
			if !seen[r.Dst] {
				seen[r.Dst] = true
				if r.Start.Sub(first) > grace {
					isNew[r.Dst] = true
				}
			}
			idx++
		}
		series.Hour = append(series.Hour, hour)
		series.TotalIPs = append(series.TotalIPs, len(seen))
		series.NewIPs = append(series.NewIPs, len(isNew))
		frac := 0.0
		if len(seen) > 0 {
			frac = float64(len(isNew)) / float64(len(seen))
		}
		series.NewFraction = append(series.NewFraction, frac)
		if idx >= len(ordered) && hour >= 6 {
			break
		}
	}
	return series
}

// Fig3Host is one panel of Figure 3: the interstitial-time histogram of a
// representative host.
type Fig3Host struct {
	Name string
	// BinSeconds are bin centers in seconds (de-logged when the pipeline
	// uses the log axis).
	BinSeconds []float64
	Mass       []float64
	Samples    int
}

// Figure3 reproduces Figure 3: per-destination flow interstitial time
// distributions for a Storm bot, a Nugache bot, a BitTorrent host, and a
// Gnutella host. Bots show sharp timer spikes; Traders do not.
func (s *Suite) Figure3() ([]Fig3Host, error) {
	day := s.ds.Days[0]
	window := day.Window

	panels := make([]Fig3Host, 0, 4)
	addPanel := func(name string, records []flow.Record, host flow.IP) error {
		feats := flow.ExtractFeatures(records, flow.FeatureOptions{NewPeerGrace: s.cfg.NewPeerGrace})
		f := feats[host]
		if f == nil || len(f.Interstitials) < 2 {
			return fmt.Errorf("eval: host %v has too few interstitial samples for Figure 3", host)
		}
		samples := make([]float64, len(f.Interstitials))
		for i, v := range f.Interstitials {
			samples[i] = math.Log1p(v)
		}
		hist, err := histogram.Build(samples, s.cfg.MaxHistogramBins)
		if err != nil {
			return err
		}
		panel := Fig3Host{Name: name, Samples: len(samples)}
		for i, m := range hist.Mass {
			if m == 0 {
				continue
			}
			panel.BinSeconds = append(panel.BinSeconds, math.Expm1(hist.Center(i)))
			panel.Mass = append(panel.Mass, m)
		}
		panels = append(panels, panel)
		return nil
	}

	if len(s.ds.Storm.Bots) == 0 || len(s.ds.Nugache.Bots) == 0 {
		return nil, fmt.Errorf("eval: missing bot traces")
	}
	if err := addPanel("storm", window.Filter(s.ds.Storm.Records), s.ds.Storm.Bots[0]); err != nil {
		return nil, err
	}
	nugache, err := busiestBot(window.Filter(s.ds.Nugache.Records), s.ds.Nugache.Bots)
	if err != nil {
		return nil, err
	}
	if err := addPanel("nugache", window.Filter(s.ds.Nugache.Records), nugache); err != nil {
		return nil, err
	}
	for _, app := range []struct {
		name string
		want label.App
	}{
		{"bittorrent", label.AppBitTorrent},
		{"gnutella", label.AppGnutella},
	} {
		host, err := busiestTrader(day.Records, app.want)
		if err != nil {
			return nil, err
		}
		if err := addPanel(app.name, day.Records, host); err != nil {
			return nil, err
		}
	}
	return panels, nil
}

// busiestBot returns the bot with the most in-window flows.
func busiestBot(records []flow.Record, bots []flow.IP) (flow.IP, error) {
	counts := make(map[flow.IP]int)
	for i := range records {
		counts[records[i].Src]++
	}
	best, bestCount := flow.IP(0), -1
	for _, b := range bots {
		if counts[b] > bestCount {
			best, bestCount = b, counts[b]
		}
	}
	if bestCount <= 0 {
		return 0, fmt.Errorf("eval: no active bot found")
	}
	return best, nil
}

// busiestTrader returns the most active host labeled with the given app.
func busiestTrader(records []flow.Record, want label.App) (flow.IP, error) {
	labels := label.LabelHosts(records, synth.IsInternal)
	counts := make(map[flow.IP]int)
	for i := range records {
		counts[records[i].Src]++
	}
	best, bestCount := flow.IP(0), -1
	for host, hl := range labels {
		if hl.Primary() != want {
			continue
		}
		if counts[host] > bestCount {
			best, bestCount = host, counts[host]
		}
	}
	if bestCount <= 0 {
		return 0, fmt.Errorf("eval: no %v Trader found", want)
	}
	return best, nil
}

// ReductionStats reports the §V-A data-reduction outcome on one day.
type ReductionStats struct {
	Threshold float64
	Eligible  int
	Kept      StageCounts
}

// ReduceDay runs only the initial reduction on day i (used by tooling).
func (s *Suite) ReduceDay(i int) (*ReductionStats, error) {
	de, err := s.Day(i)
	if err != nil {
		return nil, err
	}
	red, err := de.Analysis.Reduce()
	if err != nil {
		return nil, err
	}
	return &ReductionStats{
		Threshold: red.Threshold,
		Eligible:  red.Eligible,
		Kept:      de.count(red.Kept),
	}, nil
}
