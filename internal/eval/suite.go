package eval

import (
	"fmt"

	"plotters/internal/core"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/overlay"
	"plotters/internal/synth"
	"plotters/internal/synth/scenario"
)

// Suite drives the paper's evaluation over one synthesized dataset. Day
// overlays are cached so several experiments can share them.
//
// Days are streamed through one continuous windowed detection engine:
// the overlaid records of each day feed the engine's sharded feature
// store, the day's collection window seals on punctuation, and the
// emitted window result supplies both the day's Analysis and its cached
// default-configuration detection — features are accumulated once per
// day, never re-extracted per figure.
type Suite struct {
	ds        *scenario.Dataset
	cfg       core.Config
	seed      int64
	days      []*DayEval
	detectors []core.Detector // nil = paper pipeline alone

	eng     *engine.WindowedDetector
	cursor  int            // next day index to stream through the engine
	emitted *engine.Result // last window the engine emitted
}

// NewSuite wraps a dataset. seed controls the overlay host assignments.
func NewSuite(ds *scenario.Dataset, cfg core.Config, seed int64) (*Suite, error) {
	return NewSuiteDetectors(ds, cfg, seed, nil)
}

// NewSuiteDetectors wraps a dataset with an explicit detector list run
// over every day (the multi-detector framework). The list must include
// the paper pipeline (a *core.PaperDetector) — the figures score stage
// compositions only it produces. nil means the paper pipeline alone at
// the suite configuration, the original single-detector suite.
func NewSuiteDetectors(ds *scenario.Dataset, cfg core.Config, seed int64, detectors []core.Detector) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Days) == 0 {
		return nil, fmt.Errorf("eval: dataset has no days")
	}
	if detectors != nil {
		hasPaper := false
		for _, d := range detectors {
			if _, ok := d.(*core.PaperDetector); ok {
				hasPaper = true
				break
			}
		}
		if !hasPaper {
			return nil, fmt.Errorf("eval: detector list must include the paper pipeline (*core.PaperDetector)")
		}
	}
	s := &Suite{ds: ds, cfg: cfg, seed: seed, detectors: detectors, days: make([]*DayEval, len(ds.Days))}
	if alignedDays(ds.Days) {
		eng, err := engine.New(engine.Config{
			Window:    ds.Days[0].Window.Duration(),
			Origin:    ds.Days[0].Window.From,
			Internal:  synth.IsInternal,
			Core:      cfg,
			Detectors: detectors,
		}, func(r *engine.Result) error { s.emitted = r; return nil })
		if err != nil {
			return nil, fmt.Errorf("eval: building windowed engine: %w", err)
		}
		s.eng = eng
	}
	return s, nil
}

// alignedDays reports whether the collection windows form a strictly
// increasing sequence of equal-length windows on a common tumbling grid
// — the layout one continuous engine can tile. Anything else falls back
// to per-day batch extraction.
func alignedDays(days []*scenario.Day) bool {
	w0 := days[0].Window
	dur := w0.Duration()
	if dur <= 0 {
		return false
	}
	for i, d := range days[1:] {
		w := d.Window
		if w.Duration() != dur || !w.From.After(days[i].Window.From) {
			return false
		}
		if w.From.Sub(w0.From)%dur != 0 {
			return false
		}
	}
	return true
}

// Dataset returns the underlying corpus.
func (s *Suite) Dataset() *scenario.Dataset { return s.ds }

// Config returns the pipeline configuration.
func (s *Suite) Config() core.Config { return s.cfg }

// Days returns the number of evaluation days.
func (s *Suite) Days() int { return len(s.days) }

// Day returns the i-th overlaid day, building it on first use. With an
// aligned dataset the days up to i stream in order through the windowed
// engine; otherwise each day is batch-extracted independently.
func (s *Suite) Day(i int) (*DayEval, error) {
	if i < 0 || i >= len(s.days) {
		return nil, fmt.Errorf("eval: day %d out of range [0,%d)", i, len(s.days))
	}
	if s.eng == nil {
		if s.days[i] == nil {
			de, err := Overlay(s.ds.Days[i], StormTrace(s.ds), NugacheTrace(s.ds), s.daySeed(i), s.cfg)
			if err != nil {
				return nil, err
			}
			if len(s.detectors) > 0 {
				// Batch fallback with explicit detectors: run each over the
				// day's retained feature set (contact sets included).
				de.detections = make([]*core.Detection, 0, len(s.detectors))
				for _, det := range s.detectors {
					detn, err := det.Detect(de.source)
					if err != nil {
						return nil, fmt.Errorf("eval: day %d detector %s: %w", i, det.Name(), err)
					}
					de.detections = append(de.detections, detn)
					if de.detection == nil && detn.Paper != nil {
						de.detection = detn.Paper
					}
				}
			}
			s.days[i] = de
		}
		return s.days[i], nil
	}
	for s.cursor <= i {
		if err := s.streamDay(s.cursor); err != nil {
			return nil, err
		}
		s.cursor++
	}
	return s.days[i], nil
}

// streamDay overlays day j and pushes it through the engine: records
// accumulate in the sharded store, the day's collection window seals on
// end-of-day punctuation, and the emitted result carries the features
// and the detection outcome.
func (s *Suite) streamDay(j int) error {
	de, err := overlayDay(s.ds.Days[j], StormTrace(s.ds), NugacheTrace(s.ds), s.daySeed(j))
	if err != nil {
		return err
	}
	s.emitted = nil
	for k := range de.Records {
		if err := s.eng.Add(&de.Records[k]); err != nil {
			return fmt.Errorf("eval: streaming day %d: %w", j, err)
		}
	}
	if err := s.eng.AdvanceTo(s.ds.Days[j].Window.To); err != nil {
		return fmt.Errorf("eval: sealing day %d: %w", j, err)
	}
	if res := s.emitted; res != nil {
		de.Analysis = res.Detection.Analysis
		de.detection = res.Detection
		de.detections = res.Detections
	} else {
		// A day with no monitored traffic: an empty analysis keeps the
		// batch path's behavior.
		de.Analysis, err = core.NewAnalysisFromSource(
			flow.NewFeatureSet(nil, s.ds.Days[j].Window), s.cfg)
		if err != nil {
			return err
		}
	}
	s.days[j] = de
	return nil
}

// daySeed derives day i's overlay seed.
func (s *Suite) daySeed(i int) int64 { return s.seed + int64(i)*104729 }

// windowedBotFeatures extracts per-bot features from a raw (pre-overlay)
// honeynet trace restricted to the collection window of the first day.
func (s *Suite) windowedBotFeatures(records []flow.Record) map[flow.IP]*flow.HostFeatures {
	window := s.ds.Days[0].Window
	// Honeynet traces share their day with day 0 by construction.
	return flow.ExtractFeatures(window.Filter(records), flow.FeatureOptions{NewPeerGrace: s.cfg.NewPeerGrace})
}

// hostClass labels one host for scoring.
type hostClass int

const (
	classCampus hostClass = iota + 1
	classTrader
	classStorm
	classNugache
)

func (d *DayEval) classOf(h flow.IP) hostClass {
	switch {
	case d.Storm[h]:
		return classStorm
	case d.Nugache[h]:
		return classNugache
	case d.Traders[h]:
		return classTrader
	default:
		return classCampus
	}
}

// StageCounts tallies the composition of a host set.
type StageCounts struct {
	Storm   int
	Nugache int
	Traders int
	Others  int
}

// Total returns the host count.
func (c StageCounts) Total() int { return c.Storm + c.Nugache + c.Traders + c.Others }

// Add accumulates counts for cross-day averaging.
func (c *StageCounts) Add(o StageCounts) {
	c.Storm += o.Storm
	c.Nugache += o.Nugache
	c.Traders += o.Traders
	c.Others += o.Others
}

func (d *DayEval) count(set core.HostSet) StageCounts {
	var c StageCounts
	for h := range set {
		switch d.classOf(h) {
		case classStorm:
			c.Storm++
		case classNugache:
			c.Nugache++
		case classTrader:
			c.Traders++
		default:
			c.Others++
		}
	}
	return c
}

// jitteredDay overlays one day with pre-transformed Plotter traces (used
// by the §VI jitter experiment), keeping the same host assignments as the
// untransformed overlay by reusing the same per-day seed.
func (s *Suite) jitteredDay(i int, storm, nugache overlay.Trace) (*DayEval, error) {
	return Overlay(s.ds.Days[i], storm, nugache, s.daySeed(i), s.cfg)
}

// PercentileSweep is the paper's threshold sweep for every ROC figure.
var PercentileSweep = []float64{10, 30, 50, 70, 90}
