package eval

import (
	"fmt"

	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/overlay"
	"plotters/internal/synth/scenario"
)

// Suite drives the paper's evaluation over one synthesized dataset. Day
// overlays are cached so several experiments can share them.
type Suite struct {
	ds   *scenario.Dataset
	cfg  core.Config
	seed int64
	days []*DayEval
}

// NewSuite wraps a dataset. seed controls the overlay host assignments.
func NewSuite(ds *scenario.Dataset, cfg core.Config, seed int64) (*Suite, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ds.Days) == 0 {
		return nil, fmt.Errorf("eval: dataset has no days")
	}
	return &Suite{ds: ds, cfg: cfg, seed: seed, days: make([]*DayEval, len(ds.Days))}, nil
}

// Dataset returns the underlying corpus.
func (s *Suite) Dataset() *scenario.Dataset { return s.ds }

// Config returns the pipeline configuration.
func (s *Suite) Config() core.Config { return s.cfg }

// Days returns the number of evaluation days.
func (s *Suite) Days() int { return len(s.days) }

// Day returns the i-th overlaid day, building it on first use.
func (s *Suite) Day(i int) (*DayEval, error) {
	if i < 0 || i >= len(s.days) {
		return nil, fmt.Errorf("eval: day %d out of range [0,%d)", i, len(s.days))
	}
	if s.days[i] == nil {
		de, err := Overlay(s.ds.Days[i], StormTrace(s.ds), NugacheTrace(s.ds), s.seed+int64(i)*104729, s.cfg)
		if err != nil {
			return nil, err
		}
		s.days[i] = de
	}
	return s.days[i], nil
}

// windowedBotFeatures extracts per-bot features from a raw (pre-overlay)
// honeynet trace restricted to the collection window of the first day.
func (s *Suite) windowedBotFeatures(records []flow.Record) map[flow.IP]*flow.HostFeatures {
	window := s.ds.Days[0].Window
	// Honeynet traces share their day with day 0 by construction.
	return flow.ExtractFeatures(window.Filter(records), flow.FeatureOptions{NewPeerGrace: s.cfg.NewPeerGrace})
}

// hostClass labels one host for scoring.
type hostClass int

const (
	classCampus hostClass = iota + 1
	classTrader
	classStorm
	classNugache
)

func (d *DayEval) classOf(h flow.IP) hostClass {
	switch {
	case d.Storm[h]:
		return classStorm
	case d.Nugache[h]:
		return classNugache
	case d.Traders[h]:
		return classTrader
	default:
		return classCampus
	}
}

// StageCounts tallies the composition of a host set.
type StageCounts struct {
	Storm   int
	Nugache int
	Traders int
	Others  int
}

// Total returns the host count.
func (c StageCounts) Total() int { return c.Storm + c.Nugache + c.Traders + c.Others }

// Add accumulates counts for cross-day averaging.
func (c *StageCounts) Add(o StageCounts) {
	c.Storm += o.Storm
	c.Nugache += o.Nugache
	c.Traders += o.Traders
	c.Others += o.Others
}

func (d *DayEval) count(set core.HostSet) StageCounts {
	var c StageCounts
	for h := range set {
		switch d.classOf(h) {
		case classStorm:
			c.Storm++
		case classNugache:
			c.Nugache++
		case classTrader:
			c.Traders++
		default:
			c.Others++
		}
	}
	return c
}

// jitteredDay overlays one day with pre-transformed Plotter traces (used
// by the §VI jitter experiment), keeping the same host assignments as the
// untransformed overlay by reusing the same per-day seed.
func (s *Suite) jitteredDay(i int, storm, nugache overlay.Trace) (*DayEval, error) {
	return Overlay(s.ds.Days[i], storm, nugache, s.seed+int64(i)*104729, s.cfg)
}

// PercentileSweep is the paper's threshold sweep for every ROC figure.
var PercentileSweep = []float64{10, 30, 50, 70, 90}
