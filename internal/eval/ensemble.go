package eval

import (
	"fmt"

	"plotters/internal/core"
	"plotters/internal/flow"
)

// Ensemble combiners: set algebra over per-detector verdicts. The
// detectors see the same window through different lenses — the paper
// pipeline reads per-host behavior, the community detector reads
// cross-host structure — so their combinations trade precision against
// recall: union catches what either sees (recall), intersection keeps
// what both agree on (precision), k-of-n vote interpolates.

// Union returns the hosts flagged by at least one detection.
func Union(detections []*core.Detection) core.HostSet {
	return Vote(detections, 1)
}

// Intersection returns the hosts flagged by every detection (empty when
// there are none — no detector, no verdict).
func Intersection(detections []*core.Detection) core.HostSet {
	return Vote(detections, len(detections))
}

// Vote returns the hosts flagged by at least k of the detections. k < 1
// clamps to 1; k greater than the detector count yields the empty set
// (a bar nobody can clear), and an empty detection list always votes
// empty.
func Vote(detections []*core.Detection, k int) core.HostSet {
	if k < 1 {
		k = 1
	}
	votes := make(map[flow.IP]int)
	for _, d := range detections {
		if d == nil {
			continue
		}
		for h := range d.Suspects {
			votes[h]++
		}
	}
	out := make(core.HostSet)
	for h, n := range votes {
		if n >= k {
			out[h] = true
		}
	}
	return out
}

// EnsembleDay is one day's scores: each detector alone, then the
// combiners.
type EnsembleDay struct {
	// Day indexes the suite day the scores cover.
	Day int
	// PerDetector holds one Rates per detector, in EnsembleReport.
	// Detectors order.
	PerDetector []Rates
	// Union, Intersection, and Vote score the combined suspect sets.
	Union, Intersection, Vote Rates
}

// EnsembleReport aggregates per-detector and combined detection scores
// across every day of a suite.
type EnsembleReport struct {
	// Detectors names the scored detectors, in detection order.
	Detectors []string
	// VoteK is the vote threshold the Vote columns used.
	VoteK int
	// Days holds the per-day breakdown.
	Days []EnsembleDay
	// PerDetector, Union, Intersection, and Vote accumulate the
	// corresponding per-day rates across all days.
	PerDetector               []Rates
	Union, Intersection, Vote Rates
}

// Ensemble runs every configured detector over every day and scores
// them individually and combined (union, intersection, k-of-n vote)
// against the bot-carrying ground truth, over the full monitored host
// population. voteK < 1 means a strict majority of the detectors.
func (s *Suite) Ensemble(voteK int) (*EnsembleReport, error) {
	rep := &EnsembleReport{VoteK: voteK}
	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		detections, err := de.Detections()
		if err != nil {
			return nil, err
		}
		if rep.Detectors == nil {
			for _, d := range detections {
				rep.Detectors = append(rep.Detectors, d.Detector)
			}
			if rep.VoteK < 1 {
				rep.VoteK = len(detections)/2 + 1
			}
			rep.PerDetector = make([]Rates, len(detections))
		} else if len(detections) != len(rep.Detectors) {
			return nil, fmt.Errorf("eval: day %d ran %d detectors, day 0 ran %d",
				i, len(detections), len(rep.Detectors))
		}
		input := de.Analysis.Hosts()
		truth := de.Plotters()
		day := EnsembleDay{Day: i, PerDetector: make([]Rates, len(detections))}
		for j, d := range detections {
			day.PerDetector[j] = Score(d.Suspects, input, truth)
			rep.PerDetector[j].Add(day.PerDetector[j])
		}
		day.Union = Score(Union(detections), input, truth)
		day.Intersection = Score(Intersection(detections), input, truth)
		day.Vote = Score(Vote(detections, rep.VoteK), input, truth)
		rep.Union.Add(day.Union)
		rep.Intersection.Add(day.Intersection)
		rep.Vote.Add(day.Vote)
		rep.Days = append(rep.Days, day)
	}
	return rep, nil
}
