package eval

import (
	"sync"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/stats"
	"plotters/internal/synth/scenario"
)

// testCorpus lazily builds one small shared corpus for the whole package.
var testCorpus struct {
	once  sync.Once
	ds    *scenario.Dataset
	suite *Suite
	err   error
}

func corpus(t *testing.T) (*scenario.Dataset, *Suite) {
	t.Helper()
	testCorpus.once.Do(func() {
		cfg := scenario.DefaultDatasetConfig(42)
		cfg.Days = 2
		cfg.DayTemplate.CampusHosts = 120
		cfg.DayTemplate.Gnutella = 4
		cfg.DayTemplate.EMule = 4
		cfg.DayTemplate.BitTorrent = 6
		cfg.DayTemplate.PeerNetworkNodes = 1000
		cfg.Storm.Bots = 8
		cfg.Storm.OverlayNodes = 600
		cfg.Storm.SeedPeers = 60
		cfg.Nugache.Bots = 20
		cfg.Nugache.OverlayNodes = 500
		ds, err := scenario.GenerateDataset(cfg)
		if err != nil {
			testCorpus.err = err
			return
		}
		suite, err := NewSuite(ds, core.DefaultConfig(), 7)
		if err != nil {
			testCorpus.err = err
			return
		}
		testCorpus.ds = ds
		testCorpus.suite = suite
	})
	if testCorpus.err != nil {
		t.Fatal(testCorpus.err)
	}
	return testCorpus.ds, testCorpus.suite
}

func TestRates(t *testing.T) {
	kept := core.NewHostSet(1, 2, 10)
	input := core.NewHostSet(1, 2, 3, 10, 11, 12)
	truth := core.NewHostSet(1, 2, 3)
	r := Score(kept, input, truth)
	if r.TP != 2 || r.FP != 1 || r.Plotters != 3 || r.Others != 3 {
		t.Errorf("rates = %+v", r)
	}
	if r.TPR() != 2.0/3.0 || r.FPR() != 1.0/3.0 {
		t.Errorf("TPR/FPR = %v/%v", r.TPR(), r.FPR())
	}
	var zero Rates
	if zero.TPR() != 0 || zero.FPR() != 0 {
		t.Error("zero rates should be 0")
	}
	zero.Add(r)
	if zero.TP != 2 || zero.Others != 3 {
		t.Errorf("Add = %+v", zero)
	}
}

func TestOverlayDayEval(t *testing.T) {
	ds, suite := corpus(t)
	de, err := suite.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(de.Storm) != len(ds.Storm.Bots) {
		t.Errorf("storm hosts = %d, want %d", len(de.Storm), len(ds.Storm.Bots))
	}
	if len(de.Nugache) != len(ds.Nugache.Bots) {
		t.Errorf("nugache hosts = %d, want %d", len(de.Nugache), len(ds.Nugache.Bots))
	}
	// No host carries two bots, and bot hosts are disjoint from the
	// trader ground-truth set.
	for h := range de.Storm {
		if de.Nugache[h] {
			t.Errorf("host %v carries both botnets", h)
		}
		if de.Traders[h] {
			t.Errorf("bot host %v also in trader set", h)
		}
	}
	if len(de.Traders) == 0 {
		t.Error("no traders labeled")
	}
	if got := len(de.Plotters()); got != len(de.Storm)+len(de.Nugache) {
		t.Errorf("Plotters = %d", got)
	}
	// Bot flow counts accounted.
	total := 0
	for h, n := range de.BotFlows {
		if !de.Storm[h] && !de.Nugache[h] {
			t.Errorf("bot flows recorded for non-bot host %v", h)
		}
		total += n
	}
	if total == 0 {
		t.Error("no bot flows recorded")
	}
	// Day caching: same pointer on second call.
	again, err := suite.Day(0)
	if err != nil || again != de {
		t.Error("Day(0) not cached")
	}
	if _, err := suite.Day(99); err == nil {
		t.Error("out-of-range day accepted")
	}
}

func TestFigure1And5(t *testing.T) {
	_, suite := corpus(t)
	f1, err := suite.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Paper ordering: Trader median volume far above campus; Storm below.
	medianX := func(pts []stats.CDFPoint) float64 { return pts[len(pts)/2].X }
	if medianX(f1.Trader) < 4*medianX(f1.CMU) {
		t.Errorf("trader median volume %v not far above campus %v", medianX(f1.Trader), medianX(f1.CMU))
	}
	if medianX(f1.Storm) > medianX(f1.CMU) {
		t.Errorf("storm median volume %v above campus %v", medianX(f1.Storm), medianX(f1.CMU))
	}

	f5, err := suite.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// P2P populations fail far more than the campus background.
	if medianX(f5.Trader) < medianX(f5.CMU) {
		t.Errorf("trader failed%% %v below campus %v", medianX(f5.Trader), medianX(f5.CMU))
	}
	if medianX(f5.Nugache) < 50 {
		t.Errorf("nugache median failed%% = %v, want >50", medianX(f5.Nugache))
	}
}

func TestFigure2(t *testing.T) {
	_, suite := corpus(t)
	r, err := suite.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trader.Hour) == 0 || len(r.Storm.Hour) == 0 {
		t.Fatal("empty series")
	}
	// Figure 2's shape: the Trader ends the day with a (much) higher
	// new-IP fraction than the Storm bot.
	traderFinal := r.Trader.NewFraction[len(r.Trader.NewFraction)-1]
	stormFinal := r.Storm.NewFraction[len(r.Storm.NewFraction)-1]
	if traderFinal <= stormFinal {
		t.Errorf("trader new fraction %v not above storm %v", traderFinal, stormFinal)
	}
	// Cumulative counts are monotone.
	for i := 1; i < len(r.Trader.TotalIPs); i++ {
		if r.Trader.TotalIPs[i] < r.Trader.TotalIPs[i-1] {
			t.Fatal("trader totals not monotone")
		}
	}
}

func TestFigure3(t *testing.T) {
	_, suite := corpus(t)
	panels, err := suite.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 4 {
		t.Fatalf("panels = %d, want 4", len(panels))
	}
	names := map[string]bool{}
	for _, p := range panels {
		names[p.Name] = true
		if len(p.BinSeconds) == 0 || p.Samples == 0 {
			t.Errorf("panel %s empty", p.Name)
		}
		var mass float64
		for _, m := range p.Mass {
			mass += m
		}
		if mass < 0.99 || mass > 1.01 {
			t.Errorf("panel %s mass = %v", p.Name, mass)
		}
	}
	for _, want := range []string{"storm", "nugache", "bittorrent", "gnutella"} {
		if !names[want] {
			t.Errorf("missing panel %s", want)
		}
	}
}

func TestFigure6Through8ROCMonotone(t *testing.T) {
	_, suite := corpus(t)
	for name, run := range map[string]func() ([]ROCPoint, error){
		"fig6": suite.Figure6,
		"fig7": suite.Figure7,
		"fig8": suite.Figure8,
	} {
		points, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(points) != len(PercentileSweep) {
			t.Fatalf("%s: %d points", name, len(points))
		}
		// Higher (more permissive) percentiles can only widen the kept
		// set for vol/churn: TPR and FPR must be non-decreasing.
		if name != "fig8" {
			for i := 1; i < len(points); i++ {
				if points[i].Storm.TPR() < points[i-1].Storm.TPR()-1e-9 {
					t.Errorf("%s: storm TPR not monotone at %v", name, points[i].Percentile)
				}
				if points[i].FPR < points[i-1].FPR-1e-9 {
					t.Errorf("%s: FPR not monotone at %v", name, points[i].Percentile)
				}
			}
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	_, suite := corpus(t)
	r, err := suite.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Stages) != 5 {
		t.Fatalf("stages = %d", len(r.Stages))
	}
	// Refinement: the suspect set shrinks stage over stage, and the
	// paper's orderings hold — Storm detection far above Nugache, FP rate
	// small, most Traders eliminated.
	all := r.Stages[0].Counts
	final := r.Stages[4].Counts
	if final.Total() >= all.Total() {
		t.Error("pipeline did not reduce the host set")
	}
	if r.StormTPR < 0.5 {
		t.Errorf("storm TPR = %v, want high", r.StormTPR)
	}
	if r.StormTPR <= r.NugacheTPR {
		t.Errorf("storm TPR %v not above nugache %v", r.StormTPR, r.NugacheTPR)
	}
	if r.FPRate > 0.15 {
		t.Errorf("FP rate = %v, too high", r.FPRate)
	}
	if r.TradersRemaining > 0.5 {
		t.Errorf("traders remaining = %v, want most eliminated", r.TradersRemaining)
	}
	// The volume stage kills essentially all Traders.
	if vol := r.Stages[2].Counts; vol.Traders > all.Traders/4 {
		t.Errorf("volume stage kept %d of %d traders", vol.Traders, all.Traders)
	}
}

func TestFigure10Shift(t *testing.T) {
	_, suite := corpus(t)
	r, err := suite.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	allPts := r.Stages["all"]
	if len(allPts) == 0 {
		t.Fatal("no baseline CDF")
	}
	// Survivors of θ_hm are at least as communicative as the population:
	// median flow count must not decrease.
	if hmPts := r.Stages["hm"]; len(hmPts) > 0 {
		if hmPts[len(hmPts)/2].X < allPts[len(allPts)/2].X {
			t.Errorf("surviving median flows %v below population median %v",
				hmPts[len(hmPts)/2].X, allPts[len(allPts)/2].X)
		}
	}
}

func TestFigure11Factors(t *testing.T) {
	_, suite := corpus(t)
	days, err := suite.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != suite.Days() {
		t.Fatalf("days = %d", len(days))
	}
	for _, d := range days {
		// Storm must need a larger volume increase than Nugache (paper:
		// ≈5× vs ≈1.3×).
		if d.StormVolFactor <= d.NugacheVolFactor {
			t.Errorf("day %d: storm factor %v not above nugache %v", d.Day, d.StormVolFactor, d.NugacheVolFactor)
		}
		if d.StormVolFactor < 2 {
			t.Errorf("day %d: storm volume factor %v, want ≫1", d.Day, d.StormVolFactor)
		}
		if d.StormChurnFactor90 < 1.5 {
			t.Errorf("day %d: storm churn factor %v, want ≥1.5", d.Day, d.StormChurnFactor90)
		}
	}
}

func TestFigure12Decay(t *testing.T) {
	_, suite := corpus(t)
	sweep := []time.Duration{30 * time.Second, 30 * time.Minute}
	points, err := suite.Figure12(sweep, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// Minute-scale jitter must hurt Storm detection relative to
	// 30-second jitter (the paper's central evasion result).
	if points[1].StormTPR > points[0].StormTPR {
		t.Errorf("storm TPR rose under heavy jitter: %v -> %v", points[0].StormTPR, points[1].StormTPR)
	}
}

func TestReduceDay(t *testing.T) {
	_, suite := corpus(t)
	r, err := suite.ReduceDay(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Eligible == 0 || r.Kept.Total() == 0 {
		t.Errorf("reduction empty: %+v", r)
	}
	// Reduction keeps roughly half the eligible hosts.
	frac := float64(r.Kept.Total()) / float64(r.Eligible)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("reduction kept %.2f of hosts, want ≈0.5", frac)
	}
}

func TestSuiteValidation(t *testing.T) {
	ds, _ := corpus(t)
	bad := core.DefaultConfig()
	bad.CutFraction = 2
	if _, err := NewSuite(ds, bad, 1); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSuite(&scenario.Dataset{}, core.DefaultConfig(), 1); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestCompareBaselines(t *testing.T) {
	_, suite := corpus(t)
	outcomes, err := suite.CompareBaselines()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]DetectorOutcome, len(outcomes))
	for _, o := range outcomes {
		byName[o.Name] = o
	}
	fp := byName["findplotters"]
	tdg := byName["tdg"]
	fc := byName["failedconn"]
	if fp.Name == "" || tdg.Name == "" || fc.Name == "" {
		t.Fatalf("missing detectors: %+v", outcomes)
	}
	// The paper's motivating claim: generic P2P identifiers flag the
	// Traders wholesale; FindPlotters does not.
	if fc.TraderRate < 0.8 {
		t.Errorf("failed-conn detector trader rate = %v, want ~1 (it cannot separate)", fc.TraderRate)
	}
	if fp.TraderRate >= fc.TraderRate {
		t.Errorf("findplotters trader rate %v not below failed-conn %v", fp.TraderRate, fc.TraderRate)
	}
	// FindPlotters keeps campus false positives far below the coarse
	// failed-connection identifier.
	if fp.CampusRate >= fc.CampusRate {
		t.Errorf("findplotters campus rate %v not below failed-conn %v", fp.CampusRate, fc.CampusRate)
	}
	for _, o := range outcomes {
		t.Logf("%-14s storm=%.2f nugache=%.2f traders=%.2f campus=%.2f",
			o.Name, o.StormTPR, o.NugacheTPR, o.TraderRate, o.CampusRate)
	}
}
