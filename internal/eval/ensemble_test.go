package eval

import (
	"reflect"
	"testing"

	"plotters/internal/core"
	"plotters/internal/flow"
)

func det(name string, hosts ...flow.IP) *core.Detection {
	return &core.Detection{Detector: name, Suspects: core.NewHostSet(hosts...)}
}

func TestEnsembleCombiners(t *testing.T) {
	// Hand-built verdicts: paper flags {1,2,3}, community flags {2,3,4},
	// a third flags {3,4,5}.
	a := det("a", 1, 2, 3)
	b := det("b", 2, 3, 4)
	c := det("c", 3, 4, 5)
	cases := []struct {
		name string
		got  core.HostSet
		want []flow.IP
	}{
		{"union of three", Union([]*core.Detection{a, b, c}), []flow.IP{1, 2, 3, 4, 5}},
		{"intersection of three", Intersection([]*core.Detection{a, b, c}), []flow.IP{3}},
		{"2-of-3 vote", Vote([]*core.Detection{a, b, c}, 2), []flow.IP{2, 3, 4}},
		{"3-of-3 vote equals intersection", Vote([]*core.Detection{a, b, c}, 3), []flow.IP{3}},
		{"vote threshold above n is empty", Vote([]*core.Detection{a, b, c}, 4), nil},
		{"vote clamps k below 1 to union", Vote([]*core.Detection{a, b}, 0), []flow.IP{1, 2, 3, 4}},
		{"disagreeing detectors intersect empty", Intersection([]*core.Detection{det("a", 1, 2), det("b", 3, 4)}), nil},
		{"single detector: union = intersection", Intersection([]*core.Detection{a}), []flow.IP{1, 2, 3}},
		{"empty detection list: union empty", Union(nil), nil},
		{"empty detection list: intersection empty", Intersection(nil), nil},
		{"nil entries are skipped", Union([]*core.Detection{nil, a, nil}), []flow.IP{1, 2, 3}},
		{"detector with empty verdict empties intersection", Intersection([]*core.Detection{a, det("empty")}), nil},
	}
	for _, tc := range cases {
		want := core.NewHostSet(tc.want...)
		if !reflect.DeepEqual(tc.got, want) {
			t.Errorf("%s: got %v, want %v", tc.name, tc.got.Sorted(), want.Sorted())
		}
	}
}

// Precision-recall against hand-computed fixtures: population 1..10,
// true Plotters {1,2,3,4}.
func TestEnsembleScoresHandComputed(t *testing.T) {
	input := core.NewHostSet(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	truth := core.NewHostSet(1, 2, 3, 4)
	// Detector a flags {1,2,5}: 2 TP, 1 FP. Detector b flags {2,3,4,6,7}:
	// 3 TP, 2 FP.
	a := det("a", 1, 2, 5)
	b := det("b", 2, 3, 4, 6, 7)
	ds := []*core.Detection{a, b}

	check := func(name string, r Rates, tp, fp int, precision, recall float64) {
		t.Helper()
		if r.TP != tp || r.FP != fp {
			t.Errorf("%s: TP/FP = %d/%d, want %d/%d", name, r.TP, r.FP, tp, fp)
		}
		if r.Plotters != 4 || r.Others != 6 {
			t.Errorf("%s: denominators = %d/%d, want 4/6", name, r.Plotters, r.Others)
		}
		if got := r.Precision(); got != precision {
			t.Errorf("%s: precision = %v, want %v", name, got, precision)
		}
		if got := r.Recall(); got != recall {
			t.Errorf("%s: recall = %v, want %v", name, got, recall)
		}
	}

	check("a", Score(a.Suspects, input, truth), 2, 1, 2.0/3, 0.5)
	check("b", Score(b.Suspects, input, truth), 3, 2, 0.6, 0.75)
	// Union {1,2,3,4,5,6,7}: 4 TP, 3 FP. Intersection {2}: 1 TP, 0 FP.
	check("union", Score(Union(ds), input, truth), 4, 3, 4.0/7, 1)
	check("intersection", Score(Intersection(ds), input, truth), 1, 0, 1, 0.25)
	// 2-of-2 vote is the intersection.
	if !reflect.DeepEqual(Vote(ds, 2), Intersection(ds)) {
		t.Error("2-of-2 vote differs from intersection")
	}

	// Edge: no detectors — every combiner scores zero flagged, zero
	// precision, zero recall over the same denominators.
	check("no detectors", Score(Union(nil), input, truth), 0, 0, 0, 0)
}
