package eval

import (
	"fmt"

	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/ingest"
	"plotters/internal/synth"
)

// SamplingPoint is one row of the sampling-vs-detection sweep: the
// pipeline outcome when the ingest stage keeps only 1 flow in N.
type SamplingPoint struct {
	// N is the sampling divisor (1 = every flow, the unsampled
	// baseline).
	N uint64
	// Records and TotalRecords count the flows that survived sampling
	// and the flows offered, summed across all days, so KeptFraction
	// reports the measured (not nominal) rate.
	Records      int
	TotalRecords int
	// Storm, Nugache, and Overall aggregate detection rates across
	// days. The input set is always the *unsampled* day's analyzed
	// hosts: a bot whose every flow was sampled away counts as a miss,
	// so recall reflects the true cost of sampling rather than scoring
	// only the hosts that happened to survive.
	Storm   Rates
	Nugache Rates
	Overall Rates
}

// KeptFraction returns the measured fraction of flows that survived
// sampling.
func (p SamplingPoint) KeptFraction() float64 {
	if p.TotalRecords == 0 {
		return 0
	}
	return float64(p.Records) / float64(p.TotalRecords)
}

// SamplingSweep measures detection quality under the ingest subsystem's
// deterministic 1-in-N flow sampling. For each rate, every day's
// overlaid records pass through an ingest.Sampler with the given seed —
// the exact component the live collector runs — then feature
// extraction and the full pipeline run on the kept subset. Scores
// accumulate across all suite days against the unsampled day's host
// set and ground truth.
//
// Rate 1 runs the sampler in its disabled configuration and must (and
// does, by the sampler's N ≤ 1 contract) reproduce the unsampled
// pipeline verbatim; it is included so the report's baseline row comes
// from the same code path as the sampled rows.
func (s *Suite) SamplingSweep(rates []uint64, seed uint64) ([]SamplingPoint, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("eval: sampling sweep needs at least one rate")
	}
	points := make([]SamplingPoint, len(rates))
	for j, n := range rates {
		points[j].N = n
	}
	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		input := de.Analysis.Hosts()
		for j, n := range rates {
			sampler := ingest.Sampler{N: n, Seed: seed}
			kept := make([]flow.Record, 0, len(de.Records))
			for k := range de.Records {
				if sampler.Keep(&de.Records[k]) {
					kept = append(kept, de.Records[k])
				}
			}
			points[j].Records += len(kept)
			points[j].TotalRecords += len(de.Records)

			src := flow.ExtractFeatureSet(kept, flow.FeatureOptions{
				Hosts:        synth.IsInternal,
				NewPeerGrace: s.cfg.NewPeerGrace,
			}, flow.Window{})
			analysis, err := core.NewAnalysisFromSource(src, s.cfg)
			if err != nil {
				return nil, fmt.Errorf("eval: day %d at 1-in-%d sampling: %w", i, n, err)
			}
			res, err := analysis.FindPlotters()
			if err != nil {
				return nil, fmt.Errorf("eval: day %d at 1-in-%d sampling: %w", i, n, err)
			}
			points[j].Storm.Add(Score(res.Suspects, input, de.Storm))
			points[j].Nugache.Add(Score(res.Suspects, input, de.Nugache))
			points[j].Overall.Add(Score(res.Suspects, input, de.Plotters()))
		}
	}
	return points, nil
}
