package eval

import (
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/core"
	"plotters/internal/evasion"
	"plotters/internal/flow"
	"plotters/internal/overlay"
	"plotters/internal/stats"
)

// This file regenerates the paper's detection and evasion figures
// (Figures 6–12): per-test ROC curves, the stage-by-stage FindPlotters
// refinement, the surviving-Nugache flow-count CDF, and the evasion-cost
// analyses.

// ROCPoint is one threshold setting of one test, averaged over all days.
// Rates are relative to the test's input set, as in the paper.
type ROCPoint struct {
	Percentile float64
	Storm      Rates
	Nugache    Rates
	// FPR is flagged non-Plotters over non-Plotters in the input.
	FPR float64
}

// rocSweep runs one test at each percentile of the sweep across all days.
func (s *Suite) rocSweep(run func(de *DayEval, pct float64) (core.HostSet, core.HostSet, error)) ([]ROCPoint, error) {
	points := make([]ROCPoint, 0, len(PercentileSweep))
	for _, pct := range PercentileSweep {
		var agg ROCPoint
		agg.Percentile = pct
		var fpAgg Rates
		for i := 0; i < s.Days(); i++ {
			de, err := s.Day(i)
			if err != nil {
				return nil, err
			}
			kept, input, err := run(de, pct)
			if err != nil {
				return nil, err
			}
			agg.Storm.Add(Score(kept, input, de.Storm))
			agg.Nugache.Add(Score(kept, input, de.Nugache))
			fpAgg.Add(Score(kept, input, de.Plotters()))
		}
		agg.FPR = fpAgg.FPR()
		points = append(points, agg)
	}
	return points, nil
}

// Figure6 reproduces Figure 6: the ROC of the volume test θ_vol over the
// reduced host set, τ_vol swept across the {10,30,50,70,90}th percentiles
// of per-host average flow size, averaged over all days.
func (s *Suite) Figure6() ([]ROCPoint, error) {
	return s.rocSweep(func(de *DayEval, pct float64) (core.HostSet, core.HostSet, error) {
		red, err := de.Analysis.Reduce()
		if err != nil {
			return nil, nil, err
		}
		res, err := de.Analysis.VolumeTest(red.Kept, pct)
		if err != nil {
			return nil, nil, err
		}
		return res.Kept, red.Kept, nil
	})
}

// Figure7 reproduces Figure 7: the ROC of the churn test θ_churn, swept
// the same way.
func (s *Suite) Figure7() ([]ROCPoint, error) {
	return s.rocSweep(func(de *DayEval, pct float64) (core.HostSet, core.HostSet, error) {
		red, err := de.Analysis.Reduce()
		if err != nil {
			return nil, nil, err
		}
		res, err := de.Analysis.ChurnTest(red.Kept, pct)
		if err != nil {
			return nil, nil, err
		}
		return res.Kept, red.Kept, nil
	})
}

// Figure8 reproduces Figure 8: the ROC of the human-vs-machine test θ_hm
// over S_vol ∪ S_churn (both at their 50th-percentile operating point),
// with τ_hm swept across percentiles of the cluster diameters.
func (s *Suite) Figure8() ([]ROCPoint, error) {
	return s.rocSweep(func(de *DayEval, pct float64) (core.HostSet, core.HostSet, error) {
		red, err := de.Analysis.Reduce()
		if err != nil {
			return nil, nil, err
		}
		vol, err := de.Analysis.VolumeTest(red.Kept, s.cfg.VolPercentile)
		if err != nil {
			return nil, nil, err
		}
		churn, err := de.Analysis.ChurnTest(red.Kept, s.cfg.ChurnPercentile)
		if err != nil {
			return nil, nil, err
		}
		input := vol.Kept.Union(churn.Kept)
		hm, err := de.Analysis.HMTest(input, pct)
		if err != nil {
			return nil, nil, err
		}
		return hm.Kept, input, nil
	})
}

// StageResult is one pipeline stage's surviving-host composition,
// averaged (as totals) over all days.
type StageResult struct {
	Name   string
	Counts StageCounts
}

// Fig9Result is the stage-by-stage refinement of Figure 9 plus the
// headline rates.
type Fig9Result struct {
	Days   int
	Stages []StageResult
	// StormTPR and NugacheTPR are detection rates over all days.
	StormTPR   float64
	NugacheTPR float64
	// FPRate is flagged non-Plotters over all analyzed internal hosts.
	FPRate float64
	// TradersRemaining is the fraction of ground-truth Traders that
	// survive the full pipeline.
	TradersRemaining float64
	// TraderShareOfOutput is the fraction of the final output that is
	// Traders.
	TraderShareOfOutput float64
}

// Figure9 reproduces Figure 9: apply the full FindPlotters pipeline and
// report the composition after each stage, plus the paper's headline
// numbers (87.50% Storm TP, 30% Nugache TP, 0.81% FP, 5.40% of Traders
// remaining / 7.11% of output).
func (s *Suite) Figure9() (*Fig9Result, error) {
	out := &Fig9Result{Days: s.Days()}
	stageTotals := make([]StageCounts, 5)
	stageNames := []string{"all-hosts", "reduction", "vol", "churn", "hm"}
	var stormTotal, nugacheTotal, traderTotal, otherTotal int
	var stormTP, nugacheTP, traderFP, otherFP int
	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		res, err := de.Detect()
		if err != nil {
			return nil, err
		}
		stageTotals[0].Add(de.count(de.Analysis.Hosts()))
		stageTotals[1].Add(de.count(res.Reduction.Kept))
		stageTotals[2].Add(de.count(res.Volume.Kept))
		stageTotals[3].Add(de.count(res.Churn.Kept))
		final := de.count(res.Suspects)
		stageTotals[4].Add(final)

		all := de.count(de.Analysis.Hosts())
		stormTotal += all.Storm
		nugacheTotal += all.Nugache
		traderTotal += all.Traders
		otherTotal += all.Others
		stormTP += final.Storm
		nugacheTP += final.Nugache
		traderFP += final.Traders
		otherFP += final.Others
	}
	for i, name := range stageNames {
		out.Stages = append(out.Stages, StageResult{Name: name, Counts: stageTotals[i]})
	}
	if stormTotal > 0 {
		out.StormTPR = float64(stormTP) / float64(stormTotal)
	}
	if nugacheTotal > 0 {
		out.NugacheTPR = float64(nugacheTP) / float64(nugacheTotal)
	}
	if n := traderTotal + otherTotal; n > 0 {
		out.FPRate = float64(traderFP+otherFP) / float64(n)
	}
	if traderTotal > 0 {
		out.TradersRemaining = float64(traderFP) / float64(traderTotal)
	}
	if n := stageTotals[4].Total(); n > 0 {
		out.TraderShareOfOutput = float64(traderFP) / float64(n)
	}
	return out, nil
}

// Fig10Result is the Figure 10 data: for each pipeline stage, the CDF of
// in-window bot flow counts of the Nugache bots that survive it,
// accumulated over all days.
type Fig10Result struct {
	Stages map[string][]stats.CDFPoint
}

// Figure10 reproduces Figure 10: each test preferentially sheds the
// less-communicative Nugache bots, so the flow-count CDF of survivors
// shifts right after every stage.
func (s *Suite) Figure10() (*Fig10Result, error) {
	counts := map[string][]float64{}
	collect := func(stage string, de *DayEval, kept core.HostSet) {
		for h := range kept {
			if de.Nugache[h] {
				counts[stage] = append(counts[stage], float64(de.BotFlows[h]))
			}
		}
	}
	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		res, err := de.Detect()
		if err != nil {
			return nil, err
		}
		collect("all", de, de.Nugache)
		collect("reduction", de, res.Reduction.Kept)
		collect("vol∪churn", de, res.Volume.Kept.Union(res.Churn.Kept))
		collect("hm", de, res.Suspects)
	}
	out := &Fig10Result{Stages: make(map[string][]stats.CDFPoint, len(counts))}
	for stage, vals := range counts {
		if len(vals) == 0 {
			out.Stages[stage] = nil
			continue
		}
		ecdf, err := stats.NewECDF(vals)
		if err != nil {
			return nil, fmt.Errorf("eval: figure 10 %s: %w", stage, err)
		}
		out.Stages[stage] = ecdf.Sampled(60)
	}
	return out, nil
}

// Fig11Day is one day's evasion-threshold comparison for Figure 11.
type Fig11Day struct {
	Day int
	// VolThreshold is τ_vol; StormVolMedian/NugacheVolMedian are the
	// median per-bot-host average flow sizes once overlaid.
	VolThreshold     float64
	StormVolMedian   float64
	NugacheVolMedian float64
	// StormVolFactor/NugacheVolFactor are the multiplicative volume
	// increases the median bot needs to evade θ_vol (paper: ≈5, ≈1.3).
	StormVolFactor   float64
	NugacheVolFactor float64
	// ChurnThreshold is τ_churn with the bots' churn medians.
	ChurnThreshold     float64
	StormChurnMedian   float64
	NugacheChurnMedian float64
	// ChurnFactor90 is the factor by which the median Storm bot must
	// increase its new-IP count to reach a 90% new-IP fraction
	// (paper: ≥1.5).
	StormChurnFactor90   float64
	NugacheChurnFactor90 float64
}

// Figure11 reproduces Figure 11(a,b): per-day detection thresholds
// compared against the overlaid Plotters' observed feature medians, and
// the derived evasion factors.
func (s *Suite) Figure11() ([]Fig11Day, error) {
	out := make([]Fig11Day, 0, s.Days())
	for i := 0; i < s.Days(); i++ {
		de, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		red, err := de.Analysis.Reduce()
		if err != nil {
			return nil, err
		}
		vol, err := de.Analysis.VolumeTest(red.Kept, s.cfg.VolPercentile)
		if err != nil {
			return nil, err
		}
		churn, err := de.Analysis.ChurnTest(red.Kept, s.cfg.ChurnPercentile)
		if err != nil {
			return nil, err
		}
		day := Fig11Day{Day: i, VolThreshold: vol.Threshold, ChurnThreshold: churn.Threshold}

		feats := de.Analysis.Features()
		medianOf := func(set core.HostSet, get func(*flow.HostFeatures) float64) float64 {
			var vals []float64
			for h := range set {
				if f := feats[h]; f != nil {
					vals = append(vals, get(f))
				}
			}
			med, err := stats.Median(vals)
			if err != nil {
				return 0
			}
			return med
		}
		day.StormVolMedian = medianOf(de.Storm, (*flow.HostFeatures).AvgBytesPerFlow)
		day.NugacheVolMedian = medianOf(de.Nugache, (*flow.HostFeatures).AvgBytesPerFlow)
		day.StormVolFactor = evasion.RequiredVolumeFactor(day.StormVolMedian, day.VolThreshold)
		day.NugacheVolFactor = evasion.RequiredVolumeFactor(day.NugacheVolMedian, day.VolThreshold)
		day.StormChurnMedian = medianOf(de.Storm, (*flow.HostFeatures).NewPeerFraction)
		day.NugacheChurnMedian = medianOf(de.Nugache, (*flow.HostFeatures).NewPeerFraction)

		factorFor := func(set core.HostSet) float64 {
			var factors []float64
			for h := range set {
				if f := feats[h]; f != nil && f.NewPeers > 0 {
					factors = append(factors, evasion.RequiredChurnFactor(f.NewPeers, f.Peers, 0.9))
				}
			}
			med, err := stats.Median(factors)
			if err != nil {
				return 0
			}
			return med
		}
		day.StormChurnFactor90 = factorFor(de.Storm)
		day.NugacheChurnFactor90 = factorFor(de.Nugache)
		out = append(out, day)
	}
	return out, nil
}

// Fig12Point is one jitter magnitude's outcome for Figure 12.
type Fig12Point struct {
	Delay      time.Duration
	StormTPR   float64
	NugacheTPR float64
}

// DefaultJitterSweep is the §VI delay sweep (30 seconds to 3 hours).
var DefaultJitterSweep = []time.Duration{
	30 * time.Second,
	time.Minute,
	2 * time.Minute,
	5 * time.Minute,
	10 * time.Minute,
	30 * time.Minute,
	time.Hour,
	2 * time.Hour,
	3 * time.Hour,
}

// Figure12 reproduces Figure 12: Plotters add a uniform ±d delay before
// every connection to a previously contacted peer; the detection rate of
// the full pipeline decays as d grows into the minutes range. maxDays
// bounds the evaluation days used per delay (0 = all days).
func (s *Suite) Figure12(delays []time.Duration, maxDays int) ([]Fig12Point, error) {
	if len(delays) == 0 {
		delays = DefaultJitterSweep
	}
	days := s.Days()
	if maxDays > 0 && maxDays < days {
		days = maxDays
	}
	out := make([]Fig12Point, 0, len(delays))
	for di, d := range delays {
		rng := rand.New(rand.NewSource(s.seed + int64(di)*31337))
		stormRecs, err := evasion.JitterRepeatContacts(s.ds.Storm.Records, d, rng)
		if err != nil {
			return nil, err
		}
		nugRecs, err := evasion.JitterRepeatContacts(s.ds.Nugache.Records, d, rng)
		if err != nil {
			return nil, err
		}
		stormTrace := overlay.Trace{Label: LabelStorm, Records: stormRecs, Bots: s.ds.Storm.Bots}
		nugTrace := overlay.Trace{Label: LabelNugache, Records: nugRecs, Bots: s.ds.Nugache.Bots}

		var storm, nugache Rates
		for i := 0; i < days; i++ {
			de, err := s.jitteredDay(i, stormTrace, nugTrace)
			if err != nil {
				return nil, err
			}
			res, err := de.Detect()
			if err != nil {
				return nil, err
			}
			all := de.Analysis.Hosts()
			storm.Add(Score(res.Suspects, all, de.Storm))
			nugache.Add(Score(res.Suspects, all, de.Nugache))
		}
		out = append(out, Fig12Point{Delay: d, StormTPR: storm.TPR(), NugacheTPR: nugache.TPR()})
	}
	return out, nil
}
