// Package eval scores the detection pipeline against ground truth and
// drives the paper's evaluation (§V): it overlays the honeynet Plotter
// traces onto each synthesized campus day, runs the pipeline, and
// computes the true/false positive rates behind every figure.
package eval

import (
	"fmt"
	"math/rand"

	"plotters/internal/core"
	"plotters/internal/flow"
	"plotters/internal/label"
	"plotters/internal/overlay"
	"plotters/internal/synth"
	"plotters/internal/synth/scenario"
)

// Trace labels used for ground truth.
const (
	LabelStorm   = "storm"
	LabelNugache = "nugache"
)

// DayEval is one day's overlaid dataset with ground truth and analysis.
type DayEval struct {
	// Day is the underlying campus day.
	Day *scenario.Day
	// Records is the overlaid traffic (campus + Traders + bots).
	Records []flow.Record
	// Analysis holds per-host features over Records.
	Analysis *core.Analysis
	// Storm and Nugache are the internal hosts carrying each botnet's
	// traffic.
	Storm   core.HostSet
	Nugache core.HostSet
	// Traders are the internal hosts ground-truth-labeled as file
	// sharers by the §III payload rules (the synthesized Trader hosts
	// whose flows carry protocol signatures).
	Traders core.HostSet
	// BotFlows counts the in-window bot flows carried per bot host.
	BotFlows map[flow.IP]int

	// detection caches the default-configuration pipeline outcome; the
	// suite's windowed engine pre-populates it at window seal.
	detection *core.Result
	// detections caches every configured detector's verdict (the
	// multi-detector framework); the suite populates it from the
	// engine's per-window detections or the batch fallback.
	detections []*core.Detection
	// source keeps the day's feature set (contact sets included) so
	// detectors beyond the paper pipeline can run over the batch path.
	source *flow.FeatureSet
}

// Detect returns the day's full pipeline outcome at the suite
// configuration, computing and caching it on first use. Days built by
// the windowed engine arrive with the result already attached, so the
// figures that each used to re-run the pipeline now share one run.
func (d *DayEval) Detect() (*core.Result, error) {
	if d.detection != nil {
		return d.detection, nil
	}
	res, err := d.Analysis.FindPlotters()
	if err != nil {
		return nil, err
	}
	d.detection = res
	return res, nil
}

// Detections returns every detector's verdict for the day. Days built
// by a multi-detector suite arrive with the verdicts attached; a plain
// day falls back to the paper pipeline alone, wrapped as a
// single-element detection list.
func (d *DayEval) Detections() ([]*core.Detection, error) {
	if d.detections != nil {
		return d.detections, nil
	}
	res, err := d.Detect()
	if err != nil {
		return nil, err
	}
	d.detections = []*core.Detection{{Detector: core.PaperName, Suspects: res.Suspects, Paper: res}}
	return d.detections, nil
}

// Plotters returns all bot-carrying hosts.
func (d *DayEval) Plotters() core.HostSet { return d.Storm.Union(d.Nugache) }

// DetectWith runs the given detectors over the day's feature source and
// returns their verdicts in detector order, without touching the day's
// cached default-configuration results. Days built by Overlay always
// carry a source; engine-built days that arrived without one refuse.
func (d *DayEval) DetectWith(detectors []core.Detector) ([]*core.Detection, error) {
	if d.source == nil {
		return nil, fmt.Errorf("eval: day has no feature source attached")
	}
	out := make([]*core.Detection, 0, len(detectors))
	for _, det := range detectors {
		detection, err := det.Detect(d.source)
		if err != nil {
			return nil, fmt.Errorf("eval: detector %s: %w", det.Name(), err)
		}
		out = append(out, detection)
	}
	return out, nil
}

// Overlay builds a DayEval: assign the traces' bots to random active
// hosts, merge, extract features, and label Traders from payloads —
// the standalone batch path (the suite's engine path shares the overlay
// and ground-truth step and gets its features from the windowed store).
func Overlay(day *scenario.Day, storm, nugache overlay.Trace, seed int64, cfg core.Config) (*DayEval, error) {
	d, err := overlayDay(day, storm, nugache, seed)
	if err != nil {
		return nil, err
	}
	t := cfg.Metrics.StartStage("pipeline/extract")
	src := flow.ExtractFeatureSet(d.Records, flow.FeatureOptions{
		Hosts:        synth.IsInternal,
		NewPeerGrace: cfg.NewPeerGrace,
	}, flow.Window{})
	t.Stop()
	cfg.Metrics.Counter("pipeline/records").Add(int64(len(d.Records)))
	analysis, err := core.NewAnalysisFromSource(src, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: analyzing day: %w", err)
	}
	d.Analysis = analysis
	d.source = src
	return d, nil
}

// overlayDay builds the overlaid records and ground-truth labels of one
// day, leaving feature extraction to the caller.
func overlayDay(day *scenario.Day, storm, nugache overlay.Trace, seed int64) (*DayEval, error) {
	rng := rand.New(rand.NewSource(seed))
	ov, err := overlay.Overlay(rng, day.Records, day.Window, synth.IsInternal, storm, nugache)
	if err != nil {
		return nil, fmt.Errorf("eval: overlaying day: %w", err)
	}
	d := &DayEval{
		Day:      day,
		Records:  ov.Records,
		Storm:    core.HostSet{},
		Nugache:  core.HostSet{},
		Traders:  core.HostSet{},
		BotFlows: ov.BotFlows,
	}
	for host, lbl := range ov.BotHosts {
		switch lbl {
		case LabelStorm:
			d.Storm[host] = true
		case LabelNugache:
			d.Nugache[host] = true
		default:
			return nil, fmt.Errorf("eval: unknown trace label %q", lbl)
		}
	}
	for host := range label.Traders(ov.Records, synth.IsInternal) {
		// A Trader host that also carries a bot counts as a Plotter for
		// scoring: the paper's overlay explicitly allows bots to land on
		// Traders.
		if !d.Storm[host] && !d.Nugache[host] {
			d.Traders[host] = true
		}
	}
	return d, nil
}

// StormTrace and NugacheTrace adapt scenario traces for overlaying.
func StormTrace(ds *scenario.Dataset) overlay.Trace {
	return overlay.Trace{Label: LabelStorm, Records: ds.Storm.Records, Bots: ds.Storm.Bots}
}

// NugacheTrace adapts the Nugache trace for overlaying.
func NugacheTrace(ds *scenario.Dataset) overlay.Trace {
	return overlay.Trace{Label: LabelNugache, Records: ds.Nugache.Records, Bots: ds.Nugache.Bots}
}

// Rates is a detection outcome relative to an input set.
type Rates struct {
	// TP and FP count detected Plotters and flagged non-Plotters.
	TP, FP int
	// Plotters and Others are the denominators within the input set.
	Plotters, Others int
}

// TPR returns TP / Plotters (0 when no Plotters are in the input).
func (r Rates) TPR() float64 {
	if r.Plotters == 0 {
		return 0
	}
	return float64(r.TP) / float64(r.Plotters)
}

// FPR returns FP / Others (0 when no non-Plotters are in the input).
func (r Rates) FPR() float64 {
	if r.Others == 0 {
		return 0
	}
	return float64(r.FP) / float64(r.Others)
}

// Precision returns TP / (TP + FP) — the fraction of flagged hosts that
// really are Plotters (0 when nothing was flagged).
func (r Rates) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 0
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall returns TP / Plotters, the precision-recall name for TPR.
func (r Rates) Recall() float64 { return r.TPR() }

// Score computes detection rates for kept relative to the input set,
// counting members of truth as Plotters.
func Score(kept, input, truth core.HostSet) Rates {
	var r Rates
	for h := range input {
		if truth[h] {
			r.Plotters++
			if kept[h] {
				r.TP++
			}
		} else {
			r.Others++
			if kept[h] {
				r.FP++
			}
		}
	}
	return r
}

// Add accumulates another sample (for averaging across days).
func (r *Rates) Add(other Rates) {
	r.TP += other.TP
	r.FP += other.FP
	r.Plotters += other.Plotters
	r.Others += other.Others
}
