package core

import (
	"reflect"
	"strings"
	"testing"

	"plotters/internal/flow"
)

// shardSplit partitions a feature source into per-shard sources by the
// canonical host hash, exactly as a distributed deployment routes
// records.
func shardSplit(t *testing.T, src *flow.FeatureSet, shards int) []*flow.FeatureSet {
	t.Helper()
	parts := make([]map[flow.IP]*flow.HostFeatures, shards)
	cparts := make([]map[flow.IP][]flow.IP, shards)
	for i := range parts {
		parts[i] = make(map[flow.IP]*flow.HostFeatures)
		cparts[i] = make(map[flow.IP][]flow.IP)
	}
	contacts := src.Contacts()
	for h, f := range src.Features() {
		parts[flow.ShardOf(h, shards)][h] = f
		if c := contacts[h]; c != nil {
			cparts[flow.ShardOf(h, shards)][h] = c
		}
	}
	out := make([]*flow.FeatureSet, shards)
	for i := range parts {
		out[i] = flow.NewFeatureSet(parts[i], src.Window()).WithContacts(cparts[i])
	}
	return out
}

func extractSet(t *testing.T, records []flow.Record, cfg Config) *flow.FeatureSet {
	t.Helper()
	return flow.ExtractFeatureSet(records, flow.FeatureOptions{
		NewPeerGrace: cfg.NewPeerGrace,
	}, flow.Window{})
}

// Any host-hash shard split's LocalPass outputs must merge to the
// single-process ShardSummary, field for field.
func TestLocalPassMergeMatchesSingle(t *testing.T) {
	records := parallelCorpus(t)
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	src := extractSet(t, records, cfg)
	single, err := LocalPass(src, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 3, 4, 7} {
		var sums []*ShardSummary
		for i, part := range shardSplit(t, src, shards) {
			sum, err := LocalPass(part, cfg, i, shards)
			if err != nil {
				t.Fatalf("shards=%d shard=%d: %v", shards, i, err)
			}
			sums = append(sums, sum)
		}
		merged, err := MergeSummaries(sums)
		if err != nil {
			t.Fatalf("shards=%d: merge: %v", shards, err)
		}
		if !reflect.DeepEqual(merged.Hosts, single.Hosts) {
			t.Fatalf("shards=%d: merged host summaries differ from single-process", shards)
		}
		if !merged.Window.From.Equal(single.Window.From) || !merged.Window.To.Equal(single.Window.To) {
			t.Fatalf("shards=%d: merged window %v, want %v", shards, merged.Window, single.Window)
		}
	}
}

// GlobalPass over any shard split must reproduce FindPlotters bit for
// bit: thresholds, survivor sets, clusters, suspects.
func TestGlobalPassMatchesFindPlotters(t *testing.T) {
	records := parallelCorpus(t)
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.3
	src := extractSet(t, records, cfg)
	a, err := NewAnalysisFromSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.FindPlotters()
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 4} {
		var sums []*ShardSummary
		for i, part := range shardSplit(t, src, shards) {
			sum, err := LocalPass(part, cfg, i, shards)
			if err != nil {
				t.Fatal(err)
			}
			sums = append(sums, sum)
		}
		got, err := GlobalPass(sums, cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(got.Suspects, want.Suspects) {
			t.Errorf("shards=%d: suspects differ:\ngot  %v\nwant %v", shards, got.Suspects.Sorted(), want.Suspects.Sorted())
		}
		if got.Reduction.Threshold != want.Reduction.Threshold ||
			got.Volume.Threshold != want.Volume.Threshold ||
			got.Churn.Threshold != want.Churn.Threshold ||
			got.HM.Threshold != want.HM.Threshold {
			t.Errorf("shards=%d: thresholds differ: got %v/%v/%v/%v want %v/%v/%v/%v", shards,
				got.Reduction.Threshold, got.Volume.Threshold, got.Churn.Threshold, got.HM.Threshold,
				want.Reduction.Threshold, want.Volume.Threshold, want.Churn.Threshold, want.HM.Threshold)
		}
		if !reflect.DeepEqual(got.Reduction.Kept, want.Reduction.Kept) ||
			!reflect.DeepEqual(got.Volume.Kept, want.Volume.Kept) ||
			!reflect.DeepEqual(got.Churn.Kept, want.Churn.Kept) {
			t.Errorf("shards=%d: stage survivor sets differ", shards)
		}
		if !reflect.DeepEqual(got.HM.Clusters, want.HM.Clusters) ||
			got.HM.Clustered != want.HM.Clustered || got.HM.Skipped != want.HM.Skipped {
			t.Errorf("shards=%d: hm clustering differs", shards)
		}
	}
}

// A misrouted host — one whose hash says it belongs to another shard —
// must be a hard, descriptive error, never a silently shifted
// percentile.
func TestLocalPassRejectsMisroutedHost(t *testing.T) {
	records := parallelCorpus(t)
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	src := extractSet(t, records, cfg)
	_, err := LocalPass(src, cfg, 0, 4) // whole population claimed as shard 0 of 4
	if err == nil {
		t.Fatal("LocalPass accepted a source with hosts outside its shard")
	}
	if !strings.Contains(err.Error(), "hashes to shard") {
		t.Fatalf("error %q does not name the misrouted host's true shard", err)
	}
}

// Merging summaries that share a host must fail: per-host state may
// never split across shards.
func TestMergeRejectsOverlap(t *testing.T) {
	records := parallelCorpus(t)
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	src := extractSet(t, records, cfg)
	sum, err := LocalPass(src, cfg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dup := *sum
	dup.Shard = -1 // bypass the distinct-shard-index check to reach host overlap
	if _, err := MergeSummaries([]*ShardSummary{sum, &dup}); err == nil {
		t.Fatal("MergeSummaries accepted overlapping host sets")
	}
	if _, err := MergeSummaries([]*ShardSummary{sum, sum}); err == nil {
		t.Fatal("MergeSummaries accepted two summaries for the same shard")
	}
}
