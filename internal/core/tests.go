package core

import (
	"fmt"

	"plotters/internal/flow"
)

// Reduction is the outcome of the initial data-reduction step (§V-A).
type Reduction struct {
	// Kept holds the "possibly P2P" hosts: failed-connection rate above
	// the threshold.
	Kept HostSet
	// Threshold is the failed-connection-rate cutoff used (the median
	// across eligible hosts).
	Threshold float64
	// Eligible counts hosts that initiated at least one successful flow
	// (the population the median is computed over, per the paper).
	Eligible int
}

// Reduce performs the initial data reduction: among hosts that initiated
// at least one successful connection, keep those whose failed-connection
// rate exceeds the median. This discards roughly half the population —
// the hosts unlikely to be running any P2P application — while retaining
// Traders and Plotters, whose churn-driven failure rates are high.
func (a *Analysis) Reduce() (Reduction, error) {
	eligible := make(HostSet)
	for h, f := range a.feats {
		if f.SuccessfulFlows > 0 {
			eligible[h] = true
		}
	}
	if len(eligible) == 0 {
		return Reduction{}, fmt.Errorf("core: no hosts with successful flows in window")
	}
	threshold, err := a.percentileThreshold(eligible, 50, (*flow.HostFeatures).FailedRate)
	if err != nil {
		return Reduction{}, err
	}
	kept := make(HostSet)
	for h := range eligible {
		if a.feats[h].FailedRate() > threshold {
			kept[h] = true
		}
	}
	return Reduction{Kept: kept, Threshold: threshold, Eligible: len(eligible)}, nil
}

// TestResult is the outcome of θ_vol or θ_churn: the surviving hosts and
// the dynamically computed threshold.
type TestResult struct {
	Kept      HostSet
	Threshold float64
}

// VolumeTest is θ_vol (§IV-A): τ_vol is the pct-th percentile of average
// uploaded bytes per flow across the input hosts; hosts *below* τ_vol
// survive (Plotters send little data per flow, Traders move media files).
func (a *Analysis) VolumeTest(s HostSet, pct float64) (TestResult, error) {
	if len(s) == 0 {
		return TestResult{Kept: HostSet{}}, nil
	}
	threshold, err := a.percentileThreshold(s, pct, (*flow.HostFeatures).AvgBytesPerFlow)
	if err != nil {
		return TestResult{}, fmt.Errorf("core: volume test: %w", err)
	}
	kept := make(HostSet)
	for h := range s {
		f, ok := a.feats[h]
		if ok && f.AvgBytesPerFlow() < threshold {
			kept[h] = true
		}
	}
	return TestResult{Kept: kept, Threshold: threshold}, nil
}

// ChurnTest is θ_churn (§IV-B): τ_churn is the pct-th percentile of the
// new-peer fraction (destination IPs first contacted after the host's
// first hour of activity, over all destination IPs) across the input
// hosts; hosts *below* τ_churn survive (Plotters re-contact a stored peer
// list, Traders chase content across ever-new peers).
func (a *Analysis) ChurnTest(s HostSet, pct float64) (TestResult, error) {
	if len(s) == 0 {
		return TestResult{Kept: HostSet{}}, nil
	}
	threshold, err := a.percentileThreshold(s, pct, (*flow.HostFeatures).NewPeerFraction)
	if err != nil {
		return TestResult{}, fmt.Errorf("core: churn test: %w", err)
	}
	kept := make(HostSet)
	for h := range s {
		f, ok := a.feats[h]
		if ok && f.NewPeerFraction() < threshold {
			kept[h] = true
		}
	}
	return TestResult{Kept: kept, Threshold: threshold}, nil
}
