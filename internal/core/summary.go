package core

import (
	"fmt"
	"sort"
	"time"

	"plotters/internal/emd"
	"plotters/internal/flow"
)

// This file splits the FindPlotters pipeline into its shard-local and
// global phases. The cut follows the paper's own structure: every
// per-host quantity — the reduction/θ_vol/θ_churn feature vector and
// the θ_hm interstitial-time histogram sketch — depends on one host's
// flows alone, and host-hash sharding (flow.ShardOf) guarantees one
// host's flows all land on one shard. Only the population-relative
// decisions need a global view: the percentile thresholds, the pairwise
// EMD clustering of θ_hm, and the community graph. So a shard runs
// LocalPass over its hosts and ships a compact ShardSummary; the
// coordinator merges the disjoint summaries and runs GlobalPass, and
// the outcome is bit-identical to a single process running FindPlotters
// over the union — the property the distributed golden test pins.
//
//	stage                        phase    needs
//	per-host feature vector      local    one host's flows
//	θ_hm histogram sketch        local    one host's interstitials
//	contact set                  local    one host's destinations
//	reduction median             global   every host's failed rate
//	τ_vol / τ_churn percentiles  global   every candidate's features
//	θ_hm EMD matrix + clusters   global   every sketch
//	community graph              global   every contact set
//
// Serialization of ShardSummary lives in internal/dist, which frames it
// with the checkpoint-derived wire codec and a format version.

// HostSummary is one host's complete shard-local reduction: the scalar
// feature vector every percentile test thresholds, the θ_hm histogram
// sketch (present only when the host has enough interstitial samples to
// cluster — the shard-local candidate filter that keeps the summary
// compact), and the contacted-destination set the community detector
// reads.
type HostSummary struct {
	Host flow.IP

	// Scalar features, exactly the fields of flow.HostFeatures the
	// global tests derive their ratios from.
	Flows           int
	SuccessfulFlows int
	FailedFlows     int
	BytesUploaded   uint64
	Peers           int
	NewPeers        int
	FirstSeen       time.Time
	LastSeen        time.Time

	// InterstitialCount is how many interstitial-time samples the host
	// accumulated. Hosts below Config.MinInterstitialSamples carry the
	// count but no sketch: they can never pass θ_hm, and the count keeps
	// the coordinator's Skipped accounting identical to single-process.
	InterstitialCount int

	// SketchPositions/SketchWeights are the host's Freedman–Diaconis
	// histogram signature (bin centers and masses, non-empty bins only)
	// at the configured time scale — everything θ_hm's EMD needs, at a
	// fraction of the raw samples' size. Nil when InterstitialCount <
	// MinInterstitialSamples.
	SketchPositions []float64
	SketchWeights   []float64

	// Contacts is the host's contacted-destination set, ascending. Nil
	// when the shard's feature source tracks no contacts.
	Contacts []flow.IP
}

// Features reconstructs the flow.HostFeatures the scalar tests consume.
// The raw Interstitials are deliberately absent — only their count and
// sketch travel — so a reconstructed feature set feeds every stage
// except a from-samples HMTest; GlobalPass clusters from the sketches.
func (h *HostSummary) Features() *flow.HostFeatures {
	return &flow.HostFeatures{
		Host:            h.Host,
		Flows:           h.Flows,
		SuccessfulFlows: h.SuccessfulFlows,
		FailedFlows:     h.FailedFlows,
		BytesUploaded:   h.BytesUploaded,
		Peers:           h.Peers,
		NewPeers:        h.NewPeers,
		FirstSeen:       h.FirstSeen,
		LastSeen:        h.LastSeen,
	}
}

// ShardSummary is one shard's complete contribution to one detection
// window: the shard-local phase's output and the global phase's entire
// input. Summaries of disjoint shards merge (MergeSummaries) into
// exactly the summary a single process would have produced, which is
// what makes the distributed pipeline bit-identical.
type ShardSummary struct {
	// Shard and Shards identify the host-hash slice this summary covers:
	// every host h in it satisfies flow.ShardOf(h, Shards) == Shard.
	// A merged summary spanning several shards keeps Shards and sets
	// Shard to -1.
	Shard  int
	Shards int
	// Window is the detection window the features cover.
	Window flow.Window
	// Partial marks a summary sealed by an end-of-feed flush before the
	// window's nominal end — its verdict contribution is provisional.
	Partial bool
	// HasContacts records whether the shard's source tracked contacted
	// destinations (the community detector's input).
	HasContacts bool
	// Hosts is ascending by address.
	Hosts []HostSummary
}

// LocalPass runs the shard-local phase over one sealed window's feature
// source: per-host feature reduction to the scalar vector, the θ_hm
// sketch for hosts with enough samples, and contact-list capture.
// shard/shards name the host-hash slice the source is expected to hold
// (0/1 for the whole population); a host that hashes elsewhere is a
// routing bug and a hard error, because a silently misplaced host would
// shift every global percentile.
func LocalPass(src flow.FeatureSource, cfg Config, shard, shards int) (*ShardSummary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: local pass: shards = %d must be >= 1", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("core: local pass: shard %d outside [0,%d)", shard, shards)
	}
	if src == nil {
		return nil, fmt.Errorf("core: local pass: nil feature source")
	}
	reg := cfg.Metrics
	total := reg.StartStage("localpass")
	defer total.Stop()

	feats := src.Features()
	var contacts map[flow.IP][]flow.IP
	if cs, ok := src.(flow.ContactSource); ok {
		contacts = cs.Contacts()
	}
	sum := &ShardSummary{
		Shard:       shard,
		Shards:      shards,
		Window:      src.Window(),
		HasContacts: contacts != nil,
		Hosts:       make([]HostSummary, 0, len(feats)),
	}
	hosts := flow.SortedHosts(feats)
	t := total.Child("sketches")
	for _, h := range hosts {
		if got := flow.ShardOf(h, shards); got != shard {
			return nil, fmt.Errorf("core: local pass: host %v hashes to shard %d but this source claims shard %d/%d", h, got, shard, shards)
		}
		f := feats[h]
		hs := HostSummary{
			Host:              h,
			Flows:             f.Flows,
			SuccessfulFlows:   f.SuccessfulFlows,
			FailedFlows:       f.FailedFlows,
			BytesUploaded:     f.BytesUploaded,
			Peers:             f.Peers,
			NewPeers:          f.NewPeers,
			FirstSeen:         f.FirstSeen,
			LastSeen:          f.LastSeen,
			InterstitialCount: len(f.Interstitials),
		}
		if len(f.Interstitials) >= cfg.MinInterstitialSamples {
			hist, err := hmHistogram(f.Interstitials, cfg)
			if err != nil {
				return nil, fmt.Errorf("core: local pass: histogram for %v: %w", h, err)
			}
			hs.SketchPositions, hs.SketchWeights = hist.Signature()
		}
		if cset := contacts[h]; len(cset) > 0 {
			hs.Contacts = append([]flow.IP(nil), cset...)
			sortIPs(hs.Contacts)
		}
		sum.Hosts = append(sum.Hosts, hs)
	}
	t.Stop()
	reg.Gauge("localpass/hosts").Set(int64(len(sum.Hosts)))
	return sum, nil
}

// MergeSummaries combines disjoint shard summaries of the same window
// into the single-process summary: the host lists interleave by
// address, and every per-host field passes through untouched. Summaries
// must agree on the shard count and window and must not share hosts —
// any overlap means two shards claimed the same host, which would
// double-count it in every percentile.
func MergeSummaries(sums []*ShardSummary) (*ShardSummary, error) {
	if len(sums) == 0 {
		return nil, fmt.Errorf("core: merge: no shard summaries")
	}
	first := sums[0]
	total := 0
	for _, s := range sums {
		if s == nil {
			return nil, fmt.Errorf("core: merge: nil shard summary")
		}
		if s.Shards != first.Shards {
			return nil, fmt.Errorf("core: merge: summary of shard %d/%d cannot merge with shard %d/%d — the shard hash disagrees",
				s.Shard, s.Shards, first.Shard, first.Shards)
		}
		if !s.Window.From.Equal(first.Window.From) || !s.Window.To.Equal(first.Window.To) {
			return nil, fmt.Errorf("core: merge: summary of shard %d covers window [%v, %v) but shard %d covers [%v, %v)",
				s.Shard, s.Window.From, s.Window.To, first.Shard, first.Window.From, first.Window.To)
		}
		total += len(s.Hosts)
	}
	out := &ShardSummary{
		Shard:  first.Shard,
		Shards: first.Shards,
		Window: first.Window,
		Hosts:  make([]HostSummary, 0, total),
	}
	if len(sums) > 1 {
		out.Shard = -1
	}
	seen := make(map[int]bool, len(sums))
	for _, s := range sums {
		if s.Shard >= 0 {
			if seen[s.Shard] {
				return nil, fmt.Errorf("core: merge: two summaries for shard %d", s.Shard)
			}
			seen[s.Shard] = true
		}
		out.Partial = out.Partial || s.Partial
		out.HasContacts = out.HasContacts || s.HasContacts
		out.Hosts = append(out.Hosts, s.Hosts...)
	}
	sort.Slice(out.Hosts, func(i, j int) bool { return out.Hosts[i].Host < out.Hosts[j].Host })
	for i := 1; i < len(out.Hosts); i++ {
		if out.Hosts[i].Host == out.Hosts[i-1].Host {
			return nil, fmt.Errorf("core: merge: host %v appears in more than one shard summary — per-host state must never split across shards", out.Hosts[i].Host)
		}
	}
	return out, nil
}

// FeatureSet reconstructs the summary's hosts as a flow.FeatureSet
// (with contact sets when the shards tracked them), the currency every
// detector consumes.
func (s *ShardSummary) FeatureSet() *flow.FeatureSet {
	feats := make(map[flow.IP]*flow.HostFeatures, len(s.Hosts))
	var contacts map[flow.IP][]flow.IP
	if s.HasContacts {
		contacts = make(map[flow.IP][]flow.IP, len(s.Hosts))
	}
	for i := range s.Hosts {
		h := &s.Hosts[i]
		feats[h.Host] = h.Features()
		if s.HasContacts && len(h.Contacts) > 0 {
			contacts[h.Host] = h.Contacts
		}
	}
	set := flow.NewFeatureSet(feats, s.Window)
	if s.HasContacts {
		set = set.WithContacts(contacts)
	}
	return set
}

// Records sums the flows attributed to the summary's hosts.
func (s *ShardSummary) Records() int {
	n := 0
	for i := range s.Hosts {
		n += s.Hosts[i].Flows
	}
	return n
}

// GlobalPass runs the global phase over one window's shard summaries:
// merge, population percentiles (reduction, τ_vol, τ_churn), and θ_hm
// clustering from the shipped sketches. The result is bit-identical to
// FindPlotters over the same population — same thresholds, survivor
// sets, clusters, and suspects — because every per-host input was
// computed by the same code on the shard and the global stages run the
// same driver (runPipeline).
func GlobalPass(sums []*ShardSummary, cfg Config) (*Result, error) {
	merged, err := MergeSummaries(sums)
	if err != nil {
		return nil, err
	}
	a, err := NewAnalysisFromSource(merged.FeatureSet(), cfg)
	if err != nil {
		return nil, err
	}
	byHost := make(map[flow.IP]*HostSummary, len(merged.Hosts))
	for i := range merged.Hosts {
		byHost[merged.Hosts[i].Host] = &merged.Hosts[i]
	}
	return a.runPipeline(func(union HostSet) (HMResult, error) {
		return a.hmFromSketches(union, byHost, cfg.HMPercentile)
	})
}

// hmFromSketches is θ_hm fed by precomputed shard sketches instead of
// raw interstitial samples: reconstruct each clusterable host's EMD
// signature from its shipped histogram signature, then hand off to the
// same hmCluster the single-process HMTest uses. A host without a
// sketch had fewer than MinInterstitialSamples observations on its
// shard and is skipped, exactly as HMTest would have.
func (a *Analysis) hmFromSketches(s HostSet, byHost map[flow.IP]*HostSummary, pct float64) (HMResult, error) {
	reg := a.cfg.Metrics
	hosts := make([]flow.IP, 0, len(s))
	sigs := make([]*emd.Signature, 0, len(s))
	skipped := 0
	t := reg.StartStage("pipeline/hm/signatures")
	for _, h := range s.Sorted() {
		hs, ok := byHost[h]
		if !ok || hs.SketchPositions == nil {
			skipped++
			continue
		}
		sig, err := emd.NewSignature(hs.SketchPositions, hs.SketchWeights)
		if err != nil {
			return HMResult{}, fmt.Errorf("core: EMD signature for %v: %w", h, err)
		}
		hosts = append(hosts, h)
		sigs = append(sigs, sig)
	}
	t.Stop()
	reg.Gauge("pipeline/hm/clustered").Set(int64(len(hosts)))
	reg.Gauge("pipeline/hm/skipped").Set(int64(skipped))
	if len(hosts) < 2 {
		return HMResult{Kept: HostSet{}, Skipped: skipped, Clustered: len(hosts)}, nil
	}
	return a.hmCluster(hosts, sigs, skipped, pct)
}

// LocalName is the shard-local phase's detector identifier.
const LocalName = "localpass"

// LocalDetector adapts LocalPass to the Detector seam so a shard's
// windowed engine can drive it: each sealed window's Detection carries
// the ShardSummary as Details (and no suspects — a shard alone cannot
// threshold a population it only sees a hash-slice of).
type LocalDetector struct {
	cfg    Config
	shard  int
	shards int
}

// NewLocalDetector wraps the shard-local phase for the given host-hash
// slice.
func NewLocalDetector(cfg Config, shard, shards int) (*LocalDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("core: shards = %d must be >= 1", shards)
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("core: shard %d outside [0,%d)", shard, shards)
	}
	return &LocalDetector{cfg: cfg, shard: shard, shards: shards}, nil
}

// Name implements Detector.
func (d *LocalDetector) Name() string { return LocalName }

// Detect implements Detector.
func (d *LocalDetector) Detect(src flow.FeatureSource) (*Detection, error) {
	sum, err := LocalPass(src, d.cfg, d.shard, d.shards)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Name(), err)
	}
	return &Detection{Detector: d.Name(), Suspects: HostSet{}, Details: sum}, nil
}
