package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"plotters/internal/cluster"
	"plotters/internal/distmatrix"
	"plotters/internal/emd"
	"plotters/internal/flow"
	"plotters/internal/histogram"
	"plotters/internal/stats"
)

// logScale maps interstitial seconds onto a logarithmic axis (log1p, so
// zero gaps stay finite). Timer structure is multiplicative — a 2-minute
// keepalive versus a 10-second gossip timer — so comparing distributions
// on the log axis lets EMD measure relative timing differences instead of
// being swamped by the absolute size of heavy-tail gaps.
func logScale(samples []float64) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = math.Log1p(s)
	}
	return out
}

// HMCluster is one cluster of hosts with similar interstitial-time
// distributions.
type HMCluster struct {
	Hosts    []flow.IP
	Diameter float64
	// Kept reports whether the cluster survived the τ_hm diameter filter.
	Kept bool
}

// HMResult is the outcome of θ_hm (§IV-C).
type HMResult struct {
	// Kept is the union of surviving clusters' hosts — the suspected
	// Plotters.
	Kept HostSet
	// Threshold is τ_hm, the diameter cutoff.
	Threshold float64
	// Clusters lists every multi-member cluster with its diameter.
	Clusters []HMCluster
	// Clustered counts hosts that had enough interstitial samples to
	// participate.
	Clustered int
	// Skipped counts input hosts with too few samples to cluster — they
	// cannot pass θ_hm, which is how the test sheds low-activity hosts.
	Skipped int
}

// HMTest is θ_hm (§IV-C), the human- vs. machine-driven test: build a
// Freedman–Diaconis histogram of each host's pooled per-destination flow
// interstitial times, compare hosts pairwise with the Earth Mover's
// Distance, cluster agglomeratively (average linkage, cutting the top
// CutFraction heaviest dendrogram links), and keep clusters of at least
// two hosts whose diameter is at most τ_hm — the pct-th percentile of
// cluster diameters. Machine-driven hosts running the same bot binary
// share timer structure and co-cluster tightly; human-driven hosts do
// not.
func (a *Analysis) HMTest(s HostSet, pct float64) (HMResult, error) {
	reg := a.cfg.Metrics
	hosts := make([]flow.IP, 0, len(s))
	hists := make([]*histogram.Histogram, 0, len(s))
	skipped := 0
	t := reg.StartStage("pipeline/hm/histograms")
	for _, h := range s.Sorted() {
		f, ok := a.feats[h]
		if !ok || len(f.Interstitials) < a.cfg.MinInterstitialSamples {
			skipped++
			continue
		}
		samples := f.Interstitials
		if !a.cfg.RawTimeScale {
			samples = logScale(samples)
		}
		hist, err := histogram.Build(samples, a.cfg.MaxHistogramBins)
		if err != nil {
			return HMResult{}, fmt.Errorf("core: histogram for %v: %w", h, err)
		}
		hosts = append(hosts, h)
		hists = append(hists, hist)
	}
	t.Stop()
	reg.Gauge("pipeline/hm/clustered").Set(int64(len(hosts)))
	reg.Gauge("pipeline/hm/skipped").Set(int64(skipped))
	if len(hosts) < 2 {
		return HMResult{Kept: HostSet{}, Skipped: skipped, Clustered: len(hosts)}, nil
	}

	// Pairwise EMD over histogram signatures. Each host's signature is
	// validated, sorted, and normalized exactly once here; the O(n²)
	// pairwise comparisons then run allocation-free. Hosts are in sorted
	// address order, so any signature error reports the first offending
	// host deterministically.
	t = reg.StartStage("pipeline/hm/signatures")
	sigs := make([]*emd.Signature, len(hists))
	for i, h := range hists {
		pos, w := h.Signature()
		sig, err := emd.NewSignature(pos, w)
		if err != nil {
			return HMResult{}, fmt.Errorf("core: EMD signature for %v: %w", hosts[i], err)
		}
		sigs[i] = sig
	}
	t.Stop()
	// The matrix is the pipeline's dominant cost; distmatrix shards it
	// across cfg.Parallelism workers (0 = all CPUs) with output — values
	// and any error — bit-identical to a sequential i-then-j loop.
	t = reg.StartStage("pipeline/hm/matrix")
	dist, err := distmatrix.Compute(context.Background(), len(hosts),
		func(i, j int) (float64, error) { return sigs[i].Distance(sigs[j]), nil },
		distmatrix.Options{Parallelism: a.cfg.Parallelism, Metrics: reg})
	t.Stop()
	if err != nil {
		var pe *distmatrix.PairError
		if errors.As(err, &pe) {
			return HMResult{}, fmt.Errorf("core: EMD between %v and %v: %w", hosts[pe.I], hosts[pe.J], pe.Err)
		}
		return HMResult{}, fmt.Errorf("core: distance matrix: %w", err)
	}

	t = reg.StartStage("pipeline/hm/cluster")
	dendro, err := cluster.Agglomerate(len(hosts), dist.DistFunc())
	if err != nil {
		return HMResult{}, fmt.Errorf("core: clustering: %w", err)
	}
	groups := dendro.CutTopFraction(a.cfg.CutFraction)
	t.Stop()

	// Multi-member clusters only: a lone machine-like host has no botnet
	// peer to corroborate it.
	var clusters []HMCluster
	var diameters []float64
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		diam := clusterSpread(a.cfg, members, dist.DistFunc())
		ips := make([]flow.IP, len(members))
		for k, m := range members {
			ips[k] = hosts[m]
		}
		clusters = append(clusters, HMCluster{Hosts: ips, Diameter: diam})
		diameters = append(diameters, diam)
	}
	reg.Gauge("pipeline/hm/clusters").Set(int64(len(clusters)))
	result := HMResult{Kept: HostSet{}, Clusters: clusters, Clustered: len(hosts), Skipped: skipped}
	if len(clusters) == 0 {
		return result, nil
	}
	threshold, err := stats.Percentile(diameters, pct)
	if err != nil {
		return HMResult{}, fmt.Errorf("core: diameter threshold: %w", err)
	}
	result.Threshold = threshold
	for i := range result.Clusters {
		c := &result.Clusters[i]
		if c.Diameter <= threshold {
			c.Kept = true
			for _, ip := range c.Hosts {
				result.Kept[ip] = true
			}
		}
	}
	return result, nil
}

// clusterSpread computes the cluster statistic the τ_hm filter compares:
// mean pairwise distance by default (robust to one contaminated member —
// a bot sitting on an unusually busy host would otherwise blow up its
// cluster's maximum), or the strict maximum when MaxDiameter is set.
func clusterSpread(cfg Config, members []int, dist func(i, j int) float64) float64 {
	if cfg.MaxDiameter {
		return cluster.Diameter(members, dist)
	}
	return cluster.MeanPairwise(members, dist)
}
