package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"plotters/internal/cluster"
	"plotters/internal/distmatrix"
	"plotters/internal/emd"
	"plotters/internal/flow"
	"plotters/internal/histogram"
	"plotters/internal/stats"
)

// logScale maps interstitial seconds onto a logarithmic axis (log1p, so
// zero gaps stay finite). Timer structure is multiplicative — a 2-minute
// keepalive versus a 10-second gossip timer — so comparing distributions
// on the log axis lets EMD measure relative timing differences instead of
// being swamped by the absolute size of heavy-tail gaps.
func logScale(samples []float64) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = math.Log1p(s)
	}
	return out
}

// HMCluster is one cluster of hosts with similar interstitial-time
// distributions.
type HMCluster struct {
	Hosts    []flow.IP
	Diameter float64
	// Kept reports whether the cluster survived the τ_hm diameter filter.
	Kept bool
}

// HMResult is the outcome of θ_hm (§IV-C).
type HMResult struct {
	// Kept is the union of surviving clusters' hosts — the suspected
	// Plotters.
	Kept HostSet
	// Threshold is τ_hm, the diameter cutoff.
	Threshold float64
	// Clusters lists every multi-member cluster with its diameter.
	Clusters []HMCluster
	// Clustered counts hosts that had enough interstitial samples to
	// participate.
	Clustered int
	// Skipped counts input hosts with too few samples to cluster — they
	// cannot pass θ_hm, which is how the test sheds low-activity hosts.
	Skipped int
}

// HMTest is θ_hm (§IV-C), the human- vs. machine-driven test: build a
// Freedman–Diaconis histogram of each host's pooled per-destination flow
// interstitial times, compare hosts pairwise with the Earth Mover's
// Distance, cluster agglomeratively (average linkage, cutting the top
// CutFraction heaviest dendrogram links), and keep clusters of at least
// two hosts whose diameter is at most τ_hm — the pct-th percentile of
// cluster diameters. Machine-driven hosts running the same bot binary
// share timer structure and co-cluster tightly; human-driven hosts do
// not.
func (a *Analysis) HMTest(s HostSet, pct float64) (HMResult, error) {
	reg := a.cfg.Metrics
	hosts := make([]flow.IP, 0, len(s))
	hists := make([]*histogram.Histogram, 0, len(s))
	skipped := 0
	t := reg.StartStage("pipeline/hm/histograms")
	for _, h := range s.Sorted() {
		f, ok := a.feats[h]
		if !ok || len(f.Interstitials) < a.cfg.MinInterstitialSamples {
			skipped++
			continue
		}
		hist, err := hmHistogram(f.Interstitials, a.cfg)
		if err != nil {
			return HMResult{}, fmt.Errorf("core: histogram for %v: %w", h, err)
		}
		hosts = append(hosts, h)
		hists = append(hists, hist)
	}
	t.Stop()
	reg.Gauge("pipeline/hm/clustered").Set(int64(len(hosts)))
	reg.Gauge("pipeline/hm/skipped").Set(int64(skipped))
	if len(hosts) < 2 {
		return HMResult{Kept: HostSet{}, Skipped: skipped, Clustered: len(hosts)}, nil
	}

	// Pairwise EMD over histogram signatures. Each host's signature is
	// validated, sorted, and normalized exactly once here; the O(n²)
	// pairwise comparisons then run allocation-free. Hosts are in sorted
	// address order, so any signature error reports the first offending
	// host deterministically.
	t = reg.StartStage("pipeline/hm/signatures")
	sigs := make([]*emd.Signature, len(hists))
	for i, h := range hists {
		pos, w := h.Signature()
		sig, err := emd.NewSignature(pos, w)
		if err != nil {
			return HMResult{}, fmt.Errorf("core: EMD signature for %v: %w", hosts[i], err)
		}
		sigs[i] = sig
	}
	t.Stop()
	return a.hmCluster(hosts, sigs, skipped, pct)
}

// hmHistogram builds one host's interstitial-time histogram at the
// configured scale and resolution — the per-host sketch that is all
// θ_hm ever looks at. It is deliberately a pure function of one host's
// samples and the config, which is what lets the shard-local phase
// (LocalPass) precompute it far from the coordinator that clusters.
func hmHistogram(interstitials []float64, cfg Config) (*histogram.Histogram, error) {
	samples := interstitials
	if !cfg.RawTimeScale {
		samples = logScale(samples)
	}
	return histogram.Build(samples, cfg.MaxHistogramBins)
}

// hmCluster is the global half of θ_hm: given the clusterable hosts (in
// ascending address order) and their validated EMD signatures, run the
// pairwise distance matrix, agglomerative clustering, and the τ_hm
// diameter filter. Both the single-process HMTest and the distributed
// GlobalPass end up here, so the two paths cannot diverge.
func (a *Analysis) hmCluster(hosts []flow.IP, sigs []*emd.Signature, skipped int, pct float64) (HMResult, error) {
	reg := a.cfg.Metrics

	// Resolve the prune/gate cut. Exact distances only matter below the
	// clustering cut — with UPGMA's monotone merge weights, the
	// top-fraction cut removes exactly the last merges, so any pair
	// provably above every surviving cluster's diameter can be recorded
	// as the sentinel without changing a single merge (the derivation
	// lives in DESIGN.md). An explicit HMCut is used as-is; HMPrune with
	// HMCut = 0 calibrates one from a deterministic host subsample.
	cut := a.cfg.HMCut
	if a.cfg.HMPrune && cut == 0 {
		t := reg.StartStage("pipeline/hm/calibrate")
		c, err := calibrateCut(sigs, a.cfg)
		t.Stop()
		if err != nil {
			return HMResult{}, fmt.Errorf("core: cut calibration: %w", err)
		}
		cut = c
	}
	opts := distmatrix.Options{Parallelism: a.cfg.Parallelism, Metrics: reg, Cut: cut}
	var pstats distmatrix.PruneStats
	if cut > 0 {
		opts.Stats = &pstats
		reg.Gauge("pipeline/hm/cut_microemd").Set(int64(cut * 1e6))
	}
	if a.cfg.HMPrune && cut > 0 {
		// Coarsened-CDF signatures over one shared grid spanning every
		// host's support: the pairwise L1 of these fixed-length vectors
		// lower-bounds the exact EMD (admissible — see internal/emd),
		// and costs ~1/40th of an exact evaluation.
		t := reg.StartStage("pipeline/hm/prefilter")
		lo, hi := sigs[0].Support()
		for _, s := range sigs[1:] {
			slo, shi := s.Support()
			if slo < lo {
				lo = slo
			}
			if shi > hi {
				hi = shi
			}
		}
		cdfs := make([]*emd.CDFSignature, len(sigs))
		for i, s := range sigs {
			cdfs[i] = s.CDFSignature(lo, hi, hmBoundCells)
		}
		t.Stop()
		// The early-exit stop sits just above the engine's slack-adjusted
		// threshold, so a capped scan that exits has provably cleared it.
		stop := cut * (1 + 1e-6)
		opts.Bound = func(i, j int) float64 { return emd.LowerBoundAtLeast(cdfs[i], cdfs[j], stop) }
		opts.Pivots = hmPivots
	}

	// The matrix is the pipeline's dominant cost; distmatrix shards it
	// across cfg.Parallelism workers (0 = all CPUs) with output — values
	// and any error — bit-identical to a sequential i-then-j loop, and
	// (when a cut is active) bit-identical between the pruned and the
	// exhaustive-then-gated fills.
	t := reg.StartStage("pipeline/hm/matrix")
	dist, err := distmatrix.Compute(context.Background(), len(hosts),
		func(i, j int) (float64, error) { return sigs[i].Distance(sigs[j]), nil },
		opts)
	t.Stop()
	if err != nil {
		var pe *distmatrix.PairError
		if errors.As(err, &pe) {
			return HMResult{}, fmt.Errorf("core: EMD between %v and %v: %w", hosts[pe.I], hosts[pe.J], pe.Err)
		}
		return HMResult{}, fmt.Errorf("core: distance matrix: %w", err)
	}

	t = reg.StartStage("pipeline/hm/cluster")
	dendro, err := cluster.Agglomerate(len(hosts), dist.DistFunc())
	if err != nil {
		return HMResult{}, fmt.Errorf("core: clustering: %w", err)
	}
	groups := dendro.CutTopFraction(a.cfg.CutFraction)
	t.Stop()

	// Multi-member clusters only: a lone machine-like host has no botnet
	// peer to corroborate it.
	var clusters []HMCluster
	var diameters []float64
	var overcut int64
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		diam := clusterSpread(a.cfg, members, dist.DistFunc())
		if math.IsInf(diam, 1) {
			// A sentinel pair inside a surviving cluster means the cut
			// was tighter than this cluster's true spread — possible
			// only with a miscalibrated explicit HMCut. Record it and
			// clamp to the largest finite value: the cluster can never
			// pass τ_hm, and the result stays JSON-serializable.
			overcut++
			diam = math.MaxFloat64
		}
		ips := make([]flow.IP, len(members))
		for k, m := range members {
			ips[k] = hosts[m]
		}
		clusters = append(clusters, HMCluster{Hosts: ips, Diameter: diam})
		diameters = append(diameters, diam)
	}
	reg.Gauge("pipeline/hm/clusters").Set(int64(len(clusters)))
	reg.Gauge("pipeline/hm/overcut").Set(overcut)
	result := HMResult{Kept: HostSet{}, Clusters: clusters, Clustered: len(hosts), Skipped: skipped}
	if len(clusters) == 0 {
		return result, nil
	}
	threshold, err := stats.Percentile(diameters, pct)
	if err != nil {
		return HMResult{}, fmt.Errorf("core: diameter threshold: %w", err)
	}
	result.Threshold = threshold
	for i := range result.Clusters {
		c := &result.Clusters[i]
		if c.Diameter <= threshold {
			c.Kept = true
			for _, ip := range c.Hosts {
				result.Kept[ip] = true
			}
		}
	}
	return result, nil
}

// Pruning-engine tuning. The cell count trades prefilter cost against
// bound tightness (64 cells over the log-time support resolves the
// timer structure that separates bot families); the pivot count is the
// depth of the triangle-inequality layer behind it; the calibration
// sample bounds the exhaustive mini-matrix auto-calibration pays — it
// must stay large enough that the subsample resolves the population's
// cluster structure (a too-sparse subsample merges across true cluster
// boundaries and overestimates the cut, which costs speed, never
// correctness); the safety factor widens the calibrated cut so a
// subsample's underestimate of the full population's cluster spreads
// stays above the true requirement.
const (
	hmBoundCells        = 64
	hmPivots            = 8
	hmCalibrationSample = 384
	hmCutSafety         = 2.0
)

// calibrateCut derives the prune/gate distance for HMPrune from a
// deterministic stride subsample of the (address-sorted) clusterable
// hosts: cluster the subsample exhaustively exactly as the full run
// would, take the widest surviving multi-member cluster's true diameter
// — the quantity the equivalence theorem needs the cut to dominate —
// and widen it by hmCutSafety. A subsample with no multi-member
// clusters falls back to its largest observed pairwise distance, which
// prunes little but can never change the result.
func calibrateCut(sigs []*emd.Signature, cfg Config) (float64, error) {
	n := len(sigs)
	m := hmCalibrationSample
	if m > n {
		m = n
	}
	idx := make([]int, m)
	for t := range idx {
		idx[t] = t * n / m
	}
	// The mini-matrix runs without the registry so its exact evaluations
	// stay out of distmatrix/pairs (which must count only the main
	// matrix, keeping Exact ≤ PairsTotal); calibration's cost is
	// reported separately, by this counter and the calibrate stage time.
	cfg.Metrics.Counter("pipeline/hm/calibration_pairs").Add(int64(m) * int64(m-1) / 2)
	mat, err := distmatrix.Compute(context.Background(), m,
		func(i, j int) (float64, error) { return sigs[idx[i]].Distance(sigs[idx[j]]), nil },
		distmatrix.Options{Parallelism: cfg.Parallelism})
	if err != nil {
		return 0, err
	}
	dendro, err := cluster.Agglomerate(m, mat.DistFunc())
	if err != nil {
		return 0, err
	}
	var widest float64
	for _, members := range dendro.CutTopFraction(cfg.CutFraction) {
		if len(members) < 2 {
			continue
		}
		if d := cluster.Diameter(members, mat.DistFunc()); d > widest {
			widest = d
		}
	}
	if widest == 0 {
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if d := mat.At(i, j); d > widest {
					widest = d
				}
			}
		}
	}
	if widest == 0 {
		// Identical histograms everywhere: any positive cut is correct.
		widest = 1
	}
	return widest * hmCutSafety, nil
}

// clusterSpread computes the cluster statistic the τ_hm filter compares:
// mean pairwise distance by default (robust to one contaminated member —
// a bot sitting on an unusually busy host would otherwise blow up its
// cluster's maximum), or the strict maximum when MaxDiameter is set.
func clusterSpread(cfg Config, members []int, dist func(i, j int) float64) float64 {
	if cfg.MaxDiameter {
		return cluster.Diameter(members, dist)
	}
	return cluster.MeanPairwise(members, dist)
}
