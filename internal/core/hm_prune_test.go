package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"plotters/internal/emd"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// pruneCfg is the shared θ_hm operating point for the equivalence
// tests: same shape as the parallel-correctness tests so the corpus
// yields a rich dendrogram (several bot families plus human hosts).
func pruneCfg() Config {
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.3
	return cfg
}

// runHM runs θ_hm over an already-extracted feature source so the
// per-configuration cost is only the clustering, not re-extraction.
func runHM(t testing.TB, src flow.FeatureSource, cfg Config) HMResult {
	t.Helper()
	a, err := NewAnalysisFromSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.HMTest(a.Hosts(), 50)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func pruneSource(t testing.TB) flow.FeatureSource {
	t.Helper()
	cfg := pruneCfg()
	return flow.ExtractFeatureSet(parallelCorpus(t), flow.FeatureOptions{
		NewPeerGrace: cfg.NewPeerGrace,
	}, flow.Window{})
}

// TestHMTestPruneEquivalenceRandomCuts is the satellite property: for
// random cut thresholds — spanning "gates nothing" through "gates
// everything" — the pruned θ_hm (prefilter + pivots, sequential and
// parallel) is bit-identical to the exhaustive-then-gated reference
// (HMPrune off, same HMCut), which computes every exact distance and
// only then applies the sentinel. This is the gated-matrix invariant
// surfacing at the pipeline level.
func TestHMTestPruneEquivalenceRandomCuts(t *testing.T) {
	src := pruneSource(t)
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Log-uniform over ~[0.002, 20]: EMD on the log-time axis for
		// this corpus lives around 0.01–3, so the range crosses from
		// all-sentinel to no-op gating.
		cut := math.Exp(rng.Float64()*9 - 6)
		base := pruneCfg()
		base.HMCut = cut
		base.Parallelism = 1
		want := runHM(t, src, base)
		for _, par := range []int{1, 0} {
			cfg := base
			cfg.HMPrune = true
			cfg.Parallelism = par
			got := runHM(t, src, cfg)
			if !reflect.DeepEqual(got, want) {
				t.Logf("cut=%v parallelism=%d:\n got: %+v\nwant: %+v", cut, par, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestHMTestAutoCalibratedPruneMatchesExhaustive pins the headline
// guarantee: HMPrune with no explicit cut auto-calibrates one wide
// enough that the pruned run reproduces the plain exhaustive run —
// same merges, same diameters, same τ_hm, same Kept set — while the
// engine's counters show pairs were actually skipped.
func TestHMTestAutoCalibratedPruneMatchesExhaustive(t *testing.T) {
	src := pruneSource(t)
	want := runHM(t, src, pruneCfg())

	reg := metrics.New()
	cfg := pruneCfg()
	cfg.HMPrune = true
	cfg.Metrics = reg
	got := runHM(t, src, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("auto-calibrated pruned run diverged from exhaustive\n got: %+v\nwant: %+v", got, want)
	}

	snap := reg.TakeSnapshot()
	total := snap.Counters["distmatrix/pairs_total"]
	if total == 0 {
		t.Fatal("pruned run recorded no pairs_total: pruning engine not engaged")
	}
	pruned := snap.Counters["distmatrix/pairs_pruned_bound"] + snap.Counters["distmatrix/pairs_pruned_pivot"]
	if pruned == 0 {
		t.Error("pruned run skipped no pairs on a multi-family corpus")
	}
	if gauge := snap.Gauges["pipeline/hm/cut_microemd"]; gauge <= 0 {
		t.Errorf("cut_microemd gauge = %d, want > 0 (calibrated cut recorded)", gauge)
	}
	if overcut := snap.Gauges["pipeline/hm/overcut"]; overcut != 0 {
		t.Errorf("overcut gauge = %d, want 0: calibrated cut must dominate every surviving diameter", overcut)
	}
}

// TestHMTestOvercutClamped: an explicit cut far below the data's real
// spreads forces sentinel pairs inside surviving clusters. The result
// must stay finite (diameters clamped, JSON-safe), the overcut gauge
// must record the event, and the pruned path must still match the
// gated exhaustive reference.
func TestHMTestOvercutClamped(t *testing.T) {
	src := pruneSource(t)
	const tiny = 1e-6
	base := pruneCfg()
	base.HMCut = tiny
	want := runHM(t, src, base)

	reg := metrics.New()
	cfg := pruneCfg()
	cfg.HMCut = tiny
	cfg.HMPrune = true
	cfg.Metrics = reg
	got := runHM(t, src, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pruned overcut run diverged from gated exhaustive\n got: %+v\nwant: %+v", got, want)
	}
	for _, c := range got.Clusters {
		if math.IsInf(c.Diameter, 0) || math.IsNaN(c.Diameter) {
			t.Errorf("cluster diameter %v not clamped to a finite value", c.Diameter)
		}
	}
	if math.IsInf(got.Threshold, 0) || math.IsNaN(got.Threshold) {
		t.Errorf("τ_hm = %v not finite", got.Threshold)
	}
	snap := reg.TakeSnapshot()
	if snap.Gauges["pipeline/hm/overcut"] == 0 {
		t.Error("overcut gauge = 0: a 1e-6 cut must sentinel some surviving cluster's pairs")
	}
}

// TestCalibrateCutSubsample drives calibrateCut through the stride
// subsample path (population larger than hmCalibrationSample) and the
// degenerate all-identical population.
func TestCalibrateCutSubsample(t *testing.T) {
	build := func(centers []float64) []*emd.Signature {
		out := make([]*emd.Signature, len(centers))
		for i, c := range centers {
			s, err := emd.NewSignature([]float64{c, c + 1, c + 2}, []float64{1, 2, 1})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = s
		}
		return out
	}
	// Two tight families well apart, with continuous intra-family
	// jitter (so surviving clusters have positive diameters and the
	// no-multi-member fallback stays out of play): the calibrated cut
	// must cover the intra-family spread and stay below the
	// inter-family distance so pruning has something to skip.
	centers := make([]float64, 3*hmCalibrationSample)
	for i := range centers {
		centers[i] = float64(i%2)*50 + 0.001*float64(i)
	}
	cut, err := calibrateCut(build(centers), pruneCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cut <= 0 {
		t.Fatalf("calibrated cut = %v, want > 0", cut)
	}
	if cut >= 50 {
		t.Errorf("calibrated cut = %v spans the inter-family gap: nothing would prune", cut)
	}

	// Identical histograms everywhere: all distances zero, fallback 1×safety.
	flat := make([]float64, 2*hmCalibrationSample)
	cut, err = calibrateCut(build(flat), pruneCfg())
	if err != nil {
		t.Fatal(err)
	}
	if cut != hmCutSafety {
		t.Errorf("degenerate calibration cut = %v, want %v", cut, hmCutSafety)
	}
}

func TestConfigHMCutValidation(t *testing.T) {
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		cfg := DefaultConfig()
		cfg.HMCut = bad
		if err := cfg.Validate(); err == nil {
			t.Errorf("HMCut = %v accepted", bad)
		}
	}
	cfg := DefaultConfig()
	cfg.HMCut = 0.25
	cfg.HMPrune = true
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid prune config rejected: %v", err)
	}
}
