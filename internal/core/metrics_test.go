package core

import (
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// pipelineRecords builds a small population where every stage of
// FindPlotters has work to do: machine-timed low-volume bots, a
// high-volume trader-like host, and quiet background hosts.
func pipelineRecords() []flow.Record {
	var records []flow.Record
	// Four bot-like hosts: high failure rate, low (but distinct) volume,
	// tight timers — the low-volume half survives θ_vol into θ_hm.
	for i := 0; i < 4; i++ {
		h := mkHost{addr: flow.IP(i + 1), flows: 150, failEach: 2, bytes: uint64(100 + i*10),
			peers: 8, period: 30 * time.Second, jitterNS: int64(i+1) * 1000}
		records = append(records, h.records()...)
	}
	// A trader-like host: fails often but ships big flows.
	records = append(records, mkHost{addr: 10, flows: 150, failEach: 3, bytes: 800000,
		peers: 40, period: 45 * time.Second, jitterNS: 7919}.records()...)
	// Background hosts: rare failures keep the reduction median low.
	for i := 0; i < 8; i++ {
		h := mkHost{addr: flow.IP(20 + i), flows: 40, failEach: 20, bytes: 3000,
			peers: 20, period: 2 * time.Minute, jitterNS: int64(i) * 1e7}
		records = append(records, h.records()...)
	}
	return records
}

// The instrumented pipeline must report every stage's duration and the
// survivor count of every filter — and produce the identical detection
// result as the uninstrumented run.
func TestFindPlottersMetrics(t *testing.T) {
	records := pipelineRecords()

	plain, err := FindPlotters(records, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	cfg := DefaultConfig()
	cfg.Metrics = reg
	instrumented, err := FindPlotters(records, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Suspects, instrumented.Suspects) {
		t.Errorf("metrics changed the suspect set: %v vs %v", plain.Suspects, instrumented.Suspects)
	}

	snap := reg.TakeSnapshot()
	stages := make(map[string]metrics.StageSnapshot, len(snap.Stages))
	for _, s := range snap.Stages {
		stages[s.Name] = s
	}
	for _, want := range []string{
		"pipeline", "pipeline/extract", "pipeline/reduction", "pipeline/vol",
		"pipeline/churn", "pipeline/hm", "pipeline/hm/histograms",
		"pipeline/hm/signatures", "pipeline/hm/matrix", "pipeline/hm/cluster",
	} {
		s, ok := stages[want]
		if !ok {
			t.Errorf("stage %q missing from snapshot", want)
			continue
		}
		if s.Count != 1 {
			t.Errorf("stage %q ran %d times, want 1", want, s.Count)
		}
		if s.TotalSeconds < 0 {
			t.Errorf("stage %q has negative duration", want)
		}
	}
	// The sub-stages cannot exceed their parent.
	if hm := stages["pipeline/hm"]; stages["pipeline/hm/matrix"].TotalSeconds > hm.TotalSeconds {
		t.Errorf("hm/matrix (%v) longer than hm (%v)",
			stages["pipeline/hm/matrix"].TotalSeconds, hm.TotalSeconds)
	}

	wantGauges := map[string]int64{
		"pipeline/hosts/analyzed":  int64(len(instrumented.Analysis.Hosts())),
		"pipeline/hosts/reduction": int64(len(instrumented.Reduction.Kept)),
		"pipeline/hosts/vol":       int64(len(instrumented.Volume.Kept)),
		"pipeline/hosts/churn":     int64(len(instrumented.Churn.Kept)),
		"pipeline/hosts/union":     int64(len(instrumented.Volume.Kept.Union(instrumented.Churn.Kept))),
		"pipeline/hosts/suspects":  int64(len(instrumented.Suspects)),
		"pipeline/hm/clustered":    int64(instrumented.HM.Clustered),
		"pipeline/hm/skipped":      int64(instrumented.HM.Skipped),
		"pipeline/hm/clusters":     int64(len(instrumented.HM.Clusters)),
	}
	for name, want := range wantGauges {
		if got, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing from snapshot", name)
		} else if got != want {
			t.Errorf("gauge %q = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["pipeline/records"] != int64(len(records)) {
		t.Errorf("pipeline/records = %d, want %d", snap.Counters["pipeline/records"], len(records))
	}
}

// A nil registry must not disturb the pipeline (the zero-cost path).
func TestFindPlottersNilMetrics(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Metrics != nil {
		t.Fatal("default config should not carry a registry")
	}
	if _, err := FindPlotters(pipelineRecords(), nil, cfg); err != nil {
		t.Fatal(err)
	}
}
