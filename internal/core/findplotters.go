package core

import (
	"fmt"

	"plotters/internal/flow"
)

// Result is the full outcome of FindPlotters, exposing every intermediate
// stage so callers can reproduce the paper's stage-by-stage refinement
// figures.
type Result struct {
	// Analysis gives access to the extracted per-host features.
	Analysis *Analysis
	// Reduction is the initial data-reduction outcome; its Kept set is
	// the paper's input set S.
	Reduction Reduction
	// Volume is θ_vol applied to S.
	Volume TestResult
	// Churn is θ_churn applied to S.
	Churn TestResult
	// HM is θ_hm applied to S_vol ∪ S_churn.
	HM HMResult
	// Suspects is the final output, S_hm.
	Suspects HostSet
}

// FindPlotters runs the complete pipeline of Figure 4 over one detection
// window: initial reduction, θ_vol and θ_churn over the reduced set, and
// θ_hm over the union of their survivors. internal selects monitored
// addresses (nil = every initiator).
func FindPlotters(records []flow.Record, internal func(flow.IP) bool, cfg Config) (*Result, error) {
	analysis, err := NewAnalysis(records, internal, cfg)
	if err != nil {
		return nil, err
	}
	return analysis.FindPlotters()
}

// FindPlotters runs the pipeline over an existing analysis. When
// cfg.Metrics is set, each stage's wall time lands under the
// "pipeline/..." stages and each filter's survivor count under the
// "pipeline/hosts/..." gauges.
func (a *Analysis) FindPlotters() (*Result, error) {
	return a.runPipeline(func(union HostSet) (HMResult, error) {
		return a.HMTest(union, a.cfg.HMPercentile)
	})
}

// runPipeline is the stage driver shared by the single-process pipeline
// and the distributed GlobalPass: initial reduction, θ_vol and θ_churn
// over the reduced set, then the supplied θ_hm implementation over the
// union of their survivors. The two callers differ only in where θ_hm's
// per-host histogram signatures come from — raw interstitial samples
// (HMTest) or precomputed shard sketches (hmFromSketches) — so every
// threshold, gauge, and stage timer stays identical between them.
func (a *Analysis) runPipeline(hm func(HostSet) (HMResult, error)) (*Result, error) {
	reg := a.cfg.Metrics
	total := reg.StartStage("pipeline")
	reg.Gauge("pipeline/hosts/analyzed").Set(int64(len(a.feats)))

	t := total.Child("reduction")
	red, err := a.Reduce()
	if err != nil {
		return nil, fmt.Errorf("core: reduction: %w", err)
	}
	t.Stop()
	reg.Gauge("pipeline/hosts/reduction").Set(int64(len(red.Kept)))

	t = total.Child("vol")
	vol, err := a.VolumeTest(red.Kept, a.cfg.VolPercentile)
	if err != nil {
		return nil, fmt.Errorf("core: vol: %w", err)
	}
	t.Stop()
	reg.Gauge("pipeline/hosts/vol").Set(int64(len(vol.Kept)))

	t = total.Child("churn")
	churn, err := a.ChurnTest(red.Kept, a.cfg.ChurnPercentile)
	if err != nil {
		return nil, fmt.Errorf("core: churn: %w", err)
	}
	t.Stop()
	reg.Gauge("pipeline/hosts/churn").Set(int64(len(churn.Kept)))

	union := vol.Kept.Union(churn.Kept)
	reg.Gauge("pipeline/hosts/union").Set(int64(len(union)))
	t = total.Child("hm")
	hmRes, err := hm(union)
	if err != nil {
		return nil, fmt.Errorf("core: hm: %w", err)
	}
	t.Stop()
	reg.Gauge("pipeline/hosts/suspects").Set(int64(len(hmRes.Kept)))
	total.Stop()

	return &Result{
		Analysis:  a,
		Reduction: red,
		Volume:    vol,
		Churn:     churn,
		HM:        hmRes,
		Suspects:  hmRes.Kept,
	}, nil
}
