// Package core implements the paper's contribution: the FindPlotters
// detection pipeline (§IV). Given one detection window of border flow
// records, it runs
//
//	S            ← initial data reduction (failed-connection rate ≥ median)   §V-A
//	S_vol        ← θ_vol(Λ, S, τ_vol)       hosts with low upload volume      §IV-A
//	S_churn      ← θ_churn(Λ, S, τ_churn)   hosts with low peer churn         §IV-B
//	S_hm         ← θ_hm(Λ, S_vol ∪ S_churn, τ_hm)  machine-timed clusters     §IV-C
//
// and reports S_hm as the suspected Plotters. Every threshold is a
// percentile of the observed population, never a fixed constant — the
// property the paper's evasion analysis (§VI) builds on.
package core

import (
	"fmt"
	"math"
	"time"

	"plotters/internal/flow"
	"plotters/internal/metrics"
	"plotters/internal/stats"
)

// Config tunes the pipeline. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// VolPercentile positions τ_vol within the per-host average
	// bytes-per-flow distribution (the paper uses the 50th percentile).
	VolPercentile float64
	// ChurnPercentile positions τ_churn within the per-host new-peer
	// fraction distribution (paper: 50th).
	ChurnPercentile float64
	// HMPercentile positions τ_hm within the cluster-diameter
	// distribution. The paper operates at the 70th percentile of strict
	// max-pairwise diameters over a campus-scale population; with the
	// smaller synthesized population and the default mean-pairwise
	// spread statistic, the equivalent operating point sits at the 30th
	// percentile (see EXPERIMENTS.md). The ROC experiments sweep this
	// parameter exactly as the paper does.
	HMPercentile float64
	// CutFraction is the fraction of heaviest dendrogram links removed
	// when forming clusters. The paper cuts 5% at campus scale
	// (thousands of clusterable hosts); at the few-hundred-host scale of
	// the synthesized evaluation the same granularity needs a larger
	// fraction, so DefaultConfig uses 0.15. Set 0.05 to mirror the paper
	// exactly on large populations.
	CutFraction float64
	// MinInterstitialSamples is the minimum number of per-destination
	// interstitial time observations a host needs to participate in
	// θ_hm clustering.
	MinInterstitialSamples int
	// MaxHistogramBins caps histogram resolution (see package histogram).
	MaxHistogramBins int
	// NewPeerGrace is the churn feature's warm-up period (paper: the
	// host's first hour of activity).
	NewPeerGrace time.Duration
	// MaxDiameter uses the strict maximum pairwise distance as the
	// cluster diameter in θ_hm instead of the default mean pairwise
	// distance. The mean is robust to a single outlying member; the
	// maximum is the literal reading of "diameter". Kept for ablation.
	MaxDiameter bool
	// RawTimeScale disables the log-time transform applied to
	// interstitial samples before histogram construction. On the raw
	// axis, EMD is dominated by heavy tail gaps (hours) and the
	// second-scale timer structure that distinguishes machine-driven
	// traffic is invisible; the log axis weighs relative timing
	// differences. Kept as an option for ablation studies.
	RawTimeScale bool
	// Parallelism bounds the worker pool used for θ_hm's pairwise EMD
	// distance matrix — the pipeline's dominant cost at scale. 0 means
	// one worker per CPU; 1 forces fully sequential execution (useful
	// for reproducible benchmarking and debugging). The detection output
	// is identical at every setting; only wall-clock time changes.
	Parallelism int
	// HMPrune enables the layered pruning engine for θ_hm's pairwise
	// EMD matrix: a coarsened-CDF prefilter and pivot triangle bounds
	// skip the exact EMD evaluation of every pair provably above the
	// clustering cut (see internal/distmatrix). With HMCut = 0 the cut
	// is auto-calibrated from a deterministic host subsample sized so
	// the result reproduces the exhaustive run bit for bit; an explicit
	// HMCut skips calibration. Pruning pays at thousands of clusterable
	// hosts — it cuts exact EMD calls by orders of magnitude — and is
	// within noise below a few hundred.
	HMPrune bool
	// HMCut is the explicit prune/gate distance for θ_hm: pairwise EMD
	// values above it are recorded as the above-cut sentinel that
	// clustering never merges below the cut. It applies with or without
	// HMPrune — without, every exact distance is still computed and then
	// gated, which is the reference the equivalence tests compare the
	// pruned path against. 0 means no explicit cut (exhaustive when
	// HMPrune is off, auto-calibrated when on).
	HMCut float64
	// Metrics, when non-nil, receives per-stage wall times, candidate-set
	// sizes, and distance-matrix worker statistics from every pipeline
	// run (see the run-report flags on cmd/plotfind and
	// cmd/experiments). Nil disables instrumentation at zero cost; the
	// detection output is identical either way.
	Metrics *metrics.Registry
}

// DefaultConfig returns the paper's operating point.
func DefaultConfig() Config {
	return Config{
		VolPercentile:          50,
		ChurnPercentile:        50,
		HMPercentile:           30,
		CutFraction:            0.15,
		MinInterstitialSamples: 100,
		MaxHistogramBins:       256,
		NewPeerGrace:           time.Hour,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"VolPercentile", c.VolPercentile},
		{"ChurnPercentile", c.ChurnPercentile},
		{"HMPercentile", c.HMPercentile},
	} {
		if p.v < 0 || p.v > 100 {
			return fmt.Errorf("core: %s = %v outside [0,100]", p.name, p.v)
		}
	}
	if c.CutFraction < 0 || c.CutFraction >= 1 {
		return fmt.Errorf("core: CutFraction = %v outside [0,1)", c.CutFraction)
	}
	if c.MinInterstitialSamples < 2 {
		return fmt.Errorf("core: MinInterstitialSamples = %d must be >= 2", c.MinInterstitialSamples)
	}
	if c.NewPeerGrace <= 0 {
		return fmt.Errorf("core: NewPeerGrace must be positive")
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism = %d must be >= 0 (0 = all CPUs)", c.Parallelism)
	}
	if c.HMCut < 0 || math.IsNaN(c.HMCut) || math.IsInf(c.HMCut, 0) {
		return fmt.Errorf("core: HMCut = %v must be a finite value >= 0", c.HMCut)
	}
	return nil
}

// HostSet is a set of internal host addresses.
type HostSet map[flow.IP]bool

// NewHostSet builds a set from addresses.
func NewHostSet(hosts ...flow.IP) HostSet {
	s := make(HostSet, len(hosts))
	for _, h := range hosts {
		s[h] = true
	}
	return s
}

// Union returns s ∪ t.
func (s HostSet) Union(t HostSet) HostSet {
	out := make(HostSet, len(s)+len(t))
	for h := range s {
		out[h] = true
	}
	for h := range t {
		out[h] = true
	}
	return out
}

// Intersect returns s ∩ t.
func (s HostSet) Intersect(t HostSet) HostSet {
	out := make(HostSet)
	for h := range s {
		if t[h] {
			out[h] = true
		}
	}
	return out
}

// Sorted returns the members in ascending address order.
func (s HostSet) Sorted() []flow.IP {
	hosts := make([]flow.IP, 0, len(s))
	for h := range s {
		hosts = append(hosts, h)
	}
	sortIPs(hosts)
	return hosts
}

func sortIPs(hosts []flow.IP) {
	for i := 1; i < len(hosts); i++ {
		for j := i; j > 0 && hosts[j] < hosts[j-1]; j-- {
			hosts[j], hosts[j-1] = hosts[j-1], hosts[j]
		}
	}
}

// Analysis holds the per-host features of one detection window, shared
// by all tests so the features are materialized once. It no longer
// cares where the features came from: batch extraction over a record
// slice, an incremental StreamExtractor, or the sharded store behind
// the windowed engine all feed it through flow.FeatureSource.
type Analysis struct {
	cfg    Config
	feats  map[flow.IP]*flow.HostFeatures
	window flow.Window
}

// NewAnalysis extracts features for internal hosts from the window's
// records and wraps them for detection — the batch FeatureSource path.
// internal selects the monitored addresses (nil = every initiator).
func NewAnalysis(records []flow.Record, internal func(flow.IP) bool, cfg Config) (*Analysis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := cfg.Metrics.StartStage("pipeline/extract")
	src := flow.ExtractFeatureSet(records, flow.FeatureOptions{
		Hosts:        internal,
		NewPeerGrace: cfg.NewPeerGrace,
	}, flow.Window{})
	t.Stop()
	cfg.Metrics.Counter("pipeline/records").Add(int64(len(records)))
	return NewAnalysisFromSource(src, cfg)
}

// NewAnalysisFromSource wraps already-accumulated features for
// detection. The source's feature map is referenced, not copied; the
// caller must not keep mutating it (seal or snapshot streaming stores
// first).
func NewAnalysisFromSource(src flow.FeatureSource, cfg Config) (*Analysis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil feature source")
	}
	return &Analysis{cfg: cfg, feats: src.Features(), window: src.Window()}, nil
}

// Features exposes the extracted per-host features.
func (a *Analysis) Features() map[flow.IP]*flow.HostFeatures { return a.feats }

// Window returns the observation bounds the features cover (zero if
// the source did not declare them).
func (a *Analysis) Window() flow.Window { return a.window }

// Hosts returns every analyzed host.
func (a *Analysis) Hosts() HostSet {
	s := make(HostSet, len(a.feats))
	for h := range a.feats {
		s[h] = true
	}
	return s
}

// featureValues collects get(features) over the members of s in
// deterministic order.
func (a *Analysis) featureValues(s HostSet, get func(*flow.HostFeatures) float64) []float64 {
	hosts := s.Sorted()
	vals := make([]float64, 0, len(hosts))
	for _, h := range hosts {
		if f, ok := a.feats[h]; ok {
			vals = append(vals, get(f))
		}
	}
	return vals
}

// percentileThreshold computes the pct-th percentile of a feature over s.
func (a *Analysis) percentileThreshold(s HostSet, pct float64, get func(*flow.HostFeatures) float64) (float64, error) {
	vals := a.featureValues(s, get)
	if len(vals) == 0 {
		return 0, fmt.Errorf("core: no hosts to compute threshold over")
	}
	return stats.Percentile(vals, pct)
}
