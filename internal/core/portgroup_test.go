package core

import (
	"math/rand"
	"testing"
	"time"

	"plotters/internal/flow"
)

func TestDefaultPortGrouper(t *testing.T) {
	tests := []struct {
		port uint16
		want string
	}{
		{80, "web"}, {443, "web"}, {993, "mail"}, {53, "infra"},
		{6346, "gnutella"}, {4662, "emule"}, {6881, "bittorrent"},
		{8, "other"}, {5555, "port-5555"},
	}
	for _, tt := range tests {
		r := &flow.Record{DstPort: tt.port}
		if got := DefaultPortGrouper(r); got != tt.want {
			t.Errorf("port %d -> %q, want %q", tt.port, got, tt.want)
		}
	}
}

// TestFindPlottersByApplication plants a bot's control channel on the
// same host as a heavy file-sharer: blended, the host's volume is
// Trader-like; split by port group, the bot's group must be flagged.
func TestFindPlottersByApplication(t *testing.T) {
	var records []flow.Record
	at := t0()
	rng := rand.New(rand.NewSource(3))
	infected := flow.IP(1)

	// Bot control traffic on TCP port 8: tiny periodic flows to a fixed
	// peer set, half failing.
	botPeers := []flow.IP{0x08000001, 0x08000002, 0x08000003}
	tick := at
	for i := 0; i < 400; i++ {
		state := flow.StateEstablished
		if i%2 == 0 {
			state = flow.StateFailed
		}
		records = append(records, flow.Record{
			Src: infected, Dst: botPeers[i%len(botPeers)], SrcPort: 5000, DstPort: 8,
			Proto: flow.TCP, Start: tick, End: tick.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: 90, DstBytes: 50, State: state,
		})
		tick = tick.Add(25 * time.Second)
	}
	// Two more hosts running the same bot (the botnet commonality θ_hm
	// needs), without the file-sharing cover.
	for b := 0; b < 2; b++ {
		tick = at
		host := flow.IP(2 + uint32(b))
		for i := 0; i < 400; i++ {
			state := flow.StateEstablished
			if i%2 == 0 {
				state = flow.StateFailed
			}
			records = append(records, flow.Record{
				Src: host, Dst: botPeers[i%len(botPeers)] + flow.IP(b+1)*16, SrcPort: 5000, DstPort: 8,
				Proto: flow.TCP, Start: tick, End: tick.Add(time.Second),
				SrcPkts: 1, DstPkts: 1, SrcBytes: 90, DstBytes: 50, State: state,
			})
			tick = tick.Add(25 * time.Second)
		}
	}
	// The infected host is ALSO a heavy BitTorrent user: huge transfers
	// on 6881 that would dominate the blended average.
	tick = at
	for i := 0; i < 200; i++ {
		state := flow.StateEstablished
		if i%3 == 0 {
			state = flow.StateFailed
		}
		records = append(records, flow.Record{
			Src: infected, Dst: flow.IP(0x09000000 + uint32(rng.Intn(500))), SrcPort: 5001, DstPort: 6881,
			Proto: flow.TCP, Start: tick, End: tick.Add(time.Minute),
			SrcPkts: 500, DstPkts: 500, SrcBytes: uint64(200_000 + rng.Intn(400_000)), DstBytes: 100_000, State: state,
		})
		tick = tick.Add(time.Duration(10+rng.Intn(200)) * time.Second)
	}
	// Background hosts: web browsing with spread failure rates.
	for h := 0; h < 10; h++ {
		tick = at
		failEvery := 3 + h
		for i := 0; i < 250; i++ {
			state := flow.StateEstablished
			if i%failEvery == 0 {
				state = flow.StateFailed
			}
			records = append(records, flow.Record{
				Src: flow.IP(100 + uint32(h)), Dst: flow.IP(0x0A000000 + uint32(rng.Intn(60))), SrcPort: 5002, DstPort: 80,
				Proto: flow.TCP, Start: tick, End: tick.Add(2 * time.Second),
				SrcPkts: 3, DstPkts: 5, SrcBytes: uint64(400 + rng.Intn(2500)), DstBytes: 9000, State: state,
			})
			tick = tick.Add(time.Duration(float64(time.Second) * (0.5 + rng.ExpFloat64()*float64(2+h))))
		}
	}

	// Blended features on the infected host look Trader-like in volume.
	blended := ExtractFeaturesForTest(records, infected)
	if blended < 10_000 {
		t.Fatalf("test setup: blended avg bytes/flow = %v, want Trader-scale", blended)
	}

	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.3
	cfg.VolPercentile = 70
	cfg.ChurnPercentile = 70
	res, err := FindPlottersByApplication(records, nil, cfg, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	groups, flagged := res.Suspects[infected]
	if !flagged {
		t.Fatalf("infected host not flagged; suspects = %v", res.Suspects)
	}
	found := false
	for _, g := range groups {
		if g == "other" { // TCP port 8 buckets into "other"
			found = true
		}
	}
	if !found {
		t.Errorf("bot port group not identified: %v", groups)
	}
	// The mapping must resolve every virtual suspect.
	for addr := range res.Result.Suspects {
		if _, ok := res.Mapping[addr]; !ok {
			t.Errorf("unmapped virtual host %v", addr)
		}
	}
}

// ExtractFeaturesForTest returns the blended avg-bytes-per-flow of one
// host (test helper kept exported-in-test via the internal package).
func ExtractFeaturesForTest(records []flow.Record, host flow.IP) float64 {
	feats := flow.ExtractFeatures(records, flow.FeatureOptions{})
	f := feats[host]
	if f == nil {
		return 0
	}
	return f.AvgBytesPerFlow()
}

func TestFindPlottersByApplicationValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := FindPlottersByApplication(nil, nil, cfg, nil, 5); err == nil {
		t.Error("empty records accepted")
	}
	bad := cfg
	bad.CutFraction = -1
	h := mkHost{addr: 1, flows: 50, bytes: 10, peers: 2, period: time.Second}
	if _, err := FindPlottersByApplication(h.records(), nil, bad, nil, 5); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFindPlottersByApplicationMinFlows(t *testing.T) {
	// Hosts with fewer than minFlows flows per group are excluded.
	h1 := mkHost{addr: 1, flows: 100, failEach: 2, bytes: 50, peers: 3, period: 20 * time.Second}
	h2 := mkHost{addr: 2, flows: 100, failEach: 2, bytes: 50, peers: 3, period: 20 * time.Second}
	sparse := mkHost{addr: 3, flows: 5, bytes: 50, peers: 2, period: time.Second}
	records := append(append(h1.records(), h2.records()...), sparse.records()...)
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 10
	res, err := FindPlottersByApplication(records, nil, cfg, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	for addr, vh := range res.Mapping {
		if vh.Host == 3 {
			t.Errorf("sparse host got virtual address %v", addr)
		}
	}
}
