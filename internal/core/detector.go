package core

import (
	"fmt"

	"plotters/internal/flow"
)

// Detection is one detector's verdict over a sealed detection window.
// It is the common currency of the multi-detector framework: the
// windowed engine collects one Detection per configured detector per
// window, and the evaluation suite scores and combines them (union,
// intersection, k-of-n vote).
type Detection struct {
	// Detector names the detector that produced this verdict (stable,
	// e.g. "findplotters" or "community").
	Detector string
	// Suspects is the detector's flagged host set.
	Suspects HostSet
	// Paper carries the full FindPlotters stage-by-stage outcome when
	// the verdict came from the paper pipeline; nil otherwise.
	Paper *Result
	// Details carries a detector-specific report (for the community
	// detector, its graph and community summary); may be nil.
	Details any
}

// Detector is the seam every per-window detector implements. The paper
// pipeline (PaperDetector) and the mutual-contact community detector
// (internal/community) are the two implementations; the windowed engine
// runs any number of them over each sealed window's FeatureSource.
//
// Detect must be deterministic in its input: the same feature source
// must always yield the same suspect set, whatever the accumulation
// path (batch, streamed, sharded) that built it.
type Detector interface {
	// Name returns the detector's stable identifier.
	Name() string
	// Detect runs the detector over one sealed window's features.
	Detect(src flow.FeatureSource) (*Detection, error)
}

// PaperName is the paper pipeline's detector identifier.
const PaperName = "findplotters"

// PaperDetector adapts the paper's FindPlotters pipeline to the
// Detector interface — the original hardcoded pipeline as one
// implementation among equals.
type PaperDetector struct {
	cfg Config
}

// NewPaperDetector wraps the paper pipeline at the given operating
// point.
func NewPaperDetector(cfg Config) (*PaperDetector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PaperDetector{cfg: cfg}, nil
}

// Name implements Detector.
func (d *PaperDetector) Name() string { return PaperName }

// Config returns the wrapped pipeline configuration.
func (d *PaperDetector) Config() Config { return d.cfg }

// Detect implements Detector: the full reduction → θ_vol → θ_churn →
// θ_hm pipeline over the source's features, with the complete
// stage-by-stage Result attached as Detection.Paper.
func (d *PaperDetector) Detect(src flow.FeatureSource) (*Detection, error) {
	analysis, err := NewAnalysisFromSource(src, d.cfg)
	if err != nil {
		return nil, err
	}
	res, err := analysis.FindPlotters()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Name(), err)
	}
	return &Detection{
		Detector: d.Name(),
		Suspects: res.Suspects,
		Paper:    res,
	}, nil
}
