package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

func t0() time.Time {
	return time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"vol percentile low", func(c *Config) { c.VolPercentile = -1 }},
		{"vol percentile high", func(c *Config) { c.VolPercentile = 101 }},
		{"churn percentile", func(c *Config) { c.ChurnPercentile = 200 }},
		{"hm percentile", func(c *Config) { c.HMPercentile = -5 }},
		{"cut fraction negative", func(c *Config) { c.CutFraction = -0.1 }},
		{"cut fraction one", func(c *Config) { c.CutFraction = 1 }},
		{"min samples", func(c *Config) { c.MinInterstitialSamples = 1 }},
		{"grace", func(c *Config) { c.NewPeerGrace = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestHostSetOps(t *testing.T) {
	a := NewHostSet(1, 2, 3)
	b := NewHostSet(3, 4)
	u := a.Union(b)
	if len(u) != 4 || !u[1] || !u[4] {
		t.Errorf("Union = %v", u)
	}
	i := a.Intersect(b)
	if len(i) != 1 || !i[3] {
		t.Errorf("Intersect = %v", i)
	}
	sorted := u.Sorted()
	if !reflect.DeepEqual(sorted, []flow.IP{1, 2, 3, 4}) {
		t.Errorf("Sorted = %v", sorted)
	}
	// Union must not mutate the operands.
	if len(a) != 3 || len(b) != 2 {
		t.Error("Union mutated operands")
	}
}

// mkHost emits flows for one host: total flows, failure rate, bytes per
// flow, number of distinct peers, and an optional fixed timer that drives
// repeated contacts (machine-like behavior).
type mkHost struct {
	addr     flow.IP
	flows    int
	failEach int // every failEach-th flow fails (0 = never)
	bytes    uint64
	peers    int
	period   time.Duration // interstitial gap between flows
	jitterNS int64         // per-flow deterministic "jitter"
}

func (h mkHost) records() []flow.Record {
	out := make([]flow.Record, 0, h.flows)
	at := t0()
	for i := 0; i < h.flows; i++ {
		dst := flow.IP(0x08000000 + uint32(h.addr)*1000 + uint32(i%h.peers))
		state := flow.StateEstablished
		if h.failEach > 0 && i%h.failEach == 0 {
			state = flow.StateFailed
		}
		out = append(out, flow.Record{
			Src: h.addr, Dst: dst, SrcPort: 40000, DstPort: 80, Proto: flow.TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 2, DstPkts: 2, SrcBytes: h.bytes, DstBytes: 100,
			State: state,
		})
		at = at.Add(h.period + time.Duration(int64(i)*h.jitterNS))
	}
	return out
}

func TestReduce(t *testing.T) {
	var records []flow.Record
	// Four hosts with failure rates 0.5, 0.33, 0.1, 0.05 (every 2nd, 3rd,
	// 10th, 20th flow fails).
	for i, failEach := range []int{2, 3, 10, 20} {
		h := mkHost{addr: flow.IP(i + 1), flows: 60, failEach: failEach, bytes: 100, peers: 10, period: time.Minute}
		records = append(records, h.records()...)
	}
	a, err := NewAnalysis(records, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	red, err := a.Reduce()
	if err != nil {
		t.Fatal(err)
	}
	if red.Eligible != 4 {
		t.Errorf("eligible = %d, want 4", red.Eligible)
	}
	// Median of {0.5, 0.333, 0.1, 0.05} ≈ 0.217: the two high-failure
	// hosts stay.
	if len(red.Kept) != 2 || !red.Kept[1] || !red.Kept[2] {
		t.Errorf("kept = %v (threshold %v)", red.Kept.Sorted(), red.Threshold)
	}
}

func TestReduceNoSuccessfulFlows(t *testing.T) {
	h := mkHost{addr: 1, flows: 10, failEach: 1, bytes: 10, peers: 2, period: time.Second}
	a, err := NewAnalysis(h.records(), nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Reduce(); err == nil {
		t.Error("expected error when no host has successful flows")
	}
}

func TestVolumeTest(t *testing.T) {
	var records []flow.Record
	sizes := []uint64{100, 200, 400, 800, 1600}
	for i, size := range sizes {
		h := mkHost{addr: flow.IP(i + 1), flows: 20, bytes: size, peers: 5, period: time.Minute}
		records = append(records, h.records()...)
	}
	a, err := NewAnalysis(records, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := a.Hosts()
	res, err := a.VolumeTest(all, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Median avg-bytes = 400; hosts strictly below survive.
	if res.Threshold != 400 {
		t.Errorf("threshold = %v, want 400", res.Threshold)
	}
	if len(res.Kept) != 2 || !res.Kept[1] || !res.Kept[2] {
		t.Errorf("kept = %v", res.Kept.Sorted())
	}
	// Empty input yields empty output, no error.
	empty, err := a.VolumeTest(HostSet{}, 50)
	if err != nil || len(empty.Kept) != 0 {
		t.Errorf("empty input: %v, %v", empty.Kept, err)
	}
}

func TestChurnTest(t *testing.T) {
	// Host 1: contacts 10 peers in its first hour only (0% new).
	// Host 2: contacts 5 peers in hour one, 15 after (75% new).
	var records []flow.Record
	low := mkHost{addr: 1, flows: 40, bytes: 100, peers: 10, period: time.Minute}
	records = append(records, low.records()...)

	at := t0()
	for i := 0; i < 20; i++ {
		gap := time.Minute
		if i >= 5 {
			gap = 20 * time.Minute // pushes later contacts past the grace hour
		}
		records = append(records, flow.Record{
			Src: 2, Dst: flow.IP(0x09000000 + uint32(i)), SrcPort: 4000, DstPort: 80,
			Proto: flow.TCP, Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 10, State: flow.StateEstablished,
		})
		at = at.Add(gap)
	}
	a, err := NewAnalysis(records, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.ChurnTest(a.Hosts(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Kept[1] || res.Kept[2] {
		t.Errorf("kept = %v (threshold %v)", res.Kept.Sorted(), res.Threshold)
	}
}

func TestHMTestClustersMachineHosts(t *testing.T) {
	var records []flow.Record
	// Three "bots" with an identical 30-second timer.
	for i := 0; i < 3; i++ {
		h := mkHost{addr: flow.IP(i + 1), flows: 150, bytes: 100, peers: 3, period: 30 * time.Second}
		records = append(records, h.records()...)
	}
	// Three "humans" with increasingly stretched, irregular gaps.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3; i++ {
		at := t0()
		for j := 0; j < 150; j++ {
			records = append(records, flow.Record{
				Src: flow.IP(10 + i), Dst: flow.IP(0x0A000000 + uint32(j%3)),
				SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 10, State: flow.StateEstablished,
			})
			at = at.Add(time.Duration((1 + rng.ExpFloat64()*float64(20*(i+1))) * float64(time.Second)))
		}
	}
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.4 // few hosts: cut aggressively to isolate groups
	a, err := NewAnalysis(records, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.HMTest(a.Hosts(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustered != 6 {
		t.Fatalf("clustered = %d, want 6", res.Clustered)
	}
	// The three machine hosts must end up in one kept cluster together.
	var machineCluster *HMCluster
	for i := range res.Clusters {
		c := &res.Clusters[i]
		members := NewHostSet(c.Hosts...)
		if members[1] && members[2] && members[3] {
			machineCluster = c
		}
	}
	if machineCluster == nil {
		t.Fatalf("machine hosts not co-clustered: %+v", res.Clusters)
	}
	if !machineCluster.Kept {
		t.Errorf("machine cluster filtered out (diameter %v, τ %v)", machineCluster.Diameter, res.Threshold)
	}
	if !res.Kept[1] || !res.Kept[2] || !res.Kept[3] {
		t.Errorf("kept = %v", res.Kept.Sorted())
	}
}

func TestHMTestSkipsLowSampleHosts(t *testing.T) {
	var records []flow.Record
	// One busy machine-like pair and one host with too few samples.
	for i := 0; i < 2; i++ {
		h := mkHost{addr: flow.IP(i + 1), flows: 200, bytes: 100, peers: 4, period: 10 * time.Second}
		records = append(records, h.records()...)
	}
	sparse := mkHost{addr: 9, flows: 5, bytes: 100, peers: 2, period: time.Minute}
	records = append(records, sparse.records()...)

	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 50
	a, err := NewAnalysis(records, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.HMTest(a.Hosts(), 90)
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", res.Skipped)
	}
	if res.Kept[9] {
		t.Error("low-sample host must not pass θ_hm")
	}
}

func TestHMTestTooFewHosts(t *testing.T) {
	h := mkHost{addr: 1, flows: 100, bytes: 100, peers: 3, period: 10 * time.Second}
	a, err := NewAnalysis(h.records(), nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.HMTest(a.Hosts(), 70)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != 0 || len(res.Clusters) != 0 {
		t.Errorf("single host should produce no clusters: %+v", res)
	}
}

func TestFindPlottersEndToEnd(t *testing.T) {
	var records []flow.Record
	// Bots: small flows, few repeat peers, high failure, fixed timer.
	for i := 0; i < 3; i++ {
		h := mkHost{addr: flow.IP(i + 1), flows: 300, failEach: 2, bytes: 80, peers: 4, period: 20 * time.Second}
		records = append(records, h.records()...)
	}
	// Normal hosts: bigger flows, irregular timing, and a *spread* of
	// failure rates (1/3 down to 1/14) so the median-based reduction
	// keeps a realistic mix of bots and flaky-but-normal hosts.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		at := t0()
		failEvery := 3 + i
		for j := 0; j < 200; j++ {
			state := flow.StateEstablished
			if j%failEvery == 0 {
				state = flow.StateFailed
			}
			records = append(records, flow.Record{
				Src: flow.IP(100 + i), Dst: flow.IP(0x0B000000 + uint32(rng.Intn(40)) + uint32(i)*100),
				SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 2, DstPkts: 2, SrcBytes: uint64(500 + rng.Intn(4000)), DstBytes: 5000, State: state,
			})
			at = at.Add(time.Duration((0.5 + rng.ExpFloat64()*float64(3+i)) * float64(time.Second)))
		}
	}
	cfg := DefaultConfig()
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.3
	// At this tiny scale the 50th-percentile thresholds would pass only
	// the three bots into θ_hm, where cutting even one link must sever a
	// bot; widen the funnel so clustering has human hosts to separate
	// from.
	cfg.VolPercentile = 70
	cfg.ChurnPercentile = 70
	res, err := FindPlotters(records, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if !res.Suspects[flow.IP(i)] {
			t.Errorf("bot %d not detected; suspects = %v", i, res.Suspects.Sorted())
		}
	}
	fps := 0
	for h := range res.Suspects {
		if h >= 100 {
			fps++
		}
	}
	if fps > 2 {
		t.Errorf("%d normal hosts flagged: %v", fps, res.Suspects.Sorted())
	}
	// Result exposes every stage.
	if res.Analysis == nil || len(res.Reduction.Kept) == 0 {
		t.Error("result stages not populated")
	}
}

func TestFindPlottersInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CutFraction = 2
	h := mkHost{addr: 1, flows: 10, bytes: 10, peers: 2, period: time.Second}
	if _, err := FindPlotters(h.records(), nil, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAnalysisHostFilter(t *testing.T) {
	a1 := mkHost{addr: 1, flows: 10, bytes: 10, peers: 2, period: time.Second}
	a2 := mkHost{addr: 2, flows: 10, bytes: 10, peers: 2, period: time.Second}
	records := append(a1.records(), a2.records()...)
	a, err := NewAnalysis(records, func(ip flow.IP) bool { return ip == 1 }, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hosts()) != 1 || !a.Hosts()[1] {
		t.Errorf("hosts = %v", a.Hosts().Sorted())
	}
}

// The raw-time ablation must still run end to end (it is the paper's
// literal construction), even though the log axis detects better.
func TestHMTestRawTimeScale(t *testing.T) {
	var records []flow.Record
	for i := 0; i < 4; i++ {
		h := mkHost{addr: flow.IP(i + 1), flows: 120, bytes: 100, peers: 3, period: 15 * time.Second}
		records = append(records, h.records()...)
	}
	cfg := DefaultConfig()
	cfg.RawTimeScale = true
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.4
	a, err := NewAnalysis(records, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.HMTest(a.Hosts(), 90)
	if err != nil {
		t.Fatal(err)
	}
	// Identical machine timers cluster on the raw axis too.
	if len(res.Kept) < 2 {
		t.Errorf("raw-scale kept = %v", res.Kept.Sorted())
	}
}

// MaxDiameter ablation: the strict maximum never undercuts the mean.
func TestClusterSpreadMaxVsMean(t *testing.T) {
	var records []flow.Record
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 6; i++ {
		at := t0()
		for j := 0; j < 100; j++ {
			records = append(records, flow.Record{
				Src: flow.IP(i + 1), Dst: flow.IP(0x0C000000 + uint32(j%3)),
				SrcPort: 1, DstPort: 2, Proto: flow.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 10,
				State: flow.StateEstablished,
			})
			at = at.Add(time.Duration((1 + rng.ExpFloat64()*float64(5+i*3)) * float64(time.Second)))
		}
	}
	run := func(maxDiam bool) []HMCluster {
		cfg := DefaultConfig()
		cfg.MaxDiameter = maxDiam
		cfg.MinInterstitialSamples = 30
		cfg.CutFraction = 0.4
		a, err := NewAnalysis(records, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.HMTest(a.Hosts(), 50)
		if err != nil {
			t.Fatal(err)
		}
		return res.Clusters
	}
	meanClusters := run(false)
	maxClusters := run(true)
	if len(meanClusters) != len(maxClusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(meanClusters), len(maxClusters))
	}
	for i := range meanClusters {
		if maxClusters[i].Diameter < meanClusters[i].Diameter-1e-9 {
			t.Errorf("cluster %d: max %v < mean %v", i, maxClusters[i].Diameter, meanClusters[i].Diameter)
		}
	}
}
