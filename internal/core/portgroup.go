package core

import (
	"fmt"
	"sort"

	"plotters/internal/flow"
)

// The paper's §VI notes a limitation: a Plotter that infects a heavy
// Trader can hide inside the Trader's traffic, and suggests separating a
// host's traffic by application — e.g. by destination port groups — and
// applying the tests to each group individually. This file implements
// that extension: each (host, port-group) pair becomes a "virtual host"
// with its own features, so a bot's control traffic is tested in
// isolation from the file-sharing bulk on the same machine.

// PortGrouper maps a flow to an application group label. Flows mapping to
// the same (initiator, group) are analyzed together.
type PortGrouper func(r *flow.Record) string

// DefaultPortGrouper buckets by well-known application ports: the
// conventional file-sharing ports, web, mail, DNS/NTP infrastructure, and
// a catch-all for everything else (bucketed by exact destination port for
// unprivileged ports, so unknown P2P protocols on a fixed port still
// group together).
func DefaultPortGrouper(r *flow.Record) string {
	switch r.DstPort {
	case 80, 443, 8080:
		return "web"
	case 25, 110, 143, 465, 587, 993, 995:
		return "mail"
	case 53, 123:
		return "infra"
	case 6346, 6347:
		return "gnutella"
	case 4661, 4662, 4672:
		return "emule"
	case 6881, 6882, 6883, 6884, 6885, 6886, 6887, 6888, 6889:
		return "bittorrent"
	}
	if r.DstPort >= 1024 {
		return fmt.Sprintf("port-%d", r.DstPort)
	}
	return "other"
}

// VirtualHost identifies one (host, application group) analysis unit.
type VirtualHost struct {
	Host  flow.IP
	Group string
}

// PortGroupResult is the outcome of the per-application pipeline.
type PortGroupResult struct {
	// Result is the pipeline outcome over virtual hosts (the HostSet
	// members are synthetic addresses; use Suspects for real ones).
	Result *Result
	// Suspects maps each flagged real host to the application groups
	// whose traffic tripped the detector.
	Suspects map[flow.IP][]string
	// Mapping resolves the synthetic virtual addresses back to
	// (host, group) pairs.
	Mapping map[flow.IP]VirtualHost
}

// FindPlottersByApplication runs FindPlotters over per-application
// virtual hosts: each internal host's flows are split by the grouper, a
// synthetic source address is minted per (host, group), and the standard
// pipeline runs over the rewritten records. A bot whose control channel
// shares a machine with a heavy file-sharer is then judged on its own
// port group's behavior rather than the blended host profile.
//
// Splitting multiplies the θ_hm population — every real host becomes
// several virtual hosts — and the pairwise EMD matrix grows with its
// square, so this variant leans hardest on the parallel distance-matrix
// engine; cfg.Parallelism applies to the virtual-host matrix exactly as
// it does to the plain pipeline.
//
// grouper defaults to DefaultPortGrouper. Groups with fewer than
// minFlows flows are left out (too little evidence either way).
func FindPlottersByApplication(records []flow.Record, internal func(flow.IP) bool, cfg Config, grouper PortGrouper, minFlows int) (*PortGroupResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if grouper == nil {
		grouper = DefaultPortGrouper
	}
	if minFlows < 1 {
		minFlows = 1
	}

	// First pass: count flows per (host, group) to allocate virtual
	// addresses only for groups with enough traffic.
	counts := make(map[VirtualHost]int)
	for i := range records {
		r := &records[i]
		if internal != nil && !internal(r.Src) {
			continue
		}
		counts[VirtualHost{Host: r.Src, Group: grouper(r)}]++
	}
	keys := make([]VirtualHost, 0, len(counts))
	for vh, n := range counts {
		if n >= minFlows {
			keys = append(keys, vh)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Host != keys[j].Host {
			return keys[i].Host < keys[j].Host
		}
		return keys[i].Group < keys[j].Group
	})
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: no (host, group) pairs with >= %d flows", minFlows)
	}

	// Mint synthetic addresses in a reserved range (0.x.y.z is never a
	// real initiator).
	toVirtual := make(map[VirtualHost]flow.IP, len(keys))
	mapping := make(map[flow.IP]VirtualHost, len(keys))
	kept := 0
	for i, vh := range keys {
		addr := flow.IP(uint32(i) + 1)
		toVirtual[vh] = addr
		mapping[addr] = vh
		kept += counts[vh]
	}

	// Second pass: rewrite sources to virtual addresses. The first pass
	// already counted exactly how many flows survive the minFlows filter,
	// so size the rewrite buffer to that.
	rewritten := make([]flow.Record, 0, kept)
	for i := range records {
		r := records[i]
		if internal != nil && !internal(r.Src) {
			continue
		}
		vh := VirtualHost{Host: r.Src, Group: grouper(&r)}
		addr, ok := toVirtual[vh]
		if !ok {
			continue
		}
		r.Src = addr
		rewritten = append(rewritten, r)
	}

	res, err := FindPlotters(rewritten, nil, cfg)
	if err != nil {
		return nil, err
	}
	out := &PortGroupResult{Result: res, Suspects: make(map[flow.IP][]string), Mapping: mapping}
	for addr := range res.Suspects {
		vh := mapping[addr]
		out.Suspects[vh.Host] = append(out.Suspects[vh.Host], vh.Group)
	}
	for _, groups := range out.Suspects {
		sort.Strings(groups)
	}
	return out, nil
}
