package core

import (
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// detectorRecords builds a small mixed population that survives every
// pipeline stage (mirrors TestFindPlottersEndToEnd's shape).
func detectorRecords() []flow.Record {
	var records []flow.Record
	for i := 0; i < 3; i++ {
		bot := mkHost{addr: flow.IP(i + 1), flows: 150, failEach: 2, bytes: 80,
			peers: 3, period: 30 * time.Second}
		records = append(records, bot.records()...)
	}
	for i := 0; i < 6; i++ {
		human := mkHost{addr: flow.IP(i + 10), flows: 150, failEach: 15, bytes: 3000,
			peers: 3, period: 30 * time.Second, jitterNS: int64(2+i) * 1e9}
		records = append(records, human.records()...)
	}
	return records
}

// The PaperDetector must be FindPlotters behind the Detector seam:
// identical suspect set, full Result attached, stable name.
func TestPaperDetectorMatchesFindPlotters(t *testing.T) {
	records := detectorRecords()
	cfg := DefaultConfig()

	direct, err := FindPlotters(records, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	det, err := NewPaperDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if det.Name() != PaperName {
		t.Errorf("Name() = %q, want %q", det.Name(), PaperName)
	}
	src := flow.ExtractFeatureSet(records, flow.FeatureOptions{NewPeerGrace: cfg.NewPeerGrace}, flow.Window{})
	d, err := det.Detect(src)
	if err != nil {
		t.Fatal(err)
	}
	if d.Detector != PaperName {
		t.Errorf("Detection.Detector = %q, want %q", d.Detector, PaperName)
	}
	if !reflect.DeepEqual(d.Suspects, direct.Suspects) {
		t.Errorf("suspects differ:\ndetector %v\ndirect   %v",
			d.Suspects.Sorted(), direct.Suspects.Sorted())
	}
	if d.Paper == nil {
		t.Fatal("Detection.Paper is nil for the paper detector")
	}
	if !reflect.DeepEqual(d.Paper.Suspects, d.Suspects) {
		t.Error("Detection.Paper.Suspects disagrees with Detection.Suspects")
	}
	if len(d.Paper.Reduction.Kept) != len(direct.Reduction.Kept) ||
		len(d.Paper.Volume.Kept) != len(direct.Volume.Kept) ||
		len(d.Paper.Churn.Kept) != len(direct.Churn.Kept) {
		t.Error("stage survivor counts differ between detector and direct run")
	}
}

// An invalid configuration must fail at construction, not at detect
// time.
func TestNewPaperDetectorValidates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VolPercentile = 150
	if _, err := NewPaperDetector(cfg); err == nil {
		t.Error("expected validation error")
	}
}
