package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// parallelCorpus synthesizes a population large enough to clear the
// distmatrix sequential cutoff (≥ 48 clusterable hosts): four bot
// families on distinct fixed timers plus a majority of human-like hosts
// with irregular gaps.
func parallelCorpus(t testing.TB) []flow.Record {
	var records []flow.Record
	timers := []time.Duration{10 * time.Second, 30 * time.Second, 45 * time.Second, 2 * time.Minute}
	addr := flow.IP(1)
	for fam, period := range timers {
		for k := 0; k < 6; k++ {
			h := mkHost{addr: addr, flows: 80, bytes: 100, peers: 3, period: period,
				jitterNS: int64(fam+1) * 1000}
			records = append(records, h.records()...)
			addr++
		}
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		at := t0()
		for j := 0; j < 80; j++ {
			records = append(records, flow.Record{
				Src: addr, Dst: flow.IP(0x0D000000 + uint32(j%4)),
				SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 1, DstPkts: 1, SrcBytes: 100, DstBytes: 10,
				State: flow.StateEstablished,
			})
			at = at.Add(time.Duration((1 + rng.ExpFloat64()*float64(5+i%17)) * float64(time.Second)))
		}
		addr++
	}
	return records
}

// θ_hm must produce identical detection output — same Kept set, same
// clusters with the same diameters and flags, same τ_hm — whether the
// distance matrix is computed sequentially or by any number of workers.
func TestHMTestParallelMatchesSequential(t *testing.T) {
	records := parallelCorpus(t)
	run := func(parallelism int) HMResult {
		cfg := DefaultConfig()
		cfg.MinInterstitialSamples = 30
		cfg.CutFraction = 0.3
		cfg.Parallelism = parallelism
		a, err := NewAnalysis(records, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.HMTest(a.Hosts(), 50)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	seq := run(1)
	if seq.Clustered < 48 {
		t.Fatalf("corpus too small to exercise the parallel path: %d clusterable hosts", seq.Clustered)
	}
	if len(seq.Clusters) == 0 || len(seq.Kept) == 0 {
		t.Fatalf("degenerate sequential result: %+v", seq)
	}
	for _, par := range []int{0, 2, 4, 16} {
		got := run(par)
		if !reflect.DeepEqual(got, seq) {
			t.Errorf("parallelism=%d: result diverged from sequential\n got: %+v\nwant: %+v", par, got, seq)
		}
	}
}

// The full pipeline (which feeds θ_vol ∪ θ_churn survivors into θ_hm)
// must likewise be invariant under the parallelism knob.
func TestFindPlottersParallelMatchesSequential(t *testing.T) {
	records := parallelCorpus(t)
	run := func(parallelism int) *Result {
		cfg := DefaultConfig()
		cfg.MinInterstitialSamples = 30
		cfg.CutFraction = 0.3
		cfg.VolPercentile = 70
		cfg.ChurnPercentile = 70
		cfg.Parallelism = parallelism
		res, err := FindPlotters(records, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	par := run(8)
	if !reflect.DeepEqual(seq.Suspects, par.Suspects) {
		t.Errorf("suspects diverged: seq %v, par %v", seq.Suspects.Sorted(), par.Suspects.Sorted())
	}
	if !reflect.DeepEqual(seq.HM, par.HM) {
		t.Errorf("HM results diverged:\n seq: %+v\n par: %+v", seq.HM, par.HM)
	}
	if seq.HM.Threshold != par.HM.Threshold {
		t.Errorf("τ_hm diverged: %v vs %v", seq.HM.Threshold, par.HM.Threshold)
	}
}

func TestConfigParallelismValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Parallelism accepted")
	}
	cfg.Parallelism = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("Parallelism=0 rejected: %v", err)
	}
	cfg.Parallelism = 64
	if err := cfg.Validate(); err != nil {
		t.Errorf("Parallelism=64 rejected: %v", err)
	}
}
