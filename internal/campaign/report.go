package campaign

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// JSON renders the report as indented JSON (trailing newline included),
// the campaign's machine-readable artifact. Field order is fixed by the
// struct definitions and map-free layout, so equal reports render to
// equal bytes — the determinism tests compare this output directly.
func (r *Report) JSON() ([]byte, error) {
	raw, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// Markdown renders the detection-rate-vs-evasion-cost frontier as one
// GitHub-flavored table per world: the no-countermeasure baseline row
// first, then every grid point with its cost and each detector's and
// combiner's per-botnet detection rate.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Campaign frontier (seed %d, %d day(s), scale %s)\n\n", r.Seed, r.Days, r.Scale)
	fmt.Fprintf(&b, "Detection cells are storm/nugache TPR; cost is what the botnet pays for the grid point.\n")
	for i := range r.Worlds {
		w := &r.Worlds[i]
		fmt.Fprintf(&b, "\n### World %s (%d records, %d campus hosts", w.Name, w.Records, w.Hosts)
		if len(w.Roles) > 0 {
			names := make([]string, 0, len(w.Roles))
			for role := range w.Roles {
				names = append(names, role)
			}
			// RoleCounts returns a fresh map; sort for stable output.
			sortStrings(names)
			for _, role := range names {
				fmt.Fprintf(&b, ", %d %s", w.Roles[role], role)
			}
		}
		fmt.Fprintf(&b, ", τ_vol≈%.0f)\n\n", w.VolTarget)
		names := scoreNames(w.Baseline)
		fmt.Fprintf(&b, "| countermeasure | intensity | extra bytes | extra peers | added latency |")
		for _, n := range names {
			fmt.Fprintf(&b, " %s |", n)
		}
		fmt.Fprintf(&b, "\n|---|---|---|---|---|")
		for range names {
			fmt.Fprintf(&b, "---|")
		}
		fmt.Fprintf(&b, "\n")
		writeRow(&b, "(none)", 0, Cost{}, w.Baseline)
		for _, p := range w.Frontier {
			writeRow(&b, p.Countermeasure, p.Intensity, p.Cost, p.Scores)
		}
	}
	return b.String()
}

// scoreNames extracts the score column order from a score row.
func scoreNames(scores []Score) []string {
	names := make([]string, len(scores))
	for i, s := range scores {
		names[i] = s.Name
	}
	return names
}

// writeRow renders one frontier table row.
func writeRow(b *strings.Builder, cm string, intensity float64, cost Cost, scores []Score) {
	fmt.Fprintf(b, "| %s | %.2f | %s | %d | %s |", cm, intensity, formatBytes(cost.ExtraBytes), cost.ExtraPeers, formatLatency(cost.AddedLatency))
	for _, s := range scores {
		fmt.Fprintf(b, " %.2f/%.2f |", s.StormTPR(), s.NugacheTPR())
	}
	fmt.Fprintf(b, "\n")
}

// formatBytes renders a byte count compactly.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d", n)
	}
}

// formatLatency renders an added-latency cost compactly.
func formatLatency(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return d.Round(time.Second).String()
}

// sortStrings is a tiny local sort to keep report.go free of extra
// imports beyond what rendering needs.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
