// Golden regression tests for the campaign subsystem: every synthetic
// world's shape and seed-42 baseline detection outcome is pinned in
// testdata/worlds_golden.json, and the baseline world's day-0 suspects
// must reproduce the repo-level seed-42 pipeline goldens exactly.
//
// After an intentional behavior change, regenerate with:
//
//	go test ./internal/campaign -run TestWorldsGolden -update
package campaign

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/eval"
)

var update = flag.Bool("update", false, "rewrite golden files with current results")

const worldsGoldenPath = "testdata/worlds_golden.json"

// worldGolden pins one world's day-0 shape and baseline detection
// outcome at seed 42 — exact integer counts, nothing statistical.
type worldGolden struct {
	Records int            `json:"records"`
	Hosts   int            `json:"hosts"`
	Roles   map[string]int `json:"roles,omitempty"`
	// Baseline maps detector name to its accumulated day-0 rates.
	Baseline map[string]eval.Rates `json:"baseline"`
}

// worldsGoldenConfig sweeps every world preset at the tiny scale with a
// minimal grid (the goldens pin the baseline, not the frontier).
func worldsGoldenConfig() Config {
	return Config{
		Seed:            42,
		Days:            1,
		Scale:           ScaleTiny,
		Worlds:          WorldNames(),
		Countermeasures: []Countermeasure{TimerJitter{Max: time.Minute}},
		Intensities:     []float64{1},
		Pipeline:        core.DefaultConfig(),
	}
}

func reportToWorldsGolden(rep *Report) map[string]worldGolden {
	out := make(map[string]worldGolden, len(rep.Worlds))
	for _, w := range rep.Worlds {
		g := worldGolden{
			Records:  w.Records,
			Hosts:    w.Hosts,
			Roles:    w.Roles,
			Baseline: make(map[string]eval.Rates, len(w.Baseline)),
		}
		for _, s := range w.Baseline {
			g.Baseline[s.Name] = s.Rates
		}
		out[w.Name] = g
	}
	return out
}

func TestWorldsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("world synthesis takes seconds per world; skipped in -short mode")
	}
	rep, err := Run(worldsGoldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	got := reportToWorldsGolden(rep)

	if *update {
		if err := os.MkdirAll(filepath.Dir(worldsGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(worldsGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s", worldsGoldenPath)
		return
	}

	raw, err := os.ReadFile(worldsGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	var want map[string]worldGolden
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for _, name := range WorldNames() {
		g, ok := got[name]
		if !ok {
			t.Errorf("world %s missing from run", name)
			continue
		}
		w, ok := want[name]
		if !ok {
			t.Errorf("world %s missing from golden (run with -update)", name)
			continue
		}
		if g.Records != w.Records || g.Hosts != w.Hosts {
			t.Errorf("world %s: records=%d hosts=%d, want records=%d hosts=%d",
				name, g.Records, g.Hosts, w.Records, w.Hosts)
		}
		if !reflect.DeepEqual(g.Roles, w.Roles) {
			t.Errorf("world %s: roles = %v, want %v", name, g.Roles, w.Roles)
		}
		if !reflect.DeepEqual(g.Baseline, w.Baseline) {
			t.Errorf("world %s: baseline rates = %v, want %v", name, g.Baseline, w.Baseline)
		}
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("golden pins unknown world %s", name)
		}
	}
}

// repoGolden loads a repo-level seed-42 golden's pinned suspect list.
func repoGolden(t *testing.T, name string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	var g struct {
		Suspects []string `json:"suspects"`
	}
	if err := json.Unmarshal(raw, &g); err != nil {
		t.Fatal(err)
	}
	return g.Suspects
}

// TestBaselineMatchesRepoGoldens pins the acceptance criterion that the
// campaign's no-countermeasure row on the baseline world reproduces the
// repo-level seed-42 goldens: same corpus, same overlay seeds, same
// suspects for both detectors.
func TestBaselineMatchesRepoGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale corpus synthesis takes ~15s; skipped in -short mode")
	}
	cfg := Config{
		Seed:            42,
		Days:            1,
		Scale:           ScalePaper,
		Worlds:          []string{"baseline"},
		Countermeasures: []Countermeasure{TimerJitter{Max: time.Minute}},
		Intensities:     []float64{1},
		Pipeline:        core.DefaultConfig(),
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Worlds[0]
	if got, want := w.Day0Suspects[core.PaperName], repoGolden(t, "findplotters_golden.json"); !reflect.DeepEqual(got, want) {
		t.Errorf("paper detector baseline diverged from repo golden:\ngot  %v\nwant %v", got, want)
	}
	if got, want := w.Day0Suspects["community"], repoGolden(t, "community_golden.json"); !reflect.DeepEqual(got, want) {
		t.Errorf("community detector baseline diverged from repo golden:\ngot  %v\nwant %v", got, want)
	}
}
