// Package campaign is the red-team harness for the detection pipeline:
// it composes parameterized bot countermeasures over the §VI evasion
// transforms, sweeps them — at increasing intensity, across synthesized
// worlds — against the configured detector ensemble, and reports the
// resulting detection-rate-vs-evasion-cost frontier. The paper's evasion
// argument is that every evasion has a cost; the campaign runner turns
// that argument into a reproducible measurement.
package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"plotters/internal/evasion"
	"plotters/internal/flow"
)

// Cost is the machine-readable price a botnet pays for one
// countermeasure application: conspicuous extra traffic, extra peer
// infrastructure exposed, and slower command propagation.
type Cost struct {
	// ExtraBytes is the additional upload volume over the untransformed
	// trace.
	ExtraBytes int64 `json:"extra_bytes"`
	// ExtraPeers is the additional count of distinct destinations
	// contacted.
	ExtraPeers int `json:"extra_peers"`
	// AddedLatency is the expected added command-propagation delay per
	// hop.
	AddedLatency time.Duration `json:"added_latency_ns"`
}

// Add accumulates another cost (e.g. the second honeynet trace's).
func (c Cost) Add(other Cost) Cost {
	c.ExtraBytes += other.ExtraBytes
	c.ExtraPeers += other.ExtraPeers
	c.AddedLatency += other.AddedLatency
	return c
}

// AtLeast reports whether every cost component is >= the other's —
// the partial order the frontier monotonicity check uses.
func (c Cost) AtLeast(other Cost) bool {
	return c.ExtraBytes >= other.ExtraBytes &&
		c.ExtraPeers >= other.ExtraPeers &&
		c.AddedLatency >= other.AddedLatency
}

// Env is the world-derived context a countermeasure needs: where fresh
// decoy addresses come from and what volume threshold padding aims for.
type Env struct {
	// FreshPool supplies never-before-seen destinations for churn
	// mimicry.
	FreshPool []flow.IP
	// VolTarget is the world's τ_vol estimate (bytes/flow) that volume
	// padding pads toward.
	VolTarget float64
}

// Countermeasure is one parameterized bot-side evasion. Apply transforms
// a honeynet trace at the given intensity in [0, 1] (0 = no change,
// 1 = the countermeasure's full strength) and reports what it cost.
// Implementations must be deterministic given the rng and must consume
// the same rng draw sequence at every intensity, so that a fixed seed
// makes cost monotone in intensity (common random numbers).
type Countermeasure interface {
	Name() string
	Apply(records []flow.Record, intensity float64, env Env, rng *rand.Rand) ([]flow.Record, Cost, error)
}

// checkIntensity validates the shared intensity domain.
func checkIntensity(intensity float64) error {
	if intensity < 0 || intensity > 1 || math.IsNaN(intensity) {
		return fmt.Errorf("campaign: intensity must be in [0,1], got %v", intensity)
	}
	return nil
}

// trafficDelta computes the observable cost components by diffing the
// transformed trace against the original: upload bytes and distinct
// destinations.
func trafficDelta(in, out []flow.Record) (extraBytes int64, extraPeers int) {
	var inBytes, outBytes int64
	inDsts := make(map[flow.IP]bool)
	outDsts := make(map[flow.IP]bool)
	for _, r := range in {
		inBytes += int64(r.SrcBytes)
		inDsts[r.Dst] = true
	}
	for _, r := range out {
		outBytes += int64(r.SrcBytes)
		outDsts[r.Dst] = true
	}
	return outBytes - inBytes, len(outDsts) - len(inDsts)
}

// TimerJitter randomizes repeat-contact timing by ±d with d =
// intensity·Max — the paper's θ_hm evasion. Its cost is command latency:
// a uniform ±d delay adds d/2 expected latency per propagation hop.
type TimerJitter struct {
	// Max is the full-strength jitter bound.
	Max time.Duration
}

// Name implements Countermeasure.
func (TimerJitter) Name() string { return "timer-jitter" }

// Apply implements Countermeasure.
func (t TimerJitter) Apply(records []flow.Record, intensity float64, _ Env, rng *rand.Rand) ([]flow.Record, Cost, error) {
	if err := checkIntensity(intensity); err != nil {
		return nil, Cost{}, err
	}
	d := time.Duration(intensity * float64(t.Max))
	out, err := evasion.JitterRepeatContacts(records, d, rng)
	if err != nil {
		return nil, Cost{}, err
	}
	return out, Cost{AddedLatency: d / 2}, nil
}

// ChurnMimicry rewrites repeat contacts toward fresh decoy addresses so
// the bot's new-destination fraction looks Trader-like — evading θ_churn
// at the cost of maintaining (and burning) throwaway peer
// infrastructure. Intensity 1 applies MaxFactor.
type ChurnMimicry struct {
	// MaxFactor is the full-strength churn inflation factor.
	MaxFactor float64
}

// Name implements Countermeasure.
func (ChurnMimicry) Name() string { return "churn-mimicry" }

// Apply implements Countermeasure.
func (c ChurnMimicry) Apply(records []flow.Record, intensity float64, env Env, rng *rand.Rand) ([]flow.Record, Cost, error) {
	if err := checkIntensity(intensity); err != nil {
		return nil, Cost{}, err
	}
	factor := 1 + intensity*(c.MaxFactor-1)
	out, err := evasion.InflateChurn(records, factor, env.FreshPool, rng)
	if err != nil {
		return nil, Cost{}, err
	}
	extraBytes, extraPeers := trafficDelta(records, out)
	return out, Cost{ExtraBytes: extraBytes, ExtraPeers: extraPeers}, nil
}

// VolumePadding pads every successful flow with junk bytes toward the
// world's τ_vol — evading the volume test by looking like a Trader-scale
// uploader, at the cost of exactly that much conspicuous extra traffic.
type VolumePadding struct{}

// Name implements Countermeasure.
func (VolumePadding) Name() string { return "volume-padding" }

// Apply implements Countermeasure.
func (VolumePadding) Apply(records []flow.Record, intensity float64, env Env, _ *rand.Rand) ([]flow.Record, Cost, error) {
	if err := checkIntensity(intensity); err != nil {
		return nil, Cost{}, err
	}
	pad := uint64(intensity * env.VolTarget)
	out := evasion.PadFlows(records, pad)
	extraBytes, extraPeers := trafficDelta(records, out)
	return out, Cost{ExtraBytes: extraBytes, ExtraPeers: extraPeers}, nil
}

// SlowStart rations peer rendezvous over a ramp of up to intensity·Max:
// first contacts spread out instead of bursting, flattening the
// new-destination rate θ_churn keys on, at the cost of reaching each
// peer up to that much later.
type SlowStart struct {
	// Max is the full-strength onset ramp.
	Max time.Duration
}

// Name implements Countermeasure.
func (SlowStart) Name() string { return "slow-start" }

// Apply implements Countermeasure.
func (s SlowStart) Apply(records []flow.Record, intensity float64, _ Env, rng *rand.Rand) ([]flow.Record, Cost, error) {
	if err := checkIntensity(intensity); err != nil {
		return nil, Cost{}, err
	}
	d := time.Duration(intensity * float64(s.Max))
	out, err := evasion.SlowStartContacts(records, d, rng)
	if err != nil {
		return nil, Cost{}, err
	}
	return out, Cost{AddedLatency: d / 2}, nil
}

// DefaultCountermeasures returns the §VI set at full-strength parameters
// matching the paper's discussion: minute-scale timer randomization,
// Trader-scale churn, τ_vol padding, and an hour-scale contact ramp.
func DefaultCountermeasures() []Countermeasure {
	return []Countermeasure{
		TimerJitter{Max: 10 * time.Minute},
		ChurnMimicry{MaxFactor: 4},
		VolumePadding{},
		SlowStart{Max: 2 * time.Hour},
	}
}
