package campaign

import (
	"fmt"
	"strings"

	"plotters/internal/synth/scenario"
)

// Scale selects how large each world's campus is. ScalePaper matches the
// canonical evaluation corpus (and the seed-42 goldens); ScaleSmall
// matches cmd/experiments -scale small; ScaleTiny is the CI smoke size.
type Scale string

// Supported scales.
const (
	ScaleTiny  Scale = "tiny"
	ScaleSmall Scale = "small"
	ScalePaper Scale = "paper"
)

// baseDay returns the plain campus day shape at the given scale.
func baseDay(scale Scale) (scenario.DayConfig, error) {
	cfg := scenario.DefaultDayConfig(scenario.DefaultDatasetConfig(0).FirstDay, 0)
	switch scale {
	case ScalePaper:
	case ScaleSmall:
		cfg.CampusHosts = 150
		cfg.Gnutella = 5
		cfg.EMule = 5
		cfg.BitTorrent = 8
		cfg.PeerNetworkNodes = 1200
	case ScaleTiny:
		cfg.CampusHosts = 60
		cfg.Gnutella = 2
		cfg.EMule = 2
		cfg.BitTorrent = 3
		cfg.PeerNetworkNodes = 400
	default:
		return cfg, fmt.Errorf("campaign: unknown scale %q (have %s, %s, %s)", scale, ScaleTiny, ScaleSmall, ScalePaper)
	}
	return cfg, nil
}

// World is one named synthetic-world preset: a day template the runner
// stamps with per-day seeds.
type World struct {
	// Name is the preset name.
	Name string
	// Template shapes each generated day (Day and Seed are overwritten).
	Template scenario.DayConfig
}

// WorldNames lists the presets in canonical order: the plain campus
// first (the goldens' world), then each enrichment.
func WorldNames() []string {
	return []string{"baseline", "edonkey", "cross-swarm", "nat-campus", "dht-crawler", "diurnal-10x"}
}

// NewWorld builds one preset at the given scale.
//
//   - baseline: the canonical campus (bit-identical to the seed goldens).
//   - edonkey: adds server-mediated eDonkey Traders with the rare-file
//     long tail (Allali et al.).
//   - cross-swarm: adds BitTorrent Traders trading in 4 swarms at once
//     (Scanlon et al.).
//   - nat-campus: adds NAT gateways aggregating several user personas
//     plus a file-sharing client behind single border IPs.
//   - dht-crawler: adds DHT crawler/indexer hosts — bot-like churn,
//     Trader-like volume, no coordination (the designed hard case).
//   - diurnal-10x: the campus at 10× host count with mixed-timezone
//     diurnal activity.
func NewWorld(name string, scale Scale) (World, error) {
	cfg, err := baseDay(scale)
	if err != nil {
		return World{}, err
	}
	switch strings.ToLower(name) {
	case "baseline":
	case "edonkey":
		cfg.EDonkey = max2(2, cfg.EMule)
	case "cross-swarm":
		cfg.CrossSwarm = max2(2, cfg.BitTorrent/2)
		cfg.SwarmsPerPeer = 4
	case "nat-campus":
		cfg.NATGateways = max2(2, cfg.CampusHosts/60)
		cfg.NATHostsBehind = 6
	case "dht-crawler":
		cfg.DHTCrawlers = max2(2, cfg.CampusHosts/120)
	case "diurnal-10x":
		cfg.CampusHosts *= 10
		cfg.Gnutella *= 10
		cfg.EMule *= 10
		cfg.BitTorrent *= 10
		cfg.PeerNetworkNodes *= 2
		cfg.TimezoneSpread = 12
	default:
		return World{}, fmt.Errorf("campaign: unknown world %q (have %s)", name, strings.Join(WorldNames(), ", "))
	}
	return World{Name: strings.ToLower(name), Template: cfg}, nil
}

// Worlds resolves a list of preset names at one scale.
func Worlds(names []string, scale Scale) ([]World, error) {
	out := make([]World, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		w, err := NewWorld(n, scale)
		if err != nil {
			return nil, err
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("campaign: world %q listed twice", w.Name)
		}
		seen[w.Name] = true
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("campaign: no worlds listed")
	}
	return out, nil
}

// honeynetBots returns per-trace bot counts for the scale. Paper and
// small keep the canonical 13 Storm / 82 Nugache bots; the tiny CI
// campus has too few active hosts to absorb 95 bots, so tiny shrinks
// both proportionally.
func honeynetBots(scale Scale) (storm, nugache int) {
	if scale == ScaleTiny {
		return 4, 16
	}
	return 13, 82
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
