package campaign

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/flow"
)

// tinyConfig is the CI smoke configuration: one day of the tiny campus,
// every countermeasure at a 2-point grid.
func tinyConfig() Config {
	return Config{
		Seed:            42,
		Days:            1,
		Scale:           ScaleTiny,
		Worlds:          []string{"baseline"},
		Countermeasures: DefaultCountermeasures(),
		Intensities:     []float64{0.5, 1},
		Pipeline:        core.DefaultConfig(),
	}
}

var (
	tinyOnce   sync.Once
	tinyRep    *Report
	tinyRepErr error
)

// tinyReport runs the smoke sweep once and shares it across tests.
func tinyReport(t *testing.T) *Report {
	t.Helper()
	tinyOnce.Do(func() {
		tinyRep, tinyRepErr = Run(tinyConfig())
	})
	if tinyRepErr != nil {
		t.Fatal(tinyRepErr)
	}
	return tinyRep
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero days", func(c *Config) { c.Days = 0 }},
		{"no worlds", func(c *Config) { c.Worlds = nil }},
		{"no countermeasures", func(c *Config) { c.Countermeasures = nil }},
		{"descending grid", func(c *Config) { c.Intensities = []float64{1, 0.5} }},
		{"zero intensity", func(c *Config) { c.Intensities = []float64{0, 0.5} }},
		{"intensity above one", func(c *Config) { c.Intensities = []float64{0.5, 1.5} }},
		{"unknown world", func(c *Config) { c.Worlds = []string{"atlantis"} }},
		{"duplicate world", func(c *Config) { c.Worlds = []string{"baseline", "baseline"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatalf("Run accepted invalid config (%s)", tc.name)
			}
		})
	}
}

func TestCountermeasureRejectsBadIntensity(t *testing.T) {
	recs := []flow.Record{{Src: 1, Dst: 2, Proto: flow.TCP, SrcBytes: 10, SrcPkts: 1, State: flow.StateEstablished}}
	env := Env{FreshPool: freshPool(4), VolTarget: 100}
	for _, cm := range DefaultCountermeasures() {
		for _, bad := range []float64{-0.1, 1.1} {
			if _, _, err := cm.Apply(recs, bad, env, rand.New(rand.NewSource(1))); err == nil {
				t.Errorf("%s accepted intensity %v", cm.Name(), bad)
			}
		}
	}
}

// TestRunDeterminism pins the subsystem's core guarantee: the same seed
// produces a bit-identical campaign report across independent runs
// (and, under -race in CI, across goroutine schedules).
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep synthesizes a corpus; skipped in -short mode")
	}
	first := tinyReport(t)
	again, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.MarshalIndent(first, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(again, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different reports:\nrun 1: %s\nrun 2: %s", a, b)
	}
	// CI exports the verified report as a build artifact (mirroring the
	// recovery job's checkpoint export) so a frontier regression leaves
	// a concrete JSON to diff against the previous run's.
	if dir := os.Getenv("CAMPAIGN_ARTIFACT_DIR"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := first.JSON()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "campaign-report.json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("campaign report exported to %s", path)
	}
}

// TestCostMonotone pins the frontier property: within each world, every
// countermeasure's cost is non-decreasing along the intensity grid
// (common random numbers make this exact, not statistical).
func TestCostMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep synthesizes a corpus; skipped in -short mode")
	}
	rep := tinyReport(t)
	if err := rep.CheckMonotone(); err != nil {
		t.Fatal(err)
	}
	// The grid must actually have costs: full-strength padding and churn
	// mimicry are not free.
	for _, w := range rep.Worlds {
		for _, p := range w.Frontier {
			if p.Intensity == 1 {
				free := p.Cost == Cost{}
				if free {
					t.Errorf("world %s: %s at full strength reports zero cost", w.Name, p.Countermeasure)
				}
			}
		}
	}
}

// TestReportShape sanity-checks the report layout the CLI and CI
// artifact consumers rely on.
func TestReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep synthesizes a corpus; skipped in -short mode")
	}
	rep := tinyReport(t)
	if len(rep.Worlds) != 1 || rep.Worlds[0].Name != "baseline" {
		t.Fatalf("worlds = %+v, want one baseline world", rep.Worlds)
	}
	w := rep.Worlds[0]
	wantPoints := len(DefaultCountermeasures()) * 2
	if len(w.Frontier) != wantPoints {
		t.Fatalf("frontier has %d points, want %d", len(w.Frontier), wantPoints)
	}
	wantScores := []string{core.PaperName, "community", "union", "intersection", "vote-2"}
	for _, row := range append([][]Score{w.Baseline}, [][]Score{w.Frontier[0].Scores}...) {
		if len(row) != len(wantScores) {
			t.Fatalf("score row has %d entries, want %d", len(row), len(wantScores))
		}
		for i, s := range row {
			if s.Name != wantScores[i] {
				t.Errorf("score %d named %q, want %q", i, s.Name, wantScores[i])
			}
		}
	}
	for _, det := range wantScores[:2] {
		if _, ok := w.Day0Suspects[det]; !ok {
			t.Errorf("day-0 suspects missing detector %q", det)
		}
	}
	if w.VolTarget <= 0 {
		t.Errorf("vol target = %v, want positive", w.VolTarget)
	}
	if w.Records == 0 || w.Hosts == 0 {
		t.Errorf("world size not recorded: records=%d hosts=%d", w.Records, w.Hosts)
	}
	for _, s := range w.Baseline {
		if s.Rates.Plotters == 0 {
			t.Errorf("baseline %s scored zero plotters in input", s.Name)
		}
	}
}

// TestSubSeedStable pins the CRN seed derivation: countermeasure rng
// seeds depend on (seed, world, countermeasure, trace) and nothing else.
func TestSubSeedStable(t *testing.T) {
	a := subSeed(42, "baseline", "timer-jitter", "storm")
	b := subSeed(42, "baseline", "timer-jitter", "storm")
	if a != b {
		t.Fatalf("subSeed not stable: %d vs %d", a, b)
	}
	if a < 0 {
		t.Fatalf("subSeed negative: %d", a)
	}
	distinct := map[int64]string{}
	for _, labels := range [][]string{
		{"baseline", "timer-jitter", "storm"},
		{"baseline", "timer-jitter", "nugache"},
		{"baseline", "slow-start", "storm"},
		{"edonkey", "timer-jitter", "storm"},
	} {
		s := subSeed(42, labels...)
		if prev, dup := distinct[s]; dup {
			t.Fatalf("subSeed collision between %v and %s", labels, prev)
		}
		distinct[s] = labels[0] + "/" + labels[1] + "/" + labels[2]
	}
}

func TestCostPartialOrder(t *testing.T) {
	base := Cost{ExtraBytes: 10, ExtraPeers: 2, AddedLatency: time.Second}
	if !base.AtLeast(base) {
		t.Error("cost not >= itself")
	}
	if !base.AtLeast(Cost{}) {
		t.Error("cost not >= zero")
	}
	if base.AtLeast(Cost{ExtraBytes: 11}) {
		t.Error("cost >= one with more bytes")
	}
	sum := base.Add(Cost{ExtraBytes: 1, ExtraPeers: 1, AddedLatency: time.Second})
	want := Cost{ExtraBytes: 11, ExtraPeers: 3, AddedLatency: 2 * time.Second}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
}

func TestCheckMonotoneCatchesRegression(t *testing.T) {
	rep := &Report{Worlds: []WorldResult{{
		Name: "baseline",
		Frontier: []FrontierPoint{
			{Countermeasure: "volume-padding", Intensity: 0.5, Cost: Cost{ExtraBytes: 100}},
			{Countermeasure: "volume-padding", Intensity: 1, Cost: Cost{ExtraBytes: 50}},
		},
	}}}
	if err := rep.CheckMonotone(); err == nil {
		t.Fatal("CheckMonotone accepted a shrinking cost")
	}
}
