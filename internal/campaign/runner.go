package campaign

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"plotters/internal/community"
	"plotters/internal/core"
	"plotters/internal/eval"
	"plotters/internal/flow"
	"plotters/internal/overlay"
	"plotters/internal/synth/scenario"
)

// Config parameterizes one campaign run. Everything is derived from Seed:
// the same configuration reproduces the same Report bit for bit.
type Config struct {
	// Seed drives the dataset, the overlays, and every countermeasure's
	// randomness.
	Seed int64
	// Days is the number of collection days per world.
	Days int
	// Scale sizes each world's campus.
	Scale Scale
	// Worlds names the world presets to sweep (see WorldNames).
	Worlds []string
	// Countermeasures is the grid's countermeasure axis.
	Countermeasures []Countermeasure
	// Intensities is the grid's intensity axis, ascending in [0, 1].
	// The no-countermeasure baseline row is always measured separately.
	Intensities []float64
	// Pipeline configures the paper detector.
	Pipeline core.Config
	// VoteK is the ensemble vote threshold (0 = majority).
	VoteK int
	// Progress, when non-nil, receives one line per completed stage.
	Progress func(format string, args ...any)
}

// DefaultConfig returns the standard sweep: every world and
// countermeasure at small scale over a short intensity grid.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		Days:            2,
		Scale:           ScaleSmall,
		Worlds:          WorldNames(),
		Countermeasures: DefaultCountermeasures(),
		Intensities:     []float64{0.25, 0.5, 1},
		Pipeline:        core.DefaultConfig(),
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Days <= 0 {
		return fmt.Errorf("campaign: days must be positive, got %d", c.Days)
	}
	if len(c.Worlds) == 0 {
		return fmt.Errorf("campaign: no worlds configured")
	}
	if len(c.Countermeasures) == 0 {
		return fmt.Errorf("campaign: no countermeasures configured")
	}
	prev := 0.0
	for _, p := range c.Intensities {
		if err := checkIntensity(p); err != nil {
			return err
		}
		if p <= prev {
			return fmt.Errorf("campaign: intensities must be strictly ascending and positive, got %v", c.Intensities)
		}
		prev = p
	}
	return c.Pipeline.Validate()
}

// Score is one detector's (or combiner's) outcome over every day of one
// world at one grid point, accumulated as exact counts so the report is
// reproducible bit for bit.
type Score struct {
	// Name is the detector or combiner ("union", "intersection",
	// "vote-k") name.
	Name string `json:"name"`
	// Rates accumulates flagged/true counts over the monitored hosts.
	Rates eval.Rates `json:"rates"`
	// StormTP/StormBots and NugacheTP/NugacheBots split detection by
	// botnet.
	StormTP     int `json:"storm_tp"`
	StormBots   int `json:"storm_bots"`
	NugacheTP   int `json:"nugache_tp"`
	NugacheBots int `json:"nugache_bots"`
}

// StormTPR returns the Storm detection rate.
func (s Score) StormTPR() float64 {
	if s.StormBots == 0 {
		return 0
	}
	return float64(s.StormTP) / float64(s.StormBots)
}

// NugacheTPR returns the Nugache detection rate.
func (s Score) NugacheTPR() float64 {
	if s.NugacheBots == 0 {
		return 0
	}
	return float64(s.NugacheTP) / float64(s.NugacheBots)
}

// FrontierPoint is one grid point: a countermeasure at an intensity, its
// cost, and how every detector and combiner scored against it.
type FrontierPoint struct {
	Countermeasure string  `json:"countermeasure"`
	Intensity      float64 `json:"intensity"`
	Cost           Cost    `json:"cost"`
	Scores         []Score `json:"scores"`
}

// WorldResult is one world's sweep outcome.
type WorldResult struct {
	// Name is the world preset name.
	Name string `json:"world"`
	// Records and Hosts size day 0 (pre-overlay records, monitored
	// hosts).
	Records int `json:"records"`
	Hosts   int `json:"hosts"`
	// Roles counts day 0's enriched-world hosts by role.
	Roles map[string]int `json:"roles,omitempty"`
	// VolTarget is the τ_vol estimate (day 0) padding aims for.
	VolTarget float64 `json:"vol_target"`
	// Baseline scores the untransformed overlay — the no-countermeasure
	// row, comparable against the seed goldens.
	Baseline []Score `json:"baseline"`
	// Day0Suspects maps each detector to its sorted day-0 baseline
	// suspect list, pinning the exact detection outcome.
	Day0Suspects map[string][]string `json:"day0_suspects"`
	// Frontier holds one point per countermeasure × intensity, in grid
	// order.
	Frontier []FrontierPoint `json:"frontier"`
}

// Report is the campaign's full outcome.
type Report struct {
	Seed        int64         `json:"seed"`
	Days        int           `json:"days"`
	Scale       string        `json:"scale"`
	VoteK       int           `json:"vote_k"`
	Detectors   []string      `json:"detectors"`
	Intensities []float64     `json:"intensities"`
	Worlds      []WorldResult `json:"worlds"`
}

// Run executes the campaign: per world, synthesize the dataset once,
// score the untransformed baseline, then sweep every countermeasure ×
// intensity against the detector ensemble.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	worlds, err := Worlds(cfg.Worlds, cfg.Scale)
	if err != nil {
		return nil, err
	}
	detectors, err := buildDetectors(cfg.Pipeline)
	if err != nil {
		return nil, err
	}
	voteK := cfg.VoteK
	if voteK < 1 {
		voteK = len(detectors)/2 + 1
	}
	rep := &Report{
		Seed:        cfg.Seed,
		Days:        cfg.Days,
		Scale:       string(cfg.Scale),
		VoteK:       voteK,
		Intensities: cfg.Intensities,
	}
	for _, det := range detectors {
		rep.Detectors = append(rep.Detectors, det.Name())
	}
	for _, w := range worlds {
		wr, err := runWorld(cfg, w, detectors, voteK, progress)
		if err != nil {
			return nil, fmt.Errorf("campaign: world %s: %w", w.Name, err)
		}
		rep.Worlds = append(rep.Worlds, *wr)
	}
	return rep, nil
}

// buildDetectors constructs the campaign ensemble: the paper pipeline
// plus the community detector.
func buildDetectors(pipeline core.Config) ([]core.Detector, error) {
	paper, err := core.NewPaperDetector(pipeline)
	if err != nil {
		return nil, err
	}
	ccfg := community.DefaultConfig()
	ccfg.Metrics = pipeline.Metrics
	comm, err := community.New(ccfg)
	if err != nil {
		return nil, err
	}
	return []core.Detector{paper, comm}, nil
}

// runWorld sweeps one world.
func runWorld(cfg Config, w World, detectors []core.Detector, voteK int, progress func(string, ...any)) (*WorldResult, error) {
	progress("world %s: synthesizing %d day(s) at scale %s", w.Name, cfg.Days, cfg.Scale)
	dcfg := scenario.DefaultDatasetConfig(cfg.Seed)
	dcfg.Days = cfg.Days
	dcfg.Storm.Bots, dcfg.Nugache.Bots = honeynetBots(cfg.Scale)
	tmpl := w.Template
	tmpl.Day = dcfg.FirstDay
	tmpl.Seed = cfg.Seed
	dcfg.DayTemplate = tmpl
	ds, err := scenario.GenerateDataset(dcfg)
	if err != nil {
		return nil, err
	}

	wr := &WorldResult{
		Name:    w.Name,
		Records: len(ds.Days[0].Records),
		Hosts:   len(ds.Days[0].CampusHosts),
		Roles:   ds.Days[0].RoleCounts(),
	}
	if len(wr.Roles) == 0 {
		wr.Roles = nil
	}

	// Baseline: the untransformed overlay, same per-day seeds as the
	// evaluation suite (suite seed = dataset seed + 1), so on the
	// baseline world this row reproduces the seed goldens.
	progress("world %s: baseline detection", w.Name)
	baseline, day0, err := sweepPoint(cfg, ds, ds.Storm.Records, ds.Nugache.Records, detectors, voteK, true)
	if err != nil {
		return nil, err
	}
	wr.Baseline = baseline
	wr.Day0Suspects = day0

	// τ_vol from the baseline day-0 paper detection: what volume padding
	// pads toward.
	env := Env{FreshPool: freshPool(256), VolTarget: day0VolTarget(day0, ds, cfg)}
	wr.VolTarget = env.VolTarget

	for _, cm := range cfg.Countermeasures {
		// Common random numbers: the rng seed depends on (seed, world,
		// countermeasure, trace) but NOT on intensity, and every
		// countermeasure consumes the same draw sequence at every
		// intensity — so each transform's rewrite set grows with
		// intensity and cost is deterministically monotone.
		stormSeed := subSeed(cfg.Seed, w.Name, cm.Name(), "storm")
		nugSeed := subSeed(cfg.Seed, w.Name, cm.Name(), "nugache")
		for _, p := range cfg.Intensities {
			stormT, costS, err := cm.Apply(ds.Storm.Records, p, env, rand.New(rand.NewSource(stormSeed)))
			if err != nil {
				return nil, fmt.Errorf("%s at %v: %w", cm.Name(), p, err)
			}
			nugT, costN, err := cm.Apply(ds.Nugache.Records, p, env, rand.New(rand.NewSource(nugSeed)))
			if err != nil {
				return nil, fmt.Errorf("%s at %v: %w", cm.Name(), p, err)
			}
			scores, _, err := sweepPoint(cfg, ds, stormT, nugT, detectors, voteK, false)
			if err != nil {
				return nil, fmt.Errorf("%s at %v: %w", cm.Name(), p, err)
			}
			wr.Frontier = append(wr.Frontier, FrontierPoint{
				Countermeasure: cm.Name(),
				Intensity:      p,
				Cost:           costS.Add(costN),
				Scores:         scores,
			})
			progress("world %s: %s intensity %.2f done", w.Name, cm.Name(), p)
		}
	}
	return wr, nil
}

// sweepPoint overlays (possibly transformed) honeynet traces onto every
// day of the dataset, runs the detector ensemble, and accumulates one
// Score per detector plus the union/intersection/vote combiners.
// withSuspects additionally captures each detector's sorted day-0
// suspect list.
func sweepPoint(cfg Config, ds *scenario.Dataset, stormRecs, nugRecs []flow.Record, detectors []core.Detector, voteK int, withSuspects bool) ([]Score, map[string][]string, error) {
	scores := make([]Score, len(detectors)+3)
	for i, det := range detectors {
		scores[i].Name = det.Name()
	}
	scores[len(detectors)].Name = "union"
	scores[len(detectors)+1].Name = "intersection"
	scores[len(detectors)+2].Name = fmt.Sprintf("vote-%d", voteK)

	var day0 map[string][]string
	storm := overlay.Trace{Label: eval.LabelStorm, Records: stormRecs, Bots: ds.Storm.Bots}
	nugache := overlay.Trace{Label: eval.LabelNugache, Records: nugRecs, Bots: ds.Nugache.Bots}
	for i, day := range ds.Days {
		de, err := eval.Overlay(day, storm, nugache, overlaySeed(cfg.Seed, i), cfg.Pipeline)
		if err != nil {
			return nil, nil, err
		}
		detections, err := de.DetectWith(detectors)
		if err != nil {
			return nil, nil, err
		}
		if withSuspects && i == 0 {
			day0 = make(map[string][]string)
			for _, d := range detections {
				day0[d.Detector] = hostStrings(d.Suspects)
			}
		}
		input := de.Analysis.Hosts()
		truth := de.Plotters()
		kept := make([]core.HostSet, 0, len(scores))
		for _, d := range detections {
			kept = append(kept, d.Suspects)
		}
		kept = append(kept, eval.Union(detections), eval.Intersection(detections), eval.Vote(detections, voteK))
		for j, k := range kept {
			scores[j].Rates.Add(eval.Score(k, input, truth))
			s := eval.Score(k, input, de.Storm)
			scores[j].StormTP += s.TP
			scores[j].StormBots += s.Plotters
			n := eval.Score(k, input, de.Nugache)
			scores[j].NugacheTP += n.TP
			scores[j].NugacheBots += n.Plotters
		}
	}
	return scores, day0, nil
}

// overlaySeed derives day i's overlay seed exactly as the evaluation
// suite does (suite seed = dataset seed + 1), keeping the baseline row
// comparable against the goldens.
func overlaySeed(seed int64, day int) int64 { return seed + 1 + int64(day)*104729 }

// day0VolTarget extracts the paper detector's τ_vol from the baseline
// day-0 run; when the paper detector is absent it falls back to a
// Trader-scale constant.
func day0VolTarget(day0 map[string][]string, ds *scenario.Dataset, cfg Config) float64 {
	// Re-deriving the threshold from the recorded suspects is not
	// possible, so recompute the one detection we need. Day 0 at the
	// baseline point was just produced by sweepPoint; recomputing here
	// keeps sweepPoint's signature simple at the cost of one extra
	// overlay on day 0.
	storm := overlay.Trace{Label: eval.LabelStorm, Records: ds.Storm.Records, Bots: ds.Storm.Bots}
	nugache := overlay.Trace{Label: eval.LabelNugache, Records: ds.Nugache.Records, Bots: ds.Nugache.Bots}
	de, err := eval.Overlay(ds.Days[0], storm, nugache, overlaySeed(cfg.Seed, 0), cfg.Pipeline)
	if err != nil {
		return 100_000
	}
	res, err := de.Detect()
	if err != nil {
		return 100_000
	}
	return res.Volume.Threshold
}

// freshPool fabricates n public decoy addresses (11.0.0.0/8, outside the
// campus and honeynet ranges) for churn mimicry.
func freshPool(n int) []flow.IP {
	pool := make([]flow.IP, n)
	for i := range pool {
		pool[i] = flow.IP(11<<24 | i + 1)
	}
	return pool
}

// hostStrings renders a host set in numeric IP order, matching the
// repo-level goldens' Sorted() rendering.
func hostStrings(set core.HostSet) []string {
	hosts := set.Sorted()
	out := make([]string, len(hosts))
	for i, h := range hosts {
		out[i] = h.String()
	}
	return out
}

// subSeed hashes the seed with the given labels into a child seed.
func subSeed(seed int64, labels ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, l := range labels {
		h.Write([]byte{0})
		h.Write([]byte(l))
	}
	return int64(h.Sum64() & (1<<63 - 1))
}

// CheckMonotone verifies that within every world each countermeasure's
// cost is non-decreasing along the intensity grid — the frontier
// property the CI smoke gates on (detection rates are statistical and
// are not required to be monotone; costs are deterministic and are).
func (r *Report) CheckMonotone() error {
	for _, w := range r.Worlds {
		last := make(map[string]*FrontierPoint)
		for i := range w.Frontier {
			p := &w.Frontier[i]
			if prev := last[p.Countermeasure]; prev != nil {
				if p.Intensity <= prev.Intensity {
					return fmt.Errorf("campaign: world %s %s: grid not ascending (%v after %v)",
						w.Name, p.Countermeasure, p.Intensity, prev.Intensity)
				}
				if !p.Cost.AtLeast(prev.Cost) {
					return fmt.Errorf("campaign: world %s %s: cost not monotone (intensity %v cost %+v < intensity %v cost %+v)",
						w.Name, p.Countermeasure, p.Intensity, p.Cost, prev.Intensity, prev.Cost)
				}
			}
			last[p.Countermeasure] = p
		}
	}
	return nil
}
