package campaign

import (
	"testing"

	"plotters/internal/synth/scenario"
)

// BenchmarkCampaignSweep times one full tiny-scale campaign: corpus
// synthesis plus every default countermeasure at a 2-point grid against
// both detectors and the combiners.
func BenchmarkCampaignSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := Run(tinyConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Worlds) == 0 {
			b.Fatal("empty report")
		}
	}
}

// BenchmarkDiurnalCampusGeneration times synthesizing one day of the
// 10x mixed-timezone diurnal campus and reports synthesis throughput.
func BenchmarkDiurnalCampusGeneration(b *testing.B) {
	w, err := NewWorld("diurnal-10x", ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	cfg := w.Template
	cfg.Day = scenario.DefaultDatasetConfig(42).FirstDay
	cfg.Seed = 42
	var records int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		day, err := scenario.GenerateDay(cfg)
		if err != nil {
			b.Fatal(err)
		}
		records = len(day.Records)
	}
	b.StopTimer()
	if records == 0 {
		b.Fatal("no records generated")
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
