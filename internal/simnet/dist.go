package simnet

import (
	"math"
	"math/rand"
	"time"
)

// The traffic generators draw from a small set of heavy-tailed and
// exponential distributions: file sizes and flow sizes are log-normal,
// human think times are Pareto (bursty, long-tailed), and protocol timers
// are exponential around their nominal period. These helpers centralize
// the sampling so every generator treats its RNG identically.

// LogNormal samples exp(N(mu, sigma²)). mu and sigma are the parameters
// of the underlying normal, i.e. the median of the result is exp(mu).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(rng.NormFloat64()*sigma + mu)
}

// LogNormalMedian samples a log-normal with the given median and sigma of
// the underlying normal — a friendlier parameterization for generator
// configs ("median flow size 200 bytes, spread 0.8").
func LogNormalMedian(rng *rand.Rand, median, sigma float64) float64 {
	return LogNormal(rng, math.Log(median), sigma)
}

// Pareto samples a Pareto distribution with scale xm > 0 and shape
// alpha > 0. Human inter-action ("think") times are well modeled by
// Pareto tails.
func Pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Exp samples an exponential with the given mean.
func Exp(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// ExpDur samples an exponential duration with the given mean.
func ExpDur(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// UniformDur samples uniformly in [lo, hi).
func UniformDur(rng *rand.Rand, lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(rng.Int63n(int64(hi-lo)))
}

// Jitter returns d scaled by a uniform factor in [1−frac, 1+frac] — the
// small timer wobble real protocol stacks exhibit.
func Jitter(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	scale := 1 + frac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * scale)
}

// Bernoulli reports true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// Zipf draws ranks in [0, n) with a Zipfian popularity skew s > 1;
// popular destinations (rank 0) are drawn most often. It mirrors the
// skewed popularity of web servers and of file-sharing content.
func Zipf(rng *rand.Rand, s float64, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	z := rand.NewZipf(rng, s, 1, n-1)
	return z.Uint64()
}
