package simnet

import (
	"fmt"
	"net"
	"time"

	"plotters/internal/dist"
	"plotters/internal/engine"
	"plotters/internal/flow"
)

// DistCluster is an in-process distributed deployment: N shard workers
// wired to one coordinator over synchronous in-memory pipes
// (net.Pipe), speaking the exact wire protocol a TCP deployment speaks
// — frames, sequence numbers, acks, reconnects — with no sockets and no
// timing dependence. It exists for deterministic tests of the
// distributed pipeline (the 4-shard golden equivalence, kill-and-
// reconnect) and doubles as executable documentation of how the pieces
// wire together.
type DistCluster struct {
	Coordinator *dist.Coordinator
	Workers     []*dist.ShardWorker
	shards      int
}

// NewDistCluster builds a coordinator plus cfg.Shards workers, each
// dialing the coordinator through a fresh pipe per connection (so a
// dropped connection reconnects exactly as TCP would). emit receives
// every completed window's global result in ascending window order.
func NewDistCluster(cfg dist.CoordinatorConfig, emit func(*engine.Result) error) (*DistCluster, error) {
	coord, err := dist.NewCoordinator(cfg, emit)
	if err != nil {
		return nil, err
	}
	c := &DistCluster{Coordinator: coord, shards: cfg.Shards}
	for i := 0; i < cfg.Shards; i++ {
		w, err := dist.NewShardWorker(dist.WorkerConfig{
			Shard:  i,
			Shards: cfg.Shards,
			Engine: cfg.Engine,
			Dial: func() (net.Conn, error) {
				client, server := net.Pipe()
				go coord.ServeConn(server)
				return client, nil
			},
		})
		if err != nil {
			coord.Close()
			return nil, err
		}
		c.Workers = append(c.Workers, w)
	}
	return c, nil
}

// Add routes one record to the worker owning its initiator's shard —
// the record distribution a fronting load balancer (or per-shard
// exporter assignment) performs in a real deployment.
func (c *DistCluster) Add(r *flow.Record) error {
	return c.Workers[flow.ShardOf(r.Src, c.shards)].Add(r)
}

// AdvanceTo punctuates every worker's stream: no record before t will
// arrive anywhere, so complete windows seal and their summaries ship.
func (c *DistCluster) AdvanceTo(t time.Time) error {
	for _, w := range c.Workers {
		if err := w.AdvanceTo(t); err != nil {
			return err
		}
	}
	return nil
}

// Flush seals every worker's open partial window (end of feed).
func (c *DistCluster) Flush() error {
	for _, w := range c.Workers {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Drain waits until the coordinator has acknowledged every worker's
// outstanding frames — after it returns, every shipped window has been
// fully processed (results already emitted).
func (c *DistCluster) Drain(timeout time.Duration) error {
	for _, w := range c.Workers {
		if err := w.Drain(timeout); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the cluster down: workers first, then the coordinator.
// Pending windows are dropped; Flush + Drain + Coordinator.Flush first
// for a clean end-of-feed shutdown.
func (c *DistCluster) Close() error {
	var firstErr error
	for _, w := range c.Workers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.Coordinator.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// String summarizes the cluster shape.
func (c *DistCluster) String() string {
	return fmt.Sprintf("simnet cluster: %d shards + coordinator (pipe transport)", c.shards)
}
