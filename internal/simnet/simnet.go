// Package simnet is the discrete-event simulation substrate on which all
// traffic generators run. It provides a virtual clock with an event heap
// (so eight "days" of campus traffic synthesize in seconds, fully
// deterministically) and a flow sink that collects the records the
// generators emit.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/flow"
)

// Simulator is a single-threaded discrete-event simulator. Events fire in
// timestamp order; ties fire in scheduling order. All randomness flows
// from the seed given to New, so identical configurations produce
// identical traces.
type Simulator struct {
	now     time.Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	records []flow.Record
}

// New creates a simulator whose clock starts at start, seeded for
// deterministic replay.
func New(start time.Time, seed int64) *Simulator {
	return &Simulator{
		now: start,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time { return s.now }

// RNG returns the simulator's deterministic random source. Generators
// that need independent streams should derive sub-sources via Fork.
func (s *Simulator) RNG() *rand.Rand { return s.rng }

// Fork derives an independent deterministic random source from the
// simulator's seed stream, so one generator's draw count does not perturb
// another's sequence.
func (s *Simulator) Fork() *rand.Rand {
	return rand.New(rand.NewSource(s.rng.Int63()))
}

// Schedule enqueues fn to run at the given virtual time. Times in the
// past (before Now) are clamped to Now.
func (s *Simulator) Schedule(at time.Time, fn func()) {
	if at.Before(s.now) {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// After enqueues fn to run d from the current virtual time. Negative
// delays are clamped to zero.
func (s *Simulator) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.Schedule(s.now.Add(d), fn)
}

// Run fires events in order until the event queue drains or the next
// event is at or after until; the clock finishes at until (or at the last
// event time if that is later than until — which cannot happen since such
// events are left queued).
func (s *Simulator) Run(until time.Time) {
	for len(s.events) > 0 {
		next := s.events[0]
		if !next.at.Before(until) {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		next.fn()
	}
	if s.now.Before(until) {
		s.now = until
	}
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.events) }

// Emit records one flow into the simulator's sink. The record is
// validated; an invalid record panics, since generators constructing
// invalid flows is a programming error, not an input condition.
func (s *Simulator) Emit(r flow.Record) {
	if err := r.Validate(); err != nil {
		panic(fmt.Sprintf("simnet: generator emitted invalid record: %v", err))
	}
	s.records = append(s.records, r)
}

// Records returns all emitted flows in emission order. The caller takes
// ownership; subsequent emissions append to a fresh sink.
func (s *Simulator) Records() []flow.Record {
	out := s.records
	s.records = nil
	return out
}

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
