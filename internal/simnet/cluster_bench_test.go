package simnet

import (
	"fmt"
	"testing"
	"time"

	"plotters/internal/dist"
	"plotters/internal/engine"
)

// BenchmarkDistClusterShards pushes the two-window cluster corpus
// through a pipe cluster at 1, 2 and 4 shards. Each iteration is a full
// run — connect, stream, seal both windows, drain acks — so records/s
// measures the end-to-end distributed path, not just ingest.
func BenchmarkDistClusterShards(b *testing.B) {
	records := clusterCorpus()
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				windows := 0
				cl, err := NewDistCluster(dist.CoordinatorConfig{Shards: shards, Engine: clusterEngineConfig()},
					func(r *engine.Result) error { windows++; return nil })
				if err != nil {
					b.Fatal(err)
				}
				for j := range records {
					if err := cl.Add(&records[j]); err != nil {
						b.Fatal(err)
					}
				}
				if err := cl.AdvanceTo(clusterT0.Add(2 * time.Hour)); err != nil {
					b.Fatal(err)
				}
				if err := cl.Drain(30 * time.Second); err != nil {
					b.Fatal(err)
				}
				cl.Close()
				if windows != 2 {
					b.Fatalf("run emitted %d windows, want 2", windows)
				}
			}
			b.ReportMetric(float64(len(records))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}
