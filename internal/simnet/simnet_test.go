package simnet

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

func start() time.Time {
	return time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
}

func TestEventOrdering(t *testing.T) {
	s := New(start(), 1)
	var order []int
	s.Schedule(start().Add(3*time.Second), func() { order = append(order, 3) })
	s.Schedule(start().Add(1*time.Second), func() { order = append(order, 1) })
	s.Schedule(start().Add(2*time.Second), func() { order = append(order, 2) })
	s.Run(start().Add(time.Minute))
	if !reflect.DeepEqual(order, []int{1, 2, 3}) {
		t.Errorf("order = %v", order)
	}
	if !s.Now().Equal(start().Add(time.Minute)) {
		t.Errorf("clock = %v", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(start(), 1)
	at := start().Add(time.Second)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(at, func() { order = append(order, i) })
	}
	s.Run(start().Add(time.Minute))
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("tie order = %v", order)
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := New(start(), 1)
	fired := 0
	s.Schedule(start().Add(time.Second), func() { fired++ })
	s.Schedule(start().Add(time.Hour), func() { fired++ })
	s.Run(start().Add(time.Minute))
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
	// An event exactly at the boundary does not fire (half-open window).
	s2 := New(start(), 1)
	s2.Schedule(start().Add(time.Minute), func() { fired++ })
	s2.Run(start().Add(time.Minute))
	if fired != 1 {
		t.Error("boundary event fired")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New(start(), 1)
	var ticks []time.Time
	var tick func()
	tick = func() {
		ticks = append(ticks, s.Now())
		s.After(10*time.Second, tick)
	}
	s.After(0, tick)
	s.Run(start().Add(35 * time.Second))
	if len(ticks) != 4 { // 0, 10, 20, 30
		t.Fatalf("ticks = %d, want 4", len(ticks))
	}
	if !ticks[3].Equal(start().Add(30 * time.Second)) {
		t.Errorf("last tick = %v", ticks[3])
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	s := New(start(), 1)
	var at time.Time
	s.Schedule(start().Add(-time.Hour), func() { at = s.Now() })
	s.Run(start().Add(time.Second))
	if !at.Equal(start()) {
		t.Errorf("past event ran at %v, want clock start", at)
	}
	s.After(-5*time.Second, func() {})
	if s.Pending() != 1 {
		t.Error("negative After not scheduled")
	}
}

func TestEmitAndRecords(t *testing.T) {
	s := New(start(), 1)
	r := flow.Record{
		Src: 1, Dst: 2, Proto: flow.TCP, State: flow.StateEstablished,
		Start: start(), End: start().Add(time.Second),
	}
	s.Emit(r)
	s.Emit(r)
	got := s.Records()
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	// Sink resets after Records.
	if len(s.Records()) != 0 {
		t.Error("sink not reset")
	}
}

func TestEmitInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid record should panic")
		}
	}()
	s := New(start(), 1)
	s.Emit(flow.Record{}) // zero record is invalid (no proto/state)
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		s := New(start(), 42)
		var vals []float64
		var tick func()
		tick = func() {
			vals = append(vals, s.RNG().Float64())
			s.After(time.Duration(1+s.RNG().Intn(10))*time.Second, tick)
		}
		s.After(0, tick)
		s.Run(start().Add(5 * time.Minute))
		return vals
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical seeds produced different runs")
	}
}

func TestFork(t *testing.T) {
	s := New(start(), 7)
	r1 := s.Fork()
	r2 := s.Fork()
	// Forked streams differ from each other (with overwhelming probability).
	same := true
	for i := 0; i < 8; i++ {
		if r1.Int63() != r2.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("forked RNGs produced identical streams")
	}
}

func TestDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))

	// LogNormalMedian: median of many samples near the requested median.
	n := 20000
	below := 0
	for i := 0; i < n; i++ {
		if LogNormalMedian(rng, 100, 0.8) < 100 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("log-normal median fraction below = %v, want ≈0.5", frac)
	}

	// Pareto: all samples >= xm; mean for alpha=2 is 2·xm.
	var sum float64
	for i := 0; i < n; i++ {
		v := Pareto(rng, 10, 2)
		if v < 10 {
			t.Fatalf("Pareto sample %v below scale", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if mean < 18 || mean > 22 {
		t.Errorf("Pareto mean = %v, want ≈20", mean)
	}

	// Exp: mean approximately as requested.
	sum = 0
	for i := 0; i < n; i++ {
		sum += Exp(rng, 30)
	}
	if m := sum / float64(n); m < 28 || m > 32 {
		t.Errorf("Exp mean = %v, want ≈30", m)
	}

	// ExpDur is positive.
	if ExpDur(rng, time.Second) < 0 {
		t.Error("ExpDur negative")
	}

	// UniformDur respects bounds and degenerate ranges.
	for i := 0; i < 1000; i++ {
		d := UniformDur(rng, time.Second, 2*time.Second)
		if d < time.Second || d >= 2*time.Second {
			t.Fatalf("UniformDur out of range: %v", d)
		}
	}
	if d := UniformDur(rng, time.Second, time.Second); d != time.Second {
		t.Errorf("degenerate UniformDur = %v", d)
	}

	// Jitter stays within the fraction band; frac=0 is exact.
	for i := 0; i < 1000; i++ {
		d := Jitter(rng, 10*time.Second, 0.2)
		if d < 8*time.Second || d > 12*time.Second {
			t.Fatalf("Jitter out of band: %v", d)
		}
	}
	if d := Jitter(rng, 10*time.Second, 0); d != 10*time.Second {
		t.Errorf("zero-frac Jitter = %v", d)
	}

	// Bernoulli extremes.
	if Bernoulli(rng, 0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !Bernoulli(rng, 1) {
		t.Error("Bernoulli(1) returned false")
	}

	// Zipf stays in range and skews low.
	low := 0
	for i := 0; i < n; i++ {
		r := Zipf(rng, 1.5, 100)
		if r >= 100 {
			t.Fatalf("Zipf out of range: %d", r)
		}
		if r == 0 {
			low++
		}
	}
	if low < n/4 {
		t.Errorf("Zipf rank 0 drawn %d/%d times; expected heavy skew", low, n)
	}
	if Zipf(rng, 1.5, 0) != 0 {
		t.Error("Zipf(n=0) should return 0")
	}
}
