package simnet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"plotters/internal/core"
	"plotters/internal/dist"
	"plotters/internal/engine"
	"plotters/internal/flow"
)

var clusterT0 = time.Date(2009, 10, 6, 9, 0, 0, 0, time.UTC)

// clusterCorpus fabricates two detection windows of traffic: four bot
// families on distinct fixed timers (clusterable, machine-driven) plus
// human-like hosts with irregular exponential gaps, sorted by start
// time. Window length is 1h.
func clusterCorpus() []flow.Record {
	var records []flow.Record
	emit := func(src flow.IP, windowStart time.Time, period time.Duration, jitterNS int64, bytes uint64, peers int) {
		at := windowStart
		end := windowStart.Add(time.Hour)
		for i := 0; at.Before(end.Add(-2 * time.Second)); i++ {
			state := flow.StateEstablished
			if i%4 == 0 {
				state = flow.StateFailed // churn failures clear the reduction (humans never fail)
			}
			records = append(records, flow.Record{
				Src: src, Dst: flow.IP(0x08000000 + uint32(src)*100 + uint32(i%peers)),
				SrcPort: 40000, DstPort: 80, Proto: flow.TCP,
				Start: at, End: at.Add(time.Second),
				SrcPkts: 2, DstPkts: 2, SrcBytes: bytes, DstBytes: 100,
				State: state,
			})
			at = at.Add(period + time.Duration(int64(i)*jitterNS))
		}
	}
	for win := 0; win < 2; win++ {
		start := clusterT0.Add(time.Duration(win) * time.Hour)
		addr := flow.IP(1)
		for fam, period := range []time.Duration{5 * time.Second, 11 * time.Second, 17 * time.Second, 29 * time.Second} {
			for k := 0; k < 6; k++ {
				// Per-host byte variation so the θ_vol percentile has a
				// real distribution to cut.
				emit(addr, start, period, int64(fam+1)*1000, 80+uint64(addr)*5, 3)
				addr++
			}
		}
		rng := rand.New(rand.NewSource(int64(101 + win)))
		for i := 0; i < 30; i++ {
			at := start
			for j := 0; j < 60; j++ {
				records = append(records, flow.Record{
					Src: addr, Dst: flow.IP(0x0D000000 + uint32(j%5)),
					SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
					Start: at, End: at.Add(time.Second),
					SrcPkts: 1, DstPkts: 1, SrcBytes: 5000, DstBytes: 10,
					State: flow.StateEstablished,
				})
				at = at.Add(time.Duration((1 + rng.ExpFloat64()*8) * float64(time.Second)))
			}
			addr++
		}
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].Start.Before(records[j].Start) })
	return records
}

func clusterEngineConfig() engine.Config {
	cfg := core.DefaultConfig()
	cfg.MinInterstitialSamples = 30
	cfg.CutFraction = 0.3
	cfg.VolPercentile = 70
	return engine.Config{
		Window: time.Hour,
		Origin: clusterT0,
		Core:   cfg,
	}
}

// singleProcessRun is the reference: the same stream through one
// WindowedDetector.
func singleProcessRun(t *testing.T, records []flow.Record) []*engine.Result {
	t.Helper()
	var results []*engine.Result
	eng, err := engine.New(clusterEngineConfig(), func(r *engine.Result) error {
		results = append(results, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := eng.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.AdvanceTo(clusterT0.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	return results
}

func compareRuns(t *testing.T, got, want []*engine.Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows, want %d", label, len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Index != w.Index || g.Window != w.Window || g.Hosts != w.Hosts || g.Records != w.Records || g.Partial != w.Partial {
			t.Errorf("%s: window %d header: got index=%d hosts=%d records=%d partial=%v, want index=%d hosts=%d records=%d partial=%v",
				label, i, g.Index, g.Hosts, g.Records, g.Partial, w.Index, w.Hosts, w.Records, w.Partial)
		}
		if !reflect.DeepEqual(g.Detection.Suspects, w.Detection.Suspects) {
			t.Errorf("%s: window %d suspects:\ngot  %v\nwant %v", label, i,
				g.Detection.Suspects.Sorted(), w.Detection.Suspects.Sorted())
		}
		if g.Detection.Reduction.Threshold != w.Detection.Reduction.Threshold ||
			g.Detection.Volume.Threshold != w.Detection.Volume.Threshold ||
			g.Detection.Churn.Threshold != w.Detection.Churn.Threshold ||
			g.Detection.HM.Threshold != w.Detection.HM.Threshold {
			t.Errorf("%s: window %d thresholds differ", label, i)
		}
		if !reflect.DeepEqual(g.Detection.HM.Clusters, w.Detection.HM.Clusters) {
			t.Errorf("%s: window %d θ_hm clusters differ", label, i)
		}
	}
}

// A 4-shard pipe cluster must reproduce the single-process windowed run
// bit for bit, across multiple windows.
func TestDistClusterMatchesSingleProcess(t *testing.T) {
	records := clusterCorpus()
	want := singleProcessRun(t, records)
	if len(want) != 2 {
		t.Fatalf("reference run emitted %d windows, want 2", len(want))
	}
	if len(want[0].Detection.Suspects) == 0 {
		t.Fatal("reference run found no suspects — corpus does not exercise the pipeline")
	}

	var got []*engine.Result
	cl, err := NewDistCluster(dist.CoordinatorConfig{Shards: 4, Engine: clusterEngineConfig()},
		func(r *engine.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := range records {
		if err := cl.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.AdvanceTo(clusterT0.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	compareRuns(t, got, want, "pipe cluster")

	if n := cl.Coordinator.Detector().Windows(); n != 2 {
		t.Errorf("coordinator emitted %d windows, want 2", n)
	}
	for _, ss := range cl.Coordinator.ShardSeqs() {
		if !ss.Seen {
			t.Errorf("shard %d never connected", ss.Shard)
		}
		if ss.Gaps != 0 {
			t.Errorf("shard %d: %d sequence gaps on a lossless transport", ss.Shard, ss.Gaps)
		}
	}
}

// Killing shard connections mid-run must change nothing about the
// output: the workers reconnect, resend their unacknowledged frames,
// and the coordinator deduplicates.
func TestDistClusterKillAndReconnect(t *testing.T) {
	records := clusterCorpus()
	want := singleProcessRun(t, records)

	var got []*engine.Result
	cl, err := NewDistCluster(dist.CoordinatorConfig{Shards: 4, Engine: clusterEngineConfig()},
		func(r *engine.Result) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Feed the first window, punctuate so its summaries ship, then cut
	// every worker's connection before the second window's frames.
	boundary := clusterT0.Add(time.Hour)
	i := 0
	for ; i < len(records) && records[i].Start.Before(boundary); i++ {
		if err := cl.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.AdvanceTo(boundary); err != nil {
		t.Fatal(err)
	}
	for _, w := range cl.Workers {
		w.DropConnection()
	}
	for ; i < len(records); i++ {
		if err := cl.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.AdvanceTo(clusterT0.Add(2 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Drain(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	compareRuns(t, got, want, "kill-and-reconnect cluster")

	reconnected := 0
	for _, ss := range cl.Coordinator.ShardSeqs() {
		if ss.Connects >= 2 {
			reconnected++
		}
	}
	if reconnected == 0 {
		t.Error("no shard reconnected — the kill did not exercise the resend path")
	}
}
