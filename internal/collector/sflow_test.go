package collector

import (
	"encoding/binary"
	"testing"
	"time"

	"plotters/internal/flow"
)

func TestSFlowRoundTrip(t *testing.T) {
	recs := sampleRecords()
	pkt, err := AppendSFlow(nil, recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Dispatch property: the u32 version 5 reads as PacketVersion 0.
	if v, ok := PacketVersion(pkt); !ok || v != 0 {
		t.Fatalf("PacketVersion = %d/%v, want 0 (sFlow)", v, ok)
	}

	arrival := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	hdr, got, stats, err := DecodeSFlow(pkt, arrival, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sequence != 3 || hdr.Samples != len(recs) {
		t.Errorf("header seq=%d samples=%d, want 3/%d", hdr.Sequence, hdr.Samples, len(recs))
	}
	if stats.Records != len(recs) || stats.SkippedSamples != 0 || stats.SkippedRecords != 0 {
		t.Fatalf("stats = %+v, want %d clean records", stats, len(recs))
	}
	for i := range recs {
		want, have := recs[i], got[i]
		if have.Src != want.Src || have.Dst != want.Dst ||
			have.SrcPort != want.SrcPort || have.DstPort != want.DstPort ||
			have.Proto != want.Proto || have.State != want.State ||
			have.SrcPkts != want.SrcPkts || have.DstPkts != want.DstPkts ||
			have.SrcBytes != want.SrcBytes || have.DstBytes != want.DstBytes {
			t.Errorf("record %d:\n got %+v\nwant %+v", i, have, want)
		}
		if !have.Start.Equal(want.Start) || !have.End.Equal(want.End) {
			t.Errorf("record %d times %v–%v, want %v–%v (arrival clock leaked past the extension?)",
				i, have.Start, have.End, want.Start, want.End)
		}
	}
}

// TestSFlowRawHeaderFallback strips the extension records out of an
// emitted datagram and checks the standard raw-packet-header parse
// still recovers the 5-tuple, stamped with the arrival clock.
func TestSFlowRawHeaderFallback(t *testing.T) {
	recs := sampleRecords()
	pkt, err := AppendSFlow(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkt = stripSFlowExtensions(t, pkt)

	arrival := time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)
	_, got, stats, err := DecodeSFlow(pkt, arrival, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(recs) {
		t.Fatalf("stats = %+v, want %d records", stats, len(recs))
	}
	for i := range recs {
		want, have := recs[i], got[i]
		if have.Src != want.Src || have.Dst != want.Dst ||
			have.SrcPort != want.SrcPort || have.DstPort != want.DstPort ||
			have.Proto != want.Proto {
			t.Errorf("record %d 5-tuple mismatch:\n got %+v\nwant %+v", i, have, want)
		}
		if !have.Start.Equal(arrival) || !have.End.Equal(arrival) {
			t.Errorf("record %d not stamped with the arrival clock: %v–%v", i, have.Start, have.End)
		}
		if have.SrcPkts != 1 {
			t.Errorf("record %d: raw-header reconstruction counts %d packets, want 1", i, have.SrcPkts)
		}
		// TCP state survives via the synthesized header's flags; UDP
		// reconstructions default to established (no reply evidence in a
		// single sampled frame).
		if want.Proto == flow.TCP && have.State != want.State {
			t.Errorf("record %d TCP state %v, want %v", i, have.State, want.State)
		}
	}
}

// stripSFlowExtensions walks an AppendSFlow datagram and rewrites each
// flow sample without its extension record.
func stripSFlowExtensions(t *testing.T, pkt []byte) []byte {
	t.Helper()
	be := binary.BigEndian
	out := append([]byte{}, pkt[:28]...) // header, agent, seq, uptime, nsamples
	off := 28
	for off < len(pkt) {
		sampleLen := int(be.Uint32(pkt[off+4:]))
		body := pkt[off+8 : off+8+sampleLen]
		off += 8 + sampleLen

		// Walk the sample's records, keeping all but the extension.
		var kept []byte
		n := 0
		rb := body[32:]
		for len(rb) >= 8 {
			format := be.Uint32(rb)
			recLen := int(be.Uint32(rb[4:]))
			whole := rb[:8+recLen]
			rb = rb[8+recLen:]
			if format == sflowExtEnterprise<<12|1 {
				continue
			}
			kept = append(kept, whole...)
			n++
		}
		newBody := append(append([]byte{}, body[:32]...), kept...)
		be.PutUint32(newBody[28:], uint32(n))

		var sh [8]byte
		be.PutUint32(sh[0:], 1)
		be.PutUint32(sh[4:], uint32(len(newBody)))
		out = append(out, sh[:]...)
		out = append(out, newBody...)
	}
	return out
}

func TestSFlowSkipsForeignSamples(t *testing.T) {
	recs := sampleRecords()[:1]
	pkt, err := AppendSFlow(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Append a counter sample (type 2) and bump the sample count.
	be := binary.BigEndian
	counter := make([]byte, 8+12)
	be.PutUint32(counter[0:], 2)
	be.PutUint32(counter[4:], 12)
	pkt = append(pkt, counter...)
	be.PutUint32(pkt[24:], 2)

	_, got, stats, err := DecodeSFlow(pkt, time.Now(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || stats.SkippedSamples != 1 || len(got) != 1 {
		t.Fatalf("stats = %+v / %d records, want 1 record + 1 skipped sample", stats, len(got))
	}
}

func TestSFlowRejects(t *testing.T) {
	if _, _, _, err := DecodeSFlow([]byte{0, 0, 0, 4}, time.Now(), nil); err == nil {
		t.Error("version 4 datagram decoded")
	}
	if _, _, _, err := DecodeSFlow([]byte{0, 0}, time.Now(), nil); err == nil {
		t.Error("2-byte datagram decoded")
	}
	pkt, _ := AppendSFlow(nil, sampleRecords(), 0)
	if _, _, _, err := DecodeSFlow(pkt[:40], time.Now(), nil); err == nil {
		t.Error("truncated datagram decoded without error")
	}
	if _, err := AppendSFlow(nil, nil, 0); err == nil {
		t.Error("empty datagram encoded")
	}
}
