package collector

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// benchPacket builds one full 30-record v5 packet — the shape a busy
// exporter actually sends.
func benchPacket(b *testing.B) []byte {
	b.Helper()
	t0 := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	records := make([]flow.Record, V5MaxRecords)
	for i := range records {
		records[i] = flow.Record{
			Src: flow.IP(0x80020000 + i), Dst: flow.IP(0x42230000 + i*7),
			SrcPort: uint16(40000 + i), DstPort: 80, Proto: flow.TCP,
			Start:   t0.Add(time.Duration(i) * 100 * time.Millisecond),
			End:     t0.Add(time.Duration(i)*100*time.Millisecond + 2*time.Second),
			SrcPkts: 10, SrcBytes: 1400,
			State: flow.StateEstablished,
		}
	}
	pkt, err := AppendV5(nil, records, 0)
	if err != nil {
		b.Fatal(err)
	}
	return pkt
}

func BenchmarkNetFlowDecode(b *testing.B) {
	pkt := benchPacket(b)
	var scratch []flow.Record
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, scratch, err = DecodeV5(pkt, scratch[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/s")
	b.ReportMetric(float64(b.N*V5MaxRecords)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkCollectorIngest measures the full in-process ingest path:
// Inject → bounded queue → decode worker → serialized handler. Drops
// are retried so every packet is actually processed — the number is
// sustained throughput, not enqueue speed.
func BenchmarkCollectorIngest(b *testing.B) {
	pkt := benchPacket(b)
	var processed atomic.Int64
	reg := metrics.New()
	c, err := Listen(Config{
		Addr:    "127.0.0.1:0",
		Handler: func(records []flow.Record) { processed.Add(int64(len(records))) },
		Metrics: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()
	drops := reg.Counter("collector/packets/dropped")

	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			before := drops.Value()
			c.Inject(pkt, "bench")
			if drops.Value() == before {
				break
			}
			runtime.Gosched() // queue full: let the workers catch up
		}
	}
	for processed.Load() < int64(b.N)*V5MaxRecords {
		runtime.Gosched()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/s")
	b.ReportMetric(float64(b.N*V5MaxRecords)/b.Elapsed().Seconds(), "records/s")
	cancel()
	if err := <-done; err != nil {
		b.Fatal(err)
	}
}
