package collector

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// wireRecords returns millisecond-aligned records — what the v5 wire
// format can carry losslessly (no payload, no responder counters).
func wireRecords() []flow.Record {
	t0 := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	return []flow.Record{
		{
			Src: flow.MakeIP(128, 2, 0, 1), Dst: flow.MakeIP(66, 35, 250, 150),
			SrcPort: 51234, DstPort: 80, Proto: flow.TCP,
			Start: t0, End: t0.Add(2 * time.Second),
			SrcPkts: 5, SrcBytes: 840,
			State: flow.StateEstablished,
		},
		{
			Src: flow.MakeIP(128, 2, 7, 9), Dst: flow.MakeIP(87, 4, 11, 2),
			SrcPort: 6346, DstPort: 6346, Proto: flow.UDP,
			Start: t0.Add(time.Minute + 250*time.Millisecond), End: t0.Add(time.Minute + 550*time.Millisecond),
			SrcPkts: 1, SrcBytes: 60,
			State: flow.StateFailed,
		},
		{
			Src: flow.MakeIP(128, 2, 200, 3), Dst: flow.MakeIP(201, 7, 8, 9),
			SrcPort: 4662, DstPort: 4662, Proto: flow.TCP,
			Start: t0.Add(2 * time.Minute), End: t0.Add(10 * time.Minute),
			SrcPkts: 900, SrcBytes: 4_000_000,
			State: flow.StateEstablished,
		},
		{
			Src: flow.MakeIP(128, 237, 1, 1), Dst: flow.MakeIP(10, 0, 0, 7),
			SrcPort: 53000, DstPort: 22, Proto: flow.TCP,
			Start: t0.Add(3 * time.Minute), End: t0.Add(3 * time.Minute),
			SrcPkts: 1, SrcBytes: 44,
			State: flow.StateFailed,
		},
	}
}

func TestV5RoundTrip(t *testing.T) {
	records := wireRecords()
	pkt, err := AppendV5(nil, records, 17)
	if err != nil {
		t.Fatal(err)
	}
	if want := V5HeaderSize + len(records)*V5RecordSize; len(pkt) != want {
		t.Fatalf("packet length = %d, want %d", len(pkt), want)
	}
	hdr, got, err := DecodeV5(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Count != len(records) || hdr.FlowSequence != 17 {
		t.Errorf("header count=%d seq=%d, want %d/17", hdr.Count, hdr.FlowSequence, len(records))
	}
	if !reflect.DeepEqual(got, records) {
		t.Errorf("round trip changed records:\ngot  %v\nwant %v", got, records)
	}
}

func TestV5TimestampsFloorToMillisecond(t *testing.T) {
	t0 := time.Date(2007, time.November, 5, 9, 0, 0, 123_456_789, time.UTC)
	in := []flow.Record{{
		Src: 1, Dst: 2, Proto: flow.TCP,
		Start: t0, End: t0.Add(1234567 * time.Nanosecond),
		State: flow.StateEstablished,
	}}
	pkt, err := AppendV5(nil, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := DecodeV5(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStart := t0.Truncate(time.Millisecond)
	wantEnd := in[0].End.Truncate(time.Millisecond)
	if !out[0].Start.Equal(wantStart) || !out[0].End.Equal(wantEnd) {
		t.Errorf("decoded times %v/%v, want ms floors %v/%v", out[0].Start, out[0].End, wantStart, wantEnd)
	}
}

func TestV5StateMapping(t *testing.T) {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		proto flow.Proto
		state flow.ConnState
	}{
		{flow.TCP, flow.StateEstablished},
		{flow.TCP, flow.StateFailed},
		{flow.UDP, flow.StateEstablished},
		{flow.UDP, flow.StateFailed},
		{flow.ICMP, flow.StateEstablished},
		{flow.ICMP, flow.StateFailed},
	} {
		in := []flow.Record{{Src: 1, Dst: 2, Proto: tc.proto, Start: t0, End: t0, State: tc.state}}
		pkt, err := AppendV5(nil, in, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, out, err := DecodeV5(pkt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0].State != tc.state {
			t.Errorf("%v/%v decoded as %v", tc.proto, tc.state, out[0].State)
		}
	}
}

func TestV5RealExporterFlagDefaults(t *testing.T) {
	// A hardware exporter zeroes tcp_flags on non-TCP flows: decode as
	// established. A flagless TCP flow never saw an ACK: failed.
	if st := flagsState(flow.UDP, 0); st != flow.StateEstablished {
		t.Errorf("flagless UDP = %v, want established", st)
	}
	if st := flagsState(flow.TCP, 0); st != flow.StateFailed {
		t.Errorf("flagless TCP = %v, want failed", st)
	}
	if st := flagsState(flow.TCP, tcpSYN|tcpACK|tcpFIN|tcpRST); st != flow.StateEstablished {
		t.Errorf("TCP with ACK among flag soup = %v, want established", st)
	}
}

func TestV5CounterSaturation(t *testing.T) {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	in := []flow.Record{{
		Src: 1, Dst: 2, Proto: flow.TCP, Start: t0, End: t0,
		SrcBytes: 1 << 40, State: flow.StateEstablished,
	}}
	pkt, err := AppendV5(nil, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := DecodeV5(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].SrcBytes != 1<<32-1 {
		t.Errorf("SrcBytes = %d, want saturated 2^32-1", out[0].SrcBytes)
	}
}

func TestV5DecodeErrors(t *testing.T) {
	valid, err := AppendV5(nil, wireRecords(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		pkt  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", valid[:10], ErrTruncated},
		{"wrong version", append([]byte{0, 9}, valid[2:]...), ErrVersion},
		{"length mismatch", valid[:len(valid)-1], ErrCorrupt},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xff), ErrCorrupt},
	} {
		if _, _, err := DecodeV5(tc.pkt, nil); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}

	// A record whose Last precedes First is corrupt.
	bad := append([]byte(nil), valid...)
	copy(bad[V5HeaderSize+24:], []byte{0xff, 0xff, 0xff, 0xff}) // First = max
	if _, _, err := DecodeV5(bad, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("inverted times: err = %v, want ErrCorrupt", err)
	}
}

func TestV5EncodeErrors(t *testing.T) {
	t0 := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	if _, err := AppendV5(nil, nil, 0); err == nil {
		t.Error("empty packet encoded")
	}
	many := make([]flow.Record, V5MaxRecords+1)
	for i := range many {
		many[i] = flow.Record{Src: 1, Dst: 2, Proto: flow.TCP, Start: t0, End: t0, State: flow.StateEstablished}
	}
	if _, err := AppendV5(nil, many, 0); err == nil {
		t.Error("oversized packet encoded")
	}
	span := []flow.Record{
		{Src: 1, Dst: 2, Proto: flow.TCP, Start: t0, End: t0, State: flow.StateEstablished},
		{Src: 1, Dst: 2, Proto: flow.TCP, Start: t0.Add(60 * 24 * time.Hour), End: t0.Add(60 * 24 * time.Hour), State: flow.StateEstablished},
	}
	if _, err := AppendV5(nil, span, 0); err == nil {
		t.Error("50-day span encoded past the uint32 ms range")
	}
	pre1970 := []flow.Record{{Src: 1, Dst: 2, Proto: flow.TCP,
		Start: time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC), End: time.Date(1960, 1, 1, 0, 0, 0, 0, time.UTC),
		State: flow.StateEstablished}}
	if _, err := AppendV5(nil, pre1970, 0); err == nil {
		t.Error("pre-epoch time encoded into unix_secs")
	}
}

func TestV5DecodeAppendsToDst(t *testing.T) {
	records := wireRecords()
	pkt, err := AppendV5(nil, records, 0)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]flow.Record, 0, 64)
	_, out, err := DecodeV5(pkt, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(records) || cap(out) != 64 {
		t.Errorf("dst reuse broken: len=%d cap=%d", len(out), cap(out))
	}
}

func TestPacketVersion(t *testing.T) {
	if _, ok := PacketVersion([]byte{5}); ok {
		t.Error("1-byte packet reported a version")
	}
	if v, ok := PacketVersion([]byte{0, 9, 1, 2}); !ok || v != 9 {
		t.Errorf("version = %d/%v, want 9/true", v, ok)
	}
}
