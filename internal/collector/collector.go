package collector

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// Defaults for Config's zero values.
const (
	// DefaultQueueSize bounds the packet queue between the socket
	// reader and the decode workers.
	DefaultQueueSize = 4096
	// DefaultMaxPacketSize is the largest datagram accepted. NetFlow
	// v5 packets are ≤1464 bytes; 9216 leaves headroom for
	// jumbo-framed v9 exports.
	DefaultMaxPacketSize = 9216
)

// Config shapes a Collector.
type Config struct {
	// Addr is the UDP listen address, e.g. ":2055" (the conventional
	// NetFlow port) or "127.0.0.1:0" (tests). Required.
	Addr string
	// Workers sizes the decode pool (≤0: one per CPU). Callers running
	// a windowed detector usually pass core.Config.Parallelism. With
	// more than one worker, packets may be decoded — and their records
	// delivered — slightly out of arrival order; size the engine's
	// MaxSkew accordingly, or use one worker for strict ordering.
	Workers int
	// QueueSize bounds the ingest queue (≤0: DefaultQueueSize). When
	// the queue is full, packets are counted as dropped and discarded —
	// the socket reader never blocks, so kernel-side loss stays
	// visible in the exporter sequence numbers instead of compounding.
	QueueSize int
	// MaxPacketSize is the receive buffer per datagram (≤0: default).
	// Longer datagrams are truncated by the kernel and will count as
	// malformed.
	MaxPacketSize int
	// ReadBuffer, when positive, requests this socket receive buffer
	// size (SO_RCVBUF) — the slack that absorbs packet bursts during a
	// window-boundary detection. Best effort; the kernel may clamp it.
	ReadBuffer int
	// Handler receives each decoded packet's records. Calls are
	// serialized (never concurrent), so a single-writer consumer like
	// engine.WindowedDetector needs no locking of its own. The slice
	// and the records are reused after the call returns — copy
	// anything retained. Required.
	Handler func(records []flow.Record)
	// Metrics, when non-nil, receives the collector's full instrument
	// set under "collector/...". Nil disables instrumentation at zero
	// cost.
	Metrics *metrics.Registry
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("collector: Addr is required")
	}
	if c.Handler == nil {
		return fmt.Errorf("collector: Handler is required")
	}
	return nil
}

// exporterKey identifies one exporter stream for sequence accounting.
type exporterKey struct {
	addr   string
	engine uint16 // v5 engine_type<<8|engine_id, or v9 source ID (low 16)
}

// exporterState tracks per-exporter sequence expectations.
type exporterState struct {
	v5Seen bool
	v5Next uint32 // expected flow_sequence of the next v5 packet
	v9Seen bool
	v9Next uint32 // expected package sequence of the next v9 packet
}

// packetBuf is one queued datagram. Buffers cycle through a pool; data
// is the receive buffer truncated to the datagram length.
type packetBuf struct {
	data     []byte
	exporter string
}

// Collector ingests NetFlow export packets from a UDP socket: a reader
// goroutine enqueues datagrams onto a bounded queue, a worker pool
// decodes them (v5 and v9), and decoded records are handed to the
// configured Handler in serialized calls. Create with Listen, drive
// with Run.
type Collector struct {
	cfg       Config
	conn      net.PacketConn
	queue     chan *packetBuf
	pool      sync.Pool
	templates *TemplateCache

	closeMu sync.RWMutex // guards closed + close(queue) vs. ingest sends
	closed  bool

	emitMu sync.Mutex // serializes Handler calls

	expMu     sync.Mutex
	exporters map[exporterKey]*exporterState

	// Instruments, cached at Listen so the hot path never takes the
	// registry lock. All are nil-safe no-ops without a registry.
	mPackets, mBytes, mRecords        *metrics.Counter
	mMalformed, mUnknownVer, mDropped *metrics.Counter
	mGaps, mLostFlows, mLostPackets   *metrics.Counter
	mResets, mTemplates, mMissingTmpl *metrics.Counter
	mReadErrors                       *metrics.Counter
	gQueueHW, gExporters              *metrics.Gauge
}

// Listen binds the UDP socket and prepares the collector. No packets
// are consumed until Run.
func Listen(cfg Config) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.MaxPacketSize <= 0 {
		cfg.MaxPacketSize = DefaultMaxPacketSize
	}
	conn, err := net.ListenPacket("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	if cfg.ReadBuffer > 0 {
		if uc, ok := conn.(*net.UDPConn); ok {
			// Best effort: a clamped buffer still works, just drops
			// earlier under burst.
			_ = uc.SetReadBuffer(cfg.ReadBuffer)
		}
	}
	reg := cfg.Metrics
	c := &Collector{
		cfg:       cfg,
		conn:      conn,
		queue:     make(chan *packetBuf, cfg.QueueSize),
		templates: NewTemplateCache(),
		exporters: make(map[exporterKey]*exporterState),

		mPackets:     reg.Counter("collector/packets"),
		mBytes:       reg.Counter("collector/bytes"),
		mRecords:     reg.Counter("collector/records"),
		mMalformed:   reg.Counter("collector/packets/malformed"),
		mUnknownVer:  reg.Counter("collector/packets/unknown_version"),
		mDropped:     reg.Counter("collector/packets/dropped"),
		mGaps:        reg.Counter("collector/seq/gaps"),
		mLostFlows:   reg.Counter("collector/seq/lost_flows"),
		mLostPackets: reg.Counter("collector/seq/lost_packets"),
		mResets:      reg.Counter("collector/seq/resets"),
		mTemplates:   reg.Counter("collector/v9/templates"),
		mMissingTmpl: reg.Counter("collector/v9/missing_template"),
		mReadErrors:  reg.Counter("collector/read_errors"),
		gQueueHW:     reg.Gauge("collector/queue/high_water"),
		gExporters:   reg.Gauge("collector/exporters"),
	}
	c.pool.New = func() any {
		return &packetBuf{data: make([]byte, cfg.MaxPacketSize)}
	}
	return c, nil
}

// Addr returns the bound socket address (useful with ":0").
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// Templates exposes the v9 template cache (e.g. for a status page).
func (c *Collector) Templates() *TemplateCache { return c.templates }

// Run pumps the socket until ctx is cancelled: the reader enqueues,
// cfg.Workers decode, and the Handler receives records. On
// cancellation the socket closes, queued packets drain through the
// workers, and Run returns nil. A socket read failure other than
// shutdown aborts with that error.
func (c *Collector) Run(ctx context.Context) error {
	var workers sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			c.worker()
		}()
	}
	stop := context.AfterFunc(ctx, func() { c.conn.Close() })
	readErr := c.readLoop(ctx)
	stop()
	c.conn.Close()

	// Stop accepting, then let the workers drain what's queued.
	c.closeMu.Lock()
	c.closed = true
	close(c.queue)
	c.closeMu.Unlock()
	workers.Wait()

	if readErr != nil && ctx.Err() == nil {
		return readErr
	}
	return nil
}

// readLoop is the socket pump: read, stamp, enqueue. It does no
// decoding — under load the only way to lose packets here is the
// bounded queue's explicit drop, never a stalled reader.
func (c *Collector) readLoop(ctx context.Context) error {
	for {
		pb := c.pool.Get().(*packetBuf)
		n, from, err := c.conn.ReadFrom(pb.data[:cap(pb.data)])
		if err != nil {
			c.pool.Put(pb)
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			c.mReadErrors.Add(1)
			return fmt.Errorf("collector: reading socket: %w", err)
		}
		pb.data = pb.data[:n]
		pb.exporter = from.String()
		c.ingest(pb)
	}
}

// Inject feeds one export packet as if it had arrived on the socket
// from the named exporter — the datagram-free path used by tests,
// benchmarks, and in-process replay. The data is copied; ingest
// semantics (metrics, queue bounds, drops) are identical to the socket
// path. Safe to call concurrently with Run; packets injected after Run
// returns are counted as dropped.
func (c *Collector) Inject(data []byte, exporter string) {
	pb := c.pool.Get().(*packetBuf)
	if cap(pb.data) < len(data) {
		pb.data = make([]byte, len(data))
	}
	pb.data = pb.data[:cap(pb.data)][:len(data)]
	copy(pb.data, data)
	pb.exporter = exporter
	c.ingest(pb)
}

// ingest enqueues one packet, dropping on overflow. Never blocks.
func (c *Collector) ingest(pb *packetBuf) {
	c.mPackets.Add(1)
	c.mBytes.Add(int64(len(pb.data)))
	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		c.mDropped.Add(1)
		c.pool.Put(pb)
		return
	}
	select {
	case c.queue <- pb:
		c.gQueueHW.SetMax(int64(len(c.queue)))
		c.closeMu.RUnlock()
	default:
		c.closeMu.RUnlock()
		c.mDropped.Add(1)
		c.pool.Put(pb)
	}
}

// worker decodes queued packets until the queue closes and drains. The
// record scratch slice is reused across packets; the Handler contract
// (records valid only during the call) is what makes that safe.
func (c *Collector) worker() {
	var scratch []flow.Record
	for pb := range c.queue {
		scratch = c.process(pb, scratch[:0])
	}
}

// process decodes one packet, accounts its sequence, and delivers its
// records. Malformed input is counted and skipped — a hostile or buggy
// exporter must never take the collector down.
func (c *Collector) process(pb *packetBuf, scratch []flow.Record) []flow.Record {
	defer func() {
		pb.data = pb.data[:cap(pb.data)]
		c.pool.Put(pb)
	}()
	version, ok := PacketVersion(pb.data)
	if !ok {
		c.mMalformed.Add(1)
		return scratch
	}
	switch version {
	case 5:
		hdr, recs, err := DecodeV5(pb.data, scratch)
		if err != nil {
			c.mMalformed.Add(1)
			return recs[:0]
		}
		c.accountV5(pb.exporter, hdr)
		c.deliver(recs)
		return recs[:0]
	case 9:
		hdr, recs, stats, err := c.templates.DecodeV9(pb.exporter, pb.data, scratch)
		c.mTemplates.Add(int64(stats.TemplatesLearned))
		c.mMissingTmpl.Add(int64(stats.MissingTemplate))
		if err != nil {
			c.mMalformed.Add(1)
			// Keep whatever decoded cleanly before the error.
		} else {
			c.accountV9(pb.exporter, hdr)
		}
		c.deliver(recs)
		return recs[:0]
	default:
		c.mUnknownVer.Add(1)
		return scratch
	}
}

// deliver hands one packet's records to the Handler under the emit
// lock, so consumers see a single-threaded stream.
func (c *Collector) deliver(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	c.mRecords.Add(int64(len(recs)))
	c.emitMu.Lock()
	c.cfg.Handler(recs)
	c.emitMu.Unlock()
}

// exporter returns the accounting state for one exporter stream,
// creating it on first sight.
func (c *Collector) exporter(key exporterKey) *exporterState {
	st, ok := c.exporters[key]
	if !ok {
		st = &exporterState{}
		c.exporters[key] = st
		c.gExporters.Set(int64(len(c.exporters)))
	}
	return st
}

// accountV5 tracks the exporter's running flow count. flow_sequence is
// the count of flows exported before this packet, so a jump forward of
// d means exactly d flows were exported but never decoded here — lost
// in the network, the kernel buffer, or our own queue drops. A jump
// backward is an exporter restart (or heavy reordering): counted as a
// reset and resynced, never as a gap.
func (c *Collector) accountV5(exporter string, hdr V5Header) {
	key := exporterKey{exporter, uint16(hdr.EngineType)<<8 | uint16(hdr.EngineID)}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	st := c.exporter(key)
	if st.v5Seen {
		switch d := int32(hdr.FlowSequence - st.v5Next); {
		case d > 0:
			c.mGaps.Add(1)
			c.mLostFlows.Add(int64(d))
		case d < 0:
			c.mResets.Add(1)
		}
	}
	st.v5Seen = true
	st.v5Next = hdr.FlowSequence + uint32(hdr.Count)
}

// SequenceState is one exporter stream's serializable sequence
// expectations — the state that must survive a collector restart so the
// first packets after recovery are checked against the pre-crash
// sequence numbers instead of being treated as a fresh stream (real
// gaps across the outage stay visible; false resets never fire).
type SequenceState struct {
	Exporter string // exporter socket address, as reported by the kernel
	Engine   uint16 // v5: engine_type<<8|engine_id; v9: source ID (low 16)
	V5Seen   bool
	V5Next   uint32 // expected flow_sequence of the next v5 packet
	V9Seen   bool
	V9Next   uint32 // expected package sequence of the next v9 packet
}

// SequenceStates snapshots every exporter stream's sequence accounting,
// sorted by (Exporter, Engine) so the same state always serializes to
// the same bytes. Safe to call concurrently with Run.
func (c *Collector) SequenceStates() []SequenceState {
	c.expMu.Lock()
	defer c.expMu.Unlock()
	if len(c.exporters) == 0 {
		return nil
	}
	out := make([]SequenceState, 0, len(c.exporters))
	for key, st := range c.exporters {
		out = append(out, SequenceState{
			Exporter: key.addr,
			Engine:   key.engine,
			V5Seen:   st.v5Seen,
			V5Next:   st.v5Next,
			V9Seen:   st.v9Seen,
			V9Next:   st.v9Next,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exporter != out[j].Exporter {
			return out[i].Exporter < out[j].Exporter
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// RestoreSequenceStates seeds the exporter accounting from a snapshot,
// typically before Run on a collector recovering from a checkpoint.
// Existing entries for the same exporter stream are overwritten.
func (c *Collector) RestoreSequenceStates(states []SequenceState) {
	c.expMu.Lock()
	defer c.expMu.Unlock()
	for _, s := range states {
		st := c.exporter(exporterKey{addr: s.Exporter, engine: s.Engine})
		st.v5Seen = s.V5Seen
		st.v5Next = s.V5Next
		st.v9Seen = s.V9Seen
		st.v9Next = s.V9Next
	}
}

// accountV9 does the same for v9, whose sequence counts packets.
func (c *Collector) accountV9(exporter string, hdr V9Header) {
	key := exporterKey{exporter, uint16(hdr.SourceID)}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	st := c.exporter(key)
	if st.v9Seen {
		switch d := int32(hdr.Sequence - st.v9Next); {
		case d > 0:
			c.mGaps.Add(1)
			c.mLostPackets.Add(int64(d))
		case d < 0:
			c.mResets.Add(1)
		}
	}
	st.v9Seen = true
	st.v9Next = hdr.Sequence + 1
}
