package collector

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"plotters/internal/flow"
	"plotters/internal/ingest"
	"plotters/internal/metrics"
)

// Defaults for Config's zero values.
const (
	// DefaultQueueSize bounds the packet queue between the socket
	// reader and the decode workers.
	DefaultQueueSize = 4096
	// DefaultMaxPacketSize is the largest datagram accepted. NetFlow
	// v5 packets are ≤1464 bytes; 9216 leaves headroom for
	// jumbo-framed v9 exports.
	DefaultMaxPacketSize = 9216
	// DefaultBatch is the receive batch: how many datagrams one
	// recvmmsg(2) call may drain on Linux. 1 falls back to single
	// reads everywhere.
	DefaultBatch = 32
)

// Config shapes a Collector.
type Config struct {
	// Addr is the UDP listen address, e.g. ":2055" (the conventional
	// NetFlow port) or "127.0.0.1:0" (tests). Required.
	Addr string
	// Workers sizes the decode pool (≤0: one per CPU). Callers running
	// a windowed detector usually pass core.Config.Parallelism. With
	// more than one worker, packets may be decoded — and their records
	// delivered — slightly out of arrival order; size the engine's
	// MaxSkew accordingly, or use one worker for strict ordering.
	Workers int
	// QueueSize bounds the ingest queue (≤0: DefaultQueueSize). When
	// the queue is full, packets are counted as dropped and discarded —
	// the socket reader never blocks, so kernel-side loss stays
	// visible in the exporter sequence numbers instead of compounding.
	QueueSize int
	// MaxPacketSize is the receive buffer per datagram (≤0: default).
	// Longer datagrams are truncated by the kernel and will count as
	// malformed.
	MaxPacketSize int
	// Batch is how many datagrams the socket reader may drain per
	// receive call (≤0: DefaultBatch). On Linux, batches arrive via one
	// recvmmsg(2) system call each; elsewhere the value only sizes the
	// buffer ring and reads stay one datagram per call.
	Batch int
	// ReadBuffer, when positive, requests this socket receive buffer
	// size (SO_RCVBUF) — the slack that absorbs packet bursts during a
	// window-boundary detection. Best effort; the kernel may clamp it.
	ReadBuffer int
	// SampleN, when > 1, enables the deterministic flow-sampling stage:
	// 1 in SampleN decoded records is kept (content-hash selection, see
	// ingest.Sampler) and the rest are counted and discarded before the
	// Handler. 0 and 1 keep every record — the default path is
	// bit-identical to an unsampled collector.
	SampleN uint64
	// SampleSeed perturbs the sampling hash so independent deployments
	// keep independent subsets. Only meaningful with SampleN > 1.
	SampleSeed uint64
	// Handler receives each decoded packet's records. Calls are
	// serialized (never concurrent), so a single-writer consumer like
	// engine.WindowedDetector needs no locking of its own. The slice
	// and the records are reused after the call returns — copy
	// anything retained. Required.
	Handler func(records []flow.Record)
	// Metrics, when non-nil, receives the collector's full instrument
	// set under "collector/...". Nil disables instrumentation at zero
	// cost.
	Metrics *metrics.Registry
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("collector: Addr is required")
	}
	if c.Handler == nil {
		return fmt.Errorf("collector: Handler is required")
	}
	return nil
}

// exporterKey identifies one exporter stream for sequence accounting.
type exporterKey struct {
	addr   string
	engine uint16 // v5 engine_type<<8|engine_id, or v9 source / IPFIX domain / sFlow sub-agent ID (low 16)
}

// exporterState tracks per-exporter sequence expectations. The v5/v9
// pairs survive restarts via SequenceStates; the IPFIX and sFlow pairs
// are collector-local (the checkpoint wire format predates them), so a
// restarted collector treats those streams as fresh — which can hide a
// cross-outage gap but can never fabricate one.
type exporterState struct {
	v5Seen    bool
	v5Next    uint32 // expected flow_sequence of the next v5 packet
	v9Seen    bool
	v9Next    uint32 // expected package sequence of the next v9 packet
	ipfixSeen bool
	ipfixNext uint32 // expected sequence (cumulative records) of the next IPFIX message
	sflowSeen bool
	sflowNext uint32 // expected datagram sequence of the next sFlow datagram
}

// Collector ingests flow export packets from a UDP socket: a batched
// reader drains datagrams into a fixed ring of reusable buffers
// (recvmmsg on Linux — see internal/ingest), a worker pool decodes
// them (NetFlow v5/v9, IPFIX, sFlow v5), an optional deterministic
// sampling stage thins the records, and survivors are handed to the
// configured Handler in serialized calls. The steady-state path from
// socket to Handler performs zero allocations per record. Create with
// Listen, drive with Run.
type Collector struct {
	cfg       Config
	conn      *net.UDPConn
	reader    ingest.BatchReader
	ring      *ingest.Ring
	queue     chan *ingest.Buf
	sampler   ingest.Sampler
	templates *TemplateCache

	closeMu sync.RWMutex // guards closed + close(queue) vs. ingest sends
	closed  bool

	emitMu sync.Mutex // serializes Handler calls

	expMu     sync.Mutex
	exporters map[exporterKey]*exporterState

	// Instruments, cached at Listen so the hot path never takes the
	// registry lock. All are nil-safe no-ops without a registry.
	mPackets, mBytes, mRecords        *metrics.Counter
	mMalformed, mUnknownVer, mDropped *metrics.Counter
	mGaps, mLostFlows, mLostPackets   *metrics.Counter
	mResets, mTemplates, mMissingTmpl *metrics.Counter
	mReadErrors, mBatches             *metrics.Counter
	mSampledOut, mEvicted             *metrics.Counter
	mSFlowSkipped                     *metrics.Counter
	gQueueHW, gExporters              *metrics.Gauge
}

// Listen binds the UDP socket and prepares the collector. No packets
// are consumed until Run.
func Listen(cfg Config) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.MaxPacketSize <= 0 {
		cfg.MaxPacketSize = DefaultMaxPacketSize
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	if cfg.ReadBuffer > 0 {
		// Best effort: a clamped buffer still works, just drops
		// earlier under burst.
		_ = conn.SetReadBuffer(cfg.ReadBuffer)
	}
	reg := cfg.Metrics
	c := &Collector{
		cfg:    cfg,
		conn:   conn,
		reader: ingest.NewBatchReader(conn, cfg.Batch),
		// The ring covers every buffer that can be in flight at once —
		// full queue + one receive batch + one per worker — so the
		// reader always finds a free buffer and backpressure resolves
		// as counted queue drops, never as a blocked socket.
		ring:      ingest.NewRing(cfg.QueueSize+cfg.Batch+cfg.Workers, cfg.MaxPacketSize),
		queue:     make(chan *ingest.Buf, cfg.QueueSize),
		sampler:   ingest.Sampler{N: cfg.SampleN, Seed: cfg.SampleSeed},
		templates: NewTemplateCache(),
		exporters: make(map[exporterKey]*exporterState),

		mPackets:      reg.Counter("collector/packets"),
		mBytes:        reg.Counter("collector/bytes"),
		mRecords:      reg.Counter("collector/records"),
		mMalformed:    reg.Counter("collector/packets/malformed"),
		mUnknownVer:   reg.Counter("collector/packets/unknown_version"),
		mDropped:      reg.Counter("collector/packets/dropped"),
		mGaps:         reg.Counter("collector/seq/gaps"),
		mLostFlows:    reg.Counter("collector/seq/lost_flows"),
		mLostPackets:  reg.Counter("collector/seq/lost_packets"),
		mResets:       reg.Counter("collector/seq/resets"),
		mTemplates:    reg.Counter("collector/v9/templates"),
		mMissingTmpl:  reg.Counter("collector/v9/missing_template"),
		mReadErrors:   reg.Counter("collector/read_errors"),
		mBatches:      reg.Counter("collector/batches"),
		mSampledOut:   reg.Counter("collector/records/sampled_out"),
		mEvicted:      reg.Counter("collector/templates/evicted"),
		mSFlowSkipped: reg.Counter("collector/sflow/skipped"),
		gQueueHW:      reg.Gauge("collector/queue/high_water"),
		gExporters:    reg.Gauge("collector/exporters"),
	}
	return c, nil
}

// Addr returns the bound socket address (useful with ":0").
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// Templates exposes the v9/IPFIX template cache (e.g. for a status
// page).
func (c *Collector) Templates() *TemplateCache { return c.templates }

// Run pumps the socket until ctx is cancelled: the reader enqueues,
// cfg.Workers decode, and the Handler receives records. On
// cancellation the socket closes, queued packets drain through the
// workers, and Run returns nil. A socket read failure other than
// shutdown aborts with that error.
func (c *Collector) Run(ctx context.Context) error {
	var workers sync.WaitGroup
	for i := 0; i < c.cfg.Workers; i++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			c.worker()
		}()
	}
	stop := context.AfterFunc(ctx, func() { c.conn.Close() })
	readErr := c.readLoop(ctx)
	stop()
	c.conn.Close()

	// Stop accepting, then let the workers drain what's queued.
	c.closeMu.Lock()
	c.closed = true
	close(c.queue)
	c.closeMu.Unlock()
	workers.Wait()

	if readErr != nil && ctx.Err() == nil {
		return readErr
	}
	return nil
}

// readLoop is the socket pump: pull free buffers from the ring, fill a
// batch from the socket, enqueue. It does no decoding — under load the
// only way to lose packets here is the bounded queue's explicit drop,
// never a stalled reader. At steady state the loop performs zero
// allocations: buffers recycle through the ring and exporter addresses
// are interned by the reader.
func (c *Collector) readLoop(ctx context.Context) error {
	bufs := make([]*ingest.Buf, 0, c.cfg.Batch)
	for {
		bufs = bufs[:0]
		for len(bufs) < c.cfg.Batch {
			b, ok := c.ring.Get()
			if !ok {
				break
			}
			bufs = append(bufs, b)
		}
		if len(bufs) == 0 {
			// Unreachable by construction (the ring is sized past the
			// queue + workers), kept as a guard against a hot spin.
			time.Sleep(time.Millisecond)
			continue
		}
		n, err := c.reader.ReadBatch(bufs)
		if err != nil {
			for _, b := range bufs {
				c.ring.Put(b)
			}
			if ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				return nil
			}
			c.mReadErrors.Add(1)
			return fmt.Errorf("collector: reading socket: %w", err)
		}
		c.mBatches.Add(1)
		for _, b := range bufs[n:] {
			c.ring.Put(b)
		}
		for _, b := range bufs[:n] {
			c.ingest(b)
		}
	}
}

// Inject feeds one export packet as if it had arrived on the socket
// from the named exporter — the datagram-free path used by tests,
// benchmarks, and in-process replay. The data is copied; ingest
// semantics (metrics, queue bounds, drops) are identical to the socket
// path, including buffer-ring exhaustion counting as a drop. Safe to
// call concurrently with Run; packets injected after Run returns are
// counted as dropped.
func (c *Collector) Inject(data []byte, exporter string) {
	pb, ok := c.ring.Get()
	if !ok {
		c.mPackets.Add(1)
		c.mBytes.Add(int64(len(data)))
		c.mDropped.Add(1)
		return
	}
	if cap(pb.Data) < len(data) {
		pb.Data = make([]byte, len(data))
	}
	pb.Data = pb.Data[:len(data)]
	copy(pb.Data, data)
	pb.Exporter = exporter
	c.ingest(pb)
}

// ingest enqueues one packet, dropping on overflow. Never blocks.
func (c *Collector) ingest(pb *ingest.Buf) {
	c.mPackets.Add(1)
	c.mBytes.Add(int64(len(pb.Data)))
	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		c.mDropped.Add(1)
		c.ring.Put(pb)
		return
	}
	select {
	case c.queue <- pb:
		c.gQueueHW.SetMax(int64(len(c.queue)))
		c.closeMu.RUnlock()
	default:
		c.closeMu.RUnlock()
		c.mDropped.Add(1)
		c.ring.Put(pb)
	}
}

// worker decodes queued packets until the queue closes and drains.
// Each worker owns one record arena reused across packets; the Handler
// contract (records valid only during the call) is what makes that
// safe.
func (c *Collector) worker() {
	var arena ingest.RecordArena
	for pb := range c.queue {
		c.process(pb, &arena)
	}
}

// process decodes one packet, accounts its sequence, and delivers its
// records through the sampling stage. Malformed input is counted and
// skipped — a hostile or buggy exporter must never take the collector
// down.
func (c *Collector) process(pb *ingest.Buf, arena *ingest.RecordArena) {
	defer c.ring.Put(pb)
	if pb.Truncated {
		// The kernel cut the datagram (MSG_TRUNC): it cannot decode
		// cleanly, so count it without parsing.
		c.mMalformed.Add(1)
		return
	}
	scratch := arena.Take()
	defer func() { arena.Reset(scratch) }()
	version, ok := PacketVersion(pb.Data)
	if !ok {
		c.mMalformed.Add(1)
		return
	}
	switch version {
	case 0:
		// sFlow v5 leads with a u32 version, so the first u16 is 0.
		if len(pb.Data) < 4 || !isSFlow(pb.Data) {
			c.mUnknownVer.Add(1)
			return
		}
		hdr, recs, stats, err := DecodeSFlow(pb.Data, time.Now().UTC(), scratch)
		scratch = recs
		c.mSFlowSkipped.Add(int64(stats.SkippedSamples + stats.SkippedRecords))
		if err != nil {
			c.mMalformed.Add(1)
			// Keep whatever decoded cleanly before the error.
		} else {
			c.accountSFlow(pb.Exporter, hdr)
		}
		c.deliver(recs)
	case 5:
		hdr, recs, err := DecodeV5(pb.Data, scratch)
		scratch = recs
		if err != nil {
			c.mMalformed.Add(1)
			return
		}
		c.accountV5(pb.Exporter, hdr)
		c.deliver(recs)
	case 9:
		hdr, recs, stats, err := c.templates.DecodeV9(pb.Exporter, pb.Data, scratch)
		scratch = recs
		c.mTemplates.Add(int64(stats.TemplatesLearned))
		c.mMissingTmpl.Add(int64(stats.MissingTemplate))
		c.mEvicted.Add(int64(stats.TemplatesEvicted))
		if err != nil {
			c.mMalformed.Add(1)
			// Keep whatever decoded cleanly before the error.
		} else {
			c.accountV9(pb.Exporter, hdr)
		}
		c.deliver(recs)
	case 10:
		hdr, recs, stats, err := c.templates.DecodeIPFIX(pb.Exporter, pb.Data, scratch)
		scratch = recs
		c.mTemplates.Add(int64(stats.TemplatesLearned))
		c.mMissingTmpl.Add(int64(stats.MissingTemplate))
		c.mEvicted.Add(int64(stats.TemplatesEvicted))
		if err != nil {
			c.mMalformed.Add(1)
		} else {
			c.accountIPFIX(pb.Exporter, hdr, stats.Records)
		}
		c.deliver(recs)
	default:
		c.mUnknownVer.Add(1)
	}
}

// isSFlow reports whether the datagram opens with sFlow's u32 version.
func isSFlow(pkt []byte) bool {
	return len(pkt) >= 4 && pkt[0] == 0 && pkt[1] == 0 && pkt[2] == 0 && pkt[3] == 5
}

// deliver runs one packet's records through the sampling stage and
// hands the survivors to the Handler under the emit lock, so consumers
// see a single-threaded stream.
func (c *Collector) deliver(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	if c.sampler.Enabled() {
		kept := c.sampler.Filter(recs)
		c.mSampledOut.Add(int64(len(recs) - len(kept)))
		recs = kept
		if len(recs) == 0 {
			return
		}
	}
	c.mRecords.Add(int64(len(recs)))
	c.emitMu.Lock()
	c.cfg.Handler(recs)
	c.emitMu.Unlock()
}

// exporter returns the accounting state for one exporter stream,
// creating it on first sight.
func (c *Collector) exporter(key exporterKey) *exporterState {
	st, ok := c.exporters[key]
	if !ok {
		st = &exporterState{}
		c.exporters[key] = st
		c.gExporters.Set(int64(len(c.exporters)))
	}
	return st
}

// accountV5 tracks the exporter's running flow count. flow_sequence is
// the count of flows exported before this packet, so a jump forward of
// d means exactly d flows were exported but never decoded here — lost
// in the network, the kernel buffer, or our own queue drops. A jump
// backward is an exporter restart (or heavy reordering): counted as a
// reset and resynced, never as a gap.
func (c *Collector) accountV5(exporter string, hdr V5Header) {
	key := exporterKey{exporter, uint16(hdr.EngineType)<<8 | uint16(hdr.EngineID)}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	st := c.exporter(key)
	if st.v5Seen {
		switch d := int32(hdr.FlowSequence - st.v5Next); {
		case d > 0:
			c.mGaps.Add(1)
			c.mLostFlows.Add(int64(d))
		case d < 0:
			c.mResets.Add(1)
		}
	}
	st.v5Seen = true
	st.v5Next = hdr.FlowSequence + uint32(hdr.Count)
}

// SequenceState is one exporter stream's serializable sequence
// expectations — the state that must survive a collector restart so the
// first packets after recovery are checked against the pre-crash
// sequence numbers instead of being treated as a fresh stream (real
// gaps across the outage stay visible; false resets never fire). Only
// the v5/v9 expectations are checkpointed (the snapshot wire format
// predates the IPFIX/sFlow decoders); those streams restart fresh,
// which can hide a cross-outage gap but never invents one.
type SequenceState struct {
	Exporter string // exporter socket address, as reported by the kernel
	Engine   uint16 // v5: engine_type<<8|engine_id; v9: source ID (low 16)
	V5Seen   bool
	V5Next   uint32 // expected flow_sequence of the next v5 packet
	V9Seen   bool
	V9Next   uint32 // expected package sequence of the next v9 packet
}

// SequenceStates snapshots every exporter stream's sequence accounting,
// sorted by (Exporter, Engine) so the same state always serializes to
// the same bytes. Safe to call concurrently with Run.
func (c *Collector) SequenceStates() []SequenceState {
	c.expMu.Lock()
	defer c.expMu.Unlock()
	if len(c.exporters) == 0 {
		return nil
	}
	out := make([]SequenceState, 0, len(c.exporters))
	for key, st := range c.exporters {
		out = append(out, SequenceState{
			Exporter: key.addr,
			Engine:   key.engine,
			V5Seen:   st.v5Seen,
			V5Next:   st.v5Next,
			V9Seen:   st.v9Seen,
			V9Next:   st.v9Next,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Exporter != out[j].Exporter {
			return out[i].Exporter < out[j].Exporter
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// RestoreSequenceStates seeds the exporter accounting from a snapshot,
// typically before Run on a collector recovering from a checkpoint.
// Existing entries for the same exporter stream are overwritten.
func (c *Collector) RestoreSequenceStates(states []SequenceState) {
	c.expMu.Lock()
	defer c.expMu.Unlock()
	for _, s := range states {
		st := c.exporter(exporterKey{addr: s.Exporter, engine: s.Engine})
		st.v5Seen = s.V5Seen
		st.v5Next = s.V5Next
		st.v9Seen = s.V9Seen
		st.v9Next = s.V9Next
	}
}

// accountV9 does the same for v9, whose sequence counts packets.
func (c *Collector) accountV9(exporter string, hdr V9Header) {
	key := exporterKey{exporter, uint16(hdr.SourceID)}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	st := c.exporter(key)
	if st.v9Seen {
		switch d := int32(hdr.Sequence - st.v9Next); {
		case d > 0:
			c.mGaps.Add(1)
			c.mLostPackets.Add(int64(d))
		case d < 0:
			c.mResets.Add(1)
		}
	}
	st.v9Seen = true
	st.v9Next = hdr.Sequence + 1
}

// accountIPFIX tracks IPFIX's record-counting sequence: the header
// carries the cumulative data-record count before this message, so a
// forward jump of d means exactly d flow records were lost — v5-exact
// loss measurement, unlike v9's packet counting.
func (c *Collector) accountIPFIX(exporter string, hdr IPFIXHeader, records int) {
	key := exporterKey{exporter, uint16(hdr.DomainID)}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	st := c.exporter(key)
	if st.ipfixSeen {
		switch d := int32(hdr.Sequence - st.ipfixNext); {
		case d > 0:
			c.mGaps.Add(1)
			c.mLostFlows.Add(int64(d))
		case d < 0:
			c.mResets.Add(1)
		}
	}
	st.ipfixSeen = true
	st.ipfixNext = hdr.Sequence + uint32(records)
}

// accountSFlow tracks sFlow's datagram sequence (per sub-agent).
func (c *Collector) accountSFlow(exporter string, hdr SFlowHeader) {
	key := exporterKey{exporter, uint16(hdr.SubAgent)}
	c.expMu.Lock()
	defer c.expMu.Unlock()
	st := c.exporter(key)
	if st.sflowSeen {
		switch d := int32(hdr.Sequence - st.sflowNext); {
		case d > 0:
			c.mGaps.Add(1)
			c.mLostPackets.Add(int64(d))
		case d < 0:
			c.mResets.Add(1)
		}
	}
	st.sflowSeen = true
	st.sflowNext = hdr.Sequence + 1
}
