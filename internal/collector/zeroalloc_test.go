package collector

import (
	"encoding/binary"
	"testing"

	"plotters/internal/flow"
	"plotters/internal/ingest"
)

// The ingest subsystem's hard steady-state contract: once an arena's
// slab has ratcheted to the packet size and (for IPFIX) templates are
// learned, the per-datagram loop every decode worker runs — decode,
// sample, arena reset — performs ZERO heap allocations, for every wire
// protocol. BenchmarkIngestPipeline (repo root) reports the same
// number per iteration; this test fails the build the moment an
// allocation sneaks in.
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	records := sampleRecords()
	v5pkt, err := AppendV5(nil, records, 0)
	if err != nil {
		t.Fatal(err)
	}
	ipfixFull, err := AppendIPFIX(nil, records, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state for IPFIX is data-only messages: template sets
	// allocate when learned, and real exporters refresh them rarely,
	// not per datagram.
	be := binary.BigEndian
	ipfixData := append([]byte(nil), ipfixFull[:ipfixHeaderSize]...)
	for off := ipfixHeaderSize; off+4 <= len(ipfixFull); {
		setID := be.Uint16(ipfixFull[off:])
		setLen := int(be.Uint16(ipfixFull[off+2:]))
		if setID >= ipfixTemplateID {
			ipfixData = append(ipfixData, ipfixFull[off:off+setLen]...)
		}
		off += setLen
	}
	be.PutUint16(ipfixData[2:], uint16(len(ipfixData)))
	sflowPkt, err := AppendSFlow(nil, records, 0)
	if err != nil {
		t.Fatal(err)
	}
	arrival := records[0].Start

	tc := NewTemplateCache()
	if _, _, _, err := tc.DecodeIPFIX("zero", ipfixFull, nil); err != nil {
		t.Fatal(err)
	}

	for _, tcase := range []struct {
		name   string
		decode func(dst []flow.Record) ([]flow.Record, error)
	}{
		{"v5", func(dst []flow.Record) ([]flow.Record, error) {
			_, recs, err := DecodeV5(v5pkt, dst)
			return recs, err
		}},
		{"ipfix", func(dst []flow.Record) ([]flow.Record, error) {
			_, recs, _, err := tc.DecodeIPFIX("zero", ipfixData, dst)
			return recs, err
		}},
		{"sflow", func(dst []flow.Record) ([]flow.Record, error) {
			_, recs, _, err := DecodeSFlow(sflowPkt, arrival, dst)
			return recs, err
		}},
	} {
		t.Run(tcase.name, func(t *testing.T) {
			var arena ingest.RecordArena
			sampler := ingest.Sampler{N: 4, Seed: 7}
			// Warm-up: ratchet the slab and verify the decode works at all.
			recs, err := tcase.decode(arena.Take())
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != len(records) {
				t.Fatalf("decoded %d records, want %d", len(recs), len(records))
			}
			arena.Reset(recs)

			var decodeErr error
			allocs := testing.AllocsPerRun(100, func() {
				recs, err := tcase.decode(arena.Take())
				if err != nil {
					decodeErr = err
					return
				}
				_ = sampler.Filter(recs)
				arena.Reset(recs)
			})
			if decodeErr != nil {
				t.Fatal(decodeErr)
			}
			if allocs != 0 {
				t.Errorf("steady-state ingest loop allocates %.1f times per packet, want 0", allocs)
			}
		})
	}
}
