package collector

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
	"time"

	"plotters/internal/flow"
)

// v9Packet assembles a NetFlow v9 packet from pre-built FlowSets.
func v9Packet(sysUptimeMS, unixSecs, seq, sourceID uint32, flowSets ...[]byte) []byte {
	pkt := make([]byte, v9HeaderSize)
	be := binary.BigEndian
	be.PutUint16(pkt[0:], 9)
	be.PutUint32(pkt[4:], sysUptimeMS)
	be.PutUint32(pkt[8:], unixSecs)
	be.PutUint32(pkt[12:], seq)
	be.PutUint32(pkt[16:], sourceID)
	count := 0
	for _, fs := range flowSets {
		pkt = append(pkt, fs...)
		count++
	}
	be.PutUint16(pkt[2:], uint16(count))
	return pkt
}

// flowSet wraps a body with the (setID, length) FlowSet header.
func flowSet(setID uint16, body []byte) []byte {
	fs := make([]byte, 4+len(body))
	binary.BigEndian.PutUint16(fs[0:], setID)
	binary.BigEndian.PutUint16(fs[2:], uint16(len(fs)))
	copy(fs[4:], body)
	return fs
}

// templateBody builds one template definition: ID plus (type, length)
// field pairs.
func templateBody(id uint16, fields ...[2]uint16) []byte {
	body := make([]byte, 4+4*len(fields))
	be := binary.BigEndian
	be.PutUint16(body[0:], id)
	be.PutUint16(body[2:], uint16(len(fields)))
	for i, f := range fields {
		be.PutUint16(body[4+i*4:], f[0])
		be.PutUint16(body[6+i*4:], f[1])
	}
	return body
}

// fullTemplate carries every field the decoder maps, plus one unknown
// field (type 10, input interface) that must be skipped by length.
func fullTemplate(id uint16) []byte {
	return templateBody(id,
		[2]uint16{fieldSrcAddr, 4},
		[2]uint16{fieldDstAddr, 4},
		[2]uint16{fieldSrcPort, 2},
		[2]uint16{fieldDstPort, 2},
		[2]uint16{10, 2}, // INPUT_SNMP: unknown to the decoder
		[2]uint16{fieldProtocol, 1},
		[2]uint16{fieldTCPFlags, 1},
		[2]uint16{fieldInPkts, 4},
		[2]uint16{fieldInBytes, 4},
		[2]uint16{fieldFirstMS, 4},
		[2]uint16{fieldLastMS, 4},
	)
}

// fullRecord encodes one data record against fullTemplate's layout.
func fullRecord(src, dst flow.IP, srcPort, dstPort uint16, proto flow.Proto, flags byte, pkts, bytes, firstMS, lastMS uint32) []byte {
	b := make([]byte, 0, 31)
	be := binary.BigEndian
	b = be.AppendUint32(b, uint32(src))
	b = be.AppendUint32(b, uint32(dst))
	b = be.AppendUint16(b, srcPort)
	b = be.AppendUint16(b, dstPort)
	b = be.AppendUint16(b, 7) // unknown input interface
	b = append(b, byte(proto), flags)
	b = be.AppendUint32(b, pkts)
	b = be.AppendUint32(b, bytes)
	b = be.AppendUint32(b, firstMS)
	b = be.AppendUint32(b, lastMS)
	return b
}

func TestV9TemplateAndData(t *testing.T) {
	tc := NewTemplateCache()
	const unixSecs = 1194253200 // 2007-11-05 09:00:00 UTC
	boot := time.Unix(unixSecs, 0).UTC().Add(-60 * time.Second)
	rec1 := fullRecord(flow.MakeIP(128, 2, 0, 1), flow.MakeIP(66, 35, 250, 150), 51234, 80, flow.TCP, tcpSYN|tcpACK, 5, 840, 1000, 3500)
	rec2 := fullRecord(flow.MakeIP(128, 2, 7, 9), flow.MakeIP(87, 4, 11, 2), 6346, 6346, flow.UDP, 0, 1, 60, 2000, 2000)
	pkt := v9Packet(60_000, unixSecs, 1, 42,
		flowSet(0, fullTemplate(300)),
		flowSet(300, append(append([]byte{}, rec1...), rec2...)),
	)

	hdr, recs, stats, err := tc.DecodeV9("10.0.0.1:2055", pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sequence != 1 || hdr.SourceID != 42 {
		t.Errorf("header seq=%d source=%d, want 1/42", hdr.Sequence, hdr.SourceID)
	}
	if stats.TemplatesLearned != 1 || stats.Records != 2 || stats.MissingTemplate != 0 {
		t.Fatalf("stats = %+v, want 1 template, 2 records", stats)
	}
	if tc.Templates() != 1 {
		t.Errorf("cache holds %d templates, want 1", tc.Templates())
	}
	want := flow.Record{
		Src: flow.MakeIP(128, 2, 0, 1), Dst: flow.MakeIP(66, 35, 250, 150),
		SrcPort: 51234, DstPort: 80, Proto: flow.TCP,
		Start: boot.Add(1 * time.Second), End: boot.Add(3500 * time.Millisecond),
		SrcPkts: 5, SrcBytes: 840, State: flow.StateEstablished,
	}
	if !recs[0].Start.Equal(want.Start) || !recs[0].End.Equal(want.End) {
		t.Errorf("record 0 times %v–%v, want %v–%v", recs[0].Start, recs[0].End, want.Start, want.End)
	}
	recs[0].Start, recs[0].End = want.Start, want.End // Equal vs DeepEqual on time.Time
	if !reflect.DeepEqual(recs[0], want) {
		t.Errorf("record 0 = %+v, want %+v", recs[0], want)
	}
	// UDP with zeroed flags in a flags-bearing template: established.
	if recs[1].State != flow.StateEstablished || recs[1].Proto != flow.UDP {
		t.Errorf("record 1 state=%v proto=%v", recs[1].State, recs[1].Proto)
	}
}

func TestV9DataBeforeTemplate(t *testing.T) {
	tc := NewTemplateCache()
	rec := fullRecord(1, 2, 3, 4, flow.TCP, tcpACK, 1, 40, 0, 0)
	data := v9Packet(1000, 1194253200, 1, 7, flowSet(300, rec))

	_, recs, stats, err := tc.DecodeV9("exp", data, nil)
	if err != nil || len(recs) != 0 || stats.MissingTemplate != 1 {
		t.Fatalf("pre-template decode: recs=%d stats=%+v err=%v, want 0 records and 1 missing-template", len(recs), stats, err)
	}

	tmpl := v9Packet(1000, 1194253200, 2, 7, flowSet(0, fullTemplate(300)))
	if _, _, _, err := tc.DecodeV9("exp", tmpl, nil); err != nil {
		t.Fatal(err)
	}
	_, recs, stats, err = tc.DecodeV9("exp", data, nil)
	if err != nil || len(recs) != 1 || stats.MissingTemplate != 0 {
		t.Fatalf("post-template decode: recs=%d stats=%+v err=%v, want 1 record", len(recs), stats, err)
	}
}

func TestV9TemplatesScopedPerExporterAndSource(t *testing.T) {
	tc := NewTemplateCache()
	tmpl := v9Packet(1000, 1194253200, 1, 7, flowSet(0, fullTemplate(300)))
	if _, _, _, err := tc.DecodeV9("exporterA", tmpl, nil); err != nil {
		t.Fatal(err)
	}
	data := v9Packet(1000, 1194253200, 2, 7, flowSet(300, fullRecord(1, 2, 3, 4, flow.TCP, tcpACK, 1, 40, 0, 0)))
	if _, recs, stats, _ := tc.DecodeV9("exporterB", data, nil); len(recs) != 0 || stats.MissingTemplate != 1 {
		t.Errorf("exporter B used exporter A's template: recs=%d stats=%+v", len(recs), stats)
	}
	// Same exporter, different source ID: also scoped out.
	otherSource := v9Packet(1000, 1194253200, 2, 8, flowSet(300, fullRecord(1, 2, 3, 4, flow.TCP, tcpACK, 1, 40, 0, 0)))
	if _, recs, stats, _ := tc.DecodeV9("exporterA", otherSource, nil); len(recs) != 0 || stats.MissingTemplate != 1 {
		t.Errorf("source 8 used source 7's template: recs=%d stats=%+v", len(recs), stats)
	}
}

func TestV9OptionsAndReservedSetsSkipped(t *testing.T) {
	tc := NewTemplateCache()
	pkt := v9Packet(1000, 1194253200, 1, 7,
		flowSet(1, []byte{0, 0, 0, 0}), // options template
		flowSet(128, []byte{1, 2, 3}),  // reserved set ID
	)
	_, recs, stats, err := tc.DecodeV9("exp", pkt, nil)
	if err != nil || len(recs) != 0 || stats.SkippedSets != 2 {
		t.Errorf("recs=%d stats=%+v err=%v, want 2 skipped sets", len(recs), stats, err)
	}
}

func TestV9StructuralErrors(t *testing.T) {
	tc := NewTemplateCache()
	for _, tcase := range []struct {
		name string
		pkt  []byte
		want error
	}{
		{"short header", make([]byte, 10), ErrTruncated},
		{"v5 packet", func() []byte { p, _ := AppendV5(nil, wireRecords(), 0); return p }(), ErrVersion},
		{"flowset overruns packet", v9Packet(0, 1, 1, 7, []byte{1, 44, 0, 200, 0, 0}), ErrCorrupt},
		{"flowset length under 4", v9Packet(0, 1, 1, 7, []byte{1, 44, 0, 2, 0, 0}), ErrCorrupt},
		{"reserved template ID", v9Packet(0, 1, 1, 7, flowSet(0, templateBody(100, [2]uint16{fieldSrcAddr, 4}))), ErrCorrupt},
		{"zero-length field", v9Packet(0, 1, 1, 7, flowSet(0, templateBody(300, [2]uint16{fieldSrcAddr, 0}))), ErrCorrupt},
		{"truncated template", v9Packet(0, 1, 1, 7, flowSet(0, []byte{1, 45, 0, 9, 0, 8})), ErrCorrupt},
	} {
		if _, _, _, err := tc.DecodeV9("exp", tcase.pkt, nil); !errors.Is(err, tcase.want) {
			t.Errorf("%s: err = %v, want %v", tcase.name, err, tcase.want)
		}
	}
}

func TestV9ErrorKeepsEarlierRecords(t *testing.T) {
	tc := NewTemplateCache()
	tmpl := v9Packet(1000, 1194253200, 1, 7, flowSet(0, fullTemplate(300)))
	if _, _, _, err := tc.DecodeV9("exp", tmpl, nil); err != nil {
		t.Fatal(err)
	}
	// Good data FlowSet followed by a FlowSet that overruns the packet.
	pkt := v9Packet(1000, 1194253200, 2, 7,
		flowSet(300, fullRecord(1, 2, 3, 4, flow.TCP, tcpACK, 1, 40, 0, 0)),
		[]byte{1, 44, 0, 200, 0, 0},
	)
	_, recs, _, err := tc.DecodeV9("exp", pkt, nil)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if len(recs) != 1 {
		t.Errorf("records decoded before the error were dropped: got %d, want 1", len(recs))
	}
}

func TestV9StateWithoutFlags(t *testing.T) {
	// Template with OUT_PKTS but no TCP_FLAGS: replies decide the state.
	tc := NewTemplateCache()
	tmpl := templateBody(301,
		[2]uint16{fieldSrcAddr, 4},
		[2]uint16{fieldDstAddr, 4},
		[2]uint16{fieldProtocol, 1},
		[2]uint16{fieldOutPkts, 4},
	)
	if _, _, _, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 1, 7, flowSet(0, tmpl)), nil); err != nil {
		t.Fatal(err)
	}
	rec := func(outPkts uint32) []byte {
		b := make([]byte, 13)
		binary.BigEndian.PutUint32(b[0:], 1)
		binary.BigEndian.PutUint32(b[4:], 2)
		b[8] = byte(flow.TCP)
		binary.BigEndian.PutUint32(b[9:], outPkts)
		return b
	}
	_, recs, _, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 2, 7, flowSet(301, append(rec(3), rec(0)...))), nil)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if recs[0].State != flow.StateEstablished || recs[0].DstPkts != 3 {
		t.Errorf("answered flow = %v (DstPkts %d), want established", recs[0].State, recs[0].DstPkts)
	}
	if recs[1].State != flow.StateFailed {
		t.Errorf("unanswered flow = %v, want failed", recs[1].State)
	}

	// Template with neither flags nor reply counters: conservative
	// established, timestamps default to the export time.
	tmpl2 := templateBody(302, [2]uint16{fieldSrcAddr, 4}, [2]uint16{fieldDstAddr, 4})
	if _, _, _, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 3, 7, flowSet(0, tmpl2)), nil); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 8)
	binary.BigEndian.PutUint32(body[0:], 9)
	binary.BigEndian.PutUint32(body[4:], 10)
	hdr, recs, _, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 4, 7, flowSet(302, body)), nil)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if recs[0].State != flow.StateEstablished {
		t.Errorf("bare flow = %v, want established", recs[0].State)
	}
	if !recs[0].Start.Equal(hdr.Exported) || !recs[0].End.Equal(hdr.Exported) {
		t.Errorf("bare flow times %v–%v, want export time %v", recs[0].Start, recs[0].End, hdr.Exported)
	}
}

func TestV9DataPaddingIgnored(t *testing.T) {
	tc := NewTemplateCache()
	tmpl := v9Packet(0, 1194253200, 1, 7, flowSet(0, fullTemplate(300)))
	if _, _, _, err := tc.DecodeV9("exp", tmpl, nil); err != nil {
		t.Fatal(err)
	}
	body := append(fullRecord(1, 2, 3, 4, flow.TCP, tcpACK, 1, 40, 0, 0), 0, 0, 0) // 3 bytes of padding
	_, recs, stats, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 2, 7, flowSet(300, body)), nil)
	if err != nil || len(recs) != 1 || stats.Records != 1 {
		t.Errorf("recs=%d stats=%+v err=%v, want exactly 1 record", len(recs), stats, err)
	}
}

func TestV9WideFieldSkipped(t *testing.T) {
	// A 16-byte field (e.g. an IPv6 address under a mapped type) is
	// wider than uintField reads: skipped, record still decodes.
	tc := NewTemplateCache()
	tmpl := templateBody(303,
		[2]uint16{fieldSrcAddr, 4},
		[2]uint16{27, 16}, // IPV6_SRC_ADDR
		[2]uint16{fieldDstAddr, 4},
	)
	if _, _, _, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 1, 7, flowSet(0, tmpl)), nil); err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 24)
	binary.BigEndian.PutUint32(body[0:], 11)
	binary.BigEndian.PutUint32(body[20:], 12)
	_, recs, _, err := tc.DecodeV9("exp", v9Packet(0, 1194253200, 2, 7, flowSet(303, body)), nil)
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if recs[0].Src != 11 || recs[0].Dst != 12 {
		t.Errorf("record = %+v, want Src=11 Dst=12", recs[0])
	}
}
