package collector

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// testCollector wires a Collector on a loopback socket with a capturing
// handler and runs it until the test ends.
type testCollector struct {
	*Collector
	reg    *metrics.Registry
	mu     sync.Mutex
	recs   []flow.Record
	cancel context.CancelFunc
	done   chan error
}

func startCollector(t *testing.T, mutate func(*Config)) *testCollector {
	t.Helper()
	tc := &testCollector{reg: metrics.New(), done: make(chan error, 1)}
	cfg := Config{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Handler: func(records []flow.Record) {
			tc.mu.Lock()
			tc.recs = append(tc.recs, records...)
			tc.mu.Unlock()
		},
		Metrics: tc.reg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.Collector = c
	ctx, cancel := context.WithCancel(context.Background())
	tc.cancel = cancel
	go func() { tc.done <- c.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		if err := <-tc.done; err != nil {
			t.Errorf("Run: %v", err)
		}
	})
	return tc
}

func (tc *testCollector) records() []flow.Record {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return append([]flow.Record(nil), tc.recs...)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func (tc *testCollector) counter(name string) int64 { return tc.reg.Counter(name).Value() }

func TestCollectorUDPLoopback(t *testing.T) {
	tc := startCollector(t, nil)

	conn, err := net.Dial("udp", tc.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	records := wireRecords()
	pkt, err := AppendV5(nil, records, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "records off the wire", func() bool { return len(tc.records()) == len(records) })

	got := tc.records()
	for i := range records {
		if got[i].Src != records[i].Src || got[i].State != records[i].State || !got[i].Start.Equal(records[i].Start) {
			t.Errorf("record %d = %+v, want %+v", i, got[i], records[i])
		}
	}
	if n := tc.counter("collector/packets"); n != 1 {
		t.Errorf("packets = %d, want 1", n)
	}
	if n := tc.counter("collector/bytes"); n != int64(len(pkt)) {
		t.Errorf("bytes = %d, want %d", n, len(pkt))
	}
	if n := tc.counter("collector/records"); n != int64(len(records)) {
		t.Errorf("records = %d, want %d", n, len(records))
	}
}

func TestCollectorSurvivesHostilePackets(t *testing.T) {
	tc := startCollector(t, nil)

	good, err := AppendV5(nil, wireRecords(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tc.Inject(nil, "e")                           // empty datagram
	tc.Inject([]byte{5}, "e")                     // 1 byte: no version field
	tc.Inject(good[:20], "e")                     // truncated header
	tc.Inject(good[:len(good)-5], "e")            // truncated record
	tc.Inject(append([]byte{0, 7}, good...), "e") // unknown version
	tc.Inject(make([]byte, 1464), "e")            // all zeros: version 0
	tc.Inject(good, "e")                          // a good packet still lands

	waitFor(t, "the good packet", func() bool { return len(tc.records()) == len(wireRecords()) })
	if n := tc.counter("collector/packets/malformed"); n != 4 {
		t.Errorf("malformed = %d, want 4", n)
	}
	if n := tc.counter("collector/packets/unknown_version"); n != 2 {
		t.Errorf("unknown_version = %d, want 2", n)
	}
	if n := tc.counter("collector/packets"); n != 7 {
		t.Errorf("packets = %d, want 7", n)
	}
}

func TestCollectorSequenceGapAndReset(t *testing.T) {
	tc := startCollector(t, nil)
	records := wireRecords() // 4 records per packet

	inject := func(seq uint32) {
		pkt, err := AppendV5(nil, records, seq)
		if err != nil {
			t.Fatal(err)
		}
		tc.Inject(pkt, "router-1")
	}
	inject(0)  // baseline: next expected = 4
	inject(10) // gap: flows 4..9 (6 flows) lost
	inject(0)  // exporter restart: sequence reset

	waitFor(t, "sequence accounting", func() bool { return tc.counter("collector/seq/resets") == 1 })
	if n := tc.counter("collector/seq/gaps"); n != 1 {
		t.Errorf("gaps = %d, want 1", n)
	}
	if n := tc.counter("collector/seq/lost_flows"); n != 6 {
		t.Errorf("lost_flows = %d, want 6", n)
	}
	if n := tc.reg.Gauge("collector/exporters").Value(); n != 1 {
		t.Errorf("exporters = %d, want 1", n)
	}
	// All three packets' records were delivered regardless.
	if got := len(tc.records()); got != 3*len(records) {
		t.Errorf("delivered %d records, want %d", got, 3*len(records))
	}
}

// Sequence accounting restored from a snapshot must carry across a
// collector restart: packets lost during the outage surface as a gap
// against the pre-crash expectations, and an in-sequence first packet
// after recovery raises nothing — exactly as if the process never died.
func TestCollectorSequenceStateSurvivesRestart(t *testing.T) {
	records := wireRecords() // 4 records per packet
	pkt := func(t *testing.T, seq uint32) []byte {
		t.Helper()
		p, err := AppendV5(nil, records, seq)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	first := startCollector(t, nil)
	first.Inject(pkt(t, 0), "router-1")
	first.Inject(pkt(t, 4), "router-1")
	waitFor(t, "baseline accounting", func() bool {
		return first.counter("collector/records") == int64(2*len(records))
	})
	states := first.SequenceStates()
	if len(states) != 1 {
		t.Fatalf("SequenceStates = %+v, want one exporter stream", states)
	}
	if s := states[0]; s.Exporter != "router-1" || !s.V5Seen || s.V5Next != 8 {
		t.Fatalf("snapshotted state = %+v, want router-1 expecting flow 8", s)
	}

	// "Restart": a brand-new collector seeded with the snapshot. The
	// exporter's packets for flows 8..11 were lost during the outage;
	// the first post-recovery packet starts at flow 12.
	second := startCollector(t, nil)
	second.RestoreSequenceStates(states)
	if n := second.reg.Gauge("collector/exporters").Value(); n != 1 {
		t.Errorf("restored exporters gauge = %d, want 1", n)
	}
	second.Inject(pkt(t, 12), "router-1")
	waitFor(t, "post-restart accounting", func() bool {
		return second.counter("collector/records") == int64(len(records))
	})
	if n := second.counter("collector/seq/gaps"); n != 1 {
		t.Errorf("gaps = %d, want 1 (the outage)", n)
	}
	if n := second.counter("collector/seq/lost_flows"); n != 4 {
		t.Errorf("lost_flows = %d, want 4", n)
	}
	if n := second.counter("collector/seq/resets"); n != 0 {
		t.Errorf("resets = %d, want 0 — restore must not look like an exporter restart", n)
	}

	// Without the snapshot the same packet would have established a
	// fresh baseline and the outage would be invisible.
	third := startCollector(t, nil)
	third.Inject(pkt(t, 12), "router-1")
	waitFor(t, "fresh accounting", func() bool {
		return third.counter("collector/records") == int64(len(records))
	})
	if n := third.counter("collector/seq/gaps"); n != 0 {
		t.Errorf("fresh collector gaps = %d, want 0", n)
	}
}

func TestCollectorV9SequenceCountsPackets(t *testing.T) {
	tc := startCollector(t, nil)
	tmpl := func(seq uint32) []byte {
		return v9Packet(1000, 1194253200, seq, 7, flowSet(0, fullTemplate(300)))
	}
	tc.Inject(tmpl(1), "router-9")
	tc.Inject(tmpl(5), "router-9") // packets 2,3,4 lost
	tc.Inject(tmpl(0), "router-9") // restart

	waitFor(t, "v9 accounting", func() bool { return tc.counter("collector/seq/resets") == 1 })
	if n := tc.counter("collector/seq/lost_packets"); n != 3 {
		t.Errorf("lost_packets = %d, want 3", n)
	}
	if n := tc.counter("collector/v9/templates"); n != 3 {
		t.Errorf("templates learned = %d, want 3", n)
	}
}

func TestCollectorQueueOverflowDropsNotBlocks(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var delivered int
	reg := metrics.New()
	c, err := Listen(Config{
		Addr:      "127.0.0.1:0",
		Workers:   1,
		QueueSize: 1,
		Handler: func(records []flow.Record) {
			entered <- struct{}{}
			<-release
			mu.Lock()
			delivered += len(records)
			mu.Unlock()
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	pkt, err := AppendV5(nil, wireRecords(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(pkt, "e") // worker takes it and parks in the handler
	<-entered
	c.Inject(pkt, "e") // fills the 1-slot queue
	c.Inject(pkt, "e") // dropped
	c.Inject(pkt, "e") // dropped

	// The drops are synchronous — no waiting, and the reader path never
	// blocked even with the worker parked.
	if n := reg.Counter("collector/packets/dropped").Value(); n != 2 {
		t.Errorf("dropped = %d, want 2", n)
	}
	if hw := reg.Gauge("collector/queue/high_water").Value(); hw != 1 {
		t.Errorf("queue high-water = %d, want 1", hw)
	}

	release <- struct{}{} // unpark packet 1
	<-entered             // packet 2 reaches the handler
	release <- struct{}{}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if want := 2 * len(wireRecords()); delivered != want {
		t.Errorf("delivered %d records, want %d", delivered, want)
	}
}

func TestCollectorShutdownDrainsQueue(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var delivered int
	c, err := Listen(Config{
		Addr:    "127.0.0.1:0",
		Workers: 1,
		Handler: func(records []flow.Record) {
			entered <- struct{}{}
			<-release
			mu.Lock()
			delivered += len(records)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx) }()

	pkt, err := AppendV5(nil, wireRecords(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(pkt, "e")
	<-entered          // packet 1 is in the handler
	c.Inject(pkt, "e") // packet 2 is queued
	cancel()           // shutdown begins with work in flight

	release <- struct{}{}
	<-entered // queued packet still drains after cancellation
	release <- struct{}{}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	drained := delivered
	mu.Unlock()
	if want := 2 * len(wireRecords()); drained != want {
		t.Errorf("drained %d records through shutdown, want %d", drained, want)
	}

	// The collector is closed now: late packets drop, nothing panics.
	c.Inject(pkt, "e")
}

func TestCollectorInjectAfterShutdownDrops(t *testing.T) {
	reg := metrics.New()
	c, err := Listen(Config{Addr: "127.0.0.1:0", Handler: func([]flow.Record) {}, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Run(ctx); err != nil {
		t.Fatalf("Run: %v", err)
	}
	pkt, err := AppendV5(nil, wireRecords(), 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Inject(pkt, "e")
	if n := reg.Counter("collector/packets/dropped").Value(); n != 1 {
		t.Errorf("post-shutdown dropped = %d, want 1", n)
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen(Config{Handler: func([]flow.Record) {}}); err == nil {
		t.Error("Listen accepted an empty Addr")
	}
	if _, err := Listen(Config{Addr: ":0"}); err == nil {
		t.Error("Listen accepted a nil Handler")
	}
}
