package collector

import (
	"encoding/binary"
	"testing"
	"time"

	"plotters/internal/flow"
)

// sampleRecords builds a small bidirectional TCP/UDP mix with
// millisecond-resolution timestamps (what the wire formats preserve).
func sampleRecords() []flow.Record {
	base := time.Date(2007, 11, 5, 9, 0, 0, 0, time.UTC)
	return []flow.Record{
		{
			Src: flow.MakeIP(128, 2, 0, 1), Dst: flow.MakeIP(66, 35, 250, 150),
			SrcPort: 51234, DstPort: 80, Proto: flow.TCP,
			Start: base, End: base.Add(2500 * time.Millisecond),
			SrcPkts: 5, DstPkts: 4, SrcBytes: 840, DstBytes: 96_123,
			State: flow.StateEstablished,
		},
		{
			Src: flow.MakeIP(128, 2, 7, 9), Dst: flow.MakeIP(87, 4, 11, 2),
			SrcPort: 6346, DstPort: 6346, Proto: flow.UDP,
			Start: base.Add(time.Second), End: base.Add(time.Second),
			SrcPkts: 1, SrcBytes: 60,
			State: flow.StateFailed,
		},
		{
			Src: flow.MakeIP(10, 1, 2, 3), Dst: flow.MakeIP(192, 0, 2, 9),
			SrcPort: 40001, DstPort: 443, Proto: flow.TCP,
			Start: base.Add(250 * time.Millisecond), End: base.Add(9 * time.Second),
			SrcPkts: 100, DstPkts: 200, SrcBytes: 10_000, DstBytes: 5 << 20,
			State: flow.StateFailed,
		},
	}
}

func TestIPFIXRoundTrip(t *testing.T) {
	recs := sampleRecords()
	pkt, err := AppendIPFIX(nil, recs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := PacketVersion(pkt); !ok || v != 10 {
		t.Fatalf("PacketVersion = %d/%v, want 10", v, ok)
	}

	tc := NewTemplateCache()
	hdr, got, stats, err := tc.DecodeIPFIX("10.0.0.1:4739", pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Sequence != 7 {
		t.Errorf("sequence %d, want 7", hdr.Sequence)
	}
	if stats.TemplatesLearned != 1 || stats.Records != len(recs) {
		t.Fatalf("stats = %+v, want 1 template / %d records", stats, len(recs))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want, have := recs[i], got[i]
		if have.Src != want.Src || have.Dst != want.Dst ||
			have.SrcPort != want.SrcPort || have.DstPort != want.DstPort ||
			have.Proto != want.Proto || have.State != want.State {
			t.Errorf("record %d identity mismatch:\n got %+v\nwant %+v", i, have, want)
		}
		if !have.Start.Equal(want.Start) || !have.End.Equal(want.End) {
			t.Errorf("record %d times %v–%v, want %v–%v", i, have.Start, have.End, want.Start, want.End)
		}
		if have.SrcBytes != want.SrcBytes || have.DstBytes != want.DstBytes ||
			have.SrcPkts != want.SrcPkts || have.DstPkts != want.DstPkts {
			t.Errorf("record %d counters mismatch:\n got %+v\nwant %+v", i, have, want)
		}
	}
}

// TestIPFIXTemplateSettles checks the v9-like settle behavior: a data
// set before any template is counted missing, and decodes once the
// template arrives.
func TestIPFIXTemplateSettles(t *testing.T) {
	recs := sampleRecords()[:1]
	pkt, err := AppendIPFIX(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the template set out of the self-describing message: keep
	// header + data set only.
	be := binary.BigEndian
	tmplLen := int(be.Uint16(pkt[ipfixHeaderSize+2:]))
	dataOnly := append([]byte{}, pkt[:ipfixHeaderSize]...)
	dataOnly = append(dataOnly, pkt[ipfixHeaderSize+tmplLen:]...)
	be.PutUint16(dataOnly[2:], uint16(len(dataOnly)))

	tc := NewTemplateCache()
	_, got, stats, err := tc.DecodeIPFIX("10.0.0.1:4739", dataOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MissingTemplate != 1 || len(got) != 0 {
		t.Fatalf("pre-template decode: stats=%+v records=%d, want 1 missing / 0", stats, len(got))
	}
	// Full message teaches the template; the data-only replay decodes.
	if _, _, _, err := tc.DecodeIPFIX("10.0.0.1:4739", pkt, nil); err != nil {
		t.Fatal(err)
	}
	_, got, stats, err = tc.DecodeIPFIX("10.0.0.1:4739", dataOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 1 || len(got) != 1 {
		t.Fatalf("post-template decode: stats=%+v records=%d, want 1", stats, len(got))
	}
	// Templates are exporter-scoped: another exporter still misses.
	_, _, stats, err = tc.DecodeIPFIX("10.9.9.9:4739", dataOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MissingTemplate != 1 {
		t.Fatalf("foreign exporter decoded with a borrowed template: %+v", stats)
	}
}

// TestIPFIXVarlenAndEnterprise exercises the two IPFIX-only template
// field encodings: a variable-length field and an enterprise-specific
// field, both skipped by length around a mapped port field.
func TestIPFIXVarlenAndEnterprise(t *testing.T) {
	be := binary.BigEndian
	var msg []byte
	hdr := make([]byte, ipfixHeaderSize)
	be.PutUint16(hdr[0:], 10)
	be.PutUint32(hdr[4:], 1194253200)
	msg = append(msg, hdr...)

	// Template 300: varlen field, enterprise field (PEN 9), srcPort.
	tmpl := []byte{
		0x01, 0x2C, 0, 3, // ID 300, 3 fields
		0x00, 0x05, 0xFF, 0xFF, // IE 5, varlen
		0x80, 0x2A, 0x00, 0x04, 0x00, 0x00, 0x00, 0x09, // enterprise IE 42, 4 bytes, PEN 9
		0x00, 0x07, 0x00, 0x02, // sourceTransportPort, 2 bytes
	}
	set := make([]byte, 4)
	be.PutUint16(set[0:], 2)
	be.PutUint16(set[2:], uint16(4+len(tmpl)))
	msg = append(msg, set...)
	msg = append(msg, tmpl...)

	// Data set: two records with different varlen payload sizes.
	data := []byte{
		3, 'a', 'b', 'c', 0xDE, 0xAD, 0xBE, 0xEF, 0xC0, 0x01, // varlen=3, ent, port 0xC001
		0, 0xCA, 0xFE, 0xBA, 0xBE, 0x1F, 0x90, // varlen=0, ent, port 8080
	}
	be.PutUint16(set[0:], 300)
	be.PutUint16(set[2:], uint16(4+len(data)))
	msg = append(msg, set...)
	msg = append(msg, data...)
	be.PutUint16(msg[2:], uint16(len(msg)))

	tc := NewTemplateCache()
	_, got, stats, err := tc.DecodeIPFIX("10.0.0.1:4739", msg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TemplatesLearned != 1 || stats.Records != 2 {
		t.Fatalf("stats = %+v, want 1 template / 2 records", stats)
	}
	if got[0].SrcPort != 0xC001 || got[1].SrcPort != 8080 {
		t.Fatalf("ports %d/%d, want 49153/8080", got[0].SrcPort, got[1].SrcPort)
	}
}

func TestIPFIXRejects(t *testing.T) {
	tc := NewTemplateCache()
	if _, _, _, err := tc.DecodeIPFIX("x", make([]byte, 8), nil); err == nil {
		t.Error("short datagram decoded")
	}
	pkt, _ := AppendIPFIX(nil, sampleRecords(), 0)
	bad := append([]byte{}, pkt...)
	binary.BigEndian.PutUint16(bad[2:], uint16(len(bad)+100)) // lies about length
	if _, _, _, err := tc.DecodeIPFIX("x", bad, nil); err == nil {
		t.Error("over-declared message length decoded")
	}
	if _, err := AppendIPFIX(nil, nil, 0); err == nil {
		t.Error("empty message encoded")
	}
}
