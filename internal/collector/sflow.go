// sFlow version 5 support.
//
// sFlow is packet sampling, not flow export: an agent ships the first
// bytes of sampled frames (raw packet header records) and counters,
// with no flow state and — critically — no wall-clock timestamps
// anywhere in the format. Two decode paths handle that gap:
//
//   - Standard raw-packet-header records (enterprise 0, format 1) are
//     cracked Ethernet → IPv4 → TCP/UDP for the 5-tuple and TCP flags.
//     One sampled frame becomes one single-packet flow record stamped
//     with the collector's arrival clock — the best any sFlow consumer
//     can do, and inherently non-deterministic across runs.
//
//   - A software-exporter extension record (enterprise 65001, format 1)
//     carries the complete flow: 5-tuple, connection state, absolute
//     millisecond timestamps, and exact bidirectional counters. When a
//     flow sample includes the extension, the decoder uses it verbatim
//     and ignores the arrival clock, making decode(encode(x)) as
//     lossless and replay-deterministic as the v5/IPFIX paths.
//
// AppendSFlow emits both records per flow sample: the extension for
// fidelity, plus a synthesized raw Ethernet/IPv4/TCP|UDP header so the
// standard parse path is exercised by every emitted datagram (and by
// the fuzzer) and foreign collectors still get the 5-tuple.
//
// Dispatch note: an sFlow datagram starts with the u32 version 5, so
// its first two bytes are 0x0000 — PacketVersion reads 0, which cannot
// collide with NetFlow versions. The collector routes version 0 +
// u32 5 here.

package collector

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"plotters/internal/flow"
)

// sflowExtEnterprise is the private enterprise number of the software
// exporter's extension record (from the experimental/private range).
const sflowExtEnterprise = 65001

// sflowExtRecordLen is the extension record body: src, dst (4+4),
// ports (2+2), proto, state, pad (1+1+2), startMs, endMs (8+8),
// srcBytes, dstBytes (8+8), srcPkts, dstPkts (4+4).
const sflowExtRecordLen = 56

// SFlowHeader is the decoded fixed header of one sFlow v5 datagram.
type SFlowHeader struct {
	// SubAgent distinguishes exporting processes within one agent.
	SubAgent uint32
	// Sequence counts datagrams from this (agent, sub-agent) stream.
	Sequence uint32
	// Uptime is the agent's uptime at export (the format's only clock).
	Uptime time.Duration
	// Samples is the datagram's declared sample count.
	Samples int
}

// SFlowStats summarizes the non-record outcomes of decoding one
// datagram.
type SFlowStats struct {
	// Records counts flow records decoded from flow samples.
	Records int
	// SkippedSamples counts samples of types this decoder does not
	// handle (counter samples, expanded formats, vendor samples).
	SkippedSamples int
	// SkippedRecords counts flow records within handled samples that
	// were skipped (unknown formats, non-IPv4 headers).
	SkippedRecords int
}

// DecodeSFlow decodes one sFlow v5 datagram, appending one flow record
// per usable flow sample to dst. arrival stamps records reconstructed
// from raw packet headers only; samples carrying the software-exporter
// extension are decoded exactly and ignore it. Unknown sample and
// record types are counted and skipped, never errors — sFlow datagrams
// routinely interleave counter samples with flow samples.
func DecodeSFlow(pkt []byte, arrival time.Time, dst []flow.Record) (SFlowHeader, []flow.Record, SFlowStats, error) {
	var stats SFlowStats
	be := binary.BigEndian
	if len(pkt) < 4 || be.Uint32(pkt) != 5 {
		return SFlowHeader{}, dst, stats, fmt.Errorf("%w: not an sFlow v5 datagram", ErrVersion)
	}
	off := 4
	// Agent address: type then 4 (IPv4) or 16 (IPv6) bytes.
	if off+4 > len(pkt) {
		return SFlowHeader{}, dst, stats, fmt.Errorf("%w: datagram ends in the agent address", ErrTruncated)
	}
	switch be.Uint32(pkt[off:]) {
	case 1:
		off += 4 + 4
	case 2:
		off += 4 + 16
	default:
		return SFlowHeader{}, dst, stats, fmt.Errorf("%w: agent address type %d", ErrCorrupt, be.Uint32(pkt[off:]))
	}
	if off+16 > len(pkt) {
		return SFlowHeader{}, dst, stats, fmt.Errorf("%w: datagram ends in the header", ErrTruncated)
	}
	hdr := SFlowHeader{
		SubAgent: be.Uint32(pkt[off:]),
		Sequence: be.Uint32(pkt[off+4:]),
		Uptime:   time.Duration(be.Uint32(pkt[off+8:])) * time.Millisecond,
		Samples:  int(be.Uint32(pkt[off+12:])),
	}
	off += 16

	for s := 0; s < hdr.Samples; s++ {
		if off+8 > len(pkt) {
			return hdr, dst, stats, fmt.Errorf("%w: datagram ends at sample %d", ErrTruncated, s)
		}
		sampleType := be.Uint32(pkt[off:])
		sampleLen := int(be.Uint32(pkt[off+4:]))
		off += 8
		if sampleLen < 0 || off+sampleLen > len(pkt) {
			return hdr, dst, stats, fmt.Errorf("%w: sample %d claims %d bytes with %d remaining", ErrCorrupt, s, sampleLen, len(pkt)-off)
		}
		body := pkt[off : off+sampleLen]
		off += sampleLen
		if sampleType != 1 { // standard flow_sample only
			stats.SkippedSamples++
			continue
		}
		rec, ok, skipped, err := decodeFlowSample(body, arrival)
		stats.SkippedRecords += skipped
		if err != nil {
			return hdr, dst, stats, err
		}
		if !ok {
			stats.SkippedSamples++
			continue
		}
		dst = append(dst, rec)
		stats.Records++
	}
	return hdr, dst, stats, nil
}

// decodeFlowSample cracks one standard flow_sample body into at most
// one flow record, preferring the extension record over a raw-header
// reconstruction when both are present.
func decodeFlowSample(body []byte, arrival time.Time) (flow.Record, bool, int, error) {
	be := binary.BigEndian
	// seq, source_id, sampling_rate, sample_pool, drops, input, output,
	// record count.
	if len(body) < 32 {
		return flow.Record{}, false, 0, fmt.Errorf("%w: flow sample of %d bytes", ErrTruncated, len(body))
	}
	nrec := int(be.Uint32(body[28:]))
	body = body[32:]

	var rec flow.Record
	var haveExt, haveRaw bool
	skipped := 0
	for i := 0; i < nrec; i++ {
		if len(body) < 8 {
			return flow.Record{}, false, skipped, fmt.Errorf("%w: flow sample ends at record %d", ErrTruncated, i)
		}
		format := be.Uint32(body)
		recLen := int(be.Uint32(body[4:]))
		body = body[8:]
		if recLen < 0 || recLen > len(body) {
			return flow.Record{}, false, skipped, fmt.Errorf("%w: flow record %d claims %d bytes with %d remaining", ErrCorrupt, i, recLen, len(body))
		}
		data := body[:recLen]
		body = body[recLen:]
		switch format {
		case sflowExtEnterprise<<12 | 1:
			if ext, ok := decodeSFlowExtension(data); ok {
				rec, haveExt = ext, true
			} else {
				skipped++
			}
		case 1: // raw packet header
			if haveExt {
				break // extension already gave the exact record
			}
			if raw, ok := decodeRawPacketHeader(data, arrival); ok {
				rec, haveRaw = raw, true
			} else {
				skipped++
			}
		default:
			skipped++
		}
	}
	return rec, haveExt || haveRaw, skipped, nil
}

// decodeSFlowExtension reads the software exporter's complete-flow
// record.
func decodeSFlowExtension(data []byte) (flow.Record, bool) {
	if len(data) < sflowExtRecordLen {
		return flow.Record{}, false
	}
	be := binary.BigEndian
	rec := flow.Record{
		Src:      flow.IP(be.Uint32(data[0:])),
		Dst:      flow.IP(be.Uint32(data[4:])),
		SrcPort:  be.Uint16(data[8:]),
		DstPort:  be.Uint16(data[10:]),
		Proto:    flow.Proto(data[12]),
		State:    flow.ConnState(data[13]),
		Start:    time.UnixMilli(int64(be.Uint64(data[16:]))).UTC(),
		End:      time.UnixMilli(int64(be.Uint64(data[24:]))).UTC(),
		SrcBytes: be.Uint64(data[32:]),
		DstBytes: be.Uint64(data[40:]),
		SrcPkts:  be.Uint32(data[48:]),
		DstPkts:  be.Uint32(data[52:]),
	}
	if rec.End.Before(rec.Start) {
		return flow.Record{}, false
	}
	return rec, true
}

// decodeRawPacketHeader reconstructs a single-packet flow record from
// a sampled Ethernet frame: 5-tuple and TCP flags from the headers,
// frame length as the byte count, the arrival clock as both
// timestamps. Non-Ethernet, non-IPv4, and non-TCP/UDP frames are
// skipped.
func decodeRawPacketHeader(data []byte, arrival time.Time) (flow.Record, bool) {
	be := binary.BigEndian
	// header_protocol, frame_length, stripped, header_length, bytes.
	if len(data) < 16 {
		return flow.Record{}, false
	}
	if be.Uint32(data) != 1 { // 1 = ETHERNET-ISO8023
		return flow.Record{}, false
	}
	frameLen := be.Uint32(data[4:])
	hdrLen := int(be.Uint32(data[12:]))
	if hdrLen < 0 || 16+hdrLen > len(data) {
		return flow.Record{}, false
	}
	frame := data[16 : 16+hdrLen]

	// Ethernet: dst MAC, src MAC, EtherType.
	if len(frame) < 14 || be.Uint16(frame[12:]) != 0x0800 {
		return flow.Record{}, false
	}
	ip := frame[14:]
	if len(ip) < 20 || ip[0]>>4 != 4 {
		return flow.Record{}, false
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < 20 || len(ip) < ihl {
		return flow.Record{}, false
	}
	proto := flow.Proto(ip[9])
	l4 := ip[ihl:]

	rec := flow.Record{
		Src:      flow.IP(be.Uint32(ip[12:])),
		Dst:      flow.IP(be.Uint32(ip[16:])),
		Proto:    proto,
		Start:    arrival,
		End:      arrival,
		SrcPkts:  1,
		SrcBytes: uint64(frameLen),
		State:    flow.StateEstablished,
	}
	switch proto {
	case flow.TCP:
		if len(l4) < 14 {
			return flow.Record{}, false
		}
		rec.SrcPort = be.Uint16(l4[0:])
		rec.DstPort = be.Uint16(l4[2:])
		rec.State = flagsState(flow.TCP, l4[13])
	case flow.UDP:
		if len(l4) < 4 {
			return flow.Record{}, false
		}
		rec.SrcPort = be.Uint16(l4[0:])
		rec.DstPort = be.Uint16(l4[2:])
	default:
		return flow.Record{}, false
	}
	return rec, true
}

// AppendSFlow encodes records as one sFlow v5 datagram — one flow
// sample per record, each carrying a synthesized raw packet header
// plus the software-exporter extension — and appends it to dst. seq
// numbers the datagram; sample sequence numbers continue from
// seq*len(records) so replayed streams stay strictly increasing.
func AppendSFlow(dst []byte, records []flow.Record, seq uint32) ([]byte, error) {
	if len(records) == 0 {
		return dst, fmt.Errorf("collector: refusing to encode an empty sFlow datagram")
	}
	for i := range records {
		r := &records[i]
		if r.End.Before(r.Start) {
			return dst, fmt.Errorf("collector: record %d ends before it starts", i)
		}
		if r.Start.UnixMilli() < 0 {
			return dst, fmt.Errorf("collector: record %d starts before the epoch", i)
		}
	}
	be := binary.BigEndian

	var hdr [28]byte
	be.PutUint32(hdr[0:], 5)              // version
	be.PutUint32(hdr[4:], 1)              // agent address type: IPv4
	copy(hdr[8:12], []byte{127, 0, 0, 1}) // software exporter agent
	// sub_agent_id: zero.
	be.PutUint32(hdr[16:], seq)
	// uptime: zero — timestamps ride the extension record instead.
	be.PutUint32(hdr[24:], uint32(len(records)))
	dst = append(dst, hdr[:]...)

	for i := range records {
		r := &records[i]
		raw := sflowRawHeader(r)
		// flow_sample body: seq, source_id, rate, pool, drops, input,
		// output, nrecords, then the two records with their headers.
		sampleLen := 32 + 8 + len(raw) + 8 + sflowExtRecordLen
		var sh [8]byte
		be.PutUint32(sh[0:], 1) // standard flow_sample
		be.PutUint32(sh[4:], uint32(sampleLen))
		dst = append(dst, sh[:]...)

		var fs [32]byte
		be.PutUint32(fs[0:], seq*uint32(len(records))+uint32(i))    // sample seq
		be.PutUint32(fs[4:], 0x02<<24)                              // source_id: entPhysicalEntry 0
		be.PutUint32(fs[8:], 1)                                     // sampling_rate 1-in-1
		be.PutUint32(fs[12:], seq*uint32(len(records))+uint32(i)+1) // sample_pool
		// drops, input, output: zero.
		be.PutUint32(fs[28:], 2) // two flow records follow
		dst = append(dst, fs[:]...)

		// Raw packet header record.
		var rh [8]byte
		be.PutUint32(rh[0:], 1) // enterprise 0, format 1
		be.PutUint32(rh[4:], uint32(len(raw)))
		dst = append(dst, rh[:]...)
		dst = append(dst, raw...)

		// Extension record.
		be.PutUint32(rh[0:], sflowExtEnterprise<<12|1)
		be.PutUint32(rh[4:], sflowExtRecordLen)
		dst = append(dst, rh[:]...)
		var ext [sflowExtRecordLen]byte
		be.PutUint32(ext[0:], uint32(r.Src))
		be.PutUint32(ext[4:], uint32(r.Dst))
		be.PutUint16(ext[8:], r.SrcPort)
		be.PutUint16(ext[10:], r.DstPort)
		ext[12] = byte(r.Proto)
		ext[13] = byte(r.State)
		be.PutUint64(ext[16:], uint64(r.Start.UnixMilli()))
		be.PutUint64(ext[24:], uint64(r.End.UnixMilli()))
		be.PutUint64(ext[32:], r.SrcBytes)
		be.PutUint64(ext[40:], r.DstBytes)
		be.PutUint32(ext[48:], r.SrcPkts)
		be.PutUint32(ext[52:], r.DstPkts)
		dst = append(dst, ext[:]...)
	}
	return dst, nil
}

// sflowRawHeader synthesizes the sampled-frame record body for r: an
// Ethernet II + IPv4 + TCP|UDP header chain reflecting the flow's
// 5-tuple, flags, and byte count.
func sflowRawHeader(r *flow.Record) []byte {
	be := binary.BigEndian
	l4 := 8 // UDP
	if r.Proto == flow.TCP {
		l4 = 20
	}
	hdrLen := 14 + 20 + l4
	padded := (hdrLen + 3) &^ 3
	body := make([]byte, 16+padded)
	be.PutUint32(body[0:], 1) // ETHERNET-ISO8023
	be.PutUint32(body[4:], uint32(min(r.SrcBytes, math.MaxUint32)))
	// stripped: zero.
	be.PutUint32(body[12:], uint32(hdrLen))

	eth := body[16:]
	// MACs zero (software exporter); EtherType IPv4.
	be.PutUint16(eth[12:], 0x0800)

	ip := eth[14:]
	ip[0] = 0x45 // IPv4, 20-byte header
	be.PutUint16(ip[2:], uint16(min(uint64(20+l4)+r.SrcBytes/max(uint64(r.SrcPkts), 1), math.MaxUint16)))
	ip[8] = 64 // TTL
	ip[9] = byte(r.Proto)
	be.PutUint32(ip[12:], uint32(r.Src))
	be.PutUint32(ip[16:], uint32(r.Dst))

	t := ip[20:]
	be.PutUint16(t[0:], r.SrcPort)
	be.PutUint16(t[2:], r.DstPort)
	if r.Proto == flow.TCP {
		t[12] = 5 << 4 // data offset
		t[13] = stateFlags(flow.TCP, r.State)
	} else {
		be.PutUint16(t[4:], uint16(8+min(r.SrcBytes, math.MaxUint16-8)))
	}
	return body
}
