// Package collector is the system's live network I/O boundary: it
// decodes NetFlow export packets — the telemetry a border router or a
// software exporter emits about every flow it forwards — into
// flow.Records and pumps them off a UDP socket into the continuous
// detection engine. Two export formats are understood:
//
//   - NetFlow v5, the fixed-layout workhorse format (24-byte header,
//     48-byte records, ≤30 records per packet), decoded and encoded —
//     the encode side lets synthesized traces be replayed over loopback
//     as real exporter traffic (cmd/flowreplay, flowio.NetFlowWriter).
//   - NetFlow v9, the template-based format, decoded through a small
//     template cache: templates announce field layouts per exporter and
//     data FlowSets are cracked against them, with unknown fields
//     skipped by length ("template-lite" — no options templates, no
//     variable-length IPFIX strings).
//
// The Collector itself (Listen/Run) is shaped for production ingest:
// the socket reader only reads and enqueues, a bounded queue drops on
// overflow rather than ever blocking the reader, a worker pool decodes,
// per-exporter flow_sequence accounting measures export loss, and
// malformed or unknown-version packets are counted and skipped, never
// fatal.
//
// NetFlow v5 carries less than a flow.Record holds. The mapping, and
// what detection needs of it, is:
//
//   - Src/Dst/ports/proto map directly; the detection pipeline keys on
//     Src and Dst only.
//   - dPkts/dOctets are the initiator's SrcPkts/SrcBytes (saturated at
//     2³²−1 on encode); responder-side DstPkts/DstBytes do not exist in
//     v5 and decode as zero. Detection reads only SrcBytes.
//   - First/Last are SysUptime-relative milliseconds, so decoded
//     Start/End times are the originals floored to the millisecond.
//     Detection's interstitial-timing feature works at second scale;
//     see the loopback equivalence test for the end-to-end guarantee.
//   - ConnState rides on tcp_flags: established sets ACK (0x10), failed
//     TCP sets SYN|RST, failed non-TCP sets RST. Decoding reads the
//     same bits back: TCP is established iff ACK is set; non-TCP is
//     failed iff RST is set. Hardware exporters that zero tcp_flags on
//     UDP therefore decode as established — the conservative default.
//   - Payload (ground-truth labeling only, never read by detection)
//     cannot be carried and is dropped.
package collector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"plotters/internal/flow"
)

// NetFlow v5 wire-format dimensions.
const (
	// V5HeaderSize is the fixed packet header length in bytes.
	V5HeaderSize = 24
	// V5RecordSize is the per-flow record length in bytes.
	V5RecordSize = 48
	// V5MaxRecords is the record cap per packet (24 + 30*48 = 1464
	// bytes, inside a 1500-byte MTU).
	V5MaxRecords = 30
)

// Decode errors. Wrap with %w so callers can classify with errors.Is.
var (
	// ErrTruncated marks a packet shorter than its header claims.
	ErrTruncated = errors.New("collector: truncated export packet")
	// ErrVersion marks an export version this decoder does not speak.
	ErrVersion = errors.New("collector: unsupported export version")
	// ErrCorrupt marks a structurally invalid packet (count/length
	// mismatch, a flow that ends before it starts, a malformed
	// template).
	ErrCorrupt = errors.New("collector: corrupt export packet")
)

// TCP flag bits used for the ConnState mapping.
const (
	tcpFIN = 0x01
	tcpSYN = 0x02
	tcpRST = 0x04
	tcpACK = 0x10
)

// stateFlags encodes a record's connection outcome as tcp_flags bits.
func stateFlags(proto flow.Proto, st flow.ConnState) byte {
	switch {
	case st == flow.StateEstablished && proto == flow.TCP:
		return tcpSYN | tcpACK | tcpFIN // complete handshake, closed cleanly
	case st == flow.StateEstablished:
		return tcpACK
	case proto == flow.TCP:
		return tcpSYN | tcpRST // attempt reset before establishing
	default:
		return tcpRST
	}
}

// flagsState inverts stateFlags, tolerating real-exporter flag soup:
// TCP is established iff an ACK was observed; anything else is
// established unless the exporter marked a reset.
func flagsState(proto flow.Proto, flags byte) flow.ConnState {
	if proto == flow.TCP {
		if flags&tcpACK != 0 {
			return flow.StateEstablished
		}
		return flow.StateFailed
	}
	if flags&tcpRST != 0 {
		return flow.StateFailed
	}
	return flow.StateEstablished
}

// PacketVersion peeks an export packet's version field without
// decoding. ok is false when the packet is too short to carry one.
func PacketVersion(pkt []byte) (version uint16, ok bool) {
	if len(pkt) < 2 {
		return 0, false
	}
	return binary.BigEndian.Uint16(pkt), true
}

// V5Header is the decoded fixed header of one NetFlow v5 packet.
type V5Header struct {
	// Count is the number of flow records the packet carries.
	Count int
	// SysUptime is the exporter's time since boot at export.
	SysUptime time.Duration
	// Exported is the exporter's wall clock at export (unix_secs +
	// unix_nsecs). Record timestamps are reconstructed against
	// Exported − SysUptime.
	Exported time.Time
	// FlowSequence is the sequence number of the packet's first flow:
	// the exporter's running count of flows exported before this
	// packet. Gaps measure export/transport loss.
	FlowSequence uint32
	// EngineType and EngineID identify the flow-switching engine.
	EngineType byte
	EngineID   byte
	// SamplingInterval is the raw sampling mode/interval field.
	SamplingInterval uint16
}

// DecodeV5 decodes one NetFlow v5 packet, appending its flow records to
// dst (which may be nil; pass a reused slice to decode allocation-free).
// The packet must be exactly header + count*48 bytes — a UDP datagram
// is one packet. No semantic validation is applied beyond structural
// sanity; v5 carries flows of any IANA protocol.
func DecodeV5(pkt []byte, dst []flow.Record) (V5Header, []flow.Record, error) {
	if len(pkt) < V5HeaderSize {
		return V5Header{}, dst, fmt.Errorf("%w: %d bytes, need %d for a v5 header", ErrTruncated, len(pkt), V5HeaderSize)
	}
	be := binary.BigEndian
	if v := be.Uint16(pkt); v != 5 {
		return V5Header{}, dst, fmt.Errorf("%w: version %d, want 5", ErrVersion, v)
	}
	count := int(be.Uint16(pkt[2:]))
	if want := V5HeaderSize + count*V5RecordSize; len(pkt) != want {
		return V5Header{}, dst, fmt.Errorf("%w: %d bytes for %d records, want %d", ErrCorrupt, len(pkt), count, want)
	}
	hdr := V5Header{
		Count:            count,
		SysUptime:        time.Duration(be.Uint32(pkt[4:])) * time.Millisecond,
		Exported:         time.Unix(int64(be.Uint32(pkt[8:])), int64(be.Uint32(pkt[12:]))).UTC(),
		FlowSequence:     be.Uint32(pkt[16:]),
		EngineType:       pkt[20],
		EngineID:         pkt[21],
		SamplingInterval: be.Uint16(pkt[22:]),
	}
	boot := hdr.Exported.Add(-hdr.SysUptime)
	for i := 0; i < count; i++ {
		b := pkt[V5HeaderSize+i*V5RecordSize:]
		first := time.Duration(be.Uint32(b[24:])) * time.Millisecond
		last := time.Duration(be.Uint32(b[28:])) * time.Millisecond
		if last < first {
			return hdr, dst, fmt.Errorf("%w: record %d ends %v before it starts", ErrCorrupt, i, first-last)
		}
		proto := flow.Proto(b[38])
		dst = append(dst, flow.Record{
			Src:      flow.IP(be.Uint32(b)),
			Dst:      flow.IP(be.Uint32(b[4:])),
			SrcPort:  be.Uint16(b[32:]),
			DstPort:  be.Uint16(b[34:]),
			Proto:    proto,
			Start:    boot.Add(first),
			End:      boot.Add(last),
			SrcPkts:  be.Uint32(b[16:]),
			SrcBytes: uint64(be.Uint32(b[20:])),
			State:    flagsState(proto, b[37]),
		})
	}
	return hdr, dst, nil
}

// AppendV5 encodes 1..V5MaxRecords records as one NetFlow v5 packet
// appended to dst. seq is the exporter's running flow count before this
// packet (header flow_sequence); callers maintain it as seq += count.
//
// The packet's reference clock is derived from the records themselves:
// boot time is the earliest Start floored to the millisecond, export
// time the latest End ceiled to it, so decoding reproduces every
// timestamp floored to the millisecond exactly. Records already on a
// whole-millisecond grid round-trip bit for bit. SrcBytes and SrcPkts
// saturate at 2³²−1 (v5 counters are 32-bit); DstPkts, DstBytes, and
// Payload have no v5 representation and are dropped.
func AppendV5(dst []byte, records []flow.Record, seq uint32) ([]byte, error) {
	if len(records) == 0 {
		return dst, fmt.Errorf("collector: refusing to encode an empty v5 packet")
	}
	if len(records) > V5MaxRecords {
		return dst, fmt.Errorf("collector: %d records exceed the v5 packet cap of %d", len(records), V5MaxRecords)
	}
	boot := records[0].Start
	export := records[0].End
	for i := range records {
		r := &records[i]
		if r.End.Before(r.Start) {
			return dst, fmt.Errorf("collector: record %d ends before it starts", i)
		}
		if r.Start.Before(boot) {
			boot = r.Start
		}
		if r.End.After(export) {
			export = r.End
		}
	}
	boot = boot.Truncate(time.Millisecond)
	if ceil := export.Truncate(time.Millisecond); ceil.Before(export) {
		export = ceil.Add(time.Millisecond)
	}
	uptime := export.Sub(boot)
	if ms := uptime.Milliseconds(); ms < 0 || ms > math.MaxUint32 {
		return dst, fmt.Errorf("collector: packet time span %v exceeds the v5 uptime range", uptime)
	}
	if secs := export.Unix(); secs < 0 || secs > math.MaxUint32 {
		return dst, fmt.Errorf("collector: export time %v outside the v5 unix_secs range", export)
	}

	var hdr [V5HeaderSize]byte
	be := binary.BigEndian
	be.PutUint16(hdr[0:], 5)
	be.PutUint16(hdr[2:], uint16(len(records)))
	be.PutUint32(hdr[4:], uint32(uptime.Milliseconds()))
	be.PutUint32(hdr[8:], uint32(export.Unix()))
	be.PutUint32(hdr[12:], uint32(export.Nanosecond()))
	be.PutUint32(hdr[16:], seq)
	// engine_type, engine_id, sampling_interval: zero (software
	// exporter, unsampled).
	dst = append(dst, hdr[:]...)

	var rec [V5RecordSize]byte
	for i := range records {
		r := &records[i]
		b := rec[:]
		clear(b)
		be.PutUint32(b[0:], uint32(r.Src))
		be.PutUint32(b[4:], uint32(r.Dst))
		// nexthop, input, output: zero.
		be.PutUint32(b[16:], r.SrcPkts)
		be.PutUint32(b[20:], uint32(min(r.SrcBytes, math.MaxUint32)))
		be.PutUint32(b[24:], uint32(r.Start.Sub(boot).Milliseconds()))
		be.PutUint32(b[28:], uint32(r.End.Sub(boot).Milliseconds()))
		be.PutUint16(b[32:], r.SrcPort)
		be.PutUint16(b[34:], r.DstPort)
		b[37] = stateFlags(r.Proto, r.State)
		b[38] = byte(r.Proto)
		// tos, AS numbers, masks, padding: zero.
		dst = append(dst, b...)
	}
	return dst, nil
}
