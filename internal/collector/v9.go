package collector

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"plotters/internal/flow"
)

// v9HeaderSize is the fixed NetFlow v9 packet header length: version,
// count, sys_uptime, unix_secs, package_sequence, source_id.
const v9HeaderSize = 20

// NetFlow v9 field types this decoder maps onto flow.Record. Unknown
// types are skipped by their template-declared length, which is what
// makes the decoder template-lite: any layout parses, only these fields
// land in the record.
const (
	fieldInBytes  = 1  // SrcBytes
	fieldInPkts   = 2  // SrcPkts
	fieldProtocol = 4  // Proto
	fieldTCPFlags = 6  // State (see flagsState)
	fieldSrcPort  = 7  // SrcPort
	fieldSrcAddr  = 8  // Src (IPv4)
	fieldDstPort  = 11 // DstPort
	fieldDstAddr  = 12 // Dst (IPv4)
	fieldLastMS   = 21 // End, sysuptime-relative ms
	fieldFirstMS  = 22 // Start, sysuptime-relative ms
	fieldOutBytes = 23 // DstBytes
	fieldOutPkts  = 24 // DstPkts
)

// V9Header is the decoded fixed header of one NetFlow v9 packet.
type V9Header struct {
	// SysUptime and Exported reconstruct absolute record times exactly
	// as in v5 (Exported has only second resolution in v9).
	SysUptime time.Duration
	Exported  time.Time
	// Sequence counts export packets (not flows, unlike v5) from this
	// source; gaps measure lost packets.
	Sequence uint32
	// SourceID scopes template IDs: templates are cached per
	// (exporter, SourceID, template ID).
	SourceID uint32
}

// V9Stats summarizes the non-record outcomes of decoding one packet.
type V9Stats struct {
	// TemplatesLearned counts template definitions absorbed.
	TemplatesLearned int
	// Records counts flow records decoded from data FlowSets.
	Records int
	// MissingTemplate counts data FlowSets skipped because their
	// template has not been seen yet (a fact of v9 life after an
	// exporter or collector restart — exporters re-announce templates
	// periodically).
	MissingTemplate int
	// SkippedSets counts FlowSets ignored by design (options
	// templates and options data).
	SkippedSets int
	// TemplatesEvicted counts cached templates displaced by the
	// per-exporter LRU bound while learning this packet's templates.
	TemplatesEvicted int
}

// v9Field is one template field: an IANA type and a wire length.
type v9Field struct {
	typ    uint16
	length int
}

// v9Template is one cached template's layout.
type v9Template struct {
	fields  []v9Field
	recLen  int
	hasFlag bool // template carries TCP_FLAGS
	hasOut  bool // template carries OUT_PKTS
	hasVar  bool // IPFIX only: has variable-length fields (length -1)
	// lastUsed is the cache's logical clock at the template's most
	// recent store or lookup; the eviction victim is the minimum.
	// Guarded by TemplateCache.mu.
	lastUsed uint64
}

// v9TemplateKey scopes a template to its announcing exporter stream.
type v9TemplateKey struct {
	exporter string
	sourceID uint32
	id       uint16
}

// DefaultTemplateLimit is the per-exporter template cap applied by
// NewTemplateCache. Real exporters announce a handful of templates;
// thousands from one source address is either a misconfiguration or an
// exhaustion attack, and either way the cache must stay bounded.
const DefaultTemplateLimit = 4096

// TemplateCache holds NetFlow v9 and IPFIX templates across packets,
// keyed by (exporter, source ID, template ID). The cache is bounded:
// each exporter address may hold at most limit templates, and storing
// past the cap evicts that exporter's least-recently-used entry (use =
// store or data-set lookup) rather than growing — one noisy or hostile
// exporter cannot displace another's templates or exhaust collector
// memory. Safe for concurrent use — decode workers share one cache.
type TemplateCache struct {
	mu      sync.Mutex
	m       map[v9TemplateKey]*v9Template
	counts  map[string]int // live templates per exporter
	limit   int
	clock   uint64 // logical recency clock, ticks on store/lookup
	evicted uint64
}

// NewTemplateCache returns an empty cache holding at most
// DefaultTemplateLimit templates per exporter.
func NewTemplateCache() *TemplateCache {
	return NewTemplateCacheLimit(DefaultTemplateLimit)
}

// NewTemplateCacheLimit returns an empty cache capped at limit
// templates per exporter; limit <= 0 means DefaultTemplateLimit.
func NewTemplateCacheLimit(limit int) *TemplateCache {
	if limit <= 0 {
		limit = DefaultTemplateLimit
	}
	return &TemplateCache{
		m:      make(map[v9TemplateKey]*v9Template),
		counts: make(map[string]int),
		limit:  limit,
	}
}

// Templates returns how many templates are cached.
func (tc *TemplateCache) Templates() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.m)
}

// Evicted returns how many templates the per-exporter bound has
// displaced since the cache was created.
func (tc *TemplateCache) Evicted() uint64 {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.evicted
}

// store caches t under key, evicting the key's exporter's
// least-recently-used template first when the exporter is at its cap.
// Returns how many templates were evicted (0 or 1).
func (tc *TemplateCache) store(key v9TemplateKey, t *v9Template) int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	tc.clock++
	t.lastUsed = tc.clock
	if _, ok := tc.m[key]; ok {
		tc.m[key] = t // refresh in place: count unchanged
		return 0
	}
	evictions := 0
	if tc.counts[key.exporter] >= tc.limit {
		tc.evictLRU(key.exporter)
		evictions = 1
	}
	tc.m[key] = t
	tc.counts[key.exporter]++
	return evictions
}

// evictLRU removes exporter's least-recently-used template. Called with
// tc.mu held. The scan is linear in the cache size, but runs only when
// an exporter overflows its cap — never on the steady-state decode path.
func (tc *TemplateCache) evictLRU(exporter string) {
	var victim v9TemplateKey
	var oldest uint64
	found := false
	for k, t := range tc.m {
		if k.exporter != exporter {
			continue
		}
		if !found || t.lastUsed < oldest {
			victim, oldest, found = k, t.lastUsed, true
		}
	}
	if !found {
		return // cap > 0 with a zero count: nothing to displace
	}
	delete(tc.m, victim)
	tc.counts[exporter]--
	if tc.counts[exporter] == 0 {
		delete(tc.counts, exporter)
	}
	tc.evicted++
}

func (tc *TemplateCache) lookup(key v9TemplateKey) *v9Template {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	t := tc.m[key]
	if t != nil {
		tc.clock++
		t.lastUsed = tc.clock
	}
	return t
}

// DecodeV9 decodes one NetFlow v9 packet from exporter, learning any
// template FlowSets into the cache and appending data records to dst.
// Data FlowSets whose template is unknown are counted and skipped, not
// errors — the exporter will re-announce. A structural error (truncated
// FlowSet, malformed template) abandons the rest of the packet but
// keeps everything decoded before it.
func (tc *TemplateCache) DecodeV9(exporter string, pkt []byte, dst []flow.Record) (V9Header, []flow.Record, V9Stats, error) {
	var stats V9Stats
	if len(pkt) < v9HeaderSize {
		return V9Header{}, dst, stats, fmt.Errorf("%w: %d bytes, need %d for a v9 header", ErrTruncated, len(pkt), v9HeaderSize)
	}
	be := binary.BigEndian
	if v := be.Uint16(pkt); v != 9 {
		return V9Header{}, dst, stats, fmt.Errorf("%w: version %d, want 9", ErrVersion, v)
	}
	hdr := V9Header{
		SysUptime: time.Duration(be.Uint32(pkt[4:])) * time.Millisecond,
		Exported:  time.Unix(int64(be.Uint32(pkt[8:])), 0).UTC(),
		Sequence:  be.Uint32(pkt[12:]),
		SourceID:  be.Uint32(pkt[16:]),
	}
	boot := hdr.Exported.Add(-hdr.SysUptime)

	off := v9HeaderSize
	for off+4 <= len(pkt) {
		setID := be.Uint16(pkt[off:])
		setLen := int(be.Uint16(pkt[off+2:]))
		if setLen < 4 || off+setLen > len(pkt) {
			return hdr, dst, stats, fmt.Errorf("%w: FlowSet %d claims %d bytes with %d remaining", ErrCorrupt, setID, setLen, len(pkt)-off)
		}
		body := pkt[off+4 : off+setLen]
		switch {
		case setID == 0: // template FlowSet
			n, ev, err := tc.learnTemplates(exporter, hdr.SourceID, body)
			stats.TemplatesLearned += n
			stats.TemplatesEvicted += ev
			if err != nil {
				return hdr, dst, stats, err
			}
		case setID == 1: // options template FlowSet: out of scope
			stats.SkippedSets++
		case setID < 256: // reserved
			stats.SkippedSets++
		default: // data FlowSet
			t := tc.lookup(v9TemplateKey{exporter, hdr.SourceID, setID})
			if t == nil {
				stats.MissingTemplate++
				break
			}
			var err error
			dst, stats.Records, err = t.decodeRecords(body, boot, hdr.Exported, dst, stats.Records)
			if err != nil {
				return hdr, dst, stats, err
			}
		}
		off += setLen
	}
	return hdr, dst, stats, nil
}

// learnTemplates parses one template FlowSet body: a sequence of
// (template ID, field count, fields...) definitions. Returns templates
// learned and cache entries the per-exporter bound evicted.
func (tc *TemplateCache) learnTemplates(exporter string, sourceID uint32, body []byte) (int, int, error) {
	be := binary.BigEndian
	learned, evictions := 0, 0
	for len(body) >= 4 {
		id := be.Uint16(body)
		fieldCount := int(be.Uint16(body[2:]))
		body = body[4:]
		if id < 256 {
			return learned, evictions, fmt.Errorf("%w: template ID %d is reserved", ErrCorrupt, id)
		}
		if len(body) < fieldCount*4 {
			return learned, evictions, fmt.Errorf("%w: template %d declares %d fields with %d bytes left", ErrCorrupt, id, fieldCount, len(body))
		}
		t := &v9Template{fields: make([]v9Field, 0, fieldCount)}
		for i := 0; i < fieldCount; i++ {
			typ := be.Uint16(body[i*4:])
			length := int(be.Uint16(body[i*4+2:]))
			if length == 0 {
				return learned, evictions, fmt.Errorf("%w: template %d field %d has zero length", ErrCorrupt, id, typ)
			}
			t.fields = append(t.fields, v9Field{typ: typ, length: length})
			t.recLen += length
			switch typ {
			case fieldTCPFlags:
				t.hasFlag = true
			case fieldOutPkts:
				t.hasOut = true
			}
		}
		body = body[fieldCount*4:]
		if t.recLen == 0 {
			return learned, evictions, fmt.Errorf("%w: template %d has no fields", ErrCorrupt, id)
		}
		evictions += tc.store(v9TemplateKey{exporter, sourceID, id}, t)
		learned++
	}
	return learned, evictions, nil
}

// decodeRecords cracks a data FlowSet body against the template,
// appending to dst. Trailing bytes shorter than one record are padding.
func (t *v9Template) decodeRecords(body []byte, boot, exported time.Time, dst []flow.Record, n int) ([]flow.Record, int, error) {
	for len(body) >= t.recLen {
		rec := flow.Record{Start: exported, End: exported}
		var flags byte
		var outPkts uint64
		var first, last int64 = -1, -1
		off := 0
		for _, f := range t.fields {
			raw := body[off : off+f.length]
			off += f.length
			v, ok := uintField(raw)
			if !ok {
				continue // wider than 8 bytes: not a numeric field we read
			}
			switch f.typ {
			case fieldInBytes:
				rec.SrcBytes = v
			case fieldInPkts:
				rec.SrcPkts = uint32(min(v, 1<<32-1))
			case fieldProtocol:
				rec.Proto = flow.Proto(v)
			case fieldTCPFlags:
				flags = byte(v)
			case fieldSrcPort:
				rec.SrcPort = uint16(v)
			case fieldSrcAddr:
				rec.Src = flow.IP(v)
			case fieldDstPort:
				rec.DstPort = uint16(v)
			case fieldDstAddr:
				rec.Dst = flow.IP(v)
			case fieldFirstMS:
				first = int64(v)
			case fieldLastMS:
				last = int64(v)
			case fieldOutBytes:
				rec.DstBytes = v
			case fieldOutPkts:
				rec.DstPkts = uint32(min(v, 1<<32-1))
				outPkts = v
			}
		}
		if first >= 0 {
			rec.Start = boot.Add(time.Duration(first) * time.Millisecond)
		}
		if last >= 0 {
			rec.End = boot.Add(time.Duration(last) * time.Millisecond)
		}
		if rec.End.Before(rec.Start) {
			return dst, n, fmt.Errorf("%w: v9 record ends before it starts", ErrCorrupt)
		}
		rec.State = t.state(rec.Proto, flags, outPkts)
		dst = append(dst, rec)
		n++
		body = body[t.recLen:]
	}
	return dst, n, nil
}

// state derives the connection outcome from what the template offers:
// tcp_flags when announced (same rule as v5), else the presence of
// reply packets, else the conservative "established".
func (t *v9Template) state(proto flow.Proto, flags byte, outPkts uint64) flow.ConnState {
	switch {
	case t.hasFlag:
		return flagsState(proto, flags)
	case t.hasOut:
		if outPkts > 0 {
			return flow.StateEstablished
		}
		return flow.StateFailed
	default:
		return flow.StateEstablished
	}
}

// uintField reads a 1..8-byte big-endian unsigned field.
func uintField(b []byte) (uint64, bool) {
	if len(b) > 8 {
		return 0, false
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v, true
}
