package collector

import "testing"

// storeTemplate learns a minimal one-field template via the public v9
// decode path so the test exercises the same store the wire does.
func storeTemplate(t *testing.T, tc *TemplateCache, exporter string, id uint16) {
	t.Helper()
	pkt := v9Packet(1000, 1194253200, 1, 0,
		flowSet(0, templateBody(id, [2]uint16{fieldSrcPort, 2})))
	if _, _, _, err := tc.DecodeV9(exporter, pkt, nil); err != nil {
		t.Fatalf("learn template %d: %v", id, err)
	}
}

// hasTemplate probes the cache by replaying a data FlowSet for id.
func hasTemplate(t *testing.T, tc *TemplateCache, exporter string, id uint16) bool {
	t.Helper()
	pkt := v9Packet(1000, 1194253200, 2, 0, flowSet(id, []byte{0x1F, 0x90}))
	_, recs, stats, err := tc.DecodeV9(exporter, pkt, nil)
	if err != nil {
		t.Fatalf("probe template %d: %v", id, err)
	}
	return stats.MissingTemplate == 0 && len(recs) == 1
}

func TestTemplateCacheEviction(t *testing.T) {
	tc := NewTemplateCacheLimit(3)
	const exp = "10.0.0.1:2055"
	for id := uint16(300); id < 303; id++ {
		storeTemplate(t, tc, exp, id)
	}
	if tc.Templates() != 3 || tc.Evicted() != 0 {
		t.Fatalf("at cap: %d templates, %d evicted", tc.Templates(), tc.Evicted())
	}

	// Touch 300 and 302 so 301 is the least recently used, then
	// overflow: 301 must be the victim.
	hasTemplate(t, tc, exp, 300)
	hasTemplate(t, tc, exp, 302)
	storeTemplate(t, tc, exp, 303)
	if tc.Templates() != 3 {
		t.Fatalf("cache grew past its cap: %d templates", tc.Templates())
	}
	if tc.Evicted() != 1 {
		t.Fatalf("eviction counter = %d, want 1", tc.Evicted())
	}
	if hasTemplate(t, tc, exp, 301) {
		t.Error("LRU template 301 survived the eviction")
	}
	for _, id := range []uint16{300, 302, 303} {
		if !hasTemplate(t, tc, exp, id) {
			t.Errorf("recently-used template %d was evicted", id)
		}
	}

	// Re-announcing a cached template refreshes in place: no eviction,
	// no growth.
	storeTemplate(t, tc, exp, 303)
	if tc.Templates() != 3 || tc.Evicted() != 1 {
		t.Fatalf("refresh changed the cache: %d templates, %d evicted", tc.Templates(), tc.Evicted())
	}
}

// TestTemplateCacheEvictionIsPerExporter pins the isolation property:
// one exporter overflowing its cap cannot displace another's templates.
func TestTemplateCacheEvictionIsPerExporter(t *testing.T) {
	tc := NewTemplateCacheLimit(2)
	storeTemplate(t, tc, "victim:2055", 300)
	for id := uint16(400); id < 410; id++ {
		storeTemplate(t, tc, "noisy:2055", id)
	}
	if !hasTemplate(t, tc, "victim:2055", 300) {
		t.Fatal("noisy exporter evicted the victim exporter's template")
	}
	if tc.Templates() != 3 { // victim's 1 + noisy's capped 2
		t.Fatalf("cache holds %d templates, want 3", tc.Templates())
	}
	if got := tc.Evicted(); got != 8 {
		t.Fatalf("evicted = %d, want 8", got)
	}
	// The noisy exporter keeps its most recent announcements.
	for _, id := range []uint16{408, 409} {
		if !hasTemplate(t, tc, "noisy:2055", id) {
			t.Errorf("noisy exporter's recent template %d missing", id)
		}
	}
}

// TestTemplateCacheSharedWithIPFIX checks the bound also covers IPFIX
// template sets, which share the cache and key space.
func TestTemplateCacheSharedWithIPFIX(t *testing.T) {
	tc := NewTemplateCacheLimit(1)
	recs := sampleRecords()[:1]
	pkt, err := AppendIPFIX(nil, recs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := tc.DecodeIPFIX("10.0.0.1:4739", pkt, nil); err != nil {
		t.Fatal(err)
	}
	// A v9 template from the same exporter string and source 0 collides
	// with the IPFIX domain-0 space and displaces it.
	storeTemplate(t, tc, "10.0.0.1:4739", 999)
	if tc.Evicted() != 1 {
		t.Fatalf("evicted = %d, want 1", tc.Evicted())
	}
	_, _, stats, err := tc.DecodeIPFIX("10.0.0.1:4739", pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The message is self-describing, so the template is relearned (and
	// the v9 one evicted in turn) before the data set decodes.
	if stats.Records != 1 || stats.TemplatesEvicted != 1 {
		t.Fatalf("stats = %+v, want 1 record + 1 eviction", stats)
	}
}
