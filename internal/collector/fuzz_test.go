package collector

import (
	"errors"
	"reflect"
	"testing"

	"plotters/internal/flow"
)

// The collector sits on an open UDP port, so its decoders face truly
// arbitrary bytes. The fuzz targets pin two properties: decoding never
// panics (an error or records, nothing else), and decoded records are
// round-trip stable — one encode→decode settles them onto the v5
// millisecond grid, after which encode→decode is the identity.

// v5FuzzSeeds starts the fuzzer near interesting packet shapes.
func v5FuzzSeeds(f *testing.F) {
	full, err := AppendV5(nil, wireRecords(), 99)
	if err != nil {
		f.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xff
	for _, seed := range [][]byte{full, full[:len(full)*2/3], corrupt, {}, []byte("garbage\n")} {
		f.Add(seed)
	}
}

// encodeV5Chunks packs records into ≤30-record packets. ok is false when
// the records are outside what v5 can carry (e.g. a >49-day span or a
// pre-epoch time decoded from hostile bytes) — only representable
// records must round-trip.
func encodeV5Chunks(records []flow.Record) ([][]byte, bool) {
	var pkts [][]byte
	for len(records) > 0 {
		n := min(len(records), V5MaxRecords)
		pkt, err := AppendV5(nil, records[:n], 0)
		if err != nil {
			return nil, false
		}
		pkts = append(pkts, pkt)
		records = records[n:]
	}
	return pkts, true
}

// decodeV5Chunks decodes packets this package itself encoded, so any
// error is a bug.
func decodeV5Chunks(t *testing.T, pkts [][]byte) []flow.Record {
	t.Helper()
	var out []flow.Record
	for _, pkt := range pkts {
		var err error
		_, out, err = DecodeV5(pkt, out)
		if err != nil {
			t.Fatalf("re-decoding own encoding: %v", err)
		}
	}
	return out
}

func FuzzNetFlowV5Decode(f *testing.F) {
	v5FuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, first, err := DecodeV5(data, nil)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if len(first) == 0 {
			return // a count=0 packet is valid and empty
		}
		// First round trip quantizes arbitrary decoded times onto the
		// wire's millisecond grid...
		pkts, ok := encodeV5Chunks(first)
		if !ok {
			return
		}
		settled := decodeV5Chunks(t, pkts)
		// ...after which the codec must be exactly stable.
		pkts2, ok := encodeV5Chunks(settled)
		if !ok {
			t.Fatalf("re-encoding settled records failed")
		}
		again := decodeV5Chunks(t, pkts2)
		if !reflect.DeepEqual(again, settled) {
			t.Errorf("round trip changed settled records:\nfirst  %v\nsecond %v", settled, again)
		}
	})
}

func FuzzNetFlowV9Decode(f *testing.F) {
	tmpl := v9Packet(60_000, 1194253200, 1, 42, flowSet(0, fullTemplate(300)))
	data := v9Packet(60_000, 1194253200, 2, 42,
		flowSet(300, fullRecord(1, 2, 3, 4, flow.TCP, tcpACK, 5, 840, 1000, 3500)))
	both := v9Packet(60_000, 1194253200, 3, 42,
		flowSet(0, fullTemplate(301)),
		flowSet(301, fullRecord(5, 6, 7, 8, flow.UDP, 0, 1, 60, 0, 0)))
	corrupt := append([]byte(nil), both...)
	corrupt[len(corrupt)/2] ^= 0xff
	for _, seed := range [][]byte{tmpl, data, both, corrupt, tmpl[:12], {}, []byte("garbage\n")} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pkt []byte) {
		tc := NewTemplateCache()
		// Decode twice through one cache: the second pass exercises the
		// data path for any template the first pass learned.
		for i := 0; i < 2; i++ {
			_, recs, stats, err := tc.DecodeV9("fuzz", pkt, nil)
			if err != nil {
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified decode error: %v", err)
				}
			}
			if len(recs) != stats.Records {
				t.Fatalf("stats claim %d records, decoder returned %d", stats.Records, len(recs))
			}
			for j := range recs {
				if recs[j].End.Before(recs[j].Start) {
					t.Fatalf("record %d ends before it starts", j)
				}
			}
		}
	})
}
