package collector

import (
	"errors"
	"testing"
	"time"
)

// Fuzz targets for the two line-rate ingest decoders. Same contract as
// the v5/v9 targets: arbitrary bytes produce an error or records,
// never a panic, and the template-settle path stays consistent with
// its stats.

func FuzzIPFIXDecode(f *testing.F) {
	full, err := AppendIPFIX(nil, sampleRecords(), 3)
	if err != nil {
		f.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xff
	for _, seed := range [][]byte{full, full[:len(full)*2/3], corrupt, full[:ipfixHeaderSize], {}, []byte("garbage\n")} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, pkt []byte) {
		tc := NewTemplateCache()
		// Decode twice through one cache: the second pass exercises the
		// data path for any template the first pass learned (the
		// template-settle round trip).
		for i := 0; i < 2; i++ {
			_, recs, stats, err := tc.DecodeIPFIX("fuzz", pkt, nil)
			if err != nil {
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("unclassified decode error: %v", err)
				}
			}
			if len(recs) != stats.Records {
				t.Fatalf("stats claim %d records, decoder returned %d", stats.Records, len(recs))
			}
			for j := range recs {
				if recs[j].End.Before(recs[j].Start) {
					t.Fatalf("record %d ends before it starts", j)
				}
			}
		}
	})
}

func FuzzSFlowDecode(f *testing.F) {
	full, err := AppendSFlow(nil, sampleRecords(), 1)
	if err != nil {
		f.Fatal(err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0xff
	for _, seed := range [][]byte{full, full[:len(full)*2/3], corrupt, full[:28], {}, []byte("garbage\n")} {
		f.Add(seed)
	}
	arrival := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	f.Fuzz(func(t *testing.T, pkt []byte) {
		_, recs, stats, err := DecodeSFlow(pkt, arrival, nil)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrVersion) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
		}
		if len(recs) != stats.Records {
			t.Fatalf("stats claim %d records, decoder returned %d", stats.Records, len(recs))
		}
		for j := range recs {
			if recs[j].End.Before(recs[j].Start) {
				t.Fatalf("record %d ends before it starts", j)
			}
		}
	})
}
