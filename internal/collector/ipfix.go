// IPFIX (RFC 7011, NetFlow v10) support.
//
// IPFIX shares v9's template machinery — templates are cached per
// (exporter, observation domain, template ID) in the same bounded
// TemplateCache — but differs where the wire formats differ:
//
//   - The 16-byte message header carries a total length instead of a
//     record count, and has no SysUptime, so the uptime-relative
//     timestamp fields (21/22) cannot be resolved and are skipped.
//     Absolute timestamps come from flowStartMilliseconds /
//     flowEndMilliseconds (IEs 152/153) or the seconds-resolution
//     150/151, falling back to the message export time.
//   - Set IDs move: 2 announces templates, 3 options templates, and
//     data sets still start at 256.
//   - Fields may be enterprise-specific (type high bit set, followed by
//     a 4-byte enterprise number) or variable-length (declared length
//     0xFFFF, actual length prefixed to each value). The decoder skips
//     both by length; only the standard fixed-size fields it shares
//     with v9 land in records.
//   - The sequence number counts cumulative data records, not export
//     packets, which accountIPFIX in the collector exploits to measure
//     lost flows exactly.
//
// AppendIPFIX is the matching software exporter: every message is
// self-describing (template set + data set), bidirectional counters
// survive via the v9-compatible OUT_BYTES/OUT_PKTS (23/24), and
// timestamps ride 152/153 — so decode(encode(x)) loses nothing but
// sub-millisecond time, exactly like the v5 path.

package collector

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"plotters/internal/flow"
)

// ipfixHeaderSize is the fixed IPFIX message header length: version,
// length, export_time, sequence, observation_domain_id.
const ipfixHeaderSize = 16

// IPFIX information elements mapped in addition to the v9-shared set.
const (
	fieldStartSec   = 150 // flowStartSeconds, absolute
	fieldEndSec     = 151 // flowEndSeconds, absolute
	fieldStartMilli = 152 // flowStartMilliseconds, absolute
	fieldEndMilli   = 153 // flowEndMilliseconds, absolute
)

// ipfixUnknownField marks template slots the decoder only skips:
// enterprise-specific fields and IEs it does not map.
const ipfixUnknownField = 0xFFFF

// ipfixVarLen in a template field's length slot declares a
// variable-length field whose actual length prefixes each value.
const ipfixVarLen = 0xFFFF

// IPFIXHeader is the decoded fixed header of one IPFIX message.
type IPFIXHeader struct {
	// Length is the message's declared total length in bytes.
	Length int
	// Exported is the message export time (second resolution).
	Exported time.Time
	// Sequence counts cumulative data records sent by this stream
	// before this message; with per-message record counts it yields an
	// exact lost-flow measure.
	Sequence uint32
	// DomainID is the observation domain, scoping template IDs exactly
	// like v9's source ID.
	DomainID uint32
}

// DecodeIPFIX decodes one IPFIX message from exporter, learning
// template sets into the cache and appending data records to dst.
// Semantics mirror DecodeV9: unknown-template data sets are counted
// and skipped, structural errors keep earlier records.
func (tc *TemplateCache) DecodeIPFIX(exporter string, pkt []byte, dst []flow.Record) (IPFIXHeader, []flow.Record, V9Stats, error) {
	var stats V9Stats
	if len(pkt) < ipfixHeaderSize {
		return IPFIXHeader{}, dst, stats, fmt.Errorf("%w: %d bytes, need %d for an IPFIX header", ErrTruncated, len(pkt), ipfixHeaderSize)
	}
	be := binary.BigEndian
	if v := be.Uint16(pkt); v != 10 {
		return IPFIXHeader{}, dst, stats, fmt.Errorf("%w: version %d, want 10", ErrVersion, v)
	}
	hdr := IPFIXHeader{
		Length:   int(be.Uint16(pkt[2:])),
		Exported: time.Unix(int64(be.Uint32(pkt[4:])), 0).UTC(),
		Sequence: be.Uint32(pkt[8:]),
		DomainID: be.Uint32(pkt[12:]),
	}
	if hdr.Length < ipfixHeaderSize || hdr.Length > len(pkt) {
		return hdr, dst, stats, fmt.Errorf("%w: message declares %d bytes, datagram has %d", ErrTruncated, hdr.Length, len(pkt))
	}
	pkt = pkt[:hdr.Length] // spec: the message is exactly Length bytes

	off := ipfixHeaderSize
	for off+4 <= len(pkt) {
		setID := be.Uint16(pkt[off:])
		setLen := int(be.Uint16(pkt[off+2:]))
		if setLen < 4 || off+setLen > len(pkt) {
			return hdr, dst, stats, fmt.Errorf("%w: set %d claims %d bytes with %d remaining", ErrCorrupt, setID, setLen, len(pkt)-off)
		}
		body := pkt[off+4 : off+setLen]
		switch {
		case setID == 2: // template set
			n, ev, err := tc.learnIPFIXTemplates(exporter, hdr.DomainID, body)
			stats.TemplatesLearned += n
			stats.TemplatesEvicted += ev
			if err != nil {
				return hdr, dst, stats, err
			}
		case setID == 3: // options template set: out of scope
			stats.SkippedSets++
		case setID < 256: // reserved
			stats.SkippedSets++
		default: // data set
			t := tc.lookup(v9TemplateKey{exporter, hdr.DomainID, setID})
			if t == nil {
				stats.MissingTemplate++
				break
			}
			var err error
			dst, stats.Records, err = t.decodeIPFIXRecords(body, hdr.Exported, dst, stats.Records)
			if err != nil {
				return hdr, dst, stats, err
			}
		}
		off += setLen
	}
	return hdr, dst, stats, nil
}

// learnIPFIXTemplates parses one template set body. It differs from the
// v9 parser in the field encoding only: enterprise-specific fields
// (type high bit) carry a trailing 4-byte enterprise number and are
// cached as skip-only, and a declared length of 0xFFFF marks a
// variable-length field.
func (tc *TemplateCache) learnIPFIXTemplates(exporter string, domainID uint32, body []byte) (int, int, error) {
	be := binary.BigEndian
	learned, evictions := 0, 0
	for len(body) >= 4 {
		id := be.Uint16(body)
		fieldCount := int(be.Uint16(body[2:]))
		body = body[4:]
		if id < 256 {
			return learned, evictions, fmt.Errorf("%w: template ID %d is reserved", ErrCorrupt, id)
		}
		t := &v9Template{fields: make([]v9Field, 0, fieldCount)}
		for i := 0; i < fieldCount; i++ {
			if len(body) < 4 {
				return learned, evictions, fmt.Errorf("%w: template %d truncated at field %d", ErrCorrupt, id, i)
			}
			typ := be.Uint16(body)
			length := int(be.Uint16(body[2:]))
			body = body[4:]
			if typ&0x8000 != 0 {
				if len(body) < 4 {
					return learned, evictions, fmt.Errorf("%w: template %d enterprise field %d lacks its PEN", ErrCorrupt, id, i)
				}
				body = body[4:]         // private enterprise number
				typ = ipfixUnknownField // skip-only
			}
			if length == ipfixVarLen {
				t.fields = append(t.fields, v9Field{typ: ipfixUnknownField, length: -1})
				t.hasVar = true
				t.recLen++ // at least the 1-byte length prefix
				continue
			}
			if length == 0 {
				return learned, evictions, fmt.Errorf("%w: template %d field %d has zero length", ErrCorrupt, id, typ)
			}
			t.fields = append(t.fields, v9Field{typ: typ, length: length})
			t.recLen += length
			switch typ {
			case fieldTCPFlags:
				t.hasFlag = true
			case fieldOutPkts:
				t.hasOut = true
			}
		}
		if t.recLen == 0 {
			return learned, evictions, fmt.Errorf("%w: template %d has no fields", ErrCorrupt, id)
		}
		evictions += tc.store(v9TemplateKey{exporter, domainID, id}, t)
		learned++
	}
	return learned, evictions, nil
}

// decodeIPFIXRecords cracks a data set body against the template. For
// fixed-layout templates recLen strides the body exactly as in v9; a
// template with variable-length fields is walked value by value. With
// no absolute timestamp IEs present, records carry the export time.
func (t *v9Template) decodeIPFIXRecords(body []byte, exported time.Time, dst []flow.Record, n int) ([]flow.Record, int, error) {
	for len(body) >= t.recLen && t.recLen > 0 {
		rec := flow.Record{Start: exported, End: exported}
		var flags byte
		var outPkts uint64
		var startMS, endMS, startS, endS int64 = -1, -1, -1, -1
		off := 0
		truncated := false
		for _, f := range t.fields {
			length := f.length
			if length < 0 { // variable-length: 1- or 3-byte prefix
				if off >= len(body) {
					truncated = true
					break
				}
				l := int(body[off])
				off++
				if l == 255 {
					if off+2 > len(body) {
						truncated = true
						break
					}
					l = int(binary.BigEndian.Uint16(body[off:]))
					off += 2
				}
				length = l
			}
			if off+length > len(body) {
				truncated = true
				break
			}
			raw := body[off : off+length]
			off += length
			v, ok := uintField(raw)
			if !ok || f.typ == ipfixUnknownField {
				continue
			}
			switch f.typ {
			case fieldInBytes:
				rec.SrcBytes = v
			case fieldInPkts:
				rec.SrcPkts = uint32(min(v, 1<<32-1))
			case fieldProtocol:
				rec.Proto = flow.Proto(v)
			case fieldTCPFlags:
				flags = byte(v)
			case fieldSrcPort:
				rec.SrcPort = uint16(v)
			case fieldSrcAddr:
				rec.Src = flow.IP(v)
			case fieldDstPort:
				rec.DstPort = uint16(v)
			case fieldDstAddr:
				rec.Dst = flow.IP(v)
			case fieldOutBytes:
				rec.DstBytes = v
			case fieldOutPkts:
				rec.DstPkts = uint32(min(v, 1<<32-1))
				outPkts = v
			case fieldStartMilli:
				startMS = int64(v)
			case fieldEndMilli:
				endMS = int64(v)
			case fieldStartSec:
				startS = int64(v)
			case fieldEndSec:
				endS = int64(v)
			}
			// 21/22 are sysuptime-relative; IPFIX has no boot time to
			// resolve them against, so they are skipped by length above.
		}
		if truncated {
			break // trailing padding shorter than one record
		}
		switch {
		case startMS >= 0:
			rec.Start = time.UnixMilli(startMS).UTC()
		case startS >= 0:
			rec.Start = time.Unix(startS, 0).UTC()
		}
		switch {
		case endMS >= 0:
			rec.End = time.UnixMilli(endMS).UTC()
		case endS >= 0:
			rec.End = time.Unix(endS, 0).UTC()
		}
		if rec.End.Before(rec.Start) {
			return dst, n, fmt.Errorf("%w: IPFIX record ends before it starts", ErrCorrupt)
		}
		rec.State = t.state(rec.Proto, flags, outPkts)
		dst = append(dst, rec)
		n++
		body = body[off:]
	}
	return dst, n, nil
}

// ipfixTemplateID is the template AppendIPFIX announces. Every message
// is self-describing, so a collector joining mid-stream decodes from
// the first packet it sees.
const ipfixTemplateID = 256

// ipfixField pairs an IE number with its encoded length, in the order
// AppendIPFIX writes them.
var ipfixExportFields = []v9Field{
	{typ: fieldSrcAddr, length: 4},
	{typ: fieldDstAddr, length: 4},
	{typ: fieldSrcPort, length: 2},
	{typ: fieldDstPort, length: 2},
	{typ: fieldProtocol, length: 1},
	{typ: fieldTCPFlags, length: 1},
	{typ: fieldInPkts, length: 4},
	{typ: fieldInBytes, length: 8},
	{typ: fieldOutPkts, length: 4},
	{typ: fieldOutBytes, length: 8},
	{typ: fieldStartMilli, length: 8},
	{typ: fieldEndMilli, length: 8},
}

// ipfixRecordSize is the wire length of one exported data record.
var ipfixRecordSize = func() int {
	n := 0
	for _, f := range ipfixExportFields {
		n += f.length
	}
	return n
}()

// AppendIPFIX encodes records as one self-describing IPFIX message
// (template set + data set) and appends it to dst. seq must be the
// cumulative count of data records sent before this message — IPFIX
// sequence semantics — so callers thread sum-of-records, not a packet
// counter. The mapping is lossless except sub-millisecond timestamps
// and the State→tcpControlBits projection shared with v5.
func AppendIPFIX(dst []byte, records []flow.Record, seq uint32) ([]byte, error) {
	if len(records) == 0 {
		return dst, fmt.Errorf("collector: refusing to encode an empty IPFIX message")
	}
	export := records[0].End
	for i := range records {
		r := &records[i]
		if r.End.Before(r.Start) {
			return dst, fmt.Errorf("collector: record %d ends before it starts", i)
		}
		if r.End.After(export) {
			export = r.End
		}
		if ms := r.Start.UnixMilli(); ms < 0 {
			return dst, fmt.Errorf("collector: record %d starts before the epoch", i)
		}
	}
	if ceil := export.Truncate(time.Second); ceil.Before(export) {
		export = ceil.Add(time.Second)
	}
	if secs := export.Unix(); secs < 0 || secs > math.MaxUint32 {
		return dst, fmt.Errorf("collector: export time %v outside the IPFIX export_time range", export)
	}

	tmplSetLen := 4 + 4 + 4*len(ipfixExportFields)
	dataSetLen := 4 + len(records)*ipfixRecordSize
	total := ipfixHeaderSize + tmplSetLen + dataSetLen
	if total > math.MaxUint16 {
		return dst, fmt.Errorf("collector: %d records exceed one IPFIX message (%d bytes)", len(records), total)
	}

	be := binary.BigEndian
	var hdr [ipfixHeaderSize]byte
	be.PutUint16(hdr[0:], 10)
	be.PutUint16(hdr[2:], uint16(total))
	be.PutUint32(hdr[4:], uint32(export.Unix()))
	be.PutUint32(hdr[8:], seq)
	// observation_domain_id: zero (single software exporter).
	dst = append(dst, hdr[:]...)

	// Template set.
	var set [4]byte
	be.PutUint16(set[0:], 2)
	be.PutUint16(set[2:], uint16(tmplSetLen))
	dst = append(dst, set[:]...)
	var tmpl [4]byte
	be.PutUint16(tmpl[0:], ipfixTemplateID)
	be.PutUint16(tmpl[2:], uint16(len(ipfixExportFields)))
	dst = append(dst, tmpl[:]...)
	for _, f := range ipfixExportFields {
		var fb [4]byte
		be.PutUint16(fb[0:], f.typ)
		be.PutUint16(fb[2:], uint16(f.length))
		dst = append(dst, fb[:]...)
	}

	// Data set.
	be.PutUint16(set[0:], ipfixTemplateID)
	be.PutUint16(set[2:], uint16(dataSetLen))
	dst = append(dst, set[:]...)
	var rec [54]byte // = ipfixRecordSize
	for i := range records {
		r := &records[i]
		b := rec[:ipfixRecordSize]
		clear(b)
		be.PutUint32(b[0:], uint32(r.Src))
		be.PutUint32(b[4:], uint32(r.Dst))
		be.PutUint16(b[8:], r.SrcPort)
		be.PutUint16(b[10:], r.DstPort)
		b[12] = byte(r.Proto)
		b[13] = stateFlags(r.Proto, r.State)
		be.PutUint32(b[14:], r.SrcPkts)
		be.PutUint64(b[18:], r.SrcBytes)
		be.PutUint32(b[26:], r.DstPkts)
		be.PutUint64(b[30:], r.DstBytes)
		be.PutUint64(b[38:], uint64(r.Start.UnixMilli()))
		be.PutUint64(b[46:], uint64(r.End.UnixMilli()))
		dst = append(dst, b...)
	}
	return dst, nil
}
