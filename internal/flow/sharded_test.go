package flow

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Property (the decoupling refactor's correctness contract): splitting
// any record stream across ANY shard count yields a merged feature
// snapshot identical to the batch extractor's. Hosts never straddle
// shards, so no cross-shard state can exist to diverge.
func TestShardedSnapshotPropertyMatchesBatch(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16, shardRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(sizeRaw)%400
		shards := 1 + int(shardRaw)%16

		records := strictlyOrderedRecords(rng, n)
		se := NewShardedExtractor(FeatureOptions{}, shards)
		if se.Shards() != shards {
			t.Logf("seed %d: shards = %d, want %d", seed, se.Shards(), shards)
			return false
		}
		for i := range records {
			if err := se.Add(&records[i]); err != nil {
				t.Logf("seed %d: record rejected: %v", seed, err)
				return false
			}
		}

		batch := ExtractFeatures(records, FeatureOptions{})
		merged := se.Snapshot()
		if len(batch) != len(merged) {
			t.Logf("seed %d (%d shards): host counts differ: %d vs %d",
				seed, shards, len(batch), len(merged))
			return false
		}
		for ip, bf := range batch {
			if !reflect.DeepEqual(bf, merged[ip]) {
				t.Logf("seed %d (%d shards): host %v differs:\nbatch   %+v\nsharded %+v",
					seed, shards, ip, bf, merged[ip])
				return false
			}
		}
		if se.Records() != n || se.Hosts() != len(batch) {
			t.Logf("seed %d: counters records=%d hosts=%d", seed, se.Records(), se.Hosts())
			return false
		}
		w := se.Window()
		for _, r := range records {
			if !w.Contains(r.Start) {
				t.Logf("seed %d: window %v misses record at %v", seed, w, r.Start)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Concurrent ingest across goroutines must converge to the batch
// features once drained: the per-shard reorder heaps put records back
// in start order regardless of which goroutine delivered them.
func TestShardedConcurrentAddMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	records := strictlyOrderedRecords(rng, 2000)
	span := records[len(records)-1].Start.Sub(records[0].Start)

	// Records interleave arbitrarily across feeders, so the store must
	// tolerate skew up to the whole span.
	se := NewShardedExtractorSkew(FeatureOptions{}, 4, span+time.Hour)
	const feeders = 4
	var wg sync.WaitGroup
	for g := 0; g < feeders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(records); i += feeders {
				if err := se.Add(&records[i]); err != nil {
					t.Errorf("feeder %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	se.Drain()
	if se.Pending() != 0 {
		t.Fatalf("%d records still pending after drain", se.Pending())
	}

	batch := ExtractFeatures(records, FeatureOptions{})
	merged := se.Snapshot()
	if len(batch) != len(merged) {
		t.Fatalf("host counts differ: %d vs %d", len(batch), len(merged))
	}
	for ip, bf := range batch {
		if !reflect.DeepEqual(bf, merged[ip]) {
			t.Fatalf("host %v differs:\nbatch   %+v\nsharded %+v", ip, bf, merged[ip])
		}
	}
}

// sortedGaps returns a host's interstitial samples in ascending order —
// MergePanes guarantees the multiset, not the ordering (pane-major, and
// boundary gaps in map order), and every downstream consumer is
// order-insensitive.
func sortedGaps(f *HostFeatures) []float64 {
	out := append([]float64(nil), f.Interstitials...)
	sort.Float64s(out)
	return out
}

// featuresEqualModGapOrder compares two hosts' features exactly except
// for interstitial ordering.
func featuresEqualModGapOrder(a, b *HostFeatures) bool {
	if a.Host != b.Host || a.Flows != b.Flows ||
		a.SuccessfulFlows != b.SuccessfulFlows || a.FailedFlows != b.FailedFlows ||
		a.BytesUploaded != b.BytesUploaded ||
		a.Peers != b.Peers || a.NewPeers != b.NewPeers ||
		!a.FirstSeen.Equal(b.FirstSeen) || !a.LastSeen.Equal(b.LastSeen) {
		return false
	}
	return reflect.DeepEqual(sortedGaps(a), sortedGaps(b))
}

// Sealing a stream into panes and merging them back must reproduce the
// batch extraction over the combined records: counters, de-duplicated
// peers, grace-anchored new-peer counts, and the exact multiset of
// interstitial gaps including the cross-pane boundary gaps.
func TestMergePanesMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 20; trial++ {
		records := strictlyOrderedRecords(rng, 600)
		start := records[0].Start
		end := records[len(records)-1].Start.Add(time.Nanosecond)

		// Seal into hour panes.
		se := NewStreamExtractor(FeatureOptions{})
		var panes []*Pane
		cut := start.Add(time.Hour)
		for i := range records {
			for !records[i].Start.Before(cut) {
				se.ReleaseBefore(cut)
				panes = append(panes, se.TakePane(Window{From: cut.Add(-time.Hour), To: cut}))
				cut = cut.Add(time.Hour)
			}
			if err := se.Add(&records[i]); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		se.ReleaseBefore(end)
		panes = append(panes, se.TakePane(Window{From: cut.Add(-time.Hour), To: cut}))

		merged := MergePanes(0, panes...)
		batch := ExtractFeatures(records, FeatureOptions{})
		if len(merged.Features()) != len(batch) {
			t.Fatalf("trial %d: host counts differ: %d vs %d",
				trial, len(merged.Features()), len(batch))
		}
		for ip, bf := range batch {
			mf := merged.Features()[ip]
			if mf == nil {
				t.Fatalf("trial %d: host %v missing from merge", trial, ip)
			}
			if !featuresEqualModGapOrder(bf, mf) {
				t.Fatalf("trial %d: host %v differs:\nbatch %+v\nmerge %+v", trial, ip, bf, mf)
			}
		}
	}
}

// A merge with a single populated pane must take the exact fast path:
// identical features, interstitial order included.
func TestMergePanesSinglePopulatedExact(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	records := strictlyOrderedRecords(rng, 300)
	se := NewStreamExtractor(FeatureOptions{})
	for i := range records {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	w := se.Window()
	pane := se.TakePane(w)
	empty := &Pane{builders: map[IP]*featureBuilder{}, window: Window{From: w.To, To: w.To.Add(time.Hour)}}

	merged := MergePanes(0, pane, empty)
	batch := ExtractFeatures(records, FeatureOptions{})
	if !reflect.DeepEqual(merged.Features(), batch) {
		t.Error("single-populated-pane merge is not bit-identical to batch")
	}
	mw := merged.Window()
	if !mw.From.Equal(w.From) || !mw.To.Equal(w.To.Add(time.Hour)) {
		t.Errorf("merged window = %v, want union of pane windows", mw)
	}
}

// ReleaseBefore must flush exactly the records below the boundary and
// then reject late arrivals below it, while records at or past it stay
// buffered for the next pane.
func TestReleaseBeforeSealsBoundary(t *testing.T) {
	se := NewStreamExtractorSkew(FeatureOptions{}, 2*time.Hour)
	t0 := baseTime()
	boundary := t0.Add(time.Hour)
	early := mkRecord(1, 100, t0, 10, StateEstablished)
	late := mkRecord(2, 100, boundary.Add(time.Minute), 10, StateEstablished)
	for _, r := range []*Record{&early, &late} {
		if err := se.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if se.Hosts() != 0 || se.Pending() != 2 {
		t.Fatalf("pre-seal: hosts=%d pending=%d, want all buffered", se.Hosts(), se.Pending())
	}

	se.ReleaseBefore(boundary)
	if se.Hosts() != 1 || se.Pending() != 1 {
		t.Fatalf("post-seal: hosts=%d pending=%d, want the early record processed and the late one held",
			se.Hosts(), se.Pending())
	}
	if _, ok := se.Snapshot()[1]; !ok {
		t.Fatal("early record's host missing after ReleaseBefore")
	}

	// A straggler below the sealed boundary must be rejected...
	straggler := mkRecord(3, 100, boundary.Add(-time.Minute), 10, StateEstablished)
	if err := se.Add(&straggler); err == nil {
		t.Error("record below the sealed boundary accepted")
	}
	// ...while one at the boundary is fine.
	onTime := mkRecord(4, 100, boundary, 10, StateEstablished)
	if err := se.Add(&onTime); err != nil {
		t.Errorf("record at the sealed boundary rejected: %v", err)
	}
}

// With first-seen carrying on, a host reappearing in a later pane keeps
// its grace anchor from its earliest activity — contacts beyond the
// original grace window count as new peers. Off, each pane restarts the
// warm-up and the same contact is grace-exempt.
func TestCarryFirstSeenAcrossPanes(t *testing.T) {
	t0 := baseTime()
	run := func(carry bool) int {
		se := NewStreamExtractor(FeatureOptions{NewPeerGrace: time.Hour})
		se.CarryFirstSeen(carry)
		r1 := mkRecord(1, 100, t0, 10, StateEstablished)
		if err := se.Add(&r1); err != nil {
			t.Fatal(err)
		}
		se.TakePane(Window{From: t0, To: t0.Add(time.Hour)})

		// Reappears two hours later with a fresh destination.
		r2 := mkRecord(1, 101, t0.Add(2*time.Hour), 10, StateEstablished)
		if err := se.Add(&r2); err != nil {
			t.Fatal(err)
		}
		f := se.Snapshot()[1]
		if carry && !f.FirstSeen.Equal(t0) {
			t.Errorf("carried FirstSeen = %v, want the original %v", f.FirstSeen, t0)
		}
		return f.NewPeers
	}
	if got := run(true); got != 1 {
		t.Errorf("carry on: NewPeers = %d, want 1 (grace anchored at first pane)", got)
	}
	if got := run(false); got != 0 {
		t.Errorf("carry off: NewPeers = %d, want 0 (warm-up restarted)", got)
	}
}

// TakePane on a sharded store must hand back every host exactly once
// (shard-disjoint union) and leave the store empty for the next pane.
func TestShardedTakePaneRotates(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	records := strictlyOrderedRecords(rng, 400)
	se := NewShardedExtractor(FeatureOptions{}, 8)
	for i := range records {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	batch := ExtractFeatures(records, FeatureOptions{})
	w := se.Window()
	pane := se.TakePane(w)
	if pane.Hosts() != len(batch) {
		t.Fatalf("pane hosts = %d, want %d", pane.Hosts(), len(batch))
	}
	if !reflect.DeepEqual(pane.Features(), batch) {
		t.Error("sealed pane features differ from batch extraction")
	}
	if se.Hosts() != 0 {
		t.Errorf("store still tracks %d hosts after TakePane", se.Hosts())
	}
	if pw := pane.Window(); pw != w {
		t.Errorf("pane window = %v, want %v", pw, w)
	}
}
