package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// strictlyOrderedRecords builds a random stream with strictly increasing
// start times. Distinct starts make the batch/stream comparison exact:
// with ties, the pooled Interstitials order would depend on which
// equal-start record is processed first, an ambiguity the feature
// semantics do not define.
func strictlyOrderedRecords(rng *rand.Rand, n int) []Record {
	at := baseTime()
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		state := StateEstablished
		if rng.Intn(3) == 0 {
			state = StateFailed
		}
		out = append(out, Record{
			Src: IP(1 + rng.Intn(5)), Dst: IP(100 + rng.Intn(20)),
			SrcPort: 4000, DstPort: 80, Proto: TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1,
			SrcBytes: uint64(rng.Intn(5000)), DstBytes: 100,
			State: state,
		})
		at = at.Add(time.Duration(1+rng.Intn(90)) * time.Second)
	}
	return out
}

// Property: for ANY record stream and ANY reordering that displaces each
// record's arrival by less than maxSkew, the streaming extractor with
// that MaxSkew reproduces the batch extractor exactly. Each record's
// arrival key is its start plus a uniform [0, maxSkew) offset, so the
// released watermark (frontier − maxSkew) always trails every unseen
// record's start and nothing is ever rejected.
func TestStreamShufflePropertyMatchesBatch(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16, skewRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + int(sizeRaw)%400
		maxSkew := time.Duration(1+int(skewRaw)%600) * time.Second

		records := strictlyOrderedRecords(rng, n)
		shuffled := make([]keyedRecord, n)
		for i, r := range records {
			shuffled[i] = keyedRecord{rec: r, key: r.Start.Add(time.Duration(rng.Int63n(int64(maxSkew))))}
		}
		sortKeyed(shuffled)

		se := NewStreamExtractorSkew(FeatureOptions{}, maxSkew)
		for i := range shuffled {
			if err := se.Add(&shuffled[i].rec); err != nil {
				t.Logf("seed %d: record rejected: %v", seed, err)
				return false
			}
		}
		se.Drain()
		if se.Pending() != 0 {
			t.Logf("seed %d: %d records still pending after drain", seed, se.Pending())
			return false
		}

		batch := ExtractFeatures(records, FeatureOptions{})
		stream := se.Snapshot()
		if len(batch) != len(stream) {
			t.Logf("seed %d: host counts differ: %d vs %d", seed, len(batch), len(stream))
			return false
		}
		for ip, bf := range batch {
			if !reflect.DeepEqual(bf, stream[ip]) {
				t.Logf("seed %d: host %v differs:\nbatch  %+v\nstream %+v", seed, ip, bf, stream[ip])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
