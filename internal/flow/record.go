package flow

import (
	"fmt"
	"sort"
	"time"
)

// Proto identifies the transport protocol of a flow using IANA numbers,
// matching what Argus exports.
type Proto uint8

// Transport protocols appearing in the datasets. The paper restricts the
// CMU dataset to TCP and UDP traffic.
const (
	TCP  Proto = 6
	UDP  Proto = 17
	ICMP Proto = 1
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	case ICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// ParseProto converts a protocol name or number string to a Proto.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "tcp", "TCP", "6":
		return TCP, nil
	case "udp", "UDP", "17":
		return UDP, nil
	case "icmp", "ICMP", "1":
		return ICMP, nil
	}
	return 0, fmt.Errorf("flow: unknown protocol %q", s)
}

// ConnState classifies the outcome of a connection attempt, the basis of
// the failed-connection-rate data-reduction step (§V-A). For TCP a failed
// connection is one whose handshake never completed (reset or unanswered
// SYN); for UDP it is a request that drew no reply packets.
type ConnState uint8

const (
	// StateEstablished marks a successfully established, answered flow.
	StateEstablished ConnState = iota + 1
	// StateFailed marks a connection attempt that was reset, refused, or
	// never answered.
	StateFailed
)

// String names the state.
func (s ConnState) String() string {
	switch s {
	case StateEstablished:
		return "established"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// MaxPayload is the number of initial payload bytes Argus retains per
// flow. The paper uses this prefix only to establish ground truth (which
// hosts are Traders); the detection tests never read it.
const MaxPayload = 64

// Record is one bi-directional flow: all packets of a 5-tuple
// conversation summarized in a single record, with the source set to the
// initiating endpoint (Argus convention).
type Record struct {
	// Src is the address of the host that initiated the connection.
	Src IP
	// Dst is the responder address.
	Dst      IP
	SrcPort  uint16
	DstPort  uint16
	Proto    Proto
	Start    time.Time
	End      time.Time
	SrcPkts  uint32 // packets sent by the initiator
	DstPkts  uint32 // packets sent by the responder
	SrcBytes uint64 // bytes uploaded by the initiator
	DstBytes uint64 // bytes sent by the responder
	State    ConnState
	// Payload holds up to MaxPayload initial bytes of the initiator's
	// payload, used only for ground-truth labeling.
	Payload []byte
}

// Failed reports whether the connection attempt failed.
func (r *Record) Failed() bool { return r.State == StateFailed }

// Fingerprint returns a 64-bit content hash of the record under the
// given seed: a pure function of the record's identifying fields (the
// 5-tuple, timestamps, counters, and state — everything except Payload)
// and nothing else. Two equal records fingerprint identically no matter
// which process, stream position, or shard observes them, which is what
// makes hash-based flow sampling seq-stable: any split or merge of a
// stream keeps exactly the same records.
//
// The mix is FNV-1a over the field bytes followed by a SplitMix64
// finalizer, so single-bit field changes avalanche across the output.
func (r *Record) Fingerprint(seed uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(r.Src)<<32 | uint64(r.Dst))
	mix(uint64(r.SrcPort)<<48 | uint64(r.DstPort)<<32 | uint64(r.Proto)<<24 | uint64(r.State)<<16)
	mix(uint64(r.Start.UnixNano()))
	mix(uint64(r.End.UnixNano()))
	mix(r.SrcBytes)
	mix(r.DstBytes)
	mix(uint64(r.SrcPkts)<<32 | uint64(r.DstPkts))
	// SplitMix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Duration returns the flow's wall-clock length.
func (r *Record) Duration() time.Duration { return r.End.Sub(r.Start) }

// Validate checks structural invariants of the record.
func (r *Record) Validate() error {
	if r.End.Before(r.Start) {
		return fmt.Errorf("flow: record ends %v before it starts %v", r.End, r.Start)
	}
	if r.Proto != TCP && r.Proto != UDP && r.Proto != ICMP {
		return fmt.Errorf("flow: unsupported protocol %d", r.Proto)
	}
	if r.State != StateEstablished && r.State != StateFailed {
		return fmt.Errorf("flow: invalid connection state %d", r.State)
	}
	if len(r.Payload) > MaxPayload {
		return fmt.Errorf("flow: payload %d bytes exceeds %d-byte cap", len(r.Payload), MaxPayload)
	}
	return nil
}

func (r *Record) String() string {
	return fmt.Sprintf("%s %s:%d -> %s:%d %s pkts=%d/%d bytes=%d/%d %s",
		r.Proto, r.Src, r.SrcPort, r.Dst, r.DstPort,
		r.Start.Format(time.TimeOnly), r.SrcPkts, r.DstPkts, r.SrcBytes, r.DstBytes, r.State)
}

// SortByStart orders records by start time (stable), the order required
// by the feature extractor and the overlay merger.
func SortByStart(records []Record) {
	sort.SliceStable(records, func(i, j int) bool {
		return records[i].Start.Before(records[j].Start)
	})
}

// Window is a half-open observation interval [From, To) — the paper's
// detection window D, typically one day of collection.
type Window struct {
	From time.Time
	To   time.Time
}

// String renders the window in interval notation.
func (w Window) String() string {
	return fmt.Sprintf("[%s, %s)", w.From.Format(time.RFC3339), w.To.Format(time.RFC3339))
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Time) bool {
	return !t.Before(w.From) && t.Before(w.To)
}

// Duration returns the window length.
func (w Window) Duration() time.Duration { return w.To.Sub(w.From) }

// Filter returns the records whose start time falls inside the window.
func (w Window) Filter(records []Record) []Record {
	out := make([]Record, 0, len(records))
	for _, r := range records {
		if w.Contains(r.Start) {
			out = append(out, r)
		}
	}
	return out
}
