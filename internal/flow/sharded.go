package flow

import (
	"runtime"
	"sync"
	"time"

	"plotters/internal/metrics"
)

// ShardedExtractor accumulates the same per-host features as
// StreamExtractor, sharded by source-IP hash across N independently
// locked sub-extractors so ingest scales across cores: concurrent Add
// calls for hosts in different shards never contend, and a snapshot or
// pane seal locks one shard at a time instead of pausing the world.
//
// Every record of one host lands in one shard (the shard key is the
// initiator address), so per-host feature state is never split and a
// merged snapshot is identical to what a single extractor fed the same
// stream would produce. The only sharding-visible difference is skew
// enforcement: each shard rejects late records against its own frontier
// rather than the global one, which is strictly more permissive — a
// record a single extractor would accept is never dropped.
type ShardedExtractor struct {
	shards []extractorShard
	skew   time.Duration

	hostsHW *metrics.Gauge // deepest any one shard got (builders)
}

type extractorShard struct {
	mu sync.Mutex
	ex *StreamExtractor
	_  [40]byte // keep adjacent shard locks off one cache line
}

// NewShardedExtractor creates a sharded store with the given shard
// count (≤ 0 means one per CPU), requiring start-ordered input per
// shard.
func NewShardedExtractor(opts FeatureOptions, shards int) *ShardedExtractor {
	return NewShardedExtractorSkew(opts, shards, 0)
}

// NewShardedExtractorSkew creates a sharded store tolerating records up
// to maxSkew out of start order.
func NewShardedExtractorSkew(opts FeatureOptions, shards int, maxSkew time.Duration) *ShardedExtractor {
	if shards <= 0 {
		shards = runtime.NumCPU()
	}
	se := &ShardedExtractor{shards: make([]extractorShard, shards), skew: maxSkew}
	for i := range se.shards {
		se.shards[i].ex = NewStreamExtractorSkew(opts, maxSkew)
	}
	return se
}

// ShardOf hashes an address onto one of n shards. Campus addresses are
// dense and sequential, so the raw value is finalized through an
// avalanche mix (the 32-bit variant of SplitMix's finisher) before the
// modulo. This is the one shard assignment in the system: the in-process
// sharded store and the cross-process shard/coordinator split
// (internal/dist) both use it, so every layer agrees which shard owns a
// host and per-host state is never split across shards.
func ShardOf(ip IP, n int) int {
	x := uint32(ip)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(n))
}

func (se *ShardedExtractor) shardOf(ip IP) *extractorShard {
	return &se.shards[ShardOf(ip, len(se.shards))]
}

// Shards returns the shard count.
func (se *ShardedExtractor) Shards() int { return len(se.shards) }

// MaxSkew returns the configured reorder tolerance.
func (se *ShardedExtractor) MaxSkew() time.Duration { return se.skew }

// Metrics attaches reg's instruments to every shard: the shared
// "stream/records" and "stream/skew_drops" counters (atomic, so shards
// add into them concurrently), plus the "sharded/hosts_highwater" gauge
// tracking the deepest any single shard's host table got — the load-
// balance signal. A nil reg detaches. Returns se for chaining.
func (se *ShardedExtractor) Metrics(reg *metrics.Registry) *ShardedExtractor {
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		s.ex.recCtr = reg.Counter("stream/records")
		s.ex.dropCtr = reg.Counter("stream/skew_drops")
		s.ex.pendingHW = reg.Gauge("stream/pending_highwater")
		// Per-shard host gauges would clobber one another; the high-water
		// mark below carries the sharding signal instead.
		s.ex.hostCtr = nil
		s.mu.Unlock()
	}
	se.hostsHW = reg.Gauge("sharded/hosts_highwater")
	return se
}

// CarryFirstSeen enables or disables first-seen carrying across panes
// on every shard (see StreamExtractor.CarryFirstSeen).
func (se *ShardedExtractor) CarryFirstSeen(on bool) {
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		s.ex.CarryFirstSeen(on)
		s.mu.Unlock()
	}
}

// Add folds one record into the owning shard. Safe for concurrent use.
func (se *ShardedExtractor) Add(r *Record) error {
	s := se.shardOf(r.Src)
	s.mu.Lock()
	err := s.ex.Add(r)
	n := len(s.ex.builders)
	s.mu.Unlock()
	se.hostsHW.SetMax(int64(n))
	return err
}

// Drain processes every buffered record on every shard (end of feed).
func (se *ShardedExtractor) Drain() {
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		s.ex.Drain()
		s.mu.Unlock()
	}
}

// ReleaseBefore force-processes buffered records with start < t on
// every shard and forbids later additions below t (see
// StreamExtractor.ReleaseBefore).
func (se *ShardedExtractor) ReleaseBefore(t time.Time) {
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		s.ex.ReleaseBefore(t)
		s.mu.Unlock()
	}
}

// TakePanes seals every shard's accumulated state for window w,
// returning one pane per shard (some possibly empty). Shards are sealed
// one at a time — ingest on other shards proceeds meanwhile. Call
// ReleaseBefore(w.To) first.
func (se *ShardedExtractor) TakePanes(w Window) []*Pane {
	panes := make([]*Pane, len(se.shards))
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		panes[i] = s.ex.TakePane(w)
		s.mu.Unlock()
	}
	return panes
}

// TakePane seals every shard for window w and merges the per-shard
// panes into one (hosts never straddle shards, so the merge is a
// disjoint map union).
func (se *ShardedExtractor) TakePane(w Window) *Pane {
	builders := make(map[IP]*featureBuilder)
	for _, p := range se.TakePanes(w) {
		for ip, b := range p.builders {
			builders[ip] = b
		}
	}
	return &Pane{builders: builders, window: w}
}

// Snapshot merges every shard's current per-host features into one map,
// locking one shard at a time. The returned values are live views;
// callers must not mutate them.
func (se *ShardedExtractor) Snapshot() map[IP]*HostFeatures {
	maps := make([]map[IP]*HostFeatures, len(se.shards))
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		maps[i] = s.ex.Snapshot()
		s.mu.Unlock()
	}
	return MergeFeatureMaps(maps...)
}

// Features implements FeatureSource over the merged current state.
func (se *ShardedExtractor) Features() map[IP]*HostFeatures { return se.Snapshot() }

// Contacts implements ContactSource over the merged current state,
// locking one shard at a time (hosts never straddle shards, so the
// union is disjoint).
func (se *ShardedExtractor) Contacts() map[IP][]IP {
	out := make(map[IP][]IP)
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		shard := s.ex.Contacts()
		s.mu.Unlock()
		for ip, dsts := range shard {
			out[ip] = dsts
		}
	}
	return out
}

// Window implements FeatureSource: the union of the shards' processed
// spans.
func (se *ShardedExtractor) Window() Window {
	var w Window
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		sw := s.ex.Window()
		s.mu.Unlock()
		if sw == (Window{}) {
			continue
		}
		if w == (Window{}) {
			w = sw
			continue
		}
		if sw.From.Before(w.From) {
			w.From = sw.From
		}
		if sw.To.After(w.To) {
			w.To = sw.To
		}
	}
	return w
}

// Records returns the total accepted record count across shards.
func (se *ShardedExtractor) Records() int {
	n := 0
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		n += s.ex.Records()
		s.mu.Unlock()
	}
	return n
}

// Hosts returns the total distinct-initiator count across shards.
func (se *ShardedExtractor) Hosts() int {
	n := 0
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		n += s.ex.Hosts()
		s.mu.Unlock()
	}
	return n
}

// Pending returns the total buffered record count across shards.
func (se *ShardedExtractor) Pending() int {
	n := 0
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		n += s.ex.Pending()
		s.mu.Unlock()
	}
	return n
}
