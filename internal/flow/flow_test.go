package flow

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMakeIPAndString(t *testing.T) {
	ip := MakeIP(128, 2, 13, 7)
	if got := ip.String(); got != "128.2.13.7" {
		t.Errorf("String = %q", got)
	}
	a, b, c, d := ip.Octets()
	if a != 128 || b != 2 || c != 13 || d != 7 {
		t.Errorf("Octets = %d.%d.%d.%d", a, b, c, d)
	}
}

func TestParseIP(t *testing.T) {
	tests := []struct {
		in      string
		want    IP
		wantErr bool
	}{
		{"128.2.0.1", MakeIP(128, 2, 0, 1), false},
		{"0.0.0.0", 0, false},
		{"255.255.255.255", IP(0xFFFFFFFF), false},
		{"1.2.3", 0, true},
		{"1.2.3.4.5", 0, true},
		{"1.2.3.256", 0, true},
		{"a.b.c.d", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseIP(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseIP(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseIP(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseIPRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IP(raw)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubnet(t *testing.T) {
	sn, err := ParseSubnet("128.2.0.0/16")
	if err != nil {
		t.Fatal(err)
	}
	if !sn.Contains(MakeIP(128, 2, 200, 3)) {
		t.Error("subnet should contain 128.2.200.3")
	}
	if sn.Contains(MakeIP(128, 3, 0, 1)) {
		t.Error("subnet should not contain 128.3.0.1")
	}
	if sn.String() != "128.2.0.0/16" {
		t.Errorf("String = %q", sn.String())
	}
	if sn.Hosts() != 65536 {
		t.Errorf("Hosts = %d", sn.Hosts())
	}
	if got := sn.Addr(257); got != MakeIP(128, 2, 1, 1) {
		t.Errorf("Addr(257) = %v", got)
	}
	// Base gets canonicalized.
	sn2, err := ParseSubnet("128.2.9.9/16")
	if err != nil {
		t.Fatal(err)
	}
	if sn2.Base != MakeIP(128, 2, 0, 0) {
		t.Errorf("base not canonicalized: %v", sn2.Base)
	}
	// /0 contains everything.
	all, err := ParseSubnet("0.0.0.0/0")
	if err != nil {
		t.Fatal(err)
	}
	if !all.Contains(MakeIP(9, 9, 9, 9)) {
		t.Error("/0 should contain everything")
	}
	// /32 contains exactly one address.
	one, err := ParseSubnet("1.2.3.4/32")
	if err != nil {
		t.Fatal(err)
	}
	if !one.Contains(MakeIP(1, 2, 3, 4)) || one.Contains(MakeIP(1, 2, 3, 5)) {
		t.Error("/32 membership wrong")
	}
}

func TestParseSubnetErrors(t *testing.T) {
	for _, in := range []string{"128.2.0.0", "128.2.0.0/33", "128.2.0.0/-1", "x/16", "1.2.3.4/z"} {
		if _, err := ParseSubnet(in); err == nil {
			t.Errorf("ParseSubnet(%q): expected error", in)
		}
	}
}

func TestMustParseSubnetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseSubnet should panic on bad input")
		}
	}()
	MustParseSubnet("bogus")
}

func TestProtoString(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" || ICMP.String() != "icmp" {
		t.Error("proto names wrong")
	}
	if Proto(99).String() == "" {
		t.Error("unknown proto should render")
	}
	for _, s := range []string{"tcp", "TCP", "6"} {
		if p, err := ParseProto(s); err != nil || p != TCP {
			t.Errorf("ParseProto(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParseProto("bogus"); err == nil {
		t.Error("ParseProto(bogus): expected error")
	}
}

func TestConnState(t *testing.T) {
	if StateEstablished.String() != "established" || StateFailed.String() != "failed" {
		t.Error("state names wrong")
	}
	if ConnState(9).String() == "" {
		t.Error("unknown state should render")
	}
}

func baseTime() time.Time {
	return time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
}

func mkRecord(src, dst IP, start time.Time, srcBytes uint64, state ConnState) Record {
	return Record{
		Src: src, Dst: dst, SrcPort: 40000, DstPort: 80, Proto: TCP,
		Start: start, End: start.Add(time.Second),
		SrcPkts: 3, DstPkts: 3, SrcBytes: srcBytes, DstBytes: 100,
		State: state,
	}
}

func TestRecordValidate(t *testing.T) {
	good := mkRecord(1, 2, baseTime(), 10, StateEstablished)
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := good
	bad.End = bad.Start.Add(-time.Second)
	if err := bad.Validate(); err == nil {
		t.Error("end-before-start accepted")
	}
	bad = good
	bad.Proto = 99
	if err := bad.Validate(); err == nil {
		t.Error("bad proto accepted")
	}
	bad = good
	bad.State = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad state accepted")
	}
	bad = good
	bad.Payload = make([]byte, MaxPayload+1)
	if err := bad.Validate(); err == nil {
		t.Error("oversized payload accepted")
	}
	if good.Failed() {
		t.Error("established record reported failed")
	}
	if good.Duration() != time.Second {
		t.Errorf("Duration = %v", good.Duration())
	}
	if good.String() == "" {
		t.Error("String empty")
	}
}

func TestWindow(t *testing.T) {
	w := Window{From: baseTime(), To: baseTime().Add(6 * time.Hour)}
	if !w.Contains(baseTime()) {
		t.Error("window should contain its start")
	}
	if w.Contains(baseTime().Add(6 * time.Hour)) {
		t.Error("window should exclude its end")
	}
	if w.Contains(baseTime().Add(-time.Second)) {
		t.Error("window should exclude times before start")
	}
	if w.Duration() != 6*time.Hour {
		t.Errorf("Duration = %v", w.Duration())
	}
	records := []Record{
		mkRecord(1, 2, baseTime().Add(-time.Minute), 5, StateEstablished),
		mkRecord(1, 2, baseTime().Add(time.Minute), 5, StateEstablished),
		mkRecord(1, 2, baseTime().Add(7*time.Hour), 5, StateEstablished),
	}
	got := w.Filter(records)
	if len(got) != 1 || !got[0].Start.Equal(baseTime().Add(time.Minute)) {
		t.Errorf("Filter = %v", got)
	}
}

func TestSortByStart(t *testing.T) {
	t0 := baseTime()
	records := []Record{
		mkRecord(3, 2, t0.Add(2*time.Second), 5, StateEstablished),
		mkRecord(1, 2, t0, 5, StateEstablished),
		mkRecord(2, 2, t0.Add(time.Second), 5, StateEstablished),
	}
	SortByStart(records)
	if records[0].Src != 1 || records[1].Src != 2 || records[2].Src != 3 {
		t.Errorf("sort order wrong: %v", records)
	}
}

func TestExtractFeaturesBasic(t *testing.T) {
	t0 := baseTime()
	host := MakeIP(128, 2, 0, 1)
	records := []Record{
		mkRecord(host, MakeIP(8, 8, 8, 8), t0, 100, StateEstablished),
		mkRecord(host, MakeIP(8, 8, 8, 8), t0.Add(10*time.Second), 200, StateFailed),
		mkRecord(host, MakeIP(9, 9, 9, 9), t0.Add(20*time.Second), 300, StateEstablished),
		// A flow initiated by someone else must not count for host.
		mkRecord(MakeIP(7, 7, 7, 7), host, t0.Add(30*time.Second), 999, StateEstablished),
	}
	feats := ExtractFeatures(records, FeatureOptions{})
	f := feats[host]
	if f == nil {
		t.Fatal("host missing from features")
	}
	if f.Flows != 3 || f.SuccessfulFlows != 2 || f.FailedFlows != 1 {
		t.Errorf("counts = %d/%d/%d", f.Flows, f.SuccessfulFlows, f.FailedFlows)
	}
	if f.BytesUploaded != 600 {
		t.Errorf("BytesUploaded = %d", f.BytesUploaded)
	}
	if got := f.AvgBytesPerFlow(); got != 200 {
		t.Errorf("AvgBytesPerFlow = %v", got)
	}
	if got := f.FailedRate(); got != 1.0/3.0 {
		t.Errorf("FailedRate = %v", got)
	}
	if f.Peers != 2 {
		t.Errorf("Peers = %d", f.Peers)
	}
	// Both peers contacted within the first hour: no new peers.
	if f.NewPeers != 0 || f.NewPeerFraction() != 0 {
		t.Errorf("NewPeers = %d, fraction %v", f.NewPeers, f.NewPeerFraction())
	}
	// One interstitial: the two flows to 8.8.8.8, 10 s apart.
	if len(f.Interstitials) != 1 || f.Interstitials[0] != 10 {
		t.Errorf("Interstitials = %v", f.Interstitials)
	}
	if !f.FirstSeen.Equal(t0) || !f.LastSeen.Equal(t0.Add(20*time.Second)) {
		t.Errorf("FirstSeen/LastSeen = %v/%v", f.FirstSeen, f.LastSeen)
	}
	// The other initiator appears too.
	if feats[MakeIP(7, 7, 7, 7)] == nil {
		t.Error("second initiator missing")
	}
}

func TestExtractFeaturesNewPeerGrace(t *testing.T) {
	t0 := baseTime()
	host := IP(1)
	records := []Record{
		mkRecord(host, IP(100), t0, 10, StateEstablished),
		mkRecord(host, IP(101), t0.Add(30*time.Minute), 10, StateEstablished),
		// After the 1-hour grace: new peers.
		mkRecord(host, IP(102), t0.Add(90*time.Minute), 10, StateEstablished),
		mkRecord(host, IP(103), t0.Add(2*time.Hour), 10, StateEstablished),
		// Re-contacting a known peer after the grace is not new.
		mkRecord(host, IP(100), t0.Add(3*time.Hour), 10, StateEstablished),
	}
	feats := ExtractFeatures(records, FeatureOptions{})
	f := feats[host]
	if f.Peers != 4 || f.NewPeers != 2 {
		t.Errorf("Peers = %d NewPeers = %d, want 4 and 2", f.Peers, f.NewPeers)
	}
	if got := f.NewPeerFraction(); got != 0.5 {
		t.Errorf("NewPeerFraction = %v", got)
	}

	// A shorter grace flips the 30-minute contact to new.
	feats = ExtractFeatures(records, FeatureOptions{NewPeerGrace: 10 * time.Minute})
	if f := feats[host]; f.NewPeers != 3 {
		t.Errorf("NewPeers with 10m grace = %d, want 3", f.NewPeers)
	}
}

func TestExtractFeaturesHostFilter(t *testing.T) {
	t0 := baseTime()
	internal := MustParseSubnet("128.2.0.0/16")
	records := []Record{
		mkRecord(MakeIP(128, 2, 0, 1), IP(100), t0, 10, StateEstablished),
		mkRecord(MakeIP(10, 0, 0, 1), IP(100), t0, 10, StateEstablished),
	}
	feats := ExtractFeatures(records, FeatureOptions{Hosts: internal.Contains})
	if len(feats) != 1 {
		t.Fatalf("features for %d hosts, want 1", len(feats))
	}
	if feats[MakeIP(128, 2, 0, 1)] == nil {
		t.Error("internal host missing")
	}
}

func TestExtractFeaturesUnsortedInput(t *testing.T) {
	t0 := baseTime()
	host := IP(1)
	// Deliberately out of order: the extractor must sort by start time so
	// interstitials and first-contact logic see time order.
	records := []Record{
		mkRecord(host, IP(100), t0.Add(40*time.Second), 10, StateEstablished),
		mkRecord(host, IP(100), t0, 10, StateEstablished),
		mkRecord(host, IP(100), t0.Add(10*time.Second), 10, StateEstablished),
	}
	feats := ExtractFeatures(records, FeatureOptions{})
	f := feats[host]
	if len(f.Interstitials) != 2 || f.Interstitials[0] != 10 || f.Interstitials[1] != 30 {
		t.Errorf("Interstitials = %v, want [10 30]", f.Interstitials)
	}
	// The input slice must not be reordered.
	if !records[0].Start.Equal(t0.Add(40 * time.Second)) {
		t.Error("input slice was mutated")
	}
}

func TestExtractFeaturesEmpty(t *testing.T) {
	feats := ExtractFeatures(nil, FeatureOptions{})
	if len(feats) != 0 {
		t.Errorf("features from no records: %v", feats)
	}
}

func TestHostFeaturesZeroDivision(t *testing.T) {
	var f HostFeatures
	if f.AvgBytesPerFlow() != 0 || f.FailedRate() != 0 || f.NewPeerFraction() != 0 {
		t.Error("zero-flow host features should be 0")
	}
}

func TestFeatureValuesAndSortedHosts(t *testing.T) {
	feats := map[IP]*HostFeatures{
		IP(3): {Host: 3, Flows: 1, BytesUploaded: 30},
		IP(1): {Host: 1, Flows: 1, BytesUploaded: 10},
		IP(2): {Host: 2, Flows: 1, BytesUploaded: 20},
	}
	hosts := SortedHosts(feats)
	if hosts[0] != 1 || hosts[1] != 2 || hosts[2] != 3 {
		t.Errorf("SortedHosts = %v", hosts)
	}
	vals := FeatureValues(feats, (*HostFeatures).AvgBytesPerFlow)
	if vals[0] != 10 || vals[1] != 20 || vals[2] != 30 {
		t.Errorf("FeatureValues = %v", vals)
	}
	med, err := MedianFeature(feats, (*HostFeatures).AvgBytesPerFlow)
	if err != nil || med != 20 {
		t.Errorf("MedianFeature = %v, %v", med, err)
	}
}
