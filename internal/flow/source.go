package flow

// FeatureSource supplies one detection window's worth of per-host
// features to the detection pipeline. It is the seam between feature
// accumulation and detection: the batch extractor (ExtractFeatureSet),
// the incremental StreamExtractor, and the sharded store behind
// internal/engine's windowed detector all implement it, so
// core.NewAnalysisFromSource can consume any of them without knowing how
// the features were built.
type FeatureSource interface {
	// Features returns the per-host feature map. Implementations may
	// return a live view; callers must not mutate it.
	Features() map[IP]*HostFeatures
	// Window returns the observation bounds the features cover. A zero
	// Window means the bounds are unknown (e.g. a batch extraction whose
	// caller never declared them).
	Window() Window
}

// ContactSource is the flow-graph side of the feature seam: a source
// that can also report, per monitored host, the set of destination
// addresses the host contacted inside the window. Detectors that reason
// about structure between hosts (destination-overlap graphs, mutual-
// contact communities) consume this interface; the per-host percentile
// pipeline never needs it. Every FeatureSource this package produces —
// batch extraction, panes, pane merges, and the live extractors —
// implements it.
type ContactSource interface {
	// Contacts returns each host's contacted destinations in ascending
	// address order. Implementations may return a live view; callers
	// must not mutate it. Nil means the source did not track contacts.
	Contacts() map[IP][]IP
}

// FeatureSet is the plain concrete FeatureSource: a feature map plus the
// window it covers. It is what batch extraction and pane merging
// produce.
type FeatureSet struct {
	feats    map[IP]*HostFeatures
	contacts map[IP][]IP
	window   Window
}

// NewFeatureSet wraps an already-extracted feature map with its window
// metadata.
func NewFeatureSet(feats map[IP]*HostFeatures, window Window) *FeatureSet {
	if feats == nil {
		feats = map[IP]*HostFeatures{}
	}
	return &FeatureSet{feats: feats, window: window}
}

// WithContacts attaches per-host contacted-destination sets (ascending
// address order per host), making the set a useful ContactSource.
// Returns fs for chaining.
func (fs *FeatureSet) WithContacts(contacts map[IP][]IP) *FeatureSet {
	fs.contacts = contacts
	return fs
}

// Features returns the per-host feature map.
func (fs *FeatureSet) Features() map[IP]*HostFeatures { return fs.feats }

// Contacts implements ContactSource (nil when never attached).
func (fs *FeatureSet) Contacts() map[IP][]IP { return fs.contacts }

// Window returns the observation bounds.
func (fs *FeatureSet) Window() Window { return fs.window }

// Hosts returns the number of hosts with features.
func (fs *FeatureSet) Hosts() int { return len(fs.feats) }

// ExtractFeatureSet is the batch FeatureSource implementation: it scans
// the records once (ExtractFeatures) and derives the window from the
// records' start-time span when the caller passes a zero window (the
// derived To is one nanosecond past the last start so the half-open
// window contains every record). The result carries contact sets, so it
// is a full ContactSource.
func ExtractFeatureSet(records []Record, opts FeatureOptions, window Window) *FeatureSet {
	if window == (Window{}) && len(records) > 0 {
		window.From = records[0].Start
		last := records[0].Start
		for i := range records {
			if records[i].Start.Before(window.From) {
				window.From = records[i].Start
			}
			if records[i].Start.After(last) {
				last = records[i].Start
			}
		}
		window.To = last.Add(1)
	}
	builders := extractBuilders(records, opts)
	return NewFeatureSet(featuresOfBuilders(builders), window).
		WithContacts(contactsOfBuilders(builders))
}
