package flow

// FeatureSource supplies one detection window's worth of per-host
// features to the detection pipeline. It is the seam between feature
// accumulation and detection: the batch extractor (ExtractFeatureSet),
// the incremental StreamExtractor, and the sharded store behind
// internal/engine's windowed detector all implement it, so
// core.NewAnalysisFromSource can consume any of them without knowing how
// the features were built.
type FeatureSource interface {
	// Features returns the per-host feature map. Implementations may
	// return a live view; callers must not mutate it.
	Features() map[IP]*HostFeatures
	// Window returns the observation bounds the features cover. A zero
	// Window means the bounds are unknown (e.g. a batch extraction whose
	// caller never declared them).
	Window() Window
}

// FeatureSet is the plain concrete FeatureSource: a feature map plus the
// window it covers. It is what batch extraction and pane merging
// produce.
type FeatureSet struct {
	feats  map[IP]*HostFeatures
	window Window
}

// NewFeatureSet wraps an already-extracted feature map with its window
// metadata.
func NewFeatureSet(feats map[IP]*HostFeatures, window Window) *FeatureSet {
	if feats == nil {
		feats = map[IP]*HostFeatures{}
	}
	return &FeatureSet{feats: feats, window: window}
}

// Features returns the per-host feature map.
func (fs *FeatureSet) Features() map[IP]*HostFeatures { return fs.feats }

// Window returns the observation bounds.
func (fs *FeatureSet) Window() Window { return fs.window }

// Hosts returns the number of hosts with features.
func (fs *FeatureSet) Hosts() int { return len(fs.feats) }

// ExtractFeatureSet is the batch FeatureSource implementation: it scans
// the records once (ExtractFeatures) and derives the window from the
// records' start-time span when the caller passes a zero window (the
// derived To is one nanosecond past the last start so the half-open
// window contains every record).
func ExtractFeatureSet(records []Record, opts FeatureOptions, window Window) *FeatureSet {
	if window == (Window{}) && len(records) > 0 {
		window.From = records[0].Start
		last := records[0].Start
		for i := range records {
			if records[i].Start.Before(window.From) {
				window.From = records[i].Start
			}
			if records[i].Start.After(last) {
				last = records[i].Start
			}
		}
		window.To = last.Add(1)
	}
	return NewFeatureSet(ExtractFeatures(records, opts), window)
}
