// Package flow defines the Argus-style bi-directional flow record model
// that every other component consumes, together with the per-host
// behavioral feature extraction (§IV of the paper): average bytes
// uploaded per flow, failed-connection rate, new-peer ("churn") fraction,
// and per-destination flow interstitial times.
package flow

import (
	"fmt"
	"strconv"
	"strings"
)

// IP is an IPv4 address in host byte order. The reproduction simulates an
// IPv4 campus network (the original CMU dataset is two /16 IPv4 subnets),
// so a fixed-width integer keeps records compact and hashable.
type IP uint32

// MakeIP assembles an address from its four dotted-quad octets.
func MakeIP(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIP parses a dotted-quad IPv4 string.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("flow: invalid IPv4 %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("flow: invalid IPv4 %q: %w", s, err)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the address's four dotted-quad bytes.
func (ip IP) Octets() (a, b, c, d byte) {
	return byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)
}

// Subnet is a CIDR prefix used to distinguish internal (monitored) hosts
// from the rest of the Internet.
type Subnet struct {
	Base IP
	Bits int // prefix length, 0..32
}

// ParseSubnet parses "a.b.c.d/len" CIDR notation.
func ParseSubnet(s string) (Subnet, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Subnet{}, fmt.Errorf("flow: subnet %q missing prefix length", s)
	}
	base, err := ParseIP(s[:slash])
	if err != nil {
		return Subnet{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Subnet{}, fmt.Errorf("flow: invalid prefix length in %q", s)
	}
	sn := Subnet{Base: base, Bits: bits}
	return Subnet{Base: base & sn.mask(), Bits: bits}, nil
}

// MustParseSubnet is ParseSubnet for known-good literals; it panics on
// malformed input and is intended for package-level configuration.
func MustParseSubnet(s string) Subnet {
	sn, err := ParseSubnet(s)
	if err != nil {
		panic(err)
	}
	return sn
}

func (s Subnet) mask() IP {
	if s.Bits == 0 {
		return 0
	}
	return IP(^uint32(0) << (32 - s.Bits))
}

// Contains reports whether ip is inside the prefix.
func (s Subnet) Contains(ip IP) bool {
	return ip&s.mask() == s.Base&s.mask()
}

// String renders CIDR notation.
func (s Subnet) String() string {
	return fmt.Sprintf("%s/%d", s.Base, s.Bits)
}

// Hosts returns the number of addresses covered by the prefix.
func (s Subnet) Hosts() uint64 {
	return uint64(1) << (32 - s.Bits)
}

// Addr returns the idx-th address inside the subnet.
func (s Subnet) Addr(idx uint32) IP {
	return (s.Base & s.mask()) | IP(idx)&^s.mask()
}
