package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// randomSkewedRecords builds a stream that is only approximately
// start-ordered: each record's start may lag the frontier by up to skew.
func randomSkewedRecords(rng *rand.Rand, n int, skew time.Duration) []Record {
	ordered := randomOrderedRecords(rng, n)
	out := make([]Record, n)
	copy(out, ordered)
	for i := range out {
		out[i].Start = out[i].Start.Add(-time.Duration(rng.Int63n(int64(skew))))
		out[i].End = out[i].Start.Add(time.Second)
	}
	return out
}

// Snapshotting a stream extractor mid-stream and restoring into a fresh
// one must be invisible: feeding the remainder to both the original and
// the restored extractor yields identical features, counters, and
// windows — the property the checkpoint subsystem is built on.
func TestStreamStateRestoreIsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const skew = 10 * time.Minute
	for trial := 0; trial < 5; trial++ {
		records := randomSkewedRecords(rng, 400, skew)
		cut := 100 + rng.Intn(200)

		orig := NewStreamExtractorSkew(FeatureOptions{}, skew)
		orig.CarryFirstSeen(true)
		for i := 0; i < cut; i++ {
			if err := orig.Add(&records[i]); err != nil {
				t.Fatal(err)
			}
		}
		// Seal a pane mid-stream so carried anchors are populated too.
		mid := records[cut/2].Start
		orig.ReleaseBefore(mid)
		orig.TakePane(Window{From: records[0].Start, To: mid})

		st := orig.State()
		restored := NewStreamExtractorSkew(FeatureOptions{}, skew)
		restored.CarryFirstSeen(true)
		if err := restored.RestoreState(st); err != nil {
			t.Fatal(err)
		}

		for i := cut; i < len(records); i++ {
			errA := orig.Add(&records[i])
			errB := restored.Add(&records[i])
			if (errA == nil) != (errB == nil) {
				t.Fatalf("trial %d: record %d: original err=%v, restored err=%v", trial, i, errA, errB)
			}
		}
		orig.Drain()
		restored.Drain()

		if !reflect.DeepEqual(orig.Snapshot(), restored.Snapshot()) {
			t.Fatalf("trial %d: features diverged after restore", trial)
		}
		if orig.Records() != restored.Records() || orig.Hosts() != restored.Hosts() ||
			orig.Pending() != restored.Pending() || orig.Window() != restored.Window() {
			t.Fatalf("trial %d: counters diverged: records %d/%d hosts %d/%d pending %d/%d",
				trial, orig.Records(), restored.Records(), orig.Hosts(), restored.Hosts(),
				orig.Pending(), restored.Pending())
		}
		if !reflect.DeepEqual(orig.anchors, restored.anchors) {
			t.Fatalf("trial %d: carried anchors diverged:\norig     %v\nrestored %v", trial, orig.anchors, restored.anchors)
		}
	}
}

// The snapshot must be a deep copy: mutating the live extractor after
// State() must not leak into the snapshot.
func TestStreamStateIsDetached(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	records := randomOrderedRecords(rng, 100)
	se := NewStreamExtractor(FeatureOptions{})
	for i := 0; i < 50; i++ {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := se.State()
	before := *st
	beforeHosts := append([]HostState(nil), st.Hosts...)
	for i := 50; i < 100; i++ {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(st.Hosts, beforeHosts) || st.Count != before.Count {
		t.Fatal("snapshot mutated by later Add calls")
	}
}

// RestoreState must refuse a non-empty extractor.
func TestStreamStateRestoreRejectsNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	records := randomOrderedRecords(rng, 10)
	se := NewStreamExtractor(FeatureOptions{})
	for i := range records {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.RestoreState(&StreamState{}); err == nil {
		t.Fatal("RestoreState on a non-empty extractor did not fail")
	}
}

// Same transparency property for the sharded store, including the shard
// count mismatch error.
func TestShardedStateRestoreIsTransparent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const skew = 10 * time.Minute
	records := randomSkewedRecords(rng, 600, skew)
	cut := 300

	orig := NewShardedExtractorSkew(FeatureOptions{}, 4, skew)
	for i := 0; i < cut; i++ {
		if err := orig.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	st := orig.State()

	if err := NewShardedExtractorSkew(FeatureOptions{}, 3, skew).RestoreState(st); err == nil {
		t.Fatal("restore into a store with a different shard count did not fail")
	}

	restored := NewShardedExtractorSkew(FeatureOptions{}, 4, skew)
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < len(records); i++ {
		errA := orig.Add(&records[i])
		errB := restored.Add(&records[i])
		if (errA == nil) != (errB == nil) {
			t.Fatalf("record %d: original err=%v, restored err=%v", i, errA, errB)
		}
	}
	orig.Drain()
	restored.Drain()
	if !reflect.DeepEqual(orig.Snapshot(), restored.Snapshot()) {
		t.Fatal("sharded features diverged after restore")
	}
	if orig.Records() != restored.Records() || orig.Hosts() != restored.Hosts() || orig.Pending() != restored.Pending() {
		t.Fatal("sharded counters diverged after restore")
	}
}

// A pane must survive the round trip through its serializable state,
// including through MergePanes (the sliding-window path).
func TestPaneStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	records := randomOrderedRecords(rng, 300)
	se := NewStreamExtractor(FeatureOptions{})
	for i := 0; i < 150; i++ {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	mid := records[150].Start
	se.ReleaseBefore(mid)
	p1 := se.TakePane(Window{From: records[0].Start, To: mid})
	for i := 150; i < 300; i++ {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	se.Drain()
	p2 := se.TakePane(Window{From: mid, To: records[299].Start.Add(1)})

	r1 := NewPaneFromState(p1.State())
	r2 := NewPaneFromState(p2.State())
	if p1.Window() != r1.Window() || p1.Hosts() != r1.Hosts() {
		t.Fatal("pane metadata changed through the state round trip")
	}
	want := MergePanes(0, p1, p2)
	got := MergePanes(0, r1, r2)
	if got.Window() != want.Window() {
		t.Fatalf("merged windows differ: %v vs %v", got.Window(), want.Window())
	}
	wantF, gotF := want.Features(), got.Features()
	if len(wantF) != len(gotF) {
		t.Fatalf("merged host counts differ: %d vs %d", len(wantF), len(gotF))
	}
	for ip, wf := range wantF {
		if !featuresEqualModGapOrder(wf, gotF[ip]) {
			t.Fatalf("host %v merged features differ:\nwant %+v\ngot  %+v", ip, wf, gotF[ip])
		}
	}
}
