package flow

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// referenceContacts derives per-host contact sets straight from the
// records — the definition every ContactSource implementation must
// reproduce.
func referenceContacts(records []Record, hosts func(IP) bool) map[IP][]IP {
	sets := make(map[IP]map[IP]bool)
	for i := range records {
		r := &records[i]
		if hosts != nil && !hosts(r.Src) {
			continue
		}
		s, ok := sets[r.Src]
		if !ok {
			s = make(map[IP]bool)
			sets[r.Src] = s
		}
		s[r.Dst] = true
	}
	out := make(map[IP][]IP, len(sets))
	for ip, s := range sets {
		dsts := make([]IP, 0, len(s))
		for dst := range s {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		out[ip] = dsts
	}
	return out
}

// The batch FeatureSet must carry the exact contact sets of its records,
// each host's destinations ascending.
func TestExtractFeatureSetContacts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	records := strictlyOrderedRecords(rng, 500)
	fs := ExtractFeatureSet(records, FeatureOptions{}, Window{})
	want := referenceContacts(records, nil)
	if got := fs.Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("batch contacts differ:\ngot  %v\nwant %v", got, want)
	}
	// Contacts must agree with the Peers feature count host by host.
	for ip, f := range fs.Features() {
		if len(fs.Contacts()[ip]) != f.Peers {
			t.Errorf("host %v: %d contacts but Peers = %d", ip, len(fs.Contacts()[ip]), f.Peers)
		}
	}
}

// A FeatureSet that never had contacts attached reports nil, so
// consumers can tell "no contacts tracked" from "no contacts seen".
func TestFeatureSetContactsNilWhenUnattached(t *testing.T) {
	fs := NewFeatureSet(nil, Window{})
	if fs.Contacts() != nil {
		t.Errorf("unattached Contacts() = %v, want nil", fs.Contacts())
	}
}

// Streaming, sealed-pane, and sharded contact views must all equal the
// batch reference over the same records.
func TestContactSourcesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	records := strictlyOrderedRecords(rng, 800)
	want := referenceContacts(records, nil)

	se := NewStreamExtractor(FeatureOptions{})
	for i := range records {
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := se.Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("stream contacts differ from batch")
	}

	pane := se.TakePane(se.Window())
	if got := pane.Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("pane contacts differ from batch")
	}
	if got := pane.FeatureSet().Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("pane FeatureSet contacts differ from batch")
	}

	sh := NewShardedExtractor(FeatureOptions{}, 8)
	for i := range records {
		if err := sh.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := sh.Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("sharded contacts differ from batch")
	}
}

// MergePanes must union contact sets across panes with de-duplication:
// a destination re-contacted in a later pane appears once, and the
// merged sets equal the batch reference over the combined records. Both
// the multi-pane merge and the single-populated-pane fast path are
// exercised.
func TestMergePanesContacts(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	records := strictlyOrderedRecords(rng, 600)
	want := referenceContacts(records, nil)

	se := NewStreamExtractor(FeatureOptions{})
	var panes []*Pane
	start := records[0].Start
	cut := start.Add(time.Hour)
	for i := range records {
		for !records[i].Start.Before(cut) {
			se.ReleaseBefore(cut)
			panes = append(panes, se.TakePane(Window{From: cut.Add(-time.Hour), To: cut}))
			cut = cut.Add(time.Hour)
		}
		if err := se.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	end := records[len(records)-1].Start.Add(time.Nanosecond)
	se.ReleaseBefore(end)
	panes = append(panes, se.TakePane(Window{From: cut.Add(-time.Hour), To: cut}))
	if len(panes) < 2 {
		t.Fatalf("expected multiple panes, got %d", len(panes))
	}

	if got := MergePanes(0, panes...).Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged contacts differ from batch")
	}

	// Single populated pane + empty pane: fast path must attach too.
	se2 := NewStreamExtractor(FeatureOptions{})
	for i := range records {
		if err := se2.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	w := se2.Window()
	single := se2.TakePane(w)
	empty := &Pane{builders: map[IP]*featureBuilder{}, window: Window{From: w.To, To: w.To.Add(time.Hour)}}
	if got := MergePanes(0, single, empty).Contacts(); !reflect.DeepEqual(got, want) {
		t.Errorf("single-pane merge contacts differ from batch")
	}
}
