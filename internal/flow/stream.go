package flow

import (
	"container/heap"
	"fmt"
	"time"

	"plotters/internal/metrics"
)

// StreamExtractor computes the same per-host features as ExtractFeatures
// incrementally, one record at a time — the shape a deployment at a busy
// border needs, where the day's records never sit in memory at once.
//
// Feature semantics are defined over start-time order, but flow monitors
// emit records at flow *end*, so a live feed arrives only approximately
// start-ordered. Set FeatureOptions via NewStreamExtractor and a MaxSkew
// via NewStreamExtractorSkew to buffer records in a small start-ordered
// heap: a record is processed once the feed has advanced MaxSkew past
// its start time, which tolerates exactly the reordering a flow
// monitor's expiry timers introduce. With zero skew, records must arrive
// strictly start-ordered.
type StreamExtractor struct {
	opts     FeatureOptions
	grace    time.Duration
	maxSkew  time.Duration
	builders map[IP]*featureBuilder
	anchors  map[IP]time.Time // host -> carried first-seen (nil = off)
	pending  recordHeap
	first    time.Time // earliest start time seen
	frontier time.Time // latest start time seen
	released time.Time // start time up to which records were processed
	count    int
	seq      uint64

	// Instrumentation (nil-safe no-ops until Metrics is called).
	recCtr    *metrics.Counter
	dropCtr   *metrics.Counter
	pendingHW *metrics.Gauge
	hostCtr   *metrics.Gauge
}

// NewStreamExtractor creates an incremental extractor requiring
// start-ordered input.
func NewStreamExtractor(opts FeatureOptions) *StreamExtractor {
	return NewStreamExtractorSkew(opts, 0)
}

// NewStreamExtractorSkew creates an incremental extractor tolerating
// records up to maxSkew out of start order.
func NewStreamExtractorSkew(opts FeatureOptions, maxSkew time.Duration) *StreamExtractor {
	grace := opts.NewPeerGrace
	if grace <= 0 {
		grace = DefaultNewPeerGrace
	}
	if maxSkew < 0 {
		maxSkew = 0
	}
	return &StreamExtractor{
		opts:     opts,
		grace:    grace,
		maxSkew:  maxSkew,
		builders: make(map[IP]*featureBuilder),
	}
}

// Metrics attaches reg's instruments to the extractor: the
// "stream/records" counter (records accepted), "stream/skew_drops"
// counter (records rejected for arriving more than MaxSkew late),
// "stream/pending_highwater" gauge (deepest the reorder buffer got),
// and "stream/hosts" gauge (distinct initiators tracked). A nil reg
// detaches. Returns se for chaining.
func (se *StreamExtractor) Metrics(reg *metrics.Registry) *StreamExtractor {
	se.recCtr = reg.Counter("stream/records")
	se.dropCtr = reg.Counter("stream/skew_drops")
	se.pendingHW = reg.Gauge("stream/pending_highwater")
	se.hostCtr = reg.Gauge("stream/hosts")
	return se
}

// Add folds one record into the running features. Records may arrive up
// to MaxSkew out of start-time order; older records are rejected.
func (se *StreamExtractor) Add(r *Record) error {
	if r.Start.Before(se.released) {
		se.dropCtr.Add(1)
		return fmt.Errorf("flow: record at %v is more than %v behind the stream frontier %v",
			r.Start, se.maxSkew, se.frontier)
	}
	se.count++
	se.recCtr.Add(1)
	if se.count == 1 || r.Start.Before(se.first) {
		se.first = r.Start
	}
	if r.Start.After(se.frontier) {
		se.frontier = r.Start
	}
	if se.maxSkew == 0 {
		se.released = r.Start
		se.process(r)
		return nil
	}
	se.seq++
	heap.Push(&se.pending, pendingRecord{rec: *r, seq: se.seq})
	se.pendingHW.SetMax(int64(len(se.pending)))
	se.release(se.frontier.Add(-se.maxSkew))
	return nil
}

// release processes buffered records with start times up to watermark.
func (se *StreamExtractor) release(watermark time.Time) {
	for len(se.pending) > 0 && !se.pending[0].rec.Start.After(watermark) {
		p := heap.Pop(&se.pending).(pendingRecord)
		se.released = p.rec.Start
		se.process(&p.rec)
	}
}

// Drain processes every buffered record (end of feed).
func (se *StreamExtractor) Drain() {
	se.release(se.frontier)
}

// ReleaseBefore force-processes every buffered record with a start time
// strictly before t and then forbids records earlier than t: subsequent
// Add calls with start < t are rejected as skew drops. This is the
// window-sealing primitive — the engine calls it at a pane boundary once
// the stream frontier proves no conforming record below t can still
// arrive, so records at or past t stay buffered for the next pane.
func (se *StreamExtractor) ReleaseBefore(t time.Time) {
	for len(se.pending) > 0 && se.pending[0].rec.Start.Before(t) {
		p := heap.Pop(&se.pending).(pendingRecord)
		se.released = p.rec.Start
		se.process(&p.rec)
	}
	if t.After(se.released) {
		se.released = t
	}
}

// CarryFirstSeen enables (or, with false, disables) first-seen carrying
// across panes: when a host reappears after TakePane, its new builder's
// grace period stays anchored at the host's earliest activity ever seen,
// matching what a batch extraction over the whole stream would anchor —
// instead of restarting the θ_churn warm-up every window.
func (se *StreamExtractor) CarryFirstSeen(on bool) {
	if on && se.anchors == nil {
		se.anchors = make(map[IP]time.Time)
	} else if !on {
		se.anchors = nil
	}
}

// TakePane detaches the accumulated builders as a sealed Pane covering w
// and resets the extractor for the next pane. Buffered (pending) records
// are untouched — call ReleaseBefore(w.To) first so everything belonging
// to the pane has been processed. When first-seen carrying is enabled,
// each detached host's earliest activity is remembered and re-anchors
// the host's grace period in later panes.
func (se *StreamExtractor) TakePane(w Window) *Pane {
	builders := se.builders
	se.builders = make(map[IP]*featureBuilder)
	se.hostCtr.Set(0)
	if se.anchors != nil {
		for ip, b := range builders {
			if cur, ok := se.anchors[ip]; !ok || b.feats.FirstSeen.Before(cur) {
				se.anchors[ip] = b.feats.FirstSeen
			}
		}
	}
	return &Pane{builders: builders, window: w}
}

func (se *StreamExtractor) process(r *Record) {
	if se.opts.Hosts != nil && !se.opts.Hosts(r.Src) {
		return
	}
	b, ok := se.builders[r.Src]
	if !ok {
		first := r.Start
		if anchor, ok := se.anchors[r.Src]; ok && anchor.Before(first) {
			first = anchor
		}
		b = &featureBuilder{
			feats:     &HostFeatures{Host: r.Src, FirstSeen: first},
			firstSeen: make(map[IP]time.Time),
			lastStart: make(map[IP]time.Time),
		}
		se.builders[r.Src] = b
		se.hostCtr.Set(int64(len(se.builders)))
	}
	b.observe(r, se.grace)
}

// Records returns how many records have been accepted (including ones
// still buffered).
func (se *StreamExtractor) Records() int { return se.count }

// Pending returns how many records are buffered awaiting the watermark.
func (se *StreamExtractor) Pending() int { return len(se.pending) }

// Hosts returns how many distinct initiators have been processed.
func (se *StreamExtractor) Hosts() int { return len(se.builders) }

// Snapshot returns the current per-host features (excluding buffered
// records; call Drain first at end of feed). The returned map and its
// values are live views — callers must not mutate them and must not
// interleave reads with Add calls from other goroutines.
func (se *StreamExtractor) Snapshot() map[IP]*HostFeatures {
	out := make(map[IP]*HostFeatures, len(se.builders))
	for ip, b := range se.builders {
		out[ip] = b.feats
	}
	return out
}

// Features implements FeatureSource over the current state (a live
// view, like Snapshot).
func (se *StreamExtractor) Features() map[IP]*HostFeatures { return se.Snapshot() }

// Contacts implements ContactSource over the current state: each host's
// contacted destinations so far, in ascending address order. Like
// Snapshot, reads must not interleave with Add calls from other
// goroutines.
func (se *StreamExtractor) Contacts() map[IP][]IP {
	return contactsOfBuilders(se.builders)
}

// Window implements FeatureSource: the span of processed start times,
// half-open past the frontier. Zero until a record has been processed.
func (se *StreamExtractor) Window() Window {
	if se.count == 0 {
		return Window{}
	}
	return Window{From: se.first, To: se.frontier.Add(1)}
}

// pendingRecord is one buffered record; seq keeps ties in arrival order
// so the skewed stream reproduces the batch extractor exactly.
type pendingRecord struct {
	rec Record
	seq uint64
}

// recordHeap is a min-heap of records by (start time, arrival order).
type recordHeap []pendingRecord

func (h recordHeap) Len() int { return len(h) }
func (h recordHeap) Less(i, j int) bool {
	if !h[i].rec.Start.Equal(h[j].rec.Start) {
		return h[i].rec.Start.Before(h[j].rec.Start)
	}
	return h[i].seq < h[j].seq
}
func (h recordHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *recordHeap) Push(x any)   { *h = append(*h, x.(pendingRecord)) }
func (h *recordHeap) Pop() any {
	old := *h
	n := len(old)
	rec := old[n-1]
	*h = old[:n-1]
	return rec
}

// observe folds one record into a host's builder. Shared by the batch
// and streaming extractors so their semantics cannot drift.
func (b *featureBuilder) observe(r *Record, grace time.Duration) {
	f := b.feats
	f.Flows++
	if r.Failed() {
		f.FailedFlows++
	} else {
		f.SuccessfulFlows++
	}
	f.BytesUploaded += r.SrcBytes
	if r.Start.After(f.LastSeen) {
		f.LastSeen = r.Start
	}
	if _, seen := b.firstSeen[r.Dst]; !seen {
		b.firstSeen[r.Dst] = r.Start
		f.Peers++
		if r.Start.Sub(f.FirstSeen) > grace {
			f.NewPeers++
		}
	}
	if prev, ok := b.lastStart[r.Dst]; ok {
		f.Interstitials = append(f.Interstitials, r.Start.Sub(prev).Seconds())
	}
	b.lastStart[r.Dst] = r.Start
}
