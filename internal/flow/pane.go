package flow

import (
	"sort"
	"time"
)

// Pane is one sealed accumulation interval's raw per-host state: the
// feature builders detached from a StreamExtractor at a pane boundary.
// A tumbling detection window is a single pane; a sliding window is the
// merge of its last Window/Slide panes. Panes keep the per-destination
// first-contact and last-start maps alive so MergePanes can stitch
// adjacent panes back together exactly (peer de-duplication and
// cross-pane interstitial gaps included).
type Pane struct {
	builders map[IP]*featureBuilder
	window   Window
}

// Window returns the interval the pane covers.
func (p *Pane) Window() Window { return p.window }

// Hosts returns the number of hosts the pane accumulated.
func (p *Pane) Hosts() int { return len(p.builders) }

// Features returns the pane's per-host features directly (no copy).
// This is the tumbling fast path: a single-pane window's live features
// are already exactly what batch extraction over the pane's records
// would produce. The returned map and values alias the pane's state —
// callers that will merge the pane into later windows must use
// MergePanes instead.
func (p *Pane) Features() map[IP]*HostFeatures {
	out := make(map[IP]*HostFeatures, len(p.builders))
	for ip, b := range p.builders {
		out[ip] = b.feats
	}
	return out
}

// Contacts returns the pane's per-host contacted-destination sets in
// ascending address order — the keys of the per-destination tables the
// pane keeps alive for merging anyway, exposed for flow-graph detectors.
func (p *Pane) Contacts() map[IP][]IP {
	return contactsOfBuilders(p.builders)
}

// FeatureSet wraps the pane's features (contact sets included) as a
// FeatureSource.
func (p *Pane) FeatureSet() *FeatureSet {
	return NewFeatureSet(p.Features(), p.window).WithContacts(p.Contacts())
}

// MergePanes recomputes the features a batch extraction over the panes'
// combined records would produce, without the records. Counters sum;
// per-destination first contacts de-duplicate across panes (a peer
// re-contacted in a later pane is not counted again); the new-peer grace
// period re-anchors at the host's earliest activity across the merged
// panes; and cross-pane interstitial gaps (last start to a destination
// in one pane → first start to it in a later pane) are restored, so the
// merged Interstitials hold exactly the multiset of consecutive
// same-destination gaps of the combined stream. Only the ordering of
// Interstitials may differ from a true batch extraction (pane-major
// instead of time-major); every downstream consumer is
// order-insensitive (θ_hm builds a histogram).
//
// Panes must be passed in time order. grace ≤ 0 means
// DefaultNewPeerGrace.
func MergePanes(grace time.Duration, panes ...*Pane) *FeatureSet {
	if grace <= 0 {
		grace = DefaultNewPeerGrace
	}
	nonEmpty := panes[:0:0]
	var window Window
	for _, p := range panes {
		if p == nil {
			continue
		}
		if window == (Window{}) {
			window = p.window
		} else {
			if p.window.From.Before(window.From) {
				window.From = p.window.From
			}
			if p.window.To.After(window.To) {
				window.To = p.window.To
			}
		}
		if len(p.builders) > 0 {
			nonEmpty = append(nonEmpty, p)
		}
	}
	if len(nonEmpty) == 1 {
		// Single populated pane: its live features are already exact.
		return NewFeatureSet(nonEmpty[0].Features(), window).
			WithContacts(nonEmpty[0].Contacts())
	}

	type hostMerge struct {
		feats        *HostFeatures
		firstContact map[IP]time.Time // destination -> earliest contact across panes
		lastStart    map[IP]time.Time // destination -> latest start so far (for boundary gaps)
	}
	merged := make(map[IP]*hostMerge)
	for _, p := range nonEmpty {
		for ip, b := range p.builders {
			m, ok := merged[ip]
			if !ok {
				m = &hostMerge{
					feats: &HostFeatures{
						Host:      ip,
						FirstSeen: b.feats.FirstSeen,
						LastSeen:  b.feats.LastSeen,
					},
					firstContact: make(map[IP]time.Time, len(b.firstSeen)),
					lastStart:    make(map[IP]time.Time, len(b.lastStart)),
				}
				merged[ip] = m
			}
			f := m.feats
			f.Flows += b.feats.Flows
			f.SuccessfulFlows += b.feats.SuccessfulFlows
			f.FailedFlows += b.feats.FailedFlows
			f.BytesUploaded += b.feats.BytesUploaded
			if b.feats.FirstSeen.Before(f.FirstSeen) {
				f.FirstSeen = b.feats.FirstSeen
			}
			if b.feats.LastSeen.After(f.LastSeen) {
				f.LastSeen = b.feats.LastSeen
			}
			// Pane-internal gaps survive as-is; the boundary gap between
			// the previous pane's last start to a destination and this
			// pane's first contact with it is reconstructed here.
			f.Interstitials = append(f.Interstitials, b.feats.Interstitials...)
			for dst, first := range b.firstSeen {
				if prev, ok := m.lastStart[dst]; ok {
					f.Interstitials = append(f.Interstitials, first.Sub(prev).Seconds())
				}
				if cur, ok := m.firstContact[dst]; !ok || first.Before(cur) {
					m.firstContact[dst] = first
				}
			}
			for dst, last := range b.lastStart {
				if cur, ok := m.lastStart[dst]; !ok || last.After(cur) {
					m.lastStart[dst] = last
				}
			}
		}
	}

	out := make(map[IP]*HostFeatures, len(merged))
	contacts := make(map[IP][]IP, len(merged))
	for ip, m := range merged {
		f := m.feats
		f.Peers = len(m.firstContact)
		f.NewPeers = 0
		dsts := make([]IP, 0, len(m.firstContact))
		for dst, first := range m.firstContact {
			dsts = append(dsts, dst)
			if first.Sub(f.FirstSeen) > grace {
				f.NewPeers++
			}
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		out[ip] = f
		contacts[ip] = dsts
	}
	return NewFeatureSet(out, window).WithContacts(contacts)
}

// MergeFeatureMaps combines disjoint per-host feature maps (e.g. the
// per-shard snapshots of a ShardedExtractor) into one. Hosts must not
// repeat across maps; a repeated host keeps the last map's entry.
func MergeFeatureMaps(maps ...map[IP]*HostFeatures) map[IP]*HostFeatures {
	total := 0
	for _, m := range maps {
		total += len(m)
	}
	out := make(map[IP]*HostFeatures, total)
	for _, m := range maps {
		for ip, f := range m {
			out[ip] = f
		}
	}
	return out
}
