package flow

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// randomOrderedRecords builds a time-ordered random record stream.
func randomOrderedRecords(rng *rand.Rand, n int) []Record {
	at := baseTime()
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		state := StateEstablished
		if rng.Intn(3) == 0 {
			state = StateFailed
		}
		out = append(out, Record{
			Src: IP(1 + rng.Intn(5)), Dst: IP(100 + rng.Intn(20)),
			SrcPort: 4000, DstPort: 80, Proto: TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1,
			SrcBytes: uint64(rng.Intn(5000)), DstBytes: 100,
			State: state,
		})
		at = at.Add(time.Duration(rng.Intn(120)) * time.Second)
	}
	return out
}

// The streaming extractor must agree exactly with the batch extractor on
// any time-ordered stream.
func TestStreamMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		records := randomOrderedRecords(rng, 500)
		batch := ExtractFeatures(records, FeatureOptions{})
		se := NewStreamExtractor(FeatureOptions{})
		for i := range records {
			if err := se.Add(&records[i]); err != nil {
				t.Fatal(err)
			}
		}
		stream := se.Snapshot()
		if len(batch) != len(stream) {
			t.Fatalf("trial %d: host counts differ: %d vs %d", trial, len(batch), len(stream))
		}
		for ip, bf := range batch {
			sf := stream[ip]
			if sf == nil {
				t.Fatalf("trial %d: host %v missing from stream", trial, ip)
			}
			if !reflect.DeepEqual(bf, sf) {
				t.Fatalf("trial %d: host %v features differ:\nbatch  %+v\nstream %+v", trial, ip, bf, sf)
			}
		}
		if se.Records() != 500 || se.Hosts() != len(stream) {
			t.Errorf("counters: records=%d hosts=%d", se.Records(), se.Hosts())
		}
	}
}

func TestStreamRejectsOutOfOrder(t *testing.T) {
	se := NewStreamExtractor(FeatureOptions{})
	r1 := mkRecord(1, 2, baseTime().Add(time.Minute), 10, StateEstablished)
	r2 := mkRecord(1, 2, baseTime(), 10, StateEstablished)
	if err := se.Add(&r1); err != nil {
		t.Fatal(err)
	}
	if err := se.Add(&r2); err == nil {
		t.Error("out-of-order record accepted")
	}
	// Equal timestamps are fine.
	r3 := mkRecord(1, 3, baseTime().Add(time.Minute), 10, StateEstablished)
	if err := se.Add(&r3); err != nil {
		t.Errorf("equal-timestamp record rejected: %v", err)
	}
}

func TestStreamHostFilter(t *testing.T) {
	se := NewStreamExtractor(FeatureOptions{Hosts: func(ip IP) bool { return ip == 1 }})
	r1 := mkRecord(1, 2, baseTime(), 10, StateEstablished)
	r2 := mkRecord(9, 2, baseTime().Add(time.Second), 10, StateEstablished)
	if err := se.Add(&r1); err != nil {
		t.Fatal(err)
	}
	if err := se.Add(&r2); err != nil {
		t.Fatal(err)
	}
	if se.Hosts() != 1 {
		t.Errorf("hosts = %d, want 1 (filtered)", se.Hosts())
	}
	if se.Records() != 2 {
		t.Errorf("records = %d, want 2 (filter does not drop the count)", se.Records())
	}
}

func TestStreamGraceOverride(t *testing.T) {
	se := NewStreamExtractor(FeatureOptions{NewPeerGrace: time.Minute})
	r1 := mkRecord(1, 100, baseTime(), 10, StateEstablished)
	r2 := mkRecord(1, 101, baseTime().Add(5*time.Minute), 10, StateEstablished)
	if err := se.Add(&r1); err != nil {
		t.Fatal(err)
	}
	if err := se.Add(&r2); err != nil {
		t.Fatal(err)
	}
	f := se.Snapshot()[1]
	if f.NewPeers != 1 {
		t.Errorf("NewPeers = %d, want 1 with 1-minute grace", f.NewPeers)
	}
}

func BenchmarkStreamExtractor(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	records := randomOrderedRecords(rng, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		se := NewStreamExtractor(FeatureOptions{})
		for j := range records {
			if err := se.Add(&records[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// A stream shuffled within a bounded skew must, with a matching MaxSkew
// and a final Drain, produce exactly the batch extractor's features.
func TestStreamSkewMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 10; trial++ {
		records := randomOrderedRecords(rng, 400)
		// Shuffle each record by up to ±60s of arrival displacement:
		// perturb a copy's order key, sort by it.
		shuffled := make([]keyedRecord, len(records))
		for i, r := range records {
			shuffled[i] = keyedRecord{rec: r, key: r.Start.Add(time.Duration(rng.Intn(121)-60) * time.Second)}
		}
		sortKeyed(shuffled)

		se := NewStreamExtractorSkew(FeatureOptions{}, 3*time.Minute)
		for i := range shuffled {
			if err := se.Add(&shuffled[i].rec); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		se.Drain()
		if se.Pending() != 0 {
			t.Fatalf("trial %d: %d records still pending after drain", trial, se.Pending())
		}
		batch := ExtractFeatures(records, FeatureOptions{})
		stream := se.Snapshot()
		if len(batch) != len(stream) {
			t.Fatalf("trial %d: host counts differ", trial)
		}
		for ip, bf := range batch {
			if !reflect.DeepEqual(bf, stream[ip]) {
				t.Fatalf("trial %d: host %v differs:\nbatch  %+v\nstream %+v", trial, ip, bf, stream[ip])
			}
		}
	}
}

// keyedRecord pairs a record with its (perturbed) arrival key.
type keyedRecord struct {
	rec Record
	key time.Time
}

func sortKeyed(ks []keyedRecord) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j].key.Before(ks[j-1].key); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func TestStreamSkewRejectsTooLate(t *testing.T) {
	se := NewStreamExtractorSkew(FeatureOptions{}, time.Minute)
	r1 := mkRecord(1, 2, baseTime().Add(10*time.Minute), 10, StateEstablished)
	r2 := mkRecord(1, 2, baseTime().Add(20*time.Minute), 10, StateEstablished)
	if err := se.Add(&r1); err != nil {
		t.Fatal(err)
	}
	// r2 advances the watermark past r1, which gets processed.
	if err := se.Add(&r2); err != nil {
		t.Fatal(err)
	}
	if se.Hosts() != 1 {
		t.Fatalf("r1 not yet processed (hosts=%d)", se.Hosts())
	}
	// A record older than anything already processed must be rejected.
	late := mkRecord(1, 2, baseTime(), 10, StateEstablished)
	if err := se.Add(&late); err == nil {
		t.Error("too-late record accepted")
	}
	// But a record between released and the watermark is still fine.
	mid := mkRecord(1, 3, baseTime().Add(15*time.Minute), 10, StateEstablished)
	if err := se.Add(&mid); err != nil {
		t.Errorf("in-window record rejected: %v", err)
	}
}

// Feature accounting invariants over arbitrary record streams: flow
// counts partition into successes and failures, every flow beyond a
// destination's first contributes exactly one interstitial sample, and
// new peers never exceed total peers.
func TestFeatureInvariantsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomOrderedRecords(rng, int(n))
		feats := ExtractFeatures(records, FeatureOptions{})
		totalFlows := 0
		for _, hf := range feats {
			totalFlows += hf.Flows
			if hf.Flows != hf.SuccessfulFlows+hf.FailedFlows {
				return false
			}
			if len(hf.Interstitials) != hf.Flows-hf.Peers {
				return false
			}
			if hf.NewPeers > hf.Peers || hf.NewPeers < 0 {
				return false
			}
			if hf.LastSeen.Before(hf.FirstSeen) {
				return false
			}
			for _, gap := range hf.Interstitials {
				if gap < 0 {
					return false
				}
			}
		}
		return totalFlows == len(records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
