package flow

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// This file is the durable-state seam of the feature layer: exported,
// plain-data snapshots of the incremental extractors' internal state, so
// internal/checkpoint can persist a live deployment and restore it
// bit-identically after a crash. The types mirror the unexported
// accumulation structures (featureBuilder, the reorder heap, the
// first-seen anchors) field for field; State() detaches a deep copy,
// RestoreState() rebuilds the originals inside a freshly constructed
// extractor. Configuration (FeatureOptions, shard count, skew) is never
// part of the state — the restoring caller constructs the extractor
// with the same configuration, and the checkpoint layer pins that
// equality in its metadata.

// HostTime pairs an address with a timestamp — one entry of a
// per-destination first-contact or last-start table, or one first-seen
// anchor.
type HostTime struct {
	Host IP
	Time time.Time
}

// HostState is one host's accumulated feature-builder state: the
// features themselves plus the per-destination tables that let later
// records extend them (peer de-duplication and interstitial gaps).
type HostState struct {
	Feats        HostFeatures
	FirstContact []HostTime // destination -> first contact, ascending by Host
	LastStart    []HostTime // destination -> latest flow start, ascending by Host
}

// PendingState is one record buffered in the reorder heap, with the
// arrival sequence number that keeps same-start ties in arrival order.
type PendingState struct {
	Rec Record
	Seq uint64
}

// StreamState is a complete snapshot of one StreamExtractor's dynamic
// state. Slices are ordered deterministically (hosts and anchors by
// address, pending by (start, seq)) so the same extractor state always
// serializes to the same bytes.
type StreamState struct {
	First    time.Time
	Frontier time.Time
	Released time.Time
	Count    int
	Seq      uint64
	Hosts    []HostState
	Anchors  []HostTime // carried first-seen anchors (empty when off)
	Pending  []PendingState
}

// ShardedState is a complete snapshot of a ShardedExtractor: one
// StreamState per shard, in shard order. Restoring requires the same
// shard count (the shard hash is deterministic, so equal counts mean
// every host lands back on the shard that accumulated it).
type ShardedState struct {
	Shards []StreamState
}

// PaneState is a serializable sealed pane: its window plus every
// detached host builder.
type PaneState struct {
	Window Window
	Hosts  []HostState
}

// hostTimesFromMap flattens a map into address-sorted HostTime pairs.
func hostTimesFromMap(m map[IP]time.Time) []HostTime {
	if len(m) == 0 {
		return nil
	}
	out := make([]HostTime, 0, len(m))
	for ip, t := range m {
		out = append(out, HostTime{Host: ip, Time: t})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out
}

// hostTimesToMap rebuilds the map form.
func hostTimesToMap(entries []HostTime) map[IP]time.Time {
	m := make(map[IP]time.Time, len(entries))
	for _, e := range entries {
		m[e.Host] = e.Time
	}
	return m
}

// stateOfBuilders snapshots a builder map as address-sorted HostStates,
// deep-copying every slice and table so the snapshot stays valid while
// the live extractor keeps accumulating.
func stateOfBuilders(builders map[IP]*featureBuilder) []HostState {
	if len(builders) == 0 {
		return nil
	}
	hosts := make([]IP, 0, len(builders))
	for ip := range builders {
		hosts = append(hosts, ip)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	out := make([]HostState, len(hosts))
	for i, ip := range hosts {
		b := builders[ip]
		hs := HostState{
			Feats:        *b.feats,
			FirstContact: hostTimesFromMap(b.firstSeen),
			LastStart:    hostTimesFromMap(b.lastStart),
		}
		hs.Feats.Interstitials = append([]float64(nil), b.feats.Interstitials...)
		out[i] = hs
	}
	return out
}

// buildersFromState rebuilds the live builder map.
func buildersFromState(hosts []HostState) map[IP]*featureBuilder {
	builders := make(map[IP]*featureBuilder, len(hosts))
	for i := range hosts {
		hs := &hosts[i]
		feats := hs.Feats
		feats.Interstitials = append([]float64(nil), hs.Feats.Interstitials...)
		builders[hs.Feats.Host] = &featureBuilder{
			feats:     &feats,
			firstSeen: hostTimesToMap(hs.FirstContact),
			lastStart: hostTimesToMap(hs.LastStart),
		}
	}
	return builders
}

// State detaches a deep snapshot of the extractor's dynamic state.
// Configuration (FeatureOptions, MaxSkew) is not included; restore into
// an extractor constructed with the same configuration.
func (se *StreamExtractor) State() *StreamState {
	st := &StreamState{
		First:    se.first,
		Frontier: se.frontier,
		Released: se.released,
		Count:    se.count,
		Seq:      se.seq,
		Hosts:    stateOfBuilders(se.builders),
		Anchors:  hostTimesFromMap(se.anchors),
	}
	if len(se.pending) > 0 {
		st.Pending = make([]PendingState, len(se.pending))
		for i, p := range se.pending {
			st.Pending[i] = PendingState{Rec: p.rec, Seq: p.seq}
		}
		sort.Slice(st.Pending, func(i, j int) bool {
			a, b := &st.Pending[i], &st.Pending[j]
			if !a.Rec.Start.Equal(b.Rec.Start) {
				return a.Rec.Start.Before(b.Rec.Start)
			}
			return a.Seq < b.Seq
		})
	}
	return st
}

// RestoreState replaces the extractor's dynamic state with a previously
// snapshotted one. The extractor must be freshly constructed (no records
// added) with the same FeatureOptions and MaxSkew as the snapshotted
// one; feature semantics would silently diverge otherwise, so a
// non-empty extractor is rejected.
func (se *StreamExtractor) RestoreState(st *StreamState) error {
	if se.count != 0 || len(se.builders) != 0 || len(se.pending) != 0 {
		return fmt.Errorf("flow: RestoreState on an extractor that already holds %d records", se.count)
	}
	se.first = st.First
	se.frontier = st.Frontier
	se.released = st.Released
	se.count = st.Count
	se.seq = st.Seq
	se.builders = buildersFromState(st.Hosts)
	if se.anchors != nil && len(st.Anchors) > 0 {
		se.anchors = hostTimesToMap(st.Anchors)
	}
	if len(st.Pending) > 0 {
		se.pending = make(recordHeap, len(st.Pending))
		for i := range st.Pending {
			se.pending[i] = pendingRecord{rec: st.Pending[i].Rec, seq: st.Pending[i].Seq}
		}
		heap.Init(&se.pending)
	}
	se.hostCtr.Set(int64(len(se.builders)))
	return nil
}

// State detaches a deep snapshot of every shard, locking one shard at a
// time (a concurrent snapshot, like TakePanes — callers that need a
// point-in-time-consistent image across shards must quiesce ingest).
func (se *ShardedExtractor) State() *ShardedState {
	st := &ShardedState{Shards: make([]StreamState, len(se.shards))}
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		st.Shards[i] = *s.ex.State()
		s.mu.Unlock()
	}
	return st
}

// RestoreState restores every shard from a ShardedState snapshot. The
// store must be freshly constructed with the same shard count as the
// snapshotted one — the shard hash is deterministic, so an equal count
// puts every host back on the shard whose frontier it advanced.
func (se *ShardedExtractor) RestoreState(st *ShardedState) error {
	if len(st.Shards) != len(se.shards) {
		return fmt.Errorf("flow: snapshot has %d shards, store has %d (restore with the snapshotted shard count)",
			len(st.Shards), len(se.shards))
	}
	for i := range se.shards {
		s := &se.shards[i]
		s.mu.Lock()
		err := s.ex.RestoreState(&st.Shards[i])
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("flow: shard %d: %w", i, err)
		}
	}
	return nil
}

// State detaches a deep snapshot of the sealed pane.
func (p *Pane) State() *PaneState {
	return &PaneState{Window: p.window, Hosts: stateOfBuilders(p.builders)}
}

// NewPaneFromState rebuilds a sealed pane from its snapshot.
func NewPaneFromState(st *PaneState) *Pane {
	return &Pane{builders: buildersFromState(st.Hosts), window: st.Window}
}
