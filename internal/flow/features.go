package flow

import (
	"sort"
	"time"

	"plotters/internal/stats"
)

// DefaultNewPeerGrace is the warm-up period after a host's first activity
// of the day during which destination contacts are not counted as "new":
// the paper measures churn as the fraction of IP addresses first
// contacted *after the host's first hour of activity* on that day.
const DefaultNewPeerGrace = time.Hour

// FeatureOptions configures per-host feature extraction.
type FeatureOptions struct {
	// Hosts restricts extraction to initiators for which the predicate is
	// true (typically "is an internal address"). Nil means all initiators.
	Hosts func(IP) bool
	// NewPeerGrace overrides DefaultNewPeerGrace when positive.
	NewPeerGrace time.Duration
}

// HostFeatures aggregates one host's behavioral features over a detection
// window. All features consider only flows the host initiated, following
// the Argus convention that the record source is the initiator.
type HostFeatures struct {
	Host IP

	// Flows counts initiated flows.
	Flows int
	// SuccessfulFlows counts initiated flows that established.
	SuccessfulFlows int
	// FailedFlows counts initiated flows that failed.
	FailedFlows int

	// BytesUploaded totals bytes the host sent as initiator.
	BytesUploaded uint64

	// Peers counts distinct destination IPs contacted.
	Peers int
	// NewPeers counts destination IPs first contacted after the host's
	// first NewPeerGrace of activity.
	NewPeers int

	// FirstSeen and LastSeen bound the host's initiated activity.
	FirstSeen time.Time
	LastSeen  time.Time

	// Interstitials holds, pooled across all destinations, the gaps (in
	// seconds) between consecutive flow starts from this host to the same
	// destination IP — the θ_hm sample v(s).
	Interstitials []float64
}

// AvgBytesPerFlow returns the paper's volume feature: mean bytes uploaded
// per initiated flow.
func (h *HostFeatures) AvgBytesPerFlow() float64 {
	if h.Flows == 0 {
		return 0
	}
	return float64(h.BytesUploaded) / float64(h.Flows)
}

// FailedRate returns the fraction of initiated flows that failed.
func (h *HostFeatures) FailedRate() float64 {
	if h.Flows == 0 {
		return 0
	}
	return float64(h.FailedFlows) / float64(h.Flows)
}

// NewPeerFraction returns the churn feature: the fraction of contacted
// destination IPs that were new (first contacted after the grace period).
func (h *HostFeatures) NewPeerFraction() float64 {
	if h.Peers == 0 {
		return 0
	}
	return float64(h.NewPeers) / float64(h.Peers)
}

// featureBuilder accumulates one host's state during extraction.
type featureBuilder struct {
	feats     *HostFeatures
	firstSeen map[IP]time.Time // destination -> first contact
	lastStart map[IP]time.Time // destination -> latest flow start
}

// ExtractFeatures computes per-host features from the record set.
// Records need not be pre-sorted; they are processed in start-time order.
// The input slice is not modified.
func ExtractFeatures(records []Record, opts FeatureOptions) map[IP]*HostFeatures {
	return featuresOfBuilders(extractBuilders(records, opts))
}

// extractBuilders runs the batch extraction but keeps the per-host
// builders alive, so callers can also derive the per-destination tables
// (contact sets) instead of just the folded features.
func extractBuilders(records []Record, opts FeatureOptions) map[IP]*featureBuilder {
	grace := opts.NewPeerGrace
	if grace <= 0 {
		grace = DefaultNewPeerGrace
	}
	ordered := make([]Record, len(records))
	copy(ordered, records)
	SortByStart(ordered)

	builders := make(map[IP]*featureBuilder)
	for i := range ordered {
		r := &ordered[i]
		if opts.Hosts != nil && !opts.Hosts(r.Src) {
			continue
		}
		b, ok := builders[r.Src]
		if !ok {
			b = &featureBuilder{
				feats:     &HostFeatures{Host: r.Src, FirstSeen: r.Start},
				firstSeen: make(map[IP]time.Time),
				lastStart: make(map[IP]time.Time),
			}
			builders[r.Src] = b
		}
		b.observe(r, grace)
	}
	return builders
}

// featuresOfBuilders strips a builder map down to the features.
func featuresOfBuilders(builders map[IP]*featureBuilder) map[IP]*HostFeatures {
	out := make(map[IP]*HostFeatures, len(builders))
	for ip, b := range builders {
		out[ip] = b.feats
	}
	return out
}

// contactsOfBuilders derives each host's contacted-destination set (the
// keys of its per-destination first-contact table) in ascending address
// order — the flow-graph view of the accumulated state that the
// community detector consumes.
func contactsOfBuilders(builders map[IP]*featureBuilder) map[IP][]IP {
	out := make(map[IP][]IP, len(builders))
	for ip, b := range builders {
		dsts := make([]IP, 0, len(b.firstSeen))
		for dst := range b.firstSeen {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
		out[ip] = dsts
	}
	return out
}

// FeatureValues extracts one float feature from a host set in a
// deterministic (host-address) order, for threshold/percentile math.
func FeatureValues(feats map[IP]*HostFeatures, get func(*HostFeatures) float64) []float64 {
	hosts := SortedHosts(feats)
	vals := make([]float64, len(hosts))
	for i, h := range hosts {
		vals[i] = get(feats[h])
	}
	return vals
}

// SortedHosts returns the feature map's keys in ascending address order.
func SortedHosts(feats map[IP]*HostFeatures) []IP {
	hosts := make([]IP, 0, len(feats))
	for ip := range feats {
		hosts = append(hosts, ip)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// MedianFeature returns the median of one feature across hosts.
func MedianFeature(feats map[IP]*HostFeatures, get func(*HostFeatures) float64) (float64, error) {
	return stats.Median(FeatureValues(feats, get))
}
