package flow

import (
	"testing"
	"time"

	"plotters/internal/metrics"
)

// The extractor must report accepted records, skew rejects, the reorder
// buffer's high-water mark, and the distinct hosts tracked.
func TestStreamExtractorMetrics(t *testing.T) {
	t0 := time.Date(2010, time.June, 21, 8, 0, 0, 0, time.UTC)
	rec := func(src IP, at time.Duration) *Record {
		return &Record{
			Src: src, Dst: MakeIP(10, 0, 0, 9), SrcPort: 1234, DstPort: 80,
			Proto: TCP, State: StateEstablished,
			Start: t0.Add(at), End: t0.Add(at + time.Second),
			SrcPkts: 1, SrcBytes: 40,
		}
	}

	reg := metrics.New()
	se := NewStreamExtractorSkew(FeatureOptions{}, 10*time.Second).Metrics(reg)

	// Three records inside the skew window buffer up (high water = 3),
	// from two distinct hosts.
	for _, r := range []*Record{
		rec(MakeIP(128, 2, 0, 1), 5*time.Second),
		rec(MakeIP(128, 2, 0, 1), 2*time.Second),
		rec(MakeIP(128, 2, 0, 2), 4*time.Second),
	} {
		if err := se.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// Advancing the frontier far ahead releases them all...
	if err := se.Add(rec(MakeIP(128, 2, 0, 1), time.Minute)); err != nil {
		t.Fatal(err)
	}
	// ...after which a record behind the watermark is a skew drop.
	if err := se.Add(rec(MakeIP(128, 2, 0, 3), 3*time.Second)); err == nil {
		t.Fatal("expected a skew rejection")
	}
	se.Drain()

	snap := reg.TakeSnapshot()
	if got := snap.Counters["stream/records"]; got != 4 {
		t.Errorf("stream/records = %d, want 4", got)
	}
	if got := snap.Counters["stream/skew_drops"]; got != 1 {
		t.Errorf("stream/skew_drops = %d, want 1", got)
	}
	// All four accepted records were in the heap at once: the first three
	// buffered, then the frontier record joined before the release pass.
	if got := snap.Gauges["stream/pending_highwater"]; got != 4 {
		t.Errorf("stream/pending_highwater = %d, want 4", got)
	}
	if got := snap.Gauges["stream/hosts"]; got != int64(se.Hosts()) || got != 2 {
		t.Errorf("stream/hosts = %d, want 2 (extractor says %d)", got, se.Hosts())
	}
}

// Without a registry the extractor must work exactly as before.
func TestStreamExtractorNilMetrics(t *testing.T) {
	t0 := time.Date(2010, time.June, 21, 8, 0, 0, 0, time.UTC)
	se := NewStreamExtractor(FeatureOptions{})
	r := Record{
		Src: MakeIP(128, 2, 0, 1), Dst: MakeIP(10, 0, 0, 9), SrcPort: 1, DstPort: 80,
		Proto: TCP, State: StateEstablished, Start: t0, End: t0.Add(time.Second),
		SrcPkts: 1, SrcBytes: 40,
	}
	if err := se.Add(&r); err != nil {
		t.Fatal(err)
	}
	if se.Hosts() != 1 || se.Records() != 1 {
		t.Errorf("hosts=%d records=%d, want 1/1", se.Hosts(), se.Records())
	}
}
