package label

import (
	"testing"
	"time"

	"plotters/internal/flow"
)

func TestClassifyPayload(t *testing.T) {
	tests := []struct {
		name    string
		payload []byte
		want    App
	}{
		{"empty", nil, AppUnknown},
		{"http", []byte("GET / HTTP/1.1\r\nHost: example.com"), AppUnknown},
		{"gnutella handshake", []byte("GNUTELLA CONNECT/0.6\r\n"), AppGnutella},
		{"gnutella mid-payload", []byte("xxGNUTELLA/0.6 200 OK"), AppGnutella},
		{"connect back", []byte("CONNECT BACK please"), AppGnutella},
		{"lime vendor", []byte("User-Agent: LIMEWIRE"), AppGnutella},
		{"bt handshake", append([]byte{19}, []byte("BitTorrent protocol")...), AppBitTorrent},
		{"bt scrape", []byte("GET /scrape?info_hash=xyz HTTP/1.0"), AppBitTorrent},
		{"bt announce", []byte("GET /announce?info_hash=xyz"), AppBitTorrent},
		{"bt dht query", []byte("d1:ad2:id20:abcdefghij0123456789"), AppBitTorrent},
		{"bt dht response", []byte("d1:rd2:id20:abcdefghij0123456789"), AppBitTorrent},
		{"emule udp hello", []byte{0xe3, 0x01, 0x10, 0x02}, AppEMule},
		{"emule extended", []byte{0xc5, 0x4c, 0x00}, AppEMule},
		{"emule tcp framed", []byte{0xe3, 0x55, 0x00, 0x00, 0x00, 0x01}, AppEMule},
		{"emule kad2", []byte{0xe3, 0x21, 0x99}, AppEMule},
		{"emule header only", []byte{0xe3}, AppUnknown},
		{"emule bad opcode", []byte{0xe3, 0xff, 0x00, 0x00, 0x00, 0xff}, AppUnknown},
		{"random binary", []byte{0x17, 0x03, 0x03, 0x00, 0x50}, AppUnknown},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ClassifyPayload(tt.payload); got != tt.want {
				t.Errorf("ClassifyPayload = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAppString(t *testing.T) {
	if AppGnutella.String() != "gnutella" || AppEMule.String() != "emule" ||
		AppBitTorrent.String() != "bittorrent" || AppUnknown.String() != "unknown" {
		t.Error("App names wrong")
	}
}

func mkFlow(src flow.IP, payload []byte) flow.Record {
	t0 := time.Date(2007, time.November, 5, 10, 0, 0, 0, time.UTC)
	return flow.Record{
		Src: src, Dst: flow.MakeIP(4, 4, 4, 4), SrcPort: 5000, DstPort: 6346,
		Proto: flow.TCP, Start: t0, End: t0.Add(time.Second),
		SrcPkts: 1, DstPkts: 1, SrcBytes: uint64(len(payload)), DstBytes: 10,
		State: flow.StateEstablished, Payload: payload,
	}
}

func TestLabelHosts(t *testing.T) {
	gnut := flow.MakeIP(128, 2, 0, 1)
	mixed := flow.MakeIP(128, 2, 0, 2)
	clean := flow.MakeIP(128, 2, 0, 3)
	records := []flow.Record{
		mkFlow(gnut, []byte("GNUTELLA CONNECT/0.6")),
		mkFlow(gnut, []byte("GNUTELLA/0.6 200 OK")),
		mkFlow(mixed, []byte("GET /announce?info_hash=a")),
		mkFlow(mixed, []byte("d1:ad2:id20:aaaaaaaaaaaaaaaaaaaa")),
		mkFlow(mixed, []byte("GNUTELLA CONNECT")),
		mkFlow(clean, []byte("GET / HTTP/1.1")),
	}
	labels := LabelHosts(records, nil)
	if len(labels) != 2 {
		t.Fatalf("labeled %d hosts, want 2", len(labels))
	}
	g := labels[gnut]
	if g == nil || !g.IsTrader() || g.Primary() != AppGnutella || g.MatchedFlows != 2 {
		t.Errorf("gnutella host label = %+v", g)
	}
	m := labels[mixed]
	if m == nil || m.Primary() != AppBitTorrent {
		t.Errorf("mixed host primary = %v, want bittorrent", m.Primary())
	}
	if labels[clean] != nil {
		t.Error("clean host should not be labeled")
	}
}

func TestLabelHostsFilter(t *testing.T) {
	internal := flow.MustParseSubnet("128.2.0.0/16")
	records := []flow.Record{
		mkFlow(flow.MakeIP(128, 2, 0, 1), []byte("GNUTELLA")),
		mkFlow(flow.MakeIP(9, 9, 9, 9), []byte("GNUTELLA")),
	}
	labels := LabelHosts(records, internal.Contains)
	if len(labels) != 1 {
		t.Fatalf("labeled %d hosts, want 1", len(labels))
	}
}

func TestTraders(t *testing.T) {
	a := flow.MakeIP(128, 2, 0, 1)
	b := flow.MakeIP(128, 2, 0, 2)
	records := []flow.Record{
		mkFlow(a, append([]byte{0xe3, 0x01}, []byte("hello")...)),
		mkFlow(b, []byte("plain web traffic")),
	}
	traders := Traders(records, nil)
	if !traders[a] || traders[b] {
		t.Errorf("Traders = %v", traders)
	}
}

func TestHostLabelPrimaryEmpty(t *testing.T) {
	hl := &HostLabel{Apps: map[App]int{}}
	if hl.Primary() != AppUnknown {
		t.Errorf("empty Primary = %v", hl.Primary())
	}
	if hl.IsTrader() {
		t.Error("empty label should not be a trader")
	}
}
