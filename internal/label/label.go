// Package label implements the paper's §III ground-truth rules: Traders
// are identified from the first 64 payload bytes of their flows using
// protocol signatures of the three file-sharing applications studied —
// Gnutella, eMule, and BitTorrent. The detection pipeline itself never
// reads payloads; labeling exists only to score detection results.
package label

import (
	"bytes"

	"plotters/internal/flow"
)

// App identifies a P2P file-sharing application recognized by the §III
// payload rules.
type App int

// Recognized file-sharing applications.
const (
	AppUnknown App = iota
	AppGnutella
	AppEMule
	AppBitTorrent
)

// String names the application.
func (a App) String() string {
	switch a {
	case AppGnutella:
		return "gnutella"
	case AppEMule:
		return "emule"
	case AppBitTorrent:
		return "bittorrent"
	default:
		return "unknown"
	}
}

// Gnutella protocol keywords (§III): connection handshakes, connect-back
// messages, and LimeWire vendor tags.
var gnutellaKeywords = [][]byte{
	[]byte("GNUTELLA"),
	[]byte("CONNECT BACK"),
	[]byte("LIME"),
}

// BitTorrent signatures (§III): the wire-protocol handshake string,
// tracker web requests, and DHT (bencoded KRPC) control messages.
var bitTorrentKeywords = [][]byte{
	[]byte("BitTorrent protocol"),
	[]byte("GET /scrape"),
	[]byte("GET /announce"),
	[]byte("d1:ad2:id20"),
	[]byte("d1:rd2:id20"),
}

// eMule protocol markers (Kulbak & Bickson): 0xe3 heads standard eDonkey
// messages, 0xc5 heads extended eMule messages. Known opcodes following
// the header byte (a small subset sufficient for our synthesized
// traffic): hello, hello-answer, and KAD2 request/response markers.
var emuleOpcodes = []byte{0x01, 0x4c, 0x11, 0x21, 0x29, 0x58, 0x60}

// ClassifyPayload returns the application whose §III signature matches
// the payload prefix, or AppUnknown.
func ClassifyPayload(payload []byte) App {
	if len(payload) == 0 {
		return AppUnknown
	}
	for _, kw := range gnutellaKeywords {
		if bytes.Contains(payload, kw) {
			return AppGnutella
		}
	}
	for _, kw := range bitTorrentKeywords {
		if bytes.Contains(payload, kw) {
			return AppBitTorrent
		}
	}
	if payload[0] == 0xe3 || payload[0] == 0xc5 {
		if len(payload) == 1 {
			return AppUnknown // header byte alone is too weak a signal
		}
		for _, op := range emuleOpcodes {
			// eDonkey TCP frames carry a 4-byte length between the header
			// and opcode; UDP frames put the opcode right after the
			// header. Accept either position.
			if payload[1] == op || (len(payload) >= 6 && payload[5] == op) {
				return AppEMule
			}
		}
	}
	return AppUnknown
}

// ClassifyFlow labels one flow record from its payload prefix.
func ClassifyFlow(r *flow.Record) App {
	return ClassifyPayload(r.Payload)
}

// HostLabel summarizes the ground-truth evidence for one host.
type HostLabel struct {
	Host flow.IP
	// Apps counts matching flows per application.
	Apps map[App]int
	// MatchedFlows counts flows that matched any signature.
	MatchedFlows int
}

// IsTrader reports whether any file-sharing signature matched.
func (h *HostLabel) IsTrader() bool { return h.MatchedFlows > 0 }

// Primary returns the application with the most matching flows.
func (h *HostLabel) Primary() App {
	best, bestCount := AppUnknown, 0
	for app, count := range h.Apps {
		if count > bestCount || (count == bestCount && app < best) {
			best, bestCount = app, count
		}
	}
	return best
}

// LabelHosts scans records and returns, for each initiator for which the
// optional filter is true, the ground-truth evidence gathered from its
// flows' payload prefixes. Hosts with no matching flows are omitted.
func LabelHosts(records []flow.Record, hostFilter func(flow.IP) bool) map[flow.IP]*HostLabel {
	out := make(map[flow.IP]*HostLabel)
	for i := range records {
		r := &records[i]
		if hostFilter != nil && !hostFilter(r.Src) {
			continue
		}
		app := ClassifyFlow(r)
		if app == AppUnknown {
			continue
		}
		hl, ok := out[r.Src]
		if !ok {
			hl = &HostLabel{Host: r.Src, Apps: make(map[App]int)}
			out[r.Src] = hl
		}
		hl.Apps[app]++
		hl.MatchedFlows++
	}
	return out
}

// Traders returns the set of hosts labeled as Traders.
func Traders(records []flow.Record, hostFilter func(flow.IP) bool) map[flow.IP]bool {
	labels := LabelHosts(records, hostFilter)
	out := make(map[flow.IP]bool, len(labels))
	for ip, hl := range labels {
		if hl.IsTrader() {
			out[ip] = true
		}
	}
	return out
}
