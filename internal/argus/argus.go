// Package argus implements the flow-monitor substrate the paper's data
// collection relies on: an Argus-style assembler that groups packets
// into bi-directional flow records under the RTFM flow model (RFC 2722).
// Packets sharing a 5-tuple (with source/destination swappable) become
// one record whose source is the connection initiator, with per-direction
// packet/byte counters, connection-outcome state, and the first payload
// bytes captured — exactly the fields the detection pipeline consumes.
//
// The traffic synthesizers emit flow records directly for speed; this
// package exists for completeness of the substrate (ingesting real
// packet feeds) and is exercised against the synthesizers' records in
// tests.
package argus

import (
	"container/heap"
	"fmt"
	"time"

	"plotters/internal/flow"
)

// Packet is one observed packet at the monitoring point.
type Packet struct {
	Time    time.Time
	Src     flow.IP
	Dst     flow.IP
	SrcPort uint16
	DstPort uint16
	Proto   flow.Proto
	// Bytes is the packet's wire length (headers included), as a flow
	// monitor counts.
	Bytes uint32
	// TCP control flags (ignored for UDP).
	SYN, ACK, FIN, RST bool
	// Payload is the packet's leading payload bytes, if captured.
	Payload []byte
}

// Config tunes the assembler.
type Config struct {
	// IdleTimeout expires a flow after this much inactivity; subsequent
	// packets of the same 5-tuple open a new record (Argus's flow status
	// timer).
	IdleTimeout time.Duration
	// PayloadBytes caps the captured payload prefix (Argus captures 64
	// in the paper's deployment).
	PayloadBytes int
}

// DefaultConfig mirrors the paper's Argus deployment.
func DefaultConfig() Config {
	return Config{IdleTimeout: 2 * time.Minute, PayloadBytes: flow.MaxPayload}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.IdleTimeout <= 0 {
		return fmt.Errorf("argus: IdleTimeout must be positive, got %v", c.IdleTimeout)
	}
	if c.PayloadBytes < 0 || c.PayloadBytes > flow.MaxPayload {
		return fmt.Errorf("argus: PayloadBytes %d outside [0,%d]", c.PayloadBytes, flow.MaxPayload)
	}
	return nil
}

// tupleKey identifies a conversation regardless of direction: the
// endpoints are ordered so both directions map to the same key.
type tupleKey struct {
	loIP, hiIP     flow.IP
	loPort, hiPort uint16
	proto          flow.Proto
}

func keyOf(p *Packet) tupleKey {
	if p.Src < p.Dst || (p.Src == p.Dst && p.SrcPort <= p.DstPort) {
		return tupleKey{p.Src, p.Dst, p.SrcPort, p.DstPort, p.Proto}
	}
	return tupleKey{p.Dst, p.Src, p.DstPort, p.SrcPort, p.Proto}
}

// flowState is one in-progress conversation.
type flowState struct {
	key       tupleKey
	initiator flow.IP
	initPort  uint16
	respPort  uint16
	responder flow.IP
	proto     flow.Proto
	start     time.Time
	last      time.Time
	srcPkts   uint32
	dstPkts   uint32
	srcBytes  uint64
	dstBytes  uint64
	payload   []byte

	sawSYN     bool // initiator SYN observed
	sawSYNACK  bool // responder SYN+ACK observed
	sawRST     bool
	respPkts   bool // any responder packet at all
	heapIdx    int
	generation uint64
}

// Assembler turns a time-ordered packet stream into flow records.
type Assembler struct {
	cfg        Config
	emit       func(flow.Record)
	flows      map[tupleKey]*flowState
	expiry     expiryHeap
	lastSeen   time.Time
	started    bool
	generation uint64
}

// New creates an assembler; emit receives each completed record.
func New(cfg Config, emit func(flow.Record)) (*Assembler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if emit == nil {
		return nil, fmt.Errorf("argus: emit callback required")
	}
	return &Assembler{cfg: cfg, emit: emit, flows: make(map[tupleKey]*flowState)}, nil
}

// Observe folds one packet into the flow table. Packets must arrive in
// non-decreasing time order (a flow monitor sees them that way).
func (a *Assembler) Observe(p Packet) error {
	if a.started && p.Time.Before(a.lastSeen) {
		return fmt.Errorf("argus: packet at %v precedes %v; stream must be time-ordered", p.Time, a.lastSeen)
	}
	if p.Proto != flow.TCP && p.Proto != flow.UDP && p.Proto != flow.ICMP {
		return fmt.Errorf("argus: unsupported protocol %d", p.Proto)
	}
	a.lastSeen = p.Time
	a.started = true
	a.expireBefore(p.Time)

	key := keyOf(&p)
	st, ok := a.flows[key]
	if !ok {
		st = a.open(key, &p)
	}
	a.update(st, &p)
	return nil
}

// open starts a new flow; the first packet's sender is the initiator
// (for TCP, a bare SYN is authoritative).
func (a *Assembler) open(key tupleKey, p *Packet) *flowState {
	a.generation++
	st := &flowState{
		key:        key,
		initiator:  p.Src,
		initPort:   p.SrcPort,
		responder:  p.Dst,
		respPort:   p.DstPort,
		proto:      p.Proto,
		start:      p.Time,
		last:       p.Time,
		generation: a.generation,
	}
	a.flows[key] = st
	heap.Push(&a.expiry, st)
	return st
}

// update folds a packet into its flow.
func (a *Assembler) update(st *flowState, p *Packet) {
	st.last = p.Time
	a.expiry.fix(st)
	fromInitiator := p.Src == st.initiator && p.SrcPort == st.initPort
	if fromInitiator {
		st.srcPkts++
		st.srcBytes += uint64(p.Bytes)
		if len(st.payload) < a.cfg.PayloadBytes && len(p.Payload) > 0 {
			room := a.cfg.PayloadBytes - len(st.payload)
			if room > len(p.Payload) {
				room = len(p.Payload)
			}
			st.payload = append(st.payload, p.Payload[:room]...)
		}
		if p.SYN && !p.ACK {
			st.sawSYN = true
		}
	} else {
		st.dstPkts++
		st.dstBytes += uint64(p.Bytes)
		st.respPkts = true
		if p.SYN && p.ACK {
			st.sawSYNACK = true
		}
	}
	if p.RST {
		st.sawRST = true
	}
}

// expireBefore emits every flow idle since before now−IdleTimeout.
func (a *Assembler) expireBefore(now time.Time) {
	deadline := now.Add(-a.cfg.IdleTimeout)
	for len(a.expiry) > 0 {
		oldest := a.expiry[0]
		if oldest.last.After(deadline) {
			return
		}
		heap.Pop(&a.expiry)
		delete(a.flows, oldest.key)
		a.emit(a.record(oldest))
	}
}

// Flush expires every outstanding flow (end of capture).
func (a *Assembler) Flush() {
	for len(a.expiry) > 0 {
		st := heap.Pop(&a.expiry).(*flowState)
		delete(a.flows, st.key)
		a.emit(a.record(st))
	}
}

// Open returns the number of in-progress flows.
func (a *Assembler) Open() int { return len(a.flows) }

// record converts a finished flow state into a Record. Outcome: a TCP
// conversation is established once the responder completed the handshake
// (or sent data); a reset or unanswered attempt is failed. A UDP exchange
// is established once the responder answered.
func (a *Assembler) record(st *flowState) flow.Record {
	state := flow.StateFailed
	switch st.proto {
	case flow.TCP:
		if st.sawSYNACK || (st.respPkts && !st.sawRST) {
			state = flow.StateEstablished
		}
	default:
		if st.respPkts {
			state = flow.StateEstablished
		}
	}
	return flow.Record{
		Src:      st.initiator,
		Dst:      st.responder,
		SrcPort:  st.initPort,
		DstPort:  st.respPort,
		Proto:    st.proto,
		Start:    st.start,
		End:      st.last,
		SrcPkts:  st.srcPkts,
		DstPkts:  st.dstPkts,
		SrcBytes: st.srcBytes,
		DstBytes: st.dstBytes,
		State:    state,
		Payload:  st.payload,
	}
}

// expiryHeap orders open flows by last activity so expiry is O(log n).
type expiryHeap []*flowState

func (h expiryHeap) Len() int { return len(h) }

func (h expiryHeap) Less(i, j int) bool {
	if !h[i].last.Equal(h[j].last) {
		return h[i].last.Before(h[j].last)
	}
	return h[i].generation < h[j].generation
}

func (h expiryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

func (h *expiryHeap) Push(x any) {
	st := x.(*flowState)
	st.heapIdx = len(*h)
	*h = append(*h, st)
}

func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	st := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return st
}

// fix restores heap order after a flow's last-activity time advanced.
func (h *expiryHeap) fix(st *flowState) {
	heap.Fix(h, st.heapIdx)
}
