package argus

import (
	"math/rand"
	"testing"
	"time"

	"plotters/internal/flow"
)

func t0() time.Time {
	return time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
}

// collector gathers emitted records.
type collector struct {
	records []flow.Record
}

func (c *collector) emit(r flow.Record) { c.records = append(c.records, r) }

func newAssembler(t *testing.T) (*Assembler, *collector) {
	t.Helper()
	var c collector
	a, err := New(DefaultConfig(), c.emit)
	if err != nil {
		t.Fatal(err)
	}
	// Re-bind emit to the collector (closure over &c).
	a.emit = c.emit
	return a, &c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{IdleTimeout: 0, PayloadBytes: 10},
		{IdleTimeout: time.Minute, PayloadBytes: -1},
		{IdleTimeout: time.Minute, PayloadBytes: flow.MaxPayload + 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Error("nil emit accepted")
	}
}

// tcpConversation emits a full handshake + data exchange.
func tcpConversation(a *Assembler, t *testing.T, start time.Time, cli, srv flow.IP, cliPort, srvPort uint16, payload []byte) {
	t.Helper()
	pkts := []Packet{
		{Time: start, Src: cli, Dst: srv, SrcPort: cliPort, DstPort: srvPort, Proto: flow.TCP, Bytes: 60, SYN: true},
		{Time: start.Add(10 * time.Millisecond), Src: srv, Dst: cli, SrcPort: srvPort, DstPort: cliPort, Proto: flow.TCP, Bytes: 60, SYN: true, ACK: true},
		{Time: start.Add(20 * time.Millisecond), Src: cli, Dst: srv, SrcPort: cliPort, DstPort: srvPort, Proto: flow.TCP, Bytes: 40, ACK: true},
		{Time: start.Add(30 * time.Millisecond), Src: cli, Dst: srv, SrcPort: cliPort, DstPort: srvPort, Proto: flow.TCP, Bytes: 500, ACK: true, Payload: payload},
		{Time: start.Add(40 * time.Millisecond), Src: srv, Dst: cli, SrcPort: srvPort, DstPort: cliPort, Proto: flow.TCP, Bytes: 1500, ACK: true},
		{Time: start.Add(50 * time.Millisecond), Src: cli, Dst: srv, SrcPort: cliPort, DstPort: srvPort, Proto: flow.TCP, Bytes: 40, FIN: true, ACK: true},
	}
	for _, p := range pkts {
		if err := a.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPEstablished(t *testing.T) {
	a, c := newAssembler(t)
	tcpConversation(a, t, t0(), 1, 2, 40000, 80, []byte("GET / HTTP/1.1"))
	a.Flush()
	if len(c.records) != 1 {
		t.Fatalf("records = %d", len(c.records))
	}
	r := c.records[0]
	if r.State != flow.StateEstablished {
		t.Error("handshake conversation not established")
	}
	if r.Src != 1 || r.Dst != 2 || r.SrcPort != 40000 || r.DstPort != 80 {
		t.Errorf("direction wrong: %v", &r)
	}
	if r.SrcPkts != 4 || r.DstPkts != 2 {
		t.Errorf("pkts = %d/%d, want 4/2", r.SrcPkts, r.DstPkts)
	}
	if r.SrcBytes != 640 || r.DstBytes != 1560 {
		t.Errorf("bytes = %d/%d, want 640/1560", r.SrcBytes, r.DstBytes)
	}
	if string(r.Payload) != "GET / HTTP/1.1" {
		t.Errorf("payload = %q", r.Payload)
	}
	if err := r.Validate(); err != nil {
		t.Errorf("invalid record: %v", err)
	}
}

func TestTCPFailedSYNOnly(t *testing.T) {
	a, c := newAssembler(t)
	for i := 0; i < 3; i++ {
		err := a.Observe(Packet{
			Time: t0().Add(time.Duration(i) * time.Second),
			Src:  1, Dst: 2, SrcPort: 40000, DstPort: 80, Proto: flow.TCP, Bytes: 60, SYN: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	if len(c.records) != 1 {
		t.Fatalf("records = %d", len(c.records))
	}
	r := c.records[0]
	if r.State != flow.StateFailed {
		t.Error("unanswered SYNs not failed")
	}
	if r.SrcPkts != 3 || r.DstPkts != 0 || r.SrcBytes != 180 {
		t.Errorf("counters = %d/%d %d bytes", r.SrcPkts, r.DstPkts, r.SrcBytes)
	}
}

func TestTCPReset(t *testing.T) {
	a, c := newAssembler(t)
	pkts := []Packet{
		{Time: t0(), Src: 1, Dst: 2, SrcPort: 40000, DstPort: 80, Proto: flow.TCP, Bytes: 60, SYN: true},
		{Time: t0().Add(time.Millisecond), Src: 2, Dst: 1, SrcPort: 80, DstPort: 40000, Proto: flow.TCP, Bytes: 40, RST: true},
	}
	for _, p := range pkts {
		if err := a.Observe(p); err != nil {
			t.Fatal(err)
		}
	}
	a.Flush()
	if c.records[0].State != flow.StateFailed {
		t.Error("refused connection not failed")
	}
}

func TestUDPExchange(t *testing.T) {
	a, c := newAssembler(t)
	// Answered query: established.
	if err := a.Observe(Packet{Time: t0(), Src: 1, Dst: 2, SrcPort: 5000, DstPort: 53, Proto: flow.UDP, Bytes: 76, Payload: []byte{0xe3, 0x01}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(Packet{Time: t0().Add(5 * time.Millisecond), Src: 2, Dst: 1, SrcPort: 53, DstPort: 5000, Proto: flow.UDP, Bytes: 200}); err != nil {
		t.Fatal(err)
	}
	// Unanswered query to another host: failed.
	if err := a.Observe(Packet{Time: t0().Add(time.Second), Src: 1, Dst: 3, SrcPort: 5001, DstPort: 7871, Proto: flow.UDP, Bytes: 90}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if len(c.records) != 2 {
		t.Fatalf("records = %d", len(c.records))
	}
	var answered, silent *flow.Record
	for i := range c.records {
		if c.records[i].Dst == 2 {
			answered = &c.records[i]
		} else {
			silent = &c.records[i]
		}
	}
	if answered == nil || answered.State != flow.StateEstablished {
		t.Error("answered UDP not established")
	}
	if silent == nil || silent.State != flow.StateFailed {
		t.Error("unanswered UDP not failed")
	}
	if string(answered.Payload) != string([]byte{0xe3, 0x01}) {
		t.Errorf("payload = %v", answered.Payload)
	}
}

func TestIdleTimeoutSplitsFlows(t *testing.T) {
	var c collector
	cfg := DefaultConfig()
	cfg.IdleTimeout = 30 * time.Second
	a, err := New(cfg, c.emit)
	if err != nil {
		t.Fatal(err)
	}
	a.emit = c.emit
	send := func(at time.Time) {
		if err := a.Observe(Packet{Time: at, Src: 1, Dst: 2, SrcPort: 5000, DstPort: 8, Proto: flow.TCP, Bytes: 100, SYN: true}); err != nil {
			t.Fatal(err)
		}
		if err := a.Observe(Packet{Time: at.Add(time.Millisecond), Src: 2, Dst: 1, SrcPort: 8, DstPort: 5000, Proto: flow.TCP, Bytes: 100, SYN: true, ACK: true}); err != nil {
			t.Fatal(err)
		}
	}
	send(t0())
	send(t0().Add(5 * time.Minute)) // far past the idle timeout
	a.Flush()
	if len(c.records) != 2 {
		t.Fatalf("records = %d, want 2 (idle split)", len(c.records))
	}
	if !c.records[0].End.Before(c.records[1].Start) {
		t.Error("split flows overlap")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	a, _ := newAssembler(t)
	if err := a.Observe(Packet{Time: t0(), Src: 1, Dst: 2, Proto: flow.UDP, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(Packet{Time: t0().Add(-time.Second), Src: 1, Dst: 2, Proto: flow.UDP, Bytes: 10}); err == nil {
		t.Error("out-of-order packet accepted")
	}
	if err := a.Observe(Packet{Time: t0(), Src: 1, Dst: 2, Proto: 99, Bytes: 10}); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestPayloadCap(t *testing.T) {
	a, c := newAssembler(t)
	big := make([]byte, 50)
	for i := range big {
		big[i] = byte(i)
	}
	at := t0()
	for i := 0; i < 3; i++ {
		if err := a.Observe(Packet{Time: at, Src: 1, Dst: 2, SrcPort: 1, DstPort: 2, Proto: flow.UDP, Bytes: 100, Payload: big}); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Second)
	}
	a.Flush()
	if got := len(c.records[0].Payload); got != flow.MaxPayload {
		t.Errorf("payload = %d bytes, want capped at %d", got, flow.MaxPayload)
	}
}

// Property: interleaved conversations assemble into per-flow totals that
// match what was sent, regardless of interleaving.
func TestInterleavedConversations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var c collector
	a, err := New(DefaultConfig(), c.emit)
	if err != nil {
		t.Fatal(err)
	}
	a.emit = c.emit

	const convs = 30
	type conv struct {
		cli, srv         flow.IP
		cliPort          uint16
		sentUp, sentDown uint64
		pktsUp, pktsDown uint32
	}
	cs := make([]conv, convs)
	for i := range cs {
		cs[i] = conv{cli: flow.IP(100 + i), srv: flow.IP(200 + i%5), cliPort: uint16(10000 + i)}
	}
	at := t0()
	for step := 0; step < 2000; step++ {
		i := rng.Intn(convs)
		c := &cs[i]
		up := rng.Intn(2) == 0
		bytes := uint32(40 + rng.Intn(1400))
		p := Packet{Time: at, Proto: flow.TCP, Bytes: bytes, ACK: true}
		if up {
			p.Src, p.Dst, p.SrcPort, p.DstPort = c.cli, c.srv, c.cliPort, 80
			c.sentUp += uint64(bytes)
			c.pktsUp++
		} else {
			p.Src, p.Dst, p.SrcPort, p.DstPort = c.srv, c.cli, 80, c.cliPort
			c.sentDown += uint64(bytes)
			c.pktsDown++
		}
		if err := a.Observe(p); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Duration(rng.Intn(50)) * time.Millisecond)
	}
	a.Flush()
	// Aggregate per conversation (idle splits merge back in totals).
	type totals struct {
		up, down   uint64
		pUp, pDown uint32
	}
	got := make(map[flow.IP]*totals)
	for _, r := range c.records {
		key := r.Src
		swap := false
		if r.Src >= 200 { // responder opened the record (first packet was downstream)
			key = r.Dst
			swap = true
		}
		tt := got[key]
		if tt == nil {
			tt = &totals{}
			got[key] = tt
		}
		if swap {
			tt.up += r.DstBytes
			tt.down += r.SrcBytes
			tt.pUp += r.DstPkts
			tt.pDown += r.SrcPkts
		} else {
			tt.up += r.SrcBytes
			tt.down += r.DstBytes
			tt.pUp += r.SrcPkts
			tt.pDown += r.DstPkts
		}
	}
	for _, cv := range cs {
		tt := got[cv.cli]
		if tt == nil {
			if cv.pktsUp+cv.pktsDown > 0 {
				t.Fatalf("conversation %v missing", cv.cli)
			}
			continue
		}
		if tt.up != cv.sentUp || tt.down != cv.sentDown || tt.pUp != cv.pktsUp || tt.pDown != cv.pktsDown {
			t.Fatalf("conversation %v totals mismatch: got %+v want up=%d down=%d pUp=%d pDown=%d",
				cv.cli, tt, cv.sentUp, cv.sentDown, cv.pktsUp, cv.pktsDown)
		}
	}
}

func TestOpenCount(t *testing.T) {
	a, _ := newAssembler(t)
	if a.Open() != 0 {
		t.Error("fresh assembler has open flows")
	}
	if err := a.Observe(Packet{Time: t0(), Src: 1, Dst: 2, Proto: flow.UDP, Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	if a.Open() != 1 {
		t.Errorf("open = %d", a.Open())
	}
	a.Flush()
	if a.Open() != 0 {
		t.Error("flush left open flows")
	}
}

func BenchmarkAssembler(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	pkts := make([]Packet, 50_000)
	at := t0()
	for i := range pkts {
		pkts[i] = Packet{
			Time: at, Src: flow.IP(rng.Intn(200)), Dst: flow.IP(1000 + rng.Intn(500)),
			SrcPort: uint16(1024 + rng.Intn(60000)), DstPort: 80,
			Proto: flow.TCP, Bytes: uint32(40 + rng.Intn(1400)), ACK: true,
		}
		at = at.Add(time.Duration(rng.Intn(10)) * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := New(DefaultConfig(), func(flow.Record) {})
		if err != nil {
			b.Fatal(err)
		}
		for j := range pkts {
			if err := a.Observe(pkts[j]); err != nil {
				b.Fatal(err)
			}
		}
		a.Flush()
	}
}

func TestICMPFlow(t *testing.T) {
	a, c := newAssembler(t)
	// Echo request/reply pair: ICMP uses the UDP-style outcome rule.
	if err := a.Observe(Packet{Time: t0(), Src: 1, Dst: 2, Proto: flow.ICMP, Bytes: 84}); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(Packet{Time: t0().Add(time.Millisecond), Src: 2, Dst: 1, Proto: flow.ICMP, Bytes: 84}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if len(c.records) != 1 || c.records[0].State != flow.StateEstablished {
		t.Errorf("ICMP exchange = %+v", c.records)
	}
}

func TestEmittedRecordsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var c collector
	a, err := New(DefaultConfig(), c.emit)
	if err != nil {
		t.Fatal(err)
	}
	a.emit = c.emit
	at := t0()
	for i := 0; i < 5000; i++ {
		p := Packet{
			Time: at, Src: flow.IP(rng.Intn(50)), Dst: flow.IP(100 + rng.Intn(50)),
			SrcPort: uint16(rng.Intn(3)), DstPort: uint16(rng.Intn(3)),
			Proto: []flow.Proto{flow.TCP, flow.UDP}[rng.Intn(2)],
			Bytes: uint32(40 + rng.Intn(1000)),
			SYN:   rng.Intn(3) == 0, ACK: rng.Intn(2) == 0, RST: rng.Intn(20) == 0,
		}
		if err := a.Observe(p); err != nil {
			t.Fatal(err)
		}
		at = at.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
	}
	a.Flush()
	for i := range c.records {
		if err := c.records[i].Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
	}
	if len(c.records) == 0 {
		t.Fatal("no records assembled")
	}
}
