package checkpoint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"plotters/internal/checkpoint"
	"plotters/internal/engine"
)

// A decoded snapshot must re-encode to the exact bytes it came from —
// the serialization is canonical, which is what makes "bit-identical
// recovery" a checkable property rather than a slogan.
func TestSnapshotEncodeDecodeCanonical(t *testing.T) {
	snap := populatedSnapshot(t)
	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 100 {
		t.Fatalf("suspiciously small snapshot: %d bytes", len(data))
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	again, err := checkpoint.Encode(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("decode/encode is not canonical: %d bytes vs %d", len(data), len(again))
	}
	if decoded.Meta != snap.Meta {
		t.Fatalf("meta round trip: got %+v want %+v", decoded.Meta, snap.Meta)
	}
	if len(decoded.Exporters) != len(snap.Exporters) {
		t.Fatalf("exporter round trip: got %d want %d", len(decoded.Exporters), len(snap.Exporters))
	}
	for i, x := range snap.Exporters {
		if decoded.Exporters[i] != x {
			t.Errorf("exporter %d: got %+v want %+v", i, decoded.Exporters[i], x)
		}
	}
}

// A restored snapshot must pass back through the live engine unchanged:
// restore into a fresh engine, snapshot again, compare bytes.
func TestSnapshotRestoreIsTransparent(t *testing.T) {
	snap := populatedSnapshot(t)
	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	eng := newTestEngine(t, nil)
	if err := snap.RestoreEngine(eng); err != nil {
		t.Fatal(err)
	}
	resnap := &checkpoint.Snapshot{Meta: snap.Meta, Engine: eng.State(), Exporters: snap.Exporters}
	again, err := checkpoint.Encode(resnap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("snapshot changed across a restore/re-snapshot cycle")
	}
}

// Write must commit atomically and leave no temp file behind; Read must
// return the committed bytes.
func TestSnapshotWriteRead(t *testing.T) {
	snap := populatedSnapshot(t)
	dir := t.TempDir()
	path := filepath.Join(dir, checkpoint.SnapshotFile)
	n, err := checkpoint.Write(path, snap)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != n {
		t.Fatalf("Write reported %d bytes, file has %d", n, fi.Size())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("state dir has %d entries after Write, want just the snapshot", len(entries))
	}
	got, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := checkpoint.Encode(snap)
	have, _ := checkpoint.Encode(got)
	if !bytes.Equal(want, have) {
		t.Fatal("Read returned different state than Write persisted")
	}
}

// Every single-bit corruption of a snapshot must be detected: the CRCs
// cover the payloads and the frame fields fail structurally. Silently
// loading corrupt state is the one unforgivable failure mode.
func TestSnapshotDecodeDetectsBitFlips(t *testing.T) {
	snap := populatedSnapshot(t)
	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Stride through the file (every position on small files would be
	// slow in -race CI runs); the stride is coprime with all the frame
	// sizes so every region gets hit.
	stride := 7
	if testing.Short() {
		stride = 101
	}
	for pos := 0; pos < len(data); pos += stride {
		for _, bit := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), data...)
			mut[pos] ^= bit
			if _, err := checkpoint.Decode(mut); err == nil {
				t.Fatalf("flipping bit %#x at offset %d went undetected", bit, pos)
			}
		}
	}
}

// Every truncation of a snapshot must be detected.
func TestSnapshotDecodeDetectsTruncation(t *testing.T) {
	snap := populatedSnapshot(t)
	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 13 {
		if _, err := checkpoint.Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes went undetected", n, len(data))
		}
	}
	if _, err := checkpoint.Decode(data[:len(data)-1]); err == nil {
		t.Fatal("truncation by one byte went undetected")
	}
}

// Garbage that is not a snapshot at all must fail with ErrNotSnapshot.
func TestSnapshotDecodeGarbage(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		{},
		[]byte("PCK"),
		[]byte("not a snapshot at all, just some text"),
		bytes.Repeat([]byte{0xff}, 4096),
	} {
		if _, err := checkpoint.Decode(data); err == nil {
			t.Fatalf("garbage input %q decoded without error", data)
		}
	}
}

// A snapshot from a mismatched configuration must refuse to restore,
// naming the offending knob.
func TestSnapshotRestoreConfigMismatch(t *testing.T) {
	snap := populatedSnapshot(t)
	cfg := testEngineConfig()
	cfg.Shards = 5
	eng, err := engine.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = snap.RestoreEngine(eng)
	if err == nil {
		t.Fatal("restore into a 5-shard engine did not fail")
	}
	if want := "shard count"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("mismatch error %q does not name %q", err, want)
	}
}
