// Package checkpoint persists the live detection pipeline's state so a
// crashed or restarted process resumes exactly where it stopped. Two
// artifacts cooperate:
//
//   - a snapshot: one versioned binary file holding a complete
//     engine.State (window bookkeeping, sharded feature store, pane
//     ring), the collector's per-exporter sequence state, and a
//     metadata section that pins the configuration the state depends
//     on. Snapshots commit atomically (write temp, fsync, rename).
//   - a write-ahead log: every record appended to the engine is first
//     framed into the WAL. Recovery restores the newest snapshot and
//     replays the frames past it, so the rebuilt engine has seen the
//     exact record sequence the dead one had — windows seal on the
//     same boundaries with the same contents, bit for bit.
//
// The format is deliberately paranoid about its inputs: every section
// carries a CRC32, every count is validated before allocation, and an
// unknown version or section id is a descriptive error, never a guess.
// A corrupt or half-written file must cost an error message, not a
// silently wrong detector.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"plotters/internal/collector"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/flowio"
	"plotters/internal/wire"
)

// snapshotMagic identifies a snapshot file; the version that follows it
// is bumped on any layout change.
var snapshotMagic = [4]byte{'P', 'C', 'K', 'P'}

const snapshotVersion = 1

// Section ids. New sections get new ids; readers reject ids they do not
// know rather than skip them, because every section written today is
// load-bearing for bit-identical recovery and a future section will be
// too.
const (
	secMeta      = 1
	secEngine    = 2
	secExporters = 3
)

// Minimum encoded sizes, used to bound allocations when decoding
// element counts (see decoder.count).
const (
	minHostTime    = 4 + 9               // address + flagged time
	minHostState   = 4 + 6*8 + 2*9 + 3*4 // host, six counters, two times, three counts
	minStreamState = 3*9 + 8 + 8 + 3*4   // three times, count, seq, three counts
	minPending     = 55 + 8              // record header + seq
	minExporter    = 2 + 2 + 2*(1+4)     // name len, engine, two seen/next pairs
)

// ErrNotSnapshot is returned when a file does not begin with the
// snapshot magic.
var ErrNotSnapshot = errors.New("checkpoint: not a checkpoint snapshot (bad magic)")

// Meta pins everything a snapshot's state silently depends on: when and
// at which WAL position it was taken, and the configuration fingerprint
// (window geometry, skew, shard count, churn grace, feature flags) that
// must match the restoring engine. Restoring under a different
// configuration would not fail loudly on its own — features would just
// accumulate differently — so RestoreEngine checks every field.
type Meta struct {
	// Created is when the snapshot was taken.
	Created time.Time
	// WALSeq is the last WAL sequence number whose record is already
	// reflected in the snapshotted state. Recovery replays only frames
	// with greater sequence numbers, which makes a crash between
	// snapshot commit and WAL rotation harmless.
	WALSeq uint64
	// Window, Slide, MaxSkew, Grace, Shards, CarryFirstSeen, and
	// DropLate fingerprint the engine configuration. Shards is the
	// resolved count (never 0): the shard hash is deterministic, so an
	// equal count restores every host to the shard that accumulated it.
	Window         time.Duration
	Slide          time.Duration
	MaxSkew        time.Duration
	Grace          time.Duration
	Shards         int
	CarryFirstSeen bool
	DropLate       bool
}

// Snapshot is the decoded form of one checkpoint file.
type Snapshot struct {
	Meta Meta
	// Engine is the complete detector state.
	Engine *engine.State
	// Exporters is the collector's per-exporter sequence accounting
	// (empty when no collector is attached).
	Exporters []collector.SequenceState
}

// EngineMeta derives the configuration fingerprint of a live engine —
// the Meta fields a snapshot of it would carry (Created and WALSeq are
// zero; the caller stamps those).
func EngineMeta(eng *engine.WindowedDetector) Meta {
	cfg := eng.Config()
	grace := cfg.Core.NewPeerGrace
	if grace <= 0 {
		grace = flow.DefaultNewPeerGrace
	}
	return Meta{
		Window:         cfg.Window,
		Slide:          cfg.Slide,
		MaxSkew:        cfg.MaxSkew,
		Grace:          grace,
		Shards:         eng.Store().Shards(),
		CarryFirstSeen: cfg.CarryFirstSeen,
		DropLate:       cfg.DropLate,
	}
}

// checkCompatible compares the snapshot fingerprint m against a live
// engine's, naming the first mismatched knob.
func (m Meta) checkCompatible(cur Meta) error {
	mismatches := []struct {
		name      string
		snap, now any
	}{
		{"window", m.Window, cur.Window},
		{"slide", m.Slide, cur.Slide},
		{"max-skew", m.MaxSkew, cur.MaxSkew},
		{"new-peer grace", m.Grace, cur.Grace},
		{"shard count", m.Shards, cur.Shards},
		{"carry-first-seen", m.CarryFirstSeen, cur.CarryFirstSeen},
		{"drop-late", m.DropLate, cur.DropLate},
	}
	for _, f := range mismatches {
		if f.snap != f.now {
			return fmt.Errorf("checkpoint: snapshot was taken with %s %v but this engine is configured with %v — restore requires the snapshotted configuration",
				f.name, f.snap, f.now)
		}
	}
	return nil
}

// RestoreEngine verifies the snapshot's configuration fingerprint
// against eng and restores its state. eng must be freshly constructed.
func (s *Snapshot) RestoreEngine(eng *engine.WindowedDetector) error {
	if s.Engine == nil {
		return fmt.Errorf("checkpoint: snapshot carries no engine state")
	}
	if err := s.Meta.checkCompatible(EngineMeta(eng)); err != nil {
		return err
	}
	return eng.RestoreState(s.Engine)
}

// Encode serializes the snapshot: magic, version, then framed sections
// (id, length, payload, CRC32 of the payload).
func Encode(s *Snapshot) ([]byte, error) {
	if s.Engine == nil || s.Engine.Store == nil {
		return nil, fmt.Errorf("checkpoint: refusing to encode a snapshot without engine store state")
	}
	var e wire.Encoder
	e.Raw(snapshotMagic[:])
	e.U16(snapshotVersion)
	wire.AppendFrame(&e, secMeta, encodeMeta(s.Meta))
	wire.AppendFrame(&e, secEngine, encodeEngineState(s.Engine))
	if len(s.Exporters) > 0 {
		wire.AppendFrame(&e, secExporters, encodeExporters(s.Exporters))
	}
	return e.Bytes(), nil
}

// Decode parses a snapshot produced by Encode. Any deviation — wrong
// magic, a version or section id from a future build, a failed CRC, a
// truncation, an implausible count — is an error; Decode never returns
// a partially populated snapshot.
func Decode(data []byte) (*Snapshot, error) {
	d := wire.NewDecoder(data)
	magic := d.Take(4)
	if d.Err() != nil || string(magic) != string(snapshotMagic[:]) {
		return nil, ErrNotSnapshot
	}
	version := d.U16()
	if d.Err() != nil {
		return nil, fmt.Errorf("checkpoint: snapshot truncated before version field")
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("checkpoint: snapshot version %d is not supported by this build (understands up to %d) — refusing to guess at its layout",
			version, snapshotVersion)
	}
	snap := &Snapshot{}
	seen := make(map[uint16]bool)
	for d.Remaining() > 0 {
		id := d.U16()
		n := int(d.U32())
		payload := d.Take(n)
		crc := d.U32()
		if d.Err() != nil {
			return nil, fmt.Errorf("checkpoint: snapshot truncated inside section frame: %w", d.Err())
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("checkpoint: section %d failed its CRC check — the snapshot is corrupt", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("checkpoint: duplicate section %d", id)
		}
		seen[id] = true
		sd := wire.NewDecoder(payload)
		switch id {
		case secMeta:
			snap.Meta = decodeMeta(sd)
		case secEngine:
			snap.Engine = decodeEngineState(sd)
		case secExporters:
			snap.Exporters = decodeExporters(sd)
		default:
			return nil, fmt.Errorf("checkpoint: unknown section id %d — the snapshot was written by a newer build and this one cannot load it without losing state",
				id)
		}
		if sd.Err() != nil {
			return nil, fmt.Errorf("checkpoint: section %d: %w", id, sd.Err())
		}
		if sd.Remaining() != 0 {
			return nil, fmt.Errorf("checkpoint: section %d carries %d undecoded trailing bytes", id, sd.Remaining())
		}
	}
	if !seen[secMeta] || !seen[secEngine] {
		return nil, fmt.Errorf("checkpoint: snapshot is missing required sections (meta and engine state)")
	}
	return snap, nil
}

// Write encodes the snapshot and commits it to path atomically: the
// bytes go to a temporary file in the same directory, are fsynced,
// and replace path with a rename; the directory is then fsynced so
// the rename itself is durable. A reader (or a crash) never observes
// a half-written snapshot. Returns the encoded size.
func Write(path string, s *Snapshot) (int64, error) {
	data, err := Encode(s)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("checkpoint: creating snapshot temp file: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: closing snapshot temp file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("checkpoint: committing snapshot: %w", err)
	}
	if df, err := os.Open(dir); err == nil {
		df.Sync()
		df.Close()
	}
	return int64(len(data)), nil
}

// Read loads and decodes the snapshot at path.
func Read(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// --- section codecs ---

func encodeMeta(m Meta) []byte {
	var e wire.Encoder
	e.Time(m.Created)
	e.U64(m.WALSeq)
	e.Dur(m.Window)
	e.Dur(m.Slide)
	e.Dur(m.MaxSkew)
	e.Dur(m.Grace)
	e.U32(uint32(m.Shards))
	e.Bool(m.CarryFirstSeen)
	e.Bool(m.DropLate)
	return e.Bytes()
}

func decodeMeta(d *wire.Decoder) Meta {
	return Meta{
		Created:        d.Time(),
		WALSeq:         d.U64(),
		Window:         d.Dur(),
		Slide:          d.Dur(),
		MaxSkew:        d.Dur(),
		Grace:          d.Dur(),
		Shards:         int(d.U32()),
		CarryFirstSeen: d.Bool(),
		DropLate:       d.Bool(),
	}
}

func encodeEngineState(st *engine.State) []byte {
	var e wire.Encoder
	e.Bool(st.Started)
	e.Time(st.Origin)
	e.Time(st.Frontier)
	e.I64(int64(st.PaneIdx))
	e.I64(int64(st.Emitted))
	e.I64(int64(st.Dropped))
	e.U32(uint32(len(st.Store.Shards)))
	for i := range st.Store.Shards {
		encodeStreamState(&e, &st.Store.Shards[i])
	}
	e.U32(uint32(len(st.Recent)))
	for _, ps := range st.Recent {
		if ps == nil {
			e.Bool(false)
			continue
		}
		e.Bool(true)
		e.Time(ps.Window.From)
		e.Time(ps.Window.To)
		encodeHostList(&e, ps.Hosts)
	}
	return e.Bytes()
}

func decodeEngineState(d *wire.Decoder) *engine.State {
	st := &engine.State{
		Started:  d.Bool(),
		Origin:   d.Time(),
		Frontier: d.Time(),
		PaneIdx:  int(d.I64()),
		Emitted:  int(d.I64()),
		Dropped:  int(d.I64()),
	}
	shards := d.Count(minStreamState)
	store := &flow.ShardedState{Shards: make([]flow.StreamState, shards)}
	for i := range store.Shards {
		decodeStreamState(d, &store.Shards[i])
		if d.Err() != nil {
			return st
		}
	}
	st.Store = store
	recent := d.Count(1)
	for i := 0; i < recent && d.Err() == nil; i++ {
		if !d.Bool() {
			st.Recent = append(st.Recent, nil)
			continue
		}
		ps := &flow.PaneState{}
		ps.Window.From = d.Time()
		ps.Window.To = d.Time()
		ps.Hosts = decodeHostList(d)
		st.Recent = append(st.Recent, ps)
	}
	return st
}

func encodeStreamState(e *wire.Encoder, st *flow.StreamState) {
	e.Time(st.First)
	e.Time(st.Frontier)
	e.Time(st.Released)
	e.I64(int64(st.Count))
	e.U64(st.Seq)
	encodeHostList(e, st.Hosts)
	encodeHostTimes(e, st.Anchors)
	e.U32(uint32(len(st.Pending)))
	for i := range st.Pending {
		e.Splice(func(b []byte) []byte { return flowio.AppendRecord(b, &st.Pending[i].Rec) })
		e.U64(st.Pending[i].Seq)
	}
}

func decodeStreamState(d *wire.Decoder, st *flow.StreamState) {
	st.First = d.Time()
	st.Frontier = d.Time()
	st.Released = d.Time()
	st.Count = int(d.I64())
	st.Seq = d.U64()
	st.Hosts = decodeHostList(d)
	st.Anchors = decodeHostTimes(d)
	pending := d.Count(minPending)
	if d.Err() != nil || pending == 0 {
		return
	}
	st.Pending = make([]flow.PendingState, pending)
	for i := range st.Pending {
		if d.Err() != nil {
			return
		}
		rec, used, err := flowio.DecodeRecord(d.Rest())
		if err != nil {
			d.Fail("checkpoint: pending record %d: %v", i, err)
			return
		}
		d.Take(used)
		st.Pending[i] = flow.PendingState{Rec: rec, Seq: d.U64()}
	}
}

func encodeHostList(e *wire.Encoder, hosts []flow.HostState) {
	e.U32(uint32(len(hosts)))
	for i := range hosts {
		h := &hosts[i]
		f := &h.Feats
		e.U32(uint32(f.Host))
		e.I64(int64(f.Flows))
		e.I64(int64(f.SuccessfulFlows))
		e.I64(int64(f.FailedFlows))
		e.U64(f.BytesUploaded)
		e.I64(int64(f.Peers))
		e.I64(int64(f.NewPeers))
		e.Time(f.FirstSeen)
		e.Time(f.LastSeen)
		e.U32(uint32(len(f.Interstitials)))
		for _, v := range f.Interstitials {
			e.F64(v)
		}
		encodeHostTimes(e, h.FirstContact)
		encodeHostTimes(e, h.LastStart)
	}
}

func decodeHostList(d *wire.Decoder) []flow.HostState {
	n := d.Count(minHostState)
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]flow.HostState, n)
	for i := range out {
		h := &out[i]
		f := &h.Feats
		f.Host = flow.IP(d.U32())
		f.Flows = int(d.I64())
		f.SuccessfulFlows = int(d.I64())
		f.FailedFlows = int(d.I64())
		f.BytesUploaded = d.U64()
		f.Peers = int(d.I64())
		f.NewPeers = int(d.I64())
		f.FirstSeen = d.Time()
		f.LastSeen = d.Time()
		if k := d.Count(8); k > 0 {
			f.Interstitials = make([]float64, k)
			for j := range f.Interstitials {
				f.Interstitials[j] = d.F64()
			}
		}
		h.FirstContact = decodeHostTimes(d)
		h.LastStart = decodeHostTimes(d)
		if d.Err() != nil {
			return out
		}
	}
	return out
}

func encodeHostTimes(e *wire.Encoder, hts []flow.HostTime) {
	e.U32(uint32(len(hts)))
	for _, ht := range hts {
		e.U32(uint32(ht.Host))
		e.Time(ht.Time)
	}
}

func decodeHostTimes(d *wire.Decoder) []flow.HostTime {
	n := d.Count(minHostTime)
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]flow.HostTime, n)
	for i := range out {
		out[i] = flow.HostTime{Host: flow.IP(d.U32()), Time: d.Time()}
	}
	return out
}

func encodeExporters(xs []collector.SequenceState) []byte {
	var e wire.Encoder
	e.U32(uint32(len(xs)))
	for _, x := range xs {
		e.Str(x.Exporter)
		e.U16(x.Engine)
		e.Bool(x.V5Seen)
		e.U32(x.V5Next)
		e.Bool(x.V9Seen)
		e.U32(x.V9Next)
	}
	return e.Bytes()
}

func decodeExporters(d *wire.Decoder) []collector.SequenceState {
	n := d.Count(minExporter)
	if d.Err() != nil || n == 0 {
		return nil
	}
	out := make([]collector.SequenceState, n)
	for i := range out {
		out[i] = collector.SequenceState{
			Exporter: d.Str(),
			Engine:   d.U16(),
			V5Seen:   d.Bool(),
			V5Next:   d.U32(),
			V9Seen:   d.Bool(),
			V9Next:   d.U32(),
		}
	}
	return out
}
