package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Low-level little-endian primitives shared by the snapshot and WAL
// codecs. The encoder appends to a byte slice; the decoder consumes one
// with a sticky error, so section codecs read field after field and
// check once at the end. Every count the decoder reads is validated
// against the bytes remaining before anything is allocated — a
// bit-flipped length in a hostile or corrupt file must cost an error,
// never memory.

type encoder struct {
	b []byte
}

func (e *encoder) u8(v uint8)   { e.b = append(e.b, v) }
func (e *encoder) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// time encodes a timestamp as a zero flag plus UnixNano: the zero
// time.Time is not representable as a nanosecond count, and the state
// structs use it as a meaningful "never" sentinel.
func (e *encoder) time(t time.Time) {
	if t.IsZero() {
		e.u8(0)
		e.i64(0)
		return
	}
	e.u8(1)
	e.i64(t.UnixNano())
}

func (e *encoder) dur(d time.Duration) { e.i64(int64(d)) }

func (e *encoder) str(s string) {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// take consumes n bytes, failing on underrun.
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.fail("checkpoint: truncated: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64     { return int64(d.u64()) }
func (d *decoder) f64() float64   { return math.Float64frombits(d.u64()) }
func (d *decoder) bool() bool     { return d.u8() != 0 }
func (d *decoder) remaining() int { return len(d.b) }

func (d *decoder) time() time.Time {
	set := d.u8()
	ns := d.i64()
	if d.err != nil || set == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

func (d *decoder) dur() time.Duration { return time.Duration(d.i64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// count reads a u32 element count and validates it against the bytes
// remaining, given the minimum encoded size of one element. The
// returned count is safe to allocate for.
func (d *decoder) count(minElem int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if minElem < 1 {
		minElem = 1
	}
	if n < 0 || n > len(d.b)/minElem {
		d.fail("checkpoint: implausible element count %d for %d remaining bytes", n, len(d.b))
		return 0
	}
	return n
}
