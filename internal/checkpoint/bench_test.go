package checkpoint_test

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"plotters/internal/checkpoint"
	"plotters/internal/core"
	"plotters/internal/engine"
	"plotters/internal/flow"
)

// benchShards keeps the synthetic state restorable into a small, fixed
// engine regardless of the benchmark host's CPU count.
const benchShards = 8

// benchEngineConfig matches the synthetic state built below.
func benchEngineConfig() engine.Config {
	return engine.Config{
		Window: 6 * time.Hour,
		Shards: benchShards,
		Core:   core.DefaultConfig(),
	}
}

// syntheticState builds a checkpoint-shaped engine state for the given
// campus size directly — 10k hosts mid-window, each with realistic
// table sizes (tens of peers, tens of interstitial samples) — without
// paying for feature extraction over millions of records first.
func syntheticState(hosts int) *engine.State {
	rng := rand.New(rand.NewSource(123))
	base := time.Date(2007, 11, 5, 9, 0, 0, 0, time.UTC)
	st := &engine.State{
		Started:  true,
		Origin:   base,
		Frontier: base.Add(3 * time.Hour),
		PaneIdx:  0,
		Store:    &flow.ShardedState{Shards: make([]flow.StreamState, benchShards)},
	}
	for s := range st.Store.Shards {
		sh := &st.Store.Shards[s]
		sh.First = base
		sh.Frontier = st.Frontier
		sh.Released = base
	}
	for h := 0; h < hosts; h++ {
		ip := flow.IP(0x0a000000 + uint32(h))
		first := base.Add(time.Duration(rng.Intn(3600)) * time.Second)
		peers := 8 + rng.Intn(32)
		hs := flow.HostState{
			Feats: flow.HostFeatures{
				Host:            ip,
				Flows:           peers * 3,
				SuccessfulFlows: peers * 2,
				FailedFlows:     peers,
				BytesUploaded:   uint64(rng.Intn(1 << 24)),
				Peers:           peers,
				NewPeers:        peers / 4,
				FirstSeen:       first,
				LastSeen:        first.Add(time.Hour),
				Interstitials:   make([]float64, 24),
			},
			FirstContact: make([]flow.HostTime, peers),
			LastStart:    make([]flow.HostTime, peers),
		}
		for i := range hs.Feats.Interstitials {
			hs.Feats.Interstitials[i] = rng.Float64() * 300
		}
		for i := 0; i < peers; i++ {
			dst := flow.IP(0xc0000000 + uint32(h*64+i))
			at := first.Add(time.Duration(i) * time.Minute)
			hs.FirstContact[i] = flow.HostTime{Host: dst, Time: at}
			hs.LastStart[i] = flow.HostTime{Host: dst, Time: at.Add(30 * time.Minute)}
		}
		sh := &st.Store.Shards[int(ip)%benchShards]
		sh.Hosts = append(sh.Hosts, hs)
		sh.Count += hs.Feats.Flows
	}
	return st
}

func benchSnapshot() *checkpoint.Snapshot {
	return &checkpoint.Snapshot{
		Meta: checkpoint.Meta{
			Created: time.Date(2007, 11, 5, 12, 0, 0, 0, time.UTC),
			WALSeq:  1 << 20,
			Window:  6 * time.Hour,
			MaxSkew: 0,
			Grace:   time.Hour,
			Shards:  benchShards,
		},
		Engine: syntheticState(10_000),
	}
}

// BenchmarkSnapshotEncode measures serializing a 10k-host campus
// deployment — the work the periodic checkpointer does under the
// ingest lock. The budget: well under one pane interval (minutes).
func BenchmarkSnapshotEncode(b *testing.B) {
	snap := benchSnapshot()
	data, err := checkpoint.Encode(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkpoint.Encode(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotRestore measures the cold-start path: decode the
// snapshot bytes and rebuild a live engine from them.
func BenchmarkSnapshotRestore(b *testing.B) {
	data, err := checkpoint.Encode(benchSnapshot())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := checkpoint.Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := engine.New(benchEngineConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.RestoreState(snap.Engine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppend measures the per-record durability tax on the
// ingest path (fsync batched out of the way; the OS write only).
func BenchmarkWALAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), checkpoint.WALFile)
	w, _, err := checkpoint.OpenWAL(path, 1<<30, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	base := time.Date(2007, 11, 5, 9, 0, 0, 0, time.UTC)
	rec := flow.Record{
		Src: 1, Dst: 2, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
		Start: base, End: base.Add(time.Second),
		SrcPkts: 3, DstPkts: 2, SrcBytes: 1200, DstBytes: 300,
		State: flow.StateEstablished,
	}
	b.SetBytes(71) // frame header + fixed record encoding
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Start = base.Add(time.Duration(i) * time.Millisecond)
		rec.End = rec.Start.Add(time.Second)
		if _, err := w.Append(&rec); err != nil {
			b.Fatal(err)
		}
	}
}
