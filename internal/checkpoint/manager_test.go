package checkpoint_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"plotters/internal/checkpoint"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

func managerConfig(dir string, reg *metrics.Registry) checkpoint.Config {
	return checkpoint.Config{Dir: dir, Metrics: reg, Now: func() time.Time { return baseTime() }}
}

// mergeByIndex layers re-emitted windows (recovery's at-least-once
// delivery) over the originals, verifying duplicates are identical.
func mergeByIndex(t *testing.T, runs ...[]windowKey) []windowKey {
	t.Helper()
	byIndex := map[int]windowKey{}
	var order []int
	for _, run := range runs {
		for _, w := range run {
			if prev, ok := byIndex[w.Index]; ok {
				if prev != w {
					t.Fatalf("window %d re-emitted with different content:\nfirst  %+v\nsecond %+v", w.Index, prev, w)
				}
				continue
			}
			byIndex[w.Index] = w
			order = append(order, w.Index)
		}
	}
	out := make([]windowKey, 0, len(order))
	for _, i := range order {
		out = append(out, byIndex[i])
	}
	return out
}

// The crash-recovery contract, end to end in one process: run a stream
// through a managed engine, checkpoint mid-stream, keep going, then
// "kill" the process (abandon manager and engine without any shutdown
// courtesy), recover into a fresh engine, finish the stream, and
// compare every emitted window against an uninterrupted run.
func TestManagerKillAndResume(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	records := synthStream(rng, baseTime(), 4*time.Hour)

	var want []windowKey
	ref := newTestEngine(t, &want)
	for i := range records {
		if err := ref.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}

	checkpointAt := len(records) / 3
	for _, killAt := range []int{checkpointAt, checkpointAt + 1, len(records) / 2, len(records) - 1} {
		t.Run(fmt.Sprintf("killAt%d", killAt), func(t *testing.T) {
			dir := t.TempDir()

			// First life: ingest to killAt, checkpoint partway through.
			var before []windowKey
			eng1 := newTestEngine(t, &before)
			m1, err := checkpoint.NewManager(managerConfig(dir, nil), eng1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m1.Recover(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < killAt; i++ {
				if err := m1.Add(&records[i]); err != nil {
					t.Fatal(err)
				}
				if i == checkpointAt-1 {
					if err := m1.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Kill: no Flush, no final Checkpoint, no Close. The WAL
			// syncs every append, so everything the engine saw is on
			// disk.

			// Second life: fresh engine, recover, finish the stream.
			var after []windowKey
			eng2 := newTestEngine(t, &after)
			m2, err := checkpoint.NewManager(managerConfig(dir, nil), eng2)
			if err != nil {
				t.Fatal(err)
			}
			info, err := m2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if !info.SnapshotLoaded {
				t.Fatal("recovery found no snapshot")
			}
			if wantReplay := killAt - checkpointAt; info.Replayed != wantReplay {
				t.Fatalf("replayed %d records, want %d", info.Replayed, wantReplay)
			}
			if eng2.Windows() != eng1.Windows() || eng2.Dropped() != eng1.Dropped() {
				t.Fatalf("recovered counters differ: windows %d/%d dropped %d/%d",
					eng2.Windows(), eng1.Windows(), eng2.Dropped(), eng1.Dropped())
			}
			for i := killAt; i < len(records); i++ {
				if err := m2.Add(&records[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := m2.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := m2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := m2.Close(); err != nil {
				t.Fatal(err)
			}

			got := mergeByIndex(t, before, after)
			if len(got) != len(want) {
				t.Fatalf("emitted %d distinct windows, want %d\ngot  %+v\nwant %+v", len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("window %d diverged after recovery:\ngot  %+v\nwant %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// Recovery must also survive a torn WAL tail: the half-written frame is
// dropped, and re-adding that record continues cleanly.
func TestManagerRecoverTornWAL(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	records := synthStream(rng, baseTime(), time.Hour)
	dir := t.TempDir()

	eng1 := newTestEngine(t, nil)
	m1, err := checkpoint.NewManager(managerConfig(dir, nil), eng1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Recover(); err != nil {
		t.Fatal(err)
	}
	cut := len(records) / 2
	for i := 0; i < cut; i++ {
		if err := m1.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the last frame in half.
	wal := filepath.Join(dir, checkpoint.WALFile)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wal, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	eng2 := newTestEngine(t, nil)
	m2, err := checkpoint.NewManager(managerConfig(dir, nil), eng2)
	if err != nil {
		t.Fatal(err)
	}
	info, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if !info.WALTorn {
		t.Fatal("torn WAL not reported")
	}
	if info.Replayed != cut-1 {
		t.Fatalf("replayed %d, want %d (torn frame dropped)", info.Replayed, cut-1)
	}
	// The torn record and the rest of the stream go back in cleanly.
	for i := cut - 1; i < len(records); i++ {
		if err := m2.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// A manager must refuse to recover a snapshot into an engine with a
// different configuration, naming the mismatched knob.
func TestManagerRecoverConfigMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	records := synthStream(rng, baseTime(), time.Hour)
	dir := t.TempDir()

	eng1 := newTestEngine(t, nil)
	m1, err := checkpoint.NewManager(managerConfig(dir, nil), eng1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := m1.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := testEngineConfig()
	cfg.CarryFirstSeen = false
	eng2, err := engine.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := checkpoint.NewManager(managerConfig(dir, nil), eng2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m2.Recover()
	if err == nil {
		t.Fatal("recovery under a different configuration did not fail")
	}
	if !strings.Contains(err.Error(), "carry-first-seen") {
		t.Fatalf("mismatch error %q does not name the knob", err)
	}
}

// Ordering guards: ingest before recovery is a bug, as is recovering
// twice.
func TestManagerOrderingGuards(t *testing.T) {
	eng := newTestEngine(t, nil)
	m, err := checkpoint.NewManager(managerConfig(t.TempDir(), nil), eng)
	if err != nil {
		t.Fatal(err)
	}
	rec := flow.Record{Src: 1, Dst: 2, Proto: flow.TCP, Start: baseTime(), End: baseTime().Add(time.Second), State: flow.StateEstablished}
	if err := m.Add(&rec); err == nil {
		t.Fatal("Add before Recover did not fail")
	}
	if err := m.Checkpoint(); err == nil {
		t.Fatal("Checkpoint before Recover did not fail")
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Recover(); err == nil {
		t.Fatal("second Recover did not fail")
	}
}

// A managed run must populate the full checkpoint/... instrument set.
func TestManagerMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	records := synthStream(rng, baseTime(), time.Hour)
	reg := metrics.New()
	eng := newTestEngine(t, nil)
	m, err := checkpoint.NewManager(managerConfig(t.TempDir(), reg), eng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Recover(); err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if err := m.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("checkpoint/wal_appends").Value(); got != int64(len(records)) {
		t.Errorf("wal_appends = %d, want %d", got, len(records))
	}
	if reg.Counter("checkpoint/wal_bytes").Value() == 0 {
		t.Error("wal_bytes not counted")
	}
	if got := reg.Counter("checkpoint/snapshots").Value(); got != 1 {
		t.Errorf("snapshots = %d, want 1", got)
	}
	if reg.Gauge("checkpoint/snapshot_bytes").Value() == 0 {
		t.Error("snapshot_bytes gauge not set")
	}
	if reg.Histogram("checkpoint/snapshot_duration").Count() != 1 {
		t.Error("snapshot_duration not observed")
	}
}
