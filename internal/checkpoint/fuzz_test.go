package checkpoint_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"plotters/internal/checkpoint"
	"plotters/internal/flow"
)

// FuzzCheckpointDecode throws arbitrary bytes at both durable-state
// decoders. The contract under fuzzing: never panic, never allocate
// absurdly, and never hand back state from bytes that fail validation —
// a successful snapshot decode must re-encode cleanly (proving the
// returned structure is complete), and a successful WAL scan must only
// deliver records that pass Validate.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with the real artifacts so the fuzzer starts at the format's
	// surface rather than rediscovering the magic bytes.
	snap, err := checkpoint.Encode(populatedSnapshot(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	walFile := filepath.Join(f.TempDir(), checkpoint.WALFile)
	w, _, err := checkpoint.OpenWAL(walFile, 0, nil)
	if err != nil {
		f.Fatal(err)
	}
	base := time.Date(2007, 11, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		rec := flow.Record{
			Src: flow.IP(i + 1), Dst: 100, Proto: flow.TCP,
			Start: base.Add(time.Duration(i) * time.Second), End: base.Add(time.Duration(i+1) * time.Second),
			State: flow.StateEstablished, Payload: []byte{byte(i)},
		}
		if _, err := w.Append(&rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	wal, err := os.ReadFile(walFile)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wal)
	f.Add(wal[:len(wal)-3])
	f.Add([]byte("PCKP"))
	f.Add([]byte("PWAL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := checkpoint.Decode(data); err == nil {
			if s == nil || s.Engine == nil || s.Engine.Store == nil {
				t.Fatal("Decode returned success with incomplete state")
			}
			if _, err := checkpoint.Encode(s); err != nil {
				t.Fatalf("decoded snapshot does not re-encode: %v", err)
			}
		}
		info, err := checkpoint.ReplayWALBytes(data, func(seq uint64, rec *flow.Record) error {
			if err := rec.Validate(); err != nil {
				t.Fatalf("WAL replay delivered an invalid record at seq %d: %v", seq, err)
			}
			return nil
		})
		if err == nil && info.Frames > 0 && info.LastSeq != info.BaseSeq+uint64(info.Frames) {
			t.Fatalf("inconsistent scan summary: %+v", info)
		}
	})
}
