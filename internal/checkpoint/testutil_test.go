package checkpoint_test

import (
	"math/rand"
	"testing"
	"time"

	"plotters/internal/checkpoint"
	"plotters/internal/collector"
	"plotters/internal/core"
	"plotters/internal/engine"
	"plotters/internal/flow"
)

func baseTime() time.Time {
	return time.Date(2007, 11, 5, 9, 0, 0, 0, time.UTC)
}

// testEngineConfig exercises every checkpointing-relevant engine
// feature: sliding windows (pane ring), skew (reorder heaps), sharding,
// and carried first-seen anchors.
func testEngineConfig() engine.Config {
	cc := core.DefaultConfig()
	cc.MinInterstitialSamples = 4
	return engine.Config{
		Window:         time.Hour,
		Slide:          20 * time.Minute,
		Shards:         3,
		MaxSkew:        2 * time.Minute,
		DropLate:       true,
		CarryFirstSeen: true,
		Core:           cc,
	}
}

// synthStream builds a start-ordered stream over [base, base+span): a
// few periodic machine hosts (plotter-shaped) and a crowd of randomized
// human hosts, with mild reordering inside the skew tolerance so
// snapshots catch records in the reorder buffers.
func synthStream(rng *rand.Rand, base time.Time, span time.Duration) []flow.Record {
	var out []flow.Record
	add := func(src, dst flow.IP, at time.Time, bytes uint64, state flow.ConnState) {
		out = append(out, flow.Record{
			Src: src, Dst: dst, SrcPort: 4000, DstPort: 80, Proto: flow.TCP,
			Start: at, End: at.Add(time.Second),
			SrcPkts: 1, DstPkts: 1, SrcBytes: bytes, DstBytes: 100,
			State: state,
		})
	}
	for h := flow.IP(1); h <= 3; h++ {
		for at := base.Add(time.Duration(h) * time.Second); at.Before(base.Add(span)); at = at.Add(35 * time.Second) {
			state := flow.StateFailed
			if rng.Intn(4) == 0 {
				state = flow.StateEstablished
			}
			add(h, flow.IP(200+uint32(h)), at, 40, state)
		}
	}
	for h := flow.IP(10); h < 25; h++ {
		at := base.Add(time.Duration(rng.Intn(600)) * time.Second)
		for at.Before(base.Add(span)) {
			state := flow.StateEstablished
			if rng.Intn(5) == 0 {
				state = flow.StateFailed
			}
			add(h, flow.IP(100+uint32(rng.Intn(40))), at, uint64(500+rng.Intn(20000)), state)
			at = at.Add(time.Duration(20+rng.Intn(400)) * time.Second)
		}
	}
	flow.SortByStart(out)
	// Mild reordering within the skew tolerance: swap neighbors whose
	// starts are close, so the extractors' pending heaps are non-empty
	// when a snapshot lands.
	for i := len(out) - 2; i >= 0; i-- {
		if rng.Intn(3) == 0 && out[i+1].Start.Sub(out[i].Start) < 30*time.Second {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

// windowKey is the comparable essence of one emitted window.
type windowKey struct {
	Index    int
	Window   string
	Hosts    int
	Records  int
	Partial  bool
	Suspects string
}

func summarize(res *engine.Result) windowKey {
	sus := ""
	for _, ip := range res.Detection.Suspects.Sorted() {
		sus += ip.String() + " "
	}
	return windowKey{
		Index:    res.Index,
		Window:   res.Window.String(),
		Hosts:    res.Hosts,
		Records:  res.Records,
		Partial:  res.Partial,
		Suspects: sus,
	}
}

func collect(out *[]windowKey) func(*engine.Result) error {
	return func(res *engine.Result) error {
		*out = append(*out, summarize(res))
		return nil
	}
}

func newTestEngine(t testing.TB, out *[]windowKey) *engine.WindowedDetector {
	t.Helper()
	var emit func(*engine.Result) error
	if out != nil {
		emit = collect(out)
	}
	eng, err := engine.New(testEngineConfig(), emit)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// populatedSnapshot runs a stream partway into an engine and snapshots
// it, returning a state-rich Snapshot (pending records, anchors, pane
// ring, exporter entries all non-empty).
func populatedSnapshot(t testing.TB) *checkpoint.Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	records := synthStream(rng, baseTime(), 2*time.Hour)
	eng := newTestEngine(t, nil)
	for i := range records {
		if err := eng.Add(&records[i]); err != nil {
			t.Fatal(err)
		}
	}
	meta := checkpoint.EngineMeta(eng)
	meta.Created = baseTime().Add(2 * time.Hour)
	meta.WALSeq = uint64(len(records))
	return &checkpoint.Snapshot{
		Meta:   meta,
		Engine: eng.State(),
		Exporters: []collector.SequenceState{
			{Exporter: "10.0.0.1:2055", Engine: 0, V5Seen: true, V5Next: 1234},
			{Exporter: "10.0.0.2:2055", Engine: 7, V5Seen: true, V5Next: 99, V9Seen: true, V9Next: 1},
		},
	}
}
