package checkpoint_test

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"plotters/internal/checkpoint"
	"plotters/internal/flow"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), checkpoint.WALFile)
}

func appendAll(t *testing.T, w *checkpoint.WAL, records []flow.Record) []uint64 {
	t.Helper()
	seqs := make([]uint64, len(records))
	for i := range records {
		seq, err := w.Append(&records[i])
		if err != nil {
			t.Fatal(err)
		}
		seqs[i] = seq
	}
	return seqs
}

// Records framed into the log must replay in order with their sequence
// numbers on reopen.
func TestWALAppendReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	records := synthStream(rng, baseTime(), 30*time.Minute)
	path := walPath(t)

	w, info, err := checkpoint.OpenWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Frames != 0 || info.Torn {
		t.Fatalf("fresh WAL scanned as %+v", info)
	}
	seqs := appendAll(t, w, records)
	for i, seq := range seqs {
		if want := uint64(i + 1); seq != want {
			t.Fatalf("record %d got seq %d, want %d", i, seq, want)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []flow.Record
	var gotSeqs []uint64
	w2, info, err := checkpoint.OpenWAL(path, 0, func(seq uint64, rec *flow.Record) error {
		got = append(got, *rec)
		gotSeqs = append(gotSeqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Torn {
		t.Fatal("cleanly closed WAL reported torn")
	}
	if info.Frames != len(records) || len(got) != len(records) {
		t.Fatalf("replayed %d frames, want %d", info.Frames, len(records))
	}
	if info.LastSeq != uint64(len(records)) {
		t.Fatalf("LastSeq %d, want %d", info.LastSeq, len(records))
	}
	for i := range records {
		if gotSeqs[i] != seqs[i] {
			t.Fatalf("frame %d seq %d, want %d", i, gotSeqs[i], seqs[i])
		}
		if !got[i].Start.Equal(records[i].Start) || got[i].Src != records[i].Src ||
			got[i].SrcBytes != records[i].SrcBytes || got[i].State != records[i].State {
			t.Fatalf("frame %d record mismatch:\ngot  %+v\nwant %+v", i, got[i], records[i])
		}
	}
	// New appends continue the sequence.
	seq, err := w2.Append(&records[0])
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(len(records) + 1); seq != want {
		t.Fatalf("post-reopen append got seq %d, want %d", seq, want)
	}
}

// A torn tail — the half-written frame a kill leaves behind — must be
// truncated on reopen, losing only the incomplete frame; the log must
// come back clean (not torn) on the reopen after that.
func TestWALTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	records := synthStream(rng, baseTime(), 20*time.Minute)
	path := walPath(t)
	w, _, err := checkpoint.OpenWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, records)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear off the last 10 bytes — mid-frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	frames := 0
	w2, info, err := checkpoint.OpenWAL(path, 0, func(uint64, *flow.Record) error {
		frames++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn {
		t.Fatal("torn tail not reported")
	}
	if frames != len(records)-1 {
		t.Fatalf("replayed %d frames after tear, want %d", frames, len(records)-1)
	}
	// Appending over the truncated tail works and the log is clean again.
	if _, err := w2.Append(&records[0]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err = checkpoint.OpenWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn || info.Frames != len(records) {
		t.Fatalf("log after tear-repair-append scanned as %+v, want %d clean frames", info, len(records))
	}
}

// A bit flip inside a committed frame is corruption, not a torn tail:
// reopen must fail loudly.
func TestWALDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	records := synthStream(rng, baseTime(), 20*time.Minute)
	path := walPath(t)
	w, _, err := checkpoint.OpenWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, records)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := len(data) / 2
	data[mid] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.OpenWAL(path, 0, nil); err == nil {
		t.Fatal("bit-flipped WAL opened without error")
	}
}

// Rotation after a snapshot empties the log and continues the sequence
// numbering; rotating past frames no snapshot covers is refused.
func TestWALRotate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	records := synthStream(rng, baseTime(), 20*time.Minute)
	path := walPath(t)
	w, _, err := checkpoint.OpenWAL(path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, w, records)
	last := w.LastSeq()

	if err := w.Rotate(last - 1); err == nil {
		t.Fatal("rotate below the last appended frame did not fail")
	}
	if err := w.Rotate(last); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 14 { // header only: magic, version, baseSeq
		t.Fatalf("rotated WAL is %d bytes, want the 14-byte header", w.Size())
	}
	seq, err := w.Append(&records[0])
	if err != nil {
		t.Fatal(err)
	}
	if seq != last+1 {
		t.Fatalf("post-rotate append got seq %d, want %d", seq, last+1)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	frames := 0
	var firstSeq uint64
	_, info, err := checkpoint.OpenWAL(path, 0, func(seq uint64, _ *flow.Record) error {
		if frames == 0 {
			firstSeq = seq
		}
		frames++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.BaseSeq != last || frames != 1 || firstSeq != last+1 {
		t.Fatalf("rotated log scanned as base %d, %d frames, first seq %d; want base %d, 1 frame, seq %d",
			info.BaseSeq, frames, firstSeq, last, last+1)
	}
}

// A WAL stamped with a future version must be rejected with a
// descriptive error, not misparsed.
func TestWALUnknownVersion(t *testing.T) {
	path := walPath(t)
	hdr := make([]byte, 14)
	copy(hdr, "PWAL")
	binary.LittleEndian.PutUint16(hdr[4:6], 99)
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := checkpoint.OpenWAL(path, 0, nil)
	if err == nil {
		t.Fatal("version-99 WAL opened without error")
	}
	if !strings.Contains(err.Error(), "version 99") {
		t.Fatalf("error %q does not name the offending version", err)
	}
}

// A file that is not a WAL at all must fail with ErrNotWAL.
func TestWALBadMagic(t *testing.T) {
	path := walPath(t)
	if err := os.WriteFile(path, []byte("definitely not a write-ahead log"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.OpenWAL(path, 0, nil); err == nil {
		t.Fatal("non-WAL file opened without error")
	}
}
