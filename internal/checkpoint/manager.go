package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"plotters/internal/collector"
	"plotters/internal/engine"
	"plotters/internal/flow"
	"plotters/internal/metrics"
)

// Default file names inside the state directory.
const (
	SnapshotFile = "snapshot.pckp"
	WALFile      = "wal.log"
)

// Config shapes a Manager.
type Config struct {
	// Dir is the state directory (snapshot + WAL). Defaults to the
	// engine's Config.StateDir; one of the two must be set.
	Dir string
	// Interval is the periodic checkpoint cadence for Run. Zero or
	// negative disables the timer — checkpoints then happen only on
	// explicit Checkpoint calls (e.g. on a signal).
	Interval time.Duration
	// SyncEvery batches WAL fsyncs: the log is fsynced every SyncEvery
	// appends (<= 1 = every append, the safest and slowest setting).
	// Records written but not yet fsynced survive a process kill —
	// the page cache holds them — but not a host power loss.
	SyncEvery int
	// Metrics instruments the manager ("checkpoint/..." names); nil
	// disables instrumentation.
	Metrics *metrics.Registry
	// Now supplies snapshot timestamps (defaults to time.Now); tests
	// pin it.
	Now func() time.Time
}

// RecoveryInfo summarizes what Recover found on disk.
type RecoveryInfo struct {
	// SnapshotLoaded reports that a snapshot existed and was restored.
	SnapshotLoaded bool
	// SnapshotCreated is the restored snapshot's creation time.
	SnapshotCreated time.Time
	// Replayed is the number of WAL records re-driven through the
	// engine (those past the snapshot's WAL position).
	Replayed int
	// WALTorn reports that the WAL ended mid-frame — the expected
	// artifact of a crash during an append; the torn tail was
	// truncated.
	WALTorn bool
	// Exporters is the collector sequence state the snapshot carried,
	// for seeding a restarted collector (RestoreSequenceStates).
	Exporters []collector.SequenceState
}

// Manager ties one engine to its durable state: it owns the WAL and
// the snapshot file, serializes ingest against checkpoints, and runs
// the periodic checkpoint loop. The intended feed order is
//
//	m, _ := NewManager(cfg, eng)
//	info, _ := m.Recover()          // restore snapshot, replay WAL
//	go m.Run(ctx)                   // periodic checkpoints
//	... m.Add(rec) per record ...   // WAL first, then the engine
//	m.Flush(); m.Checkpoint()       // graceful shutdown
//	m.Close()
//
// Recovery replays records the dead process had already pushed past
// its last snapshot, so windows those records sealed are emitted
// again — at-least-once delivery across a crash. Consumers that must
// not double-count deduplicate on the window Index.
//
// All methods are safe for concurrent use; Add serializes against
// Checkpoint, so a snapshot is always a record boundary.
type Manager struct {
	dir       string
	interval  time.Duration
	syncEvery int
	now       func() time.Time

	mu          sync.Mutex
	eng         *engine.WindowedDetector
	col         *collector.Collector
	wal         *WAL
	lastSnapSeq uint64    // WAL seq covered by the newest on-disk snapshot
	lastSnapAt  time.Time // when that snapshot was taken

	snapshots  *metrics.Counter
	snapBytes  *metrics.Counter
	snapSize   *metrics.Gauge
	snapDur    *metrics.Histogram
	walAppends *metrics.Counter
	walBytes   *metrics.Counter
	walSize    *metrics.Gauge
	stateAge   *metrics.Gauge
	recoveries *metrics.Counter
	replayed   *metrics.Counter
}

// NewManager creates the state directory (if needed) and binds a
// manager to eng. Call Recover before feeding records.
func NewManager(cfg Config, eng *engine.WindowedDetector) (*Manager, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = eng.Config().StateDir
	}
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: no state directory (set Config.Dir or the engine's StateDir)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating state directory: %w", err)
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	reg := cfg.Metrics
	return &Manager{
		dir:        dir,
		interval:   cfg.Interval,
		syncEvery:  cfg.SyncEvery,
		now:        now,
		eng:        eng,
		snapshots:  reg.Counter("checkpoint/snapshots"),
		snapBytes:  reg.Counter("checkpoint/snapshot_bytes_total"),
		snapSize:   reg.Gauge("checkpoint/snapshot_bytes"),
		snapDur:    reg.Histogram("checkpoint/snapshot_duration"),
		walAppends: reg.Counter("checkpoint/wal_appends"),
		walBytes:   reg.Counter("checkpoint/wal_bytes"),
		walSize:    reg.Gauge("checkpoint/wal_size_bytes"),
		stateAge:   reg.Gauge("checkpoint/state_age_seconds"),
		recoveries: reg.Counter("checkpoint/recoveries"),
		replayed:   reg.Counter("checkpoint/replayed_records"),
	}, nil
}

// SnapshotPath returns the snapshot file's path.
func (m *Manager) SnapshotPath() string { return filepath.Join(m.dir, SnapshotFile) }

// WALPath returns the write-ahead log's path.
func (m *Manager) WALPath() string { return filepath.Join(m.dir, WALFile) }

// Dir returns the state directory.
func (m *Manager) Dir() string { return m.dir }

// Recover restores the newest snapshot (if one exists) into the
// engine, then opens the WAL and replays every frame past the
// snapshot's position. The engine must be freshly constructed with the
// snapshotted configuration; Recover fails otherwise. Replay drives
// the engine's emit callback, so windows sealed since the last
// snapshot are emitted again (see the type comment).
func (m *Manager) Recover() (*RecoveryInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal != nil {
		return nil, fmt.Errorf("checkpoint: Recover called twice")
	}
	info := &RecoveryInfo{}
	snap, err := Read(m.SnapshotPath())
	switch {
	case err == nil:
		if err := snap.RestoreEngine(m.eng); err != nil {
			return nil, err
		}
		m.lastSnapSeq = snap.Meta.WALSeq
		m.lastSnapAt = snap.Meta.Created
		info.SnapshotLoaded = true
		info.SnapshotCreated = snap.Meta.Created
		info.Exporters = snap.Exporters
	case os.IsNotExist(err):
		// Cold start: nothing to restore.
	default:
		return nil, err
	}
	wal, winfo, err := OpenWAL(m.WALPath(), m.syncEvery, func(seq uint64, rec *flow.Record) error {
		if seq <= m.lastSnapSeq {
			// Already reflected in the snapshot: the crash hit between
			// snapshot commit and WAL rotation.
			return nil
		}
		info.Replayed++
		if err := m.eng.Add(rec); err != nil && !errors.Is(err, engine.ErrLateRecord) {
			return err
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.wal = wal
	info.WALTorn = winfo.Torn
	if m.lastSnapSeq >= wal.LastSeq() {
		// The snapshot covers the whole log (or the log is behind it
		// after the crash-between-commit-and-rotate case): rotate so
		// new frames continue the snapshot's sequence numbering.
		if err := wal.Rotate(m.lastSnapSeq); err != nil {
			wal.Close()
			m.wal = nil
			return nil, err
		}
	}
	if info.SnapshotLoaded || info.Replayed > 0 {
		m.recoveries.Add(1)
	}
	m.replayed.Add(int64(info.Replayed))
	m.walSize.Set(m.wal.Size())
	m.observeAgeLocked()
	return info, nil
}

// AttachCollector includes c's per-exporter sequence state in every
// subsequent snapshot.
func (m *Manager) AttachCollector(c *collector.Collector) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.col = c
}

// Add logs the record to the WAL, then feeds it to the engine — in
// that order, so a crash after the engine saw a record can always
// replay it.
func (m *Manager) Add(rec *flow.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return fmt.Errorf("checkpoint: Add before Recover")
	}
	before := m.wal.Size()
	if _, err := m.wal.Append(rec); err != nil {
		return err
	}
	m.walAppends.Add(1)
	m.walBytes.Add(m.wal.Size() - before)
	m.walSize.Set(m.wal.Size())
	return m.eng.Add(rec)
}

// AdvanceTo forwards a watermark to the engine (sealing windows the
// frontier passed). Watermarks are not logged: a recovered process
// re-advances on its own clock.
func (m *Manager) AdvanceTo(t time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.AdvanceTo(t)
}

// Flush syncs the WAL and flushes the engine, emitting any final
// (possibly partial) windows. Part of a graceful shutdown, typically
// followed by a last Checkpoint.
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal != nil {
		if err := m.wal.Sync(); err != nil {
			return err
		}
	}
	return m.eng.Flush()
}

// Checkpoint takes a snapshot of the engine (and attached collector),
// commits it atomically, and rotates the WAL behind it.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointLocked()
}

func (m *Manager) checkpointLocked() error {
	if m.wal == nil {
		return fmt.Errorf("checkpoint: Checkpoint before Recover")
	}
	start := time.Now()
	// The snapshot must never claim WAL frames more durable than it
	// found them: sync before stamping the covered sequence.
	if err := m.wal.Sync(); err != nil {
		return err
	}
	meta := EngineMeta(m.eng)
	meta.Created = m.now()
	meta.WALSeq = m.wal.LastSeq()
	snap := &Snapshot{Meta: meta, Engine: m.eng.State()}
	if m.col != nil {
		snap.Exporters = m.col.SequenceStates()
	}
	n, err := Write(m.SnapshotPath(), snap)
	if err != nil {
		return err
	}
	if err := m.wal.Rotate(meta.WALSeq); err != nil {
		return err
	}
	m.lastSnapSeq = meta.WALSeq
	m.lastSnapAt = meta.Created
	m.snapshots.Add(1)
	m.snapBytes.Add(n)
	m.snapSize.Set(n)
	m.snapDur.Observe(time.Since(start))
	m.walSize.Set(m.wal.Size())
	m.observeAgeLocked()
	return nil
}

// StateAge returns how long ago the newest snapshot was taken (0 when
// none has been).
func (m *Manager) StateAge() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastSnapAt.IsZero() {
		return 0
	}
	return m.now().Sub(m.lastSnapAt)
}

func (m *Manager) observeAgeLocked() {
	if m.lastSnapAt.IsZero() {
		m.stateAge.Set(0)
		return
	}
	age := m.now().Sub(m.lastSnapAt)
	if age < 0 {
		age = 0
	}
	m.stateAge.Set(int64(age / time.Second))
}

// Run checkpoints every Interval until ctx is canceled, keeping the
// state-age gauge fresh in between. Returns the first checkpoint
// error (a dead disk should be loud, not a silent loss of
// durability). With Interval <= 0 it only maintains the gauge.
func (m *Manager) Run(ctx context.Context) error {
	ageTick := time.NewTicker(10 * time.Second)
	defer ageTick.Stop()
	var checkpointC <-chan time.Time
	if m.interval > 0 {
		t := time.NewTicker(m.interval)
		defer t.Stop()
		checkpointC = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ageTick.C:
			m.mu.Lock()
			m.observeAgeLocked()
			m.mu.Unlock()
		case <-checkpointC:
			if err := m.Checkpoint(); err != nil {
				return err
			}
		}
	}
}

// Close syncs and closes the WAL. The manager is unusable afterwards.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.wal == nil {
		return nil
	}
	err := m.wal.Close()
	m.wal = nil
	return err
}
