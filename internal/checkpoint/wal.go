package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"plotters/internal/flow"
	"plotters/internal/flowio"
)

// The write-ahead log is a single append-only file:
//
//	header: magic "PWAL", u16 version, u64 baseSeq
//	frames: u32 crc, u64 seq, u32 len, payload (one binary flow record)
//
// The CRC covers seq, len, and payload. Sequence numbers start at
// baseSeq+1 and increment by one per frame; baseSeq is the last
// sequence number already covered by a snapshot, rewritten when the
// log rotates after a checkpoint. Recovery tolerates exactly one kind
// of damage silently: a torn tail — a final frame the process did not
// finish writing before dying, which is truncated away. Everything
// else (bad CRC, out-of-order sequence, undecodable record) is an
// error, because it means bytes that were once durable changed.

var walMagic = [4]byte{'P', 'W', 'A', 'L'}

const (
	walVersion     = 1
	walHeaderSize  = 4 + 2 + 8 // magic, version, baseSeq
	walFrameHeader = 4 + 8 + 4 // crc, seq, len
	walMaxFrameLen = 4096      // far above any encoded record; larger lengths are torn/garbage
)

// ErrNotWAL is returned when a file does not begin with the WAL magic.
var ErrNotWAL = errors.New("checkpoint: not a checkpoint WAL (bad magic)")

// ReplayInfo summarizes one WAL scan.
type ReplayInfo struct {
	// BaseSeq is the header's base sequence number: frames at or below
	// it are already covered by a snapshot.
	BaseSeq uint64
	// Frames is the number of intact frames scanned.
	Frames int
	// LastSeq is the sequence number of the last intact frame (BaseSeq
	// when the log holds none).
	LastSeq uint64
	// Torn reports that the file ended mid-frame — the expected
	// artifact of a crash during an append. The torn tail carries no
	// complete record and is truncated when the log is reopened.
	Torn bool
}

// scanWAL walks data, invoking fn for every intact frame, and returns
// the scan summary plus the length of the valid prefix (header and
// complete frames). A header shorter than walHeaderSize is reported as
// torn with a zero valid length — the crash hit the log's creation.
func scanWAL(data []byte, fn func(seq uint64, rec *flow.Record) error) (ReplayInfo, int, error) {
	var info ReplayInfo
	if len(data) == 0 {
		return info, 0, nil
	}
	if len(data) < walHeaderSize {
		info.Torn = true
		return info, 0, nil
	}
	if string(data[:4]) != string(walMagic[:]) {
		return info, 0, ErrNotWAL
	}
	le := binary.LittleEndian
	if v := le.Uint16(data[4:6]); v != walVersion {
		return info, 0, fmt.Errorf("checkpoint: WAL version %d is not supported by this build (understands up to %d)", v, walVersion)
	}
	info.BaseSeq = le.Uint64(data[6:14])
	info.LastSeq = info.BaseSeq
	valid := walHeaderSize
	rest := data[walHeaderSize:]
	for len(rest) > 0 {
		if len(rest) < walFrameHeader {
			info.Torn = true
			return info, valid, nil
		}
		crc := le.Uint32(rest[0:4])
		seq := le.Uint64(rest[4:12])
		n := int(le.Uint32(rest[12:16]))
		if n > walMaxFrameLen || len(rest) < walFrameHeader+n {
			info.Torn = true
			return info, valid, nil
		}
		body := rest[4 : walFrameHeader+n]
		if crc32.ChecksumIEEE(body) != crc {
			return info, valid, fmt.Errorf("checkpoint: WAL frame after seq %d failed its CRC check — the log is corrupt", info.LastSeq)
		}
		if seq != info.LastSeq+1 {
			return info, valid, fmt.Errorf("checkpoint: WAL sequence jumped from %d to %d — the log is corrupt", info.LastSeq, seq)
		}
		rec, used, err := flowio.DecodeRecord(rest[walFrameHeader : walFrameHeader+n])
		if err != nil {
			return info, valid, fmt.Errorf("checkpoint: WAL frame seq %d: %w", seq, err)
		}
		if used != n {
			return info, valid, fmt.Errorf("checkpoint: WAL frame seq %d carries %d trailing bytes", seq, n-used)
		}
		if fn != nil {
			if err := fn(seq, &rec); err != nil {
				return info, valid, err
			}
		}
		info.Frames++
		info.LastSeq = seq
		valid += walFrameHeader + n
		rest = rest[walFrameHeader+n:]
	}
	return info, valid, nil
}

// ReplayWALBytes scans an in-memory WAL image, invoking fn per intact
// frame. It is the pure core of recovery (OpenWAL uses it on the file's
// contents) and the surface the fuzzer drives.
func ReplayWALBytes(data []byte, fn func(seq uint64, rec *flow.Record) error) (ReplayInfo, error) {
	info, _, err := scanWAL(data, fn)
	return info, err
}

// WAL is an open write-ahead log. Not safe for concurrent use; the
// Manager serializes access.
type WAL struct {
	f         *os.File
	path      string
	nextSeq   uint64
	size      int64
	syncEvery int
	unsynced  int
	buf       []byte
}

// OpenWAL opens (creating if absent) the log at path, replaying every
// intact frame through replay before the log accepts appends. A torn
// tail is truncated; CRC or sequence damage is a hard error. syncEvery
// batches fsyncs: the file is synced every syncEvery appends (<= 1 =
// every append).
func OpenWAL(path string, syncEvery int, replay func(seq uint64, rec *flow.Record) error) (*WAL, ReplayInfo, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, ReplayInfo{}, fmt.Errorf("checkpoint: reading WAL: %w", err)
	}
	info, valid, err := scanWAL(data, replay)
	if err != nil {
		return nil, info, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("checkpoint: opening WAL: %w", err)
	}
	w := &WAL{f: f, path: path, nextSeq: info.LastSeq + 1, syncEvery: syncEvery}
	if valid == 0 {
		// Fresh file, or a creation the crash interrupted before the
		// header was durable: start a clean log.
		if err := w.reset(info.BaseSeq); err != nil {
			f.Close()
			return nil, info, err
		}
		return w, info, nil
	}
	if info.Torn {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("checkpoint: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, info, fmt.Errorf("checkpoint: seeking WAL: %w", err)
	}
	w.size = int64(valid)
	return w, info, nil
}

// reset rewrites the log as empty with the given base sequence.
func (w *WAL) reset(baseSeq uint64) error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("checkpoint: truncating WAL: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return fmt.Errorf("checkpoint: seeking WAL: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:], walMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], baseSeq)
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: writing WAL header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing WAL header: %w", err)
	}
	w.size = walHeaderSize
	w.unsynced = 0
	return nil
}

// Append frames one record into the log and returns its sequence
// number. The record hits the OS immediately and the disk according to
// the sync policy.
func (w *WAL) Append(rec *flow.Record) (uint64, error) {
	if err := rec.Validate(); err != nil {
		return 0, fmt.Errorf("checkpoint: refusing to log invalid record: %w", err)
	}
	seq := w.nextSeq
	le := binary.LittleEndian
	w.buf = w.buf[:0]
	w.buf = append(w.buf, 0, 0, 0, 0) // crc placeholder
	w.buf = le.AppendUint64(w.buf, seq)
	w.buf = append(w.buf, 0, 0, 0, 0) // len placeholder
	w.buf = flowio.AppendRecord(w.buf, rec)
	le.PutUint32(w.buf[12:16], uint32(len(w.buf)-walFrameHeader))
	le.PutUint32(w.buf[0:4], crc32.ChecksumIEEE(w.buf[4:]))
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, fmt.Errorf("checkpoint: WAL append: %w", err)
	}
	w.nextSeq++
	w.size += int64(len(w.buf))
	w.unsynced++
	if w.syncEvery <= 1 || w.unsynced >= w.syncEvery {
		if err := w.Sync(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes appended frames to stable storage.
func (w *WAL) Sync() error {
	if w.unsynced == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: syncing WAL: %w", err)
	}
	w.unsynced = 0
	return nil
}

// Rotate empties the log after a snapshot that covers every frame up to
// and including baseSeq. Refuses to drop frames no snapshot holds.
func (w *WAL) Rotate(baseSeq uint64) error {
	if baseSeq+1 < w.nextSeq {
		return fmt.Errorf("checkpoint: rotating WAL to base %d would drop %d frames no snapshot covers",
			baseSeq, w.nextSeq-1-baseSeq)
	}
	if err := w.reset(baseSeq); err != nil {
		return err
	}
	w.nextSeq = baseSeq + 1
	return nil
}

// LastSeq returns the sequence number of the most recently appended
// frame (or the base, when none have been appended).
func (w *WAL) LastSeq() uint64 { return w.nextSeq - 1 }

// Size returns the log's current size in bytes.
func (w *WAL) Size() int64 { return w.size }

// Close syncs and closes the log.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
