package checkpoint_test

import (
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"plotters/internal/checkpoint"
)

// appendSection frames a payload the way the encoder does — for
// building snapshots from hypothetical future builds.
func appendSection(b []byte, id uint16, payload []byte) []byte {
	b = binary.LittleEndian.AppendUint16(b, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
}

// Schema evolution contract: anything this build does not fully
// understand — a future container version, a section id it has never
// heard of, structural damage — fails with a descriptive error instead
// of a partial load. Silently dropping an unknown section would mean
// silently dropping state.
func TestSnapshotSchemaEvolution(t *testing.T) {
	valid, err := checkpoint.Encode(populatedSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func([]byte) []byte) []byte {
		return fn(append([]byte(nil), valid...))
	}
	for _, tc := range []struct {
		name    string
		data    []byte
		wantErr string
	}{
		{
			name: "future container version",
			data: mutate(func(b []byte) []byte {
				binary.LittleEndian.PutUint16(b[4:6], 2)
				return b
			}),
			wantErr: "version 2",
		},
		{
			name: "unknown trailing section",
			data: mutate(func(b []byte) []byte {
				return appendSection(b, 9, []byte("opaque payload from the future"))
			}),
			wantErr: "unknown section id 9",
		},
		{
			name: "unknown empty trailing section",
			data: mutate(func(b []byte) []byte {
				return appendSection(b, 200, nil)
			}),
			wantErr: "unknown section id 200",
		},
		{
			name: "duplicate section",
			data: mutate(func(b []byte) []byte {
				// Re-frame the meta section (id 1) a second time; its
				// payload starts right after magic+version+frame header.
				n := binary.LittleEndian.Uint32(b[8:12])
				payload := append([]byte(nil), b[12:12+int(n)]...)
				return appendSection(b, 1, payload)
			}),
			wantErr: "duplicate section",
		},
		{
			name: "missing required sections",
			data: mutate(func(b []byte) []byte {
				// Keep only magic+version and the meta section.
				n := binary.LittleEndian.Uint32(b[8:12])
				return b[:12+int(n)+4]
			}),
			wantErr: "missing required sections",
		},
		{
			name:    "trailing garbage after last section",
			data:    mutate(func(b []byte) []byte { return append(b, 0xde, 0xad) }),
			wantErr: "truncated",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := checkpoint.Decode(tc.data)
			if err == nil {
				t.Fatal("decode of incompatible snapshot succeeded")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
