package kademlia

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"plotters/internal/flow"
)

func TestNodeIDXORMetricLaws(t *testing.T) {
	f := func(a, b, c [IDBytes]byte) bool {
		x, y, z := NodeID(a), NodeID(b), NodeID(c)
		// Identity: d(x,x) = 0.
		if !x.XOR(x).IsZero() {
			return false
		}
		// Symmetry.
		if x.XOR(y) != y.XOR(x) {
			return false
		}
		// XOR triangle equality: d(x,z) = d(x,y) ⊕ d(y,z), and numeric
		// triangle inequality d(x,z) <= d(x,y) + d(y,z) follows from
		// carry-free addition: verify the weaker comparison form where
		// d(x,z) ≤ max is not generally true, but XOR-of-distances holds.
		if x.XOR(z) != x.XOR(y).XOR(y.XOR(z)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNodeIDCmp(t *testing.T) {
	a := NodeID{0x00, 0x01}
	b := NodeID{0x00, 0x02}
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less wrong")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := NodeID{0b10000000}
	b := NodeID{0b01000000}
	if got := a.CommonPrefixLen(b); got != 0 {
		t.Errorf("cpl = %d, want 0", got)
	}
	c := NodeID{0b10000001}
	if got := a.CommonPrefixLen(c); got != 7 {
		t.Errorf("cpl = %d, want 7", got)
	}
	if got := a.CommonPrefixLen(a); got != IDBits {
		t.Errorf("cpl self = %d, want %d", got, IDBits)
	}
}

func TestIDStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 50; i++ {
		id := RandomID(rng)
		back, err := ParseID(id.String())
		if err != nil || back != id {
			t.Fatalf("round trip failed: %v, %v", back, err)
		}
	}
	if _, err := ParseID("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseID("abcd"); err == nil {
		t.Error("short id accepted")
	}
}

func TestKeyIDDeterministic(t *testing.T) {
	if KeyID("storm-day-42") != KeyID("storm-day-42") {
		t.Error("KeyID not deterministic")
	}
	if KeyID("a") == KeyID("b") {
		t.Error("KeyID collisions for distinct content")
	}
}

func mkContact(rng *rand.Rand) Contact {
	return Contact{ID: RandomID(rng), Addr: flow.IP(rng.Uint32()), Port: 7871}
}

func TestRoutingTableUpdateAndCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	self := RandomID(rng)
	rt := NewRoutingTable(self, 4)
	if rt.K() != 4 || rt.Self() != self {
		t.Error("table config wrong")
	}
	// Own ID is never stored.
	rt.Update(Contact{ID: self})
	if rt.Size() != 0 {
		t.Error("self inserted")
	}
	// Fill with many contacts; every bucket must respect capacity.
	for i := 0; i < 2000; i++ {
		rt.Update(mkContact(rng))
	}
	for i, b := range rt.buckets {
		if len(b) > 4 {
			t.Fatalf("bucket %d has %d entries", i, len(b))
		}
	}
	if rt.Size() == 0 || rt.Size() != len(rt.Contacts()) {
		t.Errorf("size %d vs contacts %d", rt.Size(), len(rt.Contacts()))
	}
}

func TestRoutingTableRefreshMovesToTail(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	self := NodeID{} // zero id
	rt := NewRoutingTable(self, 2)
	// Two contacts in the same bucket (leading bit 1 → bucket 0).
	a := Contact{ID: NodeID{0x80, 0x01}, Addr: 1}
	b := Contact{ID: NodeID{0x80, 0x02}, Addr: 2}
	c := Contact{ID: NodeID{0x80, 0x03}, Addr: 3}
	rt.Update(a)
	rt.Update(b)
	// Refresh a: now b is least-recently-seen.
	rt.Update(a)
	// Insert c into the full bucket: b must be evicted.
	rt.Update(c)
	if !rt.Contains(a.ID) || !rt.Contains(c.ID) || rt.Contains(b.ID) {
		t.Error("LRS eviction order wrong")
	}
	if rt.Size() != 2 {
		t.Errorf("size = %d, want 2", rt.Size())
	}
	_ = rng
}

func TestRoutingTableRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	rt := NewRoutingTable(RandomID(rng), 0) // default k
	c := mkContact(rng)
	rt.Update(c)
	if !rt.Contains(c.ID) {
		t.Fatal("contact missing after update")
	}
	if !rt.Remove(c.ID) {
		t.Error("Remove returned false")
	}
	if rt.Contains(c.ID) || rt.Size() != 0 {
		t.Error("contact still present after remove")
	}
	if rt.Remove(c.ID) {
		t.Error("double remove returned true")
	}
	if rt.Remove(rt.Self()) {
		t.Error("removing self returned true")
	}
}

func TestClosestOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	rt := NewRoutingTable(RandomID(rng), 8)
	for i := 0; i < 200; i++ {
		rt.Update(mkContact(rng))
	}
	target := RandomID(rng)
	closest := rt.Closest(target, 10)
	if len(closest) != 10 {
		t.Fatalf("closest returned %d", len(closest))
	}
	for i := 1; i < len(closest); i++ {
		if closest[i].ID.XOR(target).Less(closest[i-1].ID.XOR(target)) {
			t.Fatal("closest not in XOR order")
		}
	}
	// Asking for more than stored returns all.
	all := rt.Closest(target, 100000)
	if len(all) != rt.Size() {
		t.Errorf("Closest(all) = %d, want %d", len(all), rt.Size())
	}
}

func testOverlay(t *testing.T, nodes int, seed int64) *Overlay {
	t.Helper()
	start := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	cfg := DefaultOverlayConfig(start)
	cfg.Nodes = nodes
	cfg.Horizon = 48 * time.Hour
	cfg.AvoidSubnets = []flow.Subnet{flow.MustParseSubnet("128.2.0.0/16")}
	ov, err := NewOverlay(cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ov
}

func TestOverlayConstruction(t *testing.T) {
	ov := testOverlay(t, 300, 36)
	if ov.Size() != 300 {
		t.Fatalf("size = %d", ov.Size())
	}
	campus := flow.MustParseSubnet("128.2.0.0/16")
	seen := make(map[flow.IP]bool)
	for i := 0; i < ov.Size(); i++ {
		c := ov.Contact(i)
		if campus.Contains(c.Addr) {
			t.Fatalf("overlay node %d inside avoided subnet: %v", i, c.Addr)
		}
		first, _, _, _ := c.Addr.Octets()
		if first == 0 || first == 10 || first == 127 || first >= 224 {
			t.Fatalf("overlay node %d in reserved space: %v", i, c.Addr)
		}
		if seen[c.Addr] {
			t.Fatalf("duplicate overlay address %v", c.Addr)
		}
		seen[c.Addr] = true
		got, ok := ov.ByAddr(c.Addr)
		if !ok || got.ID != c.ID {
			t.Fatal("ByAddr lookup failed")
		}
	}
	if _, ok := ov.ByAddr(flow.MakeIP(1, 2, 3, 4)); ok {
		t.Error("ByAddr hit for unknown address")
	}
}

func TestOverlayConfigValidation(t *testing.T) {
	start := time.Now()
	rng := rand.New(rand.NewSource(1))
	bad := []OverlayConfig{
		{Nodes: 0, Horizon: time.Hour, MedianSession: time.Minute, MedianOffline: time.Minute},
		{Nodes: 5, Horizon: 0, MedianSession: time.Minute, MedianOffline: time.Minute},
		{Nodes: 5, Horizon: time.Hour, MedianSession: 0, MedianOffline: time.Minute},
		{Nodes: 5, Horizon: time.Hour, MedianSession: time.Minute, MedianOffline: 0},
	}
	for i, cfg := range bad {
		cfg.Start = start
		if _, err := NewOverlay(cfg, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestOverlayChurn(t *testing.T) {
	ov := testOverlay(t, 500, 37)
	start := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	// Some — but not all — nodes are online at any sampled instant.
	for _, offset := range []time.Duration{6 * time.Hour, 24 * time.Hour, 40 * time.Hour} {
		at := start.Add(offset)
		n := ov.OnlineCount(at)
		if n == 0 || n == ov.Size() {
			t.Errorf("online count at +%v = %d of %d; expected churn", offset, n, ov.Size())
		}
	}
	// A node's state changes over time (churn) for at least one node.
	changed := false
	for i := 0; i < ov.Size() && !changed; i++ {
		a := ov.onlineIdx(i, start.Add(2*time.Hour))
		b := ov.onlineIdx(i, start.Add(30*time.Hour))
		if a != b {
			changed = true
		}
	}
	if !changed {
		t.Error("no node changed online state across 28 hours")
	}
	// Unknown id is never online.
	if ov.Online(NodeID{0xFF}, start) {
		t.Error("unknown node reported online")
	}
}

func TestOverlaySampleContacts(t *testing.T) {
	ov := testOverlay(t, 100, 38)
	rng := rand.New(rand.NewSource(39))
	sample := ov.SampleContacts(rng, 20)
	if len(sample) != 20 {
		t.Fatalf("sample size = %d", len(sample))
	}
	seen := make(map[NodeID]bool)
	for _, c := range sample {
		if seen[c.ID] {
			t.Fatal("duplicate in sample")
		}
		seen[c.ID] = true
	}
	if got := ov.SampleContacts(rng, 1000); len(got) != 100 {
		t.Errorf("oversample = %d, want 100", len(got))
	}
}

func TestClosestOnline(t *testing.T) {
	ov := testOverlay(t, 400, 40)
	at := time.Date(2007, time.November, 5, 12, 0, 0, 0, time.UTC)
	target := KeyID("some-key")
	got := ov.ClosestOnline(target, at, 8)
	if len(got) == 0 {
		t.Fatal("no online nodes found")
	}
	for i := range got {
		if !ov.Online(got[i].ID, at) {
			t.Fatal("ClosestOnline returned offline node")
		}
		if i > 0 && got[i].ID.XOR(target).Less(got[i-1].ID.XOR(target)) {
			t.Fatal("ClosestOnline not in XOR order")
		}
	}
}

func TestIterativeFindNode(t *testing.T) {
	ov := testOverlay(t, 600, 41)
	rng := rand.New(rand.NewSource(42))
	at := time.Date(2007, time.November, 5, 12, 0, 0, 0, time.UTC)

	rt := NewRoutingTable(RandomID(rng), DefaultK)
	seeds := ov.SampleContacts(rng, 10)
	attempts := Bootstrap(rt, ov, seeds, at, rng, DefaultLookupConfig())
	if len(attempts) == 0 {
		t.Fatal("bootstrap issued no queries")
	}
	if rt.Size() == 0 {
		t.Fatal("routing table empty after bootstrap")
	}

	// A follow-up lookup issues queries and respects the budget.
	cfg := DefaultLookupConfig()
	cfg.MaxQueries = 10
	attempts = IterativeFindNode(rt, ov, KeyID("search"), at.Add(time.Minute), rng, cfg)
	if len(attempts) == 0 || len(attempts) > 10 {
		t.Fatalf("attempts = %d, want 1..10", len(attempts))
	}
	// Mixed outcomes are expected given churn; all peers must be overlay
	// members.
	for _, a := range attempts {
		if _, ok := ov.ByAddr(a.Peer.Addr); !ok {
			t.Fatal("attempt against non-overlay peer")
		}
	}
}

func TestIterativeFindNodeConverges(t *testing.T) {
	ov := testOverlay(t, 600, 43)
	rng := rand.New(rand.NewSource(44))
	at := time.Date(2007, time.November, 5, 12, 0, 0, 0, time.UTC)
	rt := NewRoutingTable(RandomID(rng), DefaultK)
	Bootstrap(rt, ov, ov.SampleContacts(rng, 20), at, rng, DefaultLookupConfig())

	// Repeated lookups with a warm table should mostly hit known peers —
	// the low-churn behavior the paper's θ_churn test keys on.
	target := KeyID("repeated-search")
	first := IterativeFindNode(rt, ov, target, at.Add(time.Minute), rng, DefaultLookupConfig())
	second := IterativeFindNode(rt, ov, target, at.Add(2*time.Minute), rng, DefaultLookupConfig())
	if len(first) == 0 || len(second) == 0 {
		t.Fatal("lookups issued no queries")
	}
	overlap := 0
	seen := make(map[NodeID]bool)
	for _, a := range first {
		seen[a.Peer.ID] = true
	}
	for _, a := range second {
		if seen[a.Peer.ID] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Error("no peer overlap between consecutive identical lookups")
	}
}

func TestLookupEmptyTable(t *testing.T) {
	ov := testOverlay(t, 50, 45)
	rng := rand.New(rand.NewSource(46))
	rt := NewRoutingTable(RandomID(rng), DefaultK)
	at := time.Date(2007, time.November, 5, 12, 0, 0, 0, time.UTC)
	attempts := IterativeFindNode(rt, ov, KeyID("x"), at, rng, DefaultLookupConfig())
	if len(attempts) != 0 {
		t.Errorf("lookup with empty table issued %d queries", len(attempts))
	}
}

func BenchmarkIterativeFindNode(b *testing.B) {
	start := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	cfg := DefaultOverlayConfig(start)
	cfg.Nodes = 1000
	cfg.Horizon = 24 * time.Hour
	ov, err := NewOverlay(cfg, rand.New(rand.NewSource(47)))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(48))
	rt := NewRoutingTable(RandomID(rng), DefaultK)
	Bootstrap(rt, ov, ov.SampleContacts(rng, 20), start.Add(time.Hour), rng, DefaultLookupConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IterativeFindNode(rt, ov, RandomID(rng), start.Add(2*time.Hour), rng, DefaultLookupConfig())
	}
}

func TestPublishAndFindValue(t *testing.T) {
	// A mostly-online overlay and the real-world replication parameter
	// k=20: under heavy churn with k=8, stored values are frequently
	// unreachable — the exact reason production Kademlia uses k=20 and
	// periodic republishing.
	start := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	cfg := DefaultOverlayConfig(start)
	cfg.Nodes = 500
	cfg.Horizon = 48 * time.Hour
	cfg.MedianSession = 4 * time.Hour
	cfg.MedianOffline = 20 * time.Minute
	ov, err := NewOverlay(cfg, rand.New(rand.NewSource(51)))
	if err != nil {
		t.Fatal(err)
	}
	lcfg := DefaultLookupConfig()
	lcfg.K = 20
	lcfg.MaxQueries = 80
	rng := rand.New(rand.NewSource(52))
	at := time.Date(2007, time.November, 5, 12, 0, 0, 0, time.UTC)

	// Publisher joins and publishes a command under a key.
	pub := NewRoutingTable(RandomID(rng), 20)
	Bootstrap(pub, ov, ov.SampleContacts(rng, 20), at, rng, lcfg)
	key := KeyID("storm-cmd-2007-11-05")
	res := IterativePublish(pub, ov, key, "update-url", at, rng, lcfg)
	if len(res.Lookup) == 0 {
		t.Fatal("publish issued no lookup queries")
	}
	if res.Stored == 0 {
		t.Fatal("publish stored on no nodes")
	}
	if res.Stored != len(successes(res.Stores)) {
		t.Errorf("stored = %d, successful stores = %d", res.Stored, len(successes(res.Stores)))
	}

	// An independent searcher finds the value.
	searcher := NewRoutingTable(RandomID(rng), 20)
	Bootstrap(searcher, ov, ov.SampleContacts(rng, 20), at, rng, lcfg)
	found := IterativeFindValue(searcher, ov, key, at.Add(time.Minute), rng, lcfg)
	if !found.Found {
		t.Fatalf("value not found after %d attempts", len(found.Attempts))
	}
	if found.Value != "update-url" {
		t.Errorf("value = %q", found.Value)
	}

	// A search for an unpublished key fails but still issues traffic.
	missing := IterativeFindValue(searcher, ov, KeyID("never-published"), at.Add(2*time.Minute), rng, lcfg)
	if missing.Found {
		t.Error("found a value that was never published")
	}
	if len(missing.Attempts) == 0 {
		t.Error("no attempts for missing key")
	}
}

func successes(attempts []Attempt) []Attempt {
	var out []Attempt
	for _, a := range attempts {
		if a.Responded {
			out = append(out, a)
		}
	}
	return out
}

func TestStoreIgnoresUnknownNode(t *testing.T) {
	ov := testOverlay(t, 50, 53)
	ov.Store(NodeID{0xAB}, KeyID("k"), "v")
	if _, ok := ov.Value(NodeID{0xAB}, KeyID("k")); ok {
		t.Error("value stored at non-member node")
	}
	if _, ok := ov.Value(ov.Contact(0).ID, KeyID("k")); ok {
		t.Error("value appeared without a store")
	}
}
