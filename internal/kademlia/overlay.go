package kademlia

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"plotters/internal/flow"
)

// OverlayConfig parameterizes the simulated global DHT population that
// internal peers (bots and file-sharers) interact with.
type OverlayConfig struct {
	// Nodes is the overlay population size.
	Nodes int
	// Horizon is the simulated period for which per-node online/offline
	// session schedules are materialized.
	Start   time.Time
	Horizon time.Duration
	// MedianSession is the median online-session length; peer-to-peer
	// measurement studies report sessions of minutes to tens of minutes.
	MedianSession time.Duration
	// MedianOffline is the median gap between sessions.
	MedianOffline time.Duration
	// SessionSigma is the log-normal spread of both durations.
	SessionSigma float64
	// AvoidSubnets lists prefixes (e.g. the monitored campus network)
	// that overlay nodes must not occupy.
	AvoidSubnets []flow.Subnet
	// Port is the overlay's UDP service port (e.g. Overnet uses a
	// per-install port; a fixed one keeps traces simple).
	Port uint16
}

// DefaultOverlayConfig returns a config sized for the evaluation: a few
// thousand peers with churn matching P2P measurement studies.
func DefaultOverlayConfig(start time.Time) OverlayConfig {
	return OverlayConfig{
		Nodes:         4000,
		Start:         start,
		Horizon:       10 * 24 * time.Hour,
		MedianSession: 25 * time.Minute,
		MedianOffline: 2 * time.Hour,
		SessionSigma:  1.0,
		Port:          7871,
	}
}

// Overlay is the simulated external DHT population: every node has an
// identifier, a public address, and a precomputed online/offline session
// schedule over the simulation horizon. The overlay answers the two
// queries generators need: "is this peer reachable now?" and "which
// online peers are closest to this key?".
type Overlay struct {
	cfg      OverlayConfig
	contacts []Contact
	// schedules[i] holds ascending state-transition times for node i; the
	// node starts offline and toggles at each transition.
	schedules [][]time.Time
	byID      map[NodeID]int
	byAddr    map[flow.IP]int
	// values is the DHT's stored key→value bindings per node (lazily
	// allocated; see store.go).
	values map[storeKey]string
}

// NewOverlay builds the population deterministically from rng.
func NewOverlay(cfg OverlayConfig, rng *rand.Rand) (*Overlay, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("kademlia: overlay needs nodes, got %d", cfg.Nodes)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("kademlia: overlay horizon must be positive, got %v", cfg.Horizon)
	}
	if cfg.MedianSession <= 0 || cfg.MedianOffline <= 0 {
		return nil, fmt.Errorf("kademlia: session/offline medians must be positive")
	}
	o := &Overlay{
		cfg:       cfg,
		contacts:  make([]Contact, cfg.Nodes),
		schedules: make([][]time.Time, cfg.Nodes),
		byID:      make(map[NodeID]int, cfg.Nodes),
		byAddr:    make(map[flow.IP]int, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := RandomID(rng)
		for _, exists := o.byID[id]; exists; _, exists = o.byID[id] {
			id = RandomID(rng)
		}
		addr := o.randomPublicIP(rng)
		for _, taken := o.byAddr[addr]; taken; _, taken = o.byAddr[addr] {
			addr = o.randomPublicIP(rng)
		}
		o.contacts[i] = Contact{ID: id, Addr: addr, Port: cfg.Port}
		o.byID[id] = i
		o.byAddr[addr] = i
		o.schedules[i] = o.buildSchedule(rng)
	}
	return o, nil
}

// randomPublicIP draws an address outside the avoided prefixes and
// outside reserved ranges (0/8, 10/8, 127/8, 224+/4 multicast).
func (o *Overlay) randomPublicIP(rng *rand.Rand) flow.IP {
	for {
		ip := flow.IP(rng.Uint32())
		first, _, _, _ := ip.Octets()
		if first == 0 || first == 10 || first == 127 || first >= 224 {
			continue
		}
		avoided := false
		for _, sn := range o.cfg.AvoidSubnets {
			if sn.Contains(ip) {
				avoided = true
				break
			}
		}
		if !avoided {
			return ip
		}
	}
}

// buildSchedule materializes alternating offline/online transitions over
// the horizon. The node starts offline for a random initial gap, then
// alternates log-normal online/offline periods.
func (o *Overlay) buildSchedule(rng *rand.Rand) []time.Time {
	var transitions []time.Time
	t := o.cfg.Start
	end := o.cfg.Start.Add(o.cfg.Horizon)
	// Random initial phase so the population isn't synchronized.
	t = t.Add(time.Duration(rng.Int63n(int64(o.cfg.MedianOffline) + 1)))
	online := false
	for t.Before(end) {
		transitions = append(transitions, t)
		var median time.Duration
		if online {
			median = o.cfg.MedianOffline
		} else {
			median = o.cfg.MedianSession
		}
		d := time.Duration(lognormal(rng, float64(median), o.cfg.SessionSigma))
		if d < time.Second {
			d = time.Second
		}
		t = t.Add(d)
		online = !online
	}
	return transitions
}

// lognormal samples a log-normal duration (in float64 nanoseconds) with
// the given median. Inlined rather than importing simnet to keep this
// package's dependencies limited to the flow model.
func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// Size returns the overlay population.
func (o *Overlay) Size() int { return len(o.contacts) }

// Contact returns the i-th node's contact info.
func (o *Overlay) Contact(i int) Contact { return o.contacts[i] }

// ByAddr resolves an overlay node by address.
func (o *Overlay) ByAddr(addr flow.IP) (Contact, bool) {
	i, ok := o.byAddr[addr]
	if !ok {
		return Contact{}, false
	}
	return o.contacts[i], true
}

// Online reports whether the node with the given id is reachable at t.
func (o *Overlay) Online(id NodeID, t time.Time) bool {
	i, ok := o.byID[id]
	if !ok {
		return false
	}
	return o.onlineIdx(i, t)
}

func (o *Overlay) onlineIdx(i int, t time.Time) bool {
	sched := o.schedules[i]
	// Number of transitions at or before t; odd = online (starts offline).
	n := sort.Search(len(sched), func(k int) bool { return sched[k].After(t) })
	return n%2 == 1
}

// SampleContacts draws n distinct overlay contacts uniformly (online or
// not) — e.g. a bot binary's hard-coded bootstrap peer list.
func (o *Overlay) SampleContacts(rng *rand.Rand, n int) []Contact {
	if n > len(o.contacts) {
		n = len(o.contacts)
	}
	idx := rng.Perm(len(o.contacts))[:n]
	out := make([]Contact, n)
	for i, j := range idx {
		out[i] = o.contacts[j]
	}
	return out
}

// ClosestOnline returns up to n overlay nodes closest to target (XOR
// order) that are online at t.
func (o *Overlay) ClosestOnline(target NodeID, t time.Time, n int) []Contact {
	return o.closest(target, n, func(i int) bool { return o.onlineIdx(i, t) })
}

// ClosestAny returns up to n overlay nodes closest to target regardless
// of their current reachability — the *stale* view a peer's routing table
// actually holds, and what a FIND_NODE response realistically reports.
// Querying stale contacts is where P2P networks' high failed-connection
// rates come from (§V-A).
func (o *Overlay) ClosestAny(target NodeID, n int) []Contact {
	return o.closest(target, n, func(int) bool { return true })
}

func (o *Overlay) closest(target NodeID, n int, keep func(i int) bool) []Contact {
	type cand struct {
		c    Contact
		dist NodeID
	}
	cands := make([]cand, 0, 64)
	for i := range o.contacts {
		if !keep(i) {
			continue
		}
		cands = append(cands, cand{c: o.contacts[i], dist: o.contacts[i].ID.XOR(target)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist.Less(cands[b].dist) })
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]Contact, len(cands))
	for i := range cands {
		out[i] = cands[i].c
	}
	return out
}

// OnlineCount returns the number of reachable nodes at t (used by tests
// and capacity planning).
func (o *Overlay) OnlineCount(t time.Time) int {
	count := 0
	for i := range o.contacts {
		if o.onlineIdx(i, t) {
			count++
		}
	}
	return count
}
