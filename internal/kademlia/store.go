package kademlia

import (
	"math/rand"
	"sort"
	"time"
)

// The DHT's value layer: Overnet/Kademlia nodes STORE key→value bindings
// on the k nodes closest to the key, and FIND_VALUE walks toward the key
// until a holder answers. Storm's command rendezvous is exactly this —
// the botmaster publishes under date-derived keys, bots search them.

// storeKey is one (node, key) binding slot.
type storeKey struct {
	node NodeID
	key  NodeID
}

// ensureStore lazily allocates the overlay's value table.
func (o *Overlay) ensureStore() {
	if o.values == nil {
		o.values = make(map[storeKey]string)
	}
}

// Store records a key→value binding at the given overlay node (the node
// accepted a STORE RPC).
func (o *Overlay) Store(node NodeID, key NodeID, value string) {
	if _, ok := o.byID[node]; !ok {
		return
	}
	o.ensureStore()
	o.values[storeKey{node, key}] = value
}

// Value reports the binding a node holds for key, if any.
func (o *Overlay) Value(node NodeID, key NodeID) (string, bool) {
	if o.values == nil {
		return "", false
	}
	v, ok := o.values[storeKey{node, key}]
	return v, ok
}

// PublishResult describes an IterativePublish: the lookup's query
// attempts followed by the STORE attempts against the closest responders.
type PublishResult struct {
	Lookup []Attempt
	Stores []Attempt
	// Stored counts nodes now holding the value.
	Stored int
}

// IterativePublish locates the k online nodes closest to key and sends
// each a STORE. Returns every network attempt so traffic generators can
// emit the corresponding flows.
func IterativePublish(rt *RoutingTable, ov *Overlay, key NodeID, value string, now time.Time, rng *rand.Rand, cfg LookupConfig) PublishResult {
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	result := PublishResult{
		Lookup: IterativeFindNode(rt, ov, key, now, rng, cfg),
	}
	// STORE on the k closest nodes the lookup actually reached — the
	// responders, ordered by XOR distance to the key (k-bucket eviction
	// in the publisher's own table must not decide placement).
	responders := make([]Contact, 0, len(result.Lookup))
	seen := make(map[NodeID]bool)
	for _, a := range result.Lookup {
		if a.Responded && !seen[a.Peer.ID] {
			seen[a.Peer.ID] = true
			responders = append(responders, a.Peer)
		}
	}
	sort.Slice(responders, func(i, j int) bool {
		return responders[i].ID.XOR(key).Less(responders[j].ID.XOR(key))
	})
	if len(responders) > cfg.K {
		responders = responders[:cfg.K]
	}
	for _, c := range responders {
		responded := ov.Online(c.ID, now) && rng.Float64() >= cfg.LossRate
		result.Stores = append(result.Stores, Attempt{Peer: c, Responded: responded})
		if responded {
			ov.Store(c.ID, key, value)
			result.Stored++
		}
	}
	return result
}

// FindValueResult describes an IterativeFindValue.
type FindValueResult struct {
	Value    string
	Found    bool
	Attempts []Attempt
}

// IterativeFindValue walks toward key like IterativeFindNode but stops as
// soon as a queried node holds a binding for it.
func IterativeFindValue(rt *RoutingTable, ov *Overlay, key NodeID, now time.Time, rng *rand.Rand, cfg LookupConfig) FindValueResult {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = 32
	}

	var result FindValueResult
	seen := make(map[NodeID]bool)
	type candidate struct {
		c       Contact
		queried bool
	}
	var cands []candidate
	add := func(c Contact) {
		if c.ID == rt.Self() || seen[c.ID] {
			return
		}
		seen[c.ID] = true
		cands = append(cands, candidate{c: c})
	}
	for _, c := range rt.Closest(key, cfg.K) {
		add(c)
	}
	for len(result.Attempts) < cfg.MaxQueries {
		// Closest-first order.
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && cands[j].c.ID.XOR(key).Less(cands[j-1].c.ID.XOR(key)); j-- {
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		batch := make([]int, 0, cfg.Alpha)
		horizon := len(cands)
		if horizon > cfg.K {
			horizon = cfg.K
		}
		for i := 0; i < horizon && len(batch) < cfg.Alpha; i++ {
			if !cands[i].queried {
				batch = append(batch, i)
			}
		}
		if len(batch) == 0 {
			break
		}
		for _, i := range batch {
			if len(result.Attempts) >= cfg.MaxQueries {
				break
			}
			cands[i].queried = true
			peer := cands[i].c
			responded := ov.Online(peer.ID, now) && rng.Float64() >= cfg.LossRate
			result.Attempts = append(result.Attempts, Attempt{Peer: peer, Responded: responded})
			if !responded {
				rt.Remove(peer.ID)
				continue
			}
			refreshed := peer
			refreshed.LastSeen = now
			rt.Update(refreshed)
			if v, ok := ov.Value(peer.ID, key); ok {
				result.Value = v
				result.Found = true
				return result
			}
			for _, learned := range ov.ClosestAny(key, cfg.K) {
				if learned.ID != peer.ID {
					add(learned)
					rt.Update(learned)
				}
			}
		}
	}
	return result
}
