package kademlia

import (
	"math/rand"
	"sort"
	"time"
)

// Attempt records one query the iterative lookup issued: the peer it
// contacted and whether the peer answered. Traffic generators convert
// attempts into flow records (answered → established, silent → failed).
type Attempt struct {
	Peer Contact
	// Responded is true when the peer was online and the query answered.
	Responded bool
}

// LookupConfig tunes the iterative lookup.
type LookupConfig struct {
	// Alpha is the query parallelism (Kademlia's α, typically 3).
	Alpha int
	// K is the closeness set size; the lookup terminates when the k
	// closest known peers have all been queried.
	K int
	// LossRate is the probability an online peer still fails to answer
	// (packet loss, NAT); keeps failure rates realistic even in a
	// well-connected overlay.
	LossRate float64
	// MaxQueries bounds total attempts per lookup.
	MaxQueries int
}

// DefaultLookupConfig mirrors common Kademlia deployments.
func DefaultLookupConfig() LookupConfig {
	return LookupConfig{Alpha: 3, K: DefaultK, LossRate: 0.05, MaxQueries: 32}
}

// IterativeFindNode runs a Kademlia node lookup for target at virtual
// time now: repeatedly query the α closest un-queried candidates, merge
// the responders' closest-peer answers into the candidate set, and stop
// when the k closest candidates have been queried (or the query budget is
// spent). Responders (and the peers they report) are folded into rt,
// which is how a long-running peer's routing table converges to a stable
// contact set.
//
// The returned attempts preserve query order.
func IterativeFindNode(rt *RoutingTable, ov *Overlay, target NodeID, now time.Time, rng *rand.Rand, cfg LookupConfig) []Attempt {
	if cfg.Alpha <= 0 {
		cfg.Alpha = 3
	}
	if cfg.K <= 0 {
		cfg.K = DefaultK
	}
	if cfg.MaxQueries <= 0 {
		cfg.MaxQueries = 32
	}

	type candidate struct {
		c       Contact
		queried bool
	}
	seen := make(map[NodeID]bool)
	var cands []candidate
	addCandidate := func(c Contact) {
		if c.ID == rt.Self() || seen[c.ID] {
			return
		}
		seen[c.ID] = true
		cands = append(cands, candidate{c: c})
	}
	for _, c := range rt.Closest(target, cfg.K) {
		addCandidate(c)
	}

	sortCands := func() {
		sort.Slice(cands, func(i, j int) bool {
			return cands[i].c.ID.XOR(target).Less(cands[j].c.ID.XOR(target))
		})
	}

	var attempts []Attempt
	for len(attempts) < cfg.MaxQueries {
		sortCands()
		// Collect the next α un-queried candidates among the k closest.
		var batch []int
		horizon := len(cands)
		if horizon > cfg.K {
			horizon = cfg.K
		}
		for i := 0; i < horizon && len(batch) < cfg.Alpha; i++ {
			if !cands[i].queried {
				batch = append(batch, i)
			}
		}
		if len(batch) == 0 {
			break // the k closest are all queried: lookup converged
		}
		for _, i := range batch {
			if len(attempts) >= cfg.MaxQueries {
				break
			}
			cands[i].queried = true
			peer := cands[i].c
			responded := ov.Online(peer.ID, now) && rng.Float64() >= cfg.LossRate
			attempts = append(attempts, Attempt{Peer: peer, Responded: responded})
			if !responded {
				// Kademlia drops unresponsive contacts from the table.
				rt.Remove(peer.ID)
				continue
			}
			refreshed := peer
			refreshed.LastSeen = now
			rt.Update(refreshed)
			// The responder reports the k closest peers *it knows about*;
			// that knowledge is stale, so some reported peers are already
			// offline — exactly the churn that makes P2P hosts' failed
			// connection rates high.
			for _, learned := range ov.ClosestAny(target, cfg.K) {
				if learned.ID == peer.ID {
					continue
				}
				addCandidate(learned)
				rt.Update(learned)
			}
		}
	}
	return attempts
}

// Bootstrap seeds a routing table from a peer list (e.g. the bot binary's
// hard-coded peers) and runs a self-lookup — the standard Kademlia join.
// It returns the join's query attempts.
func Bootstrap(rt *RoutingTable, ov *Overlay, seeds []Contact, now time.Time, rng *rand.Rand, cfg LookupConfig) []Attempt {
	for _, c := range seeds {
		rt.Update(c)
	}
	return IterativeFindNode(rt, ov, rt.Self(), now, rng, cfg)
}
