// Package kademlia implements the Kademlia distributed hash table
// (Maymounkov & Mazières, 2002) that underlies the Overnet network — the
// substrate the Storm botnet built its command-and-control on, and whose
// implementation is shared by the eDonkey (KAD) and BitTorrent (Mainline
// DHT) file-sharing networks. The package provides node identifiers with
// the XOR metric, k-bucket routing tables, a churning overlay population,
// and iterative lookups; the traffic generators turn lookup attempts into
// flow records.
package kademlia

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"math/bits"
	"math/rand"
)

// IDBytes is the size of a node identifier. Overnet/eDonkey use 128-bit
// (MD4-space) identifiers.
const IDBytes = 16

// IDBits is the identifier length in bits, and the number of k-buckets in
// a routing table.
const IDBits = IDBytes * 8

// NodeID is a 128-bit Kademlia node or key identifier.
type NodeID [IDBytes]byte

// RandomID draws a uniformly random identifier.
func RandomID(rng *rand.Rand) NodeID {
	var id NodeID
	for i := 0; i < IDBytes; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			id[i+j] = byte(v >> (8 * j))
		}
	}
	return id
}

// KeyID derives a deterministic identifier from arbitrary content (e.g. a
// search keyword or file hash), mirroring how DHT keys are content
// digests.
func KeyID(content string) NodeID {
	return NodeID(md5.Sum([]byte(content)))
}

// XOR returns the Kademlia distance id ⊕ other.
func (id NodeID) XOR(other NodeID) NodeID {
	var d NodeID
	for i := range d {
		d[i] = id[i] ^ other[i]
	}
	return d
}

// Cmp compares identifiers as big-endian 128-bit integers: -1, 0, or +1.
func (id NodeID) Cmp(other NodeID) int {
	for i := range id {
		switch {
		case id[i] < other[i]:
			return -1
		case id[i] > other[i]:
			return 1
		}
	}
	return 0
}

// Less reports whether id < other as big-endian integers. Comparing XOR
// distances with Less is the Kademlia closeness order.
func (id NodeID) Less(other NodeID) bool { return id.Cmp(other) < 0 }

// IsZero reports whether the identifier is all zeros.
func (id NodeID) IsZero() bool {
	for _, b := range id {
		if b != 0 {
			return false
		}
	}
	return true
}

// CommonPrefixLen returns the number of leading bits id and other share —
// equivalently, the index of the k-bucket other falls into from id's
// perspective (IDBits when equal).
func (id NodeID) CommonPrefixLen(other NodeID) int {
	for i := range id {
		if x := id[i] ^ other[i]; x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	return IDBits
}

// String renders the identifier as hex.
func (id NodeID) String() string { return hex.EncodeToString(id[:]) }

// ParseID parses a 32-hex-digit identifier.
func ParseID(s string) (NodeID, error) {
	var id NodeID
	raw, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("kademlia: invalid node id %q: %w", s, err)
	}
	if len(raw) != IDBytes {
		return id, fmt.Errorf("kademlia: node id %q has %d bytes, want %d", s, len(raw), IDBytes)
	}
	copy(id[:], raw)
	return id, nil
}
