package kademlia

import (
	"sort"
	"time"

	"plotters/internal/flow"
)

// DefaultK is the k-bucket capacity (Kademlia's replication parameter).
const DefaultK = 8

// Contact is a known peer: its DHT identifier and network endpoint.
type Contact struct {
	ID       NodeID
	Addr     flow.IP
	Port     uint16
	LastSeen time.Time
}

// RoutingTable is a Kademlia routing table: IDBits k-buckets, where
// bucket i holds contacts whose IDs share exactly i leading bits with the
// owner. Buckets keep least-recently-seen contacts at the head and evict
// them first when full — the bias toward long-lived peers that gives
// Kademlia (and Plotters built on it) a stable contact set.
type RoutingTable struct {
	self    NodeID
	k       int
	buckets [IDBits][]Contact
	size    int
}

// NewRoutingTable creates a table owned by self with bucket capacity k
// (DefaultK if k <= 0).
func NewRoutingTable(self NodeID, k int) *RoutingTable {
	if k <= 0 {
		k = DefaultK
	}
	return &RoutingTable{self: self, k: k}
}

// Self returns the owner's identifier.
func (rt *RoutingTable) Self() NodeID { return rt.self }

// Size returns the number of stored contacts.
func (rt *RoutingTable) Size() int { return rt.size }

// K returns the bucket capacity.
func (rt *RoutingTable) K() int { return rt.k }

// bucketIndex returns the bucket for id, or -1 for the owner's own id.
func (rt *RoutingTable) bucketIndex(id NodeID) int {
	cpl := rt.self.CommonPrefixLen(id)
	if cpl >= IDBits {
		return -1
	}
	return cpl
}

// Update records that a contact was seen: refreshes it if present
// (moving it to the tail, most-recently-seen), inserts it if the bucket
// has room, and otherwise evicts the least-recently-seen entry. Real
// Kademlia pings the LRS entry before eviction; the simulation folds that
// into the caller's traffic model. The owner's own ID is ignored.
func (rt *RoutingTable) Update(c Contact) {
	idx := rt.bucketIndex(c.ID)
	if idx < 0 {
		return
	}
	b := rt.buckets[idx]
	for i := range b {
		if b[i].ID == c.ID {
			// Refresh: move to tail.
			copy(b[i:], b[i+1:])
			b[len(b)-1] = c
			return
		}
	}
	if len(b) < rt.k {
		rt.buckets[idx] = append(b, c)
		rt.size++
		return
	}
	// Bucket full: evict the least-recently-seen head.
	copy(b, b[1:])
	b[len(b)-1] = c
}

// Remove deletes a contact (e.g. after repeated failed pings).
func (rt *RoutingTable) Remove(id NodeID) bool {
	idx := rt.bucketIndex(id)
	if idx < 0 {
		return false
	}
	b := rt.buckets[idx]
	for i := range b {
		if b[i].ID == id {
			rt.buckets[idx] = append(b[:i], b[i+1:]...)
			rt.size--
			return true
		}
	}
	return false
}

// Contains reports whether id is stored.
func (rt *RoutingTable) Contains(id NodeID) bool {
	idx := rt.bucketIndex(id)
	if idx < 0 {
		return false
	}
	for _, c := range rt.buckets[idx] {
		if c.ID == id {
			return true
		}
	}
	return false
}

// Closest returns up to n stored contacts ordered by XOR distance to
// target (closest first).
func (rt *RoutingTable) Closest(target NodeID, n int) []Contact {
	all := rt.Contacts()
	sort.Slice(all, func(i, j int) bool {
		return all[i].ID.XOR(target).Less(all[j].ID.XOR(target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Contacts returns every stored contact. The slice is freshly allocated.
func (rt *RoutingTable) Contacts() []Contact {
	out := make([]Contact, 0, rt.size)
	for i := range rt.buckets {
		out = append(out, rt.buckets[i]...)
	}
	return out
}
