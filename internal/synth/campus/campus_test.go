package campus

import (
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/simnet"
	"plotters/internal/stats"
	"plotters/internal/synth"
)

func window() flow.Window {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	return flow.Window{From: start, To: start.Add(6 * time.Hour)}
}

func TestConfigValidate(t *testing.T) {
	sim := simnet.New(window().From, 1)
	pool := synth.NewExternalIPPool(sim.Fork(), 50, 1.2)
	good := Config{Host: 1, Window: window(), WebPool: pool, MeanSessions: 2, FailRate: 0.1, ReqMedian: 500, ReqSigma: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Window: window(), WebPool: pool},                            // no host
		{Host: 1, WebPool: pool},                                     // no window
		{Host: 1, Window: window()},                                  // no pool
		{Host: 1, Window: window(), WebPool: pool, MeanSessions: -1}, // bad sessions
		{Host: 1, Window: window(), WebPool: pool, FailRate: 1.5},    // bad fail rate
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0], sim); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestHostGeneratesPlausibleTraffic(t *testing.T) {
	sim := simnet.New(window().From, 2)
	pool := synth.NewExternalIPPool(sim.Fork(), 200, 1.2)
	cfg := Config{
		Host: flow.MakeIP(128, 2, 0, 9), Window: window(), WebPool: pool,
		MeanSessions: 8, FailRate: 0.2, ReqMedian: 600, ReqSigma: 0.6,
		NTP: true, MailPoll: 5 * time.Minute, UpdateCheck: 30 * time.Minute,
	}
	h, err := New(cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if h.Addr() != cfg.Host {
		t.Errorf("Addr = %v", h.Addr())
	}
	h.Start()
	sim.Run(window().To)
	records := sim.Records()
	if len(records) < 50 {
		t.Fatalf("too few records: %d", len(records))
	}
	ntp, mail := 0, 0
	var failed int
	for i := range records {
		r := &records[i]
		if r.Src != cfg.Host {
			t.Fatal("record from wrong source")
		}
		if !window().Contains(r.Start) {
			t.Fatalf("record outside window: %v", r.Start)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		if r.DstPort == 123 {
			ntp++
		}
		if r.DstPort == 993 {
			mail++
		}
		if r.Failed() {
			failed++
		}
	}
	if ntp < 10 {
		t.Errorf("NTP polls = %d, want ≈21 over 6h", ntp)
	}
	if mail < 30 {
		t.Errorf("mail polls = %d, want ≈72 over 6h", mail)
	}
	rate := float64(failed) / float64(len(records))
	if rate < 0.05 || rate > 0.4 {
		t.Errorf("failure rate = %.2f, want near configured 0.2", rate)
	}
}

func TestPopulationHeterogeneity(t *testing.T) {
	sim := simnet.New(window().From, 3)
	pool := synth.NewExternalIPPool(sim.Fork(), 500, 1.3)
	var plan synth.AddrPlan
	fleet, err := NewPopulation(PopulationConfig{Hosts: 60, Window: window(), WebPool: pool}, &plan, sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(fleet) != 60 {
		t.Fatalf("fleet = %d", len(fleet))
	}
	StartAll(fleet)
	sim.Run(window().To)
	records := sim.Records()

	feats := flow.ExtractFeatures(records, flow.FeatureOptions{})
	if len(feats) < 55 {
		t.Fatalf("only %d hosts generated traffic", len(feats))
	}
	var fails, avgs []float64
	for _, f := range feats {
		fails = append(fails, f.FailedRate())
		avgs = append(avgs, f.AvgBytesPerFlow())
	}
	failSummary, _ := stats.Summarize(fails)
	avgSummary, _ := stats.Summarize(avgs)
	// Bimodal failure rates: low floor, flaky tail.
	if failSummary.Min > 0.1 || failSummary.Max < 0.25 {
		t.Errorf("failure rates not spread: %s", failSummary)
	}
	// Web-scale upload volumes (hundreds to a couple thousand bytes).
	if avgSummary.Median < 200 || avgSummary.Median > 3000 {
		t.Errorf("median avg bytes/flow = %v, not web-like", avgSummary.Median)
	}
	_ = failSummary
}

func TestPopulationValidation(t *testing.T) {
	sim := simnet.New(window().From, 4)
	pool := synth.NewExternalIPPool(sim.Fork(), 50, 1.2)
	var plan synth.AddrPlan
	if _, err := NewPopulation(PopulationConfig{Hosts: 0, Window: window(), WebPool: pool}, &plan, sim); err == nil {
		t.Error("zero hosts accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []flow.Record {
		sim := simnet.New(window().From, 7)
		pool := synth.NewExternalIPPool(sim.Fork(), 100, 1.2)
		var plan synth.AddrPlan
		fleet, err := NewPopulation(PopulationConfig{Hosts: 10, Window: window(), WebPool: pool}, &plan, sim)
		if err != nil {
			t.Fatal(err)
		}
		StartAll(fleet)
		sim.Run(window().To)
		return sim.Records()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src || !a[i].Start.Equal(b[i].Start) || a[i].SrcBytes != b[i].SrcBytes {
			t.Fatalf("runs diverge at record %d", i)
		}
	}
}
