// Package campus generates the background (non-P2P) traffic of the
// monitored enterprise network: human-driven web browsing with
// heavy-tailed think times, plus the periodic machine chores real desktop
// fleets run (NTP, mail polling, update checks). These hosts are the
// population the paper's initial data-reduction step must mostly discard
// and the θ tests must not flag.
package campus

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"plotters/internal/flow"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// Config parameterizes one background host.
type Config struct {
	// Host is the internal address.
	Host flow.IP
	// Window bounds the host's activity (the daily collection window).
	Window flow.Window
	// WebPool is the external web-server population.
	WebPool *synth.ExternalIPPool
	// MeanSessions is the expected number of browsing sessions in the
	// window.
	MeanSessions float64
	// FailRate is the host's base probability that a connection attempt
	// fails (stale links, unreachable hosts, local misconfiguration).
	FailRate float64
	// ReqMedian/ReqSigma shape the log-normal of uploaded bytes per flow.
	ReqMedian float64
	ReqSigma  float64
	// NTP enables a 1024-second NTP poll to a fixed server.
	NTP bool
	// MailPoll enables periodic IMAP polling to a fixed mail host.
	MailPoll time.Duration
	// UpdateCheck enables periodic software-update HTTP checks.
	UpdateCheck time.Duration
	// Diurnal, when true, concentrates the host's browsing sessions into
	// a triangular activity hump instead of spreading them uniformly
	// across the window — the single-user day shape a large campus
	// aggregates into its diurnal curve.
	Diurnal bool
	// TimezoneOffset shifts the host's activity hump within the window
	// (modulo the window length), modeling remote workers and satellite
	// campuses whose local peak hours differ. Only meaningful with
	// Diurnal.
	TimezoneOffset time.Duration
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Host == 0 {
		return fmt.Errorf("campus: host address unset")
	}
	if c.WebPool == nil {
		return fmt.Errorf("campus: web pool unset")
	}
	if c.Window.Duration() <= 0 {
		return fmt.Errorf("campus: empty activity window")
	}
	if c.MeanSessions < 0 || c.FailRate < 0 || c.FailRate > 1 {
		return fmt.Errorf("campus: invalid rates (sessions=%v fail=%v)", c.MeanSessions, c.FailRate)
	}
	return nil
}

// Host simulates one background machine.
type Host struct {
	cfg   Config
	sim   *simnet.Simulator
	rng   *rand.Rand
	ports synth.PortAlloc

	// pace is the user's personality: a per-host multiplier on think
	// times, so no two humans share the same timing distribution.
	pace float64
	// assetSpread is the host's page-asset fetch-gap scale (browser,
	// link speed, and page mix differ per machine); without it, every
	// host's sub-second interstitial mass would look identical and
	// ordinary web hosts would co-cluster under θ_hm.
	assetSpread time.Duration
	// modes are the user's think-time mixture: humans alternate between
	// activities (skimming, reading, stepping away), each with its own
	// time scale and per-person weight. The mixture gives every host a
	// multi-modal, individual timing distribution.
	modeScale  [3]float64
	modeWeight [3]float64
	// thinkAlpha is the host's think-time tail exponent; humans differ in
	// burstiness, not just speed.
	thinkAlpha float64
	// pageAssets is the host's typical page-asset fan-out (site mix).
	pageAssets int

	ntpServer  flow.IP
	mailServer flow.IP
	updateHost flow.IP
}

// New creates the host and derives its private RNG stream.
func New(cfg Config, sim *simnet.Simulator) (*Host, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Host{cfg: cfg, sim: sim, rng: sim.Fork()}
	h.pace = simnet.LogNormalMedian(h.rng, 1, 0.8)
	if h.pace < 0.15 {
		h.pace = 0.15
	}
	if h.pace > 8 {
		h.pace = 8
	}
	h.assetSpread = time.Duration(simnet.LogNormalMedian(h.rng, float64(400*time.Millisecond), 0.9))
	if h.assetSpread < 50*time.Millisecond {
		h.assetSpread = 50 * time.Millisecond
	}
	if h.assetSpread > 5*time.Second {
		h.assetSpread = 5 * time.Second
	}
	var totalWeight float64
	for i := range h.modeScale {
		h.modeScale[i] = simnet.LogNormalMedian(h.rng, 1, 1.1)
		h.modeWeight[i] = 0.1 + h.rng.Float64()
		totalWeight += h.modeWeight[i]
	}
	for i := range h.modeWeight {
		h.modeWeight[i] /= totalWeight
	}
	h.thinkAlpha = 1.1 + h.rng.Float64()*1.4
	h.pageAssets = 2 + h.rng.Intn(6)
	h.ntpServer = cfg.WebPool.PickUniform(h.rng)
	h.mailServer = cfg.WebPool.PickUniform(h.rng)
	h.updateHost = cfg.WebPool.PickUniform(h.rng)
	return h, nil
}

// Start schedules the host's activity for the window.
func (h *Host) Start() {
	// Browsing sessions arrive as a Poisson process across the window.
	n := poisson(h.rng, h.cfg.MeanSessions)
	for i := 0; i < n; i++ {
		var at time.Time
		if h.cfg.Diurnal {
			at = h.cfg.Window.From.Add(h.diurnalOffset())
		} else {
			at = h.cfg.Window.From.Add(simnet.UniformDur(h.rng, 0, h.cfg.Window.Duration()))
		}
		h.sim.Schedule(at, h.browseSession)
	}
	if h.cfg.NTP {
		h.sim.Schedule(h.cfg.Window.From.Add(simnet.UniformDur(h.rng, 0, 1024*time.Second)), h.ntpPoll)
	}
	if h.cfg.MailPoll > 0 {
		h.sim.Schedule(h.cfg.Window.From.Add(simnet.UniformDur(h.rng, 0, h.cfg.MailPoll)), h.mailCheck)
	}
	if h.cfg.UpdateCheck > 0 {
		h.sim.Schedule(h.cfg.Window.From.Add(simnet.UniformDur(h.rng, 0, h.cfg.UpdateCheck)), h.updateCheck)
	}
}

// diurnalOffset samples a session start within the window from a
// triangular hump (mean of two uniforms) peaked mid-window, then rotates
// it by the host's timezone offset modulo the window length — hosts in
// the same zone peak together, zones apart peak apart.
func (h *Host) diurnalOffset() time.Duration {
	d := h.cfg.Window.Duration()
	tri := (simnet.UniformDur(h.rng, 0, d) + simnet.UniformDur(h.rng, 0, d)) / 2
	off := (tri + h.cfg.TimezoneOffset) % d
	if off < 0 {
		off += d
	}
	return off
}

// browseSession models one human browsing burst: a run of page fetches
// separated by Pareto think times.
func (h *Host) browseSession() {
	fetches := 3 + h.rng.Intn(30)
	h.fetchThenThink(fetches)
}

func (h *Host) fetchThenThink(remaining int) {
	if remaining <= 0 || !h.cfg.Window.Contains(h.sim.Now()) {
		return
	}
	h.fetchPage()
	think := time.Duration(simnet.Pareto(h.rng, 2*h.pace*h.thinkMode(), h.thinkAlpha) * float64(time.Second))
	if think > 10*time.Minute {
		think = 10 * time.Minute
	}
	h.sim.After(think, func() { h.fetchThenThink(remaining - 1) })
}

// thinkMode draws the current activity mode's time scale.
func (h *Host) thinkMode() float64 {
	u := h.rng.Float64()
	for i, w := range h.modeWeight {
		if u < w {
			return h.modeScale[i]
		}
		u -= w
	}
	return h.modeScale[len(h.modeScale)-1]
}

// fetchPage issues the flows of one page load: the page itself plus a few
// asset fetches, possibly to secondary servers.
func (h *Host) fetchPage() {
	primary := h.cfg.WebPool.Pick()
	flows := 1 + h.rng.Intn(h.pageAssets)
	for i := 0; i < flows; i++ {
		dst := primary
		if i > 0 && simnet.Bernoulli(h.rng, 0.8) {
			dst = h.cfg.WebPool.Pick() // CDN / third-party asset
		}
		success := !simnet.Bernoulli(h.rng, h.cfg.FailRate)
		req := simnet.LogNormalMedian(h.rng, h.cfg.ReqMedian, h.cfg.ReqSigma)
		rsp := simnet.LogNormalMedian(h.rng, 12000, 1.2)
		delay := simnet.UniformDur(h.rng, 0, h.assetSpread)
		h.sim.After(delay, func() {
			synth.EmitFlow(h.sim, synth.FlowSpec{
				Src: h.cfg.Host, Dst: dst,
				SrcPort: h.ports.Next(), DstPort: 80, Proto: flow.TCP,
				Duration: simnet.UniformDur(h.rng, 100*time.Millisecond, 4*time.Second),
				ReqBytes: uint64(req), RspBytes: uint64(rsp),
				Success: success,
				Payload: []byte("GET / HTTP/1.1\r\nHost: www\r\n"),
			})
		})
	}
}

// ntpPoll emits the classic 1024-second NTP cadence.
func (h *Host) ntpPoll() {
	if !h.cfg.Window.Contains(h.sim.Now()) {
		return
	}
	synth.EmitFlow(h.sim, synth.FlowSpec{
		Src: h.cfg.Host, Dst: h.ntpServer,
		SrcPort: h.ports.Next(), DstPort: 123, Proto: flow.UDP,
		Duration: 80 * time.Millisecond,
		ReqBytes: 48, RspBytes: 48,
		Success: !simnet.Bernoulli(h.rng, h.cfg.FailRate/4),
	})
	h.sim.After(simnet.Jitter(h.rng, 1024*time.Second, 0.01), h.ntpPoll)
}

// mailCheck polls the mail server on a fixed timer.
func (h *Host) mailCheck() {
	if !h.cfg.Window.Contains(h.sim.Now()) {
		return
	}
	synth.EmitFlow(h.sim, synth.FlowSpec{
		Src: h.cfg.Host, Dst: h.mailServer,
		SrcPort: h.ports.Next(), DstPort: 993, Proto: flow.TCP,
		Duration: simnet.UniformDur(h.rng, 200*time.Millisecond, 2*time.Second),
		ReqBytes: uint64(simnet.LogNormalMedian(h.rng, 400, 0.4)),
		RspBytes: uint64(simnet.LogNormalMedian(h.rng, 2000, 1.0)),
		Success:  !simnet.Bernoulli(h.rng, h.cfg.FailRate/4),
	})
	h.sim.After(simnet.Jitter(h.rng, h.cfg.MailPoll, 0.15), h.mailCheck)
}

// updateCheck models periodic software-update probes.
func (h *Host) updateCheck() {
	if !h.cfg.Window.Contains(h.sim.Now()) {
		return
	}
	synth.EmitFlow(h.sim, synth.FlowSpec{
		Src: h.cfg.Host, Dst: h.updateHost,
		SrcPort: h.ports.Next(), DstPort: 80, Proto: flow.TCP,
		Duration: simnet.UniformDur(h.rng, 100*time.Millisecond, time.Second),
		ReqBytes: uint64(simnet.LogNormalMedian(h.rng, 500, 0.3)),
		RspBytes: uint64(simnet.LogNormalMedian(h.rng, 1500, 0.5)),
		Success:  !simnet.Bernoulli(h.rng, h.cfg.FailRate/3),
		Payload:  []byte("GET /update/check HTTP/1.1\r\n"),
	})
	h.sim.After(simnet.Jitter(h.rng, h.cfg.UpdateCheck, 0.1), h.updateCheck)
}

// poisson samples a Poisson variate by Knuth's method (fine for small
// means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// PopulationConfig shapes a fleet of background hosts.
type PopulationConfig struct {
	// Hosts is the number of background machines.
	Hosts int
	// Window is the daily collection window.
	Window flow.Window
	// WebPool is shared across the fleet.
	WebPool *synth.ExternalIPPool
	// TimezoneSpread, when positive, switches every host to diurnal
	// session placement and spreads their activity peaks over offsets
	// drawn uniformly from ±TimezoneSpread/2 — the mixed-timezone campus.
	// Zero keeps the fleet's original uniform placement (and RNG stream)
	// bit-identical.
	TimezoneSpread time.Duration
}

// RandomConfig draws one background host's personality from the fleet
// RNG: bimodal failure rate, session/request shape, and the optional
// periodic chores. NewPopulation consumes it per host; NAT'd world
// builders reuse it to stack several personas behind one address.
func RandomConfig(rng *rand.Rand, host flow.IP, window flow.Window, webPool *synth.ExternalIPPool) Config {
	// Failure rates are bimodal on a real campus: most hosts fail
	// rarely (the occasional dead link), while a flaky minority —
	// misconfigured clients, hosts chasing dead services — fails
	// often. The initial data-reduction step's power comes from this
	// gap between ordinary hosts and P2P-style failure rates.
	fail := simnet.LogNormalMedian(rng, 0.07, 0.6)
	if simnet.Bernoulli(rng, 0.3) {
		fail = simnet.LogNormalMedian(rng, 0.32, 0.45)
	}
	if fail > 0.65 {
		fail = 0.65
	}
	hc := Config{
		Host:         host,
		Window:       window,
		WebPool:      webPool,
		MeanSessions: 2 + simnet.Exp(rng, 4),
		FailRate:     fail,
		ReqMedian:    400 + rng.Float64()*900,
		ReqSigma:     0.5 + rng.Float64()*0.4,
		NTP:          simnet.Bernoulli(rng, 0.35),
	}
	if simnet.Bernoulli(rng, 0.4) {
		hc.MailPoll = simnet.UniformDur(rng, 2*time.Minute, 11*time.Minute)
	}
	if simnet.Bernoulli(rng, 0.25) {
		hc.UpdateCheck = simnet.UniformDur(rng, 20*time.Minute, 110*time.Minute)
	}
	return hc
}

// NewPopulation builds a heterogeneous fleet: most hosts are light web
// browsers; some run periodic chores; failure rates vary host to host the
// way a real campus's do.
func NewPopulation(cfg PopulationConfig, plan *synth.AddrPlan, sim *simnet.Simulator) ([]*Host, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("campus: population needs hosts, got %d", cfg.Hosts)
	}
	rng := sim.Fork()
	hosts := make([]*Host, 0, cfg.Hosts)
	for i := 0; i < cfg.Hosts; i++ {
		hc := RandomConfig(rng, plan.NextInternal(), cfg.Window, cfg.WebPool)
		if cfg.TimezoneSpread > 0 {
			hc.Diurnal = true
			hc.TimezoneOffset = simnet.UniformDur(rng, 0, cfg.TimezoneSpread) - cfg.TimezoneSpread/2
		}
		h, err := New(hc, sim)
		if err != nil {
			return nil, err
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// StartAll starts every host in the fleet.
func StartAll(hosts []*Host) {
	for _, h := range hosts {
		h.Start()
	}
}

// Addr returns the host's internal address.
func (h *Host) Addr() flow.IP { return h.cfg.Host }
