package plotter

import (
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// nugachePort is Nugache's signature listening port (TCP port 8).
const nugachePort = 8

// NugacheConfig parameterizes a Nugache trace. Nugache maintains an
// explicit peer list over encrypted TCP links; the honeynet trace shows
// three traits the paper leans on: >65% failed connections (dead peers),
// short machine timers (~10/25/50-second connection intervals), and —
// critically — wildly uneven per-bot activity, which is why the paper
// detects only 30% of Nugache bots.
type NugacheConfig struct {
	// Bots is the number of infected machines (82 in the paper's trace).
	Bots int
	// Day is the trace day.
	Day time.Time
	// OverlayNodes is the Nugache peer population size.
	OverlayNodes int
	// PeerListSize is each bot's maintained peer list.
	PeerListSize int
	// Intervals are the machine timers between connection attempts; the
	// paper observes ~10, ~25 and ~50 seconds.
	Intervals []time.Duration
	// TimerJitter wobbles the intervals fractionally.
	TimerJitter float64
	// MsgMedian is the median bytes uploaded per gossip flow.
	MsgMedian float64
	// ActivitySigma spreads per-bot activity (log-normal): large values
	// reproduce the trace's low-and-variable bot activity.
	ActivitySigma float64
	// BaseBurst and BaseSleep shape the duty cycle: bots gossip in bursts
	// separated by long quiet periods whose length divides by the bot's
	// activity factor.
	BaseBurst time.Duration
	BaseSleep time.Duration
	// DeadPeerFraction is the share of each bot's peer list pointing at
	// permanently dead hosts (uninfected/cleaned machines), driving the
	// very high failure rate.
	DeadPeerFraction float64
	// AvoidSubnets keeps overlay peers out of the given prefixes.
	AvoidSubnets []flow.Subnet
}

// DefaultNugacheConfig mirrors the paper's trace: 82 bots, one day.
func DefaultNugacheConfig(day time.Time) NugacheConfig {
	return NugacheConfig{
		Bots:             82,
		Day:              day,
		OverlayNodes:     1200,
		PeerListSize:     60,
		Intervals:        []time.Duration{10 * time.Second, 25 * time.Second, 50 * time.Second},
		TimerJitter:      0.02,
		MsgMedian:        2000,
		ActivitySigma:    1.5,
		BaseBurst:        20 * time.Minute,
		BaseSleep:        40 * time.Minute,
		DeadPeerFraction: 0.3,
		AvoidSubnets:     synth.InternalSubnets(),
	}
}

// Validate checks the configuration.
func (c *NugacheConfig) Validate() error {
	if c.Bots <= 0 || c.Bots > 500 {
		return fmt.Errorf("plotter: nugache bots must be 1..500, got %d", c.Bots)
	}
	if c.OverlayNodes <= 0 || c.PeerListSize <= 0 {
		return fmt.Errorf("plotter: overlay/peer list sizes must be positive")
	}
	if len(c.Intervals) == 0 {
		return fmt.Errorf("plotter: nugache needs at least one timer interval")
	}
	for _, d := range c.Intervals {
		if d <= 0 {
			return fmt.Errorf("plotter: non-positive interval %v", d)
		}
	}
	if c.MsgMedian <= 0 || c.BaseBurst <= 0 || c.BaseSleep <= 0 {
		return fmt.Errorf("plotter: sizes and duty-cycle durations must be positive")
	}
	if c.DeadPeerFraction < 0 || c.DeadPeerFraction >= 1 {
		return fmt.Errorf("plotter: dead peer fraction must be in [0,1), got %v", c.DeadPeerFraction)
	}
	return nil
}

// GenerateNugache synthesizes a 24-hour Nugache honeynet trace.
func GenerateNugache(cfg NugacheConfig, seed int64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	day := dayStart(cfg.Day)
	sim := simnet.New(day, seed)
	ov, err := newBotnetOverlay(day, cfg.OverlayNodes, sim, cfg.AvoidSubnets)
	if err != nil {
		return nil, err
	}
	deadPool := synth.NewExternalIPPool(sim.Fork(), 2000, 1.1)

	bots := make([]flow.IP, cfg.Bots)
	for i := range bots {
		bots[i] = HoneynetSubnet.Addr(uint32(100 + i))
		b := &nugacheBot{
			cfg:  cfg,
			addr: bots[i],
			sim:  sim,
			ov:   ov,
			rng:  sim.Fork(),
		}
		b.activity = simnet.LogNormalMedian(b.rng, 1, cfg.ActivitySigma)
		if b.activity > 8 {
			b.activity = 8
		}
		b.buildPeerList(deadPool)
		b.start()
	}
	sim.Run(day.Add(24 * time.Hour))
	records := sim.Records()
	flow.SortByStart(records)
	return &Trace{Records: records, Bots: bots}, nil
}

// nugachePeer is one peer-list entry; dead entries never answer.
type nugachePeer struct {
	contact kademlia.Contact
	dead    bool
}

// nugacheBot is one infected machine.
type nugacheBot struct {
	cfg      NugacheConfig
	addr     flow.IP
	sim      *simnet.Simulator
	ov       *kademlia.Overlay
	rng      *rand.Rand
	ports    synth.PortAlloc
	peers    []nugachePeer
	activity float64

	// partner is the peer-list index of the current gossip partner;
	// Nugache exchanges several messages with one peer before moving on,
	// which is what puts its 10/25/50-second timers into the
	// *per-destination* interstitial distribution (paper Figure 3(b)).
	partner     int
	partnerUses int
}

// buildPeerList mixes live overlay peers with dead addresses.
func (b *nugacheBot) buildPeerList(deadPool *synth.ExternalIPPool) {
	live := b.ov.SampleContacts(b.rng, b.cfg.PeerListSize)
	b.peers = make([]nugachePeer, 0, b.cfg.PeerListSize)
	for _, c := range live {
		if simnet.Bernoulli(b.rng, b.cfg.DeadPeerFraction) {
			b.peers = append(b.peers, nugachePeer{
				contact: kademlia.Contact{ID: kademlia.RandomID(b.rng), Addr: deadPool.PickUniform(b.rng), Port: nugachePort},
				dead:    true,
			})
			continue
		}
		c.Port = nugachePort
		b.peers = append(b.peers, nugachePeer{contact: c})
	}
}

// start arms the duty cycle: the bot sleeps, bursts, repeats; per-bot
// activity scales how long it sleeps.
func (b *nugacheBot) start() {
	b.sim.After(simnet.UniformDur(b.rng, 0, b.sleepLen()), b.burst)
}

func (b *nugacheBot) sleepLen() time.Duration {
	d := time.Duration(float64(simnet.ExpDur(b.rng, b.cfg.BaseSleep)) / b.activity)
	if d < time.Minute {
		d = time.Minute
	}
	return d
}

// burst runs one gossip burst, then schedules the next sleep.
func (b *nugacheBot) burst() {
	length := simnet.ExpDur(b.rng, b.cfg.BaseBurst)
	if length < 30*time.Second {
		length = 30 * time.Second
	}
	end := b.sim.Now().Add(length)
	b.gossipStep(end)
}

// gossipStep contacts one peer-list entry, then waits one of the machine
// intervals — the 10/25/50-second timers that give Nugache its
// interstitial signature.
func (b *nugacheBot) gossipStep(burstEnd time.Time) {
	if !b.sim.Now().Before(burstEnd) {
		b.sim.After(b.sleepLen(), b.burst)
		return
	}
	if b.partnerUses <= 0 {
		b.partner = b.rng.Intn(len(b.peers))
		b.partnerUses = 3 + b.rng.Intn(10)
	}
	b.partnerUses--
	p := b.peers[b.partner]
	ok := !p.dead && b.ov.Online(p.contact.ID, b.sim.Now()) && !simnet.Bernoulli(b.rng, 0.08)
	synth.EmitFlow(b.sim, synth.FlowSpec{
		Src: b.addr, Dst: p.contact.Addr,
		SrcPort: b.ports.Next(), DstPort: nugachePort, Proto: flow.TCP,
		Duration: simnet.UniformDur(b.rng, 200*time.Millisecond, 3*time.Second),
		ReqBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian, 0.4)),
		RspBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian*1.2, 0.4)),
		Success:  ok,
		// Encrypted gossip: high-entropy bytes, no signature to match.
		Payload: []byte{0x9f, 0x3a, 0xd2, 0x41, 0x07},
	})
	// Live partners also dial back — the encrypted mesh is symmetric, so
	// the border sees inbound TCP port 8 connections at the bot too.
	if ok && simnet.Bernoulli(b.rng, 0.15) {
		peer := p.contact
		b.sim.After(simnet.UniformDur(b.rng, time.Second, 20*time.Second), func() {
			synth.EmitFlow(b.sim, synth.FlowSpec{
				Src: peer.Addr, Dst: b.addr,
				SrcPort: 50000 + uint16(b.rng.Intn(10000)), DstPort: nugachePort, Proto: flow.TCP,
				Duration: simnet.UniformDur(b.rng, 200*time.Millisecond, 3*time.Second),
				ReqBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian, 0.4)),
				RspBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian, 0.4)),
				Success:  true,
				Payload:  []byte{0x4e, 0x81, 0x22, 0x7c},
			})
		})
	}
	// Rarely, a successful exchange teaches the bot a new peer. The
	// replacement never hits the active partner slot.
	if ok && simnet.Bernoulli(b.rng, 0.02) {
		fresh := b.ov.SampleContacts(b.rng, 1)[0]
		fresh.Port = nugachePort
		if slot := b.rng.Intn(len(b.peers)); slot != b.partner {
			b.peers[slot] = nugachePeer{contact: fresh}
		}
	}
	interval := b.cfg.Intervals[b.rng.Intn(len(b.cfg.Intervals))]
	b.sim.After(simnet.Jitter(b.rng, interval, b.cfg.TimerJitter), func() {
		b.gossipStep(burstEnd)
	})
}
