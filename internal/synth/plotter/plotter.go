// Package plotter generates botnet command-and-control traffic — the
// Plotters the pipeline must catch. Two bot models are provided, matching
// the paper's honeynet traces: Storm (13 bots, Overnet/Kademlia-based
// peer discovery with fixed machine timers) and Nugache (82 bots, TCP
// peer gossip with highly variable per-bot activity). Both produce
// 24-hour traces from honeynet-style source addresses; the overlay step
// later re-sources them onto campus hosts, exactly as the paper overlays
// its honeynet traces.
package plotter

import (
	"fmt"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
)

// HoneynetSubnet is the address range bot traces are generated from
// before being overlaid onto campus hosts (RFC 2544 benchmarking space,
// guaranteed not to collide with campus or overlay addresses).
var HoneynetSubnet = flow.MustParseSubnet("198.18.0.0/24")

// Trace is a generated bot trace: the flow records plus the bot source
// addresses appearing in them.
type Trace struct {
	Records []flow.Record
	Bots    []flow.IP
}

// BotFlows returns the records grouped per bot address; inbound flows
// (peer-initiated) count toward the destination bot.
func (t *Trace) BotFlows() map[flow.IP][]flow.Record {
	bots := make(map[flow.IP]bool, len(t.Bots))
	for _, b := range t.Bots {
		bots[b] = true
	}
	out := make(map[flow.IP][]flow.Record, len(t.Bots))
	for _, r := range t.Records {
		switch {
		case bots[r.Src]:
			out[r.Src] = append(out[r.Src], r)
		case bots[r.Dst]:
			out[r.Dst] = append(out[r.Dst], r)
		}
	}
	return out
}

// newBotnetOverlay builds the external botnet peer population shared by
// the bots of one trace. Bot peers churn like file-sharing peers do — the
// infected population turns machines on and off — but the *bots we
// monitor* keep re-contacting the peers they know.
func newBotnetOverlay(day time.Time, nodes int, sim *simnet.Simulator, avoid []flow.Subnet) (*kademlia.Overlay, error) {
	cfg := kademlia.OverlayConfig{
		Nodes:         nodes,
		Start:         day,
		Horizon:       26 * time.Hour,
		MedianSession: 40 * time.Minute,
		MedianOffline: 90 * time.Minute,
		SessionSigma:  1.0,
		AvoidSubnets:  append([]flow.Subnet{HoneynetSubnet}, avoid...),
		Port:          7871,
	}
	ov, err := kademlia.NewOverlay(cfg, sim.Fork())
	if err != nil {
		return nil, fmt.Errorf("plotter: building botnet overlay: %w", err)
	}
	return ov, nil
}

// dayStart returns midnight of the trace day: honeynet traces cover a
// full 24 hours.
func dayStart(day time.Time) time.Time {
	return time.Date(day.Year(), day.Month(), day.Day(), 0, 0, 0, 0, time.UTC)
}
