package plotter

import (
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/label"
	"plotters/internal/stats"
	"plotters/internal/synth"
)

func day() time.Time {
	return time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
}

// smallStorm returns a cheap Storm config for tests.
func smallStorm() StormConfig {
	cfg := DefaultStormConfig(day())
	cfg.Bots = 4
	cfg.OverlayNodes = 400
	cfg.SeedPeers = 40
	return cfg
}

// smallNugache returns a cheap Nugache config for tests.
func smallNugache() NugacheConfig {
	cfg := DefaultNugacheConfig(day())
	cfg.Bots = 10
	cfg.OverlayNodes = 300
	cfg.PeerListSize = 30
	return cfg
}

func TestStormConfigValidate(t *testing.T) {
	good := smallStorm()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*StormConfig){
		func(c *StormConfig) { c.Bots = 0 },
		func(c *StormConfig) { c.Bots = 1000 },
		func(c *StormConfig) { c.SeedPeers = 0 },
		func(c *StormConfig) { c.OverlayNodes = c.SeedPeers - 1 },
		func(c *StormConfig) { c.SearchPeriod = 0 },
		func(c *StormConfig) { c.KeepalivePeriod = 0 },
		func(c *StormConfig) { c.KeysPerDay = 0 },
		func(c *StormConfig) { c.MsgMedian = 0 },
	}
	for i, mutate := range mutations {
		cfg := smallStorm()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNugacheConfigValidate(t *testing.T) {
	good := smallNugache()
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*NugacheConfig){
		func(c *NugacheConfig) { c.Bots = 0 },
		func(c *NugacheConfig) { c.Bots = 9999 },
		func(c *NugacheConfig) { c.OverlayNodes = 0 },
		func(c *NugacheConfig) { c.PeerListSize = 0 },
		func(c *NugacheConfig) { c.Intervals = nil },
		func(c *NugacheConfig) { c.Intervals = []time.Duration{0} },
		func(c *NugacheConfig) { c.MsgMedian = 0 },
		func(c *NugacheConfig) { c.BaseBurst = 0 },
		func(c *NugacheConfig) { c.BaseSleep = 0 },
		func(c *NugacheConfig) { c.DeadPeerFraction = 1 },
		func(c *NugacheConfig) { c.DeadPeerFraction = -0.1 },
	}
	for i, mutate := range mutations {
		cfg := smallNugache()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateStorm(t *testing.T) {
	trace, err := GenerateStorm(smallStorm(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Bots) != 4 {
		t.Fatalf("bots = %d", len(trace.Bots))
	}
	byBot := trace.BotFlows()
	feats := flow.ExtractFeatures(trace.Records, flow.FeatureOptions{})
	for _, bot := range trace.Bots {
		if !HoneynetSubnet.Contains(bot) {
			t.Errorf("bot %v outside honeynet subnet", bot)
		}
		if len(byBot[bot]) < 200 {
			t.Errorf("bot %v emitted only %d flows over 24h", bot, len(byBot[bot]))
		}
		f := feats[bot]
		// Storm control traffic: tiny flows, substantial failures, low
		// churn (repeat contacts dominate after the first hour).
		if f.AvgBytesPerFlow() > 600 {
			t.Errorf("bot %v avg bytes/flow = %v, want control-message scale", bot, f.AvgBytesPerFlow())
		}
		if f.FailedRate() < 0.2 || f.FailedRate() > 0.85 {
			t.Errorf("bot %v failed rate = %v, want churn-driven", bot, f.FailedRate())
		}
		if f.NewPeerFraction() > 0.6 {
			t.Errorf("bot %v new-peer fraction = %v, want low churn", bot, f.NewPeerFraction())
		}
	}
	// Records must be valid, sorted, and never labeled as file sharing.
	for i := range trace.Records {
		if err := trace.Records[i].Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		if i > 0 && trace.Records[i].Start.Before(trace.Records[i-1].Start) {
			t.Fatal("records not sorted")
		}
	}
	if traders := label.Traders(trace.Records, nil); len(traders) != 0 {
		t.Errorf("storm traffic matched file-sharing signatures: %v", traders)
	}
	// Outbound flows never target campus addresses; inbound flows come
	// from overlay peers to the bot itself.
	for i := range trace.Records {
		r := &trace.Records[i]
		if HoneynetSubnet.Contains(r.Src) {
			if synth.IsInternal(r.Dst) || HoneynetSubnet.Contains(r.Dst) {
				t.Fatalf("bot contacted reserved destination %v", r.Dst)
			}
		} else if !HoneynetSubnet.Contains(r.Dst) {
			t.Fatalf("record touches no bot: %v", r)
		}
	}
}

func TestStormTimerSignature(t *testing.T) {
	trace, err := GenerateStorm(smallStorm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	feats := flow.ExtractFeatures(trace.Records, flow.FeatureOptions{})
	f := feats[trace.Bots[0]]
	med, err := stats.Median(f.Interstitials)
	if err != nil {
		t.Fatal(err)
	}
	// Keepalive timer dominates the per-destination gaps: the median
	// interstitial should sit near the keepalive period (60 s ± jitter
	// and scheduling slack).
	if med < 30 || med > 200 {
		t.Errorf("median interstitial = %vs, want near the 60s keepalive", med)
	}
}

func TestGenerateNugache(t *testing.T) {
	trace, err := GenerateNugache(smallNugache(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Bots) != 10 {
		t.Fatalf("bots = %d", len(trace.Bots))
	}
	feats := flow.ExtractFeatures(trace.Records, flow.FeatureOptions{})
	var flows []float64
	var fails []float64
	for _, bot := range trace.Bots {
		f := feats[bot]
		if f == nil {
			flows = append(flows, 0)
			continue
		}
		flows = append(flows, float64(f.Flows))
		fails = append(fails, f.FailedRate())
	}
	// High failure rates (dead peers + churn): the paper reports >65%
	// for almost all Nugache bots.
	medFail, err := stats.Median(fails)
	if err != nil {
		t.Fatal(err)
	}
	if medFail < 0.5 {
		t.Errorf("median failed rate = %v, want Nugache-high", medFail)
	}
	// Highly variable activity: max bot well above the min active bot
	// (the full 82-bot config spreads far wider; 10 bots bound the tail).
	minF, _ := stats.Min(flows)
	maxF, _ := stats.Max(flows)
	if maxF < 3*(minF+1) {
		t.Errorf("activity spread too narrow: min %v max %v", minF, maxF)
	}
	// TCP port 8, the Nugache signature.
	for i := range trace.Records {
		if trace.Records[i].DstPort != 8 || trace.Records[i].Proto != flow.TCP {
			t.Fatal("nugache flow not TCP port 8")
		}
	}
	if traders := label.Traders(trace.Records, nil); len(traders) != 0 {
		t.Errorf("nugache traffic matched file-sharing signatures: %v", traders)
	}
}

func TestTraceDeterminism(t *testing.T) {
	a, err := GenerateStorm(smallStorm(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStorm(smallStorm(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Dst != b.Records[i].Dst || !a.Records[i].Start.Equal(b.Records[i].Start) {
			t.Fatalf("traces diverge at %d", i)
		}
	}
	// Different seeds give different traces.
	c, err := GenerateStorm(smallStorm(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) == len(c.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i].Dst != c.Records[i].Dst {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestBotFlows(t *testing.T) {
	trace, err := GenerateNugache(smallNugache(), 14)
	if err != nil {
		t.Fatal(err)
	}
	byBot := trace.BotFlows()
	total := 0
	for _, recs := range byBot {
		total += len(recs)
	}
	if total != len(trace.Records) {
		t.Errorf("BotFlows total %d != records %d", total, len(trace.Records))
	}
}
