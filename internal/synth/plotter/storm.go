package plotter

import (
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// stormPort is the Overnet UDP port Storm variants commonly used.
const stormPort = 7871

// StormConfig parameterizes a Storm trace. Storm's behavior follows the
// published analyses: bots bootstrap from a hard-coded peer list, then
// run fixed machine timers — periodic Overnet searches for time-varying
// keys (to find botmaster commands) and publicize announcements, plus
// keepalive pings to routing-table contacts. Control messages are tiny;
// the P2P layer is used for rendezvous, not data transfer.
type StormConfig struct {
	// Bots is the number of infected machines in the honeynet (13 in the
	// paper's trace).
	Bots int
	// Day is the trace day (24 hours from midnight).
	Day time.Time
	// OverlayNodes is the simulated Overnet population size.
	OverlayNodes int
	// SeedPeers is the bot binary's hard-coded bootstrap list size.
	SeedPeers int
	// SearchPeriod is the command-search timer (same binary, same timer
	// on every bot).
	SearchPeriod time.Duration
	// KeysPerDay is the size of the day's rendezvous key set. Storm
	// derives its keys from the current date plus a small index, so the
	// whole botnet cycles the same few keys all day.
	KeysPerDay int
	// KeepalivePeriod is the contact-ping timer.
	KeepalivePeriod time.Duration
	// TimerJitter is the small fractional wobble of the timers.
	TimerJitter float64
	// MsgMedian is the median bytes a bot uploads per control flow.
	MsgMedian float64
	// AvoidSubnets keeps overlay peers out of the given prefixes.
	AvoidSubnets []flow.Subnet
}

// DefaultStormConfig mirrors the paper's trace: 13 bots, one day.
func DefaultStormConfig(day time.Time) StormConfig {
	return StormConfig{
		Bots:            13,
		Day:             day,
		OverlayNodes:    1500,
		SeedPeers:       120,
		SearchPeriod:    10 * time.Minute,
		KeysPerDay:      6,
		KeepalivePeriod: time.Minute,
		TimerJitter:     0.02,
		MsgMedian:       140,
		AvoidSubnets:    synth.InternalSubnets(),
	}
}

// Validate checks the configuration.
func (c *StormConfig) Validate() error {
	if c.Bots <= 0 || c.Bots > 200 {
		return fmt.Errorf("plotter: storm bots must be 1..200, got %d", c.Bots)
	}
	if c.OverlayNodes < c.SeedPeers || c.SeedPeers <= 0 {
		return fmt.Errorf("plotter: need overlay (%d) >= seeds (%d) > 0", c.OverlayNodes, c.SeedPeers)
	}
	if c.SearchPeriod <= 0 || c.KeepalivePeriod <= 0 {
		return fmt.Errorf("plotter: storm timers must be positive")
	}
	if c.KeysPerDay <= 0 {
		return fmt.Errorf("plotter: storm needs at least one rendezvous key per day")
	}
	if c.MsgMedian <= 0 {
		return fmt.Errorf("plotter: message size median must be positive")
	}
	return nil
}

// GenerateStorm synthesizes a 24-hour Storm honeynet trace.
func GenerateStorm(cfg StormConfig, seed int64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	day := dayStart(cfg.Day)
	sim := simnet.New(day, seed)
	ov, err := newBotnetOverlay(day, cfg.OverlayNodes, sim, cfg.AvoidSubnets)
	if err != nil {
		return nil, err
	}

	bots := make([]flow.IP, cfg.Bots)
	for i := range bots {
		bots[i] = HoneynetSubnet.Addr(uint32(10 + i))
		b := &stormBot{
			cfg:  cfg,
			addr: bots[i],
			sim:  sim,
			ov:   ov,
			rng:  sim.Fork(),
		}
		b.rt = kademlia.NewRoutingTable(kademlia.RandomID(b.rng), kademlia.DefaultK)
		b.start()
	}
	sim.Run(day.Add(24 * time.Hour))
	records := sim.Records()
	flow.SortByStart(records)
	return &Trace{Records: records, Bots: bots}, nil
}

// stormBot is one infected machine.
type stormBot struct {
	cfg   StormConfig
	addr  flow.IP
	sim   *simnet.Simulator
	ov    *kademlia.Overlay
	rng   *rand.Rand
	rt    *kademlia.RoutingTable
	seeds []kademlia.Contact
	ports synth.PortAlloc

	searchCycle int
}

// start boots the bot shortly after midnight (infected machines are
// already running) and arms the two machine timers.
func (b *stormBot) start() {
	bootDelay := simnet.UniformDur(b.rng, 0, 10*time.Minute)
	b.sim.After(bootDelay, func() {
		b.seeds = b.ov.SampleContacts(b.rng, b.cfg.SeedPeers)
		attempts := kademlia.Bootstrap(b.rt, b.ov, b.seeds, b.sim.Now(), b.rng, b.lookupConfig())
		b.emitAttempts(attempts, 0)
		b.sim.After(simnet.Jitter(b.rng, b.cfg.SearchPeriod, b.cfg.TimerJitter), b.search)
		b.sim.After(simnet.Jitter(b.rng, b.cfg.KeepalivePeriod, b.cfg.TimerJitter), b.keepalive)
	})
}

func (b *stormBot) lookupConfig() kademlia.LookupConfig {
	cfg := kademlia.DefaultLookupConfig()
	cfg.MaxQueries = 16
	return cfg
}

// reseed tops the routing table back up from the stored peer list when
// churn has emptied it — Storm re-reads its peer file rather than going
// dark.
func (b *stormBot) reseed() {
	if b.rt.Size() >= 10 {
		return
	}
	for _, c := range b.seeds {
		b.rt.Update(c)
	}
}

// search performs the periodic Overnet rendezvous for one of the day's
// command keys. Storm derives its keys from the current date plus a
// small index, so every bot in the botnet cycles the same small key set
// on the same timer — revisiting the same key regions (low churn) and
// sharing timing structure with its peers (the commonality θ_hm
// exploits). Most cycles are FIND_VALUE searches for botmaster commands;
// every few cycles the bot instead *publicizes*, STOREing its own
// contact under the key so other bots can find it.
func (b *stormBot) search() {
	b.reseed()
	day := b.sim.Now().YearDay()
	key := kademlia.KeyID(fmt.Sprintf("storm-cmd-%d-%d", day, b.searchCycle%b.cfg.KeysPerDay))
	b.searchCycle++
	if b.searchCycle%4 == 0 {
		pub := kademlia.IterativePublish(b.rt, b.ov, key, b.addr.String(), b.sim.Now(), b.rng, b.lookupConfig())
		b.emitAttempts(append(pub.Lookup, pub.Stores...), 0)
	} else {
		res := kademlia.IterativeFindValue(b.rt, b.ov, key, b.sim.Now(), b.rng, b.lookupConfig())
		b.emitAttempts(res.Attempts, 0)
	}
	b.sim.After(simnet.Jitter(b.rng, b.cfg.SearchPeriod, b.cfg.TimerJitter), b.search)
}

// keepalive pings routing-table contacts — the stored peer list the bot
// keeps returning to, which is what suppresses its churn. Stale entries
// are retried like live ones (the bot cannot tell them apart), feeding
// the high failed-connection rate.
func (b *stormBot) keepalive() {
	b.reseed()
	contacts := b.rt.Closest(b.rt.Self(), 12)
	for i, c := range contacts {
		c := c
		b.sim.After(time.Duration(i)*200*time.Millisecond, func() {
			ok := b.ov.Online(c.ID, b.sim.Now()) && !simnet.Bernoulli(b.rng, 0.05)
			b.emitControlFlow(c, ok)
			if !ok && simnet.Bernoulli(b.rng, 0.3) {
				// Evict unresponsive contacts only after a few tries.
				b.rt.Remove(c.ID)
			}
			// Peers that know the bot query it back: the bot sits in
			// *their* routing tables too, so the border also sees
			// inbound Overnet traffic (P2P hosts serve as well as ask).
			if ok && simnet.Bernoulli(b.rng, 0.25) {
				b.sim.After(simnet.UniformDur(b.rng, time.Second, 30*time.Second), func() {
					b.emitInboundFlow(c)
				})
			}
		})
	}
	b.sim.After(simnet.Jitter(b.rng, b.cfg.KeepalivePeriod, b.cfg.TimerJitter), b.keepalive)
}

// emitInboundFlow records one peer-initiated Overnet exchange arriving at
// the bot.
func (b *stormBot) emitInboundFlow(peer kademlia.Contact) {
	synth.EmitFlow(b.sim, synth.FlowSpec{
		Src: peer.Addr, Dst: b.addr,
		SrcPort: peer.Port, DstPort: stormPort, Proto: flow.UDP,
		Duration: simnet.UniformDur(b.rng, 50*time.Millisecond, 600*time.Millisecond),
		ReqBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian, 0.35)),
		RspBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian*1.6, 0.4)),
		Success:  true,
		Payload:  []byte{0xe3, 0x0b, 0x00, 0x01},
	})
}

// emitAttempts spaces a lookup's queries out the way the UDP client does.
func (b *stormBot) emitAttempts(attempts []kademlia.Attempt, i int) {
	if i >= len(attempts) {
		return
	}
	a := attempts[i]
	b.emitControlFlow(a.Peer, a.Responded)
	b.sim.After(simnet.UniformDur(b.rng, 50*time.Millisecond, 400*time.Millisecond), func() {
		b.emitAttempts(attempts, i+1)
	})
}

// emitControlFlow emits one tiny Overnet control exchange.
func (b *stormBot) emitControlFlow(peer kademlia.Contact, ok bool) {
	synth.EmitFlow(b.sim, synth.FlowSpec{
		Src: b.addr, Dst: peer.Addr,
		SrcPort: stormPort, DstPort: peer.Port, Proto: flow.UDP,
		Duration: simnet.UniformDur(b.rng, 50*time.Millisecond, 600*time.Millisecond),
		ReqBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian, 0.35)),
		RspBytes: uint64(simnet.LogNormalMedian(b.rng, b.cfg.MsgMedian*1.6, 0.4)),
		Success:  ok,
		// Overnet control messages are binary; Storm's carry no
		// file-sharing signature (0xe3 followed by an opcode outside the
		// eDonkey set, so ground-truth labeling does not match them).
		Payload: []byte{0xe3, 0x0b, 0x00, 0x00},
	})
}
