// Package crawler generates DHT crawler/indexer hosts — the designed
// hard case for the detection pipeline. A crawler walks the Kademlia
// overlay continuously on machine timers, contacting an endless stream of
// never-seen-before peers with churn-driven failures (a bot's churn and
// failure profile), while periodically pushing multi-MB crawl snapshots
// to its mirror endpoints (a Trader's upload volume). It coordinates with
// nothing: any detector that flags it is paying false positives for
// behavioral resemblance alone.
package crawler

import (
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// crawlerDHTPort is the source port the walker queries from.
const crawlerDHTPort = 6881

// Config parameterizes one crawler host.
type Config struct {
	// Host is the internal address running the crawler.
	Host flow.IP
	// Window bounds the crawler's activity.
	Window flow.Window
	// Network is the DHT population being crawled.
	Network *kademlia.Overlay
	// Mirrors supplies the external endpoints crawl snapshots are pushed
	// to.
	Mirrors *synth.ExternalIPPool
	// WalkInterval is the machine pacing between crawl rounds.
	WalkInterval time.Duration
	// SyncInterval is the pacing between snapshot pushes.
	SyncInterval time.Duration
	// SyncMedian is the median bytes uploaded per snapshot push — the
	// Trader-scale volume that defeats any pure-volume separation.
	SyncMedian float64
}

// DefaultConfig returns a crawler shaped like public DHT indexers:
// walk rounds every half minute, snapshot pushes every few minutes.
func DefaultConfig(host flow.IP, window flow.Window, network *kademlia.Overlay, mirrors *synth.ExternalIPPool) Config {
	return Config{
		Host: host, Window: window, Network: network, Mirrors: mirrors,
		WalkInterval: 30 * time.Second,
		SyncInterval: 4 * time.Minute,
		SyncMedian:   2_000_000,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Host == 0 {
		return fmt.Errorf("crawler: host unset")
	}
	if c.Network == nil {
		return fmt.Errorf("crawler: DHT network unset")
	}
	if c.Mirrors == nil {
		return fmt.Errorf("crawler: mirror pool unset")
	}
	if c.Window.Duration() <= 0 {
		return fmt.Errorf("crawler: empty window")
	}
	if c.WalkInterval <= 0 || c.SyncInterval <= 0 {
		return fmt.Errorf("crawler: intervals must be positive")
	}
	if c.SyncMedian <= 0 {
		return fmt.Errorf("crawler: sync median must be positive")
	}
	return nil
}

// Crawler simulates one DHT crawler/indexer host.
type Crawler struct {
	cfg   Config
	sim   *simnet.Simulator
	rng   *rand.Rand
	ports synth.PortAlloc
	rt    *kademlia.RoutingTable

	mirrors []flow.IP
}

// New creates a crawler and derives its private RNG stream.
func New(cfg Config, sim *simnet.Simulator) (*Crawler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Crawler{cfg: cfg, sim: sim, rng: sim.Fork()}
	c.rt = kademlia.NewRoutingTable(kademlia.RandomID(c.rng), kademlia.DefaultK)
	// A fixed, small mirror set: the crawler's only repeat destinations.
	for i := 0; i < 3; i++ {
		c.mirrors = append(c.mirrors, c.cfg.Mirrors.PickUniform(c.rng))
	}
	return c, nil
}

// Addr returns the crawler's internal address.
func (c *Crawler) Addr() flow.IP { return c.cfg.Host }

// Start bootstraps the routing table and schedules the walk and sync
// loops across the window.
func (c *Crawler) Start() {
	for _, s := range c.cfg.Network.SampleContacts(c.rng, 16) {
		c.rt.Update(s)
	}
	c.sim.Schedule(c.cfg.Window.From.Add(simnet.UniformDur(c.rng, 0, c.cfg.WalkInterval)), c.walkLoop)
	c.sim.Schedule(c.cfg.Window.From.Add(simnet.UniformDur(c.rng, 0, c.cfg.SyncInterval)), c.syncLoop)
}

func (c *Crawler) active() bool { return c.cfg.Window.Contains(c.sim.Now()) }

// walkLoop runs one crawl round: several iterative lookups toward random
// IDs, sweeping fresh regions of the address space every round. Almost
// every queried peer is new, and overlay churn makes many of them dead —
// the bot-like half of the profile.
func (c *Crawler) walkLoop() {
	if !c.active() {
		return
	}
	walks := 2 + c.rng.Intn(3)
	for i := 0; i < walks; i++ {
		attempts := kademlia.IterativeFindNode(c.rt, c.cfg.Network, kademlia.RandomID(c.rng), c.sim.Now(), c.rng, kademlia.DefaultLookupConfig())
		c.emitAttempts(attempts, 0)
	}
	c.sim.After(simnet.Jitter(c.rng, c.cfg.WalkInterval, 0.15), c.walkLoop)
}

// emitAttempts spaces one lookup's UDP queries out like a real walker.
func (c *Crawler) emitAttempts(attempts []kademlia.Attempt, i int) {
	if i >= len(attempts) || !c.active() {
		return
	}
	a := attempts[i]
	synth.EmitFlow(c.sim, synth.FlowSpec{
		Src: c.cfg.Host, Dst: a.Peer.Addr,
		SrcPort: crawlerDHTPort, DstPort: a.Peer.Port, Proto: flow.UDP,
		Duration: 250 * time.Millisecond,
		ReqBytes: uint64(simnet.LogNormalMedian(c.rng, 110, 0.2)),
		RspBytes: uint64(simnet.LogNormalMedian(c.rng, 420, 0.4)),
		Success:  a.Responded,
		Payload:  []byte("d1:ad2:id20:crawlcrawlcrawlcrawl"),
	})
	c.sim.After(simnet.UniformDur(c.rng, 30*time.Millisecond, 300*time.Millisecond), func() {
		c.emitAttempts(attempts, i+1)
	})
}

// syncLoop pushes the latest crawl snapshot to each mirror — the
// Trader-scale upload volume half of the profile.
func (c *Crawler) syncLoop() {
	if !c.active() {
		return
	}
	for _, m := range c.mirrors {
		m := m
		c.sim.After(simnet.UniformDur(c.rng, 0, 10*time.Second), func() {
			if !c.active() {
				return
			}
			synth.EmitFlow(c.sim, synth.FlowSpec{
				Src: c.cfg.Host, Dst: m,
				SrcPort: c.ports.Next(), DstPort: 443, Proto: flow.TCP,
				Duration: simnet.UniformDur(c.rng, 5*time.Second, time.Minute),
				ReqBytes: uint64(simnet.LogNormalMedian(c.rng, c.cfg.SyncMedian, 0.8)),
				RspBytes: uint64(simnet.LogNormalMedian(c.rng, 900, 0.4)),
				Success:  !simnet.Bernoulli(c.rng, 0.02),
			})
		})
	}
	c.sim.After(simnet.Jitter(c.rng, c.cfg.SyncInterval, 0.1), c.syncLoop)
}
