// Package scenario assembles complete evaluation datasets: CMU-like
// campus days (background hosts plus embedded Traders) and the two
// honeynet Plotter traces, mirroring §III of the paper. Everything is
// seeded and deterministic.
package scenario

import (
	"fmt"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
	"plotters/internal/synth/campus"
	"plotters/internal/synth/crawler"
	"plotters/internal/synth/plotter"
	"plotters/internal/synth/trader"
)

// DayConfig shapes one simulated collection day.
type DayConfig struct {
	// Day is the calendar day; collection runs 9 a.m.–3 p.m.
	Day time.Time
	// Seed drives all randomness for the day.
	Seed int64
	// CampusHosts is the background (non-P2P) host count.
	CampusHosts int
	// Gnutella, EMule, and BitTorrent are Trader counts per application.
	Gnutella   int
	EMule      int
	BitTorrent int
	// PeerNetworkNodes sizes the file-sharing peer population.
	PeerNetworkNodes int

	// The remaining fields enrich the world beyond the paper's campus;
	// all default to zero, and a zero value leaves the generated day
	// bit-identical to the original shape (no extra RNG forks happen).

	// EDonkey is the count of server-mediated eDonkey Traders (index
	// server lookups plus the rare-file long tail).
	EDonkey int
	// CrossSwarm is the count of BitTorrent Traders trading in
	// SwarmsPerPeer torrents concurrently.
	CrossSwarm int
	// SwarmsPerPeer is how many swarms each cross-swarm Trader joins
	// (0 defaults to 4 when CrossSwarm > 0).
	SwarmsPerPeer int
	// NATGateways is the count of campus addresses that aggregate
	// NATHostsBehind distinct user personas (plus one BitTorrent client)
	// behind a single border IP.
	NATGateways int
	// NATHostsBehind is the persona count behind each NAT gateway
	// (0 defaults to 6 when NATGateways > 0).
	NATHostsBehind int
	// DHTCrawlers is the count of DHT crawler/indexer hosts — bot-like
	// churn with Trader-like upload volume, the designed hard case.
	DHTCrawlers int
	// TimezoneSpread, in hours, switches the campus fleet to diurnal
	// session placement with activity peaks spread across timezones.
	TimezoneSpread int
}

// Role names attached to Day.Roles for the enriched host kinds.
const (
	RoleEDonkey    = "edonkey"
	RoleCrossSwarm = "cross-swarm"
	RoleNATGateway = "nat-gateway"
	RoleDHTCrawler = "dht-crawler"
)

// DefaultDayConfig returns the evaluation's per-day shape: a few hundred
// background hosts and a few dozen Traders, scaled down from the campus
// trace but preserving the population ratios that matter (≈10% Traders).
func DefaultDayConfig(day time.Time, seed int64) DayConfig {
	return DayConfig{
		Day:              day,
		Seed:             seed,
		CampusHosts:      360,
		Gnutella:         10,
		EMule:            12,
		BitTorrent:       20,
		PeerNetworkNodes: 2500,
	}
}

// Validate checks the configuration.
func (c *DayConfig) Validate() error {
	if c.CampusHosts <= 0 {
		return fmt.Errorf("scenario: campus hosts must be positive, got %d", c.CampusHosts)
	}
	if c.Gnutella < 0 || c.EMule < 0 || c.BitTorrent < 0 {
		return fmt.Errorf("scenario: trader counts must be non-negative")
	}
	if c.PeerNetworkNodes < 100 {
		return fmt.Errorf("scenario: peer network too small (%d)", c.PeerNetworkNodes)
	}
	if c.EDonkey < 0 || c.CrossSwarm < 0 || c.NATGateways < 0 || c.DHTCrawlers < 0 {
		return fmt.Errorf("scenario: enriched-world host counts must be non-negative")
	}
	if c.SwarmsPerPeer < 0 || c.NATHostsBehind < 0 || c.TimezoneSpread < 0 {
		return fmt.Errorf("scenario: enriched-world shape parameters must be non-negative")
	}
	return nil
}

// Day is one synthesized collection day.
type Day struct {
	// Window is the 9 a.m.–3 p.m. collection window.
	Window flow.Window
	// Records holds all border flows observed in the window, time-sorted.
	Records []flow.Record
	// TraderHosts maps each embedded Trader to its application.
	TraderHosts map[flow.IP]trader.App
	// CampusHosts lists the background host addresses.
	CampusHosts []flow.IP
	// Roles maps enriched-world hosts (eDonkey, cross-swarm, NAT
	// gateway, DHT crawler) to their role name; nil for plain days.
	Roles map[flow.IP]string
}

// RoleCounts tallies Roles by role name (empty for plain days).
func (d *Day) RoleCounts() map[string]int {
	out := make(map[string]int)
	for _, role := range d.Roles {
		out[role]++
	}
	return out
}

// GenerateDay synthesizes one campus day with embedded Traders.
func GenerateDay(cfg DayConfig) (*Day, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	window := synth.CollectionWindow(cfg.Day)
	sim := simnet.New(window.From, cfg.Seed)

	webPool := synth.NewExternalIPPool(sim.Fork(), 2500, 1.3)
	trackerPool := synth.NewExternalIPPool(sim.Fork(), 60, 1.2)

	peerNet, err := kademlia.NewOverlay(kademlia.OverlayConfig{
		Nodes:         cfg.PeerNetworkNodes,
		Start:         window.From.Add(-2 * time.Hour),
		Horizon:       window.Duration() + 4*time.Hour,
		MedianSession: 25 * time.Minute,
		MedianOffline: 2 * time.Hour,
		SessionSigma:  1.0,
		AvoidSubnets:  append(synth.InternalSubnets(), plotter.HoneynetSubnet),
		Port:          6881,
	}, sim.Fork())
	if err != nil {
		return nil, fmt.Errorf("scenario: building peer network: %w", err)
	}

	var plan synth.AddrPlan
	fleet, err := campus.NewPopulation(campus.PopulationConfig{
		Hosts:          cfg.CampusHosts,
		Window:         window,
		WebPool:        webPool,
		TimezoneSpread: time.Duration(cfg.TimezoneSpread) * time.Hour,
	}, &plan, sim)
	if err != nil {
		return nil, err
	}
	campus.StartAll(fleet)
	campusAddrs := make([]flow.IP, len(fleet))
	for i, h := range fleet {
		campusAddrs[i] = h.Addr()
	}

	traders := make(map[flow.IP]trader.App)
	addTraders := func(app trader.App, n int) error {
		for i := 0; i < n; i++ {
			host := plan.NextInternal()
			tc := trader.DefaultConfig(host, app, window, peerNet, trackerPool)
			rng := sim.Fork()
			tc.Sessions = 2 + rng.Intn(3)
			tr, err := trader.New(tc, sim)
			if err != nil {
				return err
			}
			tr.Start()
			traders[host] = app
		}
		return nil
	}
	if err := addTraders(trader.Gnutella, cfg.Gnutella); err != nil {
		return nil, err
	}
	if err := addTraders(trader.EMule, cfg.EMule); err != nil {
		return nil, err
	}
	if err := addTraders(trader.BitTorrent, cfg.BitTorrent); err != nil {
		return nil, err
	}

	// Enriched-world hosts come after the classic population so zero
	// counts leave the simulation's fork order — and hence every record —
	// bit-identical to the original day shape.
	roles := make(map[flow.IP]string)
	for i := 0; i < cfg.EDonkey; i++ {
		host := plan.NextInternal()
		tc := trader.DefaultConfig(host, trader.EDonkey, window, peerNet, trackerPool)
		rng := sim.Fork()
		tc.Sessions = 2 + rng.Intn(3)
		tr, err := trader.New(tc, sim)
		if err != nil {
			return nil, err
		}
		tr.Start()
		traders[host] = trader.EDonkey
		roles[host] = RoleEDonkey
	}
	swarms := cfg.SwarmsPerPeer
	if swarms == 0 {
		swarms = 4
	}
	for i := 0; i < cfg.CrossSwarm; i++ {
		host := plan.NextInternal()
		tc := trader.DefaultConfig(host, trader.BitTorrent, window, peerNet, trackerPool)
		rng := sim.Fork()
		tc.Sessions = 2 + rng.Intn(3)
		tc.Swarms = swarms
		tr, err := trader.New(tc, sim)
		if err != nil {
			return nil, err
		}
		tr.Start()
		traders[host] = trader.BitTorrent
		roles[host] = RoleCrossSwarm
	}
	behind := cfg.NATHostsBehind
	if behind == 0 {
		behind = 6
	}
	for i := 0; i < cfg.NATGateways; i++ {
		addr := plan.NextInternal()
		prng := sim.Fork()
		// behind−1 user personas plus one file-sharing persona share the
		// gateway address: the border sees their union as one host.
		for j := 0; j < behind-1; j++ {
			h, err := campus.New(campus.RandomConfig(prng, addr, window, webPool), sim)
			if err != nil {
				return nil, err
			}
			h.Start()
		}
		tc := trader.DefaultConfig(addr, trader.BitTorrent, window, peerNet, trackerPool)
		tc.Sessions = 1 + prng.Intn(2)
		tr, err := trader.New(tc, sim)
		if err != nil {
			return nil, err
		}
		tr.Start()
		traders[addr] = trader.BitTorrent
		roles[addr] = RoleNATGateway
	}
	for i := 0; i < cfg.DHTCrawlers; i++ {
		host := plan.NextInternal()
		cr, err := crawler.New(crawler.DefaultConfig(host, window, peerNet, webPool), sim)
		if err != nil {
			return nil, err
		}
		cr.Start()
		roles[host] = RoleDHTCrawler
	}
	if len(roles) == 0 {
		roles = nil
	}

	sim.Run(window.To)
	records := window.Filter(sim.Records())
	flow.SortByStart(records)
	return &Day{
		Window:      window,
		Records:     records,
		TraderHosts: traders,
		CampusHosts: campusAddrs,
		Roles:       roles,
	}, nil
}

// DatasetConfig shapes a full evaluation dataset: several collection days
// plus one Storm and one Nugache honeynet trace (the paper overlays the
// same 24-hour traces onto every day).
type DatasetConfig struct {
	// Days is the number of collection days (the paper uses eight).
	Days int
	// FirstDay is the first calendar day.
	FirstDay time.Time
	// Seed drives everything.
	Seed int64
	// DayTemplate shapes each day (Day and Seed fields are overwritten
	// per day).
	DayTemplate DayConfig
	// Storm and Nugache shape the honeynet traces. Their Day fields are
	// overwritten with FirstDay.
	Storm   plotter.StormConfig
	Nugache plotter.NugacheConfig
}

// DefaultDatasetConfig mirrors the paper's evaluation: eight days in
// November 2007, 13 Storm bots, 82 Nugache bots.
func DefaultDatasetConfig(seed int64) DatasetConfig {
	first := time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
	return DatasetConfig{
		Days:        8,
		FirstDay:    first,
		Seed:        seed,
		DayTemplate: DefaultDayConfig(first, seed),
		Storm:       plotter.DefaultStormConfig(first),
		Nugache:     plotter.DefaultNugacheConfig(first),
	}
}

// Dataset is the full synthesized corpus.
type Dataset struct {
	Days    []*Day
	Storm   *plotter.Trace
	Nugache *plotter.Trace
}

// GenerateDataset synthesizes the full corpus.
func GenerateDataset(cfg DatasetConfig) (*Dataset, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("scenario: days must be positive, got %d", cfg.Days)
	}
	ds := &Dataset{}
	for d := 0; d < cfg.Days; d++ {
		dayCfg := cfg.DayTemplate
		dayCfg.Day = cfg.FirstDay.AddDate(0, 0, d)
		dayCfg.Seed = cfg.Seed + int64(d)*7919
		day, err := GenerateDay(dayCfg)
		if err != nil {
			return nil, fmt.Errorf("scenario: day %d: %w", d, err)
		}
		ds.Days = append(ds.Days, day)
	}
	stormCfg := cfg.Storm
	stormCfg.Day = cfg.FirstDay
	storm, err := plotter.GenerateStorm(stormCfg, cfg.Seed+100003)
	if err != nil {
		return nil, fmt.Errorf("scenario: storm trace: %w", err)
	}
	ds.Storm = storm
	nugCfg := cfg.Nugache
	nugCfg.Day = cfg.FirstDay
	nugache, err := plotter.GenerateNugache(nugCfg, cfg.Seed+200003)
	if err != nil {
		return nil, fmt.Errorf("scenario: nugache trace: %w", err)
	}
	ds.Nugache = nugache
	return ds, nil
}
