package scenario

import (
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/label"
	"plotters/internal/synth"
)

func day() time.Time {
	return time.Date(2007, time.November, 5, 0, 0, 0, 0, time.UTC)
}

// smallDay returns a cheap day config for tests.
func smallDay(seed int64) DayConfig {
	cfg := DefaultDayConfig(day(), seed)
	cfg.CampusHosts = 60
	cfg.Gnutella = 2
	cfg.EMule = 2
	cfg.BitTorrent = 3
	cfg.PeerNetworkNodes = 500
	return cfg
}

func TestDayConfigValidate(t *testing.T) {
	good := smallDay(1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*DayConfig){
		func(c *DayConfig) { c.CampusHosts = 0 },
		func(c *DayConfig) { c.Gnutella = -1 },
		func(c *DayConfig) { c.PeerNetworkNodes = 10 },
	}
	for i, mutate := range mutations {
		cfg := smallDay(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGenerateDay(t *testing.T) {
	d, err := GenerateDay(smallDay(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) < 1000 {
		t.Fatalf("day has only %d records", len(d.Records))
	}
	if len(d.TraderHosts) != 7 {
		t.Fatalf("traders = %d, want 7", len(d.TraderHosts))
	}
	if len(d.CampusHosts) != 60 {
		t.Fatalf("campus hosts = %d", len(d.CampusHosts))
	}
	// All records inside the collection window and time-sorted.
	for i := range d.Records {
		if !d.Window.Contains(d.Records[i].Start) {
			t.Fatal("record outside window")
		}
		if i > 0 && d.Records[i].Start.Before(d.Records[i-1].Start) {
			t.Fatal("records not sorted")
		}
		if !synth.IsInternal(d.Records[i].Src) && !synth.IsInternal(d.Records[i].Dst) {
			t.Fatal("record touches no internal host")
		}
	}
	// Trader hosts and campus hosts are disjoint.
	campus := make(map[flow.IP]bool)
	for _, h := range d.CampusHosts {
		campus[h] = true
	}
	for h := range d.TraderHosts {
		if campus[h] {
			t.Fatalf("host %v is both campus and trader", h)
		}
	}
	// Payload labeling rediscovers (at least most of) the planted Traders
	// and no campus hosts.
	labeled := label.Traders(d.Records, synth.IsInternal)
	found := 0
	for h := range labeled {
		if _, ok := d.TraderHosts[h]; ok {
			found++
		} else {
			t.Errorf("non-trader host %v labeled as trader", h)
		}
	}
	if found < len(d.TraderHosts)-2 {
		t.Errorf("labeling found %d of %d traders", found, len(d.TraderHosts))
	}
}

func TestGenerateDayDeterminism(t *testing.T) {
	a, err := GenerateDay(smallDay(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDay(smallDay(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i].Src != b.Records[i].Src || !a.Records[i].Start.Equal(b.Records[i].Start) {
			t.Fatalf("days diverge at %d", i)
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	cfg := DefaultDatasetConfig(5)
	cfg.Days = 2
	cfg.DayTemplate = smallDay(5)
	cfg.Storm.Bots = 3
	cfg.Storm.OverlayNodes = 400
	cfg.Storm.SeedPeers = 40
	cfg.Nugache.Bots = 5
	cfg.Nugache.OverlayNodes = 300
	ds, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Days) != 2 {
		t.Fatalf("days = %d", len(ds.Days))
	}
	// Consecutive calendar days.
	if got := ds.Days[1].Window.From.Sub(ds.Days[0].Window.From); got != 24*time.Hour {
		t.Errorf("day spacing = %v", got)
	}
	// Days differ (different seeds).
	if len(ds.Days[0].Records) == len(ds.Days[1].Records) {
		t.Log("day sizes equal (possible but unlikely); checking content")
		same := true
		for i := range ds.Days[0].Records {
			if ds.Days[0].Records[i].Src != ds.Days[1].Records[i].Src {
				same = false
				break
			}
		}
		if same {
			t.Error("two days are identical")
		}
	}
	if len(ds.Storm.Bots) != 3 || len(ds.Nugache.Bots) != 5 {
		t.Errorf("bot counts = %d/%d", len(ds.Storm.Bots), len(ds.Nugache.Bots))
	}
	if len(ds.Storm.Records) == 0 || len(ds.Nugache.Records) == 0 {
		t.Error("empty bot traces")
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	cfg := DefaultDatasetConfig(1)
	cfg.Days = 0
	if _, err := GenerateDataset(cfg); err == nil {
		t.Error("zero days accepted")
	}
}
