// Package synth holds the shared building blocks of the traffic
// generators: the campus address plan, ephemeral port allocation, flow
// assembly helpers, and the common generator configuration. The actual
// behavioral models live in the subpackages campus (background hosts),
// trader (Gnutella/eMule/BitTorrent file-sharers), and plotter
// (Storm/Nugache bots); the scenario subpackage assembles whole datasets.
package synth

import (
	"math/rand"
	"time"

	"plotters/internal/flow"
	"plotters/internal/simnet"
)

// The monitored enterprise: two /16 subnets, mirroring the CMU campus
// network the paper's dataset was collected from.
var (
	CampusNetA = flow.MustParseSubnet("128.2.0.0/16")
	CampusNetB = flow.MustParseSubnet("128.237.0.0/16")
)

// InternalSubnets returns the monitored prefixes.
func InternalSubnets() []flow.Subnet {
	return []flow.Subnet{CampusNetA, CampusNetB}
}

// IsInternal reports whether ip belongs to the monitored network.
func IsInternal(ip flow.IP) bool {
	return CampusNetA.Contains(ip) || CampusNetB.Contains(ip)
}

// CollectionStart returns 9 a.m. local (simulated) time on the given
// day — the start of the paper's daily collection window.
func CollectionStart(day time.Time) time.Time {
	return time.Date(day.Year(), day.Month(), day.Day(), 9, 0, 0, 0, time.UTC)
}

// CollectionWindow returns the paper's daily observation window,
// 9 a.m.–3 p.m.
func CollectionWindow(day time.Time) flow.Window {
	start := CollectionStart(day)
	return flow.Window{From: start, To: start.Add(6 * time.Hour)}
}

// AddrPlan hands out internal host addresses across the two campus
// subnets, alternating between them.
type AddrPlan struct {
	next uint32
}

// NextInternal returns a fresh internal address.
func (p *AddrPlan) NextInternal() flow.IP {
	p.next++
	// Skip .0.0 and low addresses reserved for routers in each subnet.
	idx := p.next + 256
	if p.next%2 == 0 {
		return CampusNetA.Addr(idx)
	}
	return CampusNetB.Addr(idx)
}

// PortAlloc hands out ephemeral source ports in the dynamic range,
// wrapping around like a real OS allocator.
type PortAlloc struct {
	next uint16
}

// Next returns the next ephemeral port.
func (p *PortAlloc) Next() uint16 {
	const lo, hi = 49152, 65535
	if p.next < lo || p.next >= hi {
		p.next = lo
	}
	port := p.next
	p.next++
	return port
}

// FlowSpec describes one flow for EmitFlow.
type FlowSpec struct {
	Src      flow.IP
	Dst      flow.IP
	SrcPort  uint16
	DstPort  uint16
	Proto    flow.Proto
	Duration time.Duration
	ReqBytes uint64 // bytes uploaded by the initiator
	RspBytes uint64 // bytes returned by the responder
	Success  bool
	Payload  []byte
}

// Per-packet wire overhead: Argus byte counters measure bytes on the
// wire, including IP and transport headers — which is why even failed
// connection attempts contribute non-zero bytes.
const (
	tcpHeaderBytes = 40 // IP (20) + TCP (20)
	udpHeaderBytes = 28 // IP (20) + UDP (8)
	synPacketBytes = 60 // SYN with options
)

// EmitFlow assembles a flow record starting at the simulator's current
// time and emits it. ReqBytes/RspBytes are application payload volumes;
// the emitted record carries wire bytes (payload plus per-packet header
// overhead), matching what a flow monitor actually counts. Failed flows
// carry only the initiator's futile packets.
func EmitFlow(sim *simnet.Simulator, spec FlowSpec) {
	start := sim.Now()
	state := flow.StateEstablished
	srcPkts := pktsFor(spec.ReqBytes, spec.Proto)
	dstPkts := pktsFor(spec.RspBytes, spec.Proto)
	srcBytes := wireBytes(spec.ReqBytes, srcPkts, spec.Proto)
	dstBytes := wireBytes(spec.RspBytes, dstPkts, spec.Proto)
	if !spec.Success {
		state = flow.StateFailed
		// Unanswered attempt: a few retransmitted packets, no response.
		if spec.Proto == flow.TCP {
			srcPkts = 3 // SYN retries
			srcBytes = 3 * synPacketBytes
		} else {
			srcPkts = 1
			if spec.ReqBytes > 128 {
				spec.ReqBytes = 128
			}
			srcBytes = spec.ReqBytes + udpHeaderBytes
		}
		dstPkts = 0
		dstBytes = 0
		spec.Payload = nil
		if spec.Duration > 10*time.Second || spec.Duration <= 0 {
			spec.Duration = 3 * time.Second // timeout
		}
	}
	if spec.Duration <= 0 {
		spec.Duration = 50 * time.Millisecond
	}
	payload := spec.Payload
	if len(payload) > flow.MaxPayload {
		payload = payload[:flow.MaxPayload]
	}
	sim.Emit(flow.Record{
		Src:      spec.Src,
		Dst:      spec.Dst,
		SrcPort:  spec.SrcPort,
		DstPort:  spec.DstPort,
		Proto:    spec.Proto,
		Start:    start,
		End:      start.Add(spec.Duration),
		SrcPkts:  srcPkts,
		DstPkts:  dstPkts,
		SrcBytes: srcBytes,
		DstBytes: dstBytes,
		State:    state,
		Payload:  payload,
	})
}

// pktsFor estimates a packet count for a payload volume.
func pktsFor(bytes uint64, proto flow.Proto) uint32 {
	const mss = 700
	pkts := bytes / mss
	if bytes%mss != 0 || bytes == 0 {
		pkts++
	}
	if proto == flow.TCP {
		pkts += 3 // handshake + teardown overhead
	}
	if pkts > 1<<31 {
		pkts = 1 << 31
	}
	return uint32(pkts)
}

// wireBytes converts payload bytes to on-the-wire bytes.
func wireBytes(payload uint64, pkts uint32, proto flow.Proto) uint64 {
	hdr := uint64(udpHeaderBytes)
	if proto == flow.TCP {
		hdr = tcpHeaderBytes
	}
	return payload + uint64(pkts)*hdr
}

// ExternalIPPool is a fixed population of external service addresses
// (web servers, mail hosts, trackers) with Zipfian popularity.
type ExternalIPPool struct {
	addrs []flow.IP
	zipf  *rand.Zipf
}

// NewExternalIPPool draws n distinct public addresses outside the campus
// subnets, with popularity skew s (>1; larger = more skewed).
func NewExternalIPPool(rng *rand.Rand, n int, s float64) *ExternalIPPool {
	seen := make(map[flow.IP]bool, n)
	addrs := make([]flow.IP, 0, n)
	for len(addrs) < n {
		ip := flow.IP(rng.Uint32())
		first, _, _, _ := ip.Octets()
		if first == 0 || first == 10 || first == 127 || first >= 224 || IsInternal(ip) || seen[ip] {
			continue
		}
		seen[ip] = true
		addrs = append(addrs, ip)
	}
	return &ExternalIPPool{
		addrs: addrs,
		zipf:  rand.NewZipf(rng, s, 1, uint64(n-1)),
	}
}

// Pick draws an address by popularity.
func (p *ExternalIPPool) Pick() flow.IP {
	return p.addrs[p.zipf.Uint64()]
}

// PickUniform draws an address uniformly.
func (p *ExternalIPPool) PickUniform(rng *rand.Rand) flow.IP {
	return p.addrs[rng.Intn(len(p.addrs))]
}

// Size returns the pool size.
func (p *ExternalIPPool) Size() int { return len(p.addrs) }
