package trader

import (
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// eMule conventional ports: TCP peer/server traffic and UDP KAD.
const (
	emuleTCPPort = 4662
	emuleSrvPort = 4661
	emuleKADPort = 4672
)

// eMule wire prefixes (Kulbak & Bickson): 0xe3 heads eDonkey messages.
// TCP frames carry a 4-byte length before the opcode; UDP KAD packets put
// the opcode immediately after the header byte.
func emuleTCPHello() []byte {
	return []byte{0xe3, 0x55, 0x00, 0x00, 0x00, 0x01, 0x10}
}

func emuleKADReq() []byte {
	return []byte{0xe3, 0x21, 0x02, 0x04}
}

// emuleConnect opens the session: log into an index server, bootstrap
// KAD, then run the download/upload queue.
func (t *Trader) emuleConnect() {
	server := t.cfg.Trackers.Pick()
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: server,
		SrcPort: t.ports.Next(), DstPort: emuleSrvPort, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, time.Second, 10*time.Second),
		ReqBytes: 700, RspBytes: 4000,
		Success: !simnet.Bernoulli(t.rng, t.cfg.FailBias),
		Payload: emuleTCPHello(),
	})
	// KAD bootstrap: a burst of UDP lookups seeding the routing table.
	seeds := t.cfg.Network.SampleContacts(t.rng, 10)
	for _, s := range seeds {
		t.rt.Update(s)
	}
	t.sim.After(simnet.UniformDur(t.rng, time.Second, 5*time.Second), t.emuleKADLookup)
	t.sim.After(simnet.UniformDur(t.rng, 5*time.Second, 30*time.Second), t.emuleTransferLoop)
}

// emuleKADLookup runs one KAD keyword/source search: UDP queries to
// DHT peers, mostly new addresses, with churn-driven failures.
func (t *Trader) emuleKADLookup() {
	if !t.inSession() {
		return
	}
	target := kademlia.RandomID(t.rng)
	attempts := kademlia.IterativeFindNode(t.rt, t.cfg.Network, target, t.sim.Now(), t.rng, kademlia.DefaultLookupConfig())
	t.emitKADAttempts(attempts, 0)
	// Sources refresh every few minutes while downloads are queued.
	t.sim.After(t.paced(simnet.UniformDur(t.rng, 2*time.Minute, 6*time.Minute)), t.emuleKADLookup)
}

// emitKADAttempts spaces the lookup's UDP queries a few hundred
// milliseconds apart, as the real client does.
func (t *Trader) emitKADAttempts(attempts []kademlia.Attempt, i int) {
	if i >= len(attempts) || !t.inSession() {
		return
	}
	a := attempts[i]
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: a.Peer.Addr,
		SrcPort: emuleKADPort, DstPort: a.Peer.Port, Proto: flow.UDP,
		Duration: 300 * time.Millisecond,
		ReqBytes: uint64(simnet.LogNormalMedian(t.rng, 70, 0.3)),
		RspBytes: uint64(simnet.LogNormalMedian(t.rng, 350, 0.5)),
		Success:  a.Responded,
		Payload:  emuleKADReq(),
	})
	t.sim.After(simnet.UniformDur(t.rng, 100*time.Millisecond, 700*time.Millisecond), func() {
		t.emitKADAttempts(attempts, i+1)
	})
}

// emuleTransferLoop exchanges file parts with source peers: downloads
// from queued sources and uploads from the shared folder (eMule's credit
// system makes Traders upload heavily).
func (t *Trader) emuleTransferLoop() {
	if !t.inSession() {
		return
	}
	sources := t.cfg.Network.SampleContacts(t.rng, 1+t.rng.Intn(4))
	for _, peer := range sources {
		peer := peer
		t.sim.After(simnet.UniformDur(t.rng, 0, 20*time.Second), func() {
			if !t.inSession() {
				return
			}
			ok := t.peerOnline(peer)
			upload := simnet.Bernoulli(t.rng, 0.45)
			req := simnet.LogNormalMedian(t.rng, 900, 0.5)
			rsp := simnet.LogNormalMedian(t.rng, float64(t.cfg.UploadMedian)*3, t.cfg.UploadSigma)
			if upload {
				req = simnet.LogNormalMedian(t.rng, t.cfg.UploadMedian, t.cfg.UploadSigma)
				rsp = simnet.LogNormalMedian(t.rng, 1200, 0.5)
			}
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: peer.Addr,
				SrcPort: t.ports.Next(), DstPort: emuleTCPPort, Proto: flow.TCP,
				Duration: simnet.UniformDur(t.rng, 10*time.Second, 6*time.Minute),
				ReqBytes: uint64(req), RspBytes: uint64(rsp),
				Success: ok,
				Payload: emuleTCPHello(),
			})
		})
	}
	// Credit-system peers dial in for their queued parts.
	if simnet.Bernoulli(t.rng, 0.5) {
		t.sim.After(simnet.UniformDur(t.rng, time.Second, 45*time.Second), func() {
			if t.inSession() {
				t.emitInbound(emuleTCPPort, emuleTCPHello(), 900, t.cfg.UploadMedian)
			}
		})
	}
	t.sim.After(t.humanGap(15), t.emuleTransferLoop)
}
