// Package trader generates P2P file-sharing traffic — the Traders the
// detection pipeline must *not* flag. Three protocol models are provided,
// matching the applications the paper labels by payload signature:
// Gnutella, eMule, and BitTorrent. All three share the behavioral traits
// the paper measures: large transfers (high bytes-per-flow), high peer
// churn driven by content availability, high failed-connection rates, and
// human-paced, irregular timing.
package trader

import (
	"fmt"
	"math/rand"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// App selects the file-sharing protocol a Trader runs.
type App int

// Supported file-sharing applications.
const (
	Gnutella App = iota + 1
	EMule
	BitTorrent
	// EDonkey is the server-mediated eDonkey client shape measured by the
	// distributed-honeypot studies: index-server lookups instead of DHT
	// walks, and a rare-file long tail in which most source fetches chase
	// files with few (often offline) providers.
	EDonkey
)

// String names the application.
func (a App) String() string {
	switch a {
	case Gnutella:
		return "gnutella"
	case EMule:
		return "emule"
	case BitTorrent:
		return "bittorrent"
	case EDonkey:
		return "edonkey"
	default:
		return fmt.Sprintf("app(%d)", int(a))
	}
}

// Config parameterizes one Trader host.
type Config struct {
	// Host is the internal address running the file-sharing client.
	Host flow.IP
	// App selects the protocol model.
	App App
	// Window bounds the host's activity.
	Window flow.Window
	// Network is the file-sharing peer population (with churn). Peers,
	// ultrapeers, and DHT nodes are drawn from it.
	Network *kademlia.Overlay
	// Trackers supplies tracker / index-server addresses.
	Trackers *synth.ExternalIPPool
	// Sessions is the number of active periods within the window
	// (measurement studies: most Traders appear once, some a few times).
	Sessions int
	// SessionMedian is the median session length.
	SessionMedian time.Duration
	// UploadMedian is the median bytes uploaded per transfer flow — the
	// multi-MB media transfers that dominate Trader volume.
	UploadMedian float64
	// UploadSigma spreads transfer sizes.
	UploadSigma float64
	// FailBias adds protocol-independent connection failure probability
	// on top of peer churn.
	FailBias float64
	// Swarms is the number of torrents a BitTorrent Trader trades in
	// concurrently (0 or 1 = the classic single-swarm client). Cross-swarm
	// peers announce to one tracker per swarm and mix piece traffic from
	// every swarm's peer set, the multi-torrent participation the
	// BitTorrent measurement studies report.
	Swarms int
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Host == 0 {
		return fmt.Errorf("trader: host unset")
	}
	if c.App < Gnutella || c.App > EDonkey {
		return fmt.Errorf("trader: unknown app %d", c.App)
	}
	if c.Swarms < 0 {
		return fmt.Errorf("trader: swarms must be non-negative, got %d", c.Swarms)
	}
	if c.Swarms > 1 && c.App != BitTorrent {
		return fmt.Errorf("trader: cross-swarm participation requires BitTorrent, got %s", c.App)
	}
	if c.Network == nil {
		return fmt.Errorf("trader: peer network unset")
	}
	if c.Trackers == nil {
		return fmt.Errorf("trader: tracker pool unset")
	}
	if c.Window.Duration() <= 0 {
		return fmt.Errorf("trader: empty window")
	}
	if c.Sessions <= 0 {
		return fmt.Errorf("trader: sessions must be positive, got %d", c.Sessions)
	}
	if c.SessionMedian <= 0 {
		return fmt.Errorf("trader: session median must be positive")
	}
	if c.UploadMedian <= 0 {
		return fmt.Errorf("trader: upload median must be positive")
	}
	return nil
}

// DefaultConfig returns a Trader shaped like the measurement studies the
// paper cites: one-to-few sessions a day, minutes-to-hours long, multi-MB
// transfers.
func DefaultConfig(host flow.IP, app App, window flow.Window, network *kademlia.Overlay, trackers *synth.ExternalIPPool) Config {
	return Config{
		Host: host, App: app, Window: window,
		Network: network, Trackers: trackers,
		Sessions:      2,
		SessionMedian: 100 * time.Minute,
		UploadMedian:  300_000,
		UploadSigma:   1.4,
		FailBias:      0.08,
	}
}

// Trader simulates one file-sharing host.
type Trader struct {
	cfg   Config
	sim   *simnet.Simulator
	rng   *rand.Rand
	ports synth.PortAlloc
	rt    *kademlia.RoutingTable

	// pace is the host's behavioral personality: a per-user multiplier on
	// every human-driven delay. Different people browse, queue, and
	// refresh at different speeds, which is precisely why Traders do not
	// share the common timing structure that bots of one botnet do.
	pace float64

	sessionEnd     time.Time
	ultrapeers     []kademlia.Contact
	swarm          []kademlia.Contact
	announcePeriod time.Duration
}

// New creates a Trader.
func New(cfg Config, sim *simnet.Simulator) (*Trader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Trader{cfg: cfg, sim: sim, rng: sim.Fork()}
	t.rt = kademlia.NewRoutingTable(kademlia.RandomID(t.rng), kademlia.DefaultK)
	t.pace = simnet.LogNormalMedian(t.rng, 1, 0.7)
	if t.pace < 0.2 {
		t.pace = 0.2
	}
	if t.pace > 6 {
		t.pace = 6
	}
	return t, nil
}

// paced scales a nominal delay by the host's personality.
func (t *Trader) paced(d time.Duration) time.Duration {
	return time.Duration(float64(d) * t.pace)
}

// Addr returns the Trader's internal address.
func (t *Trader) Addr() flow.IP { return t.cfg.Host }

// App returns the protocol the Trader runs.
func (t *Trader) App() App { return t.cfg.App }

// Start schedules the Trader's sessions across the window.
func (t *Trader) Start() {
	for i := 0; i < t.cfg.Sessions; i++ {
		at := t.cfg.Window.From.Add(simnet.UniformDur(t.rng, 0, t.cfg.Window.Duration()*3/4))
		t.sim.Schedule(at, t.beginSession)
	}
}

// beginSession opens one active period: bootstrap into the network, then
// drive protocol-specific activity until the session ends.
func (t *Trader) beginSession() {
	length := time.Duration(simnet.LogNormalMedian(t.rng, float64(t.cfg.SessionMedian), 0.7))
	end := t.sim.Now().Add(length)
	if wEnd := t.cfg.Window.To; end.After(wEnd) {
		end = wEnd
	}
	t.sessionEnd = end

	switch t.cfg.App {
	case Gnutella:
		t.gnutellaConnect()
	case EMule:
		t.emuleConnect()
	case BitTorrent:
		t.bittorrentJoin()
		if t.cfg.Swarms > 1 {
			t.startExtraSwarms()
		}
	case EDonkey:
		t.edonkeyConnect()
	}
}

func (t *Trader) inSession() bool {
	return t.sim.Now().Before(t.sessionEnd) && t.cfg.Window.Contains(t.sim.Now())
}

// peerOnline folds overlay churn and the failure bias into one
// success draw for a connection to the given peer.
func (t *Trader) peerOnline(c kademlia.Contact) bool {
	return t.cfg.Network.Online(c.ID, t.sim.Now()) && !simnet.Bernoulli(t.rng, t.cfg.FailBias)
}

// emitInbound records a peer-initiated connection arriving at the
// Trader — file-sharing hosts serve as much as they fetch, so the border
// sees inbound traffic on the application port too.
func (t *Trader) emitInbound(dstPort uint16, payload []byte, reqMedian, rspMedian float64) {
	peer := t.cfg.Network.SampleContacts(t.rng, 1)[0]
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: peer.Addr, Dst: t.cfg.Host,
		SrcPort: 50000 + uint16(t.rng.Intn(10000)), DstPort: dstPort, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, time.Second, 3*time.Minute),
		ReqBytes: uint64(simnet.LogNormalMedian(t.rng, reqMedian, 0.6)),
		RspBytes: uint64(simnet.LogNormalMedian(t.rng, rspMedian, t.cfg.UploadSigma)),
		Success:  true,
		Payload:  payload,
	})
}

// humanGap samples the Pareto-tailed pause between user-driven actions,
// scaled by the host's pace personality.
func (t *Trader) humanGap(scale float64) time.Duration {
	gap := time.Duration(simnet.Pareto(t.rng, scale*t.pace, 1.2) * float64(time.Second))
	if gap > 20*time.Minute {
		gap = 20 * time.Minute
	}
	return gap
}
