package trader

import (
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// Cross-swarm BitTorrent participation, after the network-wide swarm
// measurements (Scanlon et al.): a large share of BitTorrent peers trade
// in several torrents at once, each swarm with its own tracker, announce
// cadence, and peer set. At the border this multiplies a single host's
// destination fan-out and tracker set without changing any per-swarm
// behavior — the shape a seedbox or a busy home client presents.

// btSwarm is one extra torrent's state: its tracker, current peer set,
// and tracker-assigned announce period.
type btSwarm struct {
	tracker        flow.IP
	peers          []kademlia.Contact
	announcePeriod time.Duration
}

// startExtraSwarms joins swarms 2..Swarms on top of the primary torrent
// bittorrentJoin already runs, staggered the way a client resuming its
// torrent list does.
func (t *Trader) startExtraSwarms() {
	for i := 1; i < t.cfg.Swarms; i++ {
		s := &btSwarm{tracker: t.cfg.Trackers.Pick()}
		t.sim.After(simnet.UniformDur(t.rng, 2*time.Second, 2*time.Minute), func() {
			t.swarmAnnounce(s)
		})
		t.sim.After(simnet.UniformDur(t.rng, 10*time.Second, 3*time.Minute), func() {
			t.swarmTradeLoop(s)
		})
	}
}

// swarmAnnounce announces one extra swarm to its tracker and refreshes
// that swarm's peer set.
func (t *Trader) swarmAnnounce(s *btSwarm) {
	if !t.inSession() {
		return
	}
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: s.tracker,
		SrcPort: t.ports.Next(), DstPort: 80, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, 200*time.Millisecond, 2*time.Second),
		ReqBytes: 350, RspBytes: uint64(simnet.LogNormalMedian(t.rng, 1500, 0.4)),
		Success: !simnet.Bernoulli(t.rng, t.cfg.FailBias),
		Payload: btAnnounce,
	})
	s.peers = t.cfg.Network.SampleContacts(t.rng, 8+t.rng.Intn(12))
	if s.announcePeriod == 0 {
		s.announcePeriod = simnet.UniformDur(t.rng, 15*time.Minute, 45*time.Minute)
	}
	t.sim.After(simnet.Jitter(t.rng, s.announcePeriod, 0.25), func() { t.swarmAnnounce(s) })
}

// swarmTradeLoop trades pieces within one extra swarm, mirroring the
// primary swarm's churn-and-transfer shape on an independent peer set.
func (t *Trader) swarmTradeLoop(s *btSwarm) {
	if !t.inSession() {
		return
	}
	if len(s.peers) == 0 {
		s.peers = t.cfg.Network.SampleContacts(t.rng, 10)
	}
	n := 1 + t.rng.Intn(3)
	for i := 0; i < n && len(s.peers) > 0; i++ {
		peer := s.peers[t.rng.Intn(len(s.peers))]
		t.sim.After(simnet.UniformDur(t.rng, 0, 15*time.Second), func() {
			if !t.inSession() {
				return
			}
			ok := t.peerOnline(peer)
			seedSide := simnet.Bernoulli(t.rng, 0.5)
			req := simnet.LogNormalMedian(t.rng, 2500, 0.8)
			rsp := simnet.LogNormalMedian(t.rng, float64(t.cfg.UploadMedian)*4, t.cfg.UploadSigma)
			if seedSide {
				req = simnet.LogNormalMedian(t.rng, t.cfg.UploadMedian, t.cfg.UploadSigma)
				rsp = simnet.LogNormalMedian(t.rng, 2000, 0.6)
			}
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: peer.Addr,
				SrcPort: t.ports.Next(), DstPort: btPeerPort, Proto: flow.TCP,
				Duration: simnet.UniformDur(t.rng, 20*time.Second, 8*time.Minute),
				ReqBytes: uint64(req), RspBytes: uint64(rsp),
				Success: ok,
				Payload: btHandshake,
			})
		})
	}
	if simnet.Bernoulli(t.rng, 0.4) {
		t.sim.After(simnet.UniformDur(t.rng, time.Second, 30*time.Second), func() {
			if t.inSession() {
				t.emitInbound(btPeerPort, btHandshake, 2500, t.cfg.UploadMedian)
			}
		})
	}
	t.sim.After(t.humanGap(10), func() { t.swarmTradeLoop(s) })
}
