package trader

import (
	"testing"
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/label"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

func window() flow.Window {
	start := time.Date(2007, time.November, 5, 9, 0, 0, 0, time.UTC)
	return flow.Window{From: start, To: start.Add(6 * time.Hour)}
}

// testEnv builds a simulator with a peer network and tracker pool.
func testEnv(t *testing.T, seed int64) (*simnet.Simulator, *kademlia.Overlay, *synth.ExternalIPPool) {
	t.Helper()
	sim := simnet.New(window().From, seed)
	network, err := kademlia.NewOverlay(kademlia.OverlayConfig{
		Nodes:         600,
		Start:         window().From.Add(-time.Hour),
		Horizon:       10 * time.Hour,
		MedianSession: 25 * time.Minute,
		MedianOffline: 90 * time.Minute,
		SessionSigma:  1.0,
		AvoidSubnets:  synth.InternalSubnets(),
		Port:          6881,
	}, sim.Fork())
	if err != nil {
		t.Fatal(err)
	}
	trackers := synth.NewExternalIPPool(sim.Fork(), 20, 1.2)
	return sim, network, trackers
}

func TestConfigValidate(t *testing.T) {
	sim, network, trackers := testEnv(t, 1)
	_ = sim
	good := DefaultConfig(flow.MakeIP(128, 2, 0, 5), BitTorrent, window(), network, trackers)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Host = 0 },
		func(c *Config) { c.App = 0 },
		func(c *Config) { c.App = 99 },
		func(c *Config) { c.Network = nil },
		func(c *Config) { c.Trackers = nil },
		func(c *Config) { c.Window = flow.Window{} },
		func(c *Config) { c.Sessions = 0 },
		func(c *Config) { c.SessionMedian = 0 },
		func(c *Config) { c.UploadMedian = 0 },
	}
	for i, mutate := range mutations {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestAppString(t *testing.T) {
	if Gnutella.String() != "gnutella" || EMule.String() != "emule" || BitTorrent.String() != "bittorrent" {
		t.Error("app names wrong")
	}
	if App(99).String() == "" {
		t.Error("unknown app should render")
	}
}

// runTrader simulates one Trader and returns its emitted records.
func runTrader(t *testing.T, app App, seed int64) []flow.Record {
	t.Helper()
	sim, network, trackers := testEnv(t, seed)
	host := flow.MakeIP(128, 2, 0, 7)
	cfg := DefaultConfig(host, app, window(), network, trackers)
	cfg.Sessions = 2
	tr, err := New(cfg, sim)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Addr() != host || tr.App() != app {
		t.Error("accessors wrong")
	}
	tr.Start()
	sim.Run(window().To)
	return sim.Records()
}

func TestTraderBehaviors(t *testing.T) {
	for _, tc := range []struct {
		app  App
		want label.App
	}{
		{Gnutella, label.AppGnutella},
		{EMule, label.AppEMule},
		{BitTorrent, label.AppBitTorrent},
	} {
		t.Run(tc.app.String(), func(t *testing.T) {
			var records []flow.Record
			// Sessions are random within the window; retry seeds until the
			// trader produces a reasonable session (cheap).
			for seed := int64(1); seed < 6 && len(records) < 50; seed++ {
				records = runTrader(t, tc.app, seed)
			}
			if len(records) < 50 {
				t.Fatalf("trader emitted only %d flows", len(records))
			}
			for i := range records {
				if err := records[i].Validate(); err != nil {
					t.Fatalf("invalid record: %v", err)
				}
			}
			// Ground-truth labeling must identify the host as this app.
			labels := label.LabelHosts(records, nil)
			hl := labels[flow.MakeIP(128, 2, 0, 7)]
			if hl == nil || !hl.IsTrader() {
				t.Fatal("trader not labeled from its payloads")
			}
			if hl.Primary() != tc.want {
				t.Errorf("labeled %v, want %v", hl.Primary(), tc.want)
			}
			// Trader-scale features: large average upload per flow, some
			// failures (churn), multiple distinct peers.
			feats := flow.ExtractFeatures(records, flow.FeatureOptions{})
			f := feats[flow.MakeIP(128, 2, 0, 7)]
			if f.AvgBytesPerFlow() < 3000 {
				t.Errorf("avg bytes/flow = %v, want media-transfer scale", f.AvgBytesPerFlow())
			}
			if f.FailedRate() < 0.1 {
				t.Errorf("failed rate = %v, want churn-driven failures", f.FailedRate())
			}
			if f.Peers < 10 {
				t.Errorf("distinct peers = %d, want many", f.Peers)
			}
		})
	}
}

func TestTraderStopsAtWindowEnd(t *testing.T) {
	records := runTrader(t, BitTorrent, 3)
	for i := range records {
		if !window().Contains(records[i].Start) {
			t.Fatalf("record outside window at %v", records[i].Start)
		}
	}
}

func TestTraderPeersAreExternal(t *testing.T) {
	records := runTrader(t, EMule, 4)
	host := flow.MakeIP(128, 2, 0, 7)
	inbound := 0
	for i := range records {
		r := &records[i]
		switch {
		case r.Src == host:
			if synth.IsInternal(r.Dst) {
				t.Fatalf("trader contacted internal destination %v", r.Dst)
			}
		case r.Dst == host:
			// Inbound: peers fetch from the Trader.
			inbound++
			if synth.IsInternal(r.Src) {
				t.Fatalf("inbound flow from internal source %v", r.Src)
			}
		default:
			t.Fatalf("record unrelated to the trader: %v", r)
		}
	}
	if inbound == 0 {
		t.Error("no inbound peer connections observed")
	}
}
