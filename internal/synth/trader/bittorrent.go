package trader

import (
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// BitTorrent conventional ports.
const (
	btPeerPort = 6881
	btDHTPort  = 6881
)

var (
	btHandshake = append([]byte{19}, []byte("BitTorrent protocol")...)
	btDHTQuery  = []byte("d1:ad2:id20:aaaabbbbccccddddeeee")
	btAnnounce  = []byte("GET /announce?info_hash=%a1%b2 HTTP/1.1\r\n")
	btScrape    = []byte("GET /scrape?info_hash=%a1%b2 HTTP/1.1\r\n")
)

// bittorrentJoin starts a torrent: announce to the tracker, query the
// DHT, then trade pieces with the swarm until the session ends.
func (t *Trader) bittorrentJoin() {
	t.swarm = t.swarm[:0]
	tracker := t.cfg.Trackers.Pick()
	// Initial scrape + announce.
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: tracker,
		SrcPort: t.ports.Next(), DstPort: 80, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, 200*time.Millisecond, 2*time.Second),
		ReqBytes: 320, RspBytes: 600,
		Success: !simnet.Bernoulli(t.rng, t.cfg.FailBias),
		Payload: btScrape,
	})
	t.sim.After(simnet.UniformDur(t.rng, 100*time.Millisecond, time.Second), func() {
		t.btAnnounce(tracker)
	})
	// DHT bootstrap.
	for _, s := range t.cfg.Network.SampleContacts(t.rng, 8) {
		t.rt.Update(s)
	}
	t.sim.After(simnet.UniformDur(t.rng, time.Second, 5*time.Second), t.btDHTLookup)
	t.sim.After(simnet.UniformDur(t.rng, 3*time.Second, 15*time.Second), t.btSwarmLoop)
}

// btAnnounce hits the tracker and refreshes the swarm peer set; trackers
// re-announce on a ~30-minute cadence, which also gives Traders their
// per-destination interstitial samples.
func (t *Trader) btAnnounce(tracker flow.IP) {
	if !t.inSession() {
		return
	}
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: tracker,
		SrcPort: t.ports.Next(), DstPort: 80, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, 200*time.Millisecond, 2*time.Second),
		ReqBytes: 350, RspBytes: uint64(simnet.LogNormalMedian(t.rng, 1500, 0.4)),
		Success: !simnet.Bernoulli(t.rng, t.cfg.FailBias),
		Payload: btAnnounce,
	})
	// The tracker response refreshes the candidate swarm. Announce
	// intervals are tracker-assigned and vary client to client, so
	// Traders do not share a common timer the way bots of one botnet do.
	t.swarm = t.cfg.Network.SampleContacts(t.rng, 8+t.rng.Intn(12))
	if t.announcePeriod == 0 {
		t.announcePeriod = simnet.UniformDur(t.rng, 15*time.Minute, 45*time.Minute)
	}
	t.sim.After(simnet.Jitter(t.rng, t.announcePeriod, 0.25), func() { t.btAnnounce(tracker) })
}

// btDHTLookup runs a Mainline-DHT get_peers walk.
func (t *Trader) btDHTLookup() {
	if !t.inSession() {
		return
	}
	attempts := kademlia.IterativeFindNode(t.rt, t.cfg.Network, kademlia.RandomID(t.rng), t.sim.Now(), t.rng, kademlia.DefaultLookupConfig())
	t.emitDHTAttempts(attempts, 0)
	t.sim.After(t.paced(simnet.UniformDur(t.rng, 3*time.Minute, 10*time.Minute)), t.btDHTLookup)
}

func (t *Trader) emitDHTAttempts(attempts []kademlia.Attempt, i int) {
	if i >= len(attempts) || !t.inSession() {
		return
	}
	a := attempts[i]
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: a.Peer.Addr,
		SrcPort: btDHTPort, DstPort: a.Peer.Port, Proto: flow.UDP,
		Duration: 250 * time.Millisecond,
		ReqBytes: uint64(simnet.LogNormalMedian(t.rng, 110, 0.2)),
		RspBytes: uint64(simnet.LogNormalMedian(t.rng, 400, 0.4)),
		Success:  a.Responded,
		Payload:  btDHTQuery,
	})
	t.sim.After(simnet.UniformDur(t.rng, 50*time.Millisecond, 500*time.Millisecond), func() {
		t.emitDHTAttempts(attempts, i+1)
	})
}

// btSwarmLoop trades pieces: connect to swarm peers (many are gone —
// churn), download pieces, and upload to leechers via tit-for-tat.
func (t *Trader) btSwarmLoop() {
	if !t.inSession() {
		return
	}
	if len(t.swarm) == 0 {
		t.swarm = t.cfg.Network.SampleContacts(t.rng, 10)
	}
	n := 1 + t.rng.Intn(4)
	for i := 0; i < n && len(t.swarm) > 0; i++ {
		peer := t.swarm[t.rng.Intn(len(t.swarm))]
		t.sim.After(simnet.UniformDur(t.rng, 0, 15*time.Second), func() {
			if !t.inSession() {
				return
			}
			ok := t.peerOnline(peer)
			seedSide := simnet.Bernoulli(t.rng, 0.5)
			req := simnet.LogNormalMedian(t.rng, 2500, 0.8) // requests + have/bitfield chatter
			rsp := simnet.LogNormalMedian(t.rng, float64(t.cfg.UploadMedian)*4, t.cfg.UploadSigma)
			if seedSide {
				req = simnet.LogNormalMedian(t.rng, t.cfg.UploadMedian, t.cfg.UploadSigma)
				rsp = simnet.LogNormalMedian(t.rng, 2000, 0.6)
			}
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: peer.Addr,
				SrcPort: t.ports.Next(), DstPort: btPeerPort, Proto: flow.TCP,
				Duration: simnet.UniformDur(t.rng, 20*time.Second, 8*time.Minute),
				ReqBytes: uint64(req), RspBytes: uint64(rsp),
				Success: ok,
				Payload: btHandshake,
			})
		})
	}
	// Swarm peers also connect in to fetch our pieces.
	if simnet.Bernoulli(t.rng, 0.5) {
		t.sim.After(simnet.UniformDur(t.rng, time.Second, 30*time.Second), func() {
			if t.inSession() {
				t.emitInbound(btPeerPort, btHandshake, 2500, t.cfg.UploadMedian)
			}
		})
	}
	t.sim.After(t.humanGap(10), t.btSwarmLoop)
}
