package trader

import (
	"time"

	"plotters/internal/flow"
	"plotters/internal/kademlia"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// gnutellaPort is the conventional Gnutella service port.
const gnutellaPort = 6346

// gnutellaConnect bootstraps the Gnutella session: attempt ultrapeer
// handshakes until a few stick, then begin querying and transferring.
func (t *Trader) gnutellaConnect() {
	t.ultrapeers = t.ultrapeers[:0]
	candidates := t.cfg.Network.SampleContacts(t.rng, 12)
	t.tryUltrapeer(candidates, 0)
}

// tryUltrapeer walks the candidate list with small gaps between attempts,
// keeping up to four established ultrapeer links.
func (t *Trader) tryUltrapeer(candidates []kademlia.Contact, i int) {
	if !t.inSession() || i >= len(candidates) || len(t.ultrapeers) >= 4 {
		if len(t.ultrapeers) > 0 && t.inSession() {
			t.gnutellaQueryLoop()
		}
		return
	}
	peer := candidates[i]
	ok := t.peerOnline(peer)
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: peer.Addr,
		SrcPort: t.ports.Next(), DstPort: gnutellaPort, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, 100*time.Millisecond, 2*time.Second),
		ReqBytes: 180, RspBytes: 220,
		Success: ok,
		Payload: []byte("GNUTELLA CONNECT/0.6\r\nUser-Agent: LIMEWIRE/4.12\r\n"),
	})
	if ok {
		t.ultrapeers = append(t.ultrapeers, peer)
	}
	t.sim.After(simnet.UniformDur(t.rng, 200*time.Millisecond, 3*time.Second), func() {
		t.tryUltrapeer(candidates, i+1)
	})
}

// gnutellaQueryLoop models the human search-download cycle: issue a query
// to the ultrapeers, download from a few result peers, upload to peers
// fetching shared files, then pause for a human think time.
func (t *Trader) gnutellaQueryLoop() {
	if !t.inSession() || len(t.ultrapeers) == 0 {
		return
	}
	// Query each connected ultrapeer (keepalive + query traffic).
	for _, up := range t.ultrapeers {
		synth.EmitFlow(t.sim, synth.FlowSpec{
			Src: t.cfg.Host, Dst: up.Addr,
			SrcPort: t.ports.Next(), DstPort: gnutellaPort, Proto: flow.TCP,
			Duration: simnet.UniformDur(t.rng, 50*time.Millisecond, time.Second),
			ReqBytes: uint64(simnet.LogNormalMedian(t.rng, 250, 0.4)),
			RspBytes: uint64(simnet.LogNormalMedian(t.rng, 3000, 1.0)),
			Success:  t.peerOnline(up),
			Payload:  []byte("GNUTELLA/0.6 QUERY"),
		})
	}
	// Download from result peers: mostly fresh addresses (churn).
	results := t.cfg.Network.SampleContacts(t.rng, 2+t.rng.Intn(6))
	for _, peer := range results {
		peer := peer
		t.sim.After(simnet.UniformDur(t.rng, time.Second, 40*time.Second), func() {
			if !t.inSession() {
				return
			}
			ok := t.peerOnline(peer)
			dl := simnet.LogNormalMedian(t.rng, float64(t.cfg.UploadMedian)*4, t.cfg.UploadSigma)
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: peer.Addr,
				SrcPort: t.ports.Next(), DstPort: gnutellaPort, Proto: flow.TCP,
				Duration: simnet.UniformDur(t.rng, 5*time.Second, 4*time.Minute),
				ReqBytes: uint64(simnet.LogNormalMedian(t.rng, 600, 0.5)),
				RspBytes: uint64(dl),
				Success:  ok,
				Payload:  []byte("GET /get/271/shared.mp3 HTTP/1.1\r\n"),
			})
		})
	}
	// Serve uploads: peers fetch from our shared folder (big SrcBytes).
	uploads := t.rng.Intn(3)
	for i := 0; i < uploads; i++ {
		peer := t.cfg.Network.SampleContacts(t.rng, 1)[0]
		t.sim.After(simnet.UniformDur(t.rng, time.Second, 2*time.Minute), func() {
			if !t.inSession() {
				return
			}
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: peer.Addr,
				SrcPort: t.ports.Next(), DstPort: gnutellaPort, Proto: flow.TCP,
				Duration: simnet.UniformDur(t.rng, 10*time.Second, 5*time.Minute),
				ReqBytes: uint64(simnet.LogNormalMedian(t.rng, t.cfg.UploadMedian, t.cfg.UploadSigma)),
				RspBytes: uint64(simnet.LogNormalMedian(t.rng, 800, 0.5)),
				Success:  t.peerOnline(peer),
				Payload:  []byte("GNUTELLA CONNECT BACK upload"),
			})
		})
	}
	// Remote leaves fetch from our shared folder over inbound HTTP.
	if simnet.Bernoulli(t.rng, 0.4) {
		t.sim.After(simnet.UniformDur(t.rng, time.Second, time.Minute), func() {
			if t.inSession() {
				t.emitInbound(gnutellaPort, []byte("GET /get/99/file.mp3 HTTP/1.1\r\n"), 600, t.cfg.UploadMedian)
			}
		})
	}
	t.sim.After(t.humanGap(8), t.gnutellaQueryLoop)
}
