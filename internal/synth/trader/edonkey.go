package trader

import (
	"time"

	"plotters/internal/flow"
	"plotters/internal/simnet"
	"plotters/internal/synth"
)

// eDonkey server-mediated client, shaped by the distributed-honeypot
// measurements (Allali et al.): unlike the KAD-era eMule model, every
// lookup goes through an index server — a TCP login session held open to
// one home server plus UDP global searches sprayed across the wider
// server list — and the request mix follows the measured rare-file long
// tail. Most source fetches chase unpopular files with one or two
// providers that are frequently offline (driving failed connections to
// ever-new peer addresses), while the few popular files supply the bulk
// of the transferred bytes.
const (
	edonkeySrvTCPPort  = 4661
	edonkeySrvUDPPort  = 4665
	edonkeyPeerTCPPort = 4662
)

// rare-file long tail: the share of searches that chase rare content,
// how few sources such files have, and how often those sources are dead.
const (
	edonkeyRareShare       = 0.75
	edonkeyRareSourceDead  = 0.7
	edonkeyPopularSrcCount = 4
)

// edonkeyConnect opens the session: log into the home index server, then
// run server-mediated searches and the source transfer queue.
func (t *Trader) edonkeyConnect() {
	server := t.cfg.Trackers.Pick()
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: server,
		SrcPort: t.ports.Next(), DstPort: edonkeySrvTCPPort, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, time.Second, 12*time.Second),
		ReqBytes: 600, RspBytes: 5000,
		Success: !simnet.Bernoulli(t.rng, t.cfg.FailBias),
		Payload: emuleTCPHello(),
	})
	t.sim.After(simnet.UniformDur(t.rng, 2*time.Second, 10*time.Second), func() {
		t.edonkeySearchLoop(server)
	})
	t.sim.After(simnet.UniformDur(t.rng, 10*time.Second, 40*time.Second), t.edonkeyServeLoop)
}

// edonkeySearchLoop runs one server-mediated search round: a source query
// to the home server, a spray of UDP global searches across other index
// servers (the honeypot studies observe clients probing many servers),
// then connection attempts to the returned sources.
func (t *Trader) edonkeySearchLoop(server flow.IP) {
	if !t.inSession() {
		return
	}
	synth.EmitFlow(t.sim, synth.FlowSpec{
		Src: t.cfg.Host, Dst: server,
		SrcPort: t.ports.Next(), DstPort: edonkeySrvTCPPort, Proto: flow.TCP,
		Duration: simnet.UniformDur(t.rng, 300*time.Millisecond, 3*time.Second),
		ReqBytes: uint64(simnet.LogNormalMedian(t.rng, 250, 0.4)),
		RspBytes: uint64(simnet.LogNormalMedian(t.rng, 1800, 0.6)),
		Success:  !simnet.Bernoulli(t.rng, t.cfg.FailBias),
		Payload:  emuleTCPHello(),
	})
	// Global UDP search: rare files miss on the home server, so the
	// client fans out across the server list.
	extra := 1 + t.rng.Intn(4)
	for i := 0; i < extra; i++ {
		other := t.cfg.Trackers.Pick()
		t.sim.After(simnet.UniformDur(t.rng, 200*time.Millisecond, 2*time.Second), func() {
			if !t.inSession() {
				return
			}
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: other,
				SrcPort: edonkeySrvUDPPort, DstPort: edonkeySrvUDPPort, Proto: flow.UDP,
				Duration: 400 * time.Millisecond,
				ReqBytes: uint64(simnet.LogNormalMedian(t.rng, 90, 0.3)),
				RspBytes: uint64(simnet.LogNormalMedian(t.rng, 300, 0.6)),
				Success:  !simnet.Bernoulli(t.rng, 0.25),
				Payload:  emuleKADReq(),
			})
		})
	}
	t.sim.After(simnet.UniformDur(t.rng, 3*time.Second, 12*time.Second), t.edonkeyFetchSources)
	t.sim.After(t.paced(simnet.UniformDur(t.rng, 3*time.Minute, 9*time.Minute)), func() {
		t.edonkeySearchLoop(server)
	})
}

// edonkeyFetchSources dials the sources one search returned. The
// long-tail split decides the outcome shape: rare files have one or two
// mostly-dead sources; popular files have several live ones serving
// multi-MB parts.
func (t *Trader) edonkeyFetchSources() {
	if !t.inSession() {
		return
	}
	rare := simnet.Bernoulli(t.rng, edonkeyRareShare)
	n := 1 + t.rng.Intn(2)
	deadProb := edonkeyRareSourceDead
	median := t.cfg.UploadMedian
	if !rare {
		n = 2 + t.rng.Intn(edonkeyPopularSrcCount)
		deadProb = 0.15
		median = t.cfg.UploadMedian * 4
	}
	for _, peer := range t.cfg.Network.SampleContacts(t.rng, n) {
		peer := peer
		t.sim.After(simnet.UniformDur(t.rng, 0, 25*time.Second), func() {
			if !t.inSession() {
				return
			}
			ok := t.peerOnline(peer) && !simnet.Bernoulli(t.rng, deadProb)
			req := simnet.LogNormalMedian(t.rng, 800, 0.5)
			rsp := simnet.LogNormalMedian(t.rng, median, t.cfg.UploadSigma)
			synth.EmitFlow(t.sim, synth.FlowSpec{
				Src: t.cfg.Host, Dst: peer.Addr,
				SrcPort: t.ports.Next(), DstPort: edonkeyPeerTCPPort, Proto: flow.TCP,
				Duration: simnet.UniformDur(t.rng, 10*time.Second, 5*time.Minute),
				ReqBytes: uint64(req), RspBytes: uint64(rsp),
				Success: ok,
				Payload: emuleTCPHello(),
			})
		})
	}
}

// edonkeyServeLoop answers the queue: other clients dial in for the parts
// this host shares (eDonkey's credit system keeps Traders uploading).
func (t *Trader) edonkeyServeLoop() {
	if !t.inSession() {
		return
	}
	if simnet.Bernoulli(t.rng, 0.6) {
		t.emitInbound(edonkeyPeerTCPPort, emuleTCPHello(), 800, t.cfg.UploadMedian)
	}
	t.sim.After(t.humanGap(12), t.edonkeyServeLoop)
}
